package bohrium

import (
	"sort"
	"sync"

	"bohrium/internal/vm"
)

// RuntimeConfig tunes the shared engine behind a Runtime. The zero value
// (or nil) gives a GOMAXPROCS-wide worker pool, the default plan-cache
// capacity, and the default recycle-pool byte bound.
type RuntimeConfig struct {
	// Workers is the shared worker-pool width (0: GOMAXPROCS). Individual
	// sessions cap their own sweep fan-out with Config.Workers; this knob
	// only sets how many goroutines serve all of them together.
	Workers int
	// PlanCacheSize caps the shared plan cache, in entries across all
	// sessions. Zero selects vm.DefaultPlanCacheSize; negative disables
	// plan caching for every session on this runtime.
	PlanCacheSize int
	// PoolCapBytes bounds the bytes parked in the shared buffer recycle
	// pool (0: 256 MiB).
	PoolCapBytes int
	// MemoryHighWatermark is the engine's graceful-degradation byte
	// budget (0: unlimited). Over it, the engine sheds its shareable
	// caches — compiled plans and parked recycle buffers — before
	// denying fresh allocations with vm.ErrMemoryPressure, which the
	// bhd daemon maps to a retryable 503.
	MemoryHighWatermark int
}

// Runtime is the shared component stack of the paper's middleware: one
// worker pool, one fingerprint-keyed plan cache, and one buffer recycle
// pool serving many concurrent sessions. Contexts made with
// Runtime.NewContext may be driven from different goroutines at the same
// time — each Context is still single-goroutine, but the runtime
// underneath is fully concurrency-safe — and they feed each other's fast
// paths: a batch one session compiled is a plan-cache hit for every
// other session flushing the same structure, and a buffer one session
// frees is recycled into any session's next matching allocation.
//
// NewContext (the package-level function) instead gives each session a
// private runtime, preserving the one-session-per-engine behavior of
// earlier versions: per-session plan-cache and pool counters start at
// zero, and nothing another session does can turn this session's compile
// into a hit. Hosts that want the sharing create a Runtime (or use
// DefaultRuntime) explicitly.
type Runtime struct {
	eng *vm.Engine // immutable after NewRuntime
	// isDefault marks the process-wide DefaultRuntime, whose Close is a
	// no-op. Set once, before the runtime is ever visible to callers.
	isDefault bool

	// Session registry: every live session attached to this runtime —
	// Contexts and external backend sessions alike (the bhd daemon's
	// tenants) — registers a label here so hosts can enumerate who is
	// sharing the engine. nextSession disambiguates sessions sharing a
	// label.
	mu          sync.Mutex
	nextSession uint64            // guarded by mu
	sessions    map[uint64]string // guarded by mu
}

// NewRuntime builds a shared runtime. Pass nil for defaults. Close it
// after the sessions are done; closing a Context never tears the shared
// runtime down.
func NewRuntime(cfg *RuntimeConfig) *Runtime {
	c := RuntimeConfig{}
	if cfg != nil {
		c = *cfg
	}
	return &Runtime{eng: vm.NewEngine(vm.EngineConfig{
		Workers:             c.Workers,
		PlanCacheSize:       c.PlanCacheSize,
		PoolCapBytes:        c.PoolCapBytes,
		MemoryHighWatermark: c.MemoryHighWatermark,
	})}
}

// defaultRuntime is the lazily created process-wide runtime behind
// DefaultRuntime.
var (
	defaultRuntimeOnce sync.Once
	defaultRuntime     *Runtime
)

// DefaultRuntime returns the lazily created process-wide shared runtime:
// the convenience engine for servers that want cross-session sharing
// without threading a Runtime value around. It lives for the process,
// like the Go runtime's own worker structures — calling Close on it is
// a no-op.
func DefaultRuntime() *Runtime {
	defaultRuntimeOnce.Do(func() {
		defaultRuntime = NewRuntime(nil)
		defaultRuntime.isDefault = true
	})
	return defaultRuntime
}

// NewContext creates a session on the shared runtime. Pass nil for
// defaults. The Context is single-goroutine like any other, but many of
// them — each driven by its own goroutine — can coexist on one Runtime;
// results are bit-for-bit identical to the same sessions running on
// private runtimes. Config.Workers and Config.ParallelThreshold govern
// this session's sweep fan-out on the shared pool; Config.PlanCacheSize
// only opts the session out of the shared cache when negative (capacity
// is fixed by the RuntimeConfig).
func (r *Runtime) NewContext(cfg *Config) *Context {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	return newContext(r, false, c)
}

// Engine exposes the shared vm.Engine so hosts outside the array front
// end can open backend sessions on it directly through backend.Open —
// the bhd daemon multiplexes every tenant onto one Runtime this way.
// Such sessions should announce themselves with Register so they show
// up in Sessions alongside the runtime's Contexts.
func (r *Runtime) Engine() *vm.Engine { return r.eng }

// Register records a live session under label and returns its release
// hook. Contexts register themselves; external hosts (internal/server
// sessions) call it when they open a backend on Engine and release on
// close. The release func is idempotent and safe from any goroutine.
func (r *Runtime) Register(label string) (release func()) {
	r.mu.Lock()
	if r.sessions == nil {
		r.sessions = map[uint64]string{}
	}
	id := r.nextSession
	r.nextSession++
	r.sessions[id] = label
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.sessions, id)
			r.mu.Unlock()
		})
	}
}

// Sessions enumerates the labels of every live registered session, in
// registration order. It is a snapshot: sessions may come and go the
// moment the lock is released.
func (r *Runtime) Sessions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]uint64, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = r.sessions[id]
	}
	return out
}

// SessionCount reports how many registered sessions are live.
func (r *Runtime) SessionCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Stats returns the process-wide aggregate counters over every session
// the runtime has hosted, live and closed. Per-session numbers stay
// available on each Context's own Stats.
func (r *Runtime) Stats() vm.Stats { return r.eng.Stats() }

// PlanCacheLen returns the number of plans currently in the shared cache.
func (r *Runtime) PlanCacheLen() int { return r.eng.PlanCacheLen() }

// Close drains and stops the shared worker pool. Sessions mid-sweep
// finish their submitted chunks first; close Contexts before their
// Runtime as a matter of hygiene. Close is idempotent (the engine
// guards the close-once itself). Closing the process-wide
// DefaultRuntime is a no-op — it lives for the process, and a stray
// Close from copied teardown code must not degrade every future
// session to inline sweeps.
func (r *Runtime) Close() {
	if r.isDefault {
		return
	}
	r.eng.Close()
}
