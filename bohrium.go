// Package bohrium is a Go reproduction of the Bohrium runtime studied in
// M. O. Larsen, "Algebraic Transformation of Descriptive Vector Byte-code
// Sequences" (Middleware Doctoral Symposium '16): a NumPy-style lazy array
// front-end that records vector byte-code, an algebraic rewrite engine
// that optimizes the byte-code (constant merging, power expansion over
// addition chains, inverse→LU-solve rewriting, fusion-friendly cleanup),
// and a multicore virtual machine that executes it.
//
// The programming model mirrors "import bohrium as np": array operations
// build byte-code instead of computing; a Flush (or any value access)
// optimizes and executes the batch:
//
//	ctx := bohrium.NewContext(nil)
//	defer ctx.Close()
//	a := ctx.Zeros(10)
//	a.AddC(1).AddC(1).AddC(1) // records three BH_ADDs
//	fmt.Println(a.MustData()) // optimizer merges them into one, VM runs it
//
// With Config{Async: true}, Flush splits into a non-blocking Submit and
// a Wait fence, so one batch records while the previous one executes;
// Flush itself remains Submit+Wait and behaves identically.
package bohrium

import (
	"errors"
	"fmt"

	"bohrium/internal/backend"
	"bohrium/internal/bytecode"
	"bohrium/internal/faultinject"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// ErrClosed is returned when using a Context after Close.
var ErrClosed = errors.New("bohrium: context is closed")

// Config tunes a Context. The zero value (or nil) gives the full
// optimizer pipeline and the fused multicore engine.
type Config struct {
	// Optimizer selects the rewrite options; nil means the full default
	// pipeline, an explicitly zeroed Options disables all rewrites.
	Optimizer *rewrite.Options
	// Workers is the VM worker pool width (0: GOMAXPROCS).
	Workers int
	// ParallelThreshold is the minimum sweep size (in elements) before the
	// VM considers splitting elementwise sweeps, reductions, and scans
	// across workers (see vm.Config.ParallelThreshold for the exact
	// reduction/scan conditions); zero picks vm.DefaultParallelThreshold.
	// Results are independent of Workers for any fixed threshold: the
	// VM's parallel reduction and scan strategies choose their split
	// points from the views and this threshold alone.
	ParallelThreshold int
	// DisableFusion turns off fused-sweep execution.
	DisableFusion bool
	// PlanCacheSize caps the fingerprint-keyed plan cache, in entries.
	// Flushing a batch whose structure was compiled before skips the
	// whole rewrite pipeline and fusion analysis and re-executes the
	// cached plan with the current buffer bindings. Zero selects
	// vm.DefaultPlanCacheSize; negative disables the cache (every flush
	// pays the full pipeline, as before).
	PlanCacheSize int
	// CollectReports keeps per-flush optimizer reports (LastReport). A
	// plan-cache hit skips the optimizer, so LastReport keeps describing
	// the most recent *compiled* flush.
	CollectReports bool
	// Async runs flushed batches on a background executor goroutine:
	// Submit seals and enqueues the pending batch without blocking, so
	// batch N+1 records (and fingerprints, and compiles) while batch N
	// executes. Flush is always Submit+Wait, so Flush-only code behaves
	// identically in both modes; the difference surfaces only for callers
	// that Submit explicitly and synchronize later. Execution errors are
	// reported by the next synchronizing call (Wait, Flush, or any data
	// access) and are sticky from then on. See ARCHITECTURE.md,
	// "Async pipelined flush".
	Async bool
	// AsyncDepth caps how many compiled batches may queue between the
	// recording goroutine and the executor before Submit blocks
	// (backpressure). Zero selects vm.DefaultAsyncDepth. Ignored unless
	// Async is set.
	AsyncDepth int
	// Backend selects the execution backend by registered name. The empty
	// string (and "inprocess") is the reference fused-sweep machine;
	// "outofcore" streams elementwise segments through fixed-size chunks so
	// working-set memory stays bounded by ChunkBytes per array instead of
	// the arrays themselves. Every backend is value- and error-identical —
	// the differential suite pins it — so the choice is purely an
	// execution-strategy knob. An unknown name panics in NewContext, like
	// any other invalid construction parameter.
	Backend string
	// ChunkBytes bounds the per-array tile size of chunked backends
	// (Backend: "outofcore"); zero selects the backend's default (1 MiB).
	// Ignored by backends without the Chunked capability.
	ChunkBytes int
	// XPlanFuse enables cross-plan fusion of repeated flush sequences.
	// When the same batch structure heads a back-to-back pair twice, the
	// next Submit of that structure defers: the batch stays in the
	// recording buffer, the following batch records into the same program,
	// and the combined program goes through the completely ordinary
	// fingerprint → plan-cache → optimize → fuse path. The optimizer then
	// sees across the old plan boundary — a value one iteration produces,
	// reduces, and frees that the next iteration recomputes identically
	// collapses to a single sweep (rewrite's seq-reuse rule), and the
	// boundary fence disappears. At most one batch defers at a time, a
	// batch containing BH_SYNC (observed values) never defers, and Stats
	// force-submits any deferral so counters stay deterministic. Deferring
	// shifts *when* a Flush's work executes (the nil return reports only
	// recording-side success; execution errors surface at the next
	// synchronizing call, exactly as in Async mode) — values and error
	// text are unchanged, which the cross-plan differential suite pins.
	// Requires the plan cache and a backend with the SequenceFusion
	// capability (out-of-core opts out); silently inert otherwise.
	XPlanFuse bool
}

// Context owns a byte-code recording buffer and the per-session virtual
// machine state that executes flushed batches. It is not safe for
// concurrent use — like a NumPy session, one goroutine drives it;
// parallelism happens inside the VM, in async mode (Config.Async)
// additionally between the driving goroutine and a background executor,
// and between whole sessions when several Contexts share one Runtime
// (each driven by its own goroutine).
type Context struct {
	cfg      Config
	rt       *Runtime
	ownsRT   bool // NewContext-made: Close tears the private runtime down
	pipeline *rewrite.Pipeline
	// sig identifies this session's compilation semantics (optimizer
	// options + fusion). Plans in the shared cache carry the signature of
	// the session that compiled them, and planUsable rejects any
	// mismatch: a batch fingerprint says nothing about HOW it was
	// compiled, and a session with the optimizer ablated must never
	// execute another session's optimized plan (or vice versa) — the
	// values could differ in ULPs and the sweep stats would lie.
	sig compileSig
	// backend executes this session's batches. The front end only ever
	// speaks the backend.Backend interface — compile, execute, bind, read,
	// cache, stats — so every execution strategy (in-process fused sweeps,
	// out-of-core chunking, whatever is registered next) plugs in below
	// this line without the recorder changing.
	backend  backend.Backend
	pending  *bytecode.Program
	defined  map[bytecode.RegID]bool // registers materialized by earlier flushes
	keptRegs map[bytecode.RegID]bool // registers whose values must survive flushes
	// freeRegs stacks register ids whose buffers were freed by an earlier
	// flush; new temporaries reuse them (LIFO). Reuse keeps iterative
	// workloads structurally stable: the batch an iteration records names
	// the same registers as the previous iteration's, so its fingerprint
	// repeats and the plan cache hits.
	freeRegs []bytecode.RegID
	inFree   map[bytecode.RegID]bool
	// regGen counts each register's Free events. Array handles snapshot
	// the generation at creation and panic on use after it advances —
	// the guard that makes register-id recycling safe against stale
	// aliases (Slice/Transpose handles of a freed array).
	regGen  map[bytecode.RegID]uint64
	lastRep *rewrite.Report
	// Cross-plan fusion state (Config.XPlanFuse). lastFP/haveLast remember
	// the previous single-batch submission's structural fingerprint; pairs
	// counts observations of each (prev, cur) sequence fingerprint;
	// hotHeads marks fingerprints that repeatedly head such a pair and are
	// therefore worth holding back; deferred marks that the pending
	// program already carries one deferred batch.
	lastFP   bytecode.Fingerprint
	haveLast bool
	pairs    map[bytecode.Fingerprint]int
	hotHeads map[bytecode.Fingerprint]bool
	deferred bool
	// exec is the background plan executor of async mode (Config.Async);
	// nil in synchronous mode. Everything else in this struct belongs to
	// the recording goroutine — the executor only ever sees compiled
	// backend plans and the backend's register state.
	exec   *backend.Executor
	closed bool
	// unregister releases this session's entry in the runtime's session
	// registry (Runtime.Sessions enumeration) on Close.
	unregister func()
}

// NewContext creates a session on a lazily created runtime of its own:
// the session gets a private worker pool, plan cache, and recycle pool,
// sized by its Config, exactly as before runtimes existed, and Close
// tears all of it down. Pass nil for defaults. To share one engine across
// many sessions, use Runtime.NewContext instead.
func NewContext(cfg *Config) *Context {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	rt := NewRuntime(&RuntimeConfig{Workers: c.Workers, PlanCacheSize: c.PlanCacheSize})
	return newContext(rt, true, c)
}

// newContext wires a session onto a runtime. ownsRT marks the private
// single-session shape, where closing the Context also closes the
// runtime.
func newContext(rt *Runtime, ownsRT bool, c Config) *Context {
	opts := rewrite.DefaultOptions()
	if c.Optimizer != nil {
		opts = *c.Optimizer
	}
	be, err := backend.Open(c.Backend, rt.eng, backend.Config{
		VM: vm.Config{
			Workers:           c.Workers,
			ParallelThreshold: c.ParallelThreshold,
			Fusion:            !c.DisableFusion,
			PlanCacheSize:     c.PlanCacheSize,
		},
		ChunkBytes: c.ChunkBytes,
	})
	if err != nil {
		panic(fmt.Sprintf("bohrium: %v", err))
	}
	ctx := &Context{
		cfg:      c,
		rt:       rt,
		ownsRT:   ownsRT,
		pipeline: rewrite.Build(opts),
		sig:      compileSig{opts: opts, fusion: !c.DisableFusion},
		backend:  be,
		pending:  bytecode.NewProgram(),
		defined:  map[bytecode.RegID]bool{},
		keptRegs: map[bytecode.RegID]bool{},
		inFree:   map[bytecode.RegID]bool{},
		regGen:   map[bytecode.RegID]uint64{},
		pairs:    map[bytecode.Fingerprint]int{},
		hotHeads: map[bytecode.Fingerprint]bool{},
	}
	ctx.unregister = rt.Register("context/" + be.Name())
	if c.Async {
		ctx.exec = backend.NewExecutor(be, c.AsyncDepth, "")
	}
	return ctx
}

// Close releases the session. In async mode it first drains the executor
// — every submitted batch finishes (or is skipped after a pipeline error)
// — call Wait first if you need the error. The session's counters fold
// into its runtime's process-wide totals. A NewContext-made session owns
// its private runtime and tears the worker pool down too; a session on a
// shared Runtime only detaches — the pool, the plan cache, and every
// other session keep running. The context must not be used after: public
// entry points report ErrClosed from here on.
func (c *Context) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.exec != nil {
		c.exec.Close()
	}
	c.backend.Close()
	c.unregister()
	if c.ownsRT {
		c.rt.Close()
	}
}

// LastReport returns the optimizer report of the most recent flush, when
// CollectReports is enabled.
func (c *Context) LastReport() *rewrite.Report { return c.lastRep }

// Stats exposes cumulative VM counters: sweeps, fused instructions (with
// a per-dtype breakdown in FusedByDType), reductions folded into their
// producer sweep (FusedReductions — sum(x*y) as one pass with no
// materialized temporary), elements, and the buffer lifecycle counters
// (BuffersAllocated, PoolHits, BytesAllocated) that show how much
// allocation the register recycle pool saved — Free'd temporaries are
// handed back to later allocations of the same dtype and length. The
// plan-cache counters (PlanHits, PlanMisses, PlanEvictions) show how
// many flushes skipped the rewrite pipeline and fusion analysis by
// re-executing a cached compilation, and Pipelined counts plans that ran
// on the async executor. The counters are this session's own, even on a
// shared Runtime (Runtime.Stats aggregates across sessions). In async
// mode Stats first waits for the in-flight batches so the counters are
// deterministic; a pipeline error is not reported here — it stays sticky
// for the next synchronizing call. After Close, Stats reports ErrClosed.
func (c *Context) Stats() (vm.Stats, error) {
	if c.closed {
		return vm.Stats{}, ErrClosed
	}
	// A cross-plan deferral still sits in the recording buffer; submit it
	// so the counters describe every flush the caller issued. Deferral is
	// blocked while deferred is set, so this is always a real submission.
	if c.deferred {
		if err := c.Submit(); err != nil {
			return vm.Stats{}, err
		}
	}
	if c.exec != nil {
		c.exec.Wait()
	}
	return c.backend.Stats(), nil
}

// MustStats is Stats that panics on error, for examples and tools.
func (c *Context) MustStats() vm.Stats {
	st, err := c.Stats()
	if err != nil {
		panic(err)
	}
	return st
}

// PendingProgram returns a copy of the not-yet-flushed byte-code — the
// stream the optimizer will see. Examples and tools use it to show
// "before" listings.
func (c *Context) PendingProgram() *bytecode.Program { return c.pending.Clone() }

// Flush optimizes and executes all recorded byte-code. Arrays read after
// a flush observe the computed values. Flushing an empty buffer is a
// no-op: no clone, no pipeline, no VM call. Flush is exactly
// Submit+Wait, in both synchronous and async mode.
//
// When the plan cache is enabled (default), the flush first fingerprints
// the batch; a structurally identical batch that was compiled before
// skips the clone, the whole rewrite pass stack, and fusion cluster
// analysis, and goes straight to executing the cached plan against the
// current buffer bindings. See ARCHITECTURE.md, "Compile/execute split".
func (c *Context) Flush() error {
	if err := c.Submit(); err != nil {
		return err
	}
	return c.Wait()
}

// Submit seals the pending batch and hands it to the executor without
// waiting for the results. In synchronous mode (Config.Async unset) it
// optimizes, compiles and executes on the spot — Submit then *is* the
// whole flush, and the subsequent Wait is a no-op. In async mode it
// resolves the batch against the plan cache (compiling on a miss) and
// enqueues the plan on the background executor: recording, fingerprinting
// and compilation of the next batch overlap the execution of this one.
// Submit returns recording-side errors (optimize/compile failures, a
// poisoned pipeline) immediately; execution errors surface at the next
// synchronizing call — Wait, Flush, Close, or any data access.
func (c *Context) Submit() error {
	if c.closed {
		return ErrClosed
	}
	if c.exec != nil {
		// A failed batch poisons the pipeline: later batches were
		// recorded against state the failure never produced, so they are
		// not executed, and every synchronizing call keeps reporting the
		// first error. The pending byte-code stays recorded, mirroring
		// the synchronous path, which also leaves a failed batch pending.
		if err := c.exec.Err(); err != nil {
			return fmt.Errorf("bohrium: execution failed: %w", err)
		}
	}
	if c.pending.Len() == 0 {
		return nil
	}
	c.markPendingOutputs()
	wasDeferred := c.deferred

	cached := c.backend.PlanCacheEnabled()
	var fp bytecode.Fingerprint
	var consts []bytecode.Constant
	if cached {
		fp = c.pending.Fingerprint()
		consts = c.pending.Constants()
		// Cross-plan fusion: a batch structure that repeatedly heads a
		// back-to-back pair is held in the recording buffer instead of
		// sealing; the next batch records into the same program and the
		// combined structure takes this very path on the following Submit.
		if c.xplanShouldDefer(fp) {
			c.deferred = true
			return nil
		}
		// A parametric hit under new constants comes back as a patched
		// clone (the cached plan is immutable), so the same lookup is safe
		// in both modes: the executor may still be running the previous
		// submission, and other sessions on a shared Runtime may be
		// executing the very same cached plan right now. The backend scopes
		// the fingerprint, so two backends on one Runtime never serve each
		// other's plans.
		plan, meta, ok := c.backend.LookupPlan(fp, consts, c.planUsable)
		if ok {
			pm := meta.(*planMeta)
			if plan != nil { // nil: the batch is known to optimize to nothing
				if err := c.execute(plan); err != nil {
					return err
				}
			}
			c.xplanAccount(fp, cached, wasDeferred)
			c.advanceBatch(pm)
			return nil
		}
	}

	batch := c.pending.Clone()
	optimized, report, err := c.pipeline.Optimize(batch)
	if err != nil {
		return fmt.Errorf("bohrium: optimize failed: %w", err)
	}
	if c.cfg.CollectReports {
		c.lastRep = report
	}
	// A plan's constants are parameters only when the optimizer applied
	// nothing: every rule inspects constant values (merging, folding,
	// CSE, power expansion), so any fired rewrite bakes the batch's
	// constant vector into the cache key.
	parametric := report.TotalApplied() == 0
	pm := newPlanMeta(batch, optimized, len(c.pending.Regs))
	pm.sig = c.sig
	if len(optimized.Instrs) == 0 {
		// The batch optimized to nothing (e.g. temporaries freed before
		// ever being observed): skip compilation and the VM entirely,
		// keeping only the register bookkeeping.
		if cached {
			c.backend.InsertPlan(fp, consts, parametric, nil, pm)
		}
		c.xplanAccount(fp, cached, wasDeferred)
		c.advanceBatch(pm)
		return nil
	}
	pruneInputs(optimized)
	plan, err := c.backend.Compile(optimized)
	if err != nil {
		return fmt.Errorf("bohrium: execution failed: %w", err)
	}
	if err := c.execute(plan); err != nil {
		return err
	}
	if cached {
		// A backend whose plans are constant-exact (out-of-core) demotes
		// parametric to false here; the nil empty-batch entry above stays
		// parametric on every backend — there is nothing to patch.
		c.backend.InsertPlan(fp, consts, parametric, plan, pm)
	}
	c.xplanAccount(fp, cached, wasDeferred)
	c.advanceBatch(pm)
	return nil
}

// xplanShouldDefer decides whether the pending batch should be held back
// and combined with the next one. Only reached when the plan cache is
// enabled (the fingerprint exists). One deferral at most; the backend
// must advertise SequenceFusion (out-of-core budgets residency per batch
// and opts out); the batch must be sequence-fusible (no BH_SYNC — its
// values are observed now — and no extension ops); and the structure must
// have been seen heading a repeated pair. The faultinject point lets the
// chaos suite yank fusion away mid-stream and prove recovery.
func (c *Context) xplanShouldDefer(fp bytecode.Fingerprint) bool {
	if !c.cfg.XPlanFuse || c.deferred {
		return false
	}
	if !c.backend.Capabilities().SequenceFusion {
		return false
	}
	if !c.hotHeads[fp] {
		return false
	}
	if !rewrite.SequenceFusible(c.pending) {
		return false
	}
	if err := faultinject.Error(faultinject.XPlanDisarm, ""); err != nil {
		c.backend.CountXPlanDisarm()
		return false
	}
	return true
}

// xplanAccount runs after a successful submission: it counts a combined
// (previously deferred) submission and trains the pair predictor on
// single-batch submissions. A combined batch is a different structure
// from the singles that trained the predictor, so pair learning does not
// chain across it. The pair table is capped; overflowing it resets the
// predictor rather than letting an adversarial stream grow it without
// bound.
func (c *Context) xplanAccount(fp bytecode.Fingerprint, cached, wasDeferred bool) {
	if !c.cfg.XPlanFuse {
		return
	}
	c.deferred = false
	if wasDeferred {
		c.backend.CountXPlanFused()
		c.haveLast = false
		return
	}
	if !cached {
		return
	}
	if c.haveLast {
		seq := bytecode.SequenceFingerprint(c.lastFP, fp)
		c.pairs[seq]++
		if c.pairs[seq] >= 2 {
			c.hotHeads[c.lastFP] = true
		}
		if len(c.pairs) > 256 {
			c.pairs = map[bytecode.Fingerprint]int{}
			c.hotHeads = map[bytecode.Fingerprint]bool{}
		}
	}
	c.lastFP = fp
	c.haveLast = true
}

// execute runs one compiled plan: inline in synchronous mode, enqueued on
// the background executor in async mode. Either way the plan is treated
// as immutable from here on — it may simultaneously be executing in other
// sessions that share the plan cache.
func (c *Context) execute(plan backend.Plan) error {
	if c.exec != nil {
		c.exec.Submit(plan)
		return nil
	}
	if err := c.backend.Execute(plan); err != nil {
		return fmt.Errorf("bohrium: execution failed: %w", err)
	}
	return nil
}

// Wait blocks until every submitted batch has executed and returns the
// pipeline's first execution error. The error is sticky: after a failed
// batch, Wait (and every other synchronizing call) keeps returning it,
// and no later batch executes. In synchronous mode Wait is a no-op —
// Submit already ran everything.
func (c *Context) Wait() error {
	if c.closed {
		return ErrClosed
	}
	if c.exec == nil {
		return nil
	}
	if err := c.exec.Wait(); err != nil {
		return fmt.Errorf("bohrium: execution failed: %w", err)
	}
	return nil
}

// markPendingOutputs declares the externally observable registers of the
// pending batch: everything explicitly kept (creation-function arrays,
// Keep/Sync'd arrays) plus *leaf* temporaries — pure-op results no other
// byte-code consumes, which the caller almost certainly holds. Consumed
// temporaries stay droppable; that is what allows the equation (2)
// rewrite to delete a discarded inverse. The roles feed both the
// optimizer and the batch fingerprint, so a Keep between two otherwise
// identical flushes changes the cache key (as it must — it changes what
// the optimizer may delete).
func (c *Context) markPendingOutputs() {
	p := c.pending
	p.Outputs = p.Outputs[:0]
	consumed := batchReads(p)
	written := map[bytecode.RegID]bool{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Out.IsReg() && in.WritesReg(in.Out.Reg) {
			written[in.Out.Reg] = true
		}
	}
	for r := range p.Regs {
		id := bytecode.RegID(r)
		if c.keptRegs[id] || (written[id] && !consumed[id]) {
			p.MarkOutput(id)
		}
	}
}

// compileSig is the comparable identity of a session's compilation
// semantics: the resolved optimizer options plus the fusion switch.
// Sessions with equal signatures compile any given batch identically, so
// sharing cached plans between them is indistinguishable from each
// compiling its own; unequal signatures must not share (planUsable).
// Workers/ParallelThreshold are deliberately absent — results are
// bit-equal across them by the VM's parallel-execution contract — as are
// Async/AsyncDepth/PlanCacheSize/CollectReports, which never change what
// a batch compiles to.
type compileSig struct {
	opts   rewrite.Options
	fusion bool
}

// planMeta is the front-end bookkeeping stored with each cached plan:
// everything Flush needs to advance the session to the next batch
// without re-deriving it from the optimized program.
type planMeta struct {
	// fate records each touched register's end-of-batch state: written
	// and live (true) or destroyed by a BH_FREE after its last write
	// (false). Registers the batch never touches are absent and keep
	// their prior defined state.
	fate map[bytecode.RegID]bool
	// freed lists the registers the *batch* freed, whether or not those
	// byte-codes survived optimization: a temporary created and freed
	// unobserved is deleted outright, leaving no fate entry, yet its id
	// must still recycle or the next iteration would mint a fresh one
	// and change the fingerprint.
	freed []bytecode.RegID
	// base is the register count of the batch the plan was compiled
	// from; extra holds declarations the optimizer appended beyond it
	// (expansion scratch). They are part of the plan's program, so a hit
	// is only legal while none of them has been recycled into a live
	// front-end array (see planUsable).
	base  int
	extra []bytecode.RegInfo
	// sig is the compiling session's compileSig; only sessions with the
	// same signature may execute the plan.
	sig compileSig
}

func newPlanMeta(batch, optimized *bytecode.Program, base int) *planMeta {
	fate := map[bytecode.RegID]bool{}
	for i := range optimized.Instrs {
		in := &optimized.Instrs[i]
		if !in.Out.IsReg() {
			continue
		}
		switch {
		case in.Op == bytecode.OpFree:
			fate[in.Out.Reg] = false
		case in.WritesReg(in.Out.Reg):
			fate[in.Out.Reg] = true
		}
	}
	pm := &planMeta{fate: fate, base: base}
	for i := range batch.Instrs {
		in := &batch.Instrs[i]
		if in.Op == bytecode.OpFree && in.Out.IsReg() {
			pm.freed = append(pm.freed, in.Out.Reg)
		}
	}
	if len(optimized.Regs) > base {
		pm.extra = append([]bytecode.RegInfo(nil), optimized.Regs[base:]...)
	}
	return pm
}

// planUsable vets a cached plan for execution right now: any scratch
// register the optimizer created for it must still be dead, or the plan
// would clobber a live array that has since been recycled onto that id.
// On a shared Runtime the plan may come from another session whose batch
// carried extra unreferenced register declarations (the fingerprint
// ignores those): a plan whose register file was WIDER than this
// session's is rejected — its scratch placement assumes ids this session
// has not declared — while a narrower or equal base lines up exactly.
// It also rejects any plan compiled under different semantics (optimizer
// options, fusion) — see compileSig.
func (c *Context) planUsable(meta any) bool {
	pm, ok := meta.(*planMeta)
	if !ok {
		return false
	}
	if pm.sig != c.sig {
		return false
	}
	if pm.base > len(c.pending.Regs) {
		return false
	}
	for i := range pm.extra {
		id := bytecode.RegID(pm.base + i)
		if c.defined[id] || c.keptRegs[id] {
			return false
		}
	}
	return true
}

// advanceBatch starts a fresh batch that inherits the register
// declarations: every register defined so far is an input of the next
// batch. A freed register must not become an input — its buffer has gone
// back to the VM's recycle pool — and, symmetrically, its id goes onto
// the front-end free stack for the next temporary to reuse.
func (c *Context) advanceBatch(pm *planMeta) {
	next := bytecode.NewProgram()
	next.Regs = append([]bytecode.RegInfo(nil), c.pending.Regs...)
	for len(next.Regs) < pm.base+len(pm.extra) {
		next.Regs = append(next.Regs, pm.extra[len(next.Regs)-pm.base])
	}
	for r := range next.Regs {
		id := bytecode.RegID(r)
		live, touched := pm.fate[id]
		if !touched {
			live = c.defined[id]
		}
		if live {
			next.MarkInput(id)
			c.defined[id] = true
		} else {
			delete(c.defined, id)
			if touched && !c.keptRegs[id] {
				c.recycleReg(id)
			}
		}
	}
	// Registers the batch freed but the optimizer deleted every trace of
	// (unobserved temporaries) have no fate entry; recycle them too, as
	// long as nothing re-defined or pinned them.
	for _, id := range pm.freed {
		if _, touched := pm.fate[id]; !touched && !c.defined[id] && !c.keptRegs[id] {
			c.recycleReg(id)
		}
	}
	c.pending = next
}

// recycleReg stacks a dead register id for reuse by a later temporary.
func (c *Context) recycleReg(id bytecode.RegID) {
	if c.inFree[id] {
		return
	}
	c.inFree[id] = true
	c.freeRegs = append(c.freeRegs, id)
}

// pruneInputs drops input declarations no instruction references: they do
// not affect execution, and a cached plan must not demand bindings for
// registers a later, structurally identical flush no longer keeps alive.
func pruneInputs(p *bytecode.Program) {
	used := map[bytecode.RegID]bool{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Out.IsReg() {
			used[in.Out.Reg] = true
		}
		for _, o := range in.Inputs() {
			if o.IsReg() {
				used[o.Reg] = true
			}
		}
	}
	kept := p.Inputs[:0]
	for _, r := range p.Inputs {
		if used[r] {
			kept = append(kept, r)
		}
	}
	p.Inputs = kept
}

// MustFlush is Flush that panics on error, for examples.
func (c *Context) MustFlush() {
	if err := c.Flush(); err != nil {
		panic(err)
	}
}

// batchReads returns the registers any instruction computationally reads
// (BH_SYNC is a materialization fence, not a consumer).
func batchReads(p *bytecode.Program) map[bytecode.RegID]bool {
	reads := map[bytecode.RegID]bool{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == bytecode.OpSync {
			continue
		}
		for _, opnd := range in.Inputs() {
			if opnd.IsReg() {
				reads[opnd.Reg] = true
			}
		}
	}
	return reads
}

// newArray declares a kept register (creation-function arrays).
func (c *Context) newArray(dt tensor.DType, shape tensor.Shape) *Array {
	a := c.newTempArray(dt, shape)
	c.keptRegs[a.reg] = true
	return a
}

// newTempArray declares a droppable register (pure-operation results).
// Dead register ids from earlier flushes are reused (with a fresh
// declaration) before new ones are minted, so iterative workloads record
// the same register names every iteration and keep hitting the plan
// cache. Every handle to a freed register fails the generation check in
// Array.check, so reuse never lets a stale alias touch live data.
func (c *Context) newTempArray(dt tensor.DType, shape tensor.Shape) *Array {
	var reg bytecode.RegID
	if n := len(c.freeRegs); n > 0 {
		reg = c.freeRegs[n-1]
		c.freeRegs = c.freeRegs[:n-1]
		delete(c.inFree, reg)
		c.pending.Regs[reg] = bytecode.RegInfo{DType: dt, Len: shape.Size()}
	} else {
		reg = c.pending.NewReg(dt, shape.Size())
	}
	return &Array{
		ctx:  c,
		reg:  reg,
		view: tensor.NewView(shape),
		dt:   dt,
		gen:  c.regGen[reg],
	}
}

// Zeros returns a float64 array of the given shape filled with 0.
func (c *Context) Zeros(dims ...int) *Array {
	return c.Full(0, dims...)
}

// Ones returns a float64 array of the given shape filled with 1.
func (c *Context) Ones(dims ...int) *Array {
	return c.Full(1, dims...)
}

// Full returns a float64 array of the given shape filled with v. Integral
// fills record integer constants, matching the paper's listing format.
func (c *Context) Full(v float64, dims ...int) *Array {
	a := c.newArray(tensor.Float64, tensor.MustShape(dims...))
	if v == float64(int64(v)) {
		a.emitIdentityConst(bytecode.ConstInt(int64(v)))
	} else {
		a.emitIdentityConst(bytecode.ConstFloat(v))
	}
	return a
}

// ZerosTyped returns an array of the given dtype and shape filled with 0.
func (c *Context) ZerosTyped(dt tensor.DType, dims ...int) *Array {
	a := c.newArray(dt, tensor.MustShape(dims...))
	a.emitIdentityConst(bytecode.ConstOf(dt, 0))
	return a
}

// FullInt returns an int64 array filled with v.
func (c *Context) FullInt(v int64, dims ...int) *Array {
	a := c.newArray(tensor.Int64, tensor.MustShape(dims...))
	a.emitIdentityConst(bytecode.ConstInt(v))
	return a
}

// Arange returns a float64 vector [0, 1, ..., n-1]. n == 0 yields an
// empty array; a negative length is a programming error and panics.
func (c *Context) Arange(n int) *Array {
	if n < 0 {
		panic(fmt.Sprintf("bohrium: Arange length must be non-negative, got %d", n))
	}
	a := c.newArray(tensor.Float64, tensor.MustShape(n))
	c.pending.Emit(bytecode.Instruction{Op: bytecode.OpRange, Out: a.operand()})
	return a
}

// Linspace returns n evenly spaced float64 values over [lo, hi].
// Degenerate lengths follow NumPy: n == 0 yields an empty array, n == 1
// yields [lo]; a negative length is a programming error and panics. No
// arithmetic byte-code is recorded for the empty case.
func (c *Context) Linspace(lo, hi float64, n int) *Array {
	if n < 0 {
		panic(fmt.Sprintf("bohrium: Linspace length must be non-negative, got %d", n))
	}
	a := c.Arange(n)
	if n == 0 {
		return a
	}
	if n > 1 {
		a.MulC((hi - lo) / float64(n-1))
	}
	a.AddC(lo)
	return a
}

// Random returns a float64 array of uniform values in [0, 1) drawn from
// the deterministic counter-based stream for seed.
func (c *Context) Random(seed uint64, dims ...int) *Array {
	a := c.newArray(tensor.Float64, tensor.MustShape(dims...))
	c.pending.Emit(bytecode.Instruction{
		Op:  bytecode.OpRandom,
		Out: a.operand(),
		In1: bytecode.Const(bytecode.ConstInt(int64(seed))),
		In2: bytecode.Const(bytecode.ConstInt(0)),
	})
	return a
}

// FromSlice copies values into a new float64 array of the given shape.
// The data is bound directly to the VM register (no byte-code needed).
func (c *Context) FromSlice(values []float64, dims ...int) (*Array, error) {
	if c.closed {
		return nil, ErrClosed
	}
	shape := tensor.MustShape(dims...)
	tt, err := tensor.FromFloat64s(values, shape)
	if err != nil {
		return nil, err
	}
	// Binding writes the backend's register state, which in-flight async
	// batches own until they finish — fence first.
	if err := c.Wait(); err != nil {
		return nil, err
	}
	a := c.newArray(tensor.Float64, shape)
	c.backend.Bind(a.reg, tt)
	c.pending.MarkInput(a.reg)
	c.defined[a.reg] = true
	return a, nil
}

// MustFromSlice is FromSlice that panics on error, for examples.
func (c *Context) MustFromSlice(values []float64, dims ...int) *Array {
	a, err := c.FromSlice(values, dims...)
	if err != nil {
		panic(err)
	}
	return a
}
