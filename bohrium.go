// Package bohrium is a Go reproduction of the Bohrium runtime studied in
// M. O. Larsen, "Algebraic Transformation of Descriptive Vector Byte-code
// Sequences" (Middleware Doctoral Symposium '16): a NumPy-style lazy array
// front-end that records vector byte-code, an algebraic rewrite engine
// that optimizes the byte-code (constant merging, power expansion over
// addition chains, inverse→LU-solve rewriting, fusion-friendly cleanup),
// and a multicore virtual machine that executes it.
//
// The programming model mirrors "import bohrium as np": array operations
// build byte-code instead of computing; a Flush (or any value access)
// optimizes and executes the batch:
//
//	ctx := bohrium.NewContext(nil)
//	defer ctx.Close()
//	a := ctx.Zeros(10)
//	a.AddC(1).AddC(1).AddC(1) // records three BH_ADDs
//	fmt.Println(a.MustData()) // optimizer merges them into one, VM runs it
package bohrium

import (
	"errors"
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// ErrClosed is returned when using a Context after Close.
var ErrClosed = errors.New("bohrium: context is closed")

// Config tunes a Context. The zero value (or nil) gives the full
// optimizer pipeline and the fused multicore engine.
type Config struct {
	// Optimizer selects the rewrite options; nil means the full default
	// pipeline, an explicitly zeroed Options disables all rewrites.
	Optimizer *rewrite.Options
	// Workers is the VM worker pool width (0: GOMAXPROCS).
	Workers int
	// ParallelThreshold is the minimum sweep size (in elements) before the
	// VM considers splitting elementwise sweeps, reductions, and scans
	// across workers (see vm.Config.ParallelThreshold for the exact
	// reduction/scan conditions); zero picks vm.DefaultParallelThreshold.
	// Results are independent of Workers for any fixed threshold: the
	// VM's parallel reduction and scan strategies choose their split
	// points from the views and this threshold alone.
	ParallelThreshold int
	// DisableFusion turns off fused-sweep execution.
	DisableFusion bool
	// CollectReports keeps per-flush optimizer reports (LastReport).
	CollectReports bool
}

// Context owns a byte-code recording buffer and the virtual machine that
// executes flushed batches. It is not safe for concurrent use — like a
// NumPy session, one goroutine drives it; parallelism happens inside the
// VM.
type Context struct {
	cfg      Config
	pipeline *rewrite.Pipeline
	machine  *vm.Machine
	pending  *bytecode.Program
	defined  map[bytecode.RegID]bool // registers materialized by earlier flushes
	keptRegs map[bytecode.RegID]bool // registers whose values must survive flushes
	lastRep  *rewrite.Report
	closed   bool
}

// NewContext creates a session. Pass nil for defaults.
func NewContext(cfg *Config) *Context {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	opts := rewrite.DefaultOptions()
	if c.Optimizer != nil {
		opts = *c.Optimizer
	}
	return &Context{
		cfg:      c,
		pipeline: rewrite.Build(opts),
		machine: vm.New(vm.Config{
			Workers:           c.Workers,
			ParallelThreshold: c.ParallelThreshold,
			Fusion:            !c.DisableFusion,
		}),
		pending:  bytecode.NewProgram(),
		defined:  map[bytecode.RegID]bool{},
		keptRegs: map[bytecode.RegID]bool{},
	}
}

// Close releases the VM worker pool. The context must not be used after.
func (c *Context) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.machine.Close()
}

// LastReport returns the optimizer report of the most recent flush, when
// CollectReports is enabled.
func (c *Context) LastReport() *rewrite.Report { return c.lastRep }

// Stats exposes cumulative VM counters: sweeps, fused instructions (with
// a per-dtype breakdown in FusedByDType), reductions folded into their
// producer sweep (FusedReductions — sum(x*y) as one pass with no
// materialized temporary), elements, and the buffer lifecycle counters
// (BuffersAllocated, PoolHits, BytesAllocated) that show how much
// allocation the register recycle pool saved — Free'd temporaries are
// handed back to later allocations of the same dtype and length.
func (c *Context) Stats() vm.Stats { return c.machine.Stats() }

// PendingProgram returns a copy of the not-yet-flushed byte-code — the
// stream the optimizer will see. Examples and tools use it to show
// "before" listings.
func (c *Context) PendingProgram() *bytecode.Program { return c.pending.Clone() }

// Flush optimizes and executes all recorded byte-code. Arrays read after
// a flush observe the computed values. Flushing an empty buffer is a
// no-op.
func (c *Context) Flush() error {
	if c.closed {
		return ErrClosed
	}
	if c.pending.Len() == 0 {
		return nil
	}
	// Mark externally observable registers: everything explicitly kept
	// (creation-function arrays, Keep/Sync'd arrays) plus *leaf*
	// temporaries — pure-op results no other byte-code consumes, which
	// the caller almost certainly holds. Consumed temporaries stay
	// droppable; that is what allows the equation (2) rewrite to delete
	// a discarded inverse.
	batch := c.pending.Clone()
	consumed := batchReads(batch)
	for r := range batch.Regs {
		id := bytecode.RegID(r)
		if c.keptRegs[id] || (writtenBy(batch, id) && !consumed[id]) {
			batch.MarkOutput(id)
		}
	}
	optimized, report, err := c.pipeline.Optimize(batch)
	if err != nil {
		return fmt.Errorf("bohrium: optimize failed: %w", err)
	}
	if c.cfg.CollectReports {
		c.lastRep = report
	}
	if err := c.machine.Run(optimized); err != nil {
		return fmt.Errorf("bohrium: execution failed: %w", err)
	}
	// Start a fresh batch that inherits the register declarations: every
	// register defined so far is an input of the next batch.
	// One pass over the optimized program records each register's fate —
	// written (live) or destroyed by a BH_FREE after its last write
	// (dead); registers the batch never touches keep their prior defined
	// state. A freed register must not become an input of the next batch:
	// its buffer has gone back to the VM's recycle pool.
	fate := map[bytecode.RegID]bool{}
	for i := range optimized.Instrs {
		in := &optimized.Instrs[i]
		if !in.Out.IsReg() {
			continue
		}
		switch {
		case in.Op == bytecode.OpFree:
			fate[in.Out.Reg] = false
		case in.WritesReg(in.Out.Reg):
			fate[in.Out.Reg] = true
		}
	}
	next := bytecode.NewProgram()
	next.Regs = append([]bytecode.RegInfo(nil), optimized.Regs...)
	for r := range optimized.Regs {
		id := bytecode.RegID(r)
		live, touched := fate[id]
		if !touched {
			live = c.defined[id]
		}
		if live {
			next.MarkInput(id)
			c.defined[id] = true
		} else {
			delete(c.defined, id)
		}
	}
	c.pending = next
	return nil
}

// MustFlush is Flush that panics on error, for examples.
func (c *Context) MustFlush() {
	if err := c.Flush(); err != nil {
		panic(err)
	}
}

// batchReads returns the registers any instruction computationally reads
// (BH_SYNC is a materialization fence, not a consumer).
func batchReads(p *bytecode.Program) map[bytecode.RegID]bool {
	reads := map[bytecode.RegID]bool{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == bytecode.OpSync {
			continue
		}
		for _, opnd := range in.Inputs() {
			if opnd.IsReg() {
				reads[opnd.Reg] = true
			}
		}
	}
	return reads
}

func writtenBy(p *bytecode.Program, r bytecode.RegID) bool {
	for i := range p.Instrs {
		if p.Instrs[i].WritesReg(r) {
			return true
		}
	}
	return false
}

// newArray declares a kept register (creation-function arrays).
func (c *Context) newArray(dt tensor.DType, shape tensor.Shape) *Array {
	a := c.newTempArray(dt, shape)
	c.keptRegs[a.reg] = true
	return a
}

// newTempArray declares a droppable register (pure-operation results).
func (c *Context) newTempArray(dt tensor.DType, shape tensor.Shape) *Array {
	reg := c.pending.NewReg(dt, shape.Size())
	return &Array{
		ctx:  c,
		reg:  reg,
		view: tensor.NewView(shape),
		dt:   dt,
	}
}

// Zeros returns a float64 array of the given shape filled with 0.
func (c *Context) Zeros(dims ...int) *Array {
	return c.Full(0, dims...)
}

// Ones returns a float64 array of the given shape filled with 1.
func (c *Context) Ones(dims ...int) *Array {
	return c.Full(1, dims...)
}

// Full returns a float64 array of the given shape filled with v. Integral
// fills record integer constants, matching the paper's listing format.
func (c *Context) Full(v float64, dims ...int) *Array {
	a := c.newArray(tensor.Float64, tensor.MustShape(dims...))
	if v == float64(int64(v)) {
		a.emitIdentityConst(bytecode.ConstInt(int64(v)))
	} else {
		a.emitIdentityConst(bytecode.ConstFloat(v))
	}
	return a
}

// ZerosTyped returns an array of the given dtype and shape filled with 0.
func (c *Context) ZerosTyped(dt tensor.DType, dims ...int) *Array {
	a := c.newArray(dt, tensor.MustShape(dims...))
	a.emitIdentityConst(bytecode.ConstOf(dt, 0))
	return a
}

// FullInt returns an int64 array filled with v.
func (c *Context) FullInt(v int64, dims ...int) *Array {
	a := c.newArray(tensor.Int64, tensor.MustShape(dims...))
	a.emitIdentityConst(bytecode.ConstInt(v))
	return a
}

// Arange returns a float64 vector [0, 1, ..., n-1].
func (c *Context) Arange(n int) *Array {
	a := c.newArray(tensor.Float64, tensor.MustShape(n))
	c.pending.Emit(bytecode.Instruction{Op: bytecode.OpRange, Out: a.operand()})
	return a
}

// Linspace returns n evenly spaced float64 values over [lo, hi].
func (c *Context) Linspace(lo, hi float64, n int) *Array {
	a := c.Arange(n)
	if n > 1 {
		a.MulC((hi - lo) / float64(n-1))
	}
	a.AddC(lo)
	return a
}

// Random returns a float64 array of uniform values in [0, 1) drawn from
// the deterministic counter-based stream for seed.
func (c *Context) Random(seed uint64, dims ...int) *Array {
	a := c.newArray(tensor.Float64, tensor.MustShape(dims...))
	c.pending.Emit(bytecode.Instruction{
		Op:  bytecode.OpRandom,
		Out: a.operand(),
		In1: bytecode.Const(bytecode.ConstInt(int64(seed))),
		In2: bytecode.Const(bytecode.ConstInt(0)),
	})
	return a
}

// FromSlice copies values into a new float64 array of the given shape.
// The data is bound directly to the VM register (no byte-code needed).
func (c *Context) FromSlice(values []float64, dims ...int) (*Array, error) {
	shape := tensor.MustShape(dims...)
	tt, err := tensor.FromFloat64s(values, shape)
	if err != nil {
		return nil, err
	}
	a := c.newArray(tensor.Float64, shape)
	c.machine.Bind(a.reg, tt)
	c.pending.MarkInput(a.reg)
	c.defined[a.reg] = true
	return a, nil
}

// MustFromSlice is FromSlice that panics on error, for examples.
func (c *Context) MustFromSlice(values []float64, dims ...int) *Array {
	a, err := c.FromSlice(values, dims...)
	if err != nil {
		panic(err)
	}
	return a
}
