package bohrium

import (
	"errors"
	"strings"
	"testing"
)

// TestClosedContextEntryPoints is the audit table: every public entry
// point on a closed Context reports ErrClosed — errors for the
// error-returning API, the ErrClosed text for String (which cannot fail)
// — never a panic and never a silent zero value.
func TestClosedContextEntryPoints(t *testing.T) {
	newClosed := func() (*Context, *Array) {
		ctx := NewContext(nil)
		a := ctx.Ones(4)
		ctx.MustFlush()
		ctx.Close()
		ctx.Close() // idempotent
		return ctx, a
	}

	tests := []struct {
		name string
		call func(ctx *Context, a *Array) error
	}{
		{"Flush", func(ctx *Context, a *Array) error { return ctx.Flush() }},
		{"Submit", func(ctx *Context, a *Array) error { return ctx.Submit() }},
		{"Wait", func(ctx *Context, a *Array) error { return ctx.Wait() }},
		{"Stats", func(ctx *Context, a *Array) error {
			_, err := ctx.Stats()
			return err
		}},
		{"FromSlice", func(ctx *Context, a *Array) error {
			_, err := ctx.FromSlice([]float64{1, 2}, 2)
			return err
		}},
		{"Array.Data", func(ctx *Context, a *Array) error {
			_, err := a.Data()
			return err
		}},
		{"Array.At", func(ctx *Context, a *Array) error {
			_, err := a.At(0)
			return err
		}},
		{"Array.Scalar", func(ctx *Context, a *Array) error {
			_, err := a.Scalar() // ErrClosed wins over the size complaint
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx, a := newClosed()
			err := tt.call(ctx, a)
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("%s after close: err = %v, want ErrClosed", tt.name, err)
			}
		})
	}

	t.Run("Array.String", func(t *testing.T) {
		ctx := NewContext(nil)
		a := ctx.Ones(4)
		ctx.MustFlush()
		ctx.Close()
		if got := a.String(); !strings.Contains(got, ErrClosed.Error()) {
			t.Fatalf("String after close = %q, want the ErrClosed text", got)
		}
	})

	t.Run("MustStats panics with ErrClosed", func(t *testing.T) {
		ctx, _ := newClosed()
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrClosed) {
				t.Fatalf("MustStats panic = %v, want ErrClosed", r)
			}
		}()
		ctx.MustStats()
	})
}

// TestClosedSharedContextLeavesSiblingsRunning: closing one session on a
// shared Runtime reports ErrClosed for that session while its siblings
// (and the shared pool) keep working.
func TestClosedSharedContextLeavesSiblingsRunning(t *testing.T) {
	rt := NewRuntime(nil)
	defer rt.Close()
	a := rt.NewContext(nil)
	b := rt.NewContext(nil)
	defer b.Close()

	x := a.Ones(8)
	a.MustFlush()
	a.Close()
	if _, err := x.Data(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session data access: %v, want ErrClosed", err)
	}

	y := b.Ones(1 << 16) // big enough to fan out on the shared pool
	y.AddC(1)
	got, err := y.Data()
	if err != nil {
		t.Fatalf("sibling session broken after Close: %v", err)
	}
	if got[0] != 2 || got[len(got)-1] != 2 {
		t.Fatalf("sibling session computed %v", got[0])
	}
}
