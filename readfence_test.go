package bohrium

import "testing"

// TestDataReadDoesNotPerturbPlanKeys is the regression test for the
// sticky-Sync read leak: Array.Data used to route through Sync, which
// permanently set keptRegs for the register — one debug read re-roled
// the register in every later batch, changing those batches'
// fingerprints (cache misses forever) and blocking id recycling. A read
// must fence (materialize for this flush) without keeping: after the
// read, later structurally identical batches must keep hitting the plan
// cache.
func TestDataReadDoesNotPerturbPlanKeys(t *testing.T) {
	ctx := newTestContext(t, nil)
	x := ctx.Full(1.5, 8)
	u := x.TimesC(2) // temporary; consumed (not written) by every later batch
	ctx.MustFlush()

	iter := func() {
		s := u.Sum() // u consumed: with the leak, a kept u re-roles this batch
		s.Keep()
		ctx.MustFlush()
		s.Free()
		ctx.MustFlush()
	}
	iter() // compile both phases
	iter() // steady state
	if hits, _ := flushDelta(ctx, iter); hits != 2 {
		t.Fatalf("steady state not reached before the read (hits=%d)", hits)
	}

	// The debug read: its own batch is new structure (a BH_SYNC on u),
	// which may compile — that is fine and correct. What must NOT happen
	// is any effect on the batches that follow.
	d, err := u.Data()
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 3 {
		t.Fatalf("u[0] = %v, want 3", d[0])
	}
	if hits, misses := flushDelta(ctx, iter); hits != 2 || misses != 0 {
		t.Errorf("a Data() read changed the next batches' plan keys: hits=%d misses=%d, want 2/0", hits, misses)
	}

	// Reading twice is still fine (the read batch itself now hits too).
	before := ctx.MustStats()
	if _, err := u.Data(); err != nil {
		t.Fatal(err)
	}
	if after := ctx.MustStats(); after.PlanMisses != before.PlanMisses {
		t.Errorf("repeated identical read batch missed the cache")
	}
}

// TestDataReadDoesNotBlockRecycling: an iteration that creates, reads
// and frees temporaries must recycle their register ids — every
// steady-state iteration records the same names, its batches keep their
// fingerprints, and the plan cache keeps hitting with the read in the
// loop.
func TestDataReadDoesNotBlockRecycling(t *testing.T) {
	ctx := newTestContext(t, nil)
	x := ctx.Full(2, 8)
	ctx.MustFlush()

	iter := func() float64 {
		tmp := x.TimesC(3) // reuses the recycled register ids per iteration
		s := tmp.Sum()
		v, err := s.Scalar() // fences s mid-loop
		if err != nil {
			t.Fatal(err)
		}
		tmp.Free()
		s.Free()
		ctx.MustFlush()
		return v
	}
	want := iter()
	iter()
	if hits, _ := flushDelta(ctx, func() { iter() }); hits == 0 {
		t.Fatal("steady state not reached")
	}
	if hits, misses := flushDelta(ctx, func() {
		if got := iter(); got != want {
			t.Fatalf("value drifted: %v != %v", got, want)
		}
	}); misses != 0 {
		t.Errorf("read-then-free iteration stopped hitting (hits=%d misses=%d)", hits, misses)
	}
}

// TestSyncStillKeeps: the public Sync keeps its pinning contract — it is
// the explicit "observe this array from now on" API, unlike the reads.
func TestSyncStillKeeps(t *testing.T) {
	ctx := newTestContext(t, nil)
	x := ctx.Full(1, 4)
	u := x.PlusC(1) // temporary
	u.Sync()
	ctx.MustFlush()
	// u consumed by a later batch: because Sync kept it, the batch roles
	// differ from the unkept variant — pin that by value, not by cache
	// internals: the optimizer must not delete u's materialization.
	s := u.Sum()
	v, err := s.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Errorf("sum = %v, want 8", v)
	}
	if d := u.MustData(); d[0] != 2 {
		t.Errorf("synced temporary lost its value: %v", d[0])
	}
}
