package bohrium

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Linear-algebra operations, recorded as byte-code extension methods. The
// MatMul-of-an-Inverse pattern is what the paper's equation (2) rewrite
// turns into a single BH_SOLVE when the inverse is not otherwise used.

// MatMul returns the matrix product a · b. Both must be 2-d with
// compatible inner dimensions.
func (a *Array) MatMul(b *Array) *Array {
	a.check()
	b.check()
	if a.NDim() != 2 || b.NDim() != 2 || a.view.Shape[1] != b.view.Shape[0] {
		panic(fmt.Sprintf("bohrium: matmul shapes %v x %v do not chain", a.Shape(), b.Shape()))
	}
	out := a.ctx.newTempArray(tensor.Promote(a.dt, b.dt),
		tensor.MustShape(a.view.Shape[0], b.view.Shape[1]))
	a.ctx.pending.EmitBinary(bytecode.OpMatmul, out.operand(), a.operand(), b.operand())
	return out
}

// Inverse returns A⁻¹ for a square matrix.
func (a *Array) Inverse() *Array {
	a.check()
	if a.NDim() != 2 || a.view.Shape[0] != a.view.Shape[1] {
		panic(fmt.Sprintf("bohrium: inverse of non-square %v", a.Shape()))
	}
	out := a.ctx.newTempArray(tensor.Float64, a.view.Shape)
	a.ctx.pending.EmitUnary(bytecode.OpInverse, out.operand(), a.operand())
	return out
}

// Solve returns x with A·x = b, computed by LU factorization with partial
// pivoting. b may be a vector (m,) or a matrix of right-hand sides (m, k).
func (a *Array) Solve(b *Array) *Array {
	a.check()
	b.check()
	if a.NDim() != 2 || a.view.Shape[0] != a.view.Shape[1] {
		panic(fmt.Sprintf("bohrium: solve with non-square %v", a.Shape()))
	}
	if b.NDim() < 1 || b.NDim() > 2 || b.view.Shape[0] != a.view.Shape[0] {
		panic(fmt.Sprintf("bohrium: solve rhs %v incompatible with %v", b.Shape(), a.Shape()))
	}
	out := a.ctx.newTempArray(tensor.Float64, b.view.Shape)
	a.ctx.pending.EmitBinary(bytecode.OpSolve, out.operand(), a.operand(), b.operand())
	return out
}

// LU returns the packed LU factors of P·A (L strictly below the diagonal,
// U on and above; the permutation stays internal).
func (a *Array) LU() *Array {
	a.check()
	if a.NDim() != 2 || a.view.Shape[0] != a.view.Shape[1] {
		panic(fmt.Sprintf("bohrium: LU of non-square %v", a.Shape()))
	}
	out := a.ctx.newTempArray(tensor.Float64, a.view.Shape)
	a.ctx.pending.EmitUnary(bytecode.OpLU, out.operand(), a.operand())
	return out
}
