package bohrium

import "testing"

// TestReverseSlice pins the negative-step slice semantics at the array
// level: Slice(dim, n-1, -1, -1) reverses a dimension (NumPy a[::-1]),
// larger negative steps subsample from the end, and computation through
// reversed views is correct (they are plain strided views with negative
// strides — no copies).
func TestReverseSlice(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Arange(6) // 0 1 2 3 4 5
	rev, err := a.Slice(0, 5, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	d := rev.MustData()
	want := []float64{5, 4, 3, 2, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("reversed = %v, want %v", d, want)
		}
	}

	// Stepped from the end: indices 5, 3, 1.
	odd := a.MustSlice(0, 5, -1, -2)
	if d := odd.MustData(); len(d) != 3 || d[0] != 5 || d[1] != 3 || d[2] != 1 {
		t.Errorf("a[5::-2] = %v, want [5 3 1]", d)
	}

	// Bounded below: indices 4, 3, 2 (stop 1 exclusive).
	mid := a.MustSlice(0, 4, 1, -1)
	if d := mid.MustData(); len(d) != 3 || d[0] != 4 || d[2] != 2 {
		t.Errorf("a[4:1:-1] = %v, want [4 3 2]", d)
	}

	// Compute through a reversed view: b + reverse(b) is constant.
	b := ctx.Arange(8)
	sum := b.Plus(b.MustSlice(0, 7, -1, -1))
	for i, v := range sum.MustData() {
		if v != 7 {
			t.Fatalf("palindrome sum[%d] = %v, want 7", i, v)
		}
	}

	// Writing through a reversed view reverses in place.
	c := ctx.Arange(4)
	crev := c.MustSlice(0, 3, -1, -1)
	tmp := crev.Copy()
	c.Assign(tmp)
	if d := c.MustData(); d[0] != 3 || d[3] != 0 {
		t.Errorf("in-place reverse = %v, want [3 2 1 0]", d)
	}

	// Empty reversed slice: start == stop.
	e := a.MustSlice(0, 2, 2, -1)
	if e.Size() != 0 {
		t.Errorf("a[2:2:-1] size = %d, want 0", e.Size())
	}

	// The generic reverse recipe works on an empty array too.
	z := ctx.Zeros(0)
	if r := z.MustSlice(0, -1, -1, -1); r.Size() != 0 {
		t.Errorf("reverse of empty array size = %d, want 0", r.Size())
	}

	// Errors: zero step, and out-of-range reversed windows.
	if _, err := a.Slice(0, 2, 4, 0); err == nil {
		t.Error("step 0 did not error")
	}
	if _, err := a.Slice(0, 6, -1, -1); err == nil {
		t.Error("reversed start == extent did not error")
	}
	if _, err := a.Slice(0, 3, -2, -1); err == nil {
		t.Error("reversed stop < -1 did not error")
	}
	if _, err := a.Slice(0, 2, 4, -1); err == nil {
		t.Error("reversed stop > start did not error")
	}
}

// TestReverseSlice2D: reversing one axis of a matrix flips its rows.
func TestReverseSlice2D(t *testing.T) {
	ctx := newTestContext(t, nil)
	m := ctx.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	flipped := m.MustSlice(0, 1, -1, -1) // rows reversed
	d := flipped.MustData()
	want := []float64{4, 5, 6, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("flipud = %v, want %v", d, want)
		}
	}
	if v, err := flipped.At(0, 2); err != nil || v != 6 {
		t.Errorf("flipped[0,2] = %v (err %v), want 6", v, err)
	}
}
