// Benchmarks regenerating the paper's evaluation (experiments E1–E6 in
// DESIGN.md): run `go test -bench=. -benchmem` and compare the ns/op
// ratios against the table shapes recorded in EXPERIMENTS.md. Absolute
// numbers are machine-dependent; the *shape* — who wins, by what factor —
// is the reproduction target.
package bohrium_test

import (
	"fmt"
	"runtime"
	"testing"

	"bohrium"
	"bohrium/internal/bench"
	"bohrium/internal/bytecode"
	"bohrium/internal/chains"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

const benchN = 1 << 20

// runProg executes one program b.N times on a fused multicore machine.
func runProg(b *testing.B, prog *bytecode.Program, bind func(*vm.Machine)) {
	b.Helper()
	if err := prog.Validate(); err != nil {
		b.Fatal(err)
	}
	machine := vm.New(vm.Config{Fusion: true, SkipValidation: true})
	defer machine.Close()
	if bind != nil {
		bind(machine)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := machine.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// optimizeWith applies a pipeline, failing the benchmark on error.
func optimizeWith(b *testing.B, pl *rewrite.Pipeline, prog *bytecode.Program) *bytecode.Program {
	b.Helper()
	out, _, err := pl.Optimize(prog)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkE1AddMerge — paper Listings 1–3: k repeated "a += 1" sweeps,
// raw versus constant-merged. Expect optimized time roughly k/1 lower.
func BenchmarkE1AddMerge(b *testing.B) {
	for _, k := range []int{3, 8, 16} {
		prog := bench.AddMergeProgram(k, benchN, tensor.Float64)
		b.Run(fmt.Sprintf("k=%d/raw", k), func(b *testing.B) {
			runProg(b, prog.Clone(), nil)
		})
		b.Run(fmt.Sprintf("k=%d/merged", k), func(b *testing.B) {
			pl := rewrite.NewPipeline(rewrite.CanonicalizeRule{}, rewrite.AddMergeRule{})
			runProg(b, optimizeWith(b, pl, prog), nil)
		})
	}
}

// BenchmarkE2PowerChain — paper Listings 4–5: x¹⁰ as one BH_POWER versus
// the three expansion strategies (9, 5, and 4 multiplies).
func BenchmarkE2PowerChain(b *testing.B) {
	prog := bench.PowerProgram(10, benchN)
	b.Run("bh_power", func(b *testing.B) {
		runProg(b, prog.Clone(), nil)
	})
	for _, st := range []struct {
		name  string
		strat chains.Strategy
	}{
		{"naive9", chains.StrategyNaive},
		{"paper5", chains.StrategySquareIncrement},
		{"binary4", chains.StrategyBinary},
	} {
		b.Run(st.name, func(b *testing.B) {
			pl := rewrite.Build(rewrite.Options{
				PowerExpand: true, PowerStrategy: st.strat, PowerNoCostModel: true,
			})
			runProg(b, optimizeWith(b, pl, prog), nil)
		})
	}
}

// BenchmarkE3PowerSweep — conclusion claim: exponent sweep, BH_POWER vs
// expanded chains; the naive strategy crosses over, binary never does.
func BenchmarkE3PowerSweep(b *testing.B) {
	for _, n := range []int64{4, 16, 32, 64} {
		prog := bench.PowerProgram(n, benchN)
		b.Run(fmt.Sprintf("n=%d/power", n), func(b *testing.B) {
			runProg(b, prog.Clone(), nil)
		})
		b.Run(fmt.Sprintf("n=%d/naive", n), func(b *testing.B) {
			pl := rewrite.Build(rewrite.Options{
				PowerExpand: true, PowerStrategy: chains.StrategyNaive, PowerNoCostModel: true,
			})
			runProg(b, optimizeWith(b, pl, prog), nil)
		})
		b.Run(fmt.Sprintf("n=%d/binary", n), func(b *testing.B) {
			pl := rewrite.Build(rewrite.Options{
				PowerExpand: true, PowerStrategy: chains.StrategyBinary, PowerNoCostModel: true,
			})
			runProg(b, optimizeWith(b, pl, prog), nil)
		})
	}
}

// BenchmarkE4Solve — equation (2): x = A⁻¹·B versus the rewritten
// BH_SOLVE across system sizes.
func BenchmarkE4Solve(b *testing.B) {
	for _, m := range []int{32, 64, 128, 256} {
		prog := bench.SolveProgram(m)
		bind := solveBinder(m)
		b.Run(fmt.Sprintf("m=%d/inverse", m), func(b *testing.B) {
			runProg(b, prog.Clone(), bind)
		})
		b.Run(fmt.Sprintf("m=%d/solve", m), func(b *testing.B) {
			runProg(b, optimizeWith(b, rewrite.Default(), prog), bind)
		})
	}
}

func solveBinder(m int) func(*vm.Machine) {
	a := tensor.MustNew(tensor.Float64, tensor.MustShape(m, m))
	a.FillRandom(42, -1, 1)
	for i := 0; i < m; i++ {
		a.SetAt(float64(m)+2, i, i)
	}
	rhs := tensor.MustNew(tensor.Float64, tensor.MustShape(m))
	rhs.FillRandom(43, -1, 1)
	return func(machine *vm.Machine) {
		machine.Bind(0, a)
		machine.Bind(2, rhs)
	}
}

// BenchmarkE5Workloads — end-to-end scientific kernels through the public
// API, optimizer+fusion off versus fully on.
func BenchmarkE5Workloads(b *testing.B) {
	off := rewrite.Options{}
	configs := []struct {
		name string
		cfg  *bohrium.Config
	}{
		{"baseline", &bohrium.Config{Optimizer: &off, DisableFusion: true}},
		{"optimized", nil},
	}
	type wl struct {
		name string
		run  func(*bohrium.Context) (float64, error)
	}
	workloads := []wl{
		{"heat2d", func(c *bohrium.Context) (float64, error) { return bench.Heat2D(c, 96, 20) }},
		{"blackscholes", func(c *bohrium.Context) (float64, error) { return bench.BlackScholes(c, benchN/4) }},
		{"leibnizpi", func(c *bohrium.Context) (float64, error) { return bench.LeibnizPi(c, benchN/4) }},
		{"montecarlopi", func(c *bohrium.Context) (float64, error) { return bench.MonteCarloPi(c, benchN/4) }},
	}
	for _, w := range workloads {
		for _, cfg := range configs {
			b.Run(w.name+"/"+cfg.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ctx := bohrium.NewContext(cfg.cfg)
					if _, err := w.run(ctx); err != nil {
						ctx.Close()
						b.Fatal(err)
					}
					ctx.Close()
				}
			})
		}
	}
}

// BenchmarkE6Fusion — ablation D4: the identical byte-code stream executed
// with and without sweep fusion.
func BenchmarkE6Fusion(b *testing.B) {
	prog := bench.AddMergeProgram(8, benchN, tensor.Float64)
	for _, fusion := range []bool{false, true} {
		name := "off"
		if fusion {
			name = "on"
		}
		b.Run("fusion="+name, func(b *testing.B) {
			machine := vm.New(vm.Config{Fusion: fusion, SkipValidation: true})
			defer machine.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := machine.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6GapTolerance — ablation D1: optimizing the noisy stream with
// adjacent-only versus interference-aware matching (rewrite cost itself is
// negligible; the executed program differs).
func BenchmarkE6GapTolerance(b *testing.B) {
	prog := bench.AddMergeNoisyProgram(8, benchN, tensor.Int64)
	b.Run("adjacent-only", func(b *testing.B) {
		pl := rewrite.NewPipeline(rewrite.AddMergeRule{AdjacentOnly: true})
		runProg(b, optimizeWith(b, pl, prog), nil)
	})
	b.Run("gap-tolerant", func(b *testing.B) {
		pl := rewrite.NewPipeline(rewrite.AddMergeRule{})
		runProg(b, optimizeWith(b, pl, prog), nil)
	})
}

// sweepWorkerCounts returns the worker widths the reduce/scan benchmarks
// compare: serial, two workers, and the full machine (deduplicated).
func sweepWorkerCounts() []int {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	out := counts[:0]
	seen := map[int]bool{}
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// benchSweep fills a0 with random data once, then times the sweep program
// b.N times on a machine of the given worker width.
func benchSweep(b *testing.B, workers int, fillSrc, sweepSrc string) {
	b.Helper()
	fill, err := bytecode.Parse(fillSrc)
	if err != nil {
		b.Fatal(err)
	}
	sweep, err := bytecode.Parse(sweepSrc)
	if err != nil {
		b.Fatal(err)
	}
	if err := sweep.Validate(); err != nil {
		b.Fatal(err)
	}
	m := vm.New(vm.Config{Workers: workers, SkipValidation: true})
	defer m.Close()
	if err := m.Run(fill); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(sweep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduce races the parallel reduction strategies against the
// 1-worker machine on sweeps far above DefaultParallelThreshold: a full
// SumAll (two-phase axis chunking) and a row-wise reduction (output-sweep
// split). The ns/op ratio between workers=1 and workers=N is the
// reduction engine's scaling figure.
func BenchmarkReduce(b *testing.B) {
	const n = 1 << 22 // 4 Mi elements; rows case reads it as 2048×2048
	fill := fmt.Sprintf(".reg a0 float64 %d\nBH_RANDOM a0 3 0\nBH_SYNC a0\n", n)
	cases := []struct{ name, src string }{
		{"sumall", fmt.Sprintf(
			".reg a0 float64 %d\n.reg a1 float64 1\n.in a0\nBH_ADD_REDUCE a1 [0:1:1] a0 [0:%d:1] axis=0\nBH_SYNC a1\n", n, n)},
		{"rows", fmt.Sprintf(
			".reg a0 float64 %d\n.reg a1 float64 2048\n.in a0\nBH_ADD_REDUCE a1 [0:2048:1] a0 [0:%d:2048][0:2048:1] axis=1\nBH_SYNC a1\n", n, n)},
	}
	for _, tc := range cases {
		for _, w := range sweepWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(b *testing.B) {
				benchSweep(b, w, fill, tc.src)
			})
		}
	}
}

// BenchmarkScan races the three-pass chunked scan (1-D cumsum) and the
// line-split scan (row-wise cumsum) against the 1-worker machine.
func BenchmarkScan(b *testing.B) {
	const n = 1 << 22
	fill := fmt.Sprintf(".reg a0 float64 %d\nBH_RANDOM a0 5 0\nBH_SYNC a0\n", n)
	cases := []struct{ name, src string }{
		{"cumsum", fmt.Sprintf(
			".reg a0 float64 %d\n.reg a1 float64 %d\n.in a0\nBH_ADD_ACCUMULATE a1 a0 axis=0\nBH_SYNC a1\n", n, n)},
		{"rows", fmt.Sprintf(
			".reg a0 float64 %d\n.reg a1 float64 %d\n.in a0\nBH_ADD_ACCUMULATE a1 [0:%d:2048][0:2048:1] a0 [0:%d:2048][0:2048:1] axis=1\nBH_SYNC a1\n", n, n, n, n)},
	}
	for _, tc := range cases {
		for _, w := range sweepWorkerCounts() {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, w), func(b *testing.B) {
				benchSweep(b, w, fill, tc.src)
			})
		}
	}
}

// BenchmarkE7DTypeFusion — the dtype-generalized fused engine with
// reduction epilogues: Black-Scholes chains (float32/float64) and integer
// hash-folds (int32/int64) ending in a full reduction, fused versus
// unfused. The fused runs fold the reduction into the producer sweep
// (Stats.FusedReductions) and never materialize the dead temporaries.
func BenchmarkE7DTypeFusion(b *testing.B) {
	workloads := []struct {
		name string
		prog *bytecode.Program
	}{
		{"black-scholes-float64", bench.BlackScholesProgram(tensor.Float64, benchN)},
		{"black-scholes-float32", bench.BlackScholesProgram(tensor.Float32, benchN)},
		{"checksum-int64", bench.ChecksumProgram(tensor.Int64, benchN)},
		{"checksum-int32", bench.ChecksumProgram(tensor.Int32, benchN)},
	}
	for _, w := range workloads {
		b.Run(w.name+"/unfused", func(b *testing.B) {
			if err := w.prog.Validate(); err != nil {
				b.Fatal(err)
			}
			m := vm.New(vm.Config{Fusion: false, SkipValidation: true})
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Run(w.prog); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.name+"/fused", func(b *testing.B) {
			runProg(b, w.prog.Clone(), nil)
		})
	}
}

// BenchmarkOptimizerOverhead measures the rewrite pipeline itself — the
// cost the runtime pays per flush before execution.
func BenchmarkOptimizerOverhead(b *testing.B) {
	progs := map[string]*bytecode.Program{
		"listing2":  bench.AddMergeProgram(3, 10, tensor.Float64),
		"noisy-k16": bench.AddMergeNoisyProgram(16, 10, tensor.Int64),
		"power-x10": bench.PowerProgram(10, 10),
		"solve-m8":  bench.SolveProgram(8),
	}
	for name, prog := range progs {
		b.Run(name, func(b *testing.B) {
			pl := rewrite.Default()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pl.Optimize(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
