package bohrium

import (
	"math"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
)

func newTestContext(t *testing.T, cfg *Config) *Context {
	t.Helper()
	ctx := NewContext(cfg)
	t.Cleanup(ctx.Close)
	return ctx
}

func TestListing1Quickstart(t *testing.T) {
	// The paper's Listing 1: a = zeros(10); a += 1 three times; print a.
	ctx := newTestContext(t, &Config{CollectReports: true})
	a := ctx.Zeros(10)
	a.AddC(1)
	a.AddC(1)
	a.AddC(1)
	data := a.MustData()
	if len(data) != 10 {
		t.Fatalf("len = %d", len(data))
	}
	for i, v := range data {
		if v != 3 {
			t.Fatalf("a[%d] = %v, want 3", i, v)
		}
	}
	// The optimizer must have merged the three adds (Listing 2→3).
	rep := ctx.LastReport()
	if rep == nil {
		t.Fatal("no optimizer report collected")
	}
	if rep.Applied["add-merge"] < 2 {
		t.Errorf("add-merge fired %d times, want >= 2: %v", rep.Applied["add-merge"], rep.Applied)
	}
}

func TestRecordedBytecodeMatchesListing2(t *testing.T) {
	// The byte-code the front-end records for Listing 1 is exactly the
	// paper's Listing 2 (IDENTITY, ADD, ADD, ADD; SYNC arrives on read).
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(10)
	a.AddC(1).AddC(1).AddC(1)
	p := ctx.PendingProgram()
	wantOps := []bytecode.Opcode{bytecode.OpIdentity, bytecode.OpAdd, bytecode.OpAdd, bytecode.OpAdd}
	if p.Len() != len(wantOps) {
		t.Fatalf("recorded %d byte-codes, want %d:\n%s", p.Len(), len(wantOps), p)
	}
	for i, op := range wantOps {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d = %s, want %s", i, p.Instrs[i].Op, op)
		}
	}
	if got := p.Instrs[1].String(); got != "BH_ADD a0 [0:10:1] a0 [0:10:1] 1" {
		t.Errorf("recorded %q, want the paper's Listing 2 line", got)
	}
}

func TestOptimizerDisabled(t *testing.T) {
	ctx := newTestContext(t, &Config{Optimizer: &rewrite.Options{}, CollectReports: true})
	a := ctx.Zeros(10)
	a.AddC(1).AddC(1).AddC(1)
	if _, err := a.Data(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.LastReport().TotalApplied(); got != 0 {
		t.Errorf("disabled optimizer applied %d rewrites", got)
	}
	if v, _ := a.At(0); v != 3 {
		t.Errorf("unoptimized result = %v, want 3", v)
	}
}

func TestArithmeticChain(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Arange(5) // 0 1 2 3 4
	a.MulC(2).AddC(1)  // 1 3 5 7 9
	b := ctx.Full(10, 5)
	c := a.Plus(b) // 11 13 15 17 19
	got := c.MustData()
	want := []float64{11, 13, 15, 17, 19}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c = %v, want %v", got, want)
		}
	}
}

func TestPowerMatchesMathPow(t *testing.T) {
	ctx := newTestContext(t, &Config{CollectReports: true})
	x := ctx.Full(1.5, 100)
	y := x.Power(10)
	got := y.MustData()
	want := math.Pow(1.5, 10)
	for i, v := range got {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", i, v, want)
		}
	}
	if ctx.LastReport().Applied["power-expand"] != 1 {
		t.Errorf("power expansion did not fire: %v", ctx.LastReport().Applied)
	}
}

func TestSolveViaInverseGetsRewritten(t *testing.T) {
	// Equation (2) end to end: the user writes x = A⁻¹·B; the optimizer
	// executes a single BH_SOLVE.
	ctx := newTestContext(t, &Config{CollectReports: true})
	a := ctx.MustFromSlice([]float64{2, 1, 1, 3}, 2, 2)
	b := ctx.MustFromSlice([]float64{5, 10}, 2, 1)
	x := a.Inverse().MatMul(b)
	got := x.MustData()
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want [1 3]", got)
	}
	if ctx.LastReport().Applied["inverse-to-solve"] != 1 {
		t.Errorf("inverse-to-solve did not fire: %v", ctx.LastReport().Applied)
	}
}

func TestSolveRewriteBlockedWhenInverseUsed(t *testing.T) {
	ctx := newTestContext(t, &Config{CollectReports: true})
	a := ctx.MustFromSlice([]float64{2, 1, 1, 3}, 2, 2)
	b := ctx.MustFromSlice([]float64{5, 10}, 2, 1)
	inv := a.Inverse()
	x := inv.MatMul(b)
	// The inverse is read again afterwards: no rewrite allowed.
	trace := inv.Sum()
	if _, err := x.Data(); err != nil {
		t.Fatal(err)
	}
	if ctx.LastReport().Applied["inverse-to-solve"] != 0 {
		t.Error("rewrite fired although the inverse is reused")
	}
	tr, err := trace.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	// trace here is the sum of all inverse entries; for [[2,1],[1,3]]⁻¹ =
	// [[0.6,-0.2],[-0.2,0.4]] the sum is 0.6.
	if math.Abs(tr-0.6) > 1e-9 {
		t.Errorf("sum of inverse entries = %v, want 0.6", tr)
	}
}

func TestDirectSolve(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.MustFromSlice([]float64{4, 1, 0, 1, 5, 2, 0, 2, 6}, 3, 3)
	b := ctx.MustFromSlice([]float64{1, 2, 3}, 3)
	x := a.Solve(b)
	got := x.MustData()
	// Verify A·x = b.
	res := make([]float64, 3)
	A := []float64{4, 1, 0, 1, 5, 2, 0, 2, 6}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			res[i] += A[i*3+j] * got[j]
		}
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(res[i]-want[i]) > 1e-9 {
			t.Fatalf("residual at %d: %v vs %v", i, res[i], want[i])
		}
	}
}

func TestSlicingAliases(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(10)
	evens := a.MustSlice(0, 0, 10, 2)
	evens.AddC(5)
	got := a.MustData()
	for i, v := range got {
		want := 0.0
		if i%2 == 0 {
			want = 5
		}
		if v != want {
			t.Fatalf("a = %v", got)
		}
	}
}

func TestTransposeAndMatMul(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose()
	if got := at.Shape(); got[0] != 3 || got[1] != 2 {
		t.Fatalf("transpose shape = %v", got)
	}
	prod := a.MatMul(at) // 2x2: [[14, 32], [32, 77]]
	got := prod.MustData()
	want := []float64{14, 32, 32, 77}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("a·aᵀ = %v, want %v", got, want)
		}
	}
}

func TestReductions(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Arange(12)
	m, err := a.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.SumAxis(1)
	if got := rows.MustData(); got[0] != 6 || got[1] != 22 || got[2] != 38 {
		t.Errorf("row sums = %v", got)
	}
	total, err := m.Sum().Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if total != 66 {
		t.Errorf("total = %v, want 66", total)
	}
	mx, _ := m.Max().Scalar()
	if mx != 11 {
		t.Errorf("max = %v, want 11", mx)
	}
	mean, _ := ctx.Arange(5).Mean().Scalar()
	if mean != 2 {
		t.Errorf("mean = %v, want 2", mean)
	}
}

func TestCumSum(t *testing.T) {
	ctx := newTestContext(t, nil)
	cs := ctx.Arange(5).CumSum(0)
	got := cs.MustData()
	want := []float64{0, 1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumsum = %v, want %v", got, want)
		}
	}
}

func TestMultipleFlushes(t *testing.T) {
	// Values persist across flushes; later batches treat earlier arrays
	// as inputs.
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(4)
	a.AddC(2)
	if v, _ := a.At(0); v != 2 {
		t.Fatalf("first flush: %v", v)
	}
	a.MulC(10)
	if v, _ := a.At(0); v != 20 {
		t.Fatalf("second flush: %v", v)
	}
	b := a.PlusC(1)
	if v, _ := b.At(3); v != 21 {
		t.Fatalf("third flush: %v", v)
	}
}

func TestUnsyncedArraySurvivesFlush(t *testing.T) {
	// An array never explicitly synced must still hold its value after an
	// unrelated flush (handle liveness blocks DCE).
	ctx := newTestContext(t, nil)
	kept := ctx.Ones(4)
	kept.AddC(1) // never synced directly
	other := ctx.Zeros(4)
	if _, err := other.Data(); err != nil { // flushes everything
		t.Fatal(err)
	}
	if v, _ := kept.At(0); v != 2 {
		t.Errorf("unsynced array lost its value: %v", v)
	}
}

func TestFreedArrayPanics(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(4)
	a.Free()
	defer func() {
		if recover() == nil {
			t.Error("use after Free did not panic")
		}
	}()
	a.AddC(1)
}

func TestShapeMismatchPanics(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(4)
	b := ctx.Zeros(5)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	a.Add(b)
}

func TestClosedContext(t *testing.T) {
	ctx := NewContext(nil)
	a := ctx.Zeros(4)
	ctx.Close()
	if err := ctx.Flush(); err == nil {
		t.Error("Flush after Close succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("array op after Close did not panic")
		}
	}()
	a.AddC(1)
}

func TestIntegerArrays(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.FullInt(7, 4)
	a.AddC(1).AddC(1).AddC(1)
	got := a.MustData()
	for _, v := range got {
		if v != 10 {
			t.Fatalf("int array = %v, want 10s", got)
		}
	}
	if a.DType() != tensor.Int64 {
		t.Error("dtype lost")
	}
}

func TestComparisonAndAsType(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Arange(6)
	mask := a.GreaterC(2.5) // F F F T T T
	count, err := mask.AsType(tensor.Float64).Sum().Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %v, want 3", count)
	}
}

func TestLinspace(t *testing.T) {
	ctx := newTestContext(t, nil)
	xs := ctx.Linspace(0, 1, 5).MustData()
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("linspace = %v, want %v", xs, want)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	ctx := newTestContext(t, nil)
	r1 := ctx.Random(11, 100).MustData()
	r2 := ctx.Random(11, 100).MustData()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same-seed Random streams differ")
		}
		if r1[i] < 0 || r1[i] >= 1 {
			t.Fatalf("random value %v outside [0,1)", r1[i])
		}
	}
}

func TestStatsAndFusion(t *testing.T) {
	ctx := newTestContext(t, &Config{Optimizer: &rewrite.Options{}}) // no rewrites
	a := ctx.Zeros(100)
	a.AddC(1).AddC(1).MulC(2)
	if _, err := a.Data(); err != nil {
		t.Fatal(err)
	}
	st := ctx.MustStats()
	if st.Sweeps != 1 {
		t.Errorf("fusion off-stats: sweeps = %d, want 1 fused cluster", st.Sweeps)
	}
	if st.FusedInstructions != 4 {
		t.Errorf("fused instructions = %d, want 4", st.FusedInstructions)
	}
}

func TestScalarErrors(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(4)
	if _, err := a.Scalar(); err == nil {
		t.Error("Scalar on 4-element array succeeded")
	}
	if _, err := a.At(0, 0); err == nil {
		t.Error("At with wrong arity succeeded")
	}
}

func TestStringRendersValues(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Ones(3)
	if got := a.String(); got != "[1 1 1]" {
		t.Errorf("String = %q", got)
	}
}

func TestFreeConsumedTempAcrossFlushes(t *testing.T) {
	// Regression: a temporary consumed and then Free'd must not be carried
	// into the next batch as an input — its buffer went back to the VM's
	// recycle pool, so the next flush would fail with "input register not
	// bound".
	ctx := newTestContext(t, nil)
	a := ctx.Ones(4)
	tmp := a.Plus(a)
	a.Assign(tmp)
	tmp.Free()
	if _, err := a.Data(); err != nil {
		t.Fatal(err)
	}
	a.AddC(1)
	got, err := a.Data()
	if err != nil {
		t.Fatalf("flush after freed temp: %v", err)
	}
	for i, v := range got {
		if v != 3 {
			t.Errorf("a[%d] = %v, want 3", i, v)
		}
	}
}

func TestPoolHitsSurfaceThroughContextStats(t *testing.T) {
	// Freeing the per-iteration temporary lets the VM recycle one buffer
	// per loop instead of allocating one, and the counters must be visible
	// on the public Stats.
	ctx := newTestContext(t, nil)
	acc := ctx.Zeros(512)
	for i := 0; i < 8; i++ {
		tmp := acc.Plus(acc)
		acc.Assign(tmp)
		tmp.Free()
	}
	if _, err := acc.Data(); err != nil {
		t.Fatal(err)
	}
	st := ctx.MustStats()
	if st.PoolHits < 7 {
		t.Errorf("PoolHits = %d, want ≥ 7 (one per recycled loop temporary)", st.PoolHits)
	}
	if st.BuffersAllocated == 0 || st.BytesAllocated == 0 {
		t.Errorf("allocation counters empty: %+v", st)
	}
}
