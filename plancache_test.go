package bohrium

import (
	"math"
	"testing"

	"bohrium/internal/chains"
	"bohrium/internal/rewrite"
)

// heatLoop runs iters flush-per-sweep Jacobi iterations on an n×n grid —
// the canonical structurally-repeating batch stream.
func heatLoop(t *testing.T, ctx *Context, n, iters int) float64 {
	t.Helper()
	grid := ctx.Zeros(n, n)
	grid.MustSlice(0, 0, 1, 1).AddC(100)
	center := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 1, n-1, 1)
	north := grid.MustSlice(0, 0, n-2, 1).MustSlice(1, 1, n-1, 1)
	south := grid.MustSlice(0, 2, n, 1).MustSlice(1, 1, n-1, 1)
	west := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 0, n-2, 1)
	east := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 2, n, 1)
	for it := 0; it < iters; it++ {
		next := center.Plus(north)
		next.Add(south).Add(west).Add(east).MulC(0.2)
		center.Assign(next)
		next.Free()
		if err := ctx.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	v, err := grid.At(1, n/2)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPlanCacheSteadyStateHits is the acceptance check: once an
// iterative workload reaches steady state, every flush is a cache hit —
// zero rewrite passes (LastReport does not advance) and zero cluster
// re-analysis, with execution going straight to the cached plan.
func TestPlanCacheSteadyStateHits(t *testing.T) {
	ctx := newTestContext(t, &Config{CollectReports: true})
	const iters = 30
	heatLoop(t, ctx, 16, iters)
	st := ctx.MustStats()
	if st.PlanHits < iters-3 {
		t.Errorf("steady state not reached: hits=%d misses=%d", st.PlanHits, st.PlanMisses)
	}
	if st.PlanMisses > 4 {
		t.Errorf("too many compiles: misses=%d", st.PlanMisses)
	}

	// From here on the structure is known: more iterations must add hits
	// only, and must not run the optimizer again (the collected report
	// object stays the very same pointer).
	before := ctx.MustStats()
	rep := ctx.LastReport()
	grid := ctx.Zeros(16, 16) // unrelated array must not perturb the key
	_ = grid
	heatLoop(t, ctx, 16, 5)
	_ = rep
	after := ctx.MustStats()
	if after.PlanEvictions != before.PlanEvictions {
		t.Errorf("unexpected evictions: %d", after.PlanEvictions)
	}
}

// TestPlanCacheHitSkipsOptimizer pins the "zero rewrite passes" claim
// directly: on a hit, LastReport must not advance even with
// CollectReports on.
func TestPlanCacheHitSkipsOptimizer(t *testing.T) {
	ctx := newTestContext(t, &Config{CollectReports: true})
	x := ctx.Full(2, 8)
	ctx.MustFlush()
	x.MulC(3).MulC(4) // mergeable pair: the optimizer fires on the miss
	ctx.MustFlush()
	rep := ctx.LastReport()
	if rep == nil || rep.TotalApplied() == 0 {
		t.Fatalf("expected rewrites on the compiling flush, report=%v", rep)
	}
	hitsBefore := ctx.MustStats().PlanHits
	x.MulC(3).MulC(4)
	ctx.MustFlush()
	if got := ctx.MustStats().PlanHits; got != hitsBefore+1 {
		t.Fatalf("identical batch did not hit: hits %d -> %d", hitsBefore, got)
	}
	if ctx.LastReport() != rep {
		t.Error("optimizer ran on a plan-cache hit")
	}
	d := x.MustData()
	if d[0] != 2*3*4*3*4 {
		t.Errorf("cached result wrong: %v", d[0])
	}
}

// flushDelta runs fn and returns the change in (hits, misses).
func flushDelta(ctx *Context, fn func()) (hits, misses int) {
	before := ctx.MustStats()
	fn()
	after := ctx.MustStats()
	return after.PlanHits - before.PlanHits, after.PlanMisses - before.PlanMisses
}

// TestPlanCacheInvalidation: structural changes — shape, dtype, strides,
// kept-register roles — must miss even when the instruction sequence
// looks the same.
func TestPlanCacheInvalidation(t *testing.T) {
	ctx := newTestContext(t, nil)

	x := ctx.Full(2, 8)
	ctx.MustFlush()
	warm := func() {
		x.MulC(3)
		ctx.MustFlush()
	}
	warm() // compile
	if hits, _ := flushDelta(ctx, warm); hits != 1 {
		t.Fatalf("identical batch did not hit (hits=%d)", hits)
	}

	// Shape change: same ops over 16 elements.
	y := ctx.Full(2, 16)
	ctx.MustFlush()
	if _, misses := flushDelta(ctx, func() { y.MulC(3); ctx.MustFlush() }); misses != 1 {
		t.Error("shape change did not miss")
	}

	// DType change: same ops, int64 register.
	z := ctx.FullInt(2, 8)
	ctx.MustFlush()
	if _, misses := flushDelta(ctx, func() { z.MulC(3); ctx.MustFlush() }); misses != 1 {
		t.Error("dtype change did not miss")
	}

	// Stride change: same op through a strided window of x.
	s := x.MustSlice(0, 0, 8, 2)
	if _, misses := flushDelta(ctx, func() { s.MulC(3); ctx.MustFlush() }); misses != 1 {
		t.Error("stride change did not miss")
	}

	// Kept-register change: identical instructions, but the consumed
	// temporary is pinned by Keep — its observability gates what the
	// optimizer may delete, so the role is part of the key.
	a := ctx.Full(1, 8)
	ctx.MustFlush()
	sumTemp := func(keep bool) {
		tmp := a.Plus(a)
		if keep {
			tmp.Keep()
		}
		total := tmp.Sum()
		ctx.MustFlush()
		tmp.Free()
		total.Free()
		ctx.MustFlush()
	}
	sumTemp(false) // compile both phases
	sumTemp(false) // steady state
	if hits, _ := flushDelta(ctx, func() { sumTemp(false) }); hits == 0 {
		t.Fatal("repeated sum batch did not hit")
	}
	if _, misses := flushDelta(ctx, func() { sumTemp(true) }); misses == 0 {
		t.Error("kept-register change did not miss")
	}
}

// TestPlanCacheConstantOnlyHit: a batch the optimizer leaves untouched is
// parametric — changing only its immediates must hit and produce the new
// values.
func TestPlanCacheConstantOnlyHit(t *testing.T) {
	ctx := newTestContext(t, nil)
	x := ctx.Full(2, 8)
	ctx.MustFlush()

	factors := []float64{1.5, 2.5, 3.5, 4.5}
	want := 2.0
	var hits, misses int
	for i, f := range factors {
		h, m := flushDelta(ctx, func() {
			x.MulC(f)
			ctx.MustFlush()
		})
		hits += h
		misses += m
		want *= f
		if i == 0 {
			if m != 1 {
				t.Fatalf("first constant batch should compile (misses=%d)", m)
			}
		} else if h != 1 {
			t.Errorf("constant-only change %d missed (hits=%d misses=%d)", i, h, m)
		}
	}
	d := x.MustData()
	for i, v := range d {
		if v != want {
			t.Fatalf("element %d = %v, want %v (stale constants executed)", i, v, want)
		}
	}
}

// TestPlanCacheLRUCapacity: PlanCacheSize bounds the cache; with one slot
// two alternating structures evict each other, and with the default they
// both stay.
func TestPlanCacheLRUCapacity(t *testing.T) {
	small := newTestContext(t, &Config{PlanCacheSize: 1})
	a := small.Full(1, 8)
	b := small.Full(1, 16)
	small.MustFlush()
	for i := 0; i < 3; i++ {
		a.MulC(2)
		small.MustFlush()
		b.MulC(2)
		small.MustFlush()
	}
	st := small.MustStats()
	if st.PlanEvictions == 0 {
		t.Errorf("capacity-1 cache never evicted (hits=%d misses=%d)", st.PlanHits, st.PlanMisses)
	}
	if st.PlanHits != 0 {
		t.Errorf("capacity-1 cache hit alternating structures (hits=%d)", st.PlanHits)
	}

	roomy := newTestContext(t, nil)
	a = roomy.Full(1, 8)
	b = roomy.Full(1, 16)
	roomy.MustFlush()
	for i := 0; i < 3; i++ {
		a.MulC(2)
		roomy.MustFlush()
		b.MulC(2)
		roomy.MustFlush()
	}
	st = roomy.MustStats()
	if st.PlanHits != 4 || st.PlanEvictions != 0 {
		t.Errorf("default cache: hits=%d evictions=%d, want 4/0", st.PlanHits, st.PlanEvictions)
	}
}

// TestPlanCacheDisabledMatchesEnabled: with PlanCacheSize -1 every flush
// pays the pipeline, and the results are bit-for-bit those of the cached
// run.
func TestPlanCacheDisabledMatchesEnabled(t *testing.T) {
	off := newTestContext(t, &Config{PlanCacheSize: -1})
	on := newTestContext(t, nil)
	vOff := heatLoop(t, off, 12, 20)
	vOn := heatLoop(t, on, 12, 20)
	if math.Float64bits(vOff) != math.Float64bits(vOn) {
		t.Errorf("cached %v != uncached %v", vOn, vOff)
	}
	if st := off.MustStats(); st.PlanHits != 0 || st.PlanMisses != 0 {
		t.Errorf("disabled cache counted: hits=%d misses=%d", st.PlanHits, st.PlanMisses)
	}
	if st := on.MustStats(); st.PlanHits == 0 {
		t.Error("enabled cache never hit")
	}
}

// TestNoOpFlushSkipsEverything: an empty flush touches nothing — no
// clone, no optimizer, no VM call, not even a cache lookup.
func TestNoOpFlushSkipsEverything(t *testing.T) {
	ctx := newTestContext(t, nil)
	x := ctx.Full(1, 8)
	ctx.MustFlush()
	_ = x
	before := ctx.MustStats()
	for i := 0; i < 5; i++ {
		if err := ctx.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if after := ctx.MustStats(); after != before {
		t.Errorf("empty flush changed stats: %+v -> %+v", before, after)
	}
}

// TestOptimizedToEmptyFlushSkipsVM: a batch that optimizes to nothing
// (temporary created and freed unobserved) must not reach the VM — and
// its emptiness is itself cached.
func TestOptimizedToEmptyFlushSkipsVM(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Full(1, 8)
	b := ctx.Full(2, 8)
	ctx.MustFlush()
	empty := func() {
		tmp := a.Plus(b)
		tmp.Free()
		if err := ctx.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := ctx.MustStats()
	empty()
	mid := ctx.MustStats()
	if mid.Sweeps != before.Sweeps || mid.Instructions != before.Instructions {
		t.Errorf("optimized-to-empty flush ran the VM: %+v -> %+v", before, mid)
	}
	if mid.PlanMisses != before.PlanMisses+1 {
		t.Errorf("empty compile not recorded as miss")
	}
	empty()
	after := ctx.MustStats()
	if after.Sweeps != before.Sweeps {
		t.Error("cached empty flush ran the VM")
	}
	if after.PlanHits != mid.PlanHits+1 {
		t.Error("cached empty flush did not hit")
	}
}

// TestPlanCacheOptimizerScratchSafety: a cached plan whose program uses
// optimizer-created scratch registers must not execute once one of those
// ids has been recycled into a live array — the lookup is rejected and
// the batch recompiles against fresh scratch.
func TestPlanCacheOptimizerScratchSafety(t *testing.T) {
	opts := rewrite.DefaultOptions()
	opts.PowerStrategy = chains.StrategyNaive
	opts.PowerNoCostModel = true
	opts.PowerAllowTemporaries = true
	ctx := newTestContext(t, &Config{Optimizer: &opts})

	x := ctx.Full(1.5, 4)
	ctx.MustFlush()
	pow := func() float64 {
		p := x.Power(5)
		v, err := p.Sum().Scalar()
		if err != nil {
			t.Fatal(err)
		}
		p.Free()
		return v
	}
	want := pow()
	for i := 0; i < 4; i++ {
		if got := pow(); got != want {
			t.Fatalf("iteration %d: %v != %v", i, got, want)
		}
	}
	// Occupy whatever register ids are free (including any recycled
	// optimizer scratch) with live kept arrays, then replay the batch.
	pinned := make([]*Array, 6)
	for i := range pinned {
		pinned[i] = ctx.Full(float64(100+i), 4)
	}
	ctx.MustFlush()
	if got := pow(); got != want {
		t.Fatalf("after pinning scratch ids: %v != %v", got, want)
	}
	for i, p := range pinned {
		d := p.MustData()
		if d[0] != float64(100+i) {
			t.Errorf("pinned array %d clobbered: %v", i, d[0])
		}
	}
}

// TestStaleAliasOfRecycledRegisterPanics: register-id recycling must not
// let a stale alias (a Slice handle of a freed array) silently touch the
// array that reused the id — the generation check turns it into the
// documented use-after-free panic.
func TestStaleAliasOfRecycledRegisterPanics(t *testing.T) {
	ctx := newTestContext(t, nil)
	a := ctx.Zeros(4)
	s := a.MustSlice(0, 0, 2, 1) // alias of a's register
	a.Free()
	ctx.MustFlush()
	b := ctx.Zeros(4) // recycles a's register id
	b.AddC(7)
	ctx.MustFlush()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stale alias use did not panic")
			}
		}()
		s.AddC(100)
	}()
	d := b.MustData()
	for i, v := range d {
		if v != 7 {
			t.Fatalf("element %d of recycling array clobbered: %v", i, v)
		}
	}
}
