package bohrium

import (
	"math"
	"strings"
	"testing"

	"bohrium/internal/tensor"
)

// runStream drives an iterative stream workload through ctx, calling
// step after each iteration's batch — ctx.Flush for the synchronous
// discipline, ctx.Submit for the pipelined one — and returns the final
// probe value. It is the differential harness: the recorded byte-code is
// identical either way, so the results must be bit-for-bit equal.
func runStream(t *testing.T, ctx *Context, name string, iters int, step func() error) float64 {
	t.Helper()
	var probe func() (float64, error)
	switch name {
	case "heat":
		n := 16
		grid := ctx.Zeros(n, n)
		grid.MustSlice(0, 0, 1, 1).AddC(100)
		center := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 1, n-1, 1)
		north := grid.MustSlice(0, 0, n-2, 1).MustSlice(1, 1, n-1, 1)
		south := grid.MustSlice(0, 2, n, 1).MustSlice(1, 1, n-1, 1)
		west := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 0, n-2, 1)
		east := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 2, n, 1)
		for it := 0; it < iters; it++ {
			next := center.Plus(north)
			next.Add(south).Add(west).Add(east).MulC(0.2)
			center.Assign(next)
			next.Free()
			if err := step(); err != nil {
				t.Fatal(err)
			}
		}
		probe = func() (float64, error) { return grid.At(1, n/2) }
	case "power":
		x := ctx.Full(1.0000001, 64)
		acc := ctx.Zeros(1)
		for it := 0; it < iters; it++ {
			p := x.Power(10)
			s := p.Sum()
			acc.Add(s)
			p.Free()
			s.Free()
			if err := step(); err != nil {
				t.Fatal(err)
			}
		}
		probe = func() (float64, error) { return acc.At(0) }
	case "jacobi":
		n := 64
		u := ctx.Zeros(n)
		f := ctx.Full(1.0/float64((n-1)*(n-1)), n)
		uc := u.MustSlice(0, 1, n-1, 1)
		ul := u.MustSlice(0, 0, n-2, 1)
		ur := u.MustSlice(0, 2, n, 1)
		fc := f.MustSlice(0, 1, n-1, 1)
		for it := 0; it < iters; it++ {
			tmp := ul.Plus(ur)
			tmp.Add(fc).MulC(0.5)
			uc.Assign(tmp)
			tmp.Free()
			if err := step(); err != nil {
				t.Fatal(err)
			}
		}
		probe = func() (float64, error) { return u.At(n / 2) }
	default:
		t.Fatalf("unknown stream %q", name)
	}
	v, err := probe()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestAsyncMatchesSyncStreams is the differential acceptance sweep:
// every stream workload submitted through the async pipeline must
// produce bit-for-bit the synchronous result, and the async run must
// actually have pipelined (Pipelined > 0) and hit the plan cache.
// Run under -race this also exercises the recorder/executor split.
func TestAsyncMatchesSyncStreams(t *testing.T) {
	for _, name := range []string{"heat", "power", "jacobi"} {
		t.Run(name, func(t *testing.T) {
			sync := newTestContext(t, nil)
			vSync := runStream(t, sync, name, 25, sync.Flush)

			async := newTestContext(t, &Config{Async: true})
			vAsync := runStream(t, async, name, 25, async.Submit)

			if math.Float64bits(vSync) != math.Float64bits(vAsync) {
				t.Errorf("async %v != sync %v", vAsync, vSync)
			}
			st := async.MustStats()
			if st.Pipelined == 0 {
				t.Error("async run executed nothing on the background executor")
			}
			if st.PlanHits == 0 {
				t.Error("async run never hit the plan cache")
			}
			if sSt := sync.MustStats(); sSt.Pipelined != 0 {
				t.Errorf("sync run pipelined %d plans", sSt.Pipelined)
			}
		})
	}
}

// TestAsyncFlushMatchesSyncFlush: Flush is Submit+Wait, so Flush-only
// code must behave identically with Async on — including the stats the
// work leaves behind (modulo the Pipelined counter itself).
func TestAsyncFlushMatchesSyncFlush(t *testing.T) {
	sync := newTestContext(t, nil)
	async := newTestContext(t, &Config{Async: true})
	vSync := runStream(t, sync, "heat", 20, sync.Flush)
	vAsync := runStream(t, async, "heat", 20, async.Flush)
	if math.Float64bits(vSync) != math.Float64bits(vAsync) {
		t.Errorf("async Flush %v != sync Flush %v", vAsync, vSync)
	}
	sSt, aSt := sync.MustStats(), async.MustStats()
	aSt.Pipelined, sSt.Pipelined = 0, 0
	if aSt != sSt {
		t.Errorf("async Flush stats diverge:\n sync %+v\nasync %+v", sSt, aSt)
	}
}

// TestAsyncMixedReads: data accesses interleaved with submits must see
// every previously submitted batch (Data waits), in both modes.
func TestAsyncMixedReads(t *testing.T) {
	ctx := newTestContext(t, &Config{Async: true})
	x := ctx.Full(2, 8)
	for it := 1; it <= 5; it++ {
		x.MulC(2)
		if err := ctx.Submit(); err != nil {
			t.Fatal(err)
		}
		want := math.Pow(2, float64(it)+1)
		if v, err := x.At(0); err != nil || v != want {
			t.Fatalf("iteration %d: x[0] = %v (err %v), want %v", it, v, err, want)
		}
	}
}

// asyncFailure records a batch that compiles but fails at execution — a
// MAX reduction over an empty axis (the PR 1 semantics: no identity, so
// the VM reports an error) — and returns it kept, plus the array.
func asyncFailure(ctx *Context) {
	e := ctx.ZerosTyped(tensor.Float64, 0)
	m := e.MaxAxis(0)
	m.Keep()
}

// TestAsyncErrorSurfacesAtNextSync pins the error contract: a failing
// batch reports the same error text in both modes — at Flush when
// synchronous, at the next synchronizing call (Wait here) when async —
// and the async error is sticky for every later synchronizing call,
// while later submits are refused rather than run against poisoned
// state.
func TestAsyncErrorSurfacesAtNextSync(t *testing.T) {
	sync := newTestContext(t, nil)
	asyncFailure(sync)
	syncErr := sync.Flush()
	if syncErr == nil {
		t.Fatal("synchronous flush of the failing batch did not error")
	}

	async := newTestContext(t, &Config{Async: true})
	asyncFailure(async)
	if err := async.Submit(); err != nil {
		t.Fatalf("Submit reported the execution error early: %v", err)
	}
	waitErr := async.Wait()
	if waitErr == nil {
		t.Fatal("Wait did not surface the execution error")
	}
	if waitErr.Error() != syncErr.Error() {
		t.Errorf("async error %q != sync error %q", waitErr, syncErr)
	}
	// Sticky: the next Wait, and a fresh Submit, keep reporting it.
	if err := async.Wait(); err == nil || err.Error() != waitErr.Error() {
		t.Errorf("second Wait lost the sticky error: %v", err)
	}
	x := async.Full(1, 4)
	x.AddC(1)
	if err := async.Submit(); err == nil || !strings.Contains(err.Error(), "execution failed") {
		t.Errorf("Submit on a poisoned pipeline did not refuse: %v", err)
	}
	if _, err := x.Data(); err == nil {
		t.Error("data access on a poisoned pipeline did not error")
	}
}

// TestAsyncSkipsQueuedBatchesAfterError: batches already queued behind a
// failing one must not execute — their effects would be computed from
// state the failure never produced.
func TestAsyncSkipsQueuedBatchesAfterError(t *testing.T) {
	ctx := newTestContext(t, &Config{Async: true})
	x := ctx.Full(3, 4)
	if err := ctx.Flush(); err != nil {
		t.Fatal(err)
	}
	asyncFailure(ctx)
	if err := ctx.Submit(); err != nil {
		t.Fatal(err)
	}
	x.MulC(10) // queued behind the failing batch (same Submit wave or later)
	_ = ctx.Submit()
	if err := ctx.Wait(); err == nil {
		t.Fatal("pipeline error lost")
	}
	// The multiply must not have executed. Reads on the poisoned context
	// error by design, so pin it through the Pipelined counter: the fill
	// batch and the failing batch entered execution (2), while the MulC
	// batch was either refused at Submit or skipped by the executor —
	// in both cases it never starts executing and never counts.
	st := ctx.MustStats()
	if st.Pipelined != 2 {
		t.Errorf("pipelined %d plans after the error, want 2 (MulC batch must be skipped)", st.Pipelined)
	}
}

// TestAsyncFromSliceFences: binding external data must wait for
// in-flight batches (they own the register file) and still work.
func TestAsyncFromSliceFences(t *testing.T) {
	ctx := newTestContext(t, &Config{Async: true})
	a := ctx.Full(1, 1<<12)
	for i := 0; i < 6; i++ {
		a.AddC(1)
		if err := ctx.Submit(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := ctx.FromSlice([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Data()
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 1 || d[2] != 3 {
		t.Errorf("bound data wrong: %v", d)
	}
	if v, err := a.At(0); err != nil || v != 7 {
		t.Errorf("a[0] = %v (err %v), want 7", v, err)
	}
}

// TestAsyncCloseDrains: Close must finish in-flight work before tearing
// the worker pool down (a crash here would fail the test).
func TestAsyncCloseDrains(t *testing.T) {
	ctx := NewContext(&Config{Async: true})
	a := ctx.Full(1, 1<<14)
	for i := 0; i < 10; i++ {
		a.AddC(1)
		if err := ctx.Submit(); err != nil {
			t.Fatal(err)
		}
	}
	ctx.Close()
	if err := ctx.Submit(); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := ctx.Wait(); err != ErrClosed {
		t.Errorf("Wait after Close = %v, want ErrClosed", err)
	}
}
