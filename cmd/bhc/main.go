// Command bhc is the byte-code optimizer: it assembles a textual Bohrium
// byte-code listing (the paper's format), runs the algebraic transformation
// pipeline, and prints the optimized listing plus a rewrite report.
//
// Usage:
//
//	bhc [-strategy naive|square-increment|binary|factor|optimal]
//	    [-no-cost-model] [-temporaries] [-adjacent-only] [-stats] [file.bh]
//
// With no file, bhc reads from stdin. Try it on the paper's Listing 2:
//
//	$ echo 'BH_IDENTITY a0 [0:10:1] 0
//	        BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//	        BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//	        BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//	        BH_SYNC a0 [0:10:1]' | bhc -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bohrium/internal/bytecode"
	"bohrium/internal/chains"
	"bohrium/internal/rewrite"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bhc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bhc", flag.ContinueOnError)
	strategy := fs.String("strategy", "binary",
		"power-expansion chain strategy: naive, square-increment, binary, factor, optimal")
	noCost := fs.Bool("no-cost-model", false, "expand powers unconditionally (ablation D2)")
	temps := fs.Bool("temporaries", false, "allow scratch registers in power chains")
	adjacent := fs.Bool("adjacent-only", false, "match only adjacent byte-code pairs (ablation D1)")
	stats := fs.Bool("stats", false, "print the rewrite report to stderr-style footer")
	if err := fs.Parse(args); err != nil {
		return err
	}

	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}

	src, err := readInput(fs.Args(), stdin)
	if err != nil {
		return err
	}
	prog, err := bytecode.Parse(src)
	if err != nil {
		return err
	}
	if err := prog.Validate(); err != nil {
		return err
	}

	opts := rewrite.DefaultOptions()
	opts.PowerStrategy = strat
	opts.PowerNoCostModel = *noCost
	opts.PowerAllowTemporaries = *temps
	pipeline := rewrite.Build(opts)
	if *adjacent {
		pipeline = rewrite.NewPipeline(
			rewrite.CanonicalizeRule{}, rewrite.AddMergeRule{AdjacentOnly: true},
			rewrite.MulMergeRule{},
		)
	}

	optimized, report, err := pipeline.Optimize(prog)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, optimized.Dump())
	if *stats {
		fmt.Fprintln(stdout, "# ---")
		for _, line := range splitLines(report.String()) {
			fmt.Fprintln(stdout, "#", line)
		}
	}
	return nil
}

func parseStrategy(s string) (chains.Strategy, error) {
	switch s {
	case "naive":
		return chains.StrategyNaive, nil
	case "square-increment":
		return chains.StrategySquareIncrement, nil
	case "binary":
		return chains.StrategyBinary, nil
	case "factor":
		return chains.StrategyFactor, nil
	case "optimal":
		return chains.StrategyOptimal, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func readInput(args []string, stdin io.Reader) (string, error) {
	if len(args) == 0 {
		data, err := io.ReadAll(stdin)
		return string(data), err
	}
	data, err := os.ReadFile(args[0])
	return string(data), err
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
