package main

import (
	"strings"
	"testing"
)

const listing2 = `BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`

func TestBhcOptimizesListing2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats"}, strings.NewReader(listing2), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "BH_IDENTITY a0 [0:10:1] 3") {
		t.Errorf("full pipeline should fold Listing 2 to IDENTITY 3:\n%s", got)
	}
	if !strings.Contains(got, "add-merge") {
		t.Errorf("stats footer missing:\n%s", got)
	}
}

func TestBhcPowerStrategies(t *testing.T) {
	src := `.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 10
BH_SYNC a1
`
	counts := map[string]int{
		"naive":            9,
		"square-increment": 5,
		"binary":           4,
	}
	for strat, want := range counts {
		var out strings.Builder
		err := run([]string{"-strategy", strat, "-no-cost-model"}, strings.NewReader(src), &out)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if got := strings.Count(out.String(), "BH_MULTIPLY"); got != want {
			t.Errorf("%s emitted %d multiplies, want %d:\n%s", strat, got, want, out.String())
		}
	}
}

func TestBhcAdjacentOnly(t *testing.T) {
	src := `.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 0
BH_IDENTITY a1 0
BH_ADD a0 a0 1
BH_MULTIPLY a1 a1 2.0
BH_ADD a0 a0 1
BH_SYNC a0
BH_SYNC a1
`
	var gapOut, adjOut strings.Builder
	if err := run(nil, strings.NewReader(src), &gapOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-adjacent-only"}, strings.NewReader(src), &adjOut); err != nil {
		t.Fatal(err)
	}
	// The full pipeline merges the adds and folds them into the
	// initialization: a0 starts at 2, no BH_ADD survives.
	if strings.Count(gapOut.String(), "BH_ADD") != 0 ||
		!strings.Contains(gapOut.String(), "BH_IDENTITY a0 [0:8:1] 2") {
		t.Errorf("gap-tolerant run should fold the adds away:\n%s", gapOut.String())
	}
	if strings.Count(adjOut.String(), "BH_ADD") != 2 {
		t.Errorf("adjacent-only run should keep both adds:\n%s", adjOut.String())
	}
}

func TestBhcErrors(t *testing.T) {
	if err := run(nil, strings.NewReader("BH_BOGUS a0 1"), &strings.Builder{}); err == nil {
		t.Error("bad opcode accepted")
	}
	if err := run([]string{"-strategy", "zigzag"}, strings.NewReader(listing2), &strings.Builder{}); err == nil {
		t.Error("bad strategy accepted")
	}
	if err := run(nil, strings.NewReader(".reg a0 float64 4\nBH_SYNC a0"), &strings.Builder{}); err == nil {
		t.Error("invalid program accepted")
	}
}
