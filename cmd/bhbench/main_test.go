package main

import (
	"strings"
	"testing"
)

func TestBhbenchSingleExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "E2", "-n", "4096", "-repeats", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E2") || !strings.Contains(got, "Listing 5") {
		t.Errorf("output:\n%s", got)
	}
}

func TestBhbenchUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
