package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestBhbenchSingleExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "E2", "-n", "4096", "-repeats", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E2") || !strings.Contains(got, "Listing 5") {
		t.Errorf("output:\n%s", got)
	}
}

func TestBhbenchUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBhbenchJSONAndPlanSmoke(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var out strings.Builder
	err := run([]string{"-experiment", "E8", "-n", "16384", "-repeats", "1",
		"-json", path, "-require-plan-hits"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan") {
		t.Errorf("table missing plan column:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Rows   []struct {
			Experiment string `json:"experiment"`
			PlanHits   int    `json:"plan_hits"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != "bohrium-bench/v1" || len(doc.Rows) == 0 {
		t.Errorf("unexpected document: %+v", doc)
	}
}

func TestBhbenchRequirePlanHitsNeedsE8(t *testing.T) {
	// Running only E1 with the guard must fail: there is nothing to check.
	err := run([]string{"-experiment", "E1", "-n", "4096", "-repeats", "1",
		"-require-plan-hits"}, &strings.Builder{})
	if err == nil {
		t.Error("guard accepted a run without E8 rows")
	}
}

func TestBhbenchE9RequirePipelined(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "E9", "-n", "16384", "-repeats", "1",
		"-require-pipelined"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipe") {
		t.Errorf("table missing pipe column:\n%s", out.String())
	}
}

func TestBhbenchRequirePipelinedNeedsE9(t *testing.T) {
	err := run([]string{"-experiment", "E1", "-n", "4096", "-repeats", "1",
		"-require-pipelined"}, &strings.Builder{})
	if err == nil {
		t.Error("guard accepted a run without E9 rows")
	}
}
