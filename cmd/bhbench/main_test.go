package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestBhbenchSingleExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "E2", "-n", "4096", "-repeats", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E2") || !strings.Contains(got, "Listing 5") {
		t.Errorf("output:\n%s", got)
	}
}

func TestBhbenchUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E99"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBhbenchJSONAndPlanSmoke(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var out strings.Builder
	err := run([]string{"-experiment", "E8", "-n", "16384", "-repeats", "1",
		"-json", path, "-require-plan-hits"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan") {
		t.Errorf("table missing plan column:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Rows   []struct {
			Experiment string `json:"experiment"`
			PlanHits   int    `json:"plan_hits"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != "bohrium-bench/v1" || len(doc.Rows) == 0 {
		t.Errorf("unexpected document: %+v", doc)
	}
}

// TestBhbenchBackendFlag runs one experiment on the out-of-core backend
// and checks the backend lands in the table column and the JSON rows,
// then round-trips the document through -schema-check.
func TestBhbenchBackendFlag(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var out strings.Builder
	err := run([]string{"-experiment", "E1", "-n", "4096", "-repeats", "1",
		"-backend", "outofcore", "-chunk-bytes", "8192", "-json", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "outofcore") {
		t.Errorf("table missing backend column:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []struct {
			Backend string `json:"backend"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) == 0 || doc.Rows[0].Backend != "outofcore" {
		t.Errorf("JSON rows missing backend: %+v", doc.Rows)
	}

	var check strings.Builder
	if err := run([]string{"-schema-check", path}, &check); err != nil {
		t.Fatalf("schema-check rejected fresh document: %v", err)
	}
	if !strings.Contains(check.String(), "valid bohrium-bench/v1") {
		t.Errorf("schema-check output:\n%s", check.String())
	}
}

func TestBhbenchSchemaCheckRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte(`{"schema":"bohrium-bench/v1","rows":[{"experiment":"E1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-schema-check", path}, &strings.Builder{}); err == nil {
		t.Error("schema-check accepted a row missing required fields")
	}
}

func TestBhbenchRequirePlanHitsNeedsE8(t *testing.T) {
	// Running only E1 with the guard must fail: there is nothing to check.
	err := run([]string{"-experiment", "E1", "-n", "4096", "-repeats", "1",
		"-require-plan-hits"}, &strings.Builder{})
	if err == nil {
		t.Error("guard accepted a run without E8 rows")
	}
}

func TestBhbenchE9RequirePipelined(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-experiment", "E9", "-n", "16384", "-repeats", "1",
		"-require-pipelined"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipe") {
		t.Errorf("table missing pipe column:\n%s", out.String())
	}
}

func TestBhbenchRequirePipelinedNeedsE9(t *testing.T) {
	err := run([]string{"-experiment", "E1", "-n", "4096", "-repeats", "1",
		"-require-pipelined"}, &strings.Builder{})
	if err == nil {
		t.Error("guard accepted a run without E9 rows")
	}
}
