// Command bhbench regenerates the paper's evaluation tables (experiments
// E1–E7 in DESIGN.md / EXPERIMENTS.md): byte-code counts before/after
// optimization, baseline vs optimized wall-clock times, the ablation rows
// for the design decisions D1–D4, and the dtype-generalized fusion sweep
// with its reduction-epilogue counters.
//
// Usage:
//
//	bhbench [-experiment all|E1|E2|E3|E4|E5|E6|E7] [-n elements] [-repeats r]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bohrium/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bhbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bhbench", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "which experiment to run: all, E1, E2, E3, E4, E5, E6, E7")
	n := fs.Int("n", 1<<20, "elementwise vector length")
	solveMax := fs.Int("solve-max", 256, "largest linear-system size for E4")
	repeats := fs.Int("repeats", 3, "timing repetitions (best-of)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := bench.Scale{VectorN: *n, SolveMax: *solveMax, Repeats: *repeats}
	runners := map[string]func(bench.Scale) ([]bench.Row, error){
		"E1": bench.E1AddMerge,
		"E2": bench.E2PowerChain,
		"E3": bench.E3PowerSweep,
		"E4": bench.E4Solve,
		"E5": bench.E5Workloads,
		"E6": bench.E6Ablations,
		"E7": bench.E7DTypeFusion,
	}

	var rows []bench.Row
	var err error
	if *exp == "all" {
		rows, err = bench.All(scale)
	} else {
		runner, ok := runners[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		rows, err = runner(scale)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.Table(rows))
	return nil
}
