// Command bhbench regenerates the paper's evaluation tables (experiments
// E1–E10 and E12 in DESIGN.md / EXPERIMENTS.md): byte-code counts
// before/after optimization, baseline vs optimized wall-clock times, the
// ablation rows for the design decisions D1–D4, the dtype-generalized
// fusion sweep with its reduction-epilogue counters, the plan-cache rows
// for iterative flush-per-sweep workloads, the async submit/wait pipeline
// rows, the shared-runtime multi-session rows, and the cross-plan fusion
// rows. Every row with sweep work also reports its achieved memory
// bandwidth (gbs) and the fraction of the machine's memcpy ceiling it
// reaches (%roof) — the roofline the memory-bound rows are measured
// against.
//
// Usage:
//
//	bhbench [-experiment all|E1|...|E10|E12] [-n elements] [-repeats r]
//	        [-sessions k] [-backend name] [-chunk-bytes n] [-json path]
//	        [-schema-check file] [-require-plan-hits]
//	        [-require-pipelined] [-require-shared-hits]
//	        [-require-xplan-fuse]
//
// -sessions sets how many concurrent sessions the E10 rows drive against
// one shared Runtime (and against K private runtimes as the baseline).
// -backend re-measures every experiment on another execution backend
// ("outofcore" with -chunk-bytes for the chunked engine); values are
// backend-independent by the differential contract, so only the timing
// columns move.
//
// -json writes the rows as a machine-readable BENCH_*.json document so
// the perf trajectory can be tracked across commits. The schema
// ("bohrium-bench/v1") is one object {"schema": ..., "rows": [...]};
// each row carries experiment, workload, params, backend, bc_before,
// bc_after, baseline_ns, optimized_ns (best-of wall-clock, nanoseconds),
// speedup, pool_hits, buffers_alloc, fused_reductions, plan_hits,
// plan_misses, pipelined, sessions / cross_session_hits / baseline_allocs
// (E10 rows only), and note. -schema-check validates an existing
// BENCH_*.json against that schema and exits without running experiments
// — the CI guard that keeps committed snapshots loadable.
//
// -require-plan-hits exits non-zero when the E8 iterative workloads
// record zero plan-cache hits — the CI smoke guard against silently
// disabled caching. -require-pipelined is the matching guard for E9: it
// exits non-zero when the async rows executed zero plans on the
// background executor or report a sync/async value mismatch.
// -require-shared-hits is the E10 guard: it exits non-zero when the
// shared-runtime sessions scored zero cross-session plan-cache hits, when
// no workload reduced BuffersAllocated versus the private baseline, or on
// a value mismatch. -require-xplan-fuse is the E12 guard: it exits
// non-zero when the stream workloads submitted zero combined cross-plan
// batches or any fused value diverged from its unfused twin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bohrium/internal/backend"
	"bohrium/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bhbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bhbench", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "which experiment to run: all, E1, E2, E3, E4, E5, E6, E7, E8, E9, E10")
	n := fs.Int("n", 1<<20, "elementwise vector length")
	solveMax := fs.Int("solve-max", 256, "largest linear-system size for E4")
	repeats := fs.Int("repeats", 3, "timing repetitions (best-of)")
	sessions := fs.Int("sessions", 4, "concurrent sessions for the E10 shared-runtime rows")
	backendName := fs.String("backend", "", fmt.Sprintf("execution backend %v (default %q)", backend.Names(), backend.DefaultName))
	chunkBytes := fs.Int("chunk-bytes", 0, "per-array tile budget of chunked backends (0 = backend default)")
	jsonPath := fs.String("json", "", "also write the rows as machine-readable JSON (bohrium-bench/v1) to this path")
	schemaCheck := fs.String("schema-check", "", "validate an existing BENCH_*.json against bohrium-bench/v1 and exit")
	requireHits := fs.Bool("require-plan-hits", false, "fail if the E8 iterative workloads record zero plan-cache hits")
	requirePipelined := fs.Bool("require-pipelined", false, "fail if the E9 async workloads pipelined zero plans or mismatch their sync values")
	requireShared := fs.Bool("require-shared-hits", false, "fail if the E10 shared-runtime sessions score zero cross-session plan hits, save no allocations, or mismatch values")
	requireXPlan := fs.Bool("require-xplan-fuse", false, "fail if the E12 stream workloads submit zero combined cross-plan batches or mismatch their unfused values")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *schemaCheck != "" {
		data, err := os.ReadFile(*schemaCheck)
		if err != nil {
			return err
		}
		if err := bench.CheckSchema(data); err != nil {
			return fmt.Errorf("%s: %w", *schemaCheck, err)
		}
		fmt.Fprintf(stdout, "%s: valid bohrium-bench/v1 document\n", *schemaCheck)
		return nil
	}

	scale := bench.Scale{VectorN: *n, SolveMax: *solveMax, Repeats: *repeats, Sessions: *sessions,
		Backend: *backendName, ChunkBytes: *chunkBytes}
	runners := map[string]func(bench.Scale) ([]bench.Row, error){
		"E1":  bench.E1AddMerge,
		"E2":  bench.E2PowerChain,
		"E3":  bench.E3PowerSweep,
		"E4":  bench.E4Solve,
		"E5":  bench.E5Workloads,
		"E6":  bench.E6Ablations,
		"E7":  bench.E7DTypeFusion,
		"E8":  bench.E8PlanCache,
		"E9":  bench.E9Pipeline,
		"E10": bench.E10MultiSession,
		"E12": bench.E12XPlanFuse,
	}

	var rows []bench.Row
	var err error
	if *exp == "all" {
		rows, err = bench.All(scale)
	} else {
		runner, ok := runners[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		rows, err = runner(scale)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.Table(rows))
	if *jsonPath != "" {
		data, err := bench.JSON(rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	if *requirePipelined {
		pipelined, rowsSeen := 0, 0
		for _, r := range rows {
			if r.Experiment != "E9" {
				continue
			}
			rowsSeen++
			pipelined += r.Pipelined
			if strings.Contains(r.Note, "MISMATCH") {
				return fmt.Errorf("pipeline smoke: %s: %s", r.Workload, r.Note)
			}
		}
		if rowsSeen == 0 {
			return fmt.Errorf("pipeline smoke: no E9 rows ran (pass -experiment E9 or all)")
		}
		if pipelined == 0 {
			return fmt.Errorf("pipeline smoke: zero plans executed on the async executor across %d workloads — pipelining is broken or disabled", rowsSeen)
		}
	}
	if *requireXPlan {
		fused, rowsSeen := 0, 0
		for _, r := range rows {
			if r.Experiment != "E12" {
				continue
			}
			rowsSeen++
			fused += r.XPlanFused
			if strings.Contains(r.Note, "MISMATCH") {
				return fmt.Errorf("cross-plan smoke: %s: %s", r.Workload, r.Note)
			}
		}
		if rowsSeen == 0 {
			return fmt.Errorf("cross-plan smoke: no E12 rows ran (pass -experiment E12 or all)")
		}
		if fused == 0 {
			return fmt.Errorf("cross-plan smoke: zero combined cross-plan submissions across %d workloads — deferral is broken or disabled", rowsSeen)
		}
	}
	if *requireShared {
		crossHits, rowsSeen, allocWins := 0, 0, 0
		for _, r := range rows {
			if r.Experiment != "E10" {
				continue
			}
			rowsSeen++
			crossHits += r.CrossSessionHits
			if r.BuffersAlloc < r.BaselineAllocs {
				allocWins++
			}
			if strings.Contains(r.Note, "MISMATCH") {
				return fmt.Errorf("shared-runtime smoke: %s: %s", r.Workload, r.Note)
			}
		}
		if rowsSeen == 0 {
			return fmt.Errorf("shared-runtime smoke: no E10 rows ran (pass -experiment E10 or all)")
		}
		if crossHits == 0 {
			return fmt.Errorf("shared-runtime smoke: zero cross-session plan-cache hits across %d workloads — sessions are not sharing the runtime", rowsSeen)
		}
		if allocWins == 0 {
			return fmt.Errorf("shared-runtime smoke: none of the %d workloads allocated fewer buffers on the shared runtime than on private runtimes", rowsSeen)
		}
	}
	if *requireHits {
		hits, lookups := 0, 0
		for _, r := range rows {
			if r.Experiment == "E8" {
				hits += r.PlanHits
				lookups += r.PlanHits + r.PlanMisses
			}
		}
		if lookups == 0 {
			return fmt.Errorf("plan-cache smoke: no E8 rows ran (pass -experiment E8 or all)")
		}
		if hits == 0 {
			return fmt.Errorf("plan-cache smoke: zero plan-cache hits across %d iterative flushes — caching is broken or disabled", lookups)
		}
	}
	return nil
}
