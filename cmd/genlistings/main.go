// Command genlistings regenerates the committed examples/<name>/listing.bh
// files: each example's core computation re-recorded at a reduced scale
// through the public front end and dumped (Program.Dump) before the first
// flush. The listings make every example runnable at the byte-code level —
// `bhrun examples/<name>/listing.bh` executes the workload on any backend
// with no Go bindings — and cmd/bhrun's tests replay them differentially
// across backends. Run from the repository root after changing an example
// or the recording front end:
//
//	go run ./cmd/genlistings
//
// cmd/genlistings's own test regenerates the listings in-memory and fails
// when the committed files are stale.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"bohrium"
)

// A listing pairs an example directory with the recording of its core
// computation. The record function must only record — any read (Data, At,
// Scalar) would flush the very byte-code being captured — so observables
// are marked with Sync instead.
type listing struct {
	name    string
	comment string
	record  func(ctx *bohrium.Context)
}

func listings() []listing {
	return []listing{
		{
			name:    "quickstart",
			comment: "Listing 1: three adds over a zero vector; the optimizer merges them.",
			record: func(ctx *bohrium.Context) {
				a := ctx.Zeros(10)
				a.AddC(1)
				a.AddC(1)
				a.AddC(1)
				a.Sync()
			},
		},
		{
			name:    "blackscholes",
			comment: "Black-Scholes call prices over 1024 options (tanh CDF), mean price synced.",
			record: func(ctx *bohrium.Context) {
				const r, sigma, strike = 0.02, 0.3, 100.0
				n := 1024
				spot := ctx.Random(2024, n)
				spot.MulC(40).AddC(80)
				k := ctx.Full(strike, n)
				cnd := func(x *bohrium.Array) *bohrium.Array {
					x3 := x.Power(3).MulC(0.044715)
					return x.Plus(x3).MulC(math.Sqrt(2 / math.Pi)).Tanh().AddC(1).MulC(0.5)
				}
				d1 := spot.Over(k).Log()
				d1.AddC(r + sigma*sigma/2).DivC(sigma)
				d2 := d1.Copy().SubC(sigma)
				price := spot.Times(cnd(d1))
				price.Sub(k.TimesC(math.Exp(-r)).Mul(cnd(d2)))
				price.Mean().Sync()
			},
		},
		{
			name:    "heatdiffusion",
			comment: "Jacobi heat stencil, 16x16 grid with a hot north edge, 10 sweeps, grid synced.",
			record: func(ctx *bohrium.Context) {
				const n, sweeps = 16, 10
				grid := ctx.Zeros(n, n)
				grid.MustSlice(0, 0, 1, 1).AddC(100)
				interior := func(r0, r1, c0, c1 int) *bohrium.Array {
					return grid.MustSlice(0, r0, r1, 1).MustSlice(1, c0, c1, 1)
				}
				center := interior(1, n-1, 1, n-1)
				north := interior(0, n-2, 1, n-1)
				south := interior(2, n, 1, n-1)
				west := interior(1, n-1, 0, n-2)
				east := interior(1, n-1, 2, n)
				for i := 0; i < sweeps; i++ {
					next := center.Plus(north)
					next.Add(south).Add(west).Add(east).MulC(0.2)
					center.Assign(next)
				}
				grid.Sync()
			},
		},
		{
			name:    "linearsolver",
			comment: "24x24 diagonally dominant system: x = inverse(A)*B and x = solve(A, B), both synced.",
			record: func(ctx *bohrium.Context) {
				const n = 24
				a := ctx.Random(3, n, n)
				a.MulC(2).SubC(1)
				flat, err := a.Reshape(n * n)
				if err != nil {
					log.Fatal(err)
				}
				flat.MustSlice(0, 0, n*n, n+1).AddC(float64(n))
				b := ctx.Random(5, n, 1)
				a.Inverse().MatMul(b).Sync()
				a.Solve(b).Sync()
			},
		},
		{
			name:    "powerchains",
			comment: "x^10 over 1024 elements of the base 1.0000001; BH_POWER as recorded (-O expands it).",
			record: func(ctx *bohrium.Context) {
				ctx.Full(1.0000001, 1024).Power(10).Sync()
			},
		},
		{
			name:    "kmeans",
			comment: "k-means assignment step: (3, 96) squared distances, int64 labels via BH_ARGMIN_REDUCE, labels and inertia synced.",
			record: func(ctx *bohrium.Context) {
				const k, n = 3, 96
				centersX := []float64{-2, 0, 3}
				centersY := []float64{1, -2, 2}
				cx := []float64{-0.1, 0, 0.1}
				cy := []float64{0.1, 0, -0.1}
				px := ctx.Zeros(n)
				py := ctx.Zeros(n)
				seg := n / k
				for j := 0; j < k; j++ {
					jx := ctx.Random(uint64(2*j+1), seg)
					jy := ctx.Random(uint64(2*j+2), seg)
					px.MustSlice(0, j*seg, (j+1)*seg, 1).Assign(jx.SubC(0.5).MulC(0.8).AddC(centersX[j]))
					py.MustSlice(0, j*seg, (j+1)*seg, 1).Assign(jy.SubC(0.5).MulC(0.8).AddC(centersY[j]))
				}
				dist := ctx.Zeros(k, n)
				for j := 0; j < k; j++ {
					dx := px.PlusC(-cx[j])
					dy := py.PlusC(-cy[j])
					dist.MustSlice(0, j, j+1, 1).Assign(dx.Times(dx).Plus(dy.Times(dy)))
				}
				dist.ArgminAxis(0).Sync()
				dist.MinAxis(0).Sum().Sync()
			},
		},
		{
			name:    "montecarlo",
			comment: "Monte Carlo call price, 4096 Box-Muller GBM paths, discounted mean payoff synced.",
			record: func(ctx *bohrium.Context) {
				const spot, strike, rate, sigma, expiry = 100.0, 105.0, 0.02, 0.3, 1.0
				n := 4096
				u1 := ctx.Random(7, n)
				u1.MulC(-1).AddC(1)
				u2 := ctx.Random(11, n)
				z := u1.Log().MulC(-2).Sqrt()
				z.Mul(u2.MulC(2 * math.Pi).Cos())
				st := z.MulC(sigma * math.Sqrt(expiry)).AddC((rate - sigma*sigma/2) * expiry).Exp().MulC(spot)
				payoff := st.SubC(strike).Maximum(ctx.Zeros(n))
				payoff.Mean().MulC(math.Exp(-rate * expiry)).Sync()
			},
		},
	}
}

// render records one listing in a fresh context and returns the commented
// dump. The context never flushes, so PendingProgram holds the entire
// recording.
func render(l listing) string {
	ctx := bohrium.NewContext(nil)
	defer ctx.Close()
	l.record(ctx)
	return fmt.Sprintf("# %s/listing.bh — %s\n# generated by `go run ./cmd/genlistings` — do not edit by hand\n%s",
		l.name, l.comment, ctx.PendingProgram().Dump())
}

func main() {
	dir := flag.String("dir", "examples", "examples directory to write the listing.bh files into")
	flag.Parse()
	for _, l := range listings() {
		path := filepath.Join(*dir, l.name, "listing.bh")
		if err := os.WriteFile(path, []byte(render(l)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
