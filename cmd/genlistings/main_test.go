package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestListingsFresh regenerates every listing in memory and compares it
// against the committed examples/<name>/listing.bh — the guard that keeps
// the byte-code listings in lockstep with the examples and the recording
// front end. On mismatch, rerun `go run ./cmd/genlistings`.
func TestListingsFresh(t *testing.T) {
	for _, l := range listings() {
		t.Run(l.name, func(t *testing.T) {
			path := filepath.Join("..", "..", "examples", l.name, "listing.bh")
			committed, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go run ./cmd/genlistings`)", err)
			}
			if got := render(l); got != string(committed) {
				t.Errorf("%s is stale — run `go run ./cmd/genlistings`", path)
			}
		})
	}
}

// TestListingsDeterministic pins that recording is reproducible: two
// fresh contexts dump byte-identical programs, so the freshness check
// above cannot flake.
func TestListingsDeterministic(t *testing.T) {
	for _, l := range listings() {
		if render(l) != render(l) {
			t.Errorf("%s: recording is not deterministic", l.name)
		}
	}
}
