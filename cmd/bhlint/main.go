// Command bhlint runs the repo's static-invariant analyzers (package
// internal/analysis) over the whole module and prints findings as
// "file:line: [analyzer] message", one per line, sorted by position.
//
// Usage:
//
//	bhlint [-list] [-run name,name] [dir]
//
// dir defaults to the current directory; bhlint walks up from it to the
// enclosing go.mod, so "go run ./cmd/bhlint ./..." from anywhere in the
// module lints the whole module (the "./..."-style argument is accepted
// and trimmed for familiarity — the unit of analysis is always the
// module).
//
// Exit status: 0 when clean, 1 when any analyzer reported a finding,
// 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bohrium/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bhlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*runNames)
	if err != nil {
		fmt.Fprintln(stderr, "bhlint:", err)
		return 2
	}

	dir := "."
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "bhlint: at most one directory argument")
		return 2
	}
	if fs.NArg() == 1 {
		// Accept the conventional "./..." spelling: analysis is always
		// module-wide, so the pattern suffix is just trimmed.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		if dir == "" {
			dir = "."
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "bhlint:", err)
		return 2
	}

	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "bhlint:", err)
		return 2
	}
	diags := analysis.Run(mod, analyzers)
	for _, d := range diags {
		// Report paths relative to the module root: stable across
		// machines, clickable from the repo checkout.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "bhlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -run list against the registry; an empty
// list means all analyzers.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.All, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a := byName[name]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (see bhlint -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
