package main

import (
	"strings"
	"testing"
)

// TestSelfRun is the gate the CI step relies on: the real module, as
// committed, carries zero findings. Any invariant regression turns this
// test (and the CI bhlint step) red.
func TestSelfRun(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../../..."}, &out, &errb); code != 0 {
		t.Fatalf("bhlint on the real module: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d: %s", code, errb.String())
	}
	for _, name := range []string{"errwrap", "guardedfield", "atomicfield", "ctxflow", "wirecontract", "boundary"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks %q:\n%s", name, out.String())
		}
	}
}

func TestRunSubset(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "errwrap,boundary", "../.."}, &out, &errb); code != 0 {
		t.Fatalf("-run subset: exit %d\n%s%s", code, out.String(), errb.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-run", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr %q lacks the unknown-analyzer hint", errb.String())
	}
}

func TestTooManyArgs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"a", "b"}, &out, &errb); code != 2 {
		t.Fatalf("two dirs: exit %d, want 2", code)
	}
}
