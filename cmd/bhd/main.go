// Command bhd serves the shared runtime as a multi-tenant HTTP
// service — the paper's array engine as long-running middleware.
// Clients authenticate with bearer tokens, create sessions (each one a
// backend on the daemon's single shared engine), submit textual
// byte-code batches, and read synced registers back; docs/api.md
// specifies the wire protocol.
//
// Usage:
//
//	bhd [-addr host:port] [-token tenant=secret]... [-backend name]
//	    [-workers n] [-max-sessions n] [-max-submitted-bytes n]
//	    [-max-queued-batches n] [-body-limit n] [-idle-timeout d]
//	    [-token-ttl d] [-submit-timeout d] [-wait-timeout d]
//	    [-queue-depth n] [-memory-watermark n] [-drain-timeout d]
//	    [-quiet]
//
// -token is repeatable: each occurrence maps one bearer secret to the
// tenant it authenticates. At least one is required — bhd refuses to
// serve an engine nobody can be authorized against. The -max-* flags
// set the per-tenant quotas (0 = unlimited); -idle-timeout bounds how
// long an untouched session survives before the janitor reaps it.
//
// The overload knobs bound how long the daemon holds a request before
// shedding it with a retryable 503 + Retry-After: -submit-timeout for
// batch admission (session lock plus an async queue slot),
// -wait-timeout for reads fencing an async pipeline, -queue-depth for
// each async session's executor queue, and -memory-watermark for the
// engine's graceful-degradation byte budget (0 = unlimited; over it,
// shareable caches shed before allocations are denied).
//
// bhd exits cleanly on SIGINT/SIGTERM: new work is refused with 503 +
// Retry-After while in-flight batches drain (bounded by
// -drain-timeout), then every session closes and the engine shuts
// down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bohrium"
	"bohrium/internal/backend"
	"bohrium/internal/server"
	"bohrium/internal/server/middleware"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "bhd:", err)
		os.Exit(1)
	}
}

// tokenFlag accumulates repeated -token tenant=secret mappings into the
// secret→tenant table the auth middleware resolves against.
type tokenFlag struct{ tokens middleware.StaticTokens }

func (f *tokenFlag) String() string { return fmt.Sprintf("%d token(s)", len(f.tokens)) }

func (f *tokenFlag) Set(v string) error {
	tenant, secret, ok := strings.Cut(v, "=")
	if !ok || tenant == "" || secret == "" {
		return fmt.Errorf("-token wants tenant=secret, got %q", v)
	}
	if f.tokens == nil {
		f.tokens = middleware.StaticTokens{}
	}
	if prev, dup := f.tokens[secret]; dup && prev != tenant {
		return fmt.Errorf("-token secret already maps to tenant %q", prev)
	}
	f.tokens[secret] = tenant
	return nil
}

// run parses flags and serves until ctx (or a termination signal when
// ctx is nil) ends the daemon. The bound address is printed to stdout
// once listening, so callers starting bhd on ":0" can find it.
func run(args []string, stdout, stderr io.Writer, ctx context.Context) error {
	fs := flag.NewFlagSet("bhd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8700", "listen address")
	var tokens tokenFlag
	fs.Var(&tokens, "token", "tenant=secret bearer credential (repeatable, at least one required)")
	backendName := fs.String("backend", "", fmt.Sprintf("default session backend %v (default %q)", backend.Names(), backend.DefaultName))
	workers := fs.Int("workers", 0, "shared engine worker pool size (0 = GOMAXPROCS)")
	maxSessions := fs.Int("max-sessions", 0, "per-tenant live session cap (0 = unlimited)")
	maxBytes := fs.Int64("max-submitted-bytes", 0, "per-tenant cumulative batch byte cap (0 = unlimited)")
	maxQueued := fs.Int("max-queued-batches", 0, "per-tenant queued async batch cap (0 = unlimited)")
	bodyLimit := fs.Int64("body-limit", 0, "request body size cap in bytes (0 = 1 MiB)")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "reap sessions idle this long")
	tokenTTL := fs.Duration("token-ttl", time.Minute, "token→tenant cache entry lifetime")
	submitTimeout := fs.Duration("submit-timeout", time.Second, "shed batch submissions not admitted within this deadline")
	waitTimeout := fs.Duration("wait-timeout", time.Minute, "shed reads whose pipeline fence outruns this deadline")
	queueDepth := fs.Int("queue-depth", 0, "async executor queue depth per session (0 = default)")
	memWatermark := fs.Int("memory-watermark", 0, "engine memory high watermark in bytes (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "bound on draining in-flight batches at shutdown")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if len(tokens.tokens) == 0 {
		return errors.New("no -token tenant=secret credentials given; refusing to serve unauthenticatable engine")
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *submitTimeout <= 0 {
		return fmt.Errorf("-submit-timeout must be positive, got %v", *submitTimeout)
	}
	if *waitTimeout <= 0 {
		return fmt.Errorf("-wait-timeout must be positive, got %v", *waitTimeout)
	}
	if *queueDepth < 0 {
		return fmt.Errorf("-queue-depth must not be negative, got %d", *queueDepth)
	}
	if *memWatermark < 0 {
		return fmt.Errorf("-memory-watermark must not be negative, got %d", *memWatermark)
	}

	logger := log.New(stderr, "bhd: ", log.LstdFlags)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}

	rt := bohrium.NewRuntime(&bohrium.RuntimeConfig{
		Workers:             *workers,
		MemoryHighWatermark: *memWatermark,
	})
	defer rt.Close()

	srv, err := server.New(server.Config{
		Runtime:        rt,
		DefaultBackend: *backendName,
		Auth:           tokens.tokens,
		TokenTTL:       *tokenTTL,
		Quotas: server.Quotas{
			MaxSessions:       *maxSessions,
			MaxSubmittedBytes: *maxBytes,
			MaxQueuedBatches:  *maxQueued,
		},
		MaxBodyBytes:  *bodyLimit,
		IdleTimeout:   *idleTimeout,
		Logger:        logger,
		SubmitTimeout: *submitTimeout,
		WaitTimeout:   *waitTimeout,
		QueueDepth:    *queueDepth,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bhd listening on http://%s\n", ln.Addr())

	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer cancel()
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new work (503 + Retry-After via the
	// Drain middleware) while in-flight batches complete, bounded by
	// -drain-timeout; then close the listener and connections.
	logger.Printf("draining: refusing new work, waiting up to %v for in-flight batches", *drainTimeout)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain timed out with %d batch(es) still in flight; closing anyway", srv.InFlightBatches())
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-serveErr // http.ErrServerClosed
	return nil
}
