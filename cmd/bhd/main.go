// Command bhd serves the shared runtime as a multi-tenant HTTP
// service — the paper's array engine as long-running middleware.
// Clients authenticate with bearer tokens, create sessions (each one a
// backend on the daemon's single shared engine), submit textual
// byte-code batches, and read synced registers back; docs/api.md
// specifies the wire protocol.
//
// Usage:
//
//	bhd [-addr host:port] [-token tenant=secret]... [-backend name]
//	    [-workers n] [-max-sessions n] [-max-submitted-bytes n]
//	    [-max-queued-batches n] [-body-limit n] [-idle-timeout d]
//	    [-token-ttl d] [-quiet]
//
// -token is repeatable: each occurrence maps one bearer secret to the
// tenant it authenticates. At least one is required — bhd refuses to
// serve an engine nobody can be authorized against. The -max-* flags
// set the per-tenant quotas (0 = unlimited); -idle-timeout bounds how
// long an untouched session survives before the janitor reaps it.
//
// bhd exits cleanly on SIGINT/SIGTERM: in-flight requests drain,
// every session closes, and the engine shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bohrium"
	"bohrium/internal/backend"
	"bohrium/internal/server"
	"bohrium/internal/server/middleware"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "bhd:", err)
		os.Exit(1)
	}
}

// tokenFlag accumulates repeated -token tenant=secret mappings into the
// secret→tenant table the auth middleware resolves against.
type tokenFlag struct{ tokens middleware.StaticTokens }

func (f *tokenFlag) String() string { return fmt.Sprintf("%d token(s)", len(f.tokens)) }

func (f *tokenFlag) Set(v string) error {
	tenant, secret, ok := strings.Cut(v, "=")
	if !ok || tenant == "" || secret == "" {
		return fmt.Errorf("-token wants tenant=secret, got %q", v)
	}
	if f.tokens == nil {
		f.tokens = middleware.StaticTokens{}
	}
	if prev, dup := f.tokens[secret]; dup && prev != tenant {
		return fmt.Errorf("-token secret already maps to tenant %q", prev)
	}
	f.tokens[secret] = tenant
	return nil
}

// run parses flags and serves until ctx (or a termination signal when
// ctx is nil) ends the daemon. The bound address is printed to stdout
// once listening, so callers starting bhd on ":0" can find it.
func run(args []string, stdout, stderr io.Writer, ctx context.Context) error {
	fs := flag.NewFlagSet("bhd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8700", "listen address")
	var tokens tokenFlag
	fs.Var(&tokens, "token", "tenant=secret bearer credential (repeatable, at least one required)")
	backendName := fs.String("backend", "", fmt.Sprintf("default session backend %v (default %q)", backend.Names(), backend.DefaultName))
	workers := fs.Int("workers", 0, "shared engine worker pool size (0 = GOMAXPROCS)")
	maxSessions := fs.Int("max-sessions", 0, "per-tenant live session cap (0 = unlimited)")
	maxBytes := fs.Int64("max-submitted-bytes", 0, "per-tenant cumulative batch byte cap (0 = unlimited)")
	maxQueued := fs.Int("max-queued-batches", 0, "per-tenant queued async batch cap (0 = unlimited)")
	bodyLimit := fs.Int64("body-limit", 0, "request body size cap in bytes (0 = 1 MiB)")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "reap sessions idle this long")
	tokenTTL := fs.Duration("token-ttl", time.Minute, "token→tenant cache entry lifetime")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if len(tokens.tokens) == 0 {
		return errors.New("no -token tenant=secret credentials given; refusing to serve unauthenticatable engine")
	}

	logger := log.New(stderr, "bhd: ", log.LstdFlags)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}

	rt := bohrium.NewRuntime(&bohrium.RuntimeConfig{Workers: *workers})
	defer rt.Close()

	srv, err := server.New(server.Config{
		Runtime:        rt,
		DefaultBackend: *backendName,
		Auth:           tokens.tokens,
		TokenTTL:       *tokenTTL,
		Quotas: server.Quotas{
			MaxSessions:       *maxSessions,
			MaxSubmittedBytes: *maxBytes,
			MaxQueuedBatches:  *maxQueued,
		},
		MaxBodyBytes: *bodyLimit,
		IdleTimeout:  *idleTimeout,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bhd listening on http://%s\n", ln.Addr())

	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer cancel()
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-serveErr // http.ErrServerClosed
	return nil
}
