package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bohrium/internal/faultinject"
)

// TestFlagValidation pins the daemon's refusal paths: it never serves
// without credentials, rejects malformed -token values and ambiguous
// secrets, and rejects stray arguments.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no tokens", []string{"-addr", "localhost:0"}, "no -token"},
		{"malformed token", []string{"-token", "justasecret"}, "tenant=secret"},
		{"empty tenant", []string{"-token", "=s"}, "tenant=secret"},
		{"ambiguous secret", []string{"-token", "a=s", "-token", "b=s"}, "already maps"},
		{"stray argument", []string{"-token", "a=s", "listing.bh"}, "unexpected argument"},
		{"zero drain-timeout", []string{"-token", "a=s", "-drain-timeout", "0s"}, "-drain-timeout must be positive"},
		{"negative submit-timeout", []string{"-token", "a=s", "-submit-timeout", "-1s"}, "-submit-timeout must be positive"},
		{"zero wait-timeout", []string{"-token", "a=s", "-wait-timeout", "0s"}, "-wait-timeout must be positive"},
		{"negative queue-depth", []string{"-token", "a=s", "-queue-depth", "-1"}, "-queue-depth must not be negative"},
		{"negative memory-watermark", []string{"-token", "a=s", "-memory-watermark", "-1"}, "-memory-watermark must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			err := run(tc.args, &out, &errOut, context.Background())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestServeSmoke boots the real daemon on an ephemeral port, drives one
// session through it over TCP — health check, create, batch, array —
// and shuts it down cleanly via context cancellation (the code path
// SIGINT/SIGTERM take).
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	outR, outW := io.Pipe()
	runErr := make(chan error, 1)
	go func() {
		defer outW.Close()
		runErr <- run([]string{
			"-addr", "localhost:0",
			"-token", "acme=sesame",
			"-max-sessions", "4",
			"-quiet",
		}, outW, io.Discard, ctx)
	}()

	// The daemon prints its bound address once listening.
	var banner [256]byte
	n, err := outR.Read(banner[:])
	if err != nil {
		t.Fatalf("reading banner: %v (run: %v)", err, <-runErr)
	}
	line := strings.TrimSpace(string(banner[:n]))
	base := strings.TrimPrefix(line, "bhd listening on ")
	if base == line {
		t.Fatalf("unexpected banner %q", line)
	}

	do := func(method, path, token, body string, want int) []byte {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("%s %s: status %d, want %d; body %s", method, path, resp.StatusCode, want, data)
		}
		return data
	}

	do("GET", "/healthz", "", "", http.StatusOK)
	do("GET", "/v1/sessions", "", "", http.StatusUnauthorized)

	var sess struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(do("POST", "/v1/sessions", "sesame", "", http.StatusCreated), &sess); err != nil {
		t.Fatal(err)
	}
	listing := ".reg a0 float64 4\nBH_IDENTITY a0 [0:4:1] 2\nBH_MULTIPLY a0 [0:4:1] a0 [0:4:1] 21\nBH_SYNC a0 [0:4:1]\n"
	do("POST", "/v1/sessions/"+sess.ID+"/batches", "sesame", listing, http.StatusOK)
	var arr struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(do("GET", "/v1/sessions/"+sess.ID+"/arrays/a0", "sesame", "", http.StatusOK), &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr.Values) != 4 || arr.Values[0] != 42 {
		t.Fatalf("array over TCP: %v, want four 42s", arr.Values)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after cancellation")
	}
}

// TestChaosDrainOverTCP pins graceful shutdown on the real daemon: with
// a deliberately slow batch in flight, cancellation (the SIGINT path)
// flips the daemon into drain mode — new POSTs are refused with 503 +
// Retry-After while the slow batch keeps executing, its results stay
// readable through the drain, and run() exits nil once everything in
// flight has completed within -drain-timeout.
func TestChaosDrainOverTCP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	outR, outW := io.Pipe()
	runErr := make(chan error, 1)
	go func() {
		defer outW.Close()
		runErr <- run([]string{
			"-addr", "localhost:0",
			"-token", "acme=sesame",
			"-drain-timeout", "5s",
			"-quiet",
		}, outW, io.Discard, ctx)
	}()

	var banner [256]byte
	n, err := outR.Read(banner[:])
	if err != nil {
		t.Fatalf("reading banner: %v (run: %v)", err, <-runErr)
	}
	line := strings.TrimSpace(string(banner[:n]))
	base := strings.TrimPrefix(line, "bhd listening on ")
	if base == line {
		t.Fatalf("unexpected banner %q", line)
	}

	do := func(method, path, body string) (int, http.Header, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer sesame")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, data
	}

	var sess struct {
		ID string `json:"id"`
	}
	status, _, data := do("POST", "/v1/sessions", `{"async": true}`)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", status, data)
	}
	if err := json.Unmarshal(data, &sess); err != nil {
		t.Fatal(err)
	}

	disarm := faultinject.Arm(faultinject.SlowExec, faultinject.Fault{
		Label: "acme", Delay: 800 * time.Millisecond, Times: 1,
	})
	defer disarm()
	listing := ".reg a0 float64 4\nBH_IDENTITY a0 [0:4:1] 2\nBH_MULTIPLY a0 [0:4:1] a0 [0:4:1] 21\nBH_SYNC a0 [0:4:1]\n"
	if status, _, data := do("POST", "/v1/sessions/"+sess.ID+"/batches", listing); status != http.StatusAccepted {
		t.Fatalf("async submit: status %d, body %s", status, data)
	}

	// SIGINT path: the slow batch is mid-execution when the drain begins.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, hdr, data := do("POST", "/v1/sessions/"+sess.ID+"/batches", listing)
		if status == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Fatalf("drain 503 carries no Retry-After header; body %s", data)
			}
			break
		}
		if status != http.StatusAccepted {
			t.Fatalf("submit during drain transition: status %d, body %s", status, data)
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never refused new work after cancellation")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Reads pass through the drain: the fence waits out the slow batch
	// and returns its results — in-flight work was completed, not dropped.
	status, _, data = do("GET", "/v1/sessions/"+sess.ID+"/arrays/a0", "")
	if status != http.StatusOK {
		t.Fatalf("read during drain: status %d, body %s", status, data)
	}
	var arr struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(data, &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr.Values) != 4 || arr.Values[0] != 42 {
		t.Fatalf("array read through the drain: %v, want four 42s", arr.Values)
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exit after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after draining")
	}
}
