package main

import (
	"strings"
	"testing"
)

func TestBhrunExecutesListing2(t *testing.T) {
	src := `BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`
	var out strings.Builder
	if err := run(nil, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a0 = [3 3 3 3 3 3 3 3 3 3]") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestBhrunOptimizedMatchesRaw(t *testing.T) {
	src := `.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 10
BH_SYNC a1
`
	var raw, opt strings.Builder
	if err := run(nil, strings.NewReader(src), &raw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-O"}, strings.NewReader(src), &opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw.String(), "1024") || !strings.Contains(opt.String(), "1024") {
		t.Errorf("raw:\n%s\nopt:\n%s", raw.String(), opt.String())
	}
}

func TestBhrunTraceShowsStats(t *testing.T) {
	src := `.reg a0 float64 8
BH_IDENTITY a0 1
BH_SYNC a0
`
	var out strings.Builder
	if err := run([]string{"-trace"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# stats:") {
		t.Errorf("missing stats footer:\n%s", out.String())
	}
}

func TestBhrunRejectsInvalid(t *testing.T) {
	if err := run(nil, strings.NewReader("BH_ADD a0 [0:4:1] a0 [0:4:1] 1"), &strings.Builder{}); err == nil {
		t.Error("use-before-def accepted")
	}
}

func TestBhrunRepeatHitsPlanCache(t *testing.T) {
	src := `.reg a0 float64 8
BH_IDENTITY a0 1
BH_ADD a0 a0 2
BH_SYNC a0
`
	var out strings.Builder
	if err := run([]string{"-trace", "-repeat", "3"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# plans: 2 hits, 1 misses") {
		t.Errorf("repeat runs did not hit the plan cache:\n%s", got)
	}
	if !strings.Contains(got, "a0 = [3 3 3 3 3 3 3 3]") {
		t.Errorf("repeated execution changed the result:\n%s", got)
	}
}

func TestBhrunAsyncMatchesSync(t *testing.T) {
	src := `.reg a0 float64 8
BH_IDENTITY a0 1
BH_ADD a0 a0 2
BH_SYNC a0
`
	var out strings.Builder
	if err := run([]string{"-trace", "-repeat", "4", "-async"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "a0 = [3 3 3 3 3 3 3 3]") {
		t.Errorf("async execution result wrong:\n%s", got)
	}
	if !strings.Contains(got, "# pipeline: 4 plans executed asynchronously") {
		t.Errorf("async repeats did not go through the executor:\n%s", got)
	}
	if !strings.Contains(got, "# plans: 3 hits, 1 misses") {
		t.Errorf("async repeats bypassed the plan cache:\n%s", got)
	}
}
