package main

import (
	"strings"
	"testing"
)

func TestBhrunExecutesListing2(t *testing.T) {
	src := `BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`
	var out strings.Builder
	if err := run(nil, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a0 = [3 3 3 3 3 3 3 3 3 3]") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestBhrunOptimizedMatchesRaw(t *testing.T) {
	src := `.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 10
BH_SYNC a1
`
	var raw, opt strings.Builder
	if err := run(nil, strings.NewReader(src), &raw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-O"}, strings.NewReader(src), &opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw.String(), "1024") || !strings.Contains(opt.String(), "1024") {
		t.Errorf("raw:\n%s\nopt:\n%s", raw.String(), opt.String())
	}
}

func TestBhrunTraceShowsStats(t *testing.T) {
	src := `.reg a0 float64 8
BH_IDENTITY a0 1
BH_SYNC a0
`
	var out strings.Builder
	if err := run([]string{"-trace"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# stats:") {
		t.Errorf("missing stats footer:\n%s", out.String())
	}
}

func TestBhrunRejectsInvalid(t *testing.T) {
	if err := run(nil, strings.NewReader("BH_ADD a0 [0:4:1] a0 [0:4:1] 1"), &strings.Builder{}); err == nil {
		t.Error("use-before-def accepted")
	}
}

func TestBhrunRepeatHitsPlanCache(t *testing.T) {
	src := `.reg a0 float64 8
BH_IDENTITY a0 1
BH_ADD a0 a0 2
BH_SYNC a0
`
	var out strings.Builder
	if err := run([]string{"-trace", "-repeat", "3"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# plans: 2 hits, 1 misses") {
		t.Errorf("repeat runs did not hit the plan cache:\n%s", got)
	}
	if !strings.Contains(got, "a0 = [3 3 3 3 3 3 3 3]") {
		t.Errorf("repeated execution changed the result:\n%s", got)
	}
}

// TestBhrunBackendsAgree runs one listing under every registered backend,
// sync and async, and requires byte-identical output — the CLI face of
// the backend-differential contract. The 1000-element register with an
// 800-byte chunk budget forces the out-of-core backend to stream ten
// tiles, visible in the trace footer.
func TestBhrunBackendsAgree(t *testing.T) {
	src := `.reg a0 float64 1000
.reg a1 float64 1000
.reg a2 float64 1
BH_RANGE a0
BH_MULTIPLY a1 a0 0.001
BH_ADD a1 a1 1.5
BH_SQRT a1 a1
BH_ADD_REDUCE a2 [0:1:1] a1 axis=0
BH_SYNC a1
BH_SYNC a2
`
	var ref string
	for _, args := range [][]string{
		nil,
		{"-backend", "inprocess"},
		{"-backend", "inprocess", "-async"},
		{"-backend", "outofcore", "-chunk-bytes", "800"},
		{"-backend", "outofcore", "-chunk-bytes", "800", "-async"},
	} {
		var out strings.Builder
		if err := run(args, strings.NewReader(src), &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if ref == "" {
			ref = out.String()
		} else if out.String() != ref {
			t.Errorf("%v output differs:\n%s\nwant:\n%s", args, out.String(), ref)
		}
	}

	var out strings.Builder
	if err := run([]string{"-backend", "outofcore", "-chunk-bytes", "800", "-trace"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# backend: outofcore") {
		t.Errorf("missing backend trace line:\n%s", got)
	}
	if !strings.Contains(got, "# chunks: 10 tiles streamed") {
		t.Errorf("expected 10 streamed tiles (1000 elems / 100-elem tiles):\n%s", got)
	}
}

func TestBhrunUnknownBackend(t *testing.T) {
	src := ".reg a0 float64 4\nBH_IDENTITY a0 1\nBH_SYNC a0\n"
	err := run([]string{"-backend", "gpu"}, strings.NewReader(src), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), `unknown backend "gpu"`) {
		t.Fatalf("err = %v, want unknown-backend error", err)
	}
}

func TestBhrunAsyncMatchesSync(t *testing.T) {
	src := `.reg a0 float64 8
BH_IDENTITY a0 1
BH_ADD a0 a0 2
BH_SYNC a0
`
	var out strings.Builder
	if err := run([]string{"-trace", "-repeat", "4", "-async"}, strings.NewReader(src), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "a0 = [3 3 3 3 3 3 3 3]") {
		t.Errorf("async execution result wrong:\n%s", got)
	}
	if !strings.Contains(got, "# pipeline: 4 plans executed asynchronously") {
		t.Errorf("async repeats did not go through the executor:\n%s", got)
	}
	if !strings.Contains(got, "# plans: 3 hits, 1 misses") {
		t.Errorf("async repeats bypassed the plan cache:\n%s", got)
	}
}
