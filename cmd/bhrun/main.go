// Command bhrun assembles and executes a textual byte-code listing,
// printing every BH_SYNCed register — a byte-code-level REPL for the
// virtual machine.
//
// Usage:
//
//	bhrun [-O] [-workers n] [-no-fusion] [-repeat n] [-async] [-trace] [file.bh]
//
// -O runs the algebraic optimizer before execution; -trace prints the
// (possibly optimized) program and VM sweep statistics. Execution goes
// through the VM's fingerprint-keyed plan cache: -repeat re-executes
// the program n times, so the first run compiles a plan and the rest
// replay it (the "# plans:" trace line shows n-1 hits). -async submits
// every repeat to the VM's background executor and waits once at the
// end — the submit/wait pipeline the bohrium front-end uses in async
// mode (the "# pipeline:" trace line counts plans it executed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bohrium/internal/bytecode"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bhrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bhrun", flag.ContinueOnError)
	optimize := fs.Bool("O", false, "run the algebraic optimizer before executing")
	workers := fs.Int("workers", 0, "VM worker pool size (0 = GOMAXPROCS)")
	noFusion := fs.Bool("no-fusion", false, "disable sweep fusion")
	repeat := fs.Int("repeat", 1, "execute the program n times through the plan cache")
	async := fs.Bool("async", false, "pipeline the repeats through the background executor (submit all, wait once)")
	trace := fs.Bool("trace", false, "print the executed program and sweep stats")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src string
	if fs.NArg() == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		src = string(data)
	} else {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}

	prog, err := bytecode.Parse(src)
	if err != nil {
		return err
	}
	if err := prog.Validate(); err != nil {
		return err
	}

	if *optimize {
		optimized, report, err := rewrite.Default().Optimize(prog)
		if err != nil {
			return err
		}
		if *trace {
			fmt.Fprintf(stdout, "# optimizer: %s", report.String())
		}
		prog = optimized
	}
	if *trace {
		fmt.Fprint(stdout, prog.Dump())
		fmt.Fprintln(stdout, "# ---")
	}

	machine := vm.New(vm.Config{Workers: *workers, Fusion: !*noFusion})
	defer machine.Close()
	if *repeat < 1 {
		*repeat = 1
	}
	var exec *vm.Executor
	if *async {
		exec = machine.NewExecutor(0)
	}
	fp := prog.Fingerprint()
	consts := prog.Constants()
	for i := 0; i < *repeat; i++ {
		plan, _, ok := machine.LookupPlan(fp, consts, nil)
		if !ok {
			var err error
			if plan, err = machine.Compile(prog); err != nil {
				return err
			}
			machine.InsertPlan(fp, consts, false, plan, nil)
		}
		if exec != nil {
			// The cached plan's constants never change here (entries are
			// exact-vector), so no deferred patch is needed.
			exec.Submit(plan, nil, false)
			continue
		}
		if err := plan.Execute(machine); err != nil {
			return err
		}
	}
	if exec != nil {
		if err := exec.Close(); err != nil {
			return err
		}
	}

	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op != bytecode.OpSync {
			continue
		}
		t, ok := machine.Tensor(in.Out.Reg, in.Out.View)
		if !ok {
			fmt.Fprintf(stdout, "%s = <freed>\n", in.Out.Reg)
			continue
		}
		fmt.Fprintf(stdout, "%s = %s\n", in.Out.Reg, t.Format(tensor.FormatOptions{MaxPerDim: 10, Precision: 6}))
	}
	if *trace {
		st := machine.Stats()
		fmt.Fprintf(stdout, "# stats: %d instructions, %d sweeps, %d fused, %d fused-reductions, %d elements\n",
			st.Instructions, st.Sweeps, st.FusedInstructions, st.FusedReductions, st.Elements)
		fmt.Fprintf(stdout, "# fused by dtype: %s\n", st.FusedByDType)
		fmt.Fprintf(stdout, "# buffers: %d allocated (%d bytes), %d pool hits\n",
			st.BuffersAllocated, st.BytesAllocated, st.PoolHits)
		fmt.Fprintf(stdout, "# plans: %d hits, %d misses, %d evictions\n",
			st.PlanHits, st.PlanMisses, st.PlanEvictions)
		fmt.Fprintf(stdout, "# pipeline: %d plans executed asynchronously\n", st.Pipelined)
	}
	return nil
}
