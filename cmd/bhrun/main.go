// Command bhrun assembles and executes a textual byte-code listing,
// printing every BH_SYNCed register — a byte-code-level REPL for the
// virtual machine.
//
// Usage:
//
//	bhrun [-O] [-workers n] [-par-threshold n] [-no-fusion] [-repeat n]
//	      [-async] [-sessions k] [-shared] [-trace] [file.bh]
//
// -O runs the algebraic optimizer before execution; -trace prints the
// (possibly optimized) program and VM sweep statistics. -workers and
// -par-threshold plumb the VM's Workers and ParallelThreshold knobs, so
// any bench configuration is reproducible from the CLI. Execution goes
// through the VM's fingerprint-keyed plan cache: -repeat re-executes
// the program n times, so the first run compiles a plan and the rest
// replay it (the "# plans:" trace line shows n-1 hits). -async submits
// every repeat to the VM's background executor and waits once at the
// end — the submit/wait pipeline the bohrium front-end uses in async
// mode (the "# pipeline:" trace line counts plans it executed).
//
// -sessions runs the program in k concurrent sessions (each its own
// machine and register file, each doing its -repeat runs); with -shared
// the sessions hang off ONE engine — one worker pool, one plan cache, one
// buffer recycle pool, the paper's shared-middleware configuration —
// while without it each session gets a private engine. The printed
// registers come from session 0; -trace reports the summed stats, where
// the plan column shows cross-session reuse under -shared (k·n runs, one
// compile).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"

	"bohrium/internal/bytecode"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bhrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bhrun", flag.ContinueOnError)
	optimize := fs.Bool("O", false, "run the algebraic optimizer before executing")
	workers := fs.Int("workers", 0, "VM worker pool size (0 = GOMAXPROCS)")
	parThreshold := fs.Int("par-threshold", 0, "minimum sweep size before splitting across workers (0 = default)")
	noFusion := fs.Bool("no-fusion", false, "disable sweep fusion")
	repeat := fs.Int("repeat", 1, "execute the program n times through the plan cache")
	async := fs.Bool("async", false, "pipeline the repeats through the background executor (submit all, wait once)")
	sessions := fs.Int("sessions", 1, "run the program in k concurrent sessions")
	shared := fs.Bool("shared", false, "share one engine (pool, plan cache, buffer pool) across -sessions")
	trace := fs.Bool("trace", false, "print the executed program and sweep stats")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src string
	if fs.NArg() == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		src = string(data)
	} else {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}

	prog, err := bytecode.Parse(src)
	if err != nil {
		return err
	}
	if err := prog.Validate(); err != nil {
		return err
	}

	if *optimize {
		optimized, report, err := rewrite.Default().Optimize(prog)
		if err != nil {
			return err
		}
		if *trace {
			fmt.Fprintf(stdout, "# optimizer: %s", report.String())
		}
		prog = optimized
	}
	if *trace {
		fmt.Fprint(stdout, prog.Dump())
		fmt.Fprintln(stdout, "# ---")
	}

	cfg := vm.Config{Workers: *workers, ParallelThreshold: *parThreshold, Fusion: !*noFusion}
	if *repeat < 1 {
		*repeat = 1
	}
	if *sessions < 1 {
		*sessions = 1
	}

	// Build the session machines: private engines by default, one shared
	// engine (pool + plan cache + recycle pool) under -shared.
	machines := make([]*vm.Machine, *sessions)
	var eng *vm.Engine
	if *shared {
		eng = vm.NewEngine(vm.EngineConfig{Workers: *workers})
		defer eng.Close()
		for i := range machines {
			machines[i] = eng.NewMachine(cfg)
		}
	} else {
		for i := range machines {
			machines[i] = vm.New(cfg)
		}
	}
	for _, m := range machines {
		defer m.Close()
	}

	// sessionRun does one session's -repeat executions through the plan
	// cache (each session runs its own copy of the program; under -shared
	// every session after the first hits the plan another compiled).
	sessionRun := func(m *vm.Machine, p *bytecode.Program) (err error) {
		var exec *vm.Executor
		if *async {
			exec = m.NewExecutor(0)
			// Close on every path — an early compile/execute error must
			// not leave the executor goroutine or queued plans behind.
			defer func() {
				if cerr := exec.Close(); err == nil {
					err = cerr
				}
			}()
		}
		fp := p.Fingerprint()
		consts := p.Constants()
		for i := 0; i < *repeat; i++ {
			plan, _, ok := m.LookupPlan(fp, consts, nil)
			if !ok {
				var err error
				if plan, err = m.Compile(p); err != nil {
					return err
				}
				m.InsertPlan(fp, consts, false, plan, nil)
			}
			if exec != nil {
				exec.Submit(plan)
				continue
			}
			if err := plan.Execute(m); err != nil {
				return err
			}
		}
		return nil
	}

	if *sessions == 1 {
		if err := sessionRun(machines[0], prog); err != nil {
			return err
		}
	} else {
		errs := make([]error, *sessions)
		var wg sync.WaitGroup
		for i, m := range machines {
			wg.Add(1)
			go func(i int, m *vm.Machine) {
				defer wg.Done()
				errs[i] = sessionRun(m, prog.Clone())
			}(i, m)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("session %d: %w", i, err)
			}
		}
	}

	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op != bytecode.OpSync {
			continue
		}
		t, ok := machines[0].Tensor(in.Out.Reg, in.Out.View)
		if !ok {
			fmt.Fprintf(stdout, "%s = <freed>\n", in.Out.Reg)
			continue
		}
		fmt.Fprintf(stdout, "%s = %s\n", in.Out.Reg, t.Format(tensor.FormatOptions{MaxPerDim: 10, Precision: 6}))
	}
	if *trace {
		var st vm.Stats
		for _, m := range machines {
			st.Accumulate(m.Stats())
		}
		if *sessions > 1 {
			mode := "private engines"
			if *shared {
				mode = "one shared engine"
			}
			fmt.Fprintf(stdout, "# sessions: %d (%s)\n", *sessions, mode)
		}
		fmt.Fprintf(stdout, "# stats: %d instructions, %d sweeps, %d fused, %d fused-reductions, %d elements\n",
			st.Instructions, st.Sweeps, st.FusedInstructions, st.FusedReductions, st.Elements)
		fmt.Fprintf(stdout, "# fused by dtype: %s\n", st.FusedByDType)
		fmt.Fprintf(stdout, "# buffers: %d allocated (%d bytes), %d pool hits\n",
			st.BuffersAllocated, st.BytesAllocated, st.PoolHits)
		fmt.Fprintf(stdout, "# plans: %d hits, %d misses, %d evictions\n",
			st.PlanHits, st.PlanMisses, st.PlanEvictions)
		fmt.Fprintf(stdout, "# pipeline: %d plans executed asynchronously\n", st.Pipelined)
	}
	return nil
}
