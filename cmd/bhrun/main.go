// Command bhrun assembles and executes a textual byte-code listing,
// printing every BH_SYNCed register — a byte-code-level REPL for the
// virtual machine.
//
// Usage:
//
//	bhrun [-O] [-backend name] [-chunk-bytes n] [-workers n]
//	      [-par-threshold n] [-no-fusion] [-repeat n] [-async]
//	      [-sessions k] [-shared] [-trace] [file.bh]
//
// -O runs the algebraic optimizer before execution; -trace prints the
// (possibly optimized) program and VM sweep statistics. -workers and
// -par-threshold plumb the VM's Workers and ParallelThreshold knobs, so
// any bench configuration is reproducible from the CLI. -backend selects
// the execution backend ("inprocess" fused sweeps by default; "outofcore"
// streams elementwise segments through -chunk-bytes-sized tiles) — every
// backend is value- and error-identical, so the flag only changes the
// execution strategy. Execution goes through the fingerprint-keyed plan
// cache, scoped per backend: -repeat re-executes the program n times, so
// the first run compiles a plan and the rest replay it (the "# plans:"
// trace line shows n-1 hits). -async submits every repeat to the
// background executor and waits once at the end — the submit/wait
// pipeline the bohrium front-end uses in async mode (the "# pipeline:"
// trace line counts plans it executed).
//
// -sessions runs the program in k concurrent sessions (each its own
// backend and register state, each doing its -repeat runs); with -shared
// the sessions hang off ONE engine — one worker pool, one plan cache, one
// buffer recycle pool, the paper's shared-middleware configuration —
// while without it each session gets a private engine. The printed
// registers come from session 0; -trace reports the summed stats, where
// the plan column shows cross-session reuse under -shared (k·n runs, one
// compile) and the "# chunks:" line counts the tiles a chunked backend
// streamed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"

	"bohrium/internal/backend"
	"bohrium/internal/bytecode"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bhrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bhrun", flag.ContinueOnError)
	optimize := fs.Bool("O", false, "run the algebraic optimizer before executing")
	backendName := fs.String("backend", "", fmt.Sprintf("execution backend %v (default %q)", backend.Names(), backend.DefaultName))
	chunkBytes := fs.Int("chunk-bytes", 0, "per-array tile budget of chunked backends (0 = backend default)")
	workers := fs.Int("workers", 0, "VM worker pool size (0 = GOMAXPROCS)")
	parThreshold := fs.Int("par-threshold", 0, "minimum sweep size before splitting across workers (0 = default)")
	noFusion := fs.Bool("no-fusion", false, "disable sweep fusion")
	repeat := fs.Int("repeat", 1, "execute the program n times through the plan cache")
	async := fs.Bool("async", false, "pipeline the repeats through the background executor (submit all, wait once)")
	sessions := fs.Int("sessions", 1, "run the program in k concurrent sessions")
	shared := fs.Bool("shared", false, "share one engine (pool, plan cache, buffer pool) across -sessions")
	trace := fs.Bool("trace", false, "print the executed program and sweep stats")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src string
	if fs.NArg() == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		src = string(data)
	} else {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}

	prog, err := bytecode.Parse(src)
	if err != nil {
		return err
	}
	if err := prog.Validate(); err != nil {
		return err
	}

	if *optimize {
		optimized, report, err := rewrite.Default().Optimize(prog)
		if err != nil {
			return err
		}
		if *trace {
			fmt.Fprintf(stdout, "# optimizer: %s", report.String())
		}
		prog = optimized
	}
	if *trace {
		fmt.Fprint(stdout, prog.Dump())
		fmt.Fprintln(stdout, "# ---")
	}

	bcfg := backend.Config{
		VM:         vm.Config{Workers: *workers, ParallelThreshold: *parThreshold, Fusion: !*noFusion},
		ChunkBytes: *chunkBytes,
	}
	if *repeat < 1 {
		*repeat = 1
	}
	if *sessions < 1 {
		*sessions = 1
	}

	// Build the session backends: private engines by default, one shared
	// engine (pool + plan cache + recycle pool) under -shared.
	backends := make([]backend.Backend, *sessions)
	open := func() (backend.Backend, error) {
		eng := vm.NewEngine(vm.EngineConfig{Workers: *workers})
		b, err := backend.Open(*backendName, eng, bcfg)
		if err != nil {
			eng.Close()
			return nil, err
		}
		// The backend is the engine's only tenant; closing it may close
		// the engine too.
		return privateEngineBackend{Backend: b, eng: eng}, nil
	}
	if *shared {
		eng := vm.NewEngine(vm.EngineConfig{Workers: *workers})
		defer eng.Close()
		open = func() (backend.Backend, error) { return backend.Open(*backendName, eng, bcfg) }
	}
	for i := range backends {
		if backends[i], err = open(); err != nil {
			return err
		}
		defer backends[i].Close()
	}

	// sessionRun does one session's -repeat executions through the plan
	// cache (each session runs its own copy of the program; under -shared
	// every session after the first hits the plan another compiled).
	sessionRun := func(b backend.Backend, p *bytecode.Program) (err error) {
		var exec *backend.Executor
		if *async {
			exec = backend.NewExecutor(b, 0, "")
			// Close on every path — an early compile/execute error must
			// not leave the executor goroutine or queued plans behind.
			defer func() {
				if cerr := exec.Close(); err == nil {
					err = cerr
				}
			}()
		}
		fp := p.Fingerprint()
		consts := p.Constants()
		for i := 0; i < *repeat; i++ {
			plan, _, ok := b.LookupPlan(fp, consts, nil)
			if !ok {
				var err error
				if plan, err = b.Compile(p); err != nil {
					return err
				}
				b.InsertPlan(fp, consts, false, plan, nil)
			}
			if exec != nil {
				exec.Submit(plan)
				continue
			}
			if err := b.Execute(plan); err != nil {
				return err
			}
		}
		return nil
	}

	if *sessions == 1 {
		if err := sessionRun(backends[0], prog); err != nil {
			return err
		}
	} else {
		errs := make([]error, *sessions)
		var wg sync.WaitGroup
		for i, b := range backends {
			wg.Add(1)
			go func(i int, b backend.Backend) {
				defer wg.Done()
				errs[i] = sessionRun(b, prog.Clone())
			}(i, b)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("session %d: %w", i, err)
			}
		}
	}

	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op != bytecode.OpSync {
			continue
		}
		t, ok := backends[0].Tensor(in.Out.Reg, in.Out.View)
		if !ok {
			fmt.Fprintf(stdout, "%s = <freed>\n", in.Out.Reg)
			continue
		}
		fmt.Fprintf(stdout, "%s = %s\n", in.Out.Reg, t.Format(tensor.FormatOptions{MaxPerDim: 10, Precision: 6}))
	}
	if *trace {
		var st vm.Stats
		for _, b := range backends {
			st.Accumulate(b.Stats())
		}
		if *sessions > 1 {
			mode := "private engines"
			if *shared {
				mode = "one shared engine"
			}
			fmt.Fprintf(stdout, "# sessions: %d (%s)\n", *sessions, mode)
		}
		fmt.Fprintf(stdout, "# backend: %s\n", backends[0].Name())
		fmt.Fprintf(stdout, "# stats: %d instructions, %d sweeps, %d fused, %d fused-reductions, %d elements\n",
			st.Instructions, st.Sweeps, st.FusedInstructions, st.FusedReductions, st.Elements)
		fmt.Fprintf(stdout, "# fused by dtype: %s\n", st.FusedByDType)
		fmt.Fprintf(stdout, "# buffers: %d allocated (%d bytes), %d pool hits\n",
			st.BuffersAllocated, st.BytesAllocated, st.PoolHits)
		fmt.Fprintf(stdout, "# plans: %d hits, %d misses, %d evictions\n",
			st.PlanHits, st.PlanMisses, st.PlanEvictions)
		fmt.Fprintf(stdout, "# pipeline: %d plans executed asynchronously\n", st.Pipelined)
		if backends[0].Capabilities().Chunked {
			fmt.Fprintf(stdout, "# chunks: %d tiles streamed\n", st.Chunks)
		}
	}
	return nil
}

// privateEngineBackend ties a backend to the engine created just for it:
// closing the backend closes the engine, restoring the old one-machine
// vm.New teardown shape for unshared sessions.
type privateEngineBackend struct {
	backend.Backend
	eng *vm.Engine
}

func (p privateEngineBackend) Close() {
	p.Backend.Close()
	p.eng.Close()
}
