// Command mdlint checks intra-repository markdown links: every relative
// `[text](target)` in the tree's *.md files must point at a file or
// directory that exists. External links (http, https, mailto) are
// skipped — the check needs no network and cannot flake. CI runs it over
// the repository root so renamed or deleted docs fail the build instead
// of rotting silently.
//
// Usage:
//
//	mdlint [root]
//
// Exits non-zero listing every broken link as file:line: target.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target), capturing the target. Nested parentheses in targets
// are not supported (and not used in this repository).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(1)
	}
	for _, b := range broken {
		fmt.Println(b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken intra-repo link(s)\n", len(broken))
		os.Exit(1)
	}
}

// lint walks root for markdown files and returns one "file:line: target"
// entry per broken relative link.
func lint(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and dependency trees.
			switch d.Name() {
			case ".git", "node_modules", "vendor":
				if path != root {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		// SNIPPETS.md quotes exemplar files from *other* repositories
		// verbatim, links included; those targets are not ours to check.
		if d.Name() == "SNIPPETS.md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !checkTarget(path, target) {
					broken = append(broken, fmt.Sprintf("%s:%d: %s", path, i+1, target))
				}
			}
		}
		return nil
	})
	return broken, err
}

// checkTarget reports whether a link target found in file resolves:
// external schemes and pure anchors pass, relative paths (with any
// #fragment stripped) must exist on disk next to the file.
func checkTarget(file, target string) bool {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"):
		return true
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	_, err := os.Stat(filepath.Join(filepath.Dir(file), filepath.FromSlash(target)))
	return err == nil
}
