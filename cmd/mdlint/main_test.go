package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLint(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("docs/spec.md", "# Spec\n")
	writeFile("README.md", `
[good](docs/spec.md) and [anchored](docs/spec.md#spec) and [anchor](#local)
[external](https://example.com/x.md) ![img](https://example.com/i.png)
[missing](docs/gone.md)
`)

	broken, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 {
		t.Fatalf("broken = %v, want exactly the missing link", broken)
	}
	if !strings.Contains(broken[0], "docs/gone.md") || !strings.Contains(broken[0], "README.md:4") {
		t.Errorf("broken entry = %q", broken[0])
	}
}

func TestLintCleanRepo(t *testing.T) {
	// The repository's own docs must stay link-clean — this is the same
	// check the CI docs job runs.
	broken, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Errorf("broken intra-repo links:\n%s", strings.Join(broken, "\n"))
	}
}
