package main

import (
	"math"
	"testing"

	"bohrium"
)

// TestMonteCarloPrice smoke-tests the simulation in every configuration
// the example ships: default, async, and both backends. The price must
// land near the closed-form value (sampling error only) and be
// bit-identical across configurations — the deterministic BH_RANDOM
// streams and the backend-differential contract guarantee it.
func TestMonteCarloPrice(t *testing.T) {
	const n = 1 << 16
	exact := closedForm(spot, strike, rate, sigma, expiry)

	configs := map[string]*bohrium.Config{
		"default":         nil,
		"async":           {Async: true},
		"outofcore":       {Backend: "outofcore", ChunkBytes: 1 << 15},
		"outofcore-async": {Backend: "outofcore", ChunkBytes: 1 << 15, Async: true},
	}
	var ref float64
	var haveRef bool
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			ctx := bohrium.NewContext(cfg)
			defer ctx.Close()
			mc, err := price(ctx, n)
			if err != nil {
				t.Fatal(err)
			}
			// 65536 paths put the standard error near 0.06; 3% of the
			// ~7.1 price is a generous five-sigma band.
			if math.Abs(mc-exact)/exact > 0.03 {
				t.Errorf("price = %v, closed form = %v (off by %.2f%%)", mc, exact, 100*math.Abs(mc-exact)/exact)
			}
			if !haveRef {
				ref, haveRef = mc, true
			} else if math.Float64bits(mc) != math.Float64bits(ref) {
				t.Errorf("price = %x, want bit-identical %x across configs", mc, ref)
			}
		})
	}
}

// TestOutOfCoreActuallyChunks pins that the out-of-core configuration
// above is not a silent fallback: with 2^15-byte tiles over 2^16-element
// arrays, the elementwise chains must stream in chunks.
func TestOutOfCoreActuallyChunks(t *testing.T) {
	ctx := bohrium.NewContext(&bohrium.Config{Backend: "outofcore", ChunkBytes: 1 << 15})
	defer ctx.Close()
	if _, err := price(ctx, 1<<16); err != nil {
		t.Fatal(err)
	}
	if st := ctx.MustStats(); st.Chunks == 0 {
		t.Error("Chunks = 0: the chunked backend never streamed a tile")
	}
}
