// Monte Carlo option pricing — the stochastic counterpart of the
// closed-form examples/blackscholes kernel. Two deterministic BH_RANDOM
// streams feed a Box-Muller transform; each normal draw becomes a
// terminal stock price under geometric Brownian motion, and the
// discounted mean payoff prices a European call. The workload is RNG +
// long elementwise chains + one reduction, the shape the fused engine and
// the chunked out-of-core backend both like: every backend must produce
// the bit-identical price, so the example runs the same simulation on
// each registered backend and compares against the closed-form value.
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"bohrium"
)

const (
	nPaths = 1 << 20
	spot   = 100.0
	strike = 105.0
	rate   = 0.02
	sigma  = 0.3
	expiry = 1.0 // years
)

func main() {
	exact := closedForm(spot, strike, rate, sigma, expiry)
	fmt.Printf("European call, Monte Carlo with %d paths (S0=%g K=%g r=%g sigma=%g T=%g)\n",
		nPaths, spot, strike, rate, sigma, expiry)
	fmt.Printf("closed-form Black-Scholes price: %.6f\n\n", exact)

	for _, cfg := range []struct {
		name string
		conf *bohrium.Config
	}{
		{"inprocess", nil},
		{"inprocess async", &bohrium.Config{Async: true}},
		{"outofcore 1MiB chunks", &bohrium.Config{Backend: "outofcore"}},
	} {
		ctx := bohrium.NewContext(cfg.conf)
		start := time.Now()
		mc, err := price(ctx, nPaths)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		st := ctx.MustStats()
		fmt.Printf("%-24s %10v   price=%.6f   error=%+.4f%%   chunks=%d\n",
			cfg.name, elapsed.Round(time.Millisecond), mc, 100*(mc-exact)/exact, st.Chunks)
		ctx.Close()
	}

	fmt.Println("\nevery backend prices from the same deterministic BH_RANDOM streams,")
	fmt.Println("so the three prices above are bit-identical; the Monte Carlo error")
	fmt.Println("against the closed form is the sampling error of the paths alone.")
}

// price simulates n GBM paths to expiry and returns the discounted mean
// call payoff.
func price(ctx *bohrium.Context, n int) (float64, error) {
	// Box-Muller: Z = sqrt(-2 ln U1) * cos(2π U2). BH_RANDOM draws lie in
	// [0, 1); mapping U1 -> 1-U1 moves them to (0, 1] so the log is finite.
	u1 := ctx.Random(7, n)
	u1.MulC(-1).AddC(1)
	u2 := ctx.Random(11, n)
	z := u1.Log().MulC(-2).Sqrt()
	z.Mul(u2.MulC(2 * math.Pi).Cos())

	// Terminal price under GBM: ST = S0 exp((r - sigma^2/2) T + sigma sqrt(T) Z).
	st := z.MulC(sigma * math.Sqrt(expiry)).AddC((rate - sigma*sigma/2) * expiry).Exp().MulC(spot)

	// Discounted mean payoff: e^{-rT} mean(max(ST - K, 0)).
	payoff := st.SubC(strike).Maximum(ctx.Zeros(n))
	return payoff.Mean().MulC(math.Exp(-rate * expiry)).Scalar()
}

// closedForm is the Black-Scholes call price with the exact normal CDF
// (via erf) — the reference the simulation converges to.
func closedForm(s0, k, r, sig, t float64) float64 {
	d1 := (math.Log(s0/k) + (r+sig*sig/2)*t) / (sig * math.Sqrt(t))
	d2 := d1 - sig*math.Sqrt(t)
	return s0*cdf(d1) - k*math.Exp(-r*t)*cdf(d2)
}

func cdf(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
