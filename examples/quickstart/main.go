// Quickstart: the paper's Listing 1 ("import bohrium as np"), in Go.
//
// A 10-element zero vector receives three `+= 1` operations. The front-end
// records the byte-code of Listing 2; the algebraic optimizer merges the
// three BH_ADDs into one (Listing 3); the VM executes a single sweep.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bohrium"
)

func main() {
	ctx := bohrium.NewContext(&bohrium.Config{CollectReports: true})
	defer ctx.Close()

	// Listing 1, line for line.
	a := ctx.Zeros(10)
	a.AddC(1)
	a.AddC(1)
	a.AddC(1)

	fmt.Println("recorded byte-code (paper Listing 2):")
	fmt.Print(ctx.PendingProgram())

	data, err := a.Data() // flush: optimize + execute
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\noptimizer report:")
	fmt.Print(ctx.LastReport())

	fmt.Println("\nresult:")
	fmt.Println(data)

	st := ctx.Stats()
	fmt.Printf("\nVM did %d sweep(s) over memory for %d byte-code(s)\n",
		st.Sweeps, st.Instructions)
}
