// Quickstart: the paper's Listing 1 ("import bohrium as np"), in Go.
//
// A 10-element zero vector receives three `+= 1` operations. The front-end
// records the byte-code of Listing 2; the algebraic optimizer merges the
// three BH_ADDs into one (Listing 3); the VM executes a single sweep.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bohrium"
)

func main() {
	ctx := bohrium.NewContext(&bohrium.Config{CollectReports: true})
	defer ctx.Close()

	// Listing 1, line for line.
	a := listing1(ctx)

	fmt.Println("recorded byte-code (paper Listing 2):")
	fmt.Print(ctx.PendingProgram())

	data, err := a.Data() // flush: optimize + execute
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\noptimizer report:")
	fmt.Print(ctx.LastReport())

	fmt.Println("\nresult:")
	fmt.Println(data)

	st := ctx.MustStats()
	fmt.Printf("\nVM did %d sweep(s) over memory for %d byte-code(s)\n",
		st.Sweeps, st.Instructions)
}

// listing1 records the paper's Listing 1: a 10-element zero vector and
// three `+= 1` operations, nothing computed yet.
func listing1(ctx *bohrium.Context) *bohrium.Array {
	a := ctx.Zeros(10)
	a.AddC(1)
	a.AddC(1)
	a.AddC(1)
	return a
}
