package main

import (
	"testing"

	"bohrium"
)

// TestListing1 smoke-tests the example's core computation: three merged
// adds over a zero vector yield 3 everywhere — in the default pipeline,
// with the optimizer off, and through the async submit/wait pipeline.
func TestListing1(t *testing.T) {
	configs := map[string]*bohrium.Config{
		"default":   nil,
		"async":     {Async: true},
		"outofcore": {Backend: "outofcore", ChunkBytes: 32},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			ctx := bohrium.NewContext(cfg)
			defer ctx.Close()
			a := listing1(ctx)
			data, err := a.Data()
			if err != nil {
				t.Fatal(err)
			}
			if len(data) != 10 {
				t.Fatalf("len = %d, want 10", len(data))
			}
			for i, v := range data {
				if v != 3 {
					t.Fatalf("a[%d] = %v, want 3", i, v)
				}
			}
		})
	}
}
