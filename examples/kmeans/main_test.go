package main

import (
	"math"
	"testing"

	"bohrium"
)

// TestKMeansRecoversCenters runs the clustering at a reduced size on
// every execution configuration and checks two contracts: the recovered
// centroids land near the true blob centers, and every configuration —
// async pipelining, the chunked out-of-core backend, cross-plan fusion —
// produces bit-identical centroids to the plain in-process run.
func TestKMeansRecoversCenters(t *testing.T) {
	const (
		points = 3 * 64
		sweeps = 6
	)
	run := func(t *testing.T, cfg *bohrium.Config) (cx, cy []float64) {
		ctx := bohrium.NewContext(cfg)
		defer ctx.Close()
		px, py := makePoints(ctx, points)
		cx = []float64{-0.1, 0, 0.1}
		cy = []float64{0.1, 0, -0.1}
		for it := 0; it < sweeps; it++ {
			labels, inertia, err := assignPoints(ctx, px, py, cx, cy)
			if err != nil {
				t.Fatal(err)
			}
			if inertia <= 0 {
				t.Fatalf("iter %d: inertia = %v, want > 0", it, inertia)
			}
			if err := updateCentroids(px, py, labels, cx, cy); err != nil {
				t.Fatal(err)
			}
		}
		return cx, cy
	}

	wantX, wantY := run(t, nil)
	for j := 0; j < k; j++ {
		// The jitter is ±0.4 uniform, so the blob means sit well within
		// 0.15 of the true centers at this sample size.
		if math.Abs(wantX[j]-trueX[j]) > 0.15 || math.Abs(wantY[j]-trueY[j]) > 0.15 {
			t.Errorf("centroid %d = (%v, %v), want near (%v, %v)",
				j, wantX[j], wantY[j], trueX[j], trueY[j])
		}
	}

	for _, v := range []struct {
		name string
		cfg  *bohrium.Config
	}{
		{"async", &bohrium.Config{Async: true}},
		{"outofcore", &bohrium.Config{Backend: "outofcore", ChunkBytes: 2048}},
		{"xplan-fuse", &bohrium.Config{XPlanFuse: true}},
	} {
		t.Run(v.name, func(t *testing.T) {
			gotX, gotY := run(t, v.cfg)
			for j := 0; j < k; j++ {
				if math.Float64bits(gotX[j]) != math.Float64bits(wantX[j]) ||
					math.Float64bits(gotY[j]) != math.Float64bits(wantY[j]) {
					t.Errorf("centroid %d = (%v, %v), inprocess got (%v, %v) — backends diverged",
						j, gotX[j], gotY[j], wantX[j], wantY[j])
				}
			}
		})
	}
}
