// k-means clustering via argmin reductions.
//
// Each sweep stacks the squared distances to every centroid into a
// (k, n) matrix and labels each point with BH_ARGMIN_REDUCE over the
// centroid axis — an int64 result computed from float64 inputs. The
// update step goes the other way: the integer labels convert back to
// float64 membership masks whose sums average the members into new
// centroids. The int/float round trip is exactly the mixed-dtype
// traffic the generalized fusion engine and the arg-reduction epilogue
// handle.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"bohrium"
	"bohrium/internal/tensor"
)

const (
	k     = 3
	n     = 3 * 4096
	iters = 8
)

// The blobs the points scatter around; k-means should recover these.
var (
	trueX = [k]float64{-2, 0, 3}
	trueY = [k]float64{1, -2, 2}
)

func main() {
	ctx := bohrium.NewContext(nil)
	defer ctx.Close()

	px, py := makePoints(ctx, n)
	// A deliberately poor start: all three centroids bunched near the
	// origin, so the assignment actually has work to do.
	cx := []float64{-0.1, 0, 0.1}
	cy := []float64{0.1, 0, -0.1}

	fmt.Printf("k-means, %d points, %d centroids\n\n", n, k)
	for it := 0; it < iters; it++ {
		labels, inertia, err := assignPoints(ctx, px, py, cx, cy)
		if err != nil {
			log.Fatal(err)
		}
		if err := updateCentroids(px, py, labels, cx, cy); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %d  inertia %12.2f  centroids", it, inertia)
		for j := 0; j < k; j++ {
			fmt.Printf("  (%+.3f, %+.3f)", cx[j], cy[j])
		}
		fmt.Println()
	}

	fmt.Println("\ntrue centers:")
	for j := 0; j < k; j++ {
		fmt.Printf("  (%+.3f, %+.3f)\n", trueX[j], trueY[j])
	}
}

// makePoints scatters n points (n divisible by k) in k jittered blobs
// around the true centers: blob j owns the j-th slice of n/k points.
func makePoints(ctx *bohrium.Context, n int) (px, py *bohrium.Array) {
	px = ctx.Zeros(n)
	py = ctx.Zeros(n)
	seg := n / k
	for j := 0; j < k; j++ {
		jx := ctx.Random(uint64(2*j+1), seg)
		jy := ctx.Random(uint64(2*j+2), seg)
		px.MustSlice(0, j*seg, (j+1)*seg, 1).Assign(jx.SubC(0.5).MulC(0.8).AddC(trueX[j]))
		py.MustSlice(0, j*seg, (j+1)*seg, 1).Assign(jy.SubC(0.5).MulC(0.8).AddC(trueY[j]))
	}
	return px, py
}

// assignPoints labels every point with its nearest centroid: squared
// distances to each centroid stacked into a (k, n) matrix, reduced by
// ArgminAxis over the centroid axis. The labels come back int64; the
// returned inertia is the summed nearest-centroid distance.
func assignPoints(ctx *bohrium.Context, px, py *bohrium.Array, cx, cy []float64) (*bohrium.Array, float64, error) {
	dist := ctx.Zeros(k, px.Size())
	for j := 0; j < k; j++ {
		dx := px.PlusC(-cx[j])
		dy := py.PlusC(-cy[j])
		dist.MustSlice(0, j, j+1, 1).Assign(dx.Times(dx).Plus(dy.Times(dy)))
	}
	labels := dist.ArgminAxis(0)
	inertia, err := dist.MinAxis(0).Sum().Scalar()
	if err != nil {
		return nil, 0, err
	}
	return labels, inertia, nil
}

// updateCentroids recomputes each centroid as the mean of its members.
// The int64 labels convert to float64 so two comparisons bracket the
// index j into a 0/1 membership mask; the mask's sum is the member
// count and the masked coordinate sums are the member totals.
func updateCentroids(px, py, labels *bohrium.Array, cx, cy []float64) error {
	lf := labels.AsType(tensor.Float64)
	for j := 0; j < k; j++ {
		above := lf.GreaterC(float64(j) - 0.5).AsType(tensor.Float64)
		below := lf.LessC(float64(j) + 0.5).AsType(tensor.Float64)
		mask := above.Times(below)
		cnt, err := mask.Sum().Scalar()
		if err != nil {
			return err
		}
		if cnt == 0 {
			continue // empty cluster keeps its centroid
		}
		sx, err := px.Times(mask).Sum().Scalar()
		if err != nil {
			return err
		}
		sy, err := py.Times(mask).Sum().Scalar()
		if err != nil {
			return err
		}
		cx[j], cy[j] = sx/cnt, sy/cnt
	}
	return nil
}
