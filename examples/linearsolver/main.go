// Linear solver: the paper's equation (2).
//
// Solving A·x = B by explicitly inverting A (x = A⁻¹·B) is wasteful when
// the inverse is used for nothing else. The algebraic optimizer detects
// the INVERSE→MATMUL byte-code pair, checks that A⁻¹ is dead afterwards,
// and rewrites it into a single LU-factorized BH_SOLVE — "usually faster
// to compute" (paper §2). When the program *does* reuse A⁻¹, the liveness
// gate keeps the explicit inverse.
//
//	go run ./examples/linearsolver
package main

import (
	"fmt"
	"log"
	"time"

	"bohrium"
)

const m = 384

func main() {
	fmt.Printf("solve A·x = B, A is %dx%d\n\n", m, m)

	// Variant 1: x = A⁻¹·B, inverse discarded → rewrite fires.
	ctx := bohrium.NewContext(&bohrium.Config{CollectReports: true})
	a, b := system(ctx, m)
	start := time.Now()
	x := a.Inverse().MatMul(b)
	x0, err := x.At(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x = A⁻¹·B (inverse discarded)  %10v   x[0]=%.6f   rewrites: %v\n",
		time.Since(start).Round(time.Millisecond), x0, ctx.LastReport().Applied["inverse-to-solve"])
	ctx.Close()

	// Variant 2: the inverse is also summed afterwards → gate blocks.
	ctx2 := bohrium.NewContext(&bohrium.Config{CollectReports: true})
	a2, b2 := system(ctx2, m)
	start = time.Now()
	inv := a2.Inverse()
	x2 := inv.MatMul(b2)
	checksum := inv.Sum()
	x20, err := x2.At(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := checksum.Scalar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x = A⁻¹·B (inverse reused)     %10v   x[0]=%.6f   rewrites: %v   ΣA⁻¹=%.4f\n",
		time.Since(start).Round(time.Millisecond), x20, ctx2.LastReport().Applied["inverse-to-solve"], cs)
	ctx2.Close()

	// Variant 3: calling Solve directly (what the rewrite produces).
	ctx3 := bohrium.NewContext(nil)
	a3, b3 := system(ctx3, m)
	start = time.Now()
	x3 := a3.Solve(b3)
	x30, err := x3.At(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x = solve(A, B) directly       %10v   x[0]=%.6f\n",
		time.Since(start).Round(time.Millisecond), x30)
	ctx3.Close()

	fmt.Println("\nall three x[0] values agree; the first and third run one LU solve,")
	fmt.Println("the second pays for the full inverse because the program reuses it.")
}

// system builds a deterministic diagonally dominant n×n system.
func system(ctx *bohrium.Context, n int) (*bohrium.Array, *bohrium.Array) {
	a := ctx.Random(3, n, n)
	a.MulC(2).SubC(1)
	// Boost the diagonal via a strided 1-d view over the flat buffer.
	flat, err := a.Reshape(n * n)
	if err != nil {
		log.Fatal(err)
	}
	d := flat.MustSlice(0, 0, n*n, n+1)
	d.AddC(float64(n))
	b := ctx.Random(5, n, 1)
	return a, b
}
