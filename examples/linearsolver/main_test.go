package main

import (
	"math"
	"testing"

	"bohrium"
)

// TestSolveVariants smoke-tests the example's core computation at a
// reduced size: x = A⁻¹·B (rewritten to BH_SOLVE) and x = solve(A, B)
// must agree, and the solution must actually satisfy A·x = B.
func TestSolveVariants(t *testing.T) {
	const n = 32
	for name, cfg := range map[string]*bohrium.Config{
		"default":   nil,
		"async":     {Async: true},
		"outofcore": {Backend: "outofcore", ChunkBytes: 2048},
	} {
		t.Run(name, func(t *testing.T) {
			ctx := bohrium.NewContext(cfg)
			defer ctx.Close()
			a, b := system(ctx, n)
			a.Keep()
			b.Keep()
			x := a.Inverse().MatMul(b)
			x.Keep()

			// Residual ‖A·x − B‖∞ over a well-conditioned diagonally
			// dominant system must be at solver precision.
			ax := a.MatMul(x)
			diff := ax.Minus(b)
			worst, err := diff.Abs().Max().Scalar()
			if err != nil {
				t.Fatal(err)
			}
			if worst > 1e-9 {
				t.Errorf("residual %v, want <= 1e-9", worst)
			}

			// Direct solve agrees with the rewritten inverse route.
			ctx2 := bohrium.NewContext(cfg)
			defer ctx2.Close()
			a2, b2 := system(ctx2, n)
			x2 := a2.Solve(b2)
			d1, err := x.Data()
			if err != nil {
				t.Fatal(err)
			}
			d2, err := x2.Data()
			if err != nil {
				t.Fatal(err)
			}
			for i := range d1 {
				if math.Abs(d1[i]-d2[i]) > 1e-9 {
					t.Fatalf("x[%d]: inverse route %v != solve %v", i, d1[i], d2[i])
				}
			}
		})
	}
}
