// Power chains: the paper's equation (1) and Listings 4–5.
//
// x¹⁰ is computed four ways — BH_POWER directly, the naive 9-multiply
// chain (Listing 4), the paper's 5-multiply square-then-increment chain
// (Listing 5), and the 4-multiply binary chain this reproduction adds —
// and each variant is timed over a large vector.
//
//	go run ./examples/powerchains
package main

import (
	"fmt"
	"log"
	"time"

	"bohrium"
	"bohrium/internal/chains"
	"bohrium/internal/rewrite"
)

const (
	n        = 1 << 20
	exponent = 10
)

func main() {
	fmt.Printf("x^%d over %d elements\n\n", exponent, n)

	variants := []struct {
		name string
		opts rewrite.Options
	}{
		{"BH_POWER (no expansion)", rewrite.Options{}},
		{"naive chain (Listing 4)", expansion(chains.StrategyNaive)},
		{"paper chain (Listing 5)", expansion(chains.StrategySquareIncrement)},
		{"binary chain (ours)", expansion(chains.StrategyBinary)},
	}

	for _, v := range variants {
		opts := v.opts
		ctx := bohrium.NewContext(&bohrium.Config{Optimizer: &opts, CollectReports: true})

		start := time.Now()
		first, err := raise(ctx, n, exponent)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		muls := "kept BH_POWER"
		if rep := ctx.LastReport(); rep != nil && rep.Applied["power-expand"] > 0 {
			muls = fmt.Sprintf("expanded to %d BH_MULTIPLYs", ctx.MustStats().Instructions-1)
		}
		fmt.Printf("%-28s %10v   y[0]=%.9f   (%s)\n", v.name, elapsed.Round(10*time.Microsecond), first, muls)
		ctx.Close()
	}

	fmt.Println("\nchain shapes (exponents reached after each multiply):")
	for _, s := range []chains.Strategy{chains.StrategyNaive, chains.StrategySquareIncrement, chains.StrategyBinary} {
		c, err := chains.Generate(s, exponent)
		if err != nil {
			log.Fatal(err)
		}
		exps, err := c.Exponents()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %d multiplies: %v\n", s, c.MultiplyCount(), exps[1:])
	}
}

// raise computes y = x^exp over n elements of the base 1.0000001 and
// returns y[0]; whether BH_POWER survives or expands into a multiply
// chain is the context's optimizer's decision.
func raise(ctx *bohrium.Context, n int, exp float64) (float64, error) {
	x := ctx.Full(1.0000001, n)
	y := x.Power(exp)
	return y.At(0)
}

func expansion(s chains.Strategy) rewrite.Options {
	return rewrite.Options{
		PowerExpand:      true,
		PowerStrategy:    s,
		PowerNoCostModel: true, // demo: expand even when the model says keep POWER
	}
}
