package main

import (
	"math"
	"testing"

	"bohrium"
	"bohrium/internal/chains"
	"bohrium/internal/rewrite"
)

// TestRaiseVariants smoke-tests the example's core computation at a
// reduced size: x^10 of the base 1.0000001 through BH_POWER and through
// every expansion strategy must match the known value 1.0000001^10, and
// the async pipeline must agree too.
func TestRaiseVariants(t *testing.T) {
	const n = 1 << 10
	want := math.Pow(1.0000001, 10)

	opts := []struct {
		name string
		cfg  *bohrium.Config
	}{
		{"power-kept", &bohrium.Config{Optimizer: &rewrite.Options{}}},
		{"naive-chain", optCfg(expansion(chains.StrategyNaive))},
		{"paper-chain", optCfg(expansion(chains.StrategySquareIncrement))},
		{"binary-chain", optCfg(expansion(chains.StrategyBinary))},
		{"async", &bohrium.Config{Async: true}},
		{"outofcore", &bohrium.Config{Backend: "outofcore", ChunkBytes: 2048}},
	}
	for _, v := range opts {
		t.Run(v.name, func(t *testing.T) {
			ctx := bohrium.NewContext(v.cfg)
			defer ctx.Close()
			got, err := raise(ctx, n, 10)
			if err != nil {
				t.Fatal(err)
			}
			// Chains reassociate the multiplies, so allow one float64 ulp
			// of slack around the math.Pow reference.
			if math.Abs(got-want) > 1e-15 {
				t.Errorf("y[0] = %.17g, want %.17g", got, want)
			}
		})
	}
}

func optCfg(o rewrite.Options) *bohrium.Config {
	return &bohrium.Config{Optimizer: &o}
}
