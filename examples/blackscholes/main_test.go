package main

import (
	"math"
	"testing"

	"bohrium"
	"bohrium/internal/rewrite"
)

// TestPrice smoke-tests the example's pricing kernel at a reduced size:
// the mean call price over the deterministic spot stream must land in
// the analytically plausible band, and the optimizer-off, full-pipeline
// and async configurations must agree exactly (same byte-code, same
// deterministic RNG).
func TestPrice(t *testing.T) {
	const n = 1 << 12
	baseCtx := bohrium.NewContext(&bohrium.Config{Optimizer: &rewrite.Options{}, DisableFusion: true})
	defer baseCtx.Close()
	want, err := price(baseCtx, n)
	if err != nil {
		t.Fatal(err)
	}
	// Spot uniform in [80, 120), strike 100, r=2%, sigma=30%, T=1: the
	// mean call value sits solidly between 5 and 20.
	if want < 5 || want > 20 {
		t.Fatalf("mean price %v outside the plausible band [5, 20]", want)
	}

	for name, cfg := range map[string]*bohrium.Config{
		"full-pipeline":   nil,
		"async":           {Async: true},
		"outofcore":       {Backend: "outofcore", ChunkBytes: 1 << 12},
		"outofcore-async": {Backend: "outofcore", ChunkBytes: 1 << 12, Async: true},
	} {
		t.Run(name, func(t *testing.T) {
			ctx := bohrium.NewContext(cfg)
			defer ctx.Close()
			got, err := price(ctx, n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Errorf("mean price = %v, want %v (unoptimized)", got, want)
			}
		})
	}
}
