// Black-Scholes option pricing — the classic Bohrium benchmark kernel,
// here exercising the full pipeline on a compute-bound workload: log,
// sqrt, tanh and power sweeps over a million options, with the optimizer
// expanding the cube in the CDF approximation into multiplies and fusion
// merging the elementwise chains.
//
//	go run ./examples/blackscholes
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"bohrium"
	"bohrium/internal/rewrite"
)

const nOptions = 1 << 20

func main() {
	fmt.Printf("Black-Scholes, %d call options (spot 80-120, strike 100, r=2%%, sigma=30%%)\n\n", nOptions)

	for _, cfg := range []struct {
		name string
		conf *bohrium.Config
	}{
		{"optimizer+fusion off", &bohrium.Config{Optimizer: &rewrite.Options{}, DisableFusion: true}},
		{"full pipeline", &bohrium.Config{CollectReports: true}},
	} {
		ctx := bohrium.NewContext(cfg.conf)
		start := time.Now()
		mean, err := price(ctx, nOptions)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-22s %10v   mean price = %.4f\n", cfg.name, elapsed.Round(time.Millisecond), mean)
		if rep := ctx.LastReport(); rep != nil {
			fmt.Printf("%22s rewrites: %d (power-expand %d)\n", "",
				rep.TotalApplied(), rep.Applied["power-expand"])
		}
		ctx.Close()
	}
}

// price computes European call prices for n options under Black-Scholes
// with the normal CDF approximated by
// Φ(x) ≈ ½(1 + tanh(√(2/π)(x + 0.044715·x³))) and returns the portfolio
// mean.
func price(ctx *bohrium.Context, n int) (float64, error) {
	const r, sigma, strike = 0.02, 0.3, 100.0

	spot := ctx.Random(2024, n)
	spot.MulC(40).AddC(80)
	k := ctx.Full(strike, n)

	d1 := spot.Over(k).Log()
	d1.AddC(r + sigma*sigma/2).DivC(sigma) // T = 1 year
	d2 := d1.Copy().SubC(sigma)

	price := spot.Times(cnd(d1))
	price.Sub(k.TimesC(math.Exp(-r)).Mul(cnd(d2)))
	return price.Mean().Scalar()
}

func cnd(x *bohrium.Array) *bohrium.Array {
	// x³ recorded as BH_POWER 3: the power-expansion rewrite turns it
	// into two BH_MULTIPLYs.
	x3 := x.Power(3).MulC(0.044715)
	return x.Plus(x3).MulC(math.Sqrt(2 / math.Pi)).Tanh().AddC(1).MulC(0.5)
}
