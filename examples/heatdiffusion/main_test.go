package main

import (
	"math"
	"testing"

	"bohrium"
	"bohrium/internal/rewrite"
)

// TestSimulate smoke-tests the stencil at a reduced grid: the probe near
// the hot boundary warms to a positive temperature below the boundary's
// 100°, and every configuration — optimizer off, full pipeline, async —
// produces bit-for-bit the same value (pure view arithmetic, no
// reassociation).
func TestSimulate(t *testing.T) {
	const n, sweeps = 32, 20
	baseCtx := bohrium.NewContext(&bohrium.Config{Optimizer: &rewrite.Options{}, DisableFusion: true})
	defer baseCtx.Close()
	want, err := simulate(baseCtx, n, sweeps)
	if err != nil {
		t.Fatal(err)
	}
	if !(want > 0 && want < 100) {
		t.Fatalf("probe %v outside (0, 100)", want)
	}

	for name, cfg := range map[string]*bohrium.Config{
		"full-pipeline": nil,
		"async":         {Async: true},
		"outofcore":     {Backend: "outofcore", ChunkBytes: 1 << 10},
	} {
		t.Run(name, func(t *testing.T) {
			ctx := bohrium.NewContext(cfg)
			defer ctx.Close()
			got, err := simulate(ctx, n, sweeps)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("probe = %v, want %v bit-for-bit", got, want)
			}
		})
	}
}
