// Heat diffusion: a 2-D Jacobi stencil on an n×n grid — the kind of
// imaging/energy-materials workload the paper's CINEMA project motivates.
// The five-point stencil is pure view arithmetic; sweep fusion merges the
// per-iteration elementwise byte-codes into single passes over the grid.
//
//	go run ./examples/heatdiffusion
package main

import (
	"fmt"
	"log"
	"time"

	"bohrium"
	"bohrium/internal/rewrite"
)

const (
	gridN = 128
	iters = 100
)

func main() {
	fmt.Printf("2-D heat diffusion, %dx%d grid, %d Jacobi iterations\n\n", gridN, gridN, iters)

	for _, cfg := range []struct {
		name string
		conf *bohrium.Config
	}{
		{"optimizer+fusion off", &bohrium.Config{Optimizer: &rewrite.Options{}, DisableFusion: true}},
		{"full pipeline", nil},
	} {
		ctx := bohrium.NewContext(cfg.conf)
		start := time.Now()
		center, err := simulate(ctx, gridN, iters)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		st := ctx.MustStats()
		fmt.Printf("%-22s %10v   probe=%.4f   sweeps=%d (of %d byte-codes)\n",
			cfg.name, elapsed.Round(100*time.Microsecond), center, st.Sweeps, st.Instructions)
		ctx.Close()
	}
}

// simulate runs sweeps Jacobi iterations on an n×n grid with a hot
// (100°) northern boundary and returns the temperature at a probe point
// near the hot edge (heat reaches the grid center only after ~n²
// iterations).
func simulate(ctx *bohrium.Context, n, sweeps int) (float64, error) {
	grid := ctx.Zeros(n, n)
	grid.MustSlice(0, 0, 1, 1).AddC(100) // hot north edge

	interior := func(r0, r1, c0, c1 int) *bohrium.Array {
		return grid.MustSlice(0, r0, r1, 1).MustSlice(1, c0, c1, 1)
	}
	center := interior(1, n-1, 1, n-1)
	north := interior(0, n-2, 1, n-1)
	south := interior(2, n, 1, n-1)
	west := interior(1, n-1, 0, n-2)
	east := interior(1, n-1, 2, n)

	for i := 0; i < sweeps; i++ {
		next := center.Plus(north)
		next.Add(south).Add(west).Add(east).MulC(0.2)
		center.Assign(next)
	}
	return grid.At(4, n/2)
}
