package bohrium

import (
	"math"
	"testing"
)

// This file is the front-end half of the backend-differential contract:
// every registered backend must be value- and error-identical to the
// in-process reference, observed purely through the public API, in both
// synchronous and async mode. The internal/backend package pins the same
// contract at the program level; here whole sessions — multi-flush loops,
// plan-cache hits, async pipelines, reductions, linear algebra — run
// twice and must agree bit for bit.

// backendConfigs returns the four configurations a differential workload
// runs under. ChunkBytes 4096 (512 float64 per tile) forces the
// out-of-core backend to actually chunk every workload over 512 elements.
func backendConfigs() []Config {
	return []Config{
		{Backend: "inprocess"},
		{Backend: "inprocess", Async: true},
		{Backend: "outofcore", ChunkBytes: 4096},
		{Backend: "outofcore", ChunkBytes: 4096, Async: true},
	}
}

func diffRun(t *testing.T, work func(ctx *Context) []float64) {
	t.Helper()
	var ref []float64
	for _, cfg := range backendConfigs() {
		ctx := NewContext(&cfg)
		got := work(ctx)
		ctx.Close()
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s async=%v: %d values, want %d", cfg.Backend, cfg.Async, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s async=%v: value[%d] = %v (%x), want %v (%x)",
					cfg.Backend, cfg.Async, i, got[i], math.Float64bits(got[i]), ref[i], math.Float64bits(ref[i]))
			}
		}
	}
}

// TestDifferentialIterativeChain: a multi-flush iterative workload over an
// array 20x the chunk budget — elementwise chains, reductions, and
// repeated structurally identical batches that exercise the plan cache on
// every backend.
func TestDifferentialIterativeChain(t *testing.T) {
	diffRun(t, func(ctx *Context) []float64 {
		const n = 10240 // 20 tiles of 512 at ChunkBytes 4096
		a := ctx.Arange(n)
		a.MulC(1.0 / n).AddC(0.25)
		var out []float64
		for iter := 0; iter < 4; iter++ {
			b := a.Times(a).Keep()
			b.AddC(1).Sqrt().MulC(0.5)
			s, err := b.Sum().Scalar()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
			a.Add(b).MulC(0.5)
			b.Free()
		}
		return append(out, a.MustData()...)
	})
}

// TestDifferentialRandomReduction: generator byte-codes (BH_RANDOM,
// BH_RANGE) are global-flat-index barriers for the chunked backend; the
// deterministic counter stream must still land identically.
func TestDifferentialRandomReduction(t *testing.T) {
	diffRun(t, func(ctx *Context) []float64 {
		r := ctx.Random(42, 4096)
		r.MulC(2).SubC(1)
		m, err := r.Mean().Scalar()
		if err != nil {
			t.Fatal(err)
		}
		mx, err := r.Abs().Max().Scalar()
		if err != nil {
			t.Fatal(err)
		}
		return []float64{m, mx}
	})
}

// TestDifferentialLinalg: extension byte-codes (BH_SOLVE via the
// inverse→solve rewrite) are executed as barriers; results must agree.
func TestDifferentialLinalg(t *testing.T) {
	diffRun(t, func(ctx *Context) []float64 {
		a := ctx.MustFromSlice([]float64{4, 1, 0, 1, 3, 1, 0, 1, 2}, 3, 3)
		b := ctx.MustFromSlice([]float64{1, 2, 3}, 3, 1)
		x := a.Inverse().MatMul(b)
		y := a.Solve(ctx.MustFromSlice([]float64{3, 1, 4}, 3))
		return append(x.MustData(), y.MustData()...)
	})
}

// TestDifferentialSliced2D: strided and partial views (slices, transposed
// reads, axis reductions) never qualify for chunking — the out-of-core
// backend must fall back to barrier execution and still agree exactly.
func TestDifferentialSliced2D(t *testing.T) {
	diffRun(t, func(ctx *Context) []float64 {
		a := ctx.Arange(2048)
		m, err := a.Reshape(32, 64)
		if err != nil {
			t.Fatal(err)
		}
		m.MulC(0.125).Sin()
		col := m.SumAxis(0)
		row := m.SumAxis(1)
		inner, err := m.MustSlice(0, 4, 28, 2).Sum().Scalar()
		if err != nil {
			t.Fatal(err)
		}
		return append(append(col.MustData(), row.MustData()...), inner)
	})
}

// TestDifferentialErrorText: a singular solve must fail with the
// character-identical error on every backend, in both modes, so callers
// can match on error text without caring which backend ran.
func TestDifferentialErrorText(t *testing.T) {
	var ref string
	for _, cfg := range backendConfigs() {
		ctx := NewContext(&cfg)
		a := ctx.MustFromSlice([]float64{1, 2, 2, 4}, 2, 2) // singular
		b := ctx.MustFromSlice([]float64{1, 1}, 2)
		x := a.Solve(b)
		_, err := x.Data()
		if err == nil {
			t.Fatalf("%s async=%v: singular solve succeeded", cfg.Backend, cfg.Async)
		}
		// The pipeline error is sticky in both modes.
		if err2 := ctx.Flush(); err2 == nil {
			t.Fatalf("%s async=%v: error not sticky", cfg.Backend, cfg.Async)
		}
		ctx.Close()
		if ref == "" {
			ref = err.Error()
		} else if err.Error() != ref {
			t.Fatalf("%s async=%v error text:\n  got  %s\n  want %s", cfg.Backend, cfg.Async, err.Error(), ref)
		}
	}
	if ref == "" {
		t.Fatal("no error text captured")
	}
}

// TestOutOfCoreChunksCounted: an over-budget workload on the chunked
// backend must actually stream tiles — Stats().Chunks is the witness that
// the differential results above were produced by the chunked path, not a
// silent fallback.
func TestOutOfCoreChunksCounted(t *testing.T) {
	for _, async := range []bool{false, true} {
		ctx := NewContext(&Config{Backend: "outofcore", ChunkBytes: 4096, Async: async})
		a := ctx.Arange(10240)
		a.MulC(3).AddC(1).Sqrt()
		if _, err := a.Data(); err != nil {
			t.Fatal(err)
		}
		st := ctx.MustStats()
		if st.Chunks < 20 {
			t.Errorf("async=%v: Chunks = %d, want >= 20 (10240 elems / 512-elem tiles)", async, st.Chunks)
		}
		if async && st.Pipelined == 0 {
			t.Errorf("async=%v: Pipelined = 0, want > 0", async)
		}
		ctx.Close()
	}
	// The in-process backend never chunks.
	ctx := NewContext(nil)
	defer ctx.Close()
	a := ctx.Arange(10240)
	a.AddC(1)
	if _, err := a.Data(); err != nil {
		t.Fatal(err)
	}
	if st := ctx.MustStats(); st.Chunks != 0 {
		t.Errorf("inprocess Chunks = %d, want 0", st.Chunks)
	}
}

// TestBackendSharedRuntime: two sessions on different backends share one
// Runtime (one plan cache, one recycle pool) without serving each other's
// plans — and still agree bit for bit.
func TestBackendSharedRuntime(t *testing.T) {
	rt := NewRuntime(nil)
	defer rt.Close()
	run := func(cfg Config) []float64 {
		ctx := rt.NewContext(&cfg)
		defer ctx.Close()
		a := ctx.Arange(2048)
		a.MulC(0.5).AddC(2).Sqrt()
		return a.MustData()
	}
	ref := run(Config{Backend: "inprocess"})
	got := run(Config{Backend: "outofcore", ChunkBytes: 4096})
	for i := range ref {
		if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("value[%d] = %v, want %v", i, got[i], ref[i])
		}
	}
}

// TestUnknownBackendPanics: an unknown backend name is a construction
// error, reported like any other invalid configuration.
func TestUnknownBackendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewContext with unknown backend did not panic")
		}
	}()
	NewContext(&Config{Backend: "gpu"})
}
