package bohrium

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFrontEndStaysBehindBackendSeam is the import-boundary check for the
// pluggable-backend refactor: the front-end package records byte-code and
// hands batches to a backend.Backend — it must never reach past that seam
// into the VM's execution machinery. Concretely, non-test files of this
// package may use internal/vm only for the engine-level surface that
// backend.Config/Runtime expose (configuration knobs, the shared Engine,
// the Stats snapshot); compiling or executing through vm.Machine,
// vm.Plan, or vm.Executor directly would bypass backend selection, the
// scoped plan cache, and the differential contract. The test parses every
// non-test file and rejects any vm.<identifier> outside the allowlist, so
// a regression is a test failure, not a code-review catch.
func TestFrontEndStaysBehindBackendSeam(t *testing.T) {
	allowedVM := map[string]bool{
		// Configuration the front end translates into backend.Config.
		"Config":                   true,
		"DefaultPlanCacheSize":     true,
		"DefaultParallelThreshold": true,
		"DefaultAsyncDepth":        true,
		// The shared engine a Runtime owns and hands to backend.Open.
		"Engine":       true,
		"EngineConfig": true,
		"NewEngine":    true,
		// The counters Context.Stats republishes.
		"Stats": true,
	}

	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	checked := 0
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, file, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		checked++

		// The seam only admits four internal packages: the byte-code and
		// tensor data model the public API is built from, the rewrite
		// options surfaced through Config, the backend seam itself, and
		// internal/vm under the selector allowlist below.
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !strings.HasPrefix(path, "bohrium/internal/") {
				continue
			}
			switch path {
			case "bohrium/internal/backend", "bohrium/internal/bytecode",
				"bohrium/internal/tensor", "bohrium/internal/rewrite",
				"bohrium/internal/vm":
			default:
				t.Errorf("%s: import %s crosses the backend seam", file, path)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "vm" || pkg.Obj != nil {
				return true
			}
			if !allowedVM[sel.Sel.Name] {
				t.Errorf("%s: vm.%s reaches past the Backend interface (allowed: config/engine/stats surface only)",
					fset.Position(sel.Pos()), sel.Sel.Name)
			}
			return true
		})
	}
	if checked < 4 {
		t.Fatalf("only %d non-test files checked — the glob is broken", checked)
	}
}
