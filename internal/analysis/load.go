package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	// RelPath is the module-relative directory ("" for the module root,
	// "internal/vm", ...). Analyzer scopes match against it.
	RelPath string
	// Path is the full import path.
	Path string
	// Files holds the package's non-test files, parsed with comments.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is a whole module loaded for analysis: every non-test package,
// parsed and type-checked against one shared FileSet.
type Module struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	Fset *token.FileSet
	// Pkgs lists every loaded package, sorted by RelPath.
	Pkgs []*Package

	byPath map[string]*Package
}

// Lookup finds a loaded package by full import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// sharedFset is the process-wide FileSet behind every load. The stdlib
// source importer is constructed against it once and caches the standard
// library across loads, so tests loading many small fixture modules pay
// for type-checking "fmt" and "sync" from source only once.
var (
	sharedFset  = token.NewFileSet()
	stdImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// moduleImporter resolves module-internal import paths from the packages
// loaded so far and delegates everything else to the stdlib source
// importer.
type moduleImporter struct {
	mod *Module
}

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	if pkg := mi.mod.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg.Types, nil
	}
	if path == mi.mod.Path || strings.HasPrefix(path, mi.mod.Path+"/") {
		return nil, fmt.Errorf("module package %q not found on disk", path)
	}
	return stdImporter.Import(path)
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir (the directory containing go.mod). Test files are
// excluded: the invariants are about production code, and test packages
// may deliberately violate them to prove error paths.
func LoadModule(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: sharedFset, byPath: map[string]*Package{}}

	// Discover package directories: every directory holding at least one
	// non-test .go file, skipping VCS metadata and testdata trees.
	dirSet := map[string]bool{}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirSet[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		pkg := &Package{RelPath: rel, Path: modPath}
		if rel != "" {
			pkg.Path = modPath + "/" + rel
		}
		entries, err := os.ReadDir(d)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(sharedFset, filepath.Join(d, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Files) == 0 {
			continue
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
		mod.byPath[pkg.Path] = pkg
	}

	// Type-check in dependency order: repeatedly check packages whose
	// module-internal imports are all done. The module is small enough
	// that the quadratic sweep is free, and a leftover package means an
	// import cycle.
	remaining := len(mod.Pkgs)
	for remaining > 0 {
		progress := false
		for _, pkg := range mod.Pkgs {
			if pkg.Types != nil || !importsReady(mod, pkg) {
				continue
			}
			if err := typecheck(mod, pkg); err != nil {
				return nil, err
			}
			remaining--
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("import cycle among module packages")
		}
	}
	return mod, nil
}

// importsReady reports whether every module-internal import of pkg has
// been type-checked already.
func importsReady(mod *Module, pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if dep := mod.byPath[path]; dep != nil && dep.Types == nil {
				return false
			}
		}
	}
	return true
}

func typecheck(mod *Module, pkg *Package) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: moduleImporter{mod}}
	tpkg, err := conf.Check(pkg.Path, sharedFset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			path = strings.Trim(path, `"`)
			if path != "" {
				return path, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
