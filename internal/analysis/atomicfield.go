package analysis

import (
	"go/ast"
	"go/types"
)

// Atomicfield guards the lock-free counters (engine live-byte accounting,
// executor in-flight counts, server drain flags): a struct field of a
// sync/atomic value type (atomic.Int64, atomic.Bool, ...) may appear only
// as the receiver of one of its own methods — s.n.Add(1), s.flag.Load()
// — optionally through an index for arrays of atomics, plus len/cap and
// index-only range over such arrays. Anything else (copying the value,
// taking its address to pass elsewhere, ranging element-wise) either
// tears the atomicity or trips the vet copylocks check later; this
// analyzer catches it at the access site.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "sync/atomic-typed fields are only used as receivers of their atomic methods",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Walk with an explicit parent stack: legality of an atomic-field
		// selector depends on the expression it is embedded in.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok || atomicTypeName(v.Type()) == "" {
				return true
			}
			if !atomicUseOK(info, sel, stack) {
				pass.Reportf(sel.Pos(),
					"atomic field %s used outside an atomic method call; go through its Load/Store/Add/CompareAndSwap methods", v.Name())
			}
			return true
		})
	}
}

// atomicUseOK reports whether the atomic-field selector sel sits in a
// permitted context. stack ends with sel itself.
func atomicUseOK(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	parent := parentOf(stack, 1)
	// s.arr[i].Add(1): step through the index to judge the method access.
	if idx, ok := parent.(*ast.IndexExpr); ok && idx.X == sel {
		return indexedAtomicUseOK(info, idx, parentOf(stack, 2))
	}
	return indexedAtomicUseOK(info, sel, parent)
}

// indexedAtomicUseOK judges the context of expr, which denotes an atomic
// value (the field selector, possibly wrapped in one index expression).
func indexedAtomicUseOK(info *types.Info, expr ast.Expr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// Receiver position of an atomic method: s.n.Add, s.arr[i].Load.
		if p.X == expr {
			if ms := info.Selections[p]; ms != nil && ms.Kind() == types.MethodVal {
				return true
			}
		}
	case *ast.CallExpr:
		// len(s.arr) / cap(s.arr) are reads of the (constant) shape only.
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return true
			}
		}
	case *ast.RangeStmt:
		// Index-only range over an array of atomics never loads elements.
		if p.X == expr && p.Value == nil {
			return true
		}
	}
	return false
}

// parentOf returns the stack entry n levels above the top, or nil.
func parentOf(stack []ast.Node, n int) ast.Node {
	if len(stack) <= n {
		return nil
	}
	return stack[len(stack)-1-n]
}
