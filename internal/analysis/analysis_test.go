package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture materializes files (path → source) as a module named
// bohrium in a temp dir and loads it. Fixture packages sit at the same
// module-relative paths as the real tree so analyzer Scopes are
// exercised, not bypassed.
func loadFixture(t *testing.T, files map[string]string) *Module {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module bohrium\n\ngo 1.24\n"
	for path, src := range files {
		abs := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(abs, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return mod
}

// runOn runs one analyzer over a fixture and returns findings as
// "relpath:line" strings, sorted.
func runOn(t *testing.T, a *Analyzer, files map[string]string) []string {
	t.Helper()
	mod := loadFixture(t, files)
	var got []string
	for _, d := range Run(mod, []*Analyzer{a}) {
		rel, err := filepath.Rel(mod.Root, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s:%d", filepath.ToSlash(rel), d.Pos.Line))
	}
	return got
}

func wantFindings(t *testing.T, got, want []string) {
	t.Helper()
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings\n got: %v\nwant: %v", got, want)
	}
}

func TestErrwrap(t *testing.T) {
	got := runOn(t, Errwrap, map[string]string{
		"internal/vm/err.go": `package vm

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func bad(err error) error  { return fmt.Errorf("ctx: %v", err) }
func bad2(err error) error { return fmt.Errorf("%w: got %s", errBase, err) }
func good(err error) error { return fmt.Errorf("ctx: %w", err) }
func notErr(n int) error   { return fmt.Errorf("n=%v", n) }
func escape(err error) error {
	return fmt.Errorf("100%% failed: %w", err)
}
`,
		// Out of scope: same bug in an unscoped package is not reported.
		"internal/tensor/err.go": `package tensor

import "fmt"

func bad(err error) error { return fmt.Errorf("ctx: %v", err) }
`,
	})
	wantFindings(t, got, []string{
		"internal/vm/err.go:10",
		"internal/vm/err.go:11",
	})
}

func TestGuardedfield(t *testing.T) {
	got := runOn(t, Guardedfield, map[string]string{
		"internal/vm/counter.go": `package vm

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // line 8: no annotation on a mutex-carrying struct
	x  int // guarded by nosuch (line 9: dangling guard name)
	k  int // immutable after construction
}

func (c *counter) bump() { c.n++ } // line 13: no lock held

func (c *counter) good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// bumpLocked increments. Caller holds mu.
func (c *counter) bumpLocked() { c.n++ }

func fresh() *counter {
	c := &counter{}
	c.n = 1 // constructor: the value is unshared
	return c
}
`,
		"internal/vm/sem.go": `package vm

type gate struct {
	sem chan struct{} // 1-slot lock
	v   int           // guarded by sem
}

func (g *gate) lock()   { g.sem <- struct{}{} }
func (g *gate) unlock() { <-g.sem }

func (g *gate) bad() int { return g.v } // line 11: no sem held

func (g *gate) viaSend() int {
	g.sem <- struct{}{}
	defer func() { <-g.sem }()
	return g.v
}

func (g *gate) viaHelper() int {
	g.lock()
	defer g.unlock()
	return g.v
}
`,
	})
	wantFindings(t, got, []string{
		"internal/vm/counter.go:8",
		"internal/vm/counter.go:9",
		"internal/vm/counter.go:13",
		"internal/vm/sem.go:11",
	})
}

func TestAtomicfield(t *testing.T) {
	got := runOn(t, Atomicfield, map[string]string{
		"internal/vm/stats.go": `package vm

import "sync/atomic"

type stats struct {
	ops    atomic.Int64
	shards [4]atomic.Int64
}

func good(s *stats) int64 {
	s.ops.Add(1)
	s.shards[0].Add(1)
	total := int64(0)
	for i := range s.shards {
		total += s.shards[i].Load()
	}
	_ = len(s.shards)
	return total + s.ops.Load()
}

func badCopy(s *stats) int64 {
	v := s.ops // line 22: copies the atomic
	return v.Load()
}

func badAddr(s *stats) *atomic.Int64 {
	return &s.ops // line 27: address escapes the atomic API
}

func badRange(s *stats) int64 {
	total := int64(0)
	for _, v := range s.shards { // line 32: element-wise range copies
		total += v.Load()
	}
	return total
}
`,
	})
	wantFindings(t, got, []string{
		"internal/vm/stats.go:22",
		"internal/vm/stats.go:27",
		"internal/vm/stats.go:32",
	})
}

func TestCtxflow(t *testing.T) {
	got := runOn(t, Ctxflow, map[string]string{
		"internal/server/sess.go": `package server

import "context"

type sess struct {
	sem chan struct{}
}

func (s *sess) lock() { s.sem <- struct{}{} }

func (s *sess) lockCtx(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func handler(ctx context.Context, s *sess) {
	ctx2 := context.Background() // line 21: fresh root inside a ctx fn
	_ = ctx2
	s.lock() // line 23: context-blind call with a lockCtx sibling
}

func goodHandler(ctx context.Context, s *sess) {
	if !s.lockCtx(ctx) {
		return
	}
	<-s.sem
}

func noCtx(s *sess) {
	_ = context.Background() // fine: this function received no ctx
	s.lock()                 // fine for the same reason
}
`,
	})
	wantFindings(t, got, []string{
		"internal/server/sess.go:21",
		"internal/server/sess.go:23",
	})
}

func TestWirecontract(t *testing.T) {
	got := runOn(t, Wirecontract, map[string]string{
		"internal/server/api/api.go": `package api

const (
	CodeInternal = "internal"
	CodeQuota    = "quota"
)

type Error struct{ Code string }

func Errorf(status int, code, format string, args ...any) *Error {
	return &Error{Code: code}
}
`,
		"internal/faultinject/faultinject.go": `package faultinject

type Point string

const (
	PointAllocFail   Point = "alloc-fail"
	PointWorkerPanic Point = "worker-panic"
)

func Hook(p Point) func() { return nil }
`,
		"internal/server/handlers.go": `package server

import (
	"bohrium/internal/faultinject"
	"bohrium/internal/server/api"
)

func errs() {
	_ = api.Errorf(500, api.CodeInternal, "fine")
	_ = api.Errorf(500, "oops", "line 10: stringly code")
	_ = faultinject.Hook(faultinject.PointAllocFail)
	_ = faultinject.Hook("alloc-fial") // line 12: typo'd point
	code := dynamicCode()
	_ = api.Errorf(500, code, "fine: not a constant")
}

func dynamicCode() string { return "internal" }
`,
	})
	wantFindings(t, got, []string{
		"internal/server/handlers.go:10",
		"internal/server/handlers.go:12",
	})
}

func TestBoundary(t *testing.T) {
	got := runOn(t, Boundary, map[string]string{
		"internal/vm/vm.go": `package vm

type Machine struct{}
type Engine struct{}
type Config struct{}

func NewEngine() *Engine { return nil }
`,
		"internal/linalg/linalg.go": `package linalg

func Solve() {}
`,
		"front.go": `package bohrium

import (
	"bohrium/internal/linalg" // line 4: crosses the backend seam
	"bohrium/internal/vm"
)

type Context struct {
	eng *vm.Engine
	m   *vm.Machine // line 10: past the engine surface
}

func New(cfg vm.Config) *Context {
	linalg.Solve()
	return &Context{eng: vm.NewEngine()}
}
`,
	})
	wantFindings(t, got, []string{
		"front.go:4",
		"front.go:10",
	})
}

// TestScopes pins each analyzer's package scope: the concurrency and
// wire checks are repo-wide or layer-wide exactly as documented.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		rel      string
		want     bool
	}{
		{Errwrap, "internal/vm", true},
		{Errwrap, "internal/server/middleware", true},
		{Errwrap, "internal/tensor", false},
		{Errwrap, "", false},
		{Guardedfield, "internal/anything", true},
		{Atomicfield, "", true},
		{Ctxflow, "internal/server", true},
		{Ctxflow, "internal/vm", false},
		{Wirecontract, "cmd/bhd", true},
		{Boundary, "", true},
		{Boundary, "internal/vm", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.rel); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.rel, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	mod := loadFixture(t, map[string]string{
		"internal/vm/err.go": `package vm

import "fmt"

func bad(err error) error { return fmt.Errorf("ctx: %v", err) }
`,
	})
	diags := Run(mod, []*Analyzer{Errwrap})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1", len(diags))
	}
	s := diags[0].String()
	if !strings.Contains(s, "err.go:5: [errwrap] ") {
		t.Errorf("diagnostic %q lacks the file:line: [analyzer] form", s)
	}
}
