package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Guardedfield encodes the locking conventions the shared runtime relies
// on (the ones PR 5's shared-engine split and PR 7's session registry
// were built around, and the ones a missed lock turns into a cross-tenant
// incident):
//
//   - A struct field annotated "// guarded by <mu>" may only be accessed
//     inside a function that, on some path, acquires that guard: a
//     <mu>.Lock()/RLock() call, a send on a channel-semaphore guard, or a
//     call to the owning type's lock/lockCtx helper. The check is
//     deliberately conservative and same-function: acquiring anywhere in
//     the function admits every access in it (and its closures).
//   - A function whose doc comment declares the caller's obligation
//     ("Caller holds mu.", "Call with the shard lock held") is trusted:
//     its accesses pass, and the comment is the contract reviewers hold
//     callers to.
//   - A function that constructs the struct with a composite literal is
//     its constructor: the value is not shared yet, so accesses pass.
//   - Every other field of a mutex-carrying struct must say what
//     synchronizes it: "guarded by <mu>", or an immutability/ownership
//     note ("immutable after construction", "set once ...", "owned by
//     the recorder goroutine", "not guarded: ..."). sync.Mutex/RWMutex/
//     WaitGroup/Once fields and sync/atomic value types need no note —
//     they synchronize themselves.
var Guardedfield = &Analyzer{
	Name: "guardedfield",
	Doc:  "fields annotated 'guarded by <mu>' are only touched while holding <mu>; mutex-carrying structs annotate every field",
	Run:  runGuardedfield,
}

var (
	guardedByRe = regexp.MustCompile(`guarded by (\w+)`)
	exemptRe    = regexp.MustCompile(`(?i)immutable|set once|owned by|not guarded|self-synchron`)
	holdsDocRe  = regexp.MustCompile(`(?i)caller holds|lock held|while holding|holds the`)
	lockNameRe  = regexp.MustCompile(`^r?lock`)
)

// guardInfo is the per-package annotation index Enforcement builds on.
type guardInfo struct {
	// guardOf maps an annotated field to the mutex/semaphore field that
	// guards it.
	guardOf map[*types.Var]*types.Var
	// owners maps each struct type carrying guards to every guard field
	// declared on it (for the constructor and lock-helper rules).
	owners map[*types.Named][]*types.Var
}

func runGuardedfield(pass *Pass) {
	gi := collectGuards(pass)
	if len(gi.guardOf) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && holdsDocRe.MatchString(fd.Doc.Text()) {
				continue // documented caller-holds contract
			}
			checkGuardedAccesses(pass, gi, fd)
		}
	}
}

// collectGuards walks the package's struct declarations: it validates
// the annotation discipline (Enforcement A) and indexes field→guard for
// the access check (Enforcement B).
func collectGuards(pass *Pass) *guardInfo {
	info := pass.Pkg.Info
	gi := &guardInfo{
		guardOf: map[*types.Var]*types.Var{},
		owners:  map[*types.Named][]*types.Var{},
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			named, _ := info.Defs[ts.Name].Type().(*types.Named)

			// First sweep: find the struct's guards — mutex fields plus
			// any field some annotation names as its guard (channel
			// semaphores enroll this way).
			fieldVar := map[string]*types.Var{}
			var mutexes []*types.Var
			guardNames := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					v, _ := info.Defs[name].(*types.Var)
					if v == nil {
						continue
					}
					fieldVar[name.Name] = v
					if isSyncType(v.Type(), "Mutex") || isSyncType(v.Type(), "RWMutex") {
						mutexes = append(mutexes, v)
						guardNames[name.Name] = true
					}
				}
				for _, m := range guardedByRe.FindAllStringSubmatch(fieldComment(field), -1) {
					guardNames[m[1]] = true
				}
			}

			// Second sweep: bind annotations and enforce completeness.
			for _, field := range st.Fields.List {
				comment := fieldComment(field)
				m := guardedByRe.FindStringSubmatch(comment)
				for _, name := range field.Names {
					v := fieldVar[name.Name]
					if v == nil || guardNames[name.Name] {
						continue
					}
					if m != nil {
						guard := fieldVar[m[1]]
						if guard == nil {
							pass.Reportf(name.Pos(),
								"field %s.%s is 'guarded by %s', but the struct has no field %s",
								ts.Name.Name, name.Name, m[1], m[1])
							continue
						}
						gi.guardOf[v] = guard
						if named != nil {
							gi.owners[named] = appendUnique(gi.owners[named], guard)
						}
						continue
					}
					if selfSynchronized(v.Type()) || exemptRe.MatchString(comment) {
						continue
					}
					if len(mutexes) > 0 {
						pass.Reportf(name.Pos(),
							"field %s.%s shares a struct with mutex %s but has no '// guarded by <mu>' annotation or immutability note",
							ts.Name.Name, name.Name, mutexes[0].Name())
					}
				}
			}
			return true
		})
	}
	return gi
}

// checkGuardedAccesses walks one function: every selector that resolves
// to a guarded field must be covered by a guard this function acquires
// or a struct it constructs.
func checkGuardedAccesses(pass *Pass, gi *guardInfo, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	held := map[*types.Var]bool{}
	constructed := map[*types.Named]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Direct acquisition: x.mu.Lock() / x.mu.RLock().
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if s := info.Selections[inner]; s != nil {
						if v, ok := s.Obj().(*types.Var); ok {
							held[v] = true
						}
					}
				}
			}
			// Lock-helper acquisition: sess.lock(), sess.lockCtx(ctx) —
			// a method of the guard's owner whose name says it locks.
			if fn := calleeFunc(info, n); fn != nil && lockNameRe.MatchString(strings.ToLower(fn.Name())) &&
				!strings.Contains(strings.ToLower(fn.Name()), "unlock") {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					if named := namedOrigin(recv.Type()); named != nil {
						for _, g := range gi.owners[named.Origin()] {
							held[g] = true
						}
					}
				}
			}
		case *ast.SendStmt:
			// Channel-semaphore acquisition: s.sem <- struct{}{}.
			if sel, ok := ast.Unparen(n.Chan).(*ast.SelectorExpr); ok {
				if s := info.Selections[sel]; s != nil {
					if v, ok := s.Obj().(*types.Var); ok {
						held[v] = true
					}
				}
			}
		case *ast.CompositeLit:
			// Constructor: the fresh value is unshared.
			if tv, ok := info.Types[n]; ok {
				if named := namedOrigin(tv.Type); named != nil {
					constructed[named.Origin()] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := gi.guardOf[v]
		if !guarded || held[guard] {
			return true
		}
		if owner := namedOrigin(s.Recv()); owner != nil && constructed[owner.Origin()] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s is guarded by %s, but %s neither acquires it nor documents a caller-holds contract",
			v.Name(), guard.Name(), fd.Name.Name)
		return true
	})
}

// fieldComment joins a field's doc comment and its trailing line comment.
func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// selfSynchronized reports field types that need no guard annotation:
// the sync primitives themselves and sync/atomic value types.
func selfSynchronized(t types.Type) bool {
	for _, n := range []string{"Mutex", "RWMutex", "WaitGroup", "Once"} {
		if isSyncType(t, n) {
			return true
		}
	}
	return atomicTypeName(t) != ""
}

func appendUnique(vars []*types.Var, v *types.Var) []*types.Var {
	for _, have := range vars {
		if have == v {
			return vars
		}
	}
	return append(vars, v)
}
