package analysis

import (
	"go/ast"
	"go/constant"
)

// Errwrap encodes the error-chain invariant behind the daemon's
// retryable-503 classification: an execution-path fmt.Errorf whose
// argument is itself an error must wrap it with %w, never format it with
// %v or %s. Formatting flattens the chain — errors.Is(err,
// vm.ErrMemoryPressure) (and ErrParse/ErrInvalid/ErrExec/ErrRewrite)
// stops matching through the wrap, so a retryable condition misclassifies
// as terminal. The %w form prints identically to %v for errors, which is
// why the PR-8 sweep could fix wraps without moving a single byte of the
// differential-pinned error text.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf over an error-typed argument must use %w so errors.Is survives the wrap",
	Scope: []string{
		"internal/vm/...", "internal/backend/...", "internal/bytecode/...",
		"internal/rewrite/...", "internal/server/...",
	},
	Run: runErrwrap,
}

func runErrwrap(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			verbs := formatVerbs(constant.StringVal(tv.Value))
			for i, verb := range verbs {
				argIdx := 1 + i
				if argIdx >= len(call.Args) {
					break
				}
				if verb != 'v' && verb != 's' {
					continue
				}
				arg := call.Args[argIdx]
				if atv, ok := info.Types[arg]; ok && implementsError(atv.Type) {
					pass.Reportf(arg.Pos(),
						"error-typed argument formatted with %%%c; use %%w so errors.Is can match through the wrap", verb)
				}
			}
			return true
		})
	}
}

// formatVerbs extracts the argument-consuming verb letters of a fmt
// format string, in argument order. Explicit argument indexes (%[n]d)
// and star widths are rare enough here that any format using them is
// skipped entirely (returns nil) rather than mis-mapped.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '[' || c == '*' {
				return nil // explicit index or star width: bail out
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
