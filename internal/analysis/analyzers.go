package analysis

// All is the registry cmd/bhlint runs by default, in reporting-precedence
// order (diagnostics are sorted by position regardless).
var All = []*Analyzer{
	Errwrap,
	Guardedfield,
	Atomicfield,
	Ctxflow,
	Wirecontract,
	Boundary,
}
