// Package analysis is the repo's static-invariant checker: a small
// analyzer framework on the standard library only (go/parser + go/types
// with the source importer — go.mod stays dependency-free) plus the
// analyzers that encode the conventions this codebase's concurrency and
// error handling depend on. The type system cannot see that a field is
// guarded by a mutex, that an error chain must stay errors.Is-able, or
// that a wire code is part of a stable contract; each analyzer here
// turns one such convention into a machine-checked rule, so a regression
// is a CI failure, not a code-review catch (or a cross-tenant incident
// under load).
//
// cmd/bhlint is the driver: it loads the whole module once, runs every
// analyzer over every package in its scope, and prints
// "file:line: [analyzer] message" diagnostics with a non-zero exit on
// findings. ARCHITECTURE.md section 9 documents each invariant, the
// incident that motivated it, and how to annotate code for it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run is called once per package in
// scope; it reports findings through the Pass.
type Analyzer struct {
	// Name labels diagnostics ("[errwrap]") and selects analyzers on the
	// bhlint command line.
	Name string
	// Doc is the one-line invariant statement bhlint -list prints.
	Doc string
	// Scope lists the module-relative package paths this analyzer runs
	// on: "" is the module root, a path ending in "/..." matches the
	// package and everything below it. Nil means every package.
	Scope []string
	// Run inspects one package and reports findings.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer's scope covers the
// module-relative package path rel ("" for the module root).
func (a *Analyzer) AppliesTo(rel string) bool {
	if a.Scope == nil {
		return true
	}
	for _, s := range a.Scope {
		if prefix, ok := strings.CutSuffix(s, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		} else if rel == s {
			return true
		}
	}
	return false
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: position, owning analyzer, message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical "file:line: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Run executes each analyzer over every module package in its scope and
// returns the findings sorted by file, line, and analyzer.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range mod.Pkgs {
			if !a.AppliesTo(pkg.RelPath) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Module: mod, Pkg: pkg, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// errorType is the universe's error interface, shared by analyzers that
// ask "does this expression's type implement error".
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType)
}

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for builtins, conversions, and indirect calls through
// function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "fmt", "Errorf").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// namedOrigin unwraps pointers and aliases down to the *types.Named type,
// or nil.
func namedOrigin(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isSyncType reports whether t is the named type sync.<name>.
func isSyncType(t types.Type, name string) bool {
	n := namedOrigin(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == name
}

// atomicTypeName returns the sync/atomic value-type name of t
// ("Int64", "Bool", ...) or "" when t is not one. Arrays of atomics
// report their element type.
func atomicTypeName(t types.Type) string {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	n := namedOrigin(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync/atomic" {
		return ""
	}
	return n.Obj().Name()
}
