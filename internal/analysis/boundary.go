package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// allowedRootImports are the only internal packages the front end may
// import: the byte-code and tensor data model the public API is built
// from, the rewrite options surfaced through Config, the backend seam
// itself, internal/vm under the selector allowlist below, and the
// fault-injection registry (the cross-plan deferral decision exposes
// the xplan-disarm point so the chaos suite can veto fusion
// mid-stream — a testing cross-cut, not execution machinery).
var allowedRootImports = map[string]bool{
	"internal/backend":     true,
	"internal/bytecode":    true,
	"internal/tensor":      true,
	"internal/rewrite":     true,
	"internal/vm":          true,
	"internal/faultinject": true,
}

// allowedVMSelectors is the engine-level surface of internal/vm the front
// end may touch: configuration knobs the Runtime translates into
// backend.Config, the shared Engine it owns and hands to backend.Open,
// and the Stats snapshot Context.Stats republishes.
var allowedVMSelectors = map[string]bool{
	"Config":                   true,
	"DefaultPlanCacheSize":     true,
	"DefaultParallelThreshold": true,
	"DefaultAsyncDepth":        true,
	"Engine":                   true,
	"EngineConfig":             true,
	"NewEngine":                true,
	"Stats":                    true,
}

// Boundary is the import-boundary check from the pluggable-backend
// refactor, promoted from a root-package test into an analyzer: the
// front-end package records byte-code and hands batches to a
// backend.Backend — it must never reach past that seam into the VM's
// execution machinery. Compiling or executing through vm.Machine,
// vm.Plan, or vm.Executor directly would bypass backend selection, the
// scoped plan cache, and the differential contract.
var Boundary = &Analyzer{
	Name:  "boundary",
	Doc:   "the front-end (module root) package stays behind the backend seam: allowlisted internal imports, engine-surface-only use of vm",
	Scope: []string{""},
	Run:   runBoundary,
}

func runBoundary(pass *Pass) {
	info := pass.Pkg.Info
	internalPrefix := pass.Module.Path + "/"
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			rel, ok := strings.CutPrefix(path, internalPrefix)
			if !ok || !strings.HasPrefix(rel, "internal/") {
				continue
			}
			if !allowedRootImports[rel] {
				pass.Reportf(imp.Pos(), "import %s crosses the backend seam", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != pass.Module.Path+"/internal/vm" {
				return true
			}
			if !allowedVMSelectors[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"vm.%s reaches past the Backend interface (allowed: config/engine/stats surface only)", sel.Sel.Name)
			}
			return true
		})
	}
}
