package analysis

import "testing"

// TestRegressionCorpus replays one past-PR bug class per analyzer: each
// fixture is the minimal shape of a defect this repo actually shipped
// (or caught in review) before the analyzer existed. If an analyzer
// stops firing on its fixture, the regression the suite was built to
// block is open again.
func TestRegressionCorpus(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		files    map[string]string
		want     []string
	}{
		{
			// The compile-path wrap bug fixed in this PR's sweep:
			// ErrExec chained with %w but the cause flattened with %v,
			// so errors.Is(err, cause) stopped matching below the
			// sentinel. Shape taken from vm/plan.go.
			name:     "errwrap-flattened-cause",
			analyzer: Errwrap,
			files: map[string]string{
				"internal/vm/plan.go": `package vm

import (
	"errors"
	"fmt"
)

var ErrExec = errors.New("exec")

func compile(err error) error {
	return fmt.Errorf("%w: %v", ErrExec, err)
}
`,
			},
			want: []string{"internal/vm/plan.go:11"},
		},
		{
			// The async-executor sticky-error class: the background
			// worker records the first failure, but a fast-path reader
			// peeks at err without taking mu — a data race that reports
			// success for an already-poisoned pipeline.
			name:     "guardedfield-sticky-error-unlocked",
			analyzer: Guardedfield,
			files: map[string]string{
				"internal/vm/async.go": `package vm

import "sync"

type Executor struct {
	mu  sync.Mutex
	err error // guarded by mu
}

func (e *Executor) poisoned() bool { return e.err != nil }

func (e *Executor) Wait() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
`,
			},
			want: []string{"internal/vm/async.go:10"},
		},
		{
			// The drain-accounting class: snapshotting the in-flight
			// counter by value instead of Load() — the copy is a torn,
			// frozen read, and vet's copylocks only catches some shapes.
			name:     "atomicfield-counter-copied",
			analyzer: Atomicfield,
			files: map[string]string{
				"internal/backend/exec.go": `package backend

import "sync/atomic"

type Executor struct {
	pending atomic.Int64
}

func (e *Executor) idle() bool {
	p := e.pending
	return p.Load() == 0
}
`,
			},
			want: []string{"internal/backend/exec.go:10"},
		},
		{
			// The hung-handler class lockCtx was built to kill: a
			// deadline-bearing handler acquiring the session with the
			// unconditional lock, so one slow batch turns the next
			// request into a hang instead of a structured 503.
			name:     "ctxflow-unbounded-lock-in-handler",
			analyzer: Ctxflow,
			files: map[string]string{
				"internal/server/handler.go": `package server

import "context"

type session struct {
	sem chan struct{}
}

func (s *session) lock() { s.sem <- struct{}{} }

func (s *session) lockCtx(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func handleBatch(ctx context.Context, s *session) {
	s.lock()
	defer func() { <-s.sem }()
}
`,
			},
			want: []string{"internal/server/handler.go:21"},
		},
		{
			// The stringly-wire-code class: an envelope built with an
			// ad-hoc code string no client (and no differential test)
			// recognizes, instead of the declared constant.
			name:     "wirecontract-adhoc-code",
			analyzer: Wirecontract,
			files: map[string]string{
				"internal/server/api/api.go": `package api

const CodeQuota = "quota"

func Errorf(status int, code, format string, args ...any) error {
	return nil
}
`,
				"internal/server/quota.go": `package server

import "bohrium/internal/server/api"

func reject() error {
	return api.Errorf(429, "quota_exceeded", "over budget")
}
`,
			},
			want: []string{"internal/server/quota.go:6"},
		},
		{
			// The seam-bypass class the backend refactor's boundary test
			// was written against: the front end compiling through
			// vm.Machine directly, skipping backend selection and the
			// scoped plan cache.
			name:     "boundary-front-end-touches-machine",
			analyzer: Boundary,
			files: map[string]string{
				"internal/vm/vm.go": `package vm

type Machine struct{}

func NewMachine() *Machine { return nil }
`,
				"context.go": `package bohrium

import "bohrium/internal/vm"

type Context struct {
	m *vm.Machine
}

func NewContext() *Context {
	return &Context{m: vm.NewMachine()}
}
`,
			},
			want: []string{"context.go:6", "context.go:10"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantFindings(t, runOn(t, c.analyzer, c.files), c.want)
		})
	}
}
