package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow encodes the cancellation discipline the daemon's drain path and
// the executor's quiesce path depend on: once a function has been handed
// a context it must stay on that context's cancellation tree. Inside
// internal/server and internal/backend, a function with a
// context.Context parameter must not
//
//   - mint a fresh root with context.Background() or context.TODO() —
//     work on a detached tree outlives the request and stalls drain; nor
//   - call a callee's context-blind variant when a ctx-taking sibling
//     exists (sess.lock() where sess.lockCtx(ctx) is defined): the blind
//     call blocks past cancellation, which is exactly the bug class the
//     lockCtx helpers were added to kill.
var Ctxflow = &Analyzer{
	Name:  "ctxflow",
	Doc:   "ctx-receiving functions in server/backend neither mint fresh roots nor call context-blind siblings",
	Scope: []string{"internal/server/...", "internal/backend/..."},
	Run:   runCtxflow,
}

func runCtxflow(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !declTakesContext(info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgFunc(info, call, "context", "Background") || isPkgFunc(info, call, "context", "TODO") {
					pass.Reportf(call.Pos(),
						"%s receives a ctx but mints a fresh root; derive from the incoming ctx instead", fd.Name.Name)
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || funcTakesContext(fn) {
					return true
				}
				if sib := ctxSibling(fn); sib != nil {
					pass.Reportf(call.Pos(),
						"%s holds a ctx but calls context-blind %s; use %s so cancellation propagates", fd.Name.Name, fn.Name(), sib.Name())
				}
				return true
			})
		}
	}
}

// declTakesContext reports whether the function declaration has a
// context.Context parameter.
func declTakesContext(info *types.Info, fd *ast.FuncDecl) bool {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn != nil && funcTakesContext(fn)
}

// funcTakesContext reports whether any parameter of fn is a
// context.Context.
func funcTakesContext(fn *types.Func) bool {
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n := namedOrigin(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// ctxSibling finds the ctx-taking variant of a context-blind function:
// a method (or package function) named <fn>Ctx with a context parameter,
// looked up on the receiver type or in the declaring package.
func ctxSibling(fn *types.Func) *types.Func {
	name := fn.Name() + "Ctx"
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		if sib, ok := obj.(*types.Func); ok && funcTakesContext(sib) {
			return sib
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if sib, ok := fn.Pkg().Scope().Lookup(name).(*types.Func); ok && funcTakesContext(sib) {
		return sib
	}
	return nil
}
