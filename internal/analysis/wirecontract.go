package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Wirecontract pins the two stringly-typed contracts that cross the
// process boundary:
//
//   - Wire error codes. The HTTP envelope's "code" field is part of the
//     client contract (clients switch on it to decide retry vs fail).
//     Any call that passes a constant string as a "code" parameter to
//     the api package's constructors must pass one of the declared
//     api.Code* constants — a typo'd or ad-hoc code ships a value no
//     client recognizes and no test pins.
//   - Fault-injection point names. The faultinject registry matches
//     hooks by Point name; a misspelled point silently never fires, so
//     the chaos test it backs quietly stops testing anything. Constant
//     Point arguments must be one of the registered Point constants.
//
// The declaring packages themselves are skipped — that is where the
// canonical lists live.
var Wirecontract = &Analyzer{
	Name: "wirecontract",
	Doc:  "constant wire error codes and faultinject point names come from the declared constant sets",
	Run:  runWirecontract,
}

// wireSets is the module-wide index of declared contract values.
type wireSets struct {
	codes     map[string]bool // value -> declared, from Code* string consts
	codePkgs  map[string]bool // package paths declaring Code* consts
	points    map[string]bool // value -> declared, from Point-typed consts
	pointType map[*types.TypeName]bool
	pointPkgs map[string]bool
}

func runWirecontract(pass *Pass) {
	ws := collectWireSets(pass.Module)
	if ws.codePkgs[pass.Pkg.Path] || ws.pointPkgs[pass.Pkg.Path] {
		return // the declaring package is the source of truth
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				p := sig.Params().At(i)
				val := constStringArg(info, call.Args[i])
				if val == nil {
					continue
				}
				if ws.codePkgs[fn.Pkg().Path()] && p.Name() == "code" && isStringParam(p) && !ws.codes[*val] {
					pass.Reportf(call.Args[i].Pos(),
						"error code %q is not a declared Code* constant in %s", *val, fn.Pkg().Path())
				}
				if tn := namedOrigin(p.Type()); tn != nil && ws.pointType[tn.Obj()] && !ws.points[*val] {
					pass.Reportf(call.Args[i].Pos(),
						"fault-injection point %q is not a registered Point constant in %s", *val, tn.Obj().Pkg().Path())
				}
			}
			return true
		})
	}
}

// collectWireSets scans every module package for the contract
// declarations: Code*-named string constants, and constants of a named
// string type called Point.
func collectWireSets(mod *Module) *wireSets {
	ws := &wireSets{
		codes:     map[string]bool{},
		codePkgs:  map[string]bool{},
		points:    map[string]bool{},
		pointType: map[*types.TypeName]bool{},
		pointPkgs: map[string]bool{},
	}
	for _, pkg := range mod.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Const:
				if strings.HasPrefix(name, "Code") && obj.Val().Kind() == constant.String {
					ws.codes[constant.StringVal(obj.Val())] = true
					ws.codePkgs[pkg.Path] = true
				}
				if tn := namedOrigin(obj.Type()); tn != nil && tn.Obj().Name() == "Point" &&
					obj.Val().Kind() == constant.String {
					ws.points[constant.StringVal(obj.Val())] = true
					ws.pointType[tn.Obj()] = true
					ws.pointPkgs[pkg.Path] = true
				}
			}
		}
	}
	return ws
}

// constStringArg folds arg to its constant string value, or nil when the
// argument is not a compile-time string.
func constStringArg(info *types.Info, arg ast.Expr) *string {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	s := constant.StringVal(tv.Value)
	return &s
}

func isStringParam(p *types.Var) bool {
	b, ok := p.Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}
