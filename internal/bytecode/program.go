package bytecode

import (
	"fmt"
	"strings"

	"bohrium/internal/tensor"
)

// RegInfo declares a register's base array: its element type and length in
// elements. The VM's register file allocates buffers from these
// declarations; views in operands address into them.
type RegInfo struct {
	DType tensor.DType
	Len   int
}

// Program is a flat sequence of byte-code instructions plus the register
// declarations they refer to. It is the unit the rewrite engine transforms
// and the VM executes — Bohrium calls this a "batch" or instruction list.
//
// A program owns no buffers: registers are declarations (RegInfo), and
// the VM's register file materializes them lazily at first definition.
// Inputs and Outputs are the program's contract with its caller — the
// only liveness facts a transformation may not infer from the
// instruction stream itself. Dump emits a listing that Parse reads back
// losslessly (declarations as ".reg", inputs/outputs as ".in"/".out");
// the format is specified in docs/bytecode.md.
type Program struct {
	Regs   []RegInfo
	Instrs []Instruction
	// Inputs lists registers whose buffers are bound by the front-end
	// before execution (pre-existing arrays); they are live at entry
	// without a defining instruction.
	Inputs []RegID
	// Outputs lists registers observable after execution (arrays the
	// front-end still holds handles to); the optimizer must preserve
	// their final values even without an explicit BH_SYNC.
	Outputs []RegID
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// NewReg declares a fresh register with the given dtype and base length,
// returning its id.
func (p *Program) NewReg(dt tensor.DType, n int) RegID {
	p.Regs = append(p.Regs, RegInfo{DType: dt, Len: n})
	return RegID(len(p.Regs) - 1)
}

// MarkInput declares r as bound before execution.
func (p *Program) MarkInput(r RegID) { p.Inputs = append(p.Inputs, r) }

// IsInput reports whether r is bound before execution.
func (p *Program) IsInput(r RegID) bool {
	for _, in := range p.Inputs {
		if in == r {
			return true
		}
	}
	return false
}

// MarkOutput declares r as externally observable after execution.
func (p *Program) MarkOutput(r RegID) { p.Outputs = append(p.Outputs, r) }

// IsOutput reports whether r is externally observable after execution.
func (p *Program) IsOutput(r RegID) bool {
	for _, out := range p.Outputs {
		if out == r {
			return true
		}
	}
	return false
}

// Reg returns the declaration of register r and whether it exists.
func (p *Program) Reg(r RegID) (RegInfo, bool) {
	if r < 0 || int(r) >= len(p.Regs) {
		return RegInfo{}, false
	}
	return p.Regs[r], true
}

// Emit appends an instruction.
func (p *Program) Emit(in Instruction) { p.Instrs = append(p.Instrs, in) }

// EmitBinary appends "op out in1 in2".
func (p *Program) EmitBinary(op Opcode, out, in1, in2 Operand) {
	p.Emit(Instruction{Op: op, Out: out, In1: in1, In2: in2})
}

// EmitUnary appends "op out in1".
func (p *Program) EmitUnary(op Opcode, out, in1 Operand) {
	p.Emit(Instruction{Op: op, Out: out, In1: in1})
}

// EmitIdentity appends "BH_IDENTITY out src" (copy / fill).
func (p *Program) EmitIdentity(out, src Operand) {
	p.Emit(Instruction{Op: OpIdentity, Out: out, In1: src})
}

// EmitSync appends "BH_SYNC out", requesting out's data be materialized.
func (p *Program) EmitSync(out Operand) {
	p.Emit(Instruction{Op: OpSync, Out: out})
}

// EmitFree appends "BH_FREE out", releasing the register's buffer.
func (p *Program) EmitFree(out Operand) {
	p.Emit(Instruction{Op: OpFree, Out: out})
}

// EmitReduce appends a reduction over the given axis.
func (p *Program) EmitReduce(op Opcode, out, in Operand, axis int) {
	p.Emit(Instruction{Op: op, Out: out, In1: in, Axis: axis})
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// Clone returns a deep copy of the program; rewrites operate on copies so
// callers keep the original stream for comparison runs.
func (p *Program) Clone() *Program {
	out := &Program{
		Regs:    append([]RegInfo(nil), p.Regs...),
		Instrs:  make([]Instruction, len(p.Instrs)),
		Inputs:  append([]RegID(nil), p.Inputs...),
		Outputs: append([]RegID(nil), p.Outputs...),
	}
	for i := range p.Instrs {
		out.Instrs[i] = p.Instrs[i].Clone()
	}
	return out
}

// CountOp returns how many instructions use op — experiment tables report
// e.g. the number of BH_MULTIPLYs before/after rewriting.
func (p *Program) CountOp(op Opcode) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op == op {
			n++
		}
	}
	return n
}

// CountKind returns how many instructions belong to the given kind.
func (p *Program) CountKind(k OpKind) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op.Info().Kind == k {
			n++
		}
	}
	return n
}

// WorkEstimate returns the cost model's per-element work estimate for the
// whole program: sum over instructions of view size times op cost.
// Extension methods are charged by their own asymptotic formulas.
func (p *Program) WorkEstimate() float64 {
	total := 0.0
	for i := range p.Instrs {
		total += InstrCost(&p.Instrs[i])
	}
	return total
}

// InstrCost estimates the cost of a single instruction under the model
// where one elementwise sweep of n elements costs n cost units.
func InstrCost(in *Instruction) float64 {
	info := in.Op.Info()
	switch info.Kind {
	case KindSystem:
		return 0
	case KindExtension:
		// Superlinear extension methods: charge by matrix dimension m
		// (views are m×m or m×k; use the output's leading extent).
		m := 1.0
		if in.Out.IsReg() && in.Out.View.NDim() > 0 {
			m = float64(in.Out.View.Shape[0])
		}
		switch in.Op {
		case OpMatmul:
			return 2 * m * m * m
		case OpLU:
			return 2.0 / 3.0 * m * m * m
		case OpSolve:
			return 2.0/3.0*m*m*m + 2*m*m
		case OpInverse:
			return 2 * m * m * m
		default:
			return m * m
		}
	default:
		n := 0
		if in.Out.IsReg() {
			n = in.Out.View.Size()
		}
		if info.Kind == KindReduction || info.Kind == KindScan {
			// Reductions sweep the input, not the (smaller) output.
			if in.In1.IsReg() {
				n = in.In1.View.Size()
			}
		}
		return float64(n) * info.Cost
	}
}

// String disassembles the whole program in the paper's listing format, one
// instruction per line.
func (p *Program) String() string {
	var b strings.Builder
	for i := range p.Instrs {
		b.WriteString(p.Instrs[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Dump disassembles with register declarations as ".reg" directives so the
// result can be parsed back losslessly (see Parse).
func (p *Program) Dump() string {
	var b strings.Builder
	for i, r := range p.Regs {
		fmt.Fprintf(&b, ".reg a%d %s %d\n", i, r.DType, r.Len)
	}
	for _, r := range p.Inputs {
		fmt.Fprintf(&b, ".in %s\n", r)
	}
	for _, r := range p.Outputs {
		fmt.Fprintf(&b, ".out %s\n", r)
	}
	b.WriteString(p.String())
	return b.String()
}
