package bytecode

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bohrium/internal/tensor"
)

// RegID names a byte-code register ("a0", "a1", ...). Registers denote base
// arrays; operands address them through views.
type RegID int

// String returns the textual register name used in listings.
func (r RegID) String() string { return "a" + strconv.Itoa(int(r)) }

// Constant is a typed scalar immediate. Integer constants keep an exact
// int64 so that the constant-merging rewrite (paper Listing 2→3) can fold
// integer additions without rounding.
type Constant struct {
	DType tensor.DType
	F     float64
	I     int64
}

// ConstFloat builds a float64 constant.
func ConstFloat(v float64) Constant {
	return Constant{DType: tensor.Float64, F: v, I: int64(v)}
}

// ConstInt builds an int64 constant.
func ConstInt(v int64) Constant {
	return Constant{DType: tensor.Int64, F: float64(v), I: v}
}

// ConstBool builds a bool constant.
func ConstBool(v bool) Constant {
	c := Constant{DType: tensor.Bool}
	if v {
		c.F, c.I = 1, 1
	}
	return c
}

// ConstOf builds a constant of the given dtype from a float64 value.
func ConstOf(dt tensor.DType, v float64) Constant {
	switch {
	case dt == tensor.Bool:
		return ConstBool(v != 0)
	case dt.IsInteger():
		c := ConstInt(int64(v))
		c.DType = dt
		return c
	default:
		c := ConstFloat(v)
		c.DType = dt
		return c
	}
}

// Float returns the numeric value widened to float64.
func (c Constant) Float() float64 {
	if c.DType.IsInteger() || c.DType == tensor.Bool {
		return float64(c.I)
	}
	return c.F
}

// Int returns the numeric value as int64 (floats truncate).
func (c Constant) Int() int64 {
	if c.DType.IsInteger() || c.DType == tensor.Bool {
		return c.I
	}
	return int64(c.F)
}

// IsIntegral reports whether the constant holds an exact integer value,
// regardless of dtype: 3.0 is integral, 3.5 is not. The power-expansion
// rewrite (paper eq. (1)) requires an integral exponent.
func (c Constant) IsIntegral() bool {
	if c.DType.IsInteger() || c.DType == tensor.Bool {
		return true
	}
	return c.F == math.Trunc(c.F) && !math.IsInf(c.F, 0) && !math.IsNaN(c.F)
}

// Equal reports exact equality of dtype and value.
func (c Constant) Equal(d Constant) bool {
	return c.DType == d.DType && c.F == d.F && c.I == d.I
}

// String prints the constant the way the paper's listings do: bare numbers.
func (c Constant) String() string {
	switch {
	case c.DType == tensor.Bool:
		if c.I != 0 {
			return "true"
		}
		return "false"
	case c.DType.IsInteger():
		return strconv.FormatInt(c.I, 10)
	default:
		s := strconv.FormatFloat(c.F, 'g', -1, 64)
		// Distinguish float constants from int ones in the text format so
		// that parse(print(p)) round-trips dtypes.
		if !strings.ContainsAny(s, ".eE") && !math.IsInf(c.F, 0) && !math.IsNaN(c.F) {
			s += ".0"
		}
		return s
	}
}

// OperandKind discriminates Operand variants.
type OperandKind int

// Operand variants.
const (
	// OperandNone marks an absent operand slot.
	OperandNone OperandKind = iota
	// OperandReg is a register addressed through a view.
	OperandReg
	// OperandConst is a scalar immediate.
	OperandConst
)

// Operand is a register-with-view or a constant (paper §3: "up to two
// parameter registers or constants").
type Operand struct {
	Kind  OperandKind
	Reg   RegID
	View  tensor.View
	Const Constant
}

// Reg builds a register operand with the given view.
func Reg(id RegID, view tensor.View) Operand {
	return Operand{Kind: OperandReg, Reg: id, View: view}
}

// Const builds a constant operand.
func Const(c Constant) Operand {
	return Operand{Kind: OperandConst, Const: c}
}

// None is the absent operand.
func None() Operand { return Operand{Kind: OperandNone} }

// IsReg reports whether o is a register operand.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

// IsConst reports whether o is a constant operand.
func (o Operand) IsConst() bool { return o.Kind == OperandConst }

// Clone returns a deep copy (views carry slices).
func (o Operand) Clone() Operand {
	out := o
	if o.Kind == OperandReg {
		out.View = o.View.Clone()
	}
	return out
}

// String prints the operand in listing syntax: "a0 [0:10:1]" or "3".
func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		return o.Reg.String() + " " + o.View.String()
	case OperandConst:
		return o.Const.String()
	default:
		return "_"
	}
}

// Instruction is one byte-code: op-code, result operand, up to two inputs,
// and for reductions/scans the axis being folded.
//
// Invariants (enforced by Program.Validate): every instruction except
// BH_NONE names a register result; the populated input slots match the
// op-code's arity, filling In1 first; and Axis is meaningful only for
// KindReduction/KindScan instructions, where it indexes a dimension of
// In1's view (the *input* — the result view has one dimension fewer for
// reductions and the same shape for scans).
type Instruction struct {
	Op  Opcode
	Out Operand
	In1 Operand
	In2 Operand
	// Axis is the folded dimension of In1.View for reductions and
	// scans; zero (and ignored) otherwise. The assembler reads and the
	// disassembler prints it as a trailing "axis=N".
	Axis int
}

// Inputs returns the populated input operands in order.
func (in *Instruction) Inputs() []Operand {
	switch {
	case in.In2.Kind != OperandNone:
		return []Operand{in.In1, in.In2}
	case in.In1.Kind != OperandNone:
		return []Operand{in.In1}
	default:
		return nil
	}
}

// ReadsReg reports whether the instruction reads register r through any
// input operand.
func (in *Instruction) ReadsReg(r RegID) bool {
	for _, op := range in.Inputs() {
		if op.IsReg() && op.Reg == r {
			return true
		}
	}
	return false
}

// WritesReg reports whether the instruction writes register r. SYNC and
// FREE do not write; every other instruction writes its Out register.
func (in *Instruction) WritesReg(r RegID) bool {
	if in.Op == OpSync || in.Op == OpFree || in.Op == OpNone {
		return false
	}
	return in.Out.IsReg() && in.Out.Reg == r
}

// Clone returns a deep copy of the instruction.
func (in Instruction) Clone() Instruction {
	in.Out = in.Out.Clone()
	in.In1 = in.In1.Clone()
	in.In2 = in.In2.Clone()
	return in
}

// String prints the instruction as one listing line, e.g.
// "BH_ADD a0 [0:10:1] a0 [0:10:1] 1".
func (in Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Out.Kind != OperandNone {
		b.WriteByte(' ')
		b.WriteString(in.Out.String())
	}
	for _, op := range []Operand{in.In1, in.In2} {
		if op.Kind != OperandNone {
			b.WriteByte(' ')
			b.WriteString(op.String())
		}
	}
	if in.Op.Info().Kind == KindReduction || in.Op.Info().Kind == KindScan {
		fmt.Fprintf(&b, " axis=%d", in.Axis)
	}
	return b.String()
}
