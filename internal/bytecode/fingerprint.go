package bytecode

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Fingerprint is a canonical digest of a program's *structure*: opcodes,
// reduction axes, register operands (id, declared dtype and base length,
// view offset/shape/strides), constant positions and dtypes, and the
// input/output role of every referenced register. Constant *values* and
// buffer contents are excluded, so two batches that differ only in their
// immediates share a fingerprint — the property the plan cache keys on
// (see ARCHITECTURE.md, "Fingerprint legality rules"). Declarations no
// instruction references are excluded too: unrelated arrays living in
// the same session must not perturb the key of an iterative batch.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint's leading bytes for logs and tests.
func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:8]) }

// Fingerprint computes the structural digest of the program. Programs
// that compare equal under it are interchangeable for compilation
// purposes up to constant values: same instruction sequence, same
// register declarations and views at every operand, same input/output
// roles over the registers the instructions touch.
func (p *Program) Fingerprint() Fingerprint {
	h := sha256.New()
	var word [8]byte
	wr := func(v int64) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	used := map[RegID]bool{}
	writeOperand := func(o *Operand) {
		wr(int64(o.Kind))
		switch o.Kind {
		case OperandReg:
			used[o.Reg] = true
			wr(int64(o.Reg))
			ri, _ := p.Reg(o.Reg)
			wr(int64(ri.DType))
			wr(int64(ri.Len))
			wr(int64(o.View.Offset))
			wr(int64(len(o.View.Shape)))
			for _, d := range o.View.Shape {
				wr(int64(d))
			}
			for _, s := range o.View.Strides {
				wr(int64(s))
			}
		case OperandConst:
			// Dtype keys the cache (it selects the computation class);
			// the value is a plan parameter and stays out of the digest.
			wr(int64(o.Const.DType))
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		wr(int64(in.Op))
		wr(int64(in.Axis))
		writeOperand(&in.Out)
		writeOperand(&in.In1)
		writeOperand(&in.In2)
	}
	// Roles of the referenced registers, in register order: whether each
	// is bound before execution and whether it is externally observable.
	// Both gate rewrites (liveness, DCE), so both key the cache.
	ids := make([]RegID, 0, len(used))
	for r := range used {
		ids = append(ids, r)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	wr(int64(len(ids)))
	for _, r := range ids {
		role := int64(0)
		if p.IsInput(r) {
			role |= 1
		}
		if p.IsOutput(r) {
			role |= 2
		}
		wr(int64(r))
		wr(role)
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}

// SequenceFingerprint combines two batch fingerprints into the identity
// of the ordered pair (a, b). The front end keys its cross-plan
// predictor on it: when the pair fingerprint of consecutive flushes
// recurs, the stream is in a steady (A, B, A, B, …) state and the next
// A-batch is a candidate for deferral into a combined A+B submission
// (see ARCHITECTURE.md, "Cross-plan fusion"). The combinator is a plain
// digest over a‖b, so it inherits the structural-only semantics of
// Fingerprint: constant values do not perturb sequence identity.
func SequenceFingerprint(a, b Fingerprint) Fingerprint {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}

// Constants collects every constant operand in instruction order (In1
// before In2). The slice is the batch's "constant vector": together with
// the Fingerprint it fully identifies the batch, and for plans compiled
// from rewrite-free batches it is the parameter list SetConstants patches.
func (p *Program) Constants() []Constant {
	var out []Constant
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.In1.IsConst() {
			out = append(out, in.In1.Const)
		}
		if in.In2.IsConst() {
			out = append(out, in.In2.Const)
		}
	}
	return out
}

// SetConstants overwrites the program's constant operands with vals, in
// the same order Constants collects them. It requires an exact positional
// and dtype match — the caller guarantees structural identity via the
// Fingerprint — and reports whether any value actually changed.
func (p *Program) SetConstants(vals []Constant) (changed bool, err error) {
	next := 0
	set := func(o *Operand) error {
		if !o.IsConst() {
			return nil
		}
		if next >= len(vals) {
			return fmt.Errorf("bytecode: %d constants supplied, program has more", len(vals))
		}
		v := vals[next]
		next++
		if v.DType != o.Const.DType {
			return fmt.Errorf("bytecode: constant %d dtype %s, program wants %s", next-1, v.DType, o.Const.DType)
		}
		if !o.Const.Equal(v) {
			o.Const = v
			changed = true
		}
		return nil
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := set(&in.In1); err != nil {
			return changed, err
		}
		if err := set(&in.In2); err != nil {
			return changed, err
		}
	}
	if next != len(vals) {
		return changed, fmt.Errorf("bytecode: %d constants supplied, program has %d", len(vals), next)
	}
	return changed, nil
}
