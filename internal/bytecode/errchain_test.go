package bytecode

import (
	"errors"
	"strconv"
	"testing"
)

// The parse and validation wraps chain with %w end to end, so callers
// can match both the package sentinel AND the underlying cause. These
// tests pin the chain the errwrap analyzer enforces: if a wrap regresses
// to %v, the deep match goes dark while the error text stays identical —
// exactly the failure mode a text assertion cannot catch.

func TestParseErrorChainExposesCause(t *testing.T) {
	_, err := Parse(".reg a0 float64 4\nBH_IDENTITY a0 0\nBH_ADD_REDUCE a0 a0 axis=x\n")
	if err == nil {
		t.Fatal("parse accepted a malformed axis")
	}
	if !errors.Is(err, ErrParse) {
		t.Errorf("error %v does not match ErrParse", err)
	}
	// The malformed integer surfaces through two %w wraps: the sentinel
	// wrap on the line error and the "bad axis" wrap on strconv's.
	if !errors.Is(err, strconv.ErrSyntax) {
		t.Errorf("error %v does not expose strconv.ErrSyntax through the chain", err)
	}
}

func TestValidateErrorChainKeepsSentinel(t *testing.T) {
	p, err := Parse(".reg a0 float64 4\n.reg a1 float64 4\nBH_ADD a0 a1 a1\n")
	if err != nil {
		t.Fatal(err)
	}
	// a1 is read but never written: validation fails inside
	// validateInstr, and the instr-context wrap must keep ErrInvalid
	// matchable.
	verr := p.Validate()
	if verr == nil {
		t.Fatal("validation accepted a read of a never-written register")
	}
	if !errors.Is(verr, ErrInvalid) {
		t.Errorf("error %v does not match ErrInvalid through the instr wrap", verr)
	}
}
