package bytecode

import (
	"testing"

	"bohrium/internal/tensor"
)

// fpProg builds a small two-register batch: a1 = a0 * c; sync a1.
func fpProg(c Constant) *Program {
	p := NewProgram()
	a0 := p.NewReg(tensor.Float64, 10)
	a1 := p.NewReg(tensor.Float64, 10)
	v := tensor.NewView(tensor.MustShape(10))
	p.MarkInput(a0)
	p.EmitBinary(OpMultiply, Reg(a1, v), Reg(a0, v), Const(c))
	p.EmitSync(Reg(a1, v))
	p.MarkOutput(a1)
	return p
}

func TestFingerprintStable(t *testing.T) {
	a := fpProg(ConstFloat(2.5))
	b := fpProg(ConstFloat(2.5))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical programs fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint is not deterministic")
	}
}

func TestFingerprintExcludesConstantValues(t *testing.T) {
	a := fpProg(ConstFloat(2.5))
	b := fpProg(ConstFloat(7.25))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("constant value keyed the fingerprint; only structure may")
	}
	// The constant's dtype, however, is structure.
	c := fpProg(ConstInt(2))
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("constant dtype change not reflected in fingerprint")
	}
}

func TestFingerprintExcludesUnusedDeclarations(t *testing.T) {
	a := fpProg(ConstFloat(1.5))
	b := fpProg(ConstFloat(1.5))
	b.NewReg(tensor.Int32, 999) // unrelated array living in the session
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("unreferenced declaration perturbed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpProg(ConstFloat(2.5))
	mutants := map[string]func(*Program){
		"opcode": func(p *Program) { p.Instrs[0].Op = OpAdd },
		"axis":   func(p *Program) { p.Instrs[0].Axis = 1 },
		"shape": func(p *Program) {
			v := tensor.NewView(tensor.MustShape(2, 5))
			p.Instrs[0].Out.View = v
			p.Instrs[0].In1.View = v
		},
		"stride": func(p *Program) {
			v, err := p.Instrs[0].In1.View.Slice(0, 0, 10, 2)
			if err != nil {
				t.Fatal(err)
			}
			v.Shape[0] = 10 // keep extent, change stride only
			p.Instrs[0].In1.View = v
		},
		"offset": func(p *Program) { p.Instrs[0].In1.View.Offset = 3 },
		"reg-dtype": func(p *Program) {
			p.Regs[0].DType = tensor.Float32
		},
		"reg-len": func(p *Program) {
			p.Regs[0].Len = 20
		},
		"reg-id": func(p *Program) {
			p.NewReg(tensor.Float64, 10)
			p.Instrs[0].Out.Reg = RegID(2)
		},
		"input-role":  func(p *Program) { p.Inputs = nil },
		"output-role": func(p *Program) { p.Outputs = nil },
	}
	for name, mutate := range mutants {
		m := fpProg(ConstFloat(2.5))
		mutate(m)
		if m.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change not reflected in fingerprint", name)
		}
	}
}

func TestConstantsRoundTrip(t *testing.T) {
	p := fpProg(ConstFloat(2.5))
	got := p.Constants()
	if len(got) != 1 || !got[0].Equal(ConstFloat(2.5)) {
		t.Fatalf("Constants() = %v", got)
	}
	changed, err := p.SetConstants([]Constant{ConstFloat(9)})
	if err != nil || !changed {
		t.Fatalf("SetConstants: changed=%v err=%v", changed, err)
	}
	if !p.Instrs[0].In2.Const.Equal(ConstFloat(9)) {
		t.Errorf("constant not patched: %v", p.Instrs[0].In2.Const)
	}
	changed, err = p.SetConstants([]Constant{ConstFloat(9)})
	if err != nil || changed {
		t.Errorf("same-value patch reported changed=%v err=%v", changed, err)
	}
}

func TestSetConstantsRejectsMismatch(t *testing.T) {
	p := fpProg(ConstFloat(2.5))
	if _, err := p.SetConstants(nil); err == nil {
		t.Error("count mismatch (too few) accepted")
	}
	if _, err := p.SetConstants([]Constant{ConstFloat(1), ConstFloat(2)}); err == nil {
		t.Error("count mismatch (too many) accepted")
	}
	if _, err := p.SetConstants([]Constant{ConstInt(3)}); err == nil {
		t.Error("dtype mismatch accepted")
	}
}
