package bytecode

import (
	"os"
	"path/filepath"
	"testing"
)

// seedListings feeds every committed examples/*/listing.bh into the fuzz
// corpus: the real wire format is the best starting point for mutation,
// and the glob doubles as a check that the corpus stays in sync with the
// examples tree.
func seedListings(f *F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "listing.bh"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no examples/*/listing.bh seeds found")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// F aliases *testing.F so seedListings reads naturally at call sites.
type F = testing.F

// FuzzParse is the wire-parser robustness contract of the bhd daemon:
// Parse must return an error — never panic — on arbitrary input, because
// every byte of a batch body reaches it from the network. On accepted
// input the rest of the submit path must be panic-free too: Validate may
// reject the program but not crash, and a program that validates must
// fingerprint, clone, and dump without panicking.
func FuzzParse(f *testing.F) {
	seedListings(f)
	f.Add(".reg a0 float64 10\nBH_ADD a0 a0 1\nBH_SYNC a0\n")
	f.Add("BH_IDENTITY a0 [0:10:1] 0\nBH_ADD_REDUCE a1 a0 [0:10:1] axis=0\n")
	f.Add("BH_ADD a0 [0:4:1][0:4:0] a0 [4:0:-1] 1e308\n")
	f.Add(".in a0\n.out a0\n.reg a0 bool 1\nBH_SYNC a0\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, names, err := ParseNames(src)
		if err != nil {
			if prog != nil || names != nil {
				t.Fatalf("ParseNames returned non-nil program with error %v", err)
			}
			return
		}
		for name, id := range names {
			if _, ok := prog.Reg(id); !ok {
				t.Fatalf("name %q maps to unknown register %v", name, id)
			}
		}
		if err := prog.Validate(); err != nil {
			return
		}
		_ = prog.Fingerprint()
		_ = prog.Constants()
		if _, err := Parse(prog.Clone().Dump()); err != nil {
			t.Fatalf("validated program does not re-parse: %v\n%s", err, prog.Dump())
		}
	})
}

// FuzzParseView narrows the fuzzer onto the "[start:stop:step]" grammar,
// where the arithmetic (spans, strides, broadcast dims) lives.
func FuzzParseView(f *testing.F) {
	f.Add("[0:10:1]")
	f.Add("[0:16:4][0:4:1]")
	f.Add("[5:5:0]")
	f.Add("[10:0:-1]")
	f.Add("[-9223372036854775808:9223372036854775807:1]")
	f.Fuzz(func(t *testing.T, spec string) {
		v, err := parseView(spec)
		if err != nil {
			return
		}
		// A view the parser accepts must survive the same geometry
		// queries validation and execution will run on it.
		_, _, _ = v.MinMaxIndex()
		_ = v.Size()
	})
}
