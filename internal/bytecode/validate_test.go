package bytecode

import (
	"errors"
	"strings"
	"testing"

	"bohrium/internal/tensor"
)

func TestValidateRejects(t *testing.T) {
	v4 := tensor.NewView(tensor.MustShape(4))
	v8 := tensor.NewView(tensor.MustShape(8))

	tests := []struct {
		name  string
		build func() *Program
		want  string
	}{
		{
			name: "use before def",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				b := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.EmitBinary(OpAdd, Reg(a, v4), Reg(a, v4), Reg(b, v4))
				return p
			},
			want: "undefined",
		},
		{
			name: "use after free",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.EmitFree(Reg(a, v4))
				p.EmitUnary(OpSqrt, Reg(a, v4), Reg(a, v4))
				return p
			},
			want: "freed",
		},
		{
			name: "sync of undefined",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitSync(Reg(a, v4))
				return p
			},
			want: "undefined",
		},
		{
			name: "view outside register",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v8), Const(ConstInt(0)))
				return p
			},
			want: "outside buffer",
		},
		{
			name: "unknown register",
			build: func() *Program {
				p := NewProgram()
				p.EmitIdentity(Reg(RegID(3), v4), Const(ConstInt(0)))
				return p
			},
			want: "unknown register",
		},
		{
			name: "arity mismatch",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.EmitUnary(OpAdd, Reg(a, v4), Reg(a, v4)) // ADD wants 2 inputs
				return p
			},
			want: "wants 2 inputs",
		},
		{
			name: "const result",
			build: func() *Program {
				p := NewProgram()
				p.Emit(Instruction{Op: OpIdentity, Out: Const(ConstInt(0)), In1: Const(ConstInt(0))})
				return p
			},
			want: "must be a register",
		},
		{
			name: "shape mismatch",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 8)
				b := p.NewReg(tensor.Float64, 8)
				p.EmitIdentity(Reg(a, v8), Const(ConstInt(0)))
				p.EmitIdentity(Reg(b, v4), Const(ConstInt(0)))
				p.EmitBinary(OpAdd, Reg(a, v8), Reg(a, v8), Reg(b, v4))
				return p
			},
			want: "not broadcastable",
		},
		{
			name: "bool result into float register",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.EmitBinary(OpLess, Reg(a, v4), Reg(a, v4), Const(ConstInt(1)))
				return p
			},
			want: "must be bool",
		},
		{
			name: "reduce axis out of range",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				s := p.NewReg(tensor.Float64, 1)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.EmitReduce(OpAddReduce, Reg(s, tensor.NewView(tensor.MustShape(1))), Reg(a, v4), 1)
				return p
			},
			want: "axis 1 out of range",
		},
		{
			name: "reduce wrong result shape",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 12)
				s := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, tensor.NewView(tensor.MustShape(3, 4))), Const(ConstInt(0)))
				p.EmitReduce(OpAddReduce, Reg(s, tensor.NewView(tensor.MustShape(4))), Reg(a, tensor.NewView(tensor.MustShape(3, 4))), 1)
				return p
			},
			want: "reduce result shape",
		},
		{
			name: "matmul shape chain",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 6)
				b := p.NewReg(tensor.Float64, 6)
				c := p.NewReg(tensor.Float64, 4)
				va := tensor.NewView(tensor.MustShape(2, 3))
				vb := tensor.NewView(tensor.MustShape(2, 3)) // should be (3, n)
				vc := tensor.NewView(tensor.MustShape(2, 2))
				p.EmitIdentity(Reg(a, va), Const(ConstInt(0)))
				p.EmitIdentity(Reg(b, vb), Const(ConstInt(0)))
				p.EmitBinary(OpMatmul, Reg(c, vc), Reg(a, va), Reg(b, vb))
				return p
			},
			want: "do not chain",
		},
		{
			name: "solve non-square",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 6)
				b := p.NewReg(tensor.Float64, 2)
				x := p.NewReg(tensor.Float64, 2)
				va := tensor.NewView(tensor.MustShape(2, 3))
				vb := tensor.NewView(tensor.MustShape(2))
				p.EmitIdentity(Reg(a, va), Const(ConstInt(0)))
				p.EmitIdentity(Reg(b, vb), Const(ConstInt(0)))
				p.EmitBinary(OpSolve, Reg(x, vb), Reg(a, va), Reg(b, vb))
				return p
			},
			want: "square",
		},
		{
			name: "sync with inputs",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.Emit(Instruction{Op: OpSync, Out: Reg(a, v4), In1: Reg(a, v4)})
				return p
			},
			want: "takes no inputs",
		},
		{
			name: "random with register input",
			build: func() *Program {
				p := NewProgram()
				a := p.NewReg(tensor.Float64, 4)
				p.EmitIdentity(Reg(a, v4), Const(ConstInt(0)))
				p.EmitBinary(OpRandom, Reg(a, v4), Reg(a, v4), Const(ConstInt(0)))
				return p
			},
			want: "must be a constant",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.build().Validate()
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error %v is not ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{
			name: "listing 2",
			src:  listing2Source,
		},
		{
			name: "listing 5 power chain",
			src: `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2
BH_MULTIPLY a1 a0 a0
BH_MULTIPLY a1 a1 a1
BH_MULTIPLY a1 a1 a1
BH_MULTIPLY a1 a1 a0
BH_MULTIPLY a1 a1 a0
BH_SYNC a1
`,
		},
		{
			name: "broadcast row across matrix",
			src: `
.reg a0 float64 12
.reg a1 float64 4
BH_IDENTITY a0 [0:12:4][0:4:1] 0
BH_IDENTITY a1 [0:4:1] 1
BH_ADD a0 [0:12:4][0:4:1] a0 [0:12:4][0:4:1] a1 [0:3:0][0:4:1]
BH_SYNC a0 [0:12:4][0:4:1]
`,
		},
		{
			name: "full reduction to one element",
			src: `
.reg a0 float64 10
.reg a1 float64 1
BH_IDENTITY a0 1
BH_ADD_REDUCE a1 [0:1:1] a0 [0:10:1] axis=0
BH_SYNC a1
`,
		},
		{
			name: "free then redefine",
			src: `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_FREE a0
BH_IDENTITY a0 2
BH_SYNC a0
`,
		},
		{
			name: "solve",
			src: `
.reg a0 float64 4
.reg a1 float64 2
.reg a2 float64 2
BH_IDENTITY a0 [0:4:2][0:2:1] 1
BH_IDENTITY a1 [0:2:1] 1
BH_SOLVE a2 [0:2:1] a0 [0:4:2][0:2:1] a1 [0:2:1]
BH_SYNC a2
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := Parse(tt.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}
