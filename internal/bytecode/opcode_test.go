package bytecode

import (
	"strings"
	"testing"
)

func TestOpcodeTableConsistency(t *testing.T) {
	for _, op := range Opcodes() {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("op %d has no name", int(op))
		}
		if !strings.HasPrefix(info.Name, "BH_") {
			t.Errorf("%s does not start with BH_", info.Name)
		}
		if info.Kind == 0 {
			t.Errorf("%s has no kind", info.Name)
		}
		if info.Arity < 0 || info.Arity > 2 {
			t.Errorf("%s arity %d outside [0,2]", info.Name, info.Arity)
		}
		parsed, err := ParseOpcode(info.Name)
		if err != nil || parsed != op {
			t.Errorf("ParseOpcode(%s) = %v, %v", info.Name, parsed, err)
		}
	}
}

func TestOpcodeKinds(t *testing.T) {
	tests := []struct {
		op   Opcode
		kind OpKind
	}{
		{OpSync, KindSystem},
		{OpFree, KindSystem},
		{OpIdentity, KindGenerator},
		{OpRange, KindGenerator},
		{OpAdd, KindBinary},
		{OpSqrt, KindUnary},
		{OpAddReduce, KindReduction},
		{OpAddAccumulate, KindScan},
		{OpMatmul, KindExtension},
		{OpSolve, KindExtension},
	}
	for _, tt := range tests {
		if got := tt.op.Info().Kind; got != tt.kind {
			t.Errorf("%s kind = %v, want %v", tt.op, got, tt.kind)
		}
	}
}

func TestOpcodeAlgebraicProperties(t *testing.T) {
	// The rewrite rules lean on these flags; pin them down.
	if !OpAdd.Info().Commutative || !OpAdd.Info().Associative {
		t.Error("BH_ADD must be commutative and associative")
	}
	if OpSubtract.Info().Commutative {
		t.Error("BH_SUBTRACT must not be commutative")
	}
	if !OpMultiply.Info().Associative {
		t.Error("BH_MULTIPLY must be associative")
	}
	if got := OpAdd.Info().Identity; !OpAdd.Info().HasIdentity || got != 0 {
		t.Errorf("BH_ADD identity = %v, want 0", got)
	}
	if got := OpMultiply.Info().Identity; !OpMultiply.Info().HasIdentity || got != 1 {
		t.Errorf("BH_MULTIPLY identity = %v, want 1", got)
	}
	if got := OpPower.Info().Identity; !OpPower.Info().HasIdentity || got != 1 {
		t.Errorf("BH_POWER identity = %v, want 1", got)
	}
	if OpMaximum.Info().HasIdentity {
		t.Error("BH_MAXIMUM has no dtype-independent identity")
	}
}

func TestPowerCostExceedsMultiply(t *testing.T) {
	// The whole point of power expansion (paper eq. (1)): a POWER sweep
	// must cost more than a handful of MULTIPLY sweeps in the cost model.
	if OpPower.Info().Cost <= 5*OpMultiply.Info().Cost {
		t.Errorf("cost(POWER)=%v should far exceed cost(MULTIPLY)=%v",
			OpPower.Info().Cost, OpMultiply.Info().Cost)
	}
}

func TestElementwise(t *testing.T) {
	tests := []struct {
		op   Opcode
		want bool
	}{
		{OpAdd, true},
		{OpSqrt, true},
		{OpIdentity, true},
		{OpRange, true},
		{OpRandom, false},
		{OpAddReduce, false},
		{OpSync, false},
		{OpMatmul, false},
	}
	for _, tt := range tests {
		if got := tt.op.Elementwise(); got != tt.want {
			t.Errorf("%s.Elementwise() = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestReduceBase(t *testing.T) {
	tests := []struct {
		op   Opcode
		base Opcode
		ok   bool
	}{
		{OpAddReduce, OpAdd, true},
		{OpMultiplyReduce, OpMultiply, true},
		{OpMinimumReduce, OpMinimum, true},
		{OpMaximumReduce, OpMaximum, true},
		{OpLogicalAndReduce, OpLogicalAnd, true},
		{OpLogicalOrReduce, OpLogicalOr, true},
		{OpAddAccumulate, OpAdd, true},
		{OpMultiplyAccumulate, OpMultiply, true},
		{OpAdd, 0, false},
		{OpSync, 0, false},
	}
	for _, tt := range tests {
		base, ok := tt.op.ReduceBase()
		if base != tt.base || ok != tt.ok {
			t.Errorf("%s.ReduceBase() = %v, %v; want %v, %v", tt.op, base, ok, tt.base, tt.ok)
		}
	}
}

func TestInvalidOpcode(t *testing.T) {
	if Opcode(0).Valid() || Opcode(9999).Valid() {
		t.Error("invalid opcodes reported valid")
	}
	if got := Opcode(9999).String(); !strings.Contains(got, "INVALID") {
		t.Errorf("invalid opcode String = %q", got)
	}
	if _, err := ParseOpcode("BH_BOGUS"); err == nil {
		t.Error("ParseOpcode accepted BH_BOGUS")
	}
}
