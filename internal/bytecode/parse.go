package bytecode

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bohrium/internal/tensor"
)

// ErrParse wraps all assembler syntax errors.
var ErrParse = errors.New("bytecode: parse error")

// Parse assembles a textual byte-code listing into a Program. The grammar
// is the paper's listing format plus ".reg" declarations:
//
//	.reg a0 float64 10            # register a0: 10 float64 elements
//	BH_IDENTITY a0 [0:10:1] 0
//	BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//	BH_ADD_REDUCE a1 a0 axis=0
//	BH_SYNC a0
//
// Views are optional ("I assume the view is the same for all registers",
// paper §3): a bare register name denotes the full contiguous 1-D view of
// its declaration. Registers used with explicit views need no declaration;
// they are auto-declared as float64 sized to the largest index touched.
// '#' starts a comment. Constants: integers ("3"), floats ("3.5", "1.0",
// "1e-3"), booleans ("true"/"false").
func Parse(src string) (*Program, error) {
	p, _, err := ParseNames(src)
	return p, err
}

// ParseNames is Parse that additionally returns the listing's register
// name → id mapping (declared and auto-declared registers alike). Hosts
// that address registers by their source name after execution — the bhd
// wire protocol's GET /arrays/{reg} — need the mapping because ids are
// assigned in declaration order, which a listing's names need not follow.
func ParseNames(src string) (*Program, map[string]RegID, error) {
	ps := &parseState{
		prog:     NewProgram(),
		declared: map[string]RegID{},
		pending:  map[string]*pendingReg{},
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := ps.parseLine(line); err != nil {
			return nil, nil, fmt.Errorf("%w: line %d: %w", ErrParse, lineNo+1, err)
		}
	}
	ps.resolvePending()
	names := make(map[string]RegID, len(ps.declared)+len(ps.pending))
	for name, id := range ps.declared {
		names[name] = id
	}
	for name, pend := range ps.pending {
		names[name] = pend.id
	}
	return ps.prog, names, nil
}

// MustParse is Parse for known-good sources in tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// pendingReg tracks a register that was used before (or without) an
// explicit declaration; its length becomes the largest index touched + 1.
type pendingReg struct {
	id    RegID
	maxHi int
}

type parseState struct {
	prog     *Program
	declared map[string]RegID
	pending  map[string]*pendingReg
}

func (ps *parseState) parseLine(line string) error {
	tokens := strings.Fields(line)
	if strings.HasPrefix(tokens[0], ".") {
		return ps.parseDirective(tokens)
	}
	op, err := ParseOpcode(tokens[0])
	if err != nil {
		return err
	}
	in := Instruction{Op: op}
	rest := tokens[1:]

	// Trailing axis= applies to reductions and scans.
	if len(rest) > 0 && strings.HasPrefix(rest[len(rest)-1], "axis=") {
		axis, err := strconv.Atoi(strings.TrimPrefix(rest[len(rest)-1], "axis="))
		if err != nil {
			return fmt.Errorf("bad axis: %w", err)
		}
		in.Axis = axis
		rest = rest[:len(rest)-1]
	}

	operands := make([]Operand, 0, 3)
	for len(rest) > 0 {
		opnd, n, err := ps.parseOperand(rest)
		if err != nil {
			return err
		}
		operands = append(operands, opnd)
		rest = rest[n:]
	}
	if op != OpNone && len(operands) == 0 {
		return fmt.Errorf("%s needs a result operand", op)
	}
	if len(operands) > 3 {
		return fmt.Errorf("%s has %d operands, max 3", op, len(operands))
	}
	if len(operands) > 0 {
		in.Out = operands[0]
	}
	if len(operands) > 1 {
		in.In1 = operands[1]
	}
	if len(operands) > 2 {
		in.In2 = operands[2]
	}
	ps.prog.Emit(in)
	return nil
}

func (ps *parseState) parseDirective(tokens []string) error {
	switch tokens[0] {
	case ".in", ".out":
		if len(tokens) != 2 {
			return fmt.Errorf("%s wants one register name", tokens[0])
		}
		id, ok := ps.declared[tokens[1]]
		if !ok {
			return fmt.Errorf("%s %s must follow its .reg declaration", tokens[0], tokens[1])
		}
		if tokens[0] == ".in" {
			ps.prog.MarkInput(id)
		} else {
			ps.prog.MarkOutput(id)
		}
		return nil
	case ".reg":
		if len(tokens) != 4 {
			return fmt.Errorf(".reg wants 'name dtype len', got %d tokens", len(tokens)-1)
		}
		name := tokens[1]
		dt, err := tensor.ParseDType(tokens[2])
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(tokens[3])
		if err != nil || n < 0 {
			return fmt.Errorf("bad register length %q", tokens[3])
		}
		if _, dup := ps.declared[name]; dup {
			return fmt.Errorf("register %s declared twice", name)
		}
		if _, used := ps.pending[name]; used {
			return fmt.Errorf("register %s used before its declaration", name)
		}
		id := ps.prog.NewReg(dt, n)
		ps.declared[name] = id
		return nil
	default:
		return fmt.Errorf("unknown directive %s", tokens[0])
	}
}

// parseOperand consumes one operand from tokens, returning it and the
// number of tokens consumed.
func (ps *parseState) parseOperand(tokens []string) (Operand, int, error) {
	tok := tokens[0]
	switch {
	case tok == "true":
		return Const(ConstBool(true)), 1, nil
	case tok == "false":
		return Const(ConstBool(false)), 1, nil
	case looksLikeRegister(tok):
		used := 1
		var viewTokens []string
		for used < len(tokens) && strings.HasPrefix(tokens[used], "[") {
			viewTokens = append(viewTokens, tokens[used])
			used++
		}
		opnd, err := ps.registerOperand(tok, strings.Join(viewTokens, ""))
		if err != nil {
			return Operand{}, 0, err
		}
		return opnd, used, nil
	default:
		c, err := parseConstant(tok)
		if err != nil {
			return Operand{}, 0, err
		}
		return Const(c), 1, nil
	}
}

func looksLikeRegister(tok string) bool {
	if len(tok) < 2 || tok[0] != 'a' {
		return false
	}
	_, err := strconv.Atoi(tok[1:])
	return err == nil
}

func parseConstant(tok string) (Constant, error) {
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return ConstInt(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return ConstFloat(f), nil
	}
	return Constant{}, fmt.Errorf("bad constant %q", tok)
}

func (ps *parseState) registerOperand(name, viewSpec string) (Operand, error) {
	if viewSpec == "" {
		id, ok := ps.declared[name]
		if !ok {
			return Operand{}, fmt.Errorf("register %s used without view needs a .reg declaration", name)
		}
		info, _ := ps.prog.Reg(id)
		return Reg(id, tensor.NewView(tensor.MustShape(info.Len))), nil
	}
	view, err := parseView(viewSpec)
	if err != nil {
		return Operand{}, err
	}
	if id, ok := ps.declared[name]; ok {
		return Reg(id, view), nil
	}
	// Auto-declare: grow the pending register to cover this view.
	pend, ok := ps.pending[name]
	if !ok {
		pend = &pendingReg{id: ps.prog.NewReg(tensor.Float64, 0)}
		ps.pending[name] = pend
	}
	if _, hi, nonEmpty := view.MinMaxIndex(); nonEmpty && hi+1 > pend.maxHi {
		pend.maxHi = hi + 1
	}
	return Reg(pend.id, view), nil
}

func (ps *parseState) resolvePending() {
	for _, pend := range ps.pending {
		ps.prog.Regs[pend.id].Len = pend.maxHi
	}
}

// parseView parses one or more "[start:stop:step]" groups into a View.
// The first group's start carries the linear offset, matching View.String.
func parseView(spec string) (tensor.View, error) {
	var starts, stops, steps []int
	rest := spec
	for rest != "" {
		if rest[0] != '[' {
			return tensor.View{}, fmt.Errorf("bad view %q", spec)
		}
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return tensor.View{}, fmt.Errorf("unterminated view %q", spec)
		}
		parts := strings.Split(rest[1:end], ":")
		if len(parts) != 3 {
			return tensor.View{}, fmt.Errorf("view group %q wants start:stop:step", rest[:end+1])
		}
		vals := make([]int, 3)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return tensor.View{}, fmt.Errorf("bad view number %q", p)
			}
			vals[i] = v
		}
		starts = append(starts, vals[0])
		stops = append(stops, vals[1])
		steps = append(steps, vals[2])
		rest = rest[end+1:]
	}
	shape := make(tensor.Shape, len(starts))
	strides := make([]int, len(starts))
	for i := range starts {
		span := stops[i] - starts[i]
		switch {
		case steps[i] == 0: // broadcast dimension
			if span < 0 {
				return tensor.View{}, fmt.Errorf("view group [%d:%d:%d] has negative extent",
					starts[i], stops[i], steps[i])
			}
			shape[i] = span
			strides[i] = 0
		case span%steps[i] != 0 || span/steps[i] < 0:
			return tensor.View{}, fmt.Errorf("view group [%d:%d:%d] has non-integral extent",
				starts[i], stops[i], steps[i])
		default:
			shape[i] = span / steps[i]
			strides[i] = steps[i]
		}
	}
	offset := 0
	if len(starts) > 0 {
		offset = starts[0]
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] != 0 {
			return tensor.View{}, fmt.Errorf("view %q: only the leading group may carry an offset", spec)
		}
	}
	return tensor.View{Offset: offset, Shape: shape, Strides: strides}, nil
}
