package bytecode

import (
	"strings"
	"testing"

	"bohrium/internal/tensor"
)

// buildListing2 constructs the paper's Listing 2 program through the
// builder API: zeros(10), three += 1, sync.
func buildListing2() *Program {
	p := NewProgram()
	a0 := p.NewReg(tensor.Float64, 10)
	v := tensor.NewView(tensor.MustShape(10))
	p.EmitIdentity(Reg(a0, v), Const(ConstInt(0)))
	for i := 0; i < 3; i++ {
		p.EmitBinary(OpAdd, Reg(a0, v), Reg(a0, v), Const(ConstInt(1)))
	}
	p.EmitSync(Reg(a0, v))
	return p
}

func TestListing2Disassembly(t *testing.T) {
	// The disassembler must reproduce the paper's Listing 2 line for line.
	want := strings.Join([]string{
		"BH_IDENTITY a0 [0:10:1] 0",
		"BH_ADD a0 [0:10:1] a0 [0:10:1] 1",
		"BH_ADD a0 [0:10:1] a0 [0:10:1] 1",
		"BH_ADD a0 [0:10:1] a0 [0:10:1] 1",
		"BH_SYNC a0 [0:10:1]",
		"",
	}, "\n")
	if got := buildListing2().String(); got != want {
		t.Errorf("disassembly:\n%s\nwant:\n%s", got, want)
	}
}

func TestProgramValidateListing2(t *testing.T) {
	if err := buildListing2().Validate(); err != nil {
		t.Fatalf("Listing 2 program invalid: %v", err)
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := buildListing2()
	c := p.Clone()
	c.Instrs[1].Op = OpMultiply
	c.Instrs[1].In2 = Const(ConstInt(9))
	c.Instrs[0].Out.View.Shape[0] = 5
	if p.Instrs[1].Op != OpAdd {
		t.Error("clone shares instruction storage")
	}
	if p.Instrs[0].Out.View.Shape[0] != 10 {
		t.Error("clone shares view shape storage")
	}
}

func TestCountOp(t *testing.T) {
	p := buildListing2()
	if got := p.CountOp(OpAdd); got != 3 {
		t.Errorf("CountOp(BH_ADD) = %d, want 3", got)
	}
	if got := p.CountOp(OpSync); got != 1 {
		t.Errorf("CountOp(BH_SYNC) = %d, want 1", got)
	}
	if got := p.CountKind(KindBinary); got != 3 {
		t.Errorf("CountKind(Binary) = %d, want 3", got)
	}
}

func TestWorkEstimate(t *testing.T) {
	p := buildListing2()
	// 1 identity sweep + 3 add sweeps of 10 elements = 40 cost units.
	if got := p.WorkEstimate(); got != 40 {
		t.Errorf("WorkEstimate = %v, want 40", got)
	}
}

func TestInstrCostExtension(t *testing.T) {
	p := NewProgram()
	m := 8
	a := p.NewReg(tensor.Float64, m*m)
	out := p.NewReg(tensor.Float64, m*m)
	v2 := tensor.NewView(tensor.MustShape(m, m))
	in := Instruction{Op: OpInverse, Out: Reg(out, v2), In1: Reg(a, v2)}
	if got, want := InstrCost(&in), 2.0*8*8*8; got != want {
		t.Errorf("inverse cost = %v, want %v", got, want)
	}
	solve := Instruction{Op: OpSolve, Out: Reg(out, v2), In1: Reg(a, v2), In2: Reg(a, v2)}
	if InstrCost(&solve) >= InstrCost(&in)+2.0*8*8*8 {
		t.Error("solve should be cheaper than inverse + matmul")
	}
}

func TestReduceCostUsesInputSize(t *testing.T) {
	p := NewProgram()
	a := p.NewReg(tensor.Float64, 100)
	s := p.NewReg(tensor.Float64, 1)
	in := Instruction{
		Op:  OpAddReduce,
		Out: Reg(s, tensor.NewView(tensor.MustShape(1))),
		In1: Reg(a, tensor.NewView(tensor.MustShape(100))),
	}
	if got := InstrCost(&in); got != 100 {
		t.Errorf("reduce cost = %v, want 100 (input sweep)", got)
	}
}

func TestConstants(t *testing.T) {
	ci := ConstInt(3)
	if !ci.IsIntegral() || ci.Float() != 3 || ci.Int() != 3 {
		t.Error("ConstInt(3) misbehaves")
	}
	cf := ConstFloat(3.5)
	if cf.IsIntegral() {
		t.Error("3.5 reported integral")
	}
	if ConstFloat(10).IsIntegral() != true {
		t.Error("10.0 should be integral")
	}
	cb := ConstBool(true)
	if cb.Float() != 1 || cb.Int() != 1 {
		t.Error("true != 1")
	}
	if ci.String() != "3" {
		t.Errorf("int const prints %q", ci.String())
	}
	if ConstFloat(10).String() != "10.0" {
		t.Errorf("float const prints %q, want 10.0", ConstFloat(10).String())
	}
	if cb.String() != "true" {
		t.Errorf("bool const prints %q", cb.String())
	}
	if !ci.Equal(ConstInt(3)) || ci.Equal(ConstInt(4)) || ci.Equal(ConstFloat(3)) {
		t.Error("Constant.Equal misbehaves")
	}
	cu := ConstOf(tensor.Uint8, 7)
	if cu.DType != tensor.Uint8 || cu.Int() != 7 {
		t.Error("ConstOf uint8 misbehaves")
	}
	if ConstOf(tensor.Bool, 2).Int() != 1 {
		t.Error("ConstOf bool should clamp")
	}
	if ConstOf(tensor.Float32, 1.5).Float() != 1.5 {
		t.Error("ConstOf float32 misbehaves")
	}
}

func TestInstructionAccessors(t *testing.T) {
	v := tensor.NewView(tensor.MustShape(4))
	in := Instruction{Op: OpAdd, Out: Reg(0, v), In1: Reg(1, v), In2: Const(ConstInt(1))}
	if len(in.Inputs()) != 2 {
		t.Error("Inputs() lost an operand")
	}
	if !in.ReadsReg(1) || in.ReadsReg(0) {
		t.Error("ReadsReg wrong")
	}
	if !in.WritesReg(0) || in.WritesReg(1) {
		t.Error("WritesReg wrong")
	}
	sync := Instruction{Op: OpSync, Out: Reg(0, v)}
	if sync.WritesReg(0) {
		t.Error("SYNC must not count as a write")
	}
	unary := Instruction{Op: OpSqrt, Out: Reg(0, v), In1: Reg(1, v)}
	if len(unary.Inputs()) != 1 {
		t.Error("unary Inputs() wrong")
	}
}

func TestRegString(t *testing.T) {
	if RegID(7).String() != "a7" {
		t.Errorf("RegID(7) prints %q", RegID(7).String())
	}
}
