package bytecode

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"bohrium/internal/tensor"
)

// listing2Source is the paper's Listing 2, verbatim (modulo the spacing the
// assembler tokenizer ignores).
const listing2Source = `
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`

func TestParseListing2(t *testing.T) {
	p, err := Parse(listing2Source)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("parsed %d instrs, want 5", p.Len())
	}
	wantOps := []Opcode{OpIdentity, OpAdd, OpAdd, OpAdd, OpSync}
	for i, op := range wantOps {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, p.Instrs[i].Op, op)
		}
	}
	add := p.Instrs[1]
	if !add.Out.IsReg() || add.Out.Reg != 0 {
		t.Error("result register wrong")
	}
	if got := add.Out.View.String(); got != "[0:10:1]" {
		t.Errorf("result view = %s", got)
	}
	if !add.In2.IsConst() || add.In2.Const.Int() != 1 {
		t.Error("constant operand wrong")
	}
	// Auto-declared register sized to the view.
	ri, ok := p.Reg(0)
	if !ok || ri.Len != 10 || ri.DType != tensor.Float64 {
		t.Errorf("auto-declared reg = %+v", ri)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("parsed Listing 2 invalid: %v", err)
	}
}

func TestParseListing3Optimized(t *testing.T) {
	// Paper Listing 3: the optimized form, using bare registers under a
	// declaration ("I assume the view is the same for all registers").
	src := `
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 3
BH_SYNC a0
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("parsed %d instrs, want 3", p.Len())
	}
	if got := p.Instrs[1].In2.Const.Int(); got != 3 {
		t.Errorf("merged constant = %d, want 3", got)
	}
	if got := p.Instrs[1].Out.View.Size(); got != 10 {
		t.Errorf("bare register view size = %d, want 10", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	// Listing 4 carries inline comments ("# x^2").
	src := `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 1   # initialize the tensor , x
BH_MULTIPLY a1 a0 a0 # x^2
BH_SYNC a1
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("parsed %d instrs, want 3", p.Len())
	}
}

func TestParseConstKinds(t *testing.T) {
	src := `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_ADD a0 a0 2.5
BH_ADD a0 a0 1e2
BH_MULTIPLY a0 a0 true
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].In1.Const.DType != tensor.Int64 {
		t.Error("bare integer should parse as int64")
	}
	if p.Instrs[1].In2.Const.DType != tensor.Float64 || p.Instrs[1].In2.Const.Float() != 2.5 {
		t.Error("2.5 should parse as float64")
	}
	if p.Instrs[2].In2.Const.Float() != 100 {
		t.Error("1e2 should parse as 100")
	}
	if p.Instrs[3].In2.Const.DType != tensor.Bool {
		t.Error("true should parse as bool")
	}
}

func TestParseMultiDimView(t *testing.T) {
	src := `BH_IDENTITY a0 [0:12:4][0:4:1] 0`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v := p.Instrs[0].Out.View
	if !v.Shape.Equal(tensor.MustShape(3, 4)) {
		t.Errorf("shape = %v, want (3, 4)", v.Shape)
	}
	if v.Strides[0] != 4 || v.Strides[1] != 1 {
		t.Errorf("strides = %v", v.Strides)
	}
	// Space-separated view groups parse identically.
	p2, err := Parse(`BH_IDENTITY a0 [0:12:4] [0:4:1] 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Instrs[0].Out.View.Equal(v) {
		t.Error("space-separated view groups differ")
	}
}

func TestParseAxis(t *testing.T) {
	src := `
.reg a0 float64 12
.reg a1 float64 3
BH_IDENTITY a0 [0:12:4][0:4:1] 0
BH_ADD_REDUCE a1 [0:3:1] a0 [0:12:4][0:4:1] axis=1
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Axis != 1 {
		t.Errorf("axis = %d, want 1", p.Instrs[1].Axis)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown opcode", "BH_BOGUS a0 [0:4:1] 0"},
		{"bad view", "BH_IDENTITY a0 [0:4] 0"},
		{"unterminated view", "BH_IDENTITY a0 [0:4:1 0"},
		{"bad constant", "BH_IDENTITY a0 [0:4:1] zebra"},
		{"bare undeclared register", "BH_IDENTITY a0 0"},
		{"double declaration", ".reg a0 float64 4\n.reg a0 float64 4"},
		{"declaration after use", "BH_IDENTITY a0 [0:4:1] 0\n.reg a0 float64 4"},
		{"bad directive", ".bogus a0"},
		{"bad dtype", ".reg a0 quaternion 4"},
		{"bad reg len", ".reg a0 float64 ten"},
		{"bad axis", ".reg a0 float64 4\nBH_IDENTITY a0 0\nBH_ADD_REDUCE a0 a0 axis=x"},
		{"too many operands", "BH_ADD a0 [0:4:1] a0 [0:4:1] 1 2"},
		{"missing result", "BH_SYNC"},
		{"offset in trailing group", "BH_IDENTITY a0 [0:12:4][2:6:1] 0"},
		{"non-integral extent", "BH_IDENTITY a0 [0:5:2] 0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tt.src)
			}
			if !errors.Is(err, ErrParse) {
				t.Errorf("error %v is not ErrParse", err)
			}
		})
	}
}

func TestDumpParseRoundTrip(t *testing.T) {
	p := buildListing2()
	text := p.Dump()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if !programsEqual(p, q) {
		t.Errorf("round trip changed program:\n%s\nvs\n%s", p.Dump(), q.Dump())
	}
}

func TestDumpParseRoundTripRandomPrograms(t *testing.T) {
	// Property: Dump then Parse reproduces the program, for arbitrary
	// generated elementwise programs.
	f := func(seed uint64, nInstr uint8) bool {
		p := randomElementwiseProgram(seed, int(nInstr%12)+1)
		q, err := Parse(p.Dump())
		if err != nil {
			return false
		}
		return programsEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomElementwiseProgram builds a small valid program from a seed. Shared
// with the rewrite soundness property tests.
func randomElementwiseProgram(seed uint64, n int) *Program {
	r := tensor.NewSplitMix64(seed)
	p := NewProgram()
	regLen := r.Intn(16) + 1
	nRegs := r.Intn(3) + 1
	regs := make([]RegID, nRegs)
	view := tensor.NewView(tensor.MustShape(regLen))
	for i := range regs {
		regs[i] = p.NewReg(tensor.Float64, regLen)
		p.EmitIdentity(Reg(regs[i], view), Const(ConstInt(int64(r.Intn(5)))))
	}
	binOps := []Opcode{OpAdd, OpSubtract, OpMultiply, OpMaximum, OpMinimum}
	unOps := []Opcode{OpSqrt, OpAbsolute, OpFloor, OpNegative}
	for i := 0; i < n; i++ {
		out := regs[r.Intn(nRegs)]
		switch r.Intn(3) {
		case 0:
			op := binOps[r.Intn(len(binOps))]
			p.EmitBinary(op, Reg(out, view), Reg(regs[r.Intn(nRegs)], view), Const(ConstInt(int64(r.Intn(7)))))
		case 1:
			op := binOps[r.Intn(len(binOps))]
			p.EmitBinary(op, Reg(out, view), Reg(regs[r.Intn(nRegs)], view), Reg(regs[r.Intn(nRegs)], view))
		default:
			op := unOps[r.Intn(len(unOps))]
			p.EmitUnary(op, Reg(out, view), Reg(regs[r.Intn(nRegs)], view))
		}
	}
	for i := range regs {
		p.EmitSync(Reg(regs[i], view))
	}
	return p
}

func programsEqual(a, b *Program) bool {
	if len(a.Regs) != len(b.Regs) || len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Regs {
		if a.Regs[i] != b.Regs[i] {
			return false
		}
	}
	return a.String() == b.String()
}

func TestParseNegativeStrideView(t *testing.T) {
	// A reversed view prints as [9:-1:-1]; the parser must accept it.
	v := tensor.View{Offset: 9, Shape: tensor.MustShape(10), Strides: []int{-1}}
	if v.String() != "[9:-1:-1]" {
		t.Fatalf("reversed view prints %q", v.String())
	}
	p, err := Parse(".reg a0 float64 10\nBH_IDENTITY a0 [9:-1:-1] 0")
	if err != nil {
		t.Fatal(err)
	}
	got := p.Instrs[0].Out.View
	if got.Offset != 9 || got.Shape[0] != 10 || got.Strides[0] != -1 {
		t.Errorf("parsed reversed view = %+v", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("reversed view program invalid: %v", err)
	}
}

func TestParseBroadcastView(t *testing.T) {
	p, err := Parse(".reg a0 float64 4\nBH_IDENTITY a0 [0:4:0] 0")
	if err != nil {
		t.Fatal(err)
	}
	v := p.Instrs[0].Out.View
	if v.Strides[0] != 0 || v.Shape[0] != 4 {
		t.Errorf("broadcast view = %+v", v)
	}
	if !strings.Contains(v.String(), ":0]") {
		t.Errorf("broadcast view prints %q", v.String())
	}
}

func TestDumpRoundTripInputsOutputs(t *testing.T) {
	p := NewProgram()
	a := p.NewReg(tensor.Float64, 4)
	b := p.NewReg(tensor.Float64, 4)
	v := tensor.NewView(tensor.MustShape(4))
	p.MarkInput(a)
	p.MarkOutput(b)
	p.EmitIdentity(Reg(b, v), Reg(a, v))
	text := p.Dump()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if !q.IsInput(a) || !q.IsOutput(b) {
		t.Errorf("inputs/outputs lost in round trip:\n%s", q.Dump())
	}
	if err := q.Validate(); err != nil {
		t.Error(err)
	}
}
