// Package bytecode defines the Bohrium vector byte-code intermediate
// language: op-codes, register operands with strided views, constants,
// whole programs, and a textual (dis)assembler that reproduces the listing
// syntax used in the paper ("BH_ADD a0 [0:10:1] a0 [0:10:1] 1").
//
// A byte-code instruction has an op-code, one result operand, and up to two
// input operands which are registers or constants (paper §3). Programs are
// flat instruction sequences; all structure (loops over elements) is
// implicit in the operand views. Registers name base arrays, not SSA
// values — an instruction may redefine a register any number of times,
// and views let several operands alias disjoint or overlapping windows
// of one register, which is exactly what the rewrite engine's
// interference analysis and the VM's fusion planner reason about.
//
// The textual format accepted by Parse and emitted by Program.Dump is
// specified, with one runnable example per opcode family, in
// docs/bytecode.md at the repository root.
//
// Registering a new op-code is a table edit: add the constant before
// numOpcodes, fill its Info row in the infos table (name, kind, arity,
// algebraic properties, relative cost), and give it per-element
// semantics in the VM's kernel tables (internal/vm/kernels.go). Every
// execution tier — interpreter, fused raw-slice loops, strided sweeps,
// reduction epilogues — and the (dis)assembler pick the new op-code up
// from those two tables.
package bytecode

import "fmt"

// Opcode identifies a byte-code operation.
type Opcode int

// Opcode kinds classify how the VM executes an instruction and how the
// rewrite engine may reason about it.
type OpKind int

// Instruction classes.
const (
	// KindSystem instructions manage runtime state (SYNC, FREE, NONE).
	KindSystem OpKind = iota + 1
	// KindGenerator instructions produce values without tensor inputs
	// (IDENTITY from a constant, RANGE, RANDOM).
	KindGenerator
	// KindUnary instructions map one input elementwise.
	KindUnary
	// KindBinary instructions map two inputs elementwise.
	KindBinary
	// KindReduction instructions fold one axis of the input.
	KindReduction
	// KindScan instructions compute prefix operations along one axis.
	KindScan
	// KindExtension instructions invoke an extension method (linear
	// algebra in this reproduction), Bohrium's escape hatch for
	// operations that do not fit the elementwise model.
	KindExtension
)

// The byte-code op-codes. The set mirrors the core of Bohrium's opcode
// table: system codes, generators, elementwise arithmetic, comparisons,
// logicals, transcendentals, reductions, scans, and the extension methods
// the paper's equation (2) needs (matmul / LU / solve / inverse).
const (
	OpNone Opcode = iota + 1

	// System.
	OpSync
	OpFree

	// Generators.
	OpIdentity
	OpRange
	OpRandom

	// Binary arithmetic.
	OpAdd
	OpSubtract
	OpMultiply
	OpDivide
	OpPower
	OpMod
	OpMaximum
	OpMinimum
	OpArctan2

	// Comparisons (produce bool).
	OpEqual
	OpNotEqual
	OpLess
	OpLessEqual
	OpGreater
	OpGreaterEqual

	// Logical / bitwise.
	OpLogicalAnd
	OpLogicalOr
	OpLogicalXor
	OpBitwiseAnd
	OpBitwiseOr
	OpBitwiseXor
	OpLeftShift
	OpRightShift

	// Unary.
	OpNegative
	OpAbsolute
	OpLogicalNot
	OpInvert
	OpSqrt
	OpExp
	OpExpm1
	OpLog
	OpLog2
	OpLog10
	OpLog1p
	OpSin
	OpCos
	OpTan
	OpArcsin
	OpArccos
	OpArctan
	OpSinh
	OpCosh
	OpTanh
	OpFloor
	OpCeil
	OpRint
	OpTrunc
	OpSign

	// Reductions.
	OpAddReduce
	OpMultiplyReduce
	OpMinimumReduce
	OpMaximumReduce
	OpLogicalAndReduce
	OpLogicalOrReduce
	// Index reductions: fold one axis to the int64 index of its extreme
	// element (first occurrence wins on ties; a NaN wins over any number,
	// NumPy-style). They have no ReduceBase — the accumulator carries a
	// (value, index) pair, not a plain folded value — so rewrite rules and
	// scan paths keyed on ReduceBase skip them automatically.
	OpArgminReduce
	OpArgmaxReduce

	// Scans.
	OpAddAccumulate
	OpMultiplyAccumulate

	// Extension methods (linear algebra substrate, paper eq. (2)).
	OpMatmul
	OpLU
	OpSolve
	OpInverse

	numOpcodes // sentinel, keep last
)

// Info describes the static properties of an op-code.
type Info struct {
	// Name is the canonical textual form, e.g. "BH_ADD".
	Name string
	// Kind classifies execution behaviour.
	Kind OpKind
	// Arity is the number of tensor/constant inputs (0, 1 or 2).
	Arity int
	// Commutative reports whether op(a, b) == op(b, a).
	Commutative bool
	// Associative reports whether op(op(a,b),c) == op(a,op(b,c)).
	Associative bool
	// HasIdentity reports whether the operation has a neutral element.
	HasIdentity bool
	// Identity is the neutral element when HasIdentity (0 for add, 1 for
	// multiply, ...). Used by the identity-elimination rewrite rules.
	Identity float64
	// Cost is the relative per-element cost used by the cost model (an
	// elementwise add sweep is 1). Extension methods carry superlinear
	// costs computed separately by the cost model.
	Cost float64
	// Bool reports whether the op always produces a bool result.
	Bool bool
}

var infos = [numOpcodes]Info{
	OpNone: {Name: "BH_NONE", Kind: KindSystem, Arity: 0, Cost: 0},
	OpSync: {Name: "BH_SYNC", Kind: KindSystem, Arity: 0, Cost: 0},
	OpFree: {Name: "BH_FREE", Kind: KindSystem, Arity: 0, Cost: 0},

	OpIdentity: {Name: "BH_IDENTITY", Kind: KindGenerator, Arity: 1, Cost: 1},
	OpRange:    {Name: "BH_RANGE", Kind: KindGenerator, Arity: 0, Cost: 1},
	OpRandom:   {Name: "BH_RANDOM", Kind: KindGenerator, Arity: 2, Cost: 4},

	OpAdd:      {Name: "BH_ADD", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 0, Cost: 1},
	OpSubtract: {Name: "BH_SUBTRACT", Kind: KindBinary, Arity: 2, HasIdentity: true, Identity: 0, Cost: 1},
	OpMultiply: {Name: "BH_MULTIPLY", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 1, Cost: 1},
	OpDivide:   {Name: "BH_DIVIDE", Kind: KindBinary, Arity: 2, HasIdentity: true, Identity: 1, Cost: 4},
	OpPower:    {Name: "BH_POWER", Kind: KindBinary, Arity: 2, HasIdentity: true, Identity: 1, Cost: 24},
	OpMod:      {Name: "BH_MOD", Kind: KindBinary, Arity: 2, Cost: 4},
	OpMaximum:  {Name: "BH_MAXIMUM", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, Cost: 1},
	OpMinimum:  {Name: "BH_MINIMUM", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, Cost: 1},
	OpArctan2:  {Name: "BH_ARCTAN2", Kind: KindBinary, Arity: 2, Cost: 12},

	OpEqual:        {Name: "BH_EQUAL", Kind: KindBinary, Arity: 2, Commutative: true, Cost: 1, Bool: true},
	OpNotEqual:     {Name: "BH_NOT_EQUAL", Kind: KindBinary, Arity: 2, Commutative: true, Cost: 1, Bool: true},
	OpLess:         {Name: "BH_LESS", Kind: KindBinary, Arity: 2, Cost: 1, Bool: true},
	OpLessEqual:    {Name: "BH_LESS_EQUAL", Kind: KindBinary, Arity: 2, Cost: 1, Bool: true},
	OpGreater:      {Name: "BH_GREATER", Kind: KindBinary, Arity: 2, Cost: 1, Bool: true},
	OpGreaterEqual: {Name: "BH_GREATER_EQUAL", Kind: KindBinary, Arity: 2, Cost: 1, Bool: true},

	OpLogicalAnd: {Name: "BH_LOGICAL_AND", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 1, Cost: 1, Bool: true},
	OpLogicalOr:  {Name: "BH_LOGICAL_OR", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 0, Cost: 1, Bool: true},
	OpLogicalXor: {Name: "BH_LOGICAL_XOR", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 0, Cost: 1, Bool: true},
	OpBitwiseAnd: {Name: "BH_BITWISE_AND", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, Cost: 1},
	OpBitwiseOr:  {Name: "BH_BITWISE_OR", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 0, Cost: 1},
	OpBitwiseXor: {Name: "BH_BITWISE_XOR", Kind: KindBinary, Arity: 2, Commutative: true, Associative: true, HasIdentity: true, Identity: 0, Cost: 1},
	OpLeftShift:  {Name: "BH_LEFT_SHIFT", Kind: KindBinary, Arity: 2, HasIdentity: true, Identity: 0, Cost: 1},
	OpRightShift: {Name: "BH_RIGHT_SHIFT", Kind: KindBinary, Arity: 2, HasIdentity: true, Identity: 0, Cost: 1},

	OpNegative:   {Name: "BH_NEGATIVE", Kind: KindUnary, Arity: 1, Cost: 1},
	OpAbsolute:   {Name: "BH_ABSOLUTE", Kind: KindUnary, Arity: 1, Cost: 1},
	OpLogicalNot: {Name: "BH_LOGICAL_NOT", Kind: KindUnary, Arity: 1, Cost: 1, Bool: true},
	OpInvert:     {Name: "BH_INVERT", Kind: KindUnary, Arity: 1, Cost: 1},
	OpSqrt:       {Name: "BH_SQRT", Kind: KindUnary, Arity: 1, Cost: 4},
	OpExp:        {Name: "BH_EXP", Kind: KindUnary, Arity: 1, Cost: 8},
	OpExpm1:      {Name: "BH_EXPM1", Kind: KindUnary, Arity: 1, Cost: 8},
	OpLog:        {Name: "BH_LOG", Kind: KindUnary, Arity: 1, Cost: 8},
	OpLog2:       {Name: "BH_LOG2", Kind: KindUnary, Arity: 1, Cost: 8},
	OpLog10:      {Name: "BH_LOG10", Kind: KindUnary, Arity: 1, Cost: 8},
	OpLog1p:      {Name: "BH_LOG1P", Kind: KindUnary, Arity: 1, Cost: 8},
	OpSin:        {Name: "BH_SIN", Kind: KindUnary, Arity: 1, Cost: 8},
	OpCos:        {Name: "BH_COS", Kind: KindUnary, Arity: 1, Cost: 8},
	OpTan:        {Name: "BH_TAN", Kind: KindUnary, Arity: 1, Cost: 10},
	OpArcsin:     {Name: "BH_ARCSIN", Kind: KindUnary, Arity: 1, Cost: 10},
	OpArccos:     {Name: "BH_ARCCOS", Kind: KindUnary, Arity: 1, Cost: 10},
	OpArctan:     {Name: "BH_ARCTAN", Kind: KindUnary, Arity: 1, Cost: 10},
	OpSinh:       {Name: "BH_SINH", Kind: KindUnary, Arity: 1, Cost: 10},
	OpCosh:       {Name: "BH_COSH", Kind: KindUnary, Arity: 1, Cost: 10},
	OpTanh:       {Name: "BH_TANH", Kind: KindUnary, Arity: 1, Cost: 10},
	OpFloor:      {Name: "BH_FLOOR", Kind: KindUnary, Arity: 1, Cost: 1},
	OpCeil:       {Name: "BH_CEIL", Kind: KindUnary, Arity: 1, Cost: 1},
	OpRint:       {Name: "BH_RINT", Kind: KindUnary, Arity: 1, Cost: 1},
	OpTrunc:      {Name: "BH_TRUNC", Kind: KindUnary, Arity: 1, Cost: 1},
	OpSign:       {Name: "BH_SIGN", Kind: KindUnary, Arity: 1, Cost: 1},

	OpAddReduce:        {Name: "BH_ADD_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1},
	OpMultiplyReduce:   {Name: "BH_MULTIPLY_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1},
	OpMinimumReduce:    {Name: "BH_MINIMUM_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1},
	OpMaximumReduce:    {Name: "BH_MAXIMUM_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1},
	OpLogicalAndReduce: {Name: "BH_LOGICAL_AND_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1, Bool: true},
	OpLogicalOrReduce:  {Name: "BH_LOGICAL_OR_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1, Bool: true},
	OpArgminReduce:     {Name: "BH_ARGMIN_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1},
	OpArgmaxReduce:     {Name: "BH_ARGMAX_REDUCE", Kind: KindReduction, Arity: 1, Cost: 1},

	OpAddAccumulate:      {Name: "BH_ADD_ACCUMULATE", Kind: KindScan, Arity: 1, Cost: 1},
	OpMultiplyAccumulate: {Name: "BH_MULTIPLY_ACCUMULATE", Kind: KindScan, Arity: 1, Cost: 1},

	OpMatmul:  {Name: "BH_MATMUL", Kind: KindExtension, Arity: 2, Cost: 1},
	OpLU:      {Name: "BH_LU", Kind: KindExtension, Arity: 1, Cost: 1},
	OpSolve:   {Name: "BH_SOLVE", Kind: KindExtension, Arity: 2, Cost: 1},
	OpInverse: {Name: "BH_INVERSE", Kind: KindExtension, Arity: 1, Cost: 1},
}

// nameToOp is the immutable name → op-code index, derived once from the
// info table at package initialization.
var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for op := Opcode(1); op < numOpcodes; op++ {
		if infos[op].Name != "" {
			m[infos[op].Name] = op
		}
	}
	return m
}()

// Valid reports whether op is a defined op-code.
func (op Opcode) Valid() bool {
	return op > 0 && op < numOpcodes && infos[op].Name != ""
}

// Info returns the static metadata of op. Calling Info on an invalid
// op-code returns a zero Info.
func (op Opcode) Info() Info {
	if !op.Valid() {
		return Info{}
	}
	return infos[op]
}

// String returns the canonical "BH_*" name.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("BH_INVALID(%d)", int(op))
	}
	return infos[op].Name
}

// ParseOpcode resolves a "BH_*" name to its op-code.
func ParseOpcode(name string) (Opcode, error) {
	if op, ok := nameToOp[name]; ok {
		return op, nil
	}
	return 0, fmt.Errorf("bytecode: unknown op-code %q", name)
}

// Opcodes returns all defined op-codes in declaration order, for table
// driven tests and fuzzing.
func Opcodes() []Opcode {
	out := make([]Opcode, 0, int(numOpcodes)-1)
	for op := Opcode(1); op < numOpcodes; op++ {
		if infos[op].Name != "" {
			out = append(out, op)
		}
	}
	return out
}

// Elementwise reports whether op maps inputs to outputs element-by-element
// (unary, binary, or generator) — the class of instructions the fusion
// engine may merge into a single kernel sweep.
func (op Opcode) Elementwise() bool {
	switch op.Info().Kind {
	case KindUnary, KindBinary, KindGenerator:
		return op != OpRandom // RANDOM is generator-like but stateful per element index
	default:
		return false
	}
}

// ArgReduce reports whether op is an index reduction (BH_ARGMIN_REDUCE /
// BH_ARGMAX_REDUCE): a KindReduction op whose accumulator is a
// (value, index) pair and whose output is always int64, regardless of the
// input dtype. Index reductions have no ReduceBase.
func (op Opcode) ArgReduce() bool {
	return op == OpArgminReduce || op == OpArgmaxReduce
}

// ReduceBase returns the binary op-code a reduction or scan folds with
// (BH_ADD for BH_ADD_REDUCE, ...), and false for other kinds.
func (op Opcode) ReduceBase() (Opcode, bool) {
	switch op {
	case OpAddReduce, OpAddAccumulate:
		return OpAdd, true
	case OpMultiplyReduce, OpMultiplyAccumulate:
		return OpMultiply, true
	case OpMinimumReduce:
		return OpMinimum, true
	case OpMaximumReduce:
		return OpMaximum, true
	case OpLogicalAndReduce:
		return OpLogicalAnd, true
	case OpLogicalOrReduce:
		return OpLogicalOr, true
	default:
		return 0, false
	}
}
