package bytecode

import (
	"errors"
	"fmt"

	"bohrium/internal/tensor"
)

// ErrInvalid wraps all semantic validation errors.
var ErrInvalid = errors.New("bytecode: invalid program")

// Validate checks a program's static semantics: operand arity and kinds,
// view bounds against register declarations, shape compatibility under
// broadcasting, reduction axes, def-before-use, and use-after-free. The VM
// refuses to execute programs that fail validation, and the rewrite engine
// asserts validity is preserved across every pass (a rewrite that produces
// an invalid program is a bug, caught in tests).
func (p *Program) Validate() error {
	live := make([]bool, len(p.Regs))
	for _, r := range p.Inputs {
		if r < 0 || int(r) >= len(p.Regs) {
			return fmt.Errorf("%w: input declares unknown register %s", ErrInvalid, r)
		}
		live[r] = true
	}
	for idx := range p.Instrs {
		if err := p.validateInstr(&p.Instrs[idx], live); err != nil {
			return fmt.Errorf("%w: instr %d (%s): %w", ErrInvalid, idx, p.Instrs[idx].String(), err)
		}
	}
	return nil
}

func (p *Program) validateInstr(in *Instruction, live []bool) error {
	info := in.Op.Info()
	if !in.Op.Valid() {
		return fmt.Errorf("invalid op-code %d", int(in.Op))
	}
	if in.Op == OpNone {
		return nil
	}

	// Every instruction other than NONE names a register result.
	if !in.Out.IsReg() {
		return fmt.Errorf("result operand must be a register")
	}
	if err := p.checkRegOperand(in.Out); err != nil {
		return fmt.Errorf("result: %w", err)
	}

	switch in.Op {
	case OpSync, OpFree:
		if !live[in.Out.Reg] {
			return fmt.Errorf("%s of undefined register %s", info.Name, in.Out.Reg)
		}
		if in.Op == OpFree {
			live[in.Out.Reg] = false
		}
		if in.In1.Kind != OperandNone || in.In2.Kind != OperandNone {
			return fmt.Errorf("%s takes no inputs", info.Name)
		}
		return nil
	}

	inputs := in.Inputs()
	if len(inputs) != info.Arity {
		return fmt.Errorf("%s wants %d inputs, got %d", info.Name, info.Arity, len(inputs))
	}
	for i, opnd := range inputs {
		if !opnd.IsReg() {
			continue
		}
		if err := p.checkRegOperand(opnd); err != nil {
			return fmt.Errorf("input %d: %w", i+1, err)
		}
		if !live[opnd.Reg] {
			return fmt.Errorf("input %d reads undefined or freed register %s", i+1, opnd.Reg)
		}
	}

	if err := p.validateShapes(in, inputs); err != nil {
		return err
	}
	live[in.Out.Reg] = true
	return nil
}

func (p *Program) checkRegOperand(o Operand) error {
	ri, ok := p.Reg(o.Reg)
	if !ok {
		return fmt.Errorf("unknown register %s", o.Reg)
	}
	if err := o.View.Validate(ri.Len); err != nil {
		return err
	}
	return nil
}

func (p *Program) validateShapes(in *Instruction, inputs []Operand) error {
	info := in.Op.Info()
	out := in.Out.View.Shape

	switch info.Kind {
	case KindGenerator:
		if in.Op == OpRandom {
			for i, opnd := range inputs {
				if !opnd.IsConst() {
					return fmt.Errorf("BH_RANDOM input %d must be a constant", i+1)
				}
			}
		}
		if in.Op == OpIdentity && inputs[0].IsReg() {
			return broadcastableTo(inputs[0].View.Shape, out, "input")
		}
		return nil

	case KindUnary, KindBinary:
		for i, opnd := range inputs {
			if !opnd.IsReg() {
				continue
			}
			if err := broadcastableTo(opnd.View.Shape, out, fmt.Sprintf("input %d", i+1)); err != nil {
				return err
			}
		}
		if info.Bool && p.Regs[in.Out.Reg].DType != tensor.Bool {
			return fmt.Errorf("%s result register must be bool, is %s", info.Name, p.Regs[in.Out.Reg].DType)
		}
		return nil

	case KindReduction, KindScan:
		if !inputs[0].IsReg() {
			return fmt.Errorf("%s input must be a register", info.Name)
		}
		src := inputs[0].View.Shape
		if in.Axis < 0 || in.Axis >= src.NDim() {
			return fmt.Errorf("axis %d out of range for %d-d input", in.Axis, src.NDim())
		}
		if info.Kind == KindScan {
			if !out.Equal(src) {
				return fmt.Errorf("scan result shape %v must equal input shape %v", out, src)
			}
			return nil
		}
		want := make(tensor.Shape, 0, src.NDim()-1)
		for d := 0; d < src.NDim(); d++ {
			if d != in.Axis {
				want = append(want, src[d])
			}
		}
		if out.Equal(want) {
			return nil
		}
		// A full reduction may land in a 0-d or 1-element view.
		if len(want) == 0 && out.Size() == 1 {
			return nil
		}
		return fmt.Errorf("reduce result shape %v, want %v", out, want)

	case KindExtension:
		return p.validateExtensionShapes(in, inputs)

	default:
		return nil
	}
}

func (p *Program) validateExtensionShapes(in *Instruction, inputs []Operand) error {
	dims := func(o Operand) tensor.Shape { return o.View.Shape }
	for i, opnd := range inputs {
		if !opnd.IsReg() {
			return fmt.Errorf("%s input %d must be a register", in.Op, i+1)
		}
	}
	out := in.Out.View.Shape
	switch in.Op {
	case OpMatmul:
		a, b := dims(inputs[0]), dims(inputs[1])
		if a.NDim() != 2 || b.NDim() != 2 || out.NDim() != 2 {
			return fmt.Errorf("BH_MATMUL wants 2-d operands")
		}
		if a[1] != b[0] || out[0] != a[0] || out[1] != b[1] {
			return fmt.Errorf("BH_MATMUL shapes %v x %v -> %v do not chain", a, b, out)
		}
	case OpLU, OpInverse:
		a := dims(inputs[0])
		if a.NDim() != 2 || a[0] != a[1] {
			return fmt.Errorf("%s wants a square matrix, got %v", in.Op, a)
		}
		if !out.Equal(a) {
			return fmt.Errorf("%s result shape %v, want %v", in.Op, out, a)
		}
	case OpSolve:
		a, b := dims(inputs[0]), dims(inputs[1])
		if a.NDim() != 2 || a[0] != a[1] {
			return fmt.Errorf("BH_SOLVE coefficient matrix must be square, got %v", a)
		}
		if b.NDim() < 1 || b.NDim() > 2 || b[0] != a[0] {
			return fmt.Errorf("BH_SOLVE right-hand side %v incompatible with %v", b, a)
		}
		if !out.Equal(b) {
			return fmt.Errorf("BH_SOLVE result shape %v, want %v", out, b)
		}
	}
	return nil
}

func broadcastableTo(src, dst tensor.Shape, what string) error {
	if !src.BroadcastableTo(dst) {
		return fmt.Errorf("%s shape %v not broadcastable to result %v", what, src, dst)
	}
	return nil
}
