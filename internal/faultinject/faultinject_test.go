package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestChaosInertWhenUnarmed: every hook is a no-op (and error-free)
// with nothing armed — the always-compiled-in contract.
func TestChaosInertWhenUnarmed(t *testing.T) {
	Reset()
	if err := Error(AllocFail, "any"); err != nil {
		t.Fatalf("unarmed Error = %v, want nil", err)
	}
	Delay(SlowExec, "any") // must not sleep (test would time out under -count)
	Panic(WorkerPanic, "") // must not panic
	now := time.Unix(100, 0)
	if got := Clock(JanitorSkew, "janitor", now); !got.Equal(now) {
		t.Fatalf("unarmed Clock shifted time: %v", got)
	}
	if Fired(AllocFail) != 0 {
		t.Fatalf("Fired counted an unarmed hook")
	}
}

// TestChaosTimesAndDisarm: a Times-bounded fault fires exactly that
// often, Fired counts it, and disarm (idempotent) silences the point.
func TestChaosTimesAndDisarm(t *testing.T) {
	Reset()
	disarm := Arm(AllocFail, Fault{Times: 2, Msg: "boom"})
	defer disarm()

	for i := 0; i < 2; i++ {
		err := Error(AllocFail, "tenant-a")
		if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if err := Error(AllocFail, "tenant-a"); err != nil {
		t.Fatalf("third fire after Times=2: %v", err)
	}
	if got := Fired(AllocFail); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	disarm()
	disarm() // idempotent
	if err := Error(AllocFail, "tenant-a"); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

// TestChaosLabelTargeting: a labeled fault only strikes sites carrying
// that label — the per-tenant isolation the chaos suite depends on.
func TestChaosLabelTargeting(t *testing.T) {
	Reset()
	defer Arm(AllocFail, Fault{Label: "tenant-a", Times: 1})()

	if err := Error(AllocFail, "tenant-b"); err != nil {
		t.Fatalf("wrong-label site fired: %v", err)
	}
	if err := Error(AllocFail, ""); err != nil {
		t.Fatalf("unlabeled site fired a labeled fault: %v", err)
	}
	if err := Error(AllocFail, "tenant-a"); err == nil {
		t.Fatal("matching site did not fire")
	}
	if got := Fired(AllocFail); got != 1 {
		t.Fatalf("Fired = %d, want 1 (misses must not count)", got)
	}
}

// TestChaosCustomError: a fault carrying its own Err returns it
// verbatim, so sites can inject typed sentinel errors.
func TestChaosCustomError(t *testing.T) {
	Reset()
	custom := errors.New("custom failure")
	defer Arm(AllocFail, Fault{Err: custom, Times: 1})()
	if err := Error(AllocFail, "x"); !errors.Is(err, custom) {
		t.Fatalf("Error = %v, want %v", err, custom)
	}
}

// TestChaosDelayAndClock: Delay sleeps at least the configured
// duration; Clock shifts by Skew.
func TestChaosDelayAndClock(t *testing.T) {
	Reset()
	defer Arm(SlowExec, Fault{Delay: 30 * time.Millisecond, Times: 1})()
	start := time.Now()
	Delay(SlowExec, "x")
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("Delay slept %v, want >= 30ms", elapsed)
	}

	defer Arm(JanitorSkew, Fault{Label: "janitor", Skew: time.Hour})()
	now := time.Unix(0, 0)
	if got := Clock(JanitorSkew, "janitor", now); got.Sub(now) != time.Hour {
		t.Fatalf("Clock shifted by %v, want 1h", got.Sub(now))
	}
}

// TestChaosPanicHook: an armed WorkerPanic site panics with the fault's
// message; the default message names the point.
func TestChaosPanicHook(t *testing.T) {
	Reset()
	defer Arm(WorkerPanic, Fault{Times: 1})()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("armed Panic did not panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, string(WorkerPanic)) {
			t.Fatalf("panic value %v does not name the point", v)
		}
	}()
	Panic(WorkerPanic, "x")
}

// TestChaosRearmReplaces: arming a point twice replaces the fault
// without leaking the armed count (the fast-path gate must return to
// zero after one disarm).
func TestChaosRearmReplaces(t *testing.T) {
	Reset()
	Arm(AllocFail, Fault{Times: 1, Msg: "first"})
	disarm := Arm(AllocFail, Fault{Times: 1, Msg: "second"})
	if err := Error(AllocFail, "x"); err == nil || !strings.Contains(err.Error(), "second") {
		t.Fatalf("re-arm did not replace: %v", err)
	}
	disarm()
	if err := Error(AllocFail, "x"); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	if armedCount.Load() != 0 {
		t.Fatalf("armedCount = %d after full disarm, want 0", armedCount.Load())
	}
}
