// Package faultinject is the chaos harness behind bhd's overload and
// failure testing: a registry of named failure points compiled into the
// production binary and completely inert until a test arms them. A site
// in the engine, the backend seam, or the server calls one of the hook
// functions (Error, Delay, Panic, Clock) at the place a real fault
// would strike; the hook is a single atomic load when nothing is armed,
// so shipping the sites costs nothing on the hot path.
//
// Faults are deterministic: an armed fault fires at matching sites
// exactly Times times (or until disarmed), under one mutex, so a test
// arming {Times: 1} knows precisely one victim request sees it. Sites
// carry a label — bhd labels every session's sites with its tenant —
// and a fault with a Label fires only at sites carrying that label,
// which is how the chaos suite injects a failure into one tenant and
// proves the others unaffected.
//
// The registry is process-global (the sites it serves are reached
// through package-level code paths); tests that arm faults must not run
// in parallel with each other and should defer the returned disarm.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one failure site. The constants below are every site
// wired into the repo; Arm accepts any Point so hosts can add their
// own.
type Point string

const (
	// AllocFail strikes register/staging buffer materialization in the
	// engine (vm registerFile.ensure, Machine.AcquireBuffer): the
	// allocation fails with the fault's error instead of returning a
	// buffer.
	AllocFail Point = "alloc-fail"
	// WorkerPanic strikes plan execution (vm.Plan.Execute): the
	// executing goroutine panics, exercising the recovery paths — the
	// server's panic middleware on the sync path, the executor's
	// containment on the async path.
	WorkerPanic Point = "worker-panic"
	// SlowExec strikes plan execution with the fault's Delay before any
	// work happens — a deliberately slow plan for deadline and overload
	// tests.
	SlowExec Point = "slow-exec"
	// ExecStall strikes the backend executor loop (backend.Executor):
	// the executor goroutine sleeps the fault's Delay before taking the
	// next job, so the queue backs up and admission control must shed.
	ExecStall Point = "executor-stall"
	// JanitorSkew strikes the idle reaper's clock (server.ReapIdle):
	// the observed time is shifted by the fault's Skew, so sessions age
	// out early (positive skew) or never (negative).
	JanitorSkew Point = "janitor-skew"
	// XPlanDisarm strikes the front end's cross-plan deferral decision
	// (bohrium.Context.Submit): a batch that would have been held back
	// and combined with the next one takes the ordinary single-plan path
	// instead, counting an XPlanDisarms stat. The chaos suite uses it to
	// prove a stream stays bit-for-bit correct when sequence fusion is
	// yanked away mid-iteration.
	XPlanDisarm Point = "xplan-disarm"
)

// ErrInjected is the sentinel every injected error wraps (unless the
// fault carries its own Err), so tests can errors.Is their way past any
// wrapping the real error paths add.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault configures one armed point. The zero value fires at every
// matching site forever with the default injected error; most tests set
// Label and Times to pick one victim.
type Fault struct {
	// Label restricts the fault to sites carrying this label (bhd labels
	// a session's engine sites with its tenant, the janitor site is
	// "janitor"). Empty matches every site.
	Label string
	// Times caps how often the fault fires; 0 means until disarmed.
	Times int
	// Err is what Error sites return; nil selects ErrInjected wrapped
	// with Msg.
	Err error
	// Delay is how long Delay sites sleep.
	Delay time.Duration
	// Skew is how far Clock sites shift the observed time.
	Skew time.Duration
	// Msg customizes the default error/panic text.
	Msg string
}

// armedCount gates every hook: zero means nothing is armed anywhere and
// the hook returns after one atomic load.
var armedCount atomic.Int64

var (
	mu    sync.Mutex
	table = map[Point]*entry{}
	fired = map[Point]int{}
)

type entry struct {
	f    Fault
	left int // remaining fires; -1 = unlimited
}

// Arm installs f at point p (replacing any fault already armed there)
// and returns its idempotent disarm. Tests defer the disarm so a
// failing test cannot leak an armed fault into the next one.
func Arm(p Point, f Fault) (disarm func()) {
	mu.Lock()
	if table[p] == nil {
		armedCount.Add(1)
	}
	left := f.Times
	if left <= 0 {
		left = -1
	}
	table[p] = &entry{f: f, left: left}
	mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			if table[p] != nil {
				delete(table, p)
				armedCount.Add(-1)
			}
			mu.Unlock()
		})
	}
}

// Reset disarms every point and zeroes the fired counters — a test
// suite's belt-and-suspenders teardown.
func Reset() {
	mu.Lock()
	armedCount.Add(int64(-len(table)))
	table = map[Point]*entry{}
	fired = map[Point]int{}
	mu.Unlock()
}

// Fired reports how many times point p has fired since the last Reset,
// so tests can assert a fault struck exactly once.
func Fired(p Point) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[p]
}

// fire consumes one firing of p at a site labeled label, if a matching
// fault is armed with fires remaining.
func fire(p Point, label string) (Fault, bool) {
	if armedCount.Load() == 0 {
		return Fault{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	e := table[p]
	if e == nil || (e.f.Label != "" && e.f.Label != label) || e.left == 0 {
		return Fault{}, false
	}
	if e.left > 0 {
		e.left--
	}
	fired[p]++
	return e.f, true
}

// Error is the hook for sites whose real failure mode is an error
// return: nil when p is not armed for this site, the fault's error when
// it fires.
func Error(p Point, label string) error {
	f, ok := fire(p, label)
	if !ok {
		return nil
	}
	if f.Err != nil {
		return f.Err
	}
	msg := f.Msg
	if msg == "" {
		msg = string(p)
	}
	return fmt.Errorf("%w: %s", ErrInjected, msg)
}

// Delay is the hook for sites whose real failure mode is slowness: it
// sleeps the fault's Delay when armed and returns immediately
// otherwise.
func Delay(p Point, label string) {
	if f, ok := fire(p, label); ok && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// Panic is the hook for sites whose real failure mode is a crashing
// goroutine: it panics when the fault fires.
func Panic(p Point, label string) {
	if f, ok := fire(p, label); ok {
		msg := f.Msg
		if msg == "" {
			msg = string(p)
		}
		panic(fmt.Sprintf("faultinject: %s: %s", p, msg))
	}
}

// Clock is the hook for sites whose real failure mode is a skewed
// clock: it returns t shifted by the fault's Skew when armed, t
// unchanged otherwise.
func Clock(p Point, label string, t time.Time) time.Time {
	if f, ok := fire(p, label); ok {
		return t.Add(f.Skew)
	}
	return t
}
