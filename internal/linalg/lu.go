package linalg

import (
	"fmt"
	"math"
)

// LU holds a packed LU factorization with partial pivoting: P·A = L·U,
// where L is unit lower triangular and U is upper triangular, both stored
// in Packed (L below the diagonal without its unit diagonal, U on and
// above). Piv[k] records the row swapped into position k at step k.
type LU struct {
	N      int
	Packed Dense
	Piv    []int
	// Swaps counts row exchanges (determinant sign: (-1)^Swaps).
	Swaps int
}

// Factor computes the pivoted LU factorization of the square matrix a.
// The input workspace is not modified.
func Factor(a Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d matrix", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := &LU{N: n, Packed: a.Clone(), Piv: make([]int, n)}
	m := lu.Packed
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k.
		p := k
		best := math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > best {
				best, p = v, i
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("%w: zero pivot column %d", ErrSingular, k)
		}
		lu.Piv[k] = p
		if p != k {
			lu.Swaps++
			rowK := m.Data[k*n : k*n+n]
			rowP := m.Data[p*n : p*n+n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
		}
		pivot := m.At(k, k)
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) / pivot
			m.Set(i, k, f)
			if f == 0 {
				continue
			}
			rowI := m.Data[i*n+k+1 : i*n+n]
			rowK := m.Data[k*n+k+1 : k*n+n]
			for j := range rowI {
				rowI[j] -= f * rowK[j]
			}
		}
	}
	return lu, nil
}

// Det returns the determinant of the factored matrix.
func (lu *LU) Det() float64 {
	det := 1.0
	if lu.Swaps%2 == 1 {
		det = -1
	}
	for i := 0; i < lu.N; i++ {
		det *= lu.Packed.At(i, i)
	}
	return det
}

// Solve computes X such that A·X = B for the factored A, overwriting a copy
// of b (which may have any number of right-hand-side columns).
func (lu *LU) Solve(b Dense) (Dense, error) {
	if b.Rows != lu.N {
		return Dense{}, fmt.Errorf("%w: rhs has %d rows, matrix is %d", ErrShape, b.Rows, lu.N)
	}
	n, k := lu.N, b.Cols
	x := b.Clone()
	// Apply the row exchanges to the right-hand side.
	for i := 0; i < n; i++ {
		if p := lu.Piv[i]; p != i {
			for j := 0; j < k; j++ {
				vi, vp := x.At(i, j), x.At(p, j)
				x.Set(i, j, vp)
				x.Set(p, j, vi)
			}
		}
	}
	// Forward substitution with unit lower triangular L.
	for i := 1; i < n; i++ {
		for c := 0; c < i; c++ {
			f := lu.Packed.At(i, c)
			if f == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				x.Set(i, j, x.At(i, j)-f*x.At(c, j))
			}
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		for c := i + 1; c < n; c++ {
			f := lu.Packed.At(i, c)
			if f == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				x.Set(i, j, x.At(i, j)-f*x.At(c, j))
			}
		}
		d := lu.Packed.At(i, i)
		for j := 0; j < k; j++ {
			x.Set(i, j, x.At(i, j)/d)
		}
	}
	return x, nil
}

// Reconstruct multiplies P⁻¹·L·U back into a full matrix, for verification:
// the result should equal the original A.
func (lu *LU) Reconstruct() Dense {
	n := lu.N
	l := Identity(n)
	u := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, lu.Packed.At(i, j))
			} else {
				u.Set(i, j, lu.Packed.At(i, j))
			}
		}
	}
	prod := MatMulDense(l, u)
	// Undo the recorded row swaps in reverse order: A = P⁻¹·(L·U).
	for k := n - 1; k >= 0; k-- {
		if p := lu.Piv[k]; p != k {
			for j := 0; j < n; j++ {
				vk, vp := prod.At(k, j), prod.At(p, j)
				prod.Set(k, j, vp)
				prod.Set(p, j, vk)
			}
		}
	}
	return prod
}
