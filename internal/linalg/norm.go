package linalg

import "math"

// MaxAbsDiff returns the largest elementwise |a-b| between two same-shaped
// workspaces, for residual checks in tests and experiment reports.
func MaxAbsDiff(a, b Dense) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Residual returns max |A·X - B|, the backward error of a solve.
func Residual(a, x, b Dense) float64 {
	return MaxAbsDiff(MatMulDense(a, x), b)
}

// Frobenius returns the Frobenius norm of d.
func Frobenius(d Dense) float64 {
	s := 0.0
	for _, v := range d.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// RandomDiagonallyDominant fills an n×n workspace with a deterministic,
// well-conditioned test matrix: uniform off-diagonal entries in [-1, 1]
// with the diagonal boosted above the row sum, guaranteeing LU succeeds.
func RandomDiagonallyDominant(n int, seed uint64) Dense {
	d := NewDense(n, n)
	state := seed
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11)/(1<<52) - 1 // uniform [-1, 1)
	}
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			v := next()
			d.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		d.Set(i, i, rowSum+1)
	}
	return d
}
