package linalg

import "fmt"

// MatMulDense multiplies a (r×k) by b (k×c) into a fresh workspace using a
// cache-friendly ikj loop order.
func MatMulDense(a, b Dense) Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k := 0; k < a.Cols; k++ {
			f := a.At(i, k)
			if f == 0 {
				continue
			}
			bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range bRow {
				outRow[j] += f * bRow[j]
			}
		}
	}
	return out
}

// Inverse computes A⁻¹ by LU-factoring A and solving for the identity —
// the "find the inverse tensor first" path of the paper's equation (2)
// whose cost the SOLVE rewrite avoids.
func Inverse(a Dense) (Dense, error) {
	lu, err := Factor(a)
	if err != nil {
		return Dense{}, err
	}
	return lu.Solve(Identity(a.Rows))
}

// Solve computes X with A·X = B by LU factorization with partial pivoting —
// the right-hand side of the paper's equation (2) rewrite.
func Solve(a, b Dense) (Dense, error) {
	lu, err := Factor(a)
	if err != nil {
		return Dense{}, err
	}
	return lu.Solve(b)
}

// SolveViaInverse computes X = A⁻¹·B, the naive path of equation (2). It
// exists as the experimental baseline; Solve is the optimized form.
func SolveViaInverse(a, b Dense) (Dense, error) {
	inv, err := Inverse(a)
	if err != nil {
		return Dense{}, err
	}
	return MatMulDense(inv, b), nil
}
