package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"bohrium/internal/tensor"
)

func denseOf(rows, cols int, values ...float64) Dense {
	d := NewDense(rows, cols)
	copy(d.Data, values)
	return d
}

func TestMatMulDense(t *testing.T) {
	a := denseOf(2, 3, 1, 2, 3, 4, 5, 6)
	b := denseOf(3, 2, 7, 8, 9, 10, 11, 12)
	got := MatMulDense(a, b)
	want := denseOf(2, 2, 58, 64, 139, 154)
	if MaxAbsDiff(got, want) != 0 {
		t.Errorf("matmul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := RandomDiagonallyDominant(8, 1)
	if MaxAbsDiff(MatMulDense(a, Identity(8)), a) != 0 {
		t.Error("A·I != A")
	}
	if MaxAbsDiff(MatMulDense(Identity(8), a), a) != 0 {
		t.Error("I·A != A")
	}
}

func TestLUFactorKnown(t *testing.T) {
	// A 2x2 with a forced pivot swap: [[0, 1], [2, 3]].
	a := denseOf(2, 2, 0, 1, 2, 3)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if lu.Swaps != 1 {
		t.Errorf("swaps = %d, want 1", lu.Swaps)
	}
	if got := lu.Det(); math.Abs(got-(-2)) > 1e-12 {
		t.Errorf("det = %v, want -2", got)
	}
	if diff := MaxAbsDiff(lu.Reconstruct(), a); diff > 1e-12 {
		t.Errorf("reconstruction error %v", diff)
	}
}

func TestLUSingular(t *testing.T) {
	a := denseOf(2, 2, 1, 2, 2, 4) // rank 1
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Errorf("Factor of singular matrix: %v, want ErrSingular", err)
	}
	zero := NewDense(3, 3)
	if _, err := Factor(zero); !errors.Is(err, ErrSingular) {
		t.Errorf("Factor of zero matrix: %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factor(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Error("Factor accepted non-square matrix")
	}
}

func TestLUReconstructProperty(t *testing.T) {
	// Property: P⁻¹LU == A for random well-conditioned matrices.
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw%12) + 1
		a := RandomDiagonallyDominant(n, seed)
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		return MaxAbsDiff(lu.Reconstruct(), a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  →  x = 1, y = 3.
	a := denseOf(2, 2, 2, 1, 1, 3)
	b := denseOf(2, 1, 5, 10)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-1) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x.Data)
	}
}

func TestSolveResidualProperty(t *testing.T) {
	f := func(seed uint64, szRaw, rhsRaw uint8) bool {
		n := int(szRaw%16) + 1
		k := int(rhsRaw%3) + 1
		a := RandomDiagonallyDominant(n, seed)
		b := NewDense(n, k)
		for i := range b.Data {
			b.Data[i] = float64(i%7) - 3
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveAgreesWithInversePath(t *testing.T) {
	// Equation (2): both paths must produce the same x; LU is the cheaper
	// route, the inverse route is the baseline.
	a := RandomDiagonallyDominant(24, 7)
	b := NewDense(24, 1)
	for i := range b.Data {
		b.Data[i] = float64(i) * 0.25
	}
	fast, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SolveViaInverse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff := MaxAbsDiff(fast, slow); diff > 1e-9 {
		t.Errorf("solve paths disagree by %v", diff)
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		n := int(szRaw%10) + 1
		a := RandomDiagonallyDominant(n, seed)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return MaxAbsDiff(MatMulDense(a, inv), Identity(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveShapeMismatch(t *testing.T) {
	a := RandomDiagonallyDominant(4, 1)
	b := NewDense(3, 1)
	if _, err := Solve(a, b); !errors.Is(err, ErrShape) {
		t.Error("Solve accepted mismatched rhs")
	}
}

func TestFromToTensorRoundTrip(t *testing.T) {
	mat := tensor.MustNew(tensor.Float64, tensor.MustShape(3, 4))
	mat.FillRandom(5, -2, 2)
	d, err := FromTensor(mat)
	if err != nil {
		t.Fatal(err)
	}
	back := tensor.MustNew(tensor.Float64, tensor.MustShape(3, 4))
	if err := d.ToTensor(back); err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(back) {
		t.Error("tensor round trip changed values")
	}

	vec := tensor.MustNew(tensor.Float64, tensor.MustShape(5))
	vec.FillRandom(6, 0, 1)
	dv, err := FromTensor(vec)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Cols != 1 || dv.Rows != 5 {
		t.Errorf("vector packs to %dx%d", dv.Rows, dv.Cols)
	}
	backV := tensor.MustNew(tensor.Float64, tensor.MustShape(5))
	if err := dv.ToTensor(backV); err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(backV) {
		t.Error("vector round trip changed values")
	}
}

func TestFromTensorStridedView(t *testing.T) {
	// Packing must honor views: pack the transpose and compare.
	mat := tensor.MustNew(tensor.Float64, tensor.MustShape(2, 3))
	v := 1.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			mat.SetAt(v, i, j)
			v++
		}
	}
	d, err := FromTensor(mat.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 3 || d.Cols != 2 || d.At(0, 1) != 4 || d.At(2, 0) != 3 {
		t.Errorf("transposed pack = %+v", d)
	}
}

func TestFromTensorRejects3D(t *testing.T) {
	cube := tensor.MustNew(tensor.Float64, tensor.MustShape(2, 2, 2))
	if _, err := FromTensor(cube); !errors.Is(err, ErrShape) {
		t.Error("FromTensor accepted 3-d tensor")
	}
}

func TestToTensorShapeMismatch(t *testing.T) {
	d := NewDense(2, 2)
	dst := tensor.MustNew(tensor.Float64, tensor.MustShape(3, 2))
	if err := d.ToTensor(dst); !errors.Is(err, ErrShape) {
		t.Error("ToTensor accepted mismatched target")
	}
}

func TestRandomDiagonallyDominantDeterministic(t *testing.T) {
	a := RandomDiagonallyDominant(6, 42)
	b := RandomDiagonallyDominant(6, 42)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("same seed produced different matrices")
	}
	c := RandomDiagonallyDominant(6, 43)
	if MaxAbsDiff(a, c) == 0 {
		t.Error("different seeds produced identical matrices")
	}
	// Diagonal dominance: |a_ii| > sum_j |a_ij|, j != i.
	for i := 0; i < 6; i++ {
		sum := 0.0
		for j := 0; j < 6; j++ {
			if j != i {
				sum += math.Abs(a.At(i, j))
			}
		}
		if math.Abs(a.At(i, i)) <= sum {
			t.Errorf("row %d not diagonally dominant", i)
		}
	}
}

func TestFrobenius(t *testing.T) {
	d := denseOf(1, 2, 3, 4)
	if got := Frobenius(d); math.Abs(got-5) > 1e-12 {
		t.Errorf("Frobenius = %v, want 5", got)
	}
}
