// Package linalg is the dense linear-algebra substrate behind the byte-code
// extension methods BH_MATMUL, BH_LU, BH_SOLVE, and BH_INVERSE — the
// operations the paper's equation (2) rewrite needs ("instead one could do
// a LU-factorization of the same problem, which would usually be faster").
//
// Algorithms operate on packed row-major float64 workspaces extracted from
// (possibly strided) tensor views, the way a LAPACK-backed runtime would
// repack before calling dgetrf/dgetrs. All routines are deterministic.
package linalg

import (
	"errors"
	"fmt"

	"bohrium/internal/tensor"
)

// ErrSingular is returned when a matrix has no usable pivot (exact zero
// column below the diagonal) during factorization.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned for dimension mismatches.
var ErrShape = errors.New("linalg: shape mismatch")

// Dense is a packed row-major matrix workspace.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed rows×cols workspace.
func NewDense(rows, cols int) Dense {
	return Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set writes element (i, j).
func (d Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Clone returns an independent copy.
func (d Dense) Clone() Dense {
	return Dense{Rows: d.Rows, Cols: d.Cols, Data: append([]float64(nil), d.Data...)}
}

// FromTensor packs a 1-d or 2-d tensor view into a Dense workspace
// (vectors become single-column matrices).
func FromTensor(t tensor.Tensor) (Dense, error) {
	switch t.NDim() {
	case 1:
		d := NewDense(t.Shape()[0], 1)
		for i := 0; i < d.Rows; i++ {
			d.Data[i] = t.At(i)
		}
		return d, nil
	case 2:
		d := NewDense(t.Shape()[0], t.Shape()[1])
		for i := 0; i < d.Rows; i++ {
			for j := 0; j < d.Cols; j++ {
				d.Set(i, j, t.At(i, j))
			}
		}
		return d, nil
	default:
		return Dense{}, fmt.Errorf("%w: want 1-d or 2-d tensor, got %d-d", ErrShape, t.NDim())
	}
}

// ToTensor unpacks the workspace into a tensor view of matching shape
// ((rows,) for single-column targets of rank 1, (rows, cols) otherwise).
func (d Dense) ToTensor(dst tensor.Tensor) error {
	switch {
	case dst.NDim() == 1 && d.Cols == 1 && dst.Shape()[0] == d.Rows:
		for i := 0; i < d.Rows; i++ {
			dst.SetAt(d.Data[i], i)
		}
		return nil
	case dst.NDim() == 2 && dst.Shape()[0] == d.Rows && dst.Shape()[1] == d.Cols:
		for i := 0; i < d.Rows; i++ {
			for j := 0; j < d.Cols; j++ {
				dst.SetAt(d.At(i, j), i, j)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: cannot unpack %dx%d into tensor %v", ErrShape, d.Rows, d.Cols, dst.Shape())
	}
}

// Identity returns the n×n identity workspace.
func Identity(n int) Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 1)
	}
	return d
}
