package vm

import (
	"fmt"
	"math"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Reductions and scans pick one of three execution strategies, sized
// against Config.ParallelThreshold:
//
//   - sweepSerial: the original single-goroutine fold — small inputs.
//   - sweepSplitOutputs: many independent output positions; the output
//     sweep is split across the worker pool. Each output's fold is the
//     exact serial fold, so results are bitwise identical to serial for
//     every dtype.
//   - sweepChunkAxis: few outputs over a long axis (SumAll and friends).
//     The axis is cut into fixed-size chunks; workers fold chunks into
//     partial accumulators (reductions) or run the classic chunk-scan /
//     offset-propagate / rescan three-pass (scans), and partials combine
//     serially in chunk order.
//
// Strategy selection and chunk boundaries depend only on the views and the
// threshold — never on the worker count — so a Workers:1 machine and a
// Workers:N machine produce bit-equal results for every configuration.
// Integer folds are associative and therefore also bit-equal to the serial
// strategy. Float chunked folds re-associate the operation: results may
// differ from the serial strategy by normal floating-point reassociation
// error (on the order of axLen·ulp), which is the documented tolerance.
type sweepStrategy int

const (
	sweepSerial sweepStrategy = iota
	sweepSplitOutputs
	sweepChunkAxis
)

const (
	// reduceSplitMinOutputs is the minimum independent output count before
	// a reduction/scan parallelizes by splitting its output sweep; with
	// fewer outputs the axis-chunking strategy exposes more parallelism.
	reduceSplitMinOutputs = 128
	// reduceMinChunk/reduceMaxChunk bound the axis-chunk length for
	// chunked reductions and three-pass scans; reduceTargetChunks is the
	// chunk count the sizing aims for on long axes.
	reduceMinChunk     = 1 << 10
	reduceMaxChunk     = 1 << 14
	reduceTargetChunks = 64
)

// chunkParams returns the chunk length and chunk count for a chunked sweep
// over an axis of length axLen. Both derive only from axLen and constants —
// never from the worker count — so chunk boundaries (and float rounding)
// are identical at any Workers setting.
func chunkParams(axLen int) (size, n int) {
	size = (axLen + reduceTargetChunks - 1) / reduceTargetChunks
	if size < reduceMinChunk {
		size = reduceMinChunk
	}
	if size > reduceMaxChunk {
		size = reduceMaxChunk
	}
	return size, (axLen + size - 1) / size
}

// sweepStrategyFor selects the strategy for a reduction/scan whose total
// work crosses ParallelThreshold: split the output sweep when there are
// enough independent outputs, chunk the axis when it is long enough to cut
// into at least two chunks, serial otherwise (few outputs over a short
// axis — the residual band where fan-out overhead wins).
func (m *Machine) sweepStrategyFor(outView tensor.View, outSize, axLen int) sweepStrategy {
	if outSize*axLen < m.cfg.ParallelThreshold || !viewInjective(outView) {
		return sweepSerial
	}
	if outSize >= reduceSplitMinOutputs {
		return sweepSplitOutputs
	}
	if axLen >= 2*reduceMinChunk {
		return sweepChunkAxis
	}
	return sweepSerial
}

// chunkBounds returns axis range [start, end) of chunk c for chunks of the
// given size.
func chunkBounds(c, size, axLen int) (start, end int) {
	start = c * size
	end = start + size
	if end > axLen {
		end = axLen
	}
	return start, end
}

// removeAxis drops one dimension from a view, returning the reduced view
// plus the dropped dimension's stride and extent.
func removeAxis(v tensor.View, axis int) (reduced tensor.View, stride, extent int) {
	shape := make(tensor.Shape, 0, v.NDim()-1)
	strides := make([]int, 0, v.NDim()-1)
	for d := 0; d < v.NDim(); d++ {
		if d == axis {
			continue
		}
		shape = append(shape, v.Shape[d])
		strides = append(strides, v.Strides[d])
	}
	reduced = tensor.View{Offset: v.Offset, Shape: shape, Strides: strides}
	return reduced, v.Strides[axis], v.Shape[axis]
}

// execReduce folds the input along one axis with the reduction's base
// binary op, seeding the fold with the first element (so MIN/MAX need no
// dtype-dependent identity).
func (m *Machine) execReduce(p *bytecode.Program, in *bytecode.Instruction) error {
	if in.Op.ArgReduce() {
		return m.execArgReduce(p, in)
	}
	base, ok := in.Op.ReduceBase()
	if !ok {
		return fmt.Errorf("%s is not a reduction", in.Op)
	}
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	srcBuf := m.regs.get(in.In1.Reg)
	if srcBuf == nil {
		return fmt.Errorf("input register %s has no buffer", in.In1.Reg)
	}
	srcView := in.In1.View
	reduced, axStride, axLen := removeAxis(srcView, in.Axis)

	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(srcView.Size()))

	if axLen == 0 {
		return fillReduceIdentity(base, outBuf, in.Out.View)
	}

	outView := in.Out.View
	outSize := outView.Size()
	strategy := m.sweepStrategyFor(outView, outSize, axLen)
	if outBuf == srcBuf && strategy == sweepSplitOutputs {
		// The output aliases the source buffer: splitting the output sweep
		// would let one worker's writes race other workers' source reads.
		// The chunked path keeps the serial write order (outputs written
		// one at a time between read-only parallel phases), so only the
		// split demotes.
		strategy = sweepSerial
	}

	if !outBuf.DType().IsFloat() && !srcBuf.DType().IsFloat() {
		k, ok := intBinaryKernel(base)
		if !ok {
			return fmt.Errorf("no int kernel for %s", base)
		}
		runReduce(m.par, strategy, k, tensor.Buffer.GetInt, tensor.Buffer.SetInt,
			outBuf, srcBuf, outView, reduced, axStride, axLen)
		return nil
	}
	k, ok := floatBinaryKernel(base)
	if !ok {
		return fmt.Errorf("no kernel for %s", base)
	}
	runReduce(m.par, strategy, k, tensor.Buffer.Get, tensor.Buffer.Set,
		outBuf, srcBuf, outView, reduced, axStride, axLen)
	return nil
}

// runReduce executes one reduction with the chosen strategy; get/set are
// Buffer method expressions selecting the computation class.
func runReduce[E int64 | float64](pool parRunner, strategy sweepStrategy, k func(a, b E) E,
	get func(tensor.Buffer, int) E, set func(tensor.Buffer, int, E),
	out, src tensor.Buffer, outView, reduced tensor.View, axStride, axLen int) {

	fold := func(io, is int) {
		acc := get(src, is)
		for j := 1; j < axLen; j++ {
			acc = k(acc, get(src, is+j*axStride))
		}
		set(out, io, acc)
	}
	switch strategy {
	case sweepSplitOutputs:
		pool.parallelFor(outView.Size(), 2, func(lo, hi int) {
			tensor.ZipIndicesRange(outView, reduced, lo, hi, fold)
		})
	case sweepChunkAxis:
		chunkReduce(pool, k, get, set, out, src, outView, reduced, axStride, axLen)
	default:
		tensor.ZipIndices(outView, reduced, fold)
	}
}

// execArgReduce folds the input along one axis to the int64 index of its
// extreme element. The fold carries a (value, index) pair instead of a
// plain accumulator, which is why these reductions have no ReduceBase.
// Tie and NaN semantics are NumPy's: the lowest index wins a tie, and
// the first NaN beats every number (once the carried value is NaN
// nothing can displace it). The comparison class follows the *input*
// dtype — the output is always an index — and every strategy performs
// the identical comparisons, so results are bitwise equal across worker
// counts and strategies for floats too.
func (m *Machine) execArgReduce(p *bytecode.Program, in *bytecode.Instruction) error {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	srcBuf := m.regs.get(in.In1.Reg)
	if srcBuf == nil {
		return fmt.Errorf("input register %s has no buffer", in.In1.Reg)
	}
	srcView := in.In1.View
	reduced, axStride, axLen := removeAxis(srcView, in.Axis)

	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(srcView.Size()))

	if axLen == 0 {
		// There is no index of an empty axis's extreme — same failure
		// mode as MIN/MAX.
		return fmt.Errorf("%s reduction over empty axis has no identity", in.Op)
	}

	outView := in.Out.View
	strategy := m.sweepStrategyFor(outView, outView.Size(), axLen)
	if outBuf == srcBuf && strategy == sweepSplitOutputs {
		// Same aliasing demotion as execReduce: index writes must not race
		// other workers' source reads.
		strategy = sweepSerial
	}

	if !srcBuf.DType().IsFloat() {
		better := func(v, best int64) bool { return v < best }
		if in.Op == bytecode.OpArgmaxReduce {
			better = func(v, best int64) bool { return v > best }
		}
		runArgReduce(m.par, strategy, better, tensor.Buffer.GetInt,
			outBuf, srcBuf, outView, reduced, axStride, axLen)
		return nil
	}
	// NumPy NaN rule: a NaN displaces any number, nothing displaces the
	// carried NaN (v<best and v>best are false when either is NaN).
	better := func(v, best float64) bool {
		return v < best || (math.IsNaN(v) && !math.IsNaN(best))
	}
	if in.Op == bytecode.OpArgmaxReduce {
		better = func(v, best float64) bool {
			return v > best || (math.IsNaN(v) && !math.IsNaN(best))
		}
	}
	runArgReduce(m.par, strategy, better, tensor.Buffer.Get,
		outBuf, srcBuf, outView, reduced, axStride, axLen)
	return nil
}

// runArgReduce executes one index reduction with the chosen strategy.
// The chunked strategy is exact (unlike float chunkReduce): chunk
// partials carry their global winning index, and combining them in chunk
// order with the same comparison reproduces the serial scan's winner —
// comparisons do not re-associate the way float arithmetic does.
func runArgReduce[E int64 | float64](pool parRunner, strategy sweepStrategy,
	better func(v, best E) bool, get func(tensor.Buffer, int) E,
	out, src tensor.Buffer, outView, reduced tensor.View, axStride, axLen int) {

	fold := func(io, is int) {
		best := get(src, is)
		bestIdx := 0
		for j := 1; j < axLen; j++ {
			if v := get(src, is+j*axStride); better(v, best) {
				best, bestIdx = v, j
			}
		}
		out.SetInt(io, int64(bestIdx))
	}
	switch strategy {
	case sweepSplitOutputs:
		pool.parallelFor(outView.Size(), 2, func(lo, hi int) {
			tensor.ZipIndicesRange(outView, reduced, lo, hi, fold)
		})
	case sweepChunkAxis:
		size, nc := chunkParams(axLen)
		vals := make([]E, nc)
		idxs := make([]int, nc)
		tensor.ZipIndices(outView, reduced, func(io, is int) {
			pool.parallelFor(nc, 2, func(lo, hi int) {
				for c := lo; c < hi; c++ {
					start, end := chunkBounds(c, size, axLen)
					best := get(src, is+start*axStride)
					bestIdx := start
					for j := start + 1; j < end; j++ {
						if v := get(src, is+j*axStride); better(v, best) {
							best, bestIdx = v, j
						}
					}
					vals[c], idxs[c] = best, bestIdx
				}
			})
			best, bestIdx := vals[0], idxs[0]
			for c := 1; c < nc; c++ {
				if better(vals[c], best) {
					best, bestIdx = vals[c], idxs[c]
				}
			}
			out.SetInt(io, int64(bestIdx))
		})
	default:
		tensor.ZipIndices(outView, reduced, fold)
	}
}

// fillReduceIdentity writes the reduction's identity to every output
// element, so Sum over an empty axis yields 0 and Prod yields 1 as NumPy
// does (likewise All→true, Any→false). MIN/MAX have no identity in the
// first-element-seeded scheme, so reducing them over an empty axis stays an
// error.
func fillReduceIdentity(base bytecode.Opcode, out tensor.Buffer, outView tensor.View) error {
	// The opcode table's HasIdentity/Identity describe right identities in
	// general, but every base ReduceBase can return (ADD, MULTIPLY, MIN,
	// MAX, LOGICAL_AND/OR) is commutative, so they coincide with the fold
	// identity here.
	info := base.Info()
	if !info.HasIdentity {
		return fmt.Errorf("%s reduction over empty axis has no identity", base)
	}
	it := tensor.NewIterator(outView)
	for it.Next() {
		out.Set(it.Index(), info.Identity)
	}
	return nil
}

// chunkReduce is the two-phase reduction: workers fold fixed axis chunks
// into partial accumulators, then the partials combine serially in chunk
// order. get/set are Buffer method expressions selecting the computation
// class. Integer kernels are associative, so the int64 instantiation is
// bitwise identical to the serial fold; the float64 instantiation
// re-associates the fold, carrying reassociation error relative to the
// serial strategy but staying identical across worker counts.
func chunkReduce[E int64 | float64](pool parRunner, k func(a, b E) E,
	get func(tensor.Buffer, int) E, set func(tensor.Buffer, int, E),
	out, src tensor.Buffer, outView, reduced tensor.View, axStride, axLen int) {

	size, nc := chunkParams(axLen)
	partials := make([]E, nc)
	tensor.ZipIndices(outView, reduced, func(io, is int) {
		pool.parallelFor(nc, 2, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				start, end := chunkBounds(c, size, axLen)
				acc := get(src, is+start*axStride)
				for j := start + 1; j < end; j++ {
					acc = k(acc, get(src, is+j*axStride))
				}
				partials[c] = acc
			}
		})
		acc := partials[0]
		for c := 1; c < nc; c++ {
			acc = k(acc, partials[c])
		}
		set(out, io, acc)
	})
}

// execScan computes the running fold (prefix sums/products) along one
// axis, writing every prefix.
func (m *Machine) execScan(p *bytecode.Program, in *bytecode.Instruction) error {
	base, ok := in.Op.ReduceBase()
	if !ok {
		return fmt.Errorf("%s is not a scan", in.Op)
	}
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	srcBuf := m.regs.get(in.In1.Reg)
	if srcBuf == nil {
		return fmt.Errorf("input register %s has no buffer", in.In1.Reg)
	}
	srcView := in.In1.View
	reducedIn, inStride, axLen := removeAxis(srcView, in.Axis)
	reducedOut, outStride, _ := removeAxis(in.Out.View, in.Axis)

	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(srcView.Size()))

	if axLen == 0 {
		// A scan over an empty axis has no output elements.
		return nil
	}

	lines := reducedOut.Size()
	strategy := m.sweepStrategyFor(in.Out.View, lines, axLen)
	if outBuf == srcBuf && !in.Out.View.Equal(srcView) && strategy != sweepSerial {
		// Misaligned self-overlap: a parallel scan would write slots other
		// workers are still reading. An aligned in-place scan (equal
		// views) stays parallel — every line/chunk only reads slots it
		// writes itself.
		strategy = sweepSerial
	}

	if !outBuf.DType().IsFloat() && !srcBuf.DType().IsFloat() {
		k, ok := intBinaryKernel(base)
		if !ok {
			return fmt.Errorf("no int kernel for %s", base)
		}
		runScan(m.par, strategy, k, tensor.Buffer.GetInt, tensor.Buffer.SetInt,
			outBuf, srcBuf, reducedOut, reducedIn, outStride, inStride, axLen)
		return nil
	}
	k, ok := floatBinaryKernel(base)
	if !ok {
		return fmt.Errorf("no kernel for %s", base)
	}
	runScan(m.par, strategy, k, tensor.Buffer.Get, tensor.Buffer.Set,
		outBuf, srcBuf, reducedOut, reducedIn, outStride, inStride, axLen)
	return nil
}

// runScan executes one scan with the chosen strategy; get/set are Buffer
// method expressions selecting the computation class.
func runScan[E int64 | float64](pool parRunner, strategy sweepStrategy, k func(a, b E) E,
	get func(tensor.Buffer, int) E, set func(tensor.Buffer, int, E),
	out, src tensor.Buffer, reducedOut, reducedIn tensor.View, outStride, inStride, axLen int) {

	scanLine := func(io, is int) {
		acc := get(src, is)
		set(out, io, acc)
		for j := 1; j < axLen; j++ {
			acc = k(acc, get(src, is+j*inStride))
			set(out, io+j*outStride, acc)
		}
	}
	switch strategy {
	case sweepSplitOutputs:
		pool.parallelFor(reducedOut.Size(), 2, func(lo, hi int) {
			tensor.ZipIndicesRange(reducedOut, reducedIn, lo, hi, scanLine)
		})
	case sweepChunkAxis:
		chunkScan(pool, k, get, set, out, src, reducedOut, reducedIn, outStride, inStride, axLen)
	default:
		tensor.ZipIndices(reducedOut, reducedIn, scanLine)
	}
}

// chunkScan runs the classic three-pass parallel scan per line: workers
// fold each fixed axis chunk to a total (pass 1), a serial sweep turns the
// totals into exclusive per-chunk offsets (pass 2), and workers rescan each
// chunk seeded with its offset (pass 3). As with chunkReduce, the int64
// instantiation is bitwise identical to the serial scan and the float64
// instantiation carries reassociation tolerance.
func chunkScan[E int64 | float64](pool parRunner, k func(a, b E) E,
	get func(tensor.Buffer, int) E, set func(tensor.Buffer, int, E),
	out, src tensor.Buffer, reducedOut, reducedIn tensor.View, outStride, inStride, axLen int) {

	size, nc := chunkParams(axLen)
	totals := make([]E, nc)
	tensor.ZipIndices(reducedOut, reducedIn, func(io, is int) {
		pool.parallelFor(nc, 2, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				start, end := chunkBounds(c, size, axLen)
				acc := get(src, is+start*inStride)
				for j := start + 1; j < end; j++ {
					acc = k(acc, get(src, is+j*inStride))
				}
				totals[c] = acc
			}
		})
		// In-place exclusive prefix: totals[c] becomes the fold of chunks
		// [0, c). totals[0] is never read below.
		run := totals[0]
		for c := 1; c < nc; c++ {
			t := totals[c]
			totals[c] = run
			run = k(run, t)
		}
		pool.parallelFor(nc, 2, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				start, end := chunkBounds(c, size, axLen)
				var acc E
				j := start
				if c == 0 {
					acc = get(src, is)
					set(out, io, acc)
					j = 1
				} else {
					acc = totals[c]
				}
				for ; j < end; j++ {
					acc = k(acc, get(src, is+j*inStride))
					set(out, io+j*outStride, acc)
				}
			}
		})
	})
}
