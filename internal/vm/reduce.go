package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// removeAxis drops one dimension from a view, returning the reduced view
// plus the dropped dimension's stride and extent.
func removeAxis(v tensor.View, axis int) (reduced tensor.View, stride, extent int) {
	shape := make(tensor.Shape, 0, v.NDim()-1)
	strides := make([]int, 0, v.NDim()-1)
	for d := 0; d < v.NDim(); d++ {
		if d == axis {
			continue
		}
		shape = append(shape, v.Shape[d])
		strides = append(strides, v.Strides[d])
	}
	reduced = tensor.View{Offset: v.Offset, Shape: shape, Strides: strides}
	return reduced, v.Strides[axis], v.Shape[axis]
}

// execReduce folds the input along one axis with the reduction's base
// binary op, seeding the fold with the first element (so MIN/MAX need no
// dtype-dependent identity).
func (m *Machine) execReduce(p *bytecode.Program, in *bytecode.Instruction) error {
	base, ok := in.Op.ReduceBase()
	if !ok {
		return fmt.Errorf("%s is not a reduction", in.Op)
	}
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	srcBuf := m.regs.get(in.In1.Reg)
	if srcBuf == nil {
		return fmt.Errorf("input register %s has no buffer", in.In1.Reg)
	}
	srcView := in.In1.View
	reduced, axStride, axLen := removeAxis(srcView, in.Axis)
	if axLen == 0 {
		return fmt.Errorf("reduction over empty axis %d", in.Axis)
	}

	m.stats.Instructions++
	m.stats.Sweeps++
	m.stats.Elements += srcView.Size()

	intClass := !outBuf.DType().IsFloat() && !srcBuf.DType().IsFloat()
	if intClass {
		k, ok := intBinaryKernel(base)
		if !ok {
			return fmt.Errorf("no int kernel for %s", base)
		}
		tensor.ZipIndices(in.Out.View, reduced, func(io, is int) {
			acc := srcBuf.GetInt(is)
			for j := 1; j < axLen; j++ {
				acc = k(acc, srcBuf.GetInt(is+j*axStride))
			}
			outBuf.SetInt(io, acc)
		})
		return nil
	}
	k, ok := floatBinaryKernel(base)
	if !ok {
		return fmt.Errorf("no kernel for %s", base)
	}
	tensor.ZipIndices(in.Out.View, reduced, func(io, is int) {
		acc := srcBuf.Get(is)
		for j := 1; j < axLen; j++ {
			acc = k(acc, srcBuf.Get(is+j*axStride))
		}
		outBuf.Set(io, acc)
	})
	return nil
}

// execScan computes the running fold (prefix sums/products) along one
// axis, writing every prefix.
func (m *Machine) execScan(p *bytecode.Program, in *bytecode.Instruction) error {
	base, ok := in.Op.ReduceBase()
	if !ok {
		return fmt.Errorf("%s is not a scan", in.Op)
	}
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	srcBuf := m.regs.get(in.In1.Reg)
	if srcBuf == nil {
		return fmt.Errorf("input register %s has no buffer", in.In1.Reg)
	}
	srcView := in.In1.View
	reducedIn, inStride, axLen := removeAxis(srcView, in.Axis)
	reducedOut, outStride, _ := removeAxis(in.Out.View, in.Axis)

	m.stats.Instructions++
	m.stats.Sweeps++
	m.stats.Elements += srcView.Size()

	intClass := !outBuf.DType().IsFloat() && !srcBuf.DType().IsFloat()
	if intClass {
		k, ok := intBinaryKernel(base)
		if !ok {
			return fmt.Errorf("no int kernel for %s", base)
		}
		tensor.ZipIndices(reducedOut, reducedIn, func(io, is int) {
			acc := srcBuf.GetInt(is)
			outBuf.SetInt(io, acc)
			for j := 1; j < axLen; j++ {
				acc = k(acc, srcBuf.GetInt(is+j*inStride))
				outBuf.SetInt(io+j*outStride, acc)
			}
		})
		return nil
	}
	k, ok := floatBinaryKernel(base)
	if !ok {
		return fmt.Errorf("no kernel for %s", base)
	}
	tensor.ZipIndices(reducedOut, reducedIn, func(io, is int) {
		acc := srcBuf.Get(is)
		outBuf.Set(io, acc)
		for j := 1; j < axLen; j++ {
			acc = k(acc, srcBuf.Get(is+j*inStride))
			outBuf.Set(io+j*outStride, acc)
		}
	})
	return nil
}
