package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// poolKey identifies a freelist bucket: buffers are interchangeable exactly
// when they store the same dtype at the same length.
type poolKey struct {
	dt tensor.DType
	n  int
}

// maxPooledPerKey caps each freelist bucket so a burst of frees cannot pin
// unbounded memory; beyond the cap, freed buffers go back to the GC.
const maxPooledPerKey = 32

// defaultPoolCapBytes bounds the bytes parked across ALL freelist buckets,
// so a long-lived machine that marches through many distinct array sizes
// cannot accumulate 32 stale buffers per size forever. Once full, freed
// buffers go back to the GC instead of the pool.
const defaultPoolCapBytes = 256 << 20

// registerFile maps byte-code registers to buffers. Buffers are allocated
// lazily at first definition and released by BH_FREE, mirroring Bohrium's
// base-array lifecycle. Released buffers that the VM itself allocated are
// parked on a size-and-dtype-keyed freelist and handed back out (zeroed) by
// the next matching allocation, so flush-per-iteration workloads stop
// paying an allocation per temporary per sweep. Buffers bound from outside
// (front-end input arrays) are never pooled — the caller owns them.
type registerFile struct {
	bufs        []tensor.Buffer
	owned       []bool // owned[r]: bufs[r] was allocated here, safe to recycle
	pool        map[poolKey][]tensor.Buffer
	pooledBytes int          // bytes currently parked across all buckets
	poolCap     int          // pooledBytes bound; 0 means defaultPoolCapBytes
	stats       *atomicStats // counters live on the Machine; nil in zero-value files
}

func (rf *registerFile) grow(n int) {
	for len(rf.bufs) < n {
		rf.bufs = append(rf.bufs, nil)
		rf.owned = append(rf.owned, false)
	}
}

func (rf *registerFile) bind(r bytecode.RegID, buf tensor.Buffer) {
	rf.grow(int(r) + 1)
	rf.bufs[r] = buf
	rf.owned[r] = false
}

func (rf *registerFile) get(r bytecode.RegID) tensor.Buffer {
	if int(r) >= len(rf.bufs) {
		return nil
	}
	return rf.bufs[r]
}

// ensure returns the buffer for r, materializing it from the declaration if
// the register has no buffer yet — from the recycle pool when a buffer of
// the right dtype and length is parked there, freshly allocated otherwise.
func (rf *registerFile) ensure(p *bytecode.Program, r bytecode.RegID) (tensor.Buffer, error) {
	rf.grow(len(p.Regs))
	if rf.bufs[r] != nil {
		return rf.bufs[r], nil
	}
	info, ok := p.Reg(r)
	if !ok {
		return nil, fmt.Errorf("register %s not declared", r)
	}
	key := poolKey{dt: info.DType, n: info.Len}
	if list := rf.pool[key]; len(list) > 0 {
		buf := list[len(list)-1]
		rf.pool[key] = list[:len(list)-1]
		rf.pooledBytes -= info.Len * info.DType.Size()
		buf.Zero() // fresh allocations are zeroed; reuse must match
		if rf.stats != nil {
			rf.stats.poolHits.Add(1)
		}
		rf.bufs[r] = buf
		rf.owned[r] = true
		return buf, nil
	}
	buf, err := tensor.NewBuffer(info.DType, info.Len)
	if err != nil {
		return nil, err
	}
	if rf.stats != nil {
		rf.stats.buffersAllocated.Add(1)
		rf.stats.bytesAllocated.Add(int64(info.Len * info.DType.Size()))
	}
	rf.bufs[r] = buf
	rf.owned[r] = true
	return buf, nil
}

// free releases register r. VM-owned buffers return to the freelist for
// reuse; externally bound buffers are only unlinked.
func (rf *registerFile) free(r bytecode.RegID) {
	if int(r) >= len(rf.bufs) || rf.bufs[r] == nil {
		return
	}
	buf := rf.bufs[r]
	rf.bufs[r] = nil
	if !rf.owned[r] {
		return
	}
	rf.owned[r] = false
	key := poolKey{dt: buf.DType(), n: buf.Len()}
	if rf.pool == nil {
		rf.pool = map[poolKey][]tensor.Buffer{}
	}
	capBytes := rf.poolCap
	if capBytes == 0 {
		capBytes = defaultPoolCapBytes
	}
	bytes := buf.Len() * buf.DType().Size()
	if len(rf.pool[key]) < maxPooledPerKey && rf.pooledBytes+bytes <= capBytes {
		rf.pool[key] = append(rf.pool[key], buf)
		rf.pooledBytes += bytes
	}
}
