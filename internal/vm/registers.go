package vm

import (
	"fmt"
	"sync"

	"bohrium/internal/bytecode"
	"bohrium/internal/faultinject"
	"bohrium/internal/tensor"
)

// poolKey identifies a freelist bucket: buffers are interchangeable exactly
// when they store the same dtype at the same length.
type poolKey struct {
	dt tensor.DType
	n  int
}

// maxPooledPerKey caps each freelist bucket so a burst of frees cannot pin
// unbounded memory; beyond the cap, freed buffers go back to the GC.
const maxPooledPerKey = 32

// defaultPoolCapBytes bounds the bytes parked across ALL freelist buckets,
// so a long-lived engine that marches through many distinct array sizes
// cannot accumulate 32 stale buffers per size forever. Once full, freed
// buffers go back to the GC instead of the pool.
const defaultPoolCapBytes = 256 << 20

// bufferPool is the size-and-dtype-keyed buffer freelist. It lives on the
// Engine, not the register file, so buffers one session frees recycle into
// allocations made by any other session on the same engine — the shared
// half of the register lifecycle. All methods are safe for concurrent use.
// One mutex guards all buckets: the critical sections are O(1) slice
// pops/pushes, a few per flush per session, far from the per-sweep hot
// path. If profiles ever show this lock under very high session counts,
// shard the buckets by poolKey hash the way the plan cache shards by
// fingerprint (the byte budget then splits per shard).
type bufferPool struct {
	mu          sync.Mutex
	buckets     map[poolKey][]tensor.Buffer // guarded by mu
	pooledBytes int                         // guarded by mu: bytes currently parked across all buckets
	capBytes    int                         // immutable after newBufferPool: pooledBytes bound
}

func newBufferPool(capBytes int) *bufferPool {
	if capBytes <= 0 {
		capBytes = defaultPoolCapBytes
	}
	return &bufferPool{buckets: map[poolKey][]tensor.Buffer{}, capBytes: capBytes}
}

// take removes and returns a pooled buffer for key, or nil when the bucket
// is empty. The caller is responsible for zeroing before reuse.
func (bp *bufferPool) take(key poolKey) tensor.Buffer {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	list := bp.buckets[key]
	if len(list) == 0 {
		return nil
	}
	buf := list[len(list)-1]
	bp.buckets[key] = list[:len(list)-1]
	bp.pooledBytes -= key.n * key.dt.Size()
	return buf
}

// put parks a freed buffer for reuse, unless its bucket is full or the
// byte bound would be exceeded (then the buffer goes back to the GC).
func (bp *bufferPool) put(buf tensor.Buffer) {
	key := poolKey{dt: buf.DType(), n: buf.Len()}
	bytes := key.n * key.dt.Size()
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if len(bp.buckets[key]) < maxPooledPerKey && bp.pooledBytes+bytes <= bp.capBytes {
		bp.buckets[key] = append(bp.buckets[key], buf)
		bp.pooledBytes += bytes
	}
}

// bytes reports the bytes currently parked across all buckets.
func (bp *bufferPool) bytes() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.pooledBytes
}

// drain empties every bucket, handing all parked buffers to the GC —
// the memory-pressure release valve. Future puts refill normally.
func (bp *bufferPool) drain() {
	bp.mu.Lock()
	bp.buckets = map[poolKey][]tensor.Buffer{}
	bp.pooledBytes = 0
	bp.mu.Unlock()
}

// registerFile maps byte-code registers to buffers. Buffers are allocated
// lazily at first definition and released by BH_FREE, mirroring Bohrium's
// base-array lifecycle. Released buffers that the VM itself allocated are
// handed to the engine's shared bufferPool and come back out (zeroed) at
// the next matching allocation — possibly in a different session — so
// flush-per-iteration workloads stop paying an allocation per temporary
// per sweep. Buffers bound from outside (front-end input arrays) are never
// pooled — the caller owns them. The register file itself is per-session
// state: only its machine's goroutines touch it.
type registerFile struct {
	bufs   []tensor.Buffer
	owned  []bool       // owned[r]: bufs[r] was allocated here, safe to recycle
	shared *bufferPool  // engine-owned freelist; nil in zero-value files
	stats  *atomicStats // counters live on the Machine; nil in zero-value files
	eng    *Engine      // live-byte accounting + watermark; nil in zero-value files
	label  string       // faultinject site label (the machine's Config.FaultLabel)
}

func (rf *registerFile) grow(n int) {
	for len(rf.bufs) < n {
		rf.bufs = append(rf.bufs, nil)
		rf.owned = append(rf.owned, false)
	}
}

func (rf *registerFile) bind(r bytecode.RegID, buf tensor.Buffer) {
	rf.grow(int(r) + 1)
	rf.bufs[r] = buf
	rf.owned[r] = false
}

func (rf *registerFile) get(r bytecode.RegID) tensor.Buffer {
	if int(r) >= len(rf.bufs) {
		return nil
	}
	return rf.bufs[r]
}

// ensure returns the buffer for r, materializing it from the declaration if
// the register has no buffer yet — from the shared recycle pool when a
// buffer of the right dtype and length is parked there, freshly allocated
// otherwise.
func (rf *registerFile) ensure(p *bytecode.Program, r bytecode.RegID) (tensor.Buffer, error) {
	rf.grow(len(p.Regs))
	if rf.bufs[r] != nil {
		return rf.bufs[r], nil
	}
	info, ok := p.Reg(r)
	if !ok {
		return nil, fmt.Errorf("register %s not declared", r)
	}
	if err := faultinject.Error(faultinject.AllocFail, rf.label); err != nil {
		return nil, err
	}
	bytes := info.Len * info.DType.Size()
	if rf.shared != nil {
		if buf := rf.shared.take(poolKey{dt: info.DType, n: info.Len}); buf != nil {
			buf.Zero() // fresh allocations are zeroed; reuse must match
			if rf.eng != nil {
				rf.eng.adoptBytes(bytes)
			}
			if rf.stats != nil {
				rf.stats.poolHits.Add(1)
			}
			rf.bufs[r] = buf
			rf.owned[r] = true
			return buf, nil
		}
	}
	if rf.eng != nil {
		if err := rf.eng.reserveBytes(bytes); err != nil {
			return nil, err
		}
	}
	buf, err := tensor.NewBuffer(info.DType, info.Len)
	if err != nil {
		if rf.eng != nil {
			rf.eng.releaseBytes(bytes)
		}
		return nil, err
	}
	if rf.stats != nil {
		rf.stats.buffersAllocated.Add(1)
		rf.stats.bytesAllocated.Add(int64(bytes))
	}
	rf.bufs[r] = buf
	rf.owned[r] = true
	return buf, nil
}

// free releases register r. VM-owned buffers return to the shared freelist
// for reuse; externally bound buffers are only unlinked.
func (rf *registerFile) free(r bytecode.RegID) {
	if int(r) >= len(rf.bufs) || rf.bufs[r] == nil {
		return
	}
	buf := rf.bufs[r]
	rf.bufs[r] = nil
	if !rf.owned[r] {
		return
	}
	rf.owned[r] = false
	if rf.eng != nil {
		rf.eng.releaseBytes(buf.Len() * buf.DType().Size())
	}
	if rf.shared != nil {
		rf.shared.put(buf)
	}
}
