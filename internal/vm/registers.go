package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// registerFile maps byte-code registers to buffers. Buffers are allocated
// lazily at first definition and released by BH_FREE, mirroring Bohrium's
// base-array lifecycle.
type registerFile struct {
	bufs []tensor.Buffer
}

func (rf *registerFile) grow(n int) {
	for len(rf.bufs) < n {
		rf.bufs = append(rf.bufs, nil)
	}
}

func (rf *registerFile) bind(r bytecode.RegID, buf tensor.Buffer) {
	rf.grow(int(r) + 1)
	rf.bufs[r] = buf
}

func (rf *registerFile) get(r bytecode.RegID) tensor.Buffer {
	if int(r) >= len(rf.bufs) {
		return nil
	}
	return rf.bufs[r]
}

// ensure returns the buffer for r, allocating it from the declaration if
// the register has not been materialized yet.
func (rf *registerFile) ensure(p *bytecode.Program, r bytecode.RegID) (tensor.Buffer, error) {
	rf.grow(len(p.Regs))
	if rf.bufs[r] != nil {
		return rf.bufs[r], nil
	}
	info, ok := p.Reg(r)
	if !ok {
		return nil, fmt.Errorf("register %s not declared", r)
	}
	buf, err := tensor.NewBuffer(info.DType, info.Len)
	if err != nil {
		return nil, err
	}
	rf.bufs[r] = buf
	return buf, nil
}

func (rf *registerFile) free(r bytecode.RegID) {
	if int(r) < len(rf.bufs) {
		rf.bufs[r] = nil
	}
}
