package vm

import (
	"fmt"
	"sort"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Strided fused execution: clusters whose operands share one iteration
// shape but are not contiguous (stencil views over a 2-D grid, strided
// slices) run as a single sweep with one shared odometer driving a cursor
// per operand. Each odometer advance in dimension d moves every cursor by
// a precomputed delta — O(1) per element, no per-element index math.

// cursor walks one operand's buffer along the shared iteration shape.
type cursor struct {
	arr []float64
	// offset is the start index for element 0 of the iteration space.
	offset int
	// strides are per-dimension element strides in the shared shape.
	strides []int
	// delta[d] is the index change when the odometer increments dim d
	// (after all lower dims reset to zero).
	delta []int
	idx   int
}

func newCursor(arr []float64, v tensor.View) *cursor {
	n := v.NDim()
	c := &cursor{arr: arr, offset: v.Offset, strides: append([]int(nil), v.Strides...), delta: make([]int, n)}
	for d := 0; d < n; d++ {
		back := 0
		for k := d + 1; k < n; k++ {
			back += (v.Shape[k] - 1) * v.Strides[k]
		}
		c.delta[d] = v.Strides[d] - back
	}
	return c
}

// seek positions the cursor at linear element i of the iteration shape.
func (c *cursor) seek(shape []int, i int) {
	idx := c.offset
	for d := len(shape) - 1; d >= 0; d-- {
		if shape[d] == 0 {
			continue
		}
		idx += (i % shape[d]) * c.strides[d]
		i /= shape[d]
	}
	c.idx = idx
}

// stridedStep is one instruction compiled for the strided sweep. Constant
// operands carry a nil cursor and the constant value.
type stridedStep struct {
	dst    *cursor
	unary  func(float64) float64
	binary func(float64, float64) float64
	a, b   *cursor
	ca, cb float64
}

// execClusterStrided runs a same-shape cluster as one fused sweep.
func (m *Machine) execClusterStrided(p *bytecode.Program, cl cluster, shape tensor.Shape) error {
	build := func() ([]stridedStep, []*cursor, error) {
		var steps []stridedStep
		var cursors []*cursor
		for i := cl.start; i < cl.end; i++ {
			in := &p.Instrs[i]
			outBuf, err := m.regs.ensure(p, in.Out.Reg)
			if err != nil {
				return nil, nil, err
			}
			raw, ok := tensor.Float64s(outBuf)
			if !ok {
				return nil, nil, fmt.Errorf("fused output %s is not float64", in.Out.Reg)
			}
			st := stridedStep{dst: newCursor(raw, in.Out.View)}
			cursors = append(cursors, st.dst)

			operandCursor := func(o bytecode.Operand) (*cursor, float64, error) {
				if o.IsConst() {
					return nil, o.Const.Float(), nil
				}
				buf, err := m.regs.ensure(p, o.Reg)
				if err != nil {
					return nil, 0, err
				}
				sraw, ok := tensor.Float64s(buf)
				if !ok {
					return nil, 0, fmt.Errorf("fused input %s is not float64", o.Reg)
				}
				// Broadcast singleton inputs to the shared shape so the
				// cursor's strides align with the odometer.
				view := o.View
				if !view.Shape.Equal(shape) {
					bv, err := view.BroadcastTo(shape)
					if err != nil {
						return nil, 0, err
					}
					view = bv
				}
				c := newCursor(sraw, view)
				cursors = append(cursors, c)
				return c, 0, nil
			}

			inputs := in.Inputs()
			switch len(inputs) {
			case 1:
				k, ok := floatUnaryKernel(in.Op)
				if !ok {
					return nil, nil, fmt.Errorf("no unary kernel for %s", in.Op)
				}
				st.unary = k
				c, cv, err := operandCursor(inputs[0])
				if err != nil {
					return nil, nil, err
				}
				st.a, st.ca = c, cv
			case 2:
				k, ok := floatBinaryKernel(in.Op)
				if !ok {
					return nil, nil, fmt.Errorf("no binary kernel for %s", in.Op)
				}
				st.binary = k
				c, cv, err := operandCursor(inputs[0])
				if err != nil {
					return nil, nil, err
				}
				st.a, st.ca = c, cv
				c, cv, err = operandCursor(inputs[1])
				if err != nil {
					return nil, nil, err
				}
				st.b, st.cb = c, cv
			default:
				return nil, nil, fmt.Errorf("fused %s has %d inputs", in.Op, len(inputs))
			}
			steps = append(steps, st)
		}
		return steps, cursors, nil
	}

	// Validate compilation once up front (register allocation errors
	// surface before any goroutine runs).
	if _, _, err := build(); err != nil {
		return err
	}

	n := shape.Size()
	m.stats.Instructions += cl.end - cl.start
	m.stats.FusedInstructions += cl.end - cl.start
	m.stats.Sweeps++
	m.stats.Elements += n * (cl.end - cl.start)

	var firstErr error
	m.pool.parallelFor(n, m.cfg.ParallelThreshold, func(lo, hi int) {
		// Each chunk compiles its own cursor set (independent positions).
		steps, cursors, err := build()
		if err != nil {
			firstErr = err
			return
		}
		dims := []int(shape)
		for _, c := range cursors {
			c.seek(dims, lo)
		}
		coords := unflatten(dims, lo)
		for i := lo; i < hi; i++ {
			for s := range steps {
				st := &steps[s]
				if st.unary != nil {
					v := st.ca
					if st.a != nil {
						v = st.a.arr[st.a.idx]
					}
					st.dst.arr[st.dst.idx] = st.unary(v)
					continue
				}
				av, bv := st.ca, st.cb
				if st.a != nil {
					av = st.a.arr[st.a.idx]
				}
				if st.b != nil {
					bv = st.b.arr[st.b.idx]
				}
				st.dst.arr[st.dst.idx] = st.binary(av, bv)
			}
			// Advance the shared odometer and every cursor by the
			// matching per-dimension delta.
			for d := len(dims) - 1; d >= 0; d-- {
				coords[d]++
				if coords[d] < dims[d] {
					for _, c := range cursors {
						c.idx += c.delta[d]
					}
					break
				}
				coords[d] = 0
			}
		}
	})
	return firstErr
}

func unflatten(dims []int, i int) []int {
	coords := make([]int, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		if dims[d] == 0 {
			continue
		}
		coords[d] = i % dims[d]
		i /= dims[d]
	}
	return coords
}

// viewInjective conservatively reports whether a view addresses each
// buffer element at most once — required for the result view of a fused
// (and chunk-parallel) sweep. The sufficient condition: sorting dims by
// |stride|, each stride must exceed the maximum span of the dims below it.
func viewInjective(v tensor.View) bool {
	type ds struct{ stride, extent int }
	dims := make([]ds, 0, v.NDim())
	for d := 0; d < v.NDim(); d++ {
		if v.Shape[d] == 1 {
			continue // singleton dims address one point regardless of stride
		}
		s := v.Strides[d]
		if s < 0 {
			s = -s
		}
		if s == 0 {
			return false // repeated writes to the same element
		}
		dims = append(dims, ds{stride: s, extent: v.Shape[d]})
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].stride < dims[j].stride })
	span := 0
	for _, d := range dims {
		if d.stride <= span {
			return false
		}
		span += (d.extent - 1) * d.stride
	}
	return true
}
