package vm

import (
	"fmt"
	"sort"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Strided fused execution: clusters whose operands share one iteration
// shape but are not contiguous (stencil views over a 2-D grid, strided
// slices) run as a single sweep with one shared odometer driving a cursor
// per operand. Each odometer advance in dimension d moves every cursor by
// a precomputed delta — O(1) per element, no per-element index math.
// Element access is compiled per step for the step's storage dtype, with
// the same computation-class semantics as the contiguous loops.

// cursor tracks one operand's buffer position along the shared iteration
// shape. It carries positions only; typed array access lives in the step
// closures.
type cursor struct {
	// offset is the start index for element 0 of the iteration space.
	offset int
	// strides are per-dimension element strides in the shared shape.
	strides []int
	// delta[d] is the index change when the odometer increments dim d
	// (after all lower dims reset to zero).
	delta []int
	idx   int
}

func newCursor(v tensor.View) *cursor {
	n := v.NDim()
	c := &cursor{offset: v.Offset, strides: append([]int(nil), v.Strides...), delta: make([]int, n)}
	for d := 0; d < n; d++ {
		back := 0
		for k := d + 1; k < n; k++ {
			back += (v.Shape[k] - 1) * v.Strides[k]
		}
		c.delta[d] = v.Strides[d] - back
	}
	return c
}

// seek positions the cursor at linear element i of the iteration shape.
func (c *cursor) seek(shape []int, i int) {
	idx := c.offset
	for d := len(shape) - 1; d >= 0; d-- {
		if shape[d] == 0 {
			continue
		}
		idx += (i % shape[d]) * c.strides[d]
		i /= shape[d]
	}
	c.idx = idx
}

// stridedStep executes one compiled instruction at the cursors' current
// positions.
type stridedStep func()

// typedOperand is a source operand of a strided step: a typed array walked
// by a cursor, or a constant carried in both computation classes.
type typedOperand[T tensor.Elem] struct {
	arr []T
	cur *cursor // nil for constants
	cf  float64
	ci  int64
}

// execClusterStrided runs a same-shape cluster as one fused sweep.
func (m *Machine) execClusterStrided(p *bytecode.Program, cl cluster, shape tensor.Shape) error {
	build := func() ([]stridedStep, []*cursor, error) {
		var steps []stridedStep
		var cursors []*cursor
		for i := cl.start; i < cl.end; i++ {
			step, err := m.compileStridedStep(p, &p.Instrs[i], shape, &cursors)
			if err != nil {
				return nil, nil, instrErr(p, i, err)
			}
			steps = append(steps, step)
		}
		return steps, cursors, nil
	}

	// Validate compilation once up front (register allocation errors
	// surface before any goroutine runs).
	if _, _, err := build(); err != nil {
		return err
	}

	n := shape.Size()
	m.stats.instructions.Add(int64(cl.end - cl.start))
	m.stats.fusedInstructions.Add(int64(cl.end - cl.start))
	m.countFusedDTypes(p, cl.start, cl.end)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(n * (cl.end - cl.start)))

	var firstErr error
	m.par.parallelFor(n, m.cfg.ParallelThreshold, func(lo, hi int) {
		// Each chunk compiles its own cursor set (independent positions).
		steps, cursors, err := build()
		if err != nil {
			firstErr = err
			return
		}
		dims := []int(shape)
		for _, c := range cursors {
			c.seek(dims, lo)
		}
		coords := unflatten(dims, lo)
		for i := lo; i < hi; i++ {
			for _, step := range steps {
				step()
			}
			// Advance the shared odometer and every cursor by the
			// matching per-dimension delta.
			for d := len(dims) - 1; d >= 0; d-- {
				coords[d]++
				if coords[d] < dims[d] {
					for _, c := range cursors {
						c.idx += c.delta[d]
					}
					break
				}
				coords[d] = 0
			}
		}
	})
	return firstErr
}

// compileStridedStep compiles one instruction for the odometer sweep,
// dispatching on the output register's storage dtype. New cursors are
// appended to *cursors so the caller can drive them with the odometer.
func (m *Machine) compileStridedStep(p *bytecode.Program, in *bytecode.Instruction, shape tensor.Shape, cursors *[]*cursor) (stridedStep, error) {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return nil, err
	}
	switch outBuf.DType() {
	case tensor.Float64:
		return compileStridedTyped[float64](m, p, in, outBuf, shape, cursors)
	case tensor.Float32:
		return compileStridedTyped[float32](m, p, in, outBuf, shape, cursors)
	case tensor.Int64:
		return compileStridedTyped[int64](m, p, in, outBuf, shape, cursors)
	case tensor.Int32:
		return compileStridedTyped[int32](m, p, in, outBuf, shape, cursors)
	case tensor.Bool, tensor.Uint8:
		return compileStridedTyped[uint8](m, p, in, outBuf, shape, cursors)
	default:
		return nil, fmt.Errorf("fused output %s has unsupported dtype %v", in.Out.Reg, outBuf.DType())
	}
}

func compileStridedTyped[T tensor.Elem](m *Machine, p *bytecode.Program, in *bytecode.Instruction, outBuf tensor.Buffer, shape tensor.Shape, cursors *[]*cursor) (stridedStep, error) {
	dstArr, ok := tensor.RawSlice[T](outBuf)
	if !ok {
		return nil, fmt.Errorf("fused output %s is not %v", in.Out.Reg, outBuf.DType())
	}
	dstCur := newCursor(in.Out.View)
	*cursors = append(*cursors, dstCur)

	ins := make([]typedOperand[T], 0, 2)
	for _, opnd := range in.Inputs() {
		if opnd.IsConst() {
			ins = append(ins, typedOperand[T]{cf: opnd.Const.Float(), ci: opnd.Const.Int()})
			continue
		}
		buf, err := m.regs.ensure(p, opnd.Reg)
		if err != nil {
			return nil, err
		}
		arr, ok := tensor.RawSlice[T](buf)
		if !ok {
			return nil, fmt.Errorf("fused input %s is not %v", opnd.Reg, outBuf.DType())
		}
		// Broadcast singleton inputs to the shared shape so the cursor's
		// strides align with the odometer.
		view := opnd.View
		if !view.Shape.Equal(shape) {
			bv, err := view.BroadcastTo(shape)
			if err != nil {
				return nil, err
			}
			view = bv
		}
		cur := newCursor(view)
		*cursors = append(*cursors, cur)
		ins = append(ins, typedOperand[T]{arr: arr, cur: cur})
	}
	return makeStridedStep(outBuf.DType(), in.Op, dstArr, dstCur, ins)
}

// loadFloat/loadInt build class loaders reading the operand at its
// cursor's current position.
func loadFloat[T tensor.Elem](o typedOperand[T]) func() float64 {
	if o.cur == nil {
		c := o.cf
		return func() float64 { return c }
	}
	arr, cur := o.arr, o.cur
	return func() float64 { return float64(arr[cur.idx]) }
}

func loadInt[T tensor.Elem](o typedOperand[T]) func() int64 {
	if o.cur == nil {
		c := o.ci
		return func() int64 { return c }
	}
	arr, cur := o.arr, o.cur
	return func() int64 { return int64(arr[cur.idx]) }
}

// makeStridedStep compiles the per-element body for one instruction with
// the same class rules as compileLoop: float dtypes use the float64
// kernels, integer dtypes the int64 kernels (float fallback when none),
// bool normalizes every store to 0/1.
func makeStridedStep[T tensor.Elem](dt tensor.DType, op bytecode.Opcode, dstArr []T, dstCur *cursor, ins []typedOperand[T]) (stridedStep, error) {
	isBool := dt == tensor.Bool
	switch len(ins) {
	case 1:
		if !dt.IsFloat() {
			if k, ok := intUnaryKernel(op); ok {
				la := loadInt(ins[0])
				if isBool {
					return func() { dstArr[dstCur.idx] = b01[T](k(la()) != 0) }, nil
				}
				return func() { dstArr[dstCur.idx] = T(k(la())) }, nil
			}
		}
		k, ok := floatUnaryKernel(op)
		if !ok {
			return nil, fmt.Errorf("no unary kernel for %s", op)
		}
		la := loadFloat(ins[0])
		if isBool {
			return func() { dstArr[dstCur.idx] = b01[T](k(la()) != 0) }, nil
		}
		return func() { dstArr[dstCur.idx] = T(k(la())) }, nil
	case 2:
		if !dt.IsFloat() {
			if k, ok := intBinaryKernel(op); ok {
				la, lb := loadInt(ins[0]), loadInt(ins[1])
				if isBool {
					return func() { dstArr[dstCur.idx] = b01[T](k(la(), lb()) != 0) }, nil
				}
				return func() { dstArr[dstCur.idx] = T(k(la(), lb())) }, nil
			}
		}
		k, ok := floatBinaryKernel(op)
		if !ok {
			return nil, fmt.Errorf("no binary kernel for %s", op)
		}
		la, lb := loadFloat(ins[0]), loadFloat(ins[1])
		if isBool {
			return func() { dstArr[dstCur.idx] = b01[T](k(la(), lb()) != 0) }, nil
		}
		return func() { dstArr[dstCur.idx] = T(k(la(), lb())) }, nil
	default:
		return nil, fmt.Errorf("fused %s has %d inputs", op, len(ins))
	}
}

func unflatten(dims []int, i int) []int {
	coords := make([]int, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		if dims[d] == 0 {
			continue
		}
		coords[d] = i % dims[d]
		i /= dims[d]
	}
	return coords
}

// viewInjective conservatively reports whether a view addresses each
// buffer element at most once — required for the result view of a fused
// (and chunk-parallel) sweep. The sufficient condition: sorting dims by
// |stride|, each stride must exceed the maximum span of the dims below it.
func viewInjective(v tensor.View) bool {
	type ds struct{ stride, extent int }
	dims := make([]ds, 0, v.NDim())
	for d := 0; d < v.NDim(); d++ {
		if v.Shape[d] == 1 {
			continue // singleton dims address one point regardless of stride
		}
		s := v.Strides[d]
		if s < 0 {
			s = -s
		}
		if s == 0 {
			return false // repeated writes to the same element
		}
		dims = append(dims, ds{stride: s, extent: v.Shape[d]})
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].stride < dims[j].stride })
	span := 0
	for _, d := range dims {
		if d.stride <= span {
			return false
		}
		span += (d.extent - 1) * d.stride
	}
	return true
}
