package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/faultinject"
	"bohrium/internal/tensor"
)

// This file is the machine's surface for execution backends built on top
// of it (internal/backend): the plan-cache value interface and the
// fine-grained hooks the out-of-core chunked backend composes — executing
// single barrier instructions with the exact error wrapping of
// Plan.Execute, materializing and releasing register buffers, and staging
// scratch tiles through the engine's recycle pool. The in-process backend
// only needs Compile/Execute/Bind/Tensor, which live with the Machine.

// CachedPlan is what the fingerprint-keyed plan cache stores: any
// backend's compiled form of a batch. The cache itself never executes a
// plan — it only needs Rebind, the immutable constant-patching step a
// parametric hit under a different constant vector pays. Implementations
// must never mutate the receiver: the cached plan may be executing
// concurrently on this session's async executor or in another session
// sharing the engine. A backend whose plans cannot be replayed under
// different constants simply inserts them as non-parametric, and Rebind is
// never called.
type CachedPlan interface {
	Rebind(vals []bytecode.Constant) (CachedPlan, error)
}

// Rebind implements CachedPlan for the in-process plan: WithConstants
// semantics — a patched clone, or the receiver itself when vals already
// match.
func (pl *Plan) Rebind(vals []bytecode.Constant) (CachedPlan, error) {
	np, err := pl.WithConstants(vals)
	if err != nil {
		return nil, err
	}
	return np, nil
}

// ExecOne executes the single instruction p.Instrs[idx] against m's
// current register bindings, wrapping any failure exactly as Plan.Execute
// wraps that instruction when it forms its own single-instruction cluster
// (fusion on) or runs unfused (fusion off). The out-of-core backend
// executes barrier instructions — reductions, scans, extensions,
// generators with global element indices, system byte-codes — through
// this, so a failing BH_SOLVE reports the identical error text on every
// backend.
func (m *Machine) ExecOne(p *bytecode.Program, idx int) error {
	if idx < 0 || idx >= len(p.Instrs) {
		return fmt.Errorf("%w: instruction index %d out of range [0,%d)", ErrExec, idx, len(p.Instrs))
	}
	m.regs.grow(len(p.Regs))
	err := m.exec(p, &p.Instrs[idx])
	if err == nil {
		return nil
	}
	if m.cfg.Fusion {
		return fmt.Errorf("%w: cluster [%d,%d): %w", ErrExec, idx, idx+1, instrErr(p, idx, err))
	}
	return fmt.Errorf("%w: instr %d (%s): %w", ErrExec, idx, p.Instrs[idx].String(), err)
}

// Bound reports whether register r currently has a buffer (bound from
// outside or materialized by execution and not yet freed).
func (m *Machine) Bound(r bytecode.RegID) bool { return m.regs.get(r) != nil }

// SkipsValidation reports whether this machine was configured to trust
// callers' programs (Config.SkipValidation) — backends honor the same
// switch for their own compile-time validation.
func (m *Machine) SkipsValidation() bool { return m.cfg.SkipValidation }

// Materialize returns the buffer for register r, allocating it from the
// declaration in p if the register has no buffer yet — from the shared
// recycle pool when a matching buffer is parked there. It is the exported
// form of the register file's lazy materialization, for backends that
// write register buffers outside Plan.Execute (the out-of-core backend
// materializes a segment's full-size outputs before streaming chunk
// results into them).
func (m *Machine) Materialize(p *bytecode.Program, r bytecode.RegID) (tensor.Buffer, error) {
	return m.regs.ensure(p, r)
}

// AcquireBuffer takes a zeroed buffer of the given dtype and length, from
// the engine's shared recycle pool when possible (PoolHits) and freshly
// allocated otherwise (BuffersAllocated/BytesAllocated) — the same
// lifecycle register materialization uses, exposed for backend staging
// buffers that are not registers. Pair with ReleaseBuffer.
func (m *Machine) AcquireBuffer(dt tensor.DType, n int) (tensor.Buffer, error) {
	if err := faultinject.Error(faultinject.AllocFail, m.cfg.FaultLabel); err != nil {
		return nil, err
	}
	bytes := n * dt.Size()
	if buf := m.eng.bufs.take(poolKey{dt: dt, n: n}); buf != nil {
		buf.Zero()
		m.eng.adoptBytes(bytes)
		m.stats.poolHits.Add(1)
		return buf, nil
	}
	if err := m.eng.reserveBytes(bytes); err != nil {
		return nil, err
	}
	buf, err := tensor.NewBuffer(dt, n)
	if err != nil {
		m.eng.releaseBytes(bytes)
		return nil, err
	}
	m.stats.buffersAllocated.Add(1)
	m.stats.bytesAllocated.Add(int64(bytes))
	return buf, nil
}

// ReleaseBuffer parks a buffer obtained from AcquireBuffer back in the
// engine's shared recycle pool (or lets the GC have it when the pool is
// full). The buffer must not be used afterwards.
func (m *Machine) ReleaseBuffer(buf tensor.Buffer) {
	if buf != nil {
		m.eng.releaseBytes(buf.Len() * buf.DType().Size())
		m.eng.bufs.put(buf)
	}
}

// ReleaseRegisters frees every register in the machine's file: buffers
// the machine allocated return to the shared recycle pool, externally
// bound buffers are only unlinked. The out-of-core backend's chunk
// machine calls this between segments (and between full-chunk and
// tail-chunk phases) so staging tiles recirculate instead of pinning one
// buffer per register per segment.
func (m *Machine) ReleaseRegisters() {
	for r := range m.regs.bufs {
		m.regs.free(bytecode.RegID(r))
	}
}

// CountPipelined adds one plan execution to the Pipelined counter — the
// stats hook for executors that run backend plans on a background
// goroutine (the machine-level Executor counts through the same counter).
func (m *Machine) CountPipelined() { m.stats.pipelined.Add(1) }

// CountChunks adds n streamed tiles to the Chunks counter — the stats
// hook for chunked backends.
func (m *Machine) CountChunks(n int) { m.stats.chunks.Add(int64(n)) }

// CountXPlanFused adds one combined cross-plan submission to the
// XPlanFused counter — the stats hook for front ends that elide a flush
// boundary by deferring a batch into the next one.
func (m *Machine) CountXPlanFused() { m.stats.xplanFused.Add(1) }

// CountXPlanDisarm adds one abandoned deferral to the XPlanDisarms
// counter — the stats hook for the xplan-disarm fault point.
func (m *Machine) CountXPlanDisarm() { m.stats.xplanDisarms.Add(1) }
