package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// exec dispatches one instruction.
func (m *Machine) exec(p *bytecode.Program, in *bytecode.Instruction) error {
	switch in.Op.Info().Kind {
	case bytecode.KindSystem:
		switch in.Op {
		case bytecode.OpFree:
			m.regs.free(in.Out.Reg)
		case bytecode.OpSync, bytecode.OpNone:
			// SYNC is a materialization fence for the lazy front-end;
			// the VM itself is always coherent.
		}
		return nil
	case bytecode.KindGenerator:
		switch in.Op {
		case bytecode.OpRange:
			return m.execRange(p, in)
		case bytecode.OpRandom:
			return m.execRandom(p, in)
		default: // BH_IDENTITY is elementwise copy/fill
			return m.execElementwise(p, in)
		}
	case bytecode.KindUnary, bytecode.KindBinary:
		return m.execElementwise(p, in)
	case bytecode.KindReduction:
		return m.execReduce(p, in)
	case bytecode.KindScan:
		return m.execScan(p, in)
	case bytecode.KindExtension:
		return m.execExtension(p, in)
	default:
		return fmt.Errorf("unsupported op-code %s", in.Op)
	}
}

// source is a resolved input operand: either a constant or a buffer with a
// view broadcast to the output shape.
type source struct {
	isConst bool
	cf      float64
	ci      int64
	buf     tensor.Buffer
	view    tensor.View
}

func (m *Machine) resolveSources(p *bytecode.Program, in *bytecode.Instruction, outShape tensor.Shape) ([]source, error) {
	inputs := in.Inputs()
	srcs := make([]source, len(inputs))
	for i, opnd := range inputs {
		if opnd.IsConst() {
			srcs[i] = source{isConst: true, cf: opnd.Const.Float(), ci: opnd.Const.Int()}
			continue
		}
		buf := m.regs.get(opnd.Reg)
		if buf == nil {
			return nil, fmt.Errorf("input register %s has no buffer", opnd.Reg)
		}
		view, err := opnd.View.BroadcastTo(outShape)
		if err != nil {
			return nil, err
		}
		srcs[i] = source{buf: buf, view: view}
	}
	return srcs, nil
}

// execElementwise runs unary/binary/identity instructions: one sweep over
// the output view applying the scalar kernel.
func (m *Machine) execElementwise(p *bytecode.Program, in *bytecode.Instruction) error {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	outView := in.Out.View
	srcs, err := m.resolveSources(p, in, outView.Shape)
	if err != nil {
		return err
	}

	// NumPy-style overlap protection: if an input aliases the output
	// buffer through a different view, reading and writing in one sweep
	// would be order-dependent — snapshot that input first.
	for i := range srcs {
		s := &srcs[i]
		if s.isConst || s.buf != outBuf {
			continue
		}
		if !s.view.Equal(outView) && s.view.Overlaps(outView) {
			snap := (tensor.Tensor{Buf: s.buf, View: s.view}).Compact()
			s.buf, s.view = snap.Buf, snap.View
		}
	}

	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(outView.Size()))

	if m.fastElementwise(in.Op, outBuf, outView, srcs) {
		return nil
	}
	return m.slowElementwise(in.Op, outBuf, outView, srcs)
}

// useIntClass decides whether an instruction computes in exact int64
// arithmetic: all inputs and the output are integer/bool typed.
func useIntClass(out tensor.Buffer, srcs []source) bool {
	if out.DType().IsFloat() {
		return false
	}
	for _, s := range srcs {
		if s.isConst {
			continue
		}
		if s.buf.DType().IsFloat() {
			return false
		}
	}
	return true
}

// slowElementwise is the general strided path: per-element accessor loops
// over lockstep iterators, any dtype combination.
func (m *Machine) slowElementwise(op bytecode.Opcode, out tensor.Buffer, outView tensor.View, srcs []source) error {
	intClass := useIntClass(out, srcs)
	switch len(srcs) {
	case 1:
		if intClass {
			k, ok := intUnaryKernel(op)
			if !ok {
				// Transcendentals on ints compute in float and truncate
				// back through Buffer.Set.
				return m.slowUnaryFloat(op, out, outView, srcs[0])
			}
			s := srcs[0]
			if s.isConst {
				c := k(s.ci)
				it := tensor.NewIterator(outView)
				for it.Next() {
					out.SetInt(it.Index(), c)
				}
				return nil
			}
			tensor.ZipIndices(outView, s.view, func(io, is int) {
				out.SetInt(io, k(s.buf.GetInt(is)))
			})
			return nil
		}
		return m.slowUnaryFloat(op, out, outView, srcs[0])

	case 2:
		a, b := srcs[0], srcs[1]
		if intClass {
			if k, ok := intBinaryKernel(op); ok {
				return m.slowBinaryInt(k, out, outView, a, b)
			}
		}
		k, ok := floatBinaryKernel(op)
		if !ok {
			return fmt.Errorf("no kernel for %s", op)
		}
		return m.slowBinaryFloat(k, out, outView, a, b)

	default:
		return fmt.Errorf("%s has %d inputs", op, len(srcs))
	}
}

func (m *Machine) slowUnaryFloat(op bytecode.Opcode, out tensor.Buffer, outView tensor.View, s source) error {
	k, ok := floatUnaryKernel(op)
	if !ok {
		return fmt.Errorf("no kernel for %s", op)
	}
	if s.isConst {
		c := k(s.cf)
		it := tensor.NewIterator(outView)
		for it.Next() {
			out.Set(it.Index(), c)
		}
		return nil
	}
	tensor.ZipIndices(outView, s.view, func(io, is int) {
		out.Set(io, k(s.buf.Get(is)))
	})
	return nil
}

func (m *Machine) slowBinaryFloat(k func(a, b float64) float64, out tensor.Buffer, outView tensor.View, a, b source) error {
	switch {
	case a.isConst && b.isConst:
		c := k(a.cf, b.cf)
		it := tensor.NewIterator(outView)
		for it.Next() {
			out.Set(it.Index(), c)
		}
	case a.isConst:
		tensor.ZipIndices(outView, b.view, func(io, ib int) {
			out.Set(io, k(a.cf, b.buf.Get(ib)))
		})
	case b.isConst:
		tensor.ZipIndices(outView, a.view, func(io, ia int) {
			out.Set(io, k(a.buf.Get(ia), b.cf))
		})
	default:
		tensor.ZipIndices3(outView, a.view, b.view, func(io, ia, ib int) {
			out.Set(io, k(a.buf.Get(ia), b.buf.Get(ib)))
		})
	}
	return nil
}

func (m *Machine) slowBinaryInt(k func(a, b int64) int64, out tensor.Buffer, outView tensor.View, a, b source) error {
	switch {
	case a.isConst && b.isConst:
		c := k(a.ci, b.ci)
		it := tensor.NewIterator(outView)
		for it.Next() {
			out.SetInt(it.Index(), c)
		}
	case a.isConst:
		tensor.ZipIndices(outView, b.view, func(io, ib int) {
			out.SetInt(io, k(a.ci, b.buf.GetInt(ib)))
		})
	case b.isConst:
		tensor.ZipIndices(outView, a.view, func(io, ia int) {
			out.SetInt(io, k(a.buf.GetInt(ia), b.ci))
		})
	default:
		tensor.ZipIndices3(outView, a.view, b.view, func(io, ia, ib int) {
			out.SetInt(io, k(a.buf.GetInt(ia), b.buf.GetInt(ib)))
		})
	}
	return nil
}

// execRange fills the output with its row-major element index.
func (m *Machine) execRange(p *bytecode.Program, in *bytecode.Instruction) error {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(in.Out.View.Size()))
	it := tensor.NewIterator(in.Out.View)
	i := 0
	for it.Next() {
		outBuf.SetInt(it.Index(), int64(i))
		i++
	}
	return nil
}

// execRandom fills the output with a counter-based deterministic stream:
// element i of (seed, key) is tensor.At(seed, key+i), scaled to [0, 1) for
// float outputs and kept as a non-negative integer otherwise.
func (m *Machine) execRandom(p *bytecode.Program, in *bytecode.Instruction) error {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	seed := uint64(in.In1.Const.Int())
	key := uint64(in.In2.Const.Int())
	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(in.Out.View.Size()))
	isFloat := outBuf.DType().IsFloat()
	it := tensor.NewIterator(in.Out.View)
	i := uint64(0)
	for it.Next() {
		bits := tensor.At(seed, key+i)
		if isFloat {
			outBuf.Set(it.Index(), float64(bits>>11)/(1<<53))
		} else {
			outBuf.SetInt(it.Index(), int64(bits>>1))
		}
		i++
	}
	return nil
}
