package vm

import (
	"math"

	"bohrium/internal/bytecode"
)

// Scalar kernels: the per-element semantics of each op-code, in two
// families. Float kernels define behaviour for floating-point computation
// classes; integer kernels keep exact int64 semantics (the constant-merge
// rewrite of paper Listing 3 relies on integer adds staying exact).
//
// Division and modulus by zero follow NumPy's C backend: floats produce
// ±Inf/NaN, integers produce 0 (NumPy warns and yields 0).

func floatBinaryKernel(op bytecode.Opcode) (func(a, b float64) float64, bool) {
	switch op {
	case bytecode.OpAdd:
		return func(a, b float64) float64 { return a + b }, true
	case bytecode.OpSubtract:
		return func(a, b float64) float64 { return a - b }, true
	case bytecode.OpMultiply:
		return func(a, b float64) float64 { return a * b }, true
	case bytecode.OpDivide:
		return func(a, b float64) float64 { return a / b }, true
	case bytecode.OpPower:
		return math.Pow, true
	case bytecode.OpMod:
		return math.Mod, true
	case bytecode.OpMaximum:
		return math.Max, true
	case bytecode.OpMinimum:
		return math.Min, true
	case bytecode.OpArctan2:
		return math.Atan2, true
	case bytecode.OpEqual:
		return func(a, b float64) float64 { return b2f(a == b) }, true
	case bytecode.OpNotEqual:
		return func(a, b float64) float64 { return b2f(a != b) }, true
	case bytecode.OpLess:
		return func(a, b float64) float64 { return b2f(a < b) }, true
	case bytecode.OpLessEqual:
		return func(a, b float64) float64 { return b2f(a <= b) }, true
	case bytecode.OpGreater:
		return func(a, b float64) float64 { return b2f(a > b) }, true
	case bytecode.OpGreaterEqual:
		return func(a, b float64) float64 { return b2f(a >= b) }, true
	case bytecode.OpLogicalAnd:
		return func(a, b float64) float64 { return b2f(a != 0 && b != 0) }, true
	case bytecode.OpLogicalOr:
		return func(a, b float64) float64 { return b2f(a != 0 || b != 0) }, true
	case bytecode.OpLogicalXor:
		return func(a, b float64) float64 { return b2f((a != 0) != (b != 0)) }, true
	case bytecode.OpBitwiseAnd:
		return func(a, b float64) float64 { return float64(int64(a) & int64(b)) }, true
	case bytecode.OpBitwiseOr:
		return func(a, b float64) float64 { return float64(int64(a) | int64(b)) }, true
	case bytecode.OpBitwiseXor:
		return func(a, b float64) float64 { return float64(int64(a) ^ int64(b)) }, true
	case bytecode.OpLeftShift:
		return func(a, b float64) float64 { return float64(shiftL(int64(a), int64(b))) }, true
	case bytecode.OpRightShift:
		return func(a, b float64) float64 { return float64(shiftR(int64(a), int64(b))) }, true
	default:
		return nil, false
	}
}

func intBinaryKernel(op bytecode.Opcode) (func(a, b int64) int64, bool) {
	switch op {
	case bytecode.OpAdd:
		return func(a, b int64) int64 { return a + b }, true
	case bytecode.OpSubtract:
		return func(a, b int64) int64 { return a - b }, true
	case bytecode.OpMultiply:
		return func(a, b int64) int64 { return a * b }, true
	case bytecode.OpDivide:
		return func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}, true
	case bytecode.OpPower:
		return ipow, true
	case bytecode.OpMod:
		return func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		}, true
	case bytecode.OpMaximum:
		return func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}, true
	case bytecode.OpMinimum:
		return func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		}, true
	case bytecode.OpEqual:
		return func(a, b int64) int64 { return b2i(a == b) }, true
	case bytecode.OpNotEqual:
		return func(a, b int64) int64 { return b2i(a != b) }, true
	case bytecode.OpLess:
		return func(a, b int64) int64 { return b2i(a < b) }, true
	case bytecode.OpLessEqual:
		return func(a, b int64) int64 { return b2i(a <= b) }, true
	case bytecode.OpGreater:
		return func(a, b int64) int64 { return b2i(a > b) }, true
	case bytecode.OpGreaterEqual:
		return func(a, b int64) int64 { return b2i(a >= b) }, true
	case bytecode.OpLogicalAnd:
		return func(a, b int64) int64 { return b2i(a != 0 && b != 0) }, true
	case bytecode.OpLogicalOr:
		return func(a, b int64) int64 { return b2i(a != 0 || b != 0) }, true
	case bytecode.OpLogicalXor:
		return func(a, b int64) int64 { return b2i((a != 0) != (b != 0)) }, true
	case bytecode.OpBitwiseAnd:
		return func(a, b int64) int64 { return a & b }, true
	case bytecode.OpBitwiseOr:
		return func(a, b int64) int64 { return a | b }, true
	case bytecode.OpBitwiseXor:
		return func(a, b int64) int64 { return a ^ b }, true
	case bytecode.OpLeftShift:
		return shiftL, true
	case bytecode.OpRightShift:
		return shiftR, true
	default:
		return nil, false
	}
}

func floatUnaryKernel(op bytecode.Opcode) (func(a float64) float64, bool) {
	switch op {
	case bytecode.OpIdentity:
		return func(a float64) float64 { return a }, true
	case bytecode.OpNegative:
		return func(a float64) float64 { return -a }, true
	case bytecode.OpAbsolute:
		return math.Abs, true
	case bytecode.OpLogicalNot:
		return func(a float64) float64 { return b2f(a == 0) }, true
	case bytecode.OpInvert:
		return func(a float64) float64 { return float64(^int64(a)) }, true
	case bytecode.OpSqrt:
		return math.Sqrt, true
	case bytecode.OpExp:
		return math.Exp, true
	case bytecode.OpExpm1:
		return math.Expm1, true
	case bytecode.OpLog:
		return math.Log, true
	case bytecode.OpLog2:
		return math.Log2, true
	case bytecode.OpLog10:
		return math.Log10, true
	case bytecode.OpLog1p:
		return math.Log1p, true
	case bytecode.OpSin:
		return math.Sin, true
	case bytecode.OpCos:
		return math.Cos, true
	case bytecode.OpTan:
		return math.Tan, true
	case bytecode.OpArcsin:
		return math.Asin, true
	case bytecode.OpArccos:
		return math.Acos, true
	case bytecode.OpArctan:
		return math.Atan, true
	case bytecode.OpSinh:
		return math.Sinh, true
	case bytecode.OpCosh:
		return math.Cosh, true
	case bytecode.OpTanh:
		return math.Tanh, true
	case bytecode.OpFloor:
		return math.Floor, true
	case bytecode.OpCeil:
		return math.Ceil, true
	case bytecode.OpRint:
		return math.RoundToEven, true
	case bytecode.OpTrunc:
		return math.Trunc, true
	case bytecode.OpSign:
		return func(a float64) float64 {
			switch {
			case a > 0:
				return 1
			case a < 0:
				return -1
			default:
				return a // preserves ±0 and NaN
			}
		}, true
	default:
		return nil, false
	}
}

func intUnaryKernel(op bytecode.Opcode) (func(a int64) int64, bool) {
	switch op {
	case bytecode.OpIdentity:
		return func(a int64) int64 { return a }, true
	case bytecode.OpNegative:
		return func(a int64) int64 { return -a }, true
	case bytecode.OpAbsolute:
		return func(a int64) int64 {
			if a < 0 {
				return -a
			}
			return a
		}, true
	case bytecode.OpLogicalNot:
		return func(a int64) int64 { return b2i(a == 0) }, true
	case bytecode.OpInvert:
		return func(a int64) int64 { return ^a }, true
	case bytecode.OpFloor, bytecode.OpCeil, bytecode.OpRint, bytecode.OpTrunc:
		return func(a int64) int64 { return a }, true
	case bytecode.OpSign:
		return func(a int64) int64 {
			switch {
			case a > 0:
				return 1
			case a < 0:
				return -1
			default:
				return 0
			}
		}, true
	default:
		return nil, false
	}
}

// ipow is exact integer exponentiation by squaring; negative exponents
// yield 0 (as 1/x truncates) except x=±1.
func ipow(base, exp int64) int64 {
	if exp < 0 {
		switch base {
		case 1:
			return 1
		case -1:
			if exp%2 == 0 {
				return 1
			}
			return -1
		default:
			return 0
		}
	}
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

func shiftL(a, b int64) int64 {
	if b < 0 || b >= 64 {
		return 0
	}
	return a << uint(b)
}

func shiftR(a, b int64) int64 {
	if b < 0 || b >= 64 {
		return 0
	}
	return a >> uint(b)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
