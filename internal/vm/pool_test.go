package vm

import (
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

func TestPoolRecyclesFreedBuffer(t *testing.T) {
	// a0 is freed before a1 materializes; a1 has the same dtype and
	// length, so its buffer must come from the pool, not a fresh
	// allocation.
	m := run(t, Config{}, `
.reg a0 float64 100
.reg a1 float64 100
BH_IDENTITY a0 1
BH_FREE a0
BH_IDENTITY a1 2
BH_SYNC a1
`)
	st := m.Stats()
	if st.BuffersAllocated != 1 {
		t.Errorf("BuffersAllocated = %d, want 1", st.BuffersAllocated)
	}
	if st.PoolHits != 1 {
		t.Errorf("PoolHits = %d, want 1", st.PoolHits)
	}
	if want := 100 * 8; st.BytesAllocated != want {
		t.Errorf("BytesAllocated = %d, want %d", st.BytesAllocated, want)
	}
	for i, v := range regSlice(t, m, 1, 100) {
		if v != 2 {
			t.Fatalf("a1[%d] = %v, want 2", i, v)
		}
	}
}

func TestPoolZeroesRecycledBuffer(t *testing.T) {
	// a1 reuses a0's buffer but writes only the even slots; the odd slots
	// must read 0 (a fresh allocation's state), not a0's stale 7s.
	m := run(t, Config{}, `
.reg a0 float64 10
.reg a1 float64 10
BH_IDENTITY a0 7
BH_FREE a0
BH_IDENTITY a1 [0:10:2] 1
BH_SYNC a1
`)
	got := regSlice(t, m, 1, 10)
	for i, v := range got {
		want := 0.0
		if i%2 == 0 {
			want = 1
		}
		if v != want {
			t.Fatalf("a1 = %v: slot %d = %v, want %v (stale data leaked through the pool?)", got, i, v, want)
		}
	}
}

func TestPoolSkipsMismatchedBuffers(t *testing.T) {
	// Freed buffers only satisfy allocations of the same dtype AND length.
	m := run(t, Config{}, `
.reg a0 float64 100
.reg a1 float64 64
.reg a2 int64 100
BH_IDENTITY a0 1
BH_FREE a0
BH_IDENTITY a1 2
BH_IDENTITY a2 3
BH_SYNC a1
BH_SYNC a2
`)
	st := m.Stats()
	if st.PoolHits != 0 {
		t.Errorf("PoolHits = %d, want 0 (different length / dtype)", st.PoolHits)
	}
	if st.BuffersAllocated != 3 {
		t.Errorf("BuffersAllocated = %d, want 3", st.BuffersAllocated)
	}
}

func TestPoolNeverRecyclesBoundBuffers(t *testing.T) {
	// Buffers bound from outside (front-end input arrays) belong to the
	// caller: freeing the register must not hand the caller's storage to a
	// later allocation.
	src := `
.reg a0 float64 4
.reg a1 float64 4
.in a0
BH_FREE a0
BH_IDENTITY a1 9
BH_SYNC a1
`
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	defer m.Close()
	user, _ := tensor.FromFloat64s([]float64{1, 2, 3, 4}, tensor.MustShape(4))
	m.Bind(0, user)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.PoolHits != 0 {
		t.Errorf("PoolHits = %d, want 0 (bound buffer must not be pooled)", st.PoolHits)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if got := user.Buf.Get(i); got != want {
			t.Errorf("user tensor clobbered: [%d] = %v, want %v", i, got, want)
		}
	}
}

func TestPoolByteCapBoundsMemory(t *testing.T) {
	// Once pooledBytes would exceed the cap, freed buffers go to the GC
	// instead of the pool, so diverse sizes cannot pin memory forever.
	rf := registerFile{shared: newBufferPool(1000)}
	for i := 0; i < 3; i++ {
		rf.bind(bytecode.RegID(i), tensor.MustBuffer(tensor.Float64, 100)) // 800 bytes each
		rf.owned[i] = true
		rf.free(bytecode.RegID(i))
	}
	key := poolKey{dt: tensor.Float64, n: 100}
	if got := len(rf.shared.buckets[key]); got != 1 {
		t.Errorf("pooled buffers = %d, want 1 (cap 1000 fits one 800-byte buffer)", got)
	}
	if rf.shared.pooledBytes != 800 {
		t.Errorf("pooledBytes = %d, want 800", rf.shared.pooledBytes)
	}
}

// TestPoolSharedAcrossMachines: two machines on one engine recycle each
// other's buffers — the buffer one session frees satisfies the other
// session's next matching allocation.
func TestPoolSharedAcrossMachines(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	defer eng.Close()
	src := `
.reg a0 float64 100
BH_IDENTITY a0 1
BH_FREE a0
`
	use := `
.reg a0 float64 100
BH_IDENTITY a0 2
BH_SYNC a0
`
	freeProg, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	useProg, err := bytecode.Parse(use)
	if err != nil {
		t.Fatal(err)
	}
	m1 := eng.NewMachine(Config{})
	m2 := eng.NewMachine(Config{})
	defer m1.Close()
	defer m2.Close()
	if err := m1.Run(freeProg); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(useProg); err != nil {
		t.Fatal(err)
	}
	if st := m2.Stats(); st.PoolHits != 1 || st.BuffersAllocated != 0 {
		t.Errorf("cross-session recycle: hits=%d allocs=%d, want 1/0", st.PoolHits, st.BuffersAllocated)
	}
	agg := eng.Stats()
	if agg.BuffersAllocated != 1 || agg.PoolHits != 1 {
		t.Errorf("engine aggregate: allocs=%d hits=%d, want 1/1", agg.BuffersAllocated, agg.PoolHits)
	}
}

func TestReduceEmptyAxisIdentity(t *testing.T) {
	// Sum over an empty axis is 0 and Prod is 1, as in NumPy. The input
	// view is 3 broadcast rows of width 0.
	m := run(t, Config{}, `
.reg a0 float64 10
.reg a1 float64 3
.reg a2 float64 3
BH_RANDOM a0 5 0
BH_ADD_REDUCE a1 [0:3:1] a0 [0:3:0][0:0:1] axis=1
BH_MULTIPLY_REDUCE a2 [0:3:1] a0 [0:3:0][0:0:1] axis=1
BH_SYNC a1
BH_SYNC a2
`)
	for i, v := range regSlice(t, m, 1, 3) {
		if v != 0 {
			t.Errorf("empty sum[%d] = %v, want 0", i, v)
		}
	}
	for i, v := range regSlice(t, m, 2, 3) {
		if v != 1 {
			t.Errorf("empty prod[%d] = %v, want 1", i, v)
		}
	}
}

func TestReduceEmptyAxisNoIdentityErrors(t *testing.T) {
	// MIN/MAX have no identity in the first-element-seeded scheme; an
	// empty axis stays an error for them.
	for _, op := range []string{"BH_MINIMUM_REDUCE", "BH_MAXIMUM_REDUCE"} {
		src := `
.reg a0 float64 10
.reg a1 float64 3
BH_RANDOM a0 5 0
` + op + ` a1 [0:3:1] a0 [0:3:0][0:0:1] axis=1
BH_SYNC a1
`
		p, err := bytecode.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		m := New(Config{})
		err = m.Run(p)
		m.Close()
		if err == nil || !strings.Contains(err.Error(), "identity") {
			t.Errorf("%s over empty axis: err = %v, want identity error", op, err)
		}
	}
}

func TestScanEmptyAxisIsNoop(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 10
.reg a1 float64 10
BH_RANDOM a0 5 0
BH_ADD_ACCUMULATE a1 [0:0:1] a0 [0:0:1] axis=0
BH_SYNC a1
`)
	for i, v := range regSlice(t, m, 1, 10) {
		if v != 0 {
			t.Errorf("empty scan wrote a1[%d] = %v", i, v)
		}
	}
}
