package vm

import "sync"

// workerPool is a fixed set of long-lived goroutines consuming closures.
// Sweeps submit chunk jobs and wait; the pool amortizes goroutine start-up
// across the whole run, standing in for the paper backend's OpenCL queue.
type workerPool struct {
	jobs    chan func()
	done    sync.WaitGroup
	workers int
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		jobs:    make(chan func()),
		workers: workers,
	}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.done.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// close stops the workers and waits for them to exit.
func (p *workerPool) close() {
	close(p.jobs)
	p.done.Wait()
}

// parallelFor runs body over [0, n) split into per-worker chunks. Small
// ranges run inline on the caller's goroutine; the last chunk also runs
// inline so one worker fewer is needed.
func (p *workerPool) parallelFor(n, threshold int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers <= 1 || n < threshold {
		body(0, n)
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for c := 0; c < chunks-1; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.jobs <- func() {
			defer wg.Done()
			body(lo, hi)
		}
	}
	body((chunks-1)*size, n)
	wg.Wait()
}
