package vm

import "sync"

// workerPool is a fixed set of long-lived goroutines consuming closures.
// Sweeps submit chunk jobs and wait; the pool amortizes goroutine start-up
// across the whole run, standing in for the paper backend's OpenCL queue.
// One pool may serve many Machines concurrently (the shared-runtime
// configuration): submissions from different sessions interleave freely,
// and close waits for every in-flight parallelFor before tearing the
// workers down, so a session mid-sweep can never send on a closed channel.
type workerPool struct {
	jobs    chan func() // immutable after newWorkerPool (the channel; close closes it under mu)
	done    sync.WaitGroup
	workers int // immutable after newWorkerPool

	// inflight counts parallelFor calls that are (or are about to be)
	// submitting chunk jobs. close flips closed first, then waits out
	// inflight, so every submitted chunk runs before the jobs channel
	// goes away, and a parallelFor that starts after close falls back to
	// running inline on its caller.
	mu       sync.Mutex
	inflight sync.WaitGroup
	closed   bool // guarded by mu
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		jobs:    make(chan func()),
		workers: workers,
	}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.done.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// enter registers an in-flight parallelFor. It returns false when the pool
// is already closed — the caller must then run its range inline.
func (p *workerPool) enter() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.inflight.Add(1)
	return true
}

// close stops the workers and waits for them to exit. Submissions already
// in flight complete first; a parallelFor racing with close degrades to
// inline execution instead of panicking. close is idempotent: every call
// returns only once the workers have exited.
func (p *workerPool) close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		p.inflight.Wait()
		close(p.jobs)
	}
	p.done.Wait()
}

// parallelFor splits [0, n) across the pool using the pool's own width —
// the single-machine configuration, and the form the tests drive directly.
func (p *workerPool) parallelFor(n, threshold int, body func(lo, hi int)) {
	parRunner{pool: p, width: p.workers}.parallelFor(n, threshold, body)
}

// parRunner is one session's handle on a (possibly shared) worker pool: the
// pool supplies the goroutines, width caps how many chunks this session
// fans a sweep out into. A Machine on a shared Engine keeps its own width
// (Config.Workers), so sessions with different parallelism settings can
// coexist on one pool; chunk boundaries depend only on width and n, never
// on how busy the pool is, which keeps results binary-identical between
// shared and private configurations.
type parRunner struct {
	pool  *workerPool
	width int
}

// parallelFor runs body over [0, n) split into per-width chunks. Small
// ranges run inline on the caller's goroutine; the last chunk also runs
// inline so one worker fewer is needed. If the pool has been closed the
// whole range runs inline — correctness never depends on the pool.
func (pr parRunner) parallelFor(n, threshold int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if pr.width <= 1 || n < threshold {
		body(0, n)
		return
	}
	if !pr.pool.enter() {
		body(0, n)
		return
	}
	defer pr.pool.inflight.Done()
	chunks := pr.width
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for c := 0; c < chunks-1; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		pr.pool.jobs <- func() {
			defer wg.Done()
			body(lo, hi)
		}
	}
	body((chunks-1)*size, n)
	wg.Wait()
}
