package vm

import (
	"math"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

func bindInts(t *testing.T, m *Machine, r bytecode.RegID, vals []int64) {
	t.Helper()
	buf, err := tensor.NewBuffer(tensor.Int64, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		buf.SetInt(i, v)
	}
	m.Bind(r, tensor.Tensor{Buf: buf, View: tensor.NewView(tensor.MustShape(len(vals)))})
}

func runBound(t *testing.T, cfg Config, src string, bind func(m *Machine)) *Machine {
	t.Helper()
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	bind(m)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArgReduceFloatRows(t *testing.T) {
	// Ties keep the lowest index; the first NaN beats every number and
	// nothing displaces it afterwards (NumPy semantics).
	nan := math.NaN()
	rows := []float64{
		3, 1, 2, 1, // argmin 1 (first of the tie), argmax 0
		5, nan, 7, nan, // the NaN at 1 wins both directions
		-1, -1, 4, 0, // argmin 0, argmax 2
	}
	m := runBound(t, Config{}, `
.reg a0 float64 12
.reg a1 int64 3
.reg a2 int64 3
.in a0
BH_ARGMIN_REDUCE a1 [0:3:1] a0 [0:12:4][0:4:1] axis=1
BH_ARGMAX_REDUCE a2 [0:3:1] a0 [0:12:4][0:4:1] axis=1
`, func(m *Machine) { bindVec(t, m, 0, rows) })
	wantMin := []float64{1, 1, 0}
	wantMax := []float64{0, 1, 2}
	if got := regVals(t, m, 1, 3); !floatsEqual(got, wantMin) {
		t.Errorf("argmin = %v, want %v", got, wantMin)
	}
	if got := regVals(t, m, 2, 3); !floatsEqual(got, wantMax) {
		t.Errorf("argmax = %v, want %v", got, wantMax)
	}
}

func TestArgReduceNonLastAxis(t *testing.T) {
	vals := []float64{
		9, 1, 2, 3,
		0, 8, 1, 7,
		4, 2, 6, 5,
	}
	m := runBound(t, Config{}, `
.reg a0 float64 12
.reg a1 int64 4
.in a0
BH_ARGMAX_REDUCE a1 [0:4:1] a0 [0:12:4][0:4:1] axis=0
`, func(m *Machine) { bindVec(t, m, 0, vals) })
	want := []float64{0, 1, 2, 1}
	if got := regVals(t, m, 1, 4); !floatsEqual(got, want) {
		t.Errorf("argmax axis=0 = %v, want %v", got, want)
	}
}

func TestArgReduceIntInput(t *testing.T) {
	vals := []int64{5, 3, 3, 9, -2, 7, -2, 0}
	m := runBound(t, Config{}, `
.reg a0 int64 8
.reg a1 int64 2
.in a0
BH_ARGMIN_REDUCE a1 [0:2:1] a0 [0:8:4][0:4:1] axis=1
`, func(m *Machine) { bindInts(t, m, 0, vals) })
	want := []float64{1, 0}
	if got := regVals(t, m, 1, 2); !floatsEqual(got, want) {
		t.Errorf("int argmin = %v, want %v", got, want)
	}
}

// TestArgReduceStrategiesBitEqual pins the strategy-independence claim:
// the chunk-axis and split-outputs strategies must produce bitwise the
// same indices as the serial fold — comparisons never re-associate, so
// unlike float sum reductions this holds exactly.
func TestArgReduceStrategiesBitEqual(t *testing.T) {
	serialCfg := Config{ParallelThreshold: 1 << 30}
	parCfg := Config{Workers: 4}

	// One output over a long axis: the parallel machine chunks the axis.
	longVals := make([]float64, 40000)
	for i := range longVals {
		longVals[i] = float64((i*2654435761 + 7) % 4999)
	}
	longVals[31337] = math.NaN()
	longSrc := `
.reg a0 float64 40000
.reg a1 int64 1
.in a0
BH_ARGMIN_REDUCE a1 a0 [0:40000:1] axis=0
`
	ms := runBound(t, serialCfg, longSrc, func(m *Machine) { bindVec(t, m, 0, longVals) })
	mp := runBound(t, parCfg, longSrc, func(m *Machine) { bindVec(t, m, 0, longVals) })
	got, want := regVals(t, mp, 1, 1), regVals(t, ms, 1, 1)
	if got[0] != want[0] {
		t.Errorf("chunked argmin = %v, serial = %v", got, want)
	}
	if want[0] != 31337 {
		t.Errorf("serial argmin = %v, want the NaN at 31337", want)
	}

	// Many lines: the parallel machine splits the output sweep.
	wideVals := make([]float64, 256*200)
	for i := range wideVals {
		wideVals[i] = float64((i*40503 + 11) % 977)
	}
	wideSrc := `
.reg a0 float64 51200
.reg a1 int64 256
.in a0
BH_ARGMAX_REDUCE a1 [0:256:1] a0 [0:51200:200][0:200:1] axis=1
`
	ws := runBound(t, serialCfg, wideSrc, func(m *Machine) { bindVec(t, m, 0, wideVals) })
	wp := runBound(t, parCfg, wideSrc, func(m *Machine) { bindVec(t, m, 0, wideVals) })
	if gotW, wantW := regVals(t, wp, 1, 256), regVals(t, ws, 1, 256); !floatsEqual(gotW, wantW) {
		t.Error("split-outputs argmax differs from serial")
	}
}

func TestArgReduceEmptyAxisErrors(t *testing.T) {
	src := `
.reg a0 float64 10
.reg a1 int64 3
BH_RANDOM a0 5 0
BH_ARGMIN_REDUCE a1 [0:3:1] a0 [0:3:0][0:0:1] axis=1
`
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	defer m.Close()
	err = m.Run(p)
	if err == nil || !strings.Contains(err.Error(), "identity") {
		t.Errorf("argmin over empty axis: err = %v, want identity error", err)
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
