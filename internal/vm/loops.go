package vm

import (
	"math"

	"bohrium/internal/bytecode"
)

// Compiled loop bodies for contiguous float64 operands. compileLoop turns
// one instruction into a range-callable closure with the arithmetic
// inlined; the single-sweep fast path calls it across worker chunks, and
// fused clusters call it per cache-sized block — the interpreted
// equivalent of the kernel the paper's OpenCL backend would JIT.
func compileLoop(op bytecode.Opcode, dst []float64, srcs []rawSrc) (func(lo, hi int), bool) {
	switch len(srcs) {
	case 1:
		return compileUnaryLoop(op, dst, srcs[0])
	case 2:
		return compileBinaryLoop(op, dst, srcs[0], srcs[1])
	default:
		return nil, false
	}
}

func compileUnaryLoop(op bytecode.Opcode, dst []float64, s rawSrc) (func(lo, hi int), bool) {
	if op == bytecode.OpIdentity {
		if s.arr == nil {
			c := s.c
			return func(lo, hi int) {
				d := dst[lo:hi]
				for i := range d {
					d[i] = c
				}
			}, true
		}
		return func(lo, hi int) {
			copy(dst[lo:hi], s.arr[lo:hi])
		}, true
	}
	k, ok := floatUnaryKernel(op)
	if !ok {
		return nil, false
	}
	if s.arr == nil {
		c := k(s.c)
		return func(lo, hi int) {
			d := dst[lo:hi]
			for i := range d {
				d[i] = c
			}
		}, true
	}
	arr := s.arr
	return func(lo, hi int) {
		d, a := dst[lo:hi], arr[lo:hi]
		for i := range d {
			d[i] = k(a[i])
		}
	}, true
}

func compileBinaryLoop(op bytecode.Opcode, dst []float64, a, b rawSrc) (func(lo, hi int), bool) {
	// Hand-inlined forms for the memory-bound sweeps the paper's
	// transformations count.
	switch op {
	case bytecode.OpAdd:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.c
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] + c
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] + ys[i]
				}
			}, true
		}
	case bytecode.OpSubtract:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.c
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] - c
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] - ys[i]
				}
			}, true
		}
	case bytecode.OpMultiply:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.c
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] * c
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] * ys[i]
				}
			}, true
		}
	case bytecode.OpDivide:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.c
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] / c
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] / ys[i]
				}
			}, true
		}
	case bytecode.OpPower:
		// The expensive sweep power expansion eliminates: keep it honest
		// (a real math.Pow per element, as the OpenCL backend's pow()).
		if a.arr != nil && b.arr == nil {
			x, c := a.arr, b.c
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = math.Pow(xs[i], c)
				}
			}, true
		}
	}

	k, ok := floatBinaryKernel(op)
	if !ok {
		return nil, false
	}
	switch {
	case a.arr == nil && b.arr == nil:
		c := k(a.c, b.c)
		return func(lo, hi int) {
			d := dst[lo:hi]
			for i := range d {
				d[i] = c
			}
		}, true
	case a.arr == nil:
		y, c := b.arr, a.c
		return func(lo, hi int) {
			d, ys := dst[lo:hi], y[lo:hi]
			for i := range d {
				d[i] = k(c, ys[i])
			}
		}, true
	case b.arr == nil:
		x, c := a.arr, b.c
		return func(lo, hi int) {
			d, xs := dst[lo:hi], x[lo:hi]
			for i := range d {
				d[i] = k(xs[i], c)
			}
		}, true
	default:
		x, y := a.arr, b.arr
		return func(lo, hi int) {
			d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
			for i := range d {
				d[i] = k(xs[i], ys[i])
			}
		}, true
	}
}
