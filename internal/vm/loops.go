package vm

import (
	"math"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Compiled loop bodies for contiguous operands of any storage dtype.
// compileLoop turns one instruction into a range-callable closure with the
// arithmetic inlined; the single-sweep fast path calls it across worker
// chunks, and fused clusters call it per cache-sized block — the
// interpreted equivalent of the kernel the paper's OpenCL backend would
// JIT, instantiated per element type through Go generics.
//
// Semantics are pinned to the interpreted accessor path: float dtypes
// compute in the float64 class and convert back through the storage type
// (a no-op for float64; innocuous double rounding for float32 +,-,*,/),
// integer dtypes compute in the exact int64 class (falling back to the
// float class for ops with no integer kernel, exactly as slowElementwise
// does), and bool stores normalize to 0/1 the way Buffer.Set/SetInt do.
// This keeps fused execution bit-identical to the interpreter for every
// dtype.
func compileLoop[T tensor.Elem](dt tensor.DType, op bytecode.Opcode, dst []T, srcs []rawSrc[T]) (func(lo, hi int), bool) {
	switch {
	case dt == tensor.Bool:
		return compileBoolLoop(op, dst, srcs)
	case dt.IsFloat():
		switch len(srcs) {
		case 1:
			return compileFloatUnaryLoop(op, dst, srcs[0])
		case 2:
			return compileFloatBinaryLoop(op, dst, srcs[0], srcs[1])
		}
	default:
		switch len(srcs) {
		case 1:
			return compileIntUnaryLoop(op, dst, srcs[0])
		case 2:
			return compileIntBinaryLoop(op, dst, srcs[0], srcs[1])
		}
	}
	return nil, false
}

// fillLoop writes the constant c across the range.
func fillLoop[T tensor.Elem](dst []T, c T) func(lo, hi int) {
	return func(lo, hi int) {
		d := dst[lo:hi]
		for i := range d {
			d[i] = c
		}
	}
}

func compileFloatUnaryLoop[T tensor.Elem](op bytecode.Opcode, dst []T, s rawSrc[T]) (func(lo, hi int), bool) {
	if op == bytecode.OpIdentity {
		if s.arr == nil {
			return fillLoop(dst, T(s.cf)), true
		}
		arr := s.arr
		return func(lo, hi int) {
			copy(dst[lo:hi], arr[lo:hi])
		}, true
	}
	k, ok := floatUnaryKernel(op)
	if !ok {
		return nil, false
	}
	if s.arr == nil {
		return fillLoop(dst, T(k(s.cf))), true
	}
	arr := s.arr
	return func(lo, hi int) {
		d, a := dst[lo:hi], arr[lo:hi]
		for i := range d {
			d[i] = T(k(float64(a[i])))
		}
	}, true
}

func compileFloatBinaryLoop[T tensor.Elem](op bytecode.Opcode, dst []T, a, b rawSrc[T]) (func(lo, hi int), bool) {
	// Specialized word-wide/unrolled kernels first; each declines unless
	// its bit-for-bit equivalence argument holds (loops_specialized.go).
	if loop, ok := specializedFloatBinary(op, dst, a, b); ok {
		return loop, true
	}
	// Hand-inlined forms for the memory-bound sweeps the paper's
	// transformations count.
	switch op {
	case bytecode.OpAdd:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.cf
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) + c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) + float64(ys[i]))
				}
			}, true
		}
	case bytecode.OpSubtract:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.cf
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) - c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) - float64(ys[i]))
				}
			}, true
		}
	case bytecode.OpMultiply:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.cf
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) * c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) * float64(ys[i]))
				}
			}, true
		}
	case bytecode.OpDivide:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.cf
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) / c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(float64(xs[i]) / float64(ys[i]))
				}
			}, true
		}
	case bytecode.OpPower:
		// The expensive sweep power expansion eliminates: keep it honest
		// (a real math.Pow per element, as the OpenCL backend's pow()).
		if a.arr != nil && b.arr == nil {
			x, c := a.arr, b.cf
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(math.Pow(float64(xs[i]), c))
				}
			}, true
		}
	}

	k, ok := floatBinaryKernel(op)
	if !ok {
		return nil, false
	}
	switch {
	case a.arr == nil && b.arr == nil:
		return fillLoop(dst, T(k(a.cf, b.cf))), true
	case a.arr == nil:
		y, c := b.arr, a.cf
		return func(lo, hi int) {
			d, ys := dst[lo:hi], y[lo:hi]
			for i := range d {
				d[i] = T(k(c, float64(ys[i])))
			}
		}, true
	case b.arr == nil:
		x, c := a.arr, b.cf
		return func(lo, hi int) {
			d, xs := dst[lo:hi], x[lo:hi]
			for i := range d {
				d[i] = T(k(float64(xs[i]), c))
			}
		}, true
	default:
		x, y := a.arr, b.arr
		return func(lo, hi int) {
			d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
			for i := range d {
				d[i] = T(k(float64(xs[i]), float64(ys[i])))
			}
		}, true
	}
}

func compileIntUnaryLoop[T tensor.Elem](op bytecode.Opcode, dst []T, s rawSrc[T]) (func(lo, hi int), bool) {
	if k, ok := intUnaryKernel(op); ok {
		if s.arr == nil {
			return fillLoop(dst, T(k(s.ci))), true
		}
		arr := s.arr
		return func(lo, hi int) {
			d, a := dst[lo:hi], arr[lo:hi]
			for i := range d {
				d[i] = T(k(int64(a[i])))
			}
		}, true
	}
	// Transcendentals on integers compute in the float class and truncate
	// back through the storage type, matching slowUnaryFloat + Buffer.Set.
	k, ok := floatUnaryKernel(op)
	if !ok {
		return nil, false
	}
	if s.arr == nil {
		return fillLoop(dst, T(k(s.cf))), true
	}
	arr := s.arr
	return func(lo, hi int) {
		d, a := dst[lo:hi], arr[lo:hi]
		for i := range d {
			d[i] = T(k(float64(a[i])))
		}
	}, true
}

func compileIntBinaryLoop[T tensor.Elem](op bytecode.Opcode, dst []T, a, b rawSrc[T]) (func(lo, hi int), bool) {
	// Specialized native-width kernels first (loops_specialized.go).
	if loop, ok := specializedIntBinary(op, dst, a, b); ok {
		return loop, true
	}
	// Hand-inlined wrap-exact forms: widening to int64 and truncating back
	// through T is identical to native T arithmetic for +,-,* and matches
	// the interpreted int class for every width.
	switch op {
	case bytecode.OpAdd:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.ci
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(int64(xs[i]) + c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(int64(xs[i]) + int64(ys[i]))
				}
			}, true
		}
	case bytecode.OpSubtract:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.ci
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(int64(xs[i]) - c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(int64(xs[i]) - int64(ys[i]))
				}
			}, true
		}
	case bytecode.OpMultiply:
		switch {
		case a.arr != nil && b.arr == nil:
			x, c := a.arr, b.ci
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(int64(xs[i]) * c)
				}
			}, true
		case a.arr != nil && b.arr != nil:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(int64(xs[i]) * int64(ys[i]))
				}
			}, true
		}
	}
	if k, ok := intBinaryKernel(op); ok {
		switch {
		case a.arr == nil && b.arr == nil:
			return fillLoop(dst, T(k(a.ci, b.ci))), true
		case a.arr == nil:
			y, c := b.arr, a.ci
			return func(lo, hi int) {
				d, ys := dst[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(k(c, int64(ys[i])))
				}
			}, true
		case b.arr == nil:
			x, c := a.arr, b.ci
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = T(k(int64(xs[i]), c))
				}
			}, true
		default:
			x, y := a.arr, b.arr
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = T(k(int64(xs[i]), int64(ys[i])))
				}
			}, true
		}
	}
	// Ops with no integer kernel (ARCTAN2) compute in the float class and
	// truncate back, as the interpreted path does.
	k, ok := floatBinaryKernel(op)
	if !ok {
		return nil, false
	}
	switch {
	case a.arr == nil && b.arr == nil:
		return fillLoop(dst, T(k(a.cf, b.cf))), true
	case a.arr == nil:
		y, c := b.arr, a.cf
		return func(lo, hi int) {
			d, ys := dst[lo:hi], y[lo:hi]
			for i := range d {
				d[i] = T(k(c, float64(ys[i])))
			}
		}, true
	case b.arr == nil:
		x, c := a.arr, b.cf
		return func(lo, hi int) {
			d, xs := dst[lo:hi], x[lo:hi]
			for i := range d {
				d[i] = T(k(float64(xs[i]), c))
			}
		}, true
	default:
		x, y := a.arr, b.arr
		return func(lo, hi int) {
			d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
			for i := range d {
				d[i] = T(k(float64(xs[i]), float64(ys[i])))
			}
		}, true
	}
}

// compileBoolLoop handles dtype bool (uint8 storage): values compute in
// the int class where a kernel exists (float class otherwise) and every
// store normalizes to 0/1 exactly as Buffer.Set/SetInt do.
func compileBoolLoop[T tensor.Elem](op bytecode.Opcode, dst []T, srcs []rawSrc[T]) (func(lo, hi int), bool) {
	switch len(srcs) {
	case 1:
		s := srcs[0]
		if k, ok := intUnaryKernel(op); ok {
			if s.arr == nil {
				return fillLoop(dst, b01[T](k(s.ci) != 0)), true
			}
			arr := s.arr
			return func(lo, hi int) {
				d, a := dst[lo:hi], arr[lo:hi]
				for i := range d {
					d[i] = b01[T](k(int64(a[i])) != 0)
				}
			}, true
		}
		k, ok := floatUnaryKernel(op)
		if !ok {
			return nil, false
		}
		if s.arr == nil {
			return fillLoop(dst, b01[T](k(s.cf) != 0)), true
		}
		arr := s.arr
		return func(lo, hi int) {
			d, a := dst[lo:hi], arr[lo:hi]
			for i := range d {
				d[i] = b01[T](k(float64(a[i])) != 0)
			}
		}, true
	case 2:
		a, b := srcs[0], srcs[1]
		if k, ok := intBinaryKernel(op); ok {
			la, lb := intLoad(a), intLoad(b)
			return func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = b01[T](k(la(i), lb(i)) != 0)
				}
			}, true
		}
		k, ok := floatBinaryKernel(op)
		if !ok {
			return nil, false
		}
		la, lb := floatLoad(a), floatLoad(b)
		return func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = b01[T](k(la(i), lb(i)) != 0)
			}
		}, true
	}
	return nil, false
}

// b01 is the bool-normalized store value.
func b01[T tensor.Elem](v bool) T {
	if v {
		return 1
	}
	return 0
}

// intLoad/floatLoad build per-index class loaders for a source, used by
// the (cold) bool path where per-element closure calls are acceptable.
func intLoad[T tensor.Elem](s rawSrc[T]) func(i int) int64 {
	if s.arr == nil {
		c := s.ci
		return func(int) int64 { return c }
	}
	arr := s.arr
	return func(i int) int64 { return int64(arr[i]) }
}

func floatLoad[T tensor.Elem](s rawSrc[T]) func(i int) float64 {
	if s.arr == nil {
		c := s.cf
		return func(int) float64 { return c }
	}
	arr := s.arr
	return func(i int) float64 { return float64(arr[i]) }
}
