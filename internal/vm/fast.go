package vm

import (
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// rawSrc is a fast-path source for storage type T: a contiguous typed
// slice, or a scalar constant carried in both computation classes (cf for
// the float64 class, ci for the exact int64 class — mirroring how
// resolveSources materializes constants for the accessor path).
type rawSrc[T tensor.Elem] struct {
	arr []T // nil for constants
	cf  float64
	ci  int64
}

// rawSources converts resolved sources into fast-path form for storage
// type T, or fails if any source is non-contiguous, differently sized, or
// not stored as T.
func rawSources[T tensor.Elem](srcs []source, n int) ([]rawSrc[T], bool) {
	out := make([]rawSrc[T], len(srcs))
	for i, s := range srcs {
		if s.isConst {
			out[i] = rawSrc[T]{cf: s.cf, ci: s.ci}
			continue
		}
		raw, ok := tensor.RawSlice[T](s.buf)
		if !ok || !s.view.Contiguous() || s.view.Size() != n {
			return nil, false
		}
		out[i] = rawSrc[T]{arr: raw[s.view.Offset : s.view.Offset+n]}
	}
	return out, true
}

// fastElementwise executes the instruction with a compiled typed loop over
// raw slices when the output and every register operand share one dtype
// and all views are contiguous with equal size; returns false to fall back
// to the strided accessor path. Large sweeps are split across the worker
// pool. Every supported dtype takes this path; mixed-dtype instructions
// (casts, promotions) keep the accessor path, whose class rules this one
// reproduces bit-for-bit.
func (m *Machine) fastElementwise(op bytecode.Opcode, out tensor.Buffer, outView tensor.View, srcs []source) bool {
	if !outView.Contiguous() {
		return false
	}
	switch out.DType() {
	case tensor.Float64:
		return fastTyped[float64](m, op, out, outView, srcs)
	case tensor.Float32:
		return fastTyped[float32](m, op, out, outView, srcs)
	case tensor.Int64:
		return fastTyped[int64](m, op, out, outView, srcs)
	case tensor.Int32:
		return fastTyped[int32](m, op, out, outView, srcs)
	case tensor.Bool, tensor.Uint8:
		return fastTyped[uint8](m, op, out, outView, srcs)
	default:
		return false
	}
}

func fastTyped[T tensor.Elem](m *Machine, op bytecode.Opcode, out tensor.Buffer, outView tensor.View, srcs []source) bool {
	raw, ok := tensor.RawSlice[T](out)
	if !ok {
		return false
	}
	// Class semantics are defined per instruction dtype; an input stored as
	// another dtype (even one with the same storage width) falls back.
	for _, s := range srcs {
		if !s.isConst && s.buf.DType() != out.DType() {
			return false
		}
	}
	n := outView.Size()
	rs, ok := rawSources[T](srcs, n)
	if !ok {
		return false
	}
	dst := raw[outView.Offset : outView.Offset+n]
	loop, ok := compileLoop(out.DType(), op, dst, rs)
	if !ok {
		return false
	}
	m.par.parallelFor(n, m.cfg.ParallelThreshold, loop)
	return true
}
