package vm

import (
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// rawSrc is a fast-path source: a contiguous float64 slice or a constant.
type rawSrc struct {
	arr []float64 // nil for constants
	c   float64
}

// rawSources converts resolved sources into fast-path form, or fails if
// any source is non-contiguous, differently sized, or not float64.
func rawSources(srcs []source, n int) ([]rawSrc, bool) {
	out := make([]rawSrc, len(srcs))
	for i, s := range srcs {
		if s.isConst {
			out[i] = rawSrc{c: s.cf}
			continue
		}
		raw, ok := tensor.Float64s(s.buf)
		if !ok || !s.view.Contiguous() || s.view.Size() != n {
			return nil, false
		}
		out[i] = rawSrc{arr: raw[s.view.Offset : s.view.Offset+n]}
	}
	return out, true
}

// fastElementwise executes the instruction with a compiled loop over raw
// float64 slices when every operand is contiguous float64 of equal size;
// returns false to fall back to the strided path. Large sweeps are split
// across the worker pool.
func (m *Machine) fastElementwise(op bytecode.Opcode, out tensor.Buffer, outView tensor.View, srcs []source) bool {
	raw, ok := tensor.Float64s(out)
	if !ok || !outView.Contiguous() {
		return false
	}
	n := outView.Size()
	rs, ok := rawSources(srcs, n)
	if !ok {
		return false
	}
	dst := raw[outView.Offset : outView.Offset+n]
	loop, ok := compileLoop(op, dst, rs)
	if !ok {
		return false
	}
	m.pool.parallelFor(n, m.cfg.ParallelThreshold, loop)
	return true
}
