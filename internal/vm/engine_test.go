package vm

import (
	"sync"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// TestEngineSharesPlanCache: a plan one machine inserts is a hit for
// every other machine on the engine, and hit/miss counters land on the
// machine that did the lookup while the engine aggregates them.
func TestEngineSharesPlanCache(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	defer eng.Close()
	m1 := eng.NewMachine(Config{Fusion: true})
	m2 := eng.NewMachine(Config{Fusion: true})
	defer m1.Close()
	defer m2.Close()

	prog := planTestProg(1)
	fp := prog.Fingerprint()
	pl, err := m1.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m1.InsertPlan(fp, prog.Constants(), true, pl, nil)

	if _, _, ok := m2.LookupPlan(fp, prog.Constants(), nil); !ok {
		t.Fatal("machine 2 missed a plan machine 1 compiled")
	}
	if st := m2.Stats(); st.PlanHits != 1 || st.PlanMisses != 0 {
		t.Errorf("m2 counters: hits=%d misses=%d, want 1/0", st.PlanHits, st.PlanMisses)
	}
	if st := m1.Stats(); st.PlanHits != 0 {
		t.Errorf("m1 counted m2's hit: %d", st.PlanHits)
	}
	if agg := eng.Stats(); agg.PlanHits != 1 {
		t.Errorf("engine aggregate hits = %d, want 1", agg.PlanHits)
	}
}

// TestEngineMachineOptOut: Config.PlanCacheSize < 0 opts one machine out
// of the shared cache without affecting its siblings.
func TestEngineMachineOptOut(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	defer eng.Close()
	in := eng.NewMachine(Config{})
	out := eng.NewMachine(Config{PlanCacheSize: -1})
	defer in.Close()
	defer out.Close()
	if !in.PlanCacheEnabled() {
		t.Error("default machine lost the shared cache")
	}
	if out.PlanCacheEnabled() {
		t.Error("opted-out machine still caches")
	}
	prog := planTestProg(2)
	pl, _ := in.Compile(prog)
	out.InsertPlan(prog.Fingerprint(), prog.Constants(), true, pl, nil)
	if _, _, ok := in.LookupPlan(prog.Fingerprint(), prog.Constants(), nil); ok {
		t.Error("opted-out machine's insert landed in the shared cache")
	}
	if st := out.Stats(); st.PlanHits != 0 || st.PlanMisses != 0 {
		t.Errorf("opted-out machine counted cache traffic: %+v", st)
	}
}

// TestEngineConcurrentLookupInsert hammers one engine's plan cache from
// many machines at once — fingerprint-identical and -distinct programs,
// parametric entries patched under racing constant vectors — and checks
// counter coherence. Run with -race.
func TestEngineConcurrentLookupInsert(t *testing.T) {
	eng := NewEngine(EngineConfig{PlanCacheSize: 8}) // small: force evictions
	defer eng.Close()

	const sessions = 8
	const rounds = 40
	var wg sync.WaitGroup
	machines := make([]*Machine, sessions)
	for i := range machines {
		machines[i] = eng.NewMachine(Config{Fusion: true})
	}
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m *Machine) {
			defer wg.Done()
			bindVec(t, m, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
			for r := 0; r < rounds; r++ {
				// Constant varies with the session: parametric hits from
				// other sessions' entries must patch clones, never the
				// plan another session is executing.
				prog := planTestProg(float64(i%3 + 1))
				fp := prog.Fingerprint()
				var plan *Plan
				if cached, _, ok := m.LookupPlan(fp, prog.Constants(), nil); ok {
					plan = cached.(*Plan)
				} else {
					var err error
					if plan, err = m.Compile(prog); err != nil {
						t.Error(err)
						return
					}
					m.InsertPlan(fp, prog.Constants(), true, plan, nil)
				}
				if err := plan.Execute(m); err != nil {
					t.Error(err)
					return
				}
				want := (1 + float64(i%3+1)) * 2
				if got := regVals(t, m, 1, 8); got[0] != want {
					t.Errorf("session %d round %d: got %v, want %v", i, r, got[0], want)
					return
				}
			}
		}(i, m)
	}
	wg.Wait()

	var hits, misses int
	for _, m := range machines {
		st := m.Stats()
		hits += st.PlanHits
		misses += st.PlanMisses
		m.Close()
	}
	if total := hits + misses; total != sessions*rounds {
		t.Errorf("lookups = %d (hits %d + misses %d), want %d", total, hits, misses, sessions*rounds)
	}
	if hits == 0 {
		t.Error("no cross-session plan reuse at all")
	}
	agg := eng.Stats() // all machines retired: aggregate == folded totals
	if agg.PlanHits != hits || agg.PlanMisses != misses {
		t.Errorf("engine aggregate %d/%d != summed sessions %d/%d",
			agg.PlanHits, agg.PlanMisses, hits, misses)
	}
}

// TestPlanCacheShardedEviction: per-shard LRU stays within the total
// capacity bound and evicts once a shard overflows. Capacity 64 is the
// smallest that actually shards (8 shards of 8); tighter caches collapse
// to one shard with exact global LRU.
func TestPlanCacheShardedEviction(t *testing.T) {
	const capTotal = 64
	eng := NewEngine(EngineConfig{PlanCacheSize: capTotal})
	defer eng.Close()
	m := eng.NewMachine(Config{})
	defer m.Close()
	sized := func(n int) *bytecode.Program {
		p := bytecode.NewProgram()
		a0 := p.NewReg(tensor.Float64, n)
		v := tensor.NewView(tensor.MustShape(n))
		p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstFloat(1)))
		p.MarkOutput(a0)
		return p
	}
	for n := 1; n <= 3*capTotal; n++ {
		prog := sized(n)
		pl, err := m.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		m.InsertPlan(prog.Fingerprint(), prog.Constants(), true, pl, nil)
	}
	if got := eng.PlanCacheLen(); got > capTotal {
		t.Errorf("cache holds %d entries, cap %d", got, capTotal)
	}
	if st := m.Stats(); st.PlanEvictions == 0 {
		t.Error("no evictions despite 3x-capacity insert stream")
	}
}

// TestWorkerPoolCloseWaitsForInflight: closing the shared pool while
// another session is mid-parallelFor must wait for its submitted chunks,
// and parallelFor after close degrades to inline execution. Run with
// -race.
func TestWorkerPoolCloseWaitsForInflight(t *testing.T) {
	pool := newWorkerPool(4)
	const n = 1 << 16
	hits := make([]int32, n)
	start := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		close(start)
		for iter := 0; iter < 50; iter++ {
			pool.parallelFor(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
		}
		close(finished)
	}()
	<-start
	pool.close() // races with the submitting goroutine on purpose
	<-finished
	want := hits[0]
	for i, h := range hits {
		if h != want {
			t.Fatalf("element %d visited %d times, element 0 %d times — a chunk was lost", i, h, want)
		}
	}
	// After close: still correct, inline.
	ran := false
	pool.parallelFor(10, 1, func(lo, hi int) {
		if lo == 0 && hi == 10 {
			ran = true
		}
	})
	if !ran {
		t.Error("post-close parallelFor did not run inline over the full range")
	}
	pool.close() // idempotent
}
