package vm

import (
	"fmt"
	"math"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Reduction-epilogue fusion: when a reduction over any axis — including
// the argmin/argmax index reductions — consumes the output of the
// elementwise cluster right before it, the producer chain folds into the
// reduction's accumulation loop — sum(x*y) becomes one sweep with no
// materialized temporary. Producer steps evaluate per
// element into *virtual registers* (one slot per cluster-written
// register); a register that is still referenced after the reduction is
// additionally written through to memory, so only dead temporaries skip
// materialization entirely.
//
// The fold reuses the worker-count-independent strategies of reduce.go
// (split-outputs, chunk-axis, serial) with the same chunkParams sizing, so
// Workers:1 ≡ Workers:N stays bit-for-bit for integer folds and within
// the documented reassociation tolerance for chunked float folds — and
// the fused result is bit-identical to interpreted execution, which picks
// the same strategy over the same views.

// epiSrcDesc describes one source operand of a producer step after
// virtual-register resolution: a constant, a virtual slot, or a memory
// read of (reg, view).
type epiSrcDesc struct {
	isConst bool
	cf      float64
	ci      int64
	slot    int // >= 0: virtual register slot
	reg     bytecode.RegID
	view    tensor.View
}

// epiStepDesc is one producer instruction with resolved operands.
type epiStepDesc struct {
	index   int // instruction index, for error reports
	in      *bytecode.Instruction
	dtype   tensor.DType
	outSlot int
	matDst  bool // write through to memory (register live after epilogue)
	srcs    []epiSrcDesc
}

// epiPlan is the static (buffer-independent) compilation of an epilogue
// cluster.
type epiPlan struct {
	cl       cluster
	redIdx   int
	red      *bytecode.Instruction
	shape    tensor.Shape
	axis     int // reduced axis within shape
	lineDims []int
	axLen    int
	lines    int
	outSeek  bool // seek the output cursor per line (false: single line)
	steps    []epiStepDesc
	slotOf   map[bytecode.RegID]int
	slotDT   []tensor.DType // dtype per virtual slot
	nSlots   int
	mat      map[bytecode.RegID]bool // registers written through to memory
	pSlot    int
	pFloat   bool
	intRed   bool
}

// referencedAfter reports whether any instruction after index j references
// register r other than releasing it with BH_FREE.
func referencedAfter(p *bytecode.Program, j int, r bytecode.RegID) bool {
	for k := j + 1; k < len(p.Instrs); k++ {
		in := &p.Instrs[k]
		if in.Op == bytecode.OpFree {
			continue
		}
		if in.Out.IsReg() && in.Out.Reg == r {
			return true
		}
		if in.ReadsReg(r) {
			return true
		}
	}
	return false
}

// freedAfter reports whether some instruction after index j frees r. A
// producer register may stay virtual (never materialized) only when the
// batch itself declares the buffer dead: lazy front-ends treat any other
// written register as defined for the next batch.
func freedAfter(p *bytecode.Program, j int, r bytecode.RegID) bool {
	for k := j + 1; k < len(p.Instrs); k++ {
		in := &p.Instrs[k]
		if in.Op == bytecode.OpFree && in.Out.IsReg() && in.Out.Reg == r {
			return true
		}
	}
	return false
}

// analyzeEpilogue resolves the producer steps of a reduce cluster into an
// epiPlan, or reports false when the shapes do not line up (the caller
// then falls back to the two-sweep path).
func analyzeEpilogue(p *bytecode.Program, cl cluster) (*epiPlan, bool) {
	redIdx := cl.end - 1
	red := &p.Instrs[redIdx]
	shape := cl.shape
	axis := red.Axis
	lineShape := make(tensor.Shape, 0, len(shape)-1)
	for d := range shape {
		if d != axis {
			lineShape = append(lineShape, shape[d])
		}
	}
	plan := &epiPlan{
		cl:       cl,
		redIdx:   redIdx,
		red:      red,
		shape:    shape,
		axis:     axis,
		lineDims: []int(lineShape),
		axLen:    shape[axis],
		lines:    lineShape.Size(),
		slotOf:   map[bytecode.RegID]int{},
	}
	outView := red.Out.View
	if outView.Size() != plan.lines {
		return nil, false
	}
	switch {
	case outView.Shape.Equal(lineShape):
		plan.outSeek = true
	case plan.lines == 1:
		plan.outSeek = false // single output element at outView.Offset
	default:
		return nil, false
	}

	type writeRec struct {
		step int
		view tensor.View
	}
	writes := map[bytecode.RegID][]writeRec{}
	for k := cl.start; k < redIdx; k++ {
		in := &p.Instrs[k]
		if _, ok := plan.slotOf[in.Out.Reg]; !ok {
			plan.slotOf[in.Out.Reg] = len(plan.slotOf)
			ri, _ := p.Reg(in.Out.Reg)
			plan.slotDT = append(plan.slotDT, ri.DType)
		}
		writes[in.Out.Reg] = append(writes[in.Out.Reg], writeRec{k, in.Out.View})
	}
	plan.nSlots = len(plan.slotOf)

	// A register skips materialization only when it is provably dead: the
	// batch frees it after the reduction, nothing else references it, and
	// it is not externally bound or observed.
	materialize := map[bytecode.RegID]bool{}
	for r := range plan.slotOf {
		if p.IsInput(r) || p.IsOutput(r) || referencedAfter(p, redIdx, r) || !freedAfter(p, redIdx, r) {
			materialize[r] = true
		}
	}

	for k := cl.start; k < redIdx; k++ {
		in := &p.Instrs[k]
		ri, _ := p.Reg(in.Out.Reg)
		sd := epiStepDesc{index: k, in: in, dtype: ri.DType, outSlot: plan.slotOf[in.Out.Reg]}
		for _, opnd := range in.Inputs() {
			if opnd.IsConst() {
				sd.srcs = append(sd.srcs, epiSrcDesc{isConst: true, cf: opnd.Const.Float(), ci: opnd.Const.Int(), slot: -1})
				continue
			}
			d := epiSrcDesc{slot: -1, reg: opnd.Reg, view: opnd.View}
			// The most recent preceding in-cluster write decides how the
			// read resolves: same window → the virtual value; a different
			// (necessarily disjoint) window → real memory, which forces
			// the register's writes to land there too.
			lastView, hasWrite := tensor.View{}, false
			for _, w := range writes[opnd.Reg] {
				if w.step < k {
					lastView, hasWrite = w.view, true
				}
			}
			if hasWrite {
				if lastView.Equal(opnd.View) {
					d.slot = plan.slotOf[opnd.Reg]
				} else {
					materialize[opnd.Reg] = true
				}
			}
			sd.srcs = append(sd.srcs, d)
		}
		plan.steps = append(plan.steps, sd)
	}
	for i := range plan.steps {
		plan.steps[i].matDst = materialize[plan.steps[i].in.Out.Reg]
	}
	plan.mat = materialize

	pInfo, _ := p.Reg(red.In1.Reg)
	outInfo, _ := p.Reg(red.Out.Reg)
	plan.pSlot = plan.slotOf[red.In1.Reg]
	plan.pFloat = pInfo.DType.IsFloat()
	plan.intRed = !outInfo.DType.IsFloat() && !pInfo.DType.IsFloat()
	return plan, true
}

// epiMem tracks one memory operand's position: a cursor over the line
// dimensions plus the stride of the folded axis. base is the buffer index
// of (line, 0); the element at axis position j is base + j*lastStride.
type epiMem struct {
	lineCur    *cursor
	lastStride int
	base       int
}

func newEpiMem(v tensor.View, axis int) *epiMem {
	lineView, axStride, _ := removeAxis(v, axis)
	return &epiMem{lineCur: newCursor(lineView), lastStride: axStride}
}

// epiEval is one worker's compiled evaluator. Slots and cursor positions
// are mutable per-element state, so every worker chunk builds its own.
type epiEval struct {
	steps    []func(j int)
	mems     []*epiMem
	lineDims []int
	outCur   *cursor
	outSeek  bool
	fslots   []float64
	islots   []int64
	readF    func() float64
	readI    func() int64
	bufs     []tensor.Buffer // memory buffers touched (for alias checks)
}

// rebase positions every memory operand and the output cursor at line l.
func (ev *epiEval) rebase(l int) {
	for _, mem := range ev.mems {
		mem.lineCur.seek(ev.lineDims, l)
		mem.base = mem.lineCur.idx
	}
	if ev.outSeek {
		ev.outCur.seek(ev.lineDims, l)
	}
}

// eval runs every producer step at axis position j of the current line.
func (ev *epiEval) eval(j int) {
	for _, st := range ev.steps {
		st(j)
	}
}

// buildEpiEval compiles a worker-local evaluator from the plan.
func (m *Machine) buildEpiEval(p *bytecode.Program, plan *epiPlan) (*epiEval, error) {
	ev := &epiEval{
		lineDims: plan.lineDims,
		outCur:   newCursor(plan.red.Out.View),
		outSeek:  plan.outSeek,
		fslots:   make([]float64, plan.nSlots),
		islots:   make([]int64, plan.nSlots),
	}
	if !plan.outSeek {
		ev.outCur.idx = plan.red.Out.View.Offset
	}
	for i := range plan.steps {
		sd := &plan.steps[i]
		var step func(j int)
		var err error
		switch sd.dtype {
		case tensor.Float64:
			step, err = buildEpiStep[float64](m, p, plan, sd, ev)
		case tensor.Float32:
			step, err = buildEpiStep[float32](m, p, plan, sd, ev)
		case tensor.Int64:
			step, err = buildEpiStep[int64](m, p, plan, sd, ev)
		case tensor.Int32:
			step, err = buildEpiStep[int32](m, p, plan, sd, ev)
		case tensor.Bool, tensor.Uint8:
			step, err = buildEpiStep[uint8](m, p, plan, sd, ev)
		default:
			err = fmt.Errorf("fused output %s has unsupported dtype %v", sd.in.Out.Reg, sd.dtype)
		}
		if err != nil {
			return nil, instrErr(p, sd.index, err)
		}
		ev.steps = append(ev.steps, step)
	}
	if plan.pFloat {
		fsl, s := ev.fslots, plan.pSlot
		ev.readF = func() float64 { return fsl[s] }
	} else {
		isl, s := ev.islots, plan.pSlot
		ev.readF = func() float64 { return float64(isl[s]) }
		ev.readI = func() int64 { return isl[s] }
	}
	return ev, nil
}

// epiSrc is a resolved, typed source operand of a producer step.
type epiSrc[T tensor.Elem] struct {
	arr  []T
	mem  *epiMem
	slot int
	cf   float64
	ci   int64
}

// buildEpiStep compiles one producer step for its storage type, with the
// same computation-class rules as compileLoop.
func buildEpiStep[T tensor.Elem](m *Machine, p *bytecode.Program, plan *epiPlan, sd *epiStepDesc, ev *epiEval) (func(j int), error) {
	dt := sd.dtype
	intClass := !dt.IsFloat()
	isBool := dt == tensor.Bool

	var dstArr []T
	var dstMem *epiMem
	if sd.matDst {
		buf, err := m.regs.ensure(p, sd.in.Out.Reg)
		if err != nil {
			return nil, err
		}
		arr, ok := tensor.RawSlice[T](buf)
		if !ok {
			return nil, fmt.Errorf("fused output %s is not %v", sd.in.Out.Reg, dt)
		}
		dstArr = arr
		dstMem = newEpiMem(sd.in.Out.View, plan.axis)
		ev.mems = append(ev.mems, dstMem)
		ev.bufs = append(ev.bufs, buf)
	}

	resolve := func(d *epiSrcDesc) (epiSrc[T], error) {
		if d.isConst {
			return epiSrc[T]{slot: -1, cf: d.cf, ci: d.ci}, nil
		}
		if d.slot >= 0 {
			return epiSrc[T]{slot: d.slot}, nil
		}
		var buf tensor.Buffer
		if _, written := plan.slotOf[d.reg]; written {
			b, err := m.regs.ensure(p, d.reg)
			if err != nil {
				return epiSrc[T]{}, err
			}
			buf = b
		} else if buf = m.regs.get(d.reg); buf == nil {
			return epiSrc[T]{}, fmt.Errorf("input register %s has no buffer", d.reg)
		}
		arr, ok := tensor.RawSlice[T](buf)
		if !ok {
			return epiSrc[T]{}, fmt.Errorf("fused input %s is not %v", d.reg, dt)
		}
		view := d.view
		if !view.Shape.Equal(plan.shape) {
			bv, err := view.BroadcastTo(plan.shape)
			if err != nil {
				return epiSrc[T]{}, err
			}
			view = bv
		}
		mem := newEpiMem(view, plan.axis)
		ev.mems = append(ev.mems, mem)
		ev.bufs = append(ev.bufs, buf)
		return epiSrc[T]{arr: arr, mem: mem, slot: -1}, nil
	}

	srcs := make([]epiSrc[T], 0, 2)
	for i := range sd.srcs {
		s, err := resolve(&sd.srcs[i])
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
	}

	loadF := func(s epiSrc[T]) func(j int) float64 {
		switch {
		case s.mem != nil:
			arr, mem := s.arr, s.mem
			return func(j int) float64 { return float64(arr[mem.base+j*mem.lastStride]) }
		case s.slot >= 0:
			if intClass {
				isl, k := ev.islots, s.slot
				return func(int) float64 { return float64(isl[k]) }
			}
			fsl, k := ev.fslots, s.slot
			return func(int) float64 { return fsl[k] }
		default:
			c := s.cf
			return func(int) float64 { return c }
		}
	}
	loadI := func(s epiSrc[T]) func(j int) int64 {
		switch {
		case s.mem != nil:
			arr, mem := s.arr, s.mem
			return func(j int) int64 { return int64(arr[mem.base+j*mem.lastStride]) }
		case s.slot >= 0:
			isl, k := ev.islots, s.slot
			return func(int) int64 { return isl[k] }
		default:
			c := s.ci
			return func(int) int64 { return c }
		}
	}

	// storeF/storeI commit one element: round through the storage type
	// into the class slot (and through to memory for live registers).
	fsl, isl, outSlot := ev.fslots, ev.islots, sd.outSlot
	storeF := func(j int, v float64) {
		t := T(v)
		fsl[outSlot] = float64(t)
		if dstArr != nil {
			dstArr[dstMem.base+j*dstMem.lastStride] = t
		}
	}
	storeI := func(j int, v int64) {
		var t T
		if isBool {
			t = b01[T](v != 0)
		} else {
			t = T(v)
		}
		isl[outSlot] = int64(t)
		if dstArr != nil {
			dstArr[dstMem.base+j*dstMem.lastStride] = t
		}
	}
	// Integer-dtype steps computed through the float class (ops with no
	// integer kernel) truncate back through the storage type.
	storeFI := func(j int, v float64) {
		var t T
		if isBool {
			t = b01[T](v != 0)
		} else {
			t = T(v)
		}
		isl[outSlot] = int64(t)
		if dstArr != nil {
			dstArr[dstMem.base+j*dstMem.lastStride] = t
		}
	}

	op := sd.in.Op
	switch len(srcs) {
	case 1:
		if intClass {
			if k, ok := intUnaryKernel(op); ok {
				la := loadI(srcs[0])
				return func(j int) { storeI(j, k(la(j))) }, nil
			}
			k, ok := floatUnaryKernel(op)
			if !ok {
				return nil, fmt.Errorf("no unary kernel for %s", op)
			}
			la := loadF(srcs[0])
			return func(j int) { storeFI(j, k(la(j))) }, nil
		}
		k, ok := floatUnaryKernel(op)
		if !ok {
			return nil, fmt.Errorf("no unary kernel for %s", op)
		}
		la := loadF(srcs[0])
		return func(j int) { storeF(j, k(la(j))) }, nil
	case 2:
		if intClass {
			if k, ok := intBinaryKernel(op); ok {
				la, lb := loadI(srcs[0]), loadI(srcs[1])
				return func(j int) { storeI(j, k(la(j), lb(j))) }, nil
			}
			k, ok := floatBinaryKernel(op)
			if !ok {
				return nil, fmt.Errorf("no binary kernel for %s", op)
			}
			la, lb := loadF(srcs[0]), loadF(srcs[1])
			return func(j int) { storeFI(j, k(la(j), lb(j))) }, nil
		}
		k, ok := floatBinaryKernel(op)
		if !ok {
			return nil, fmt.Errorf("no binary kernel for %s", op)
		}
		la, lb := loadF(srcs[0]), loadF(srcs[1])
		return func(j int) { storeF(j, k(la(j), lb(j))) }, nil
	default:
		return nil, fmt.Errorf("fused %s has %d inputs", op, len(srcs))
	}
}

// execClusterReduce executes a cluster whose final instruction is a
// reduction epilogue, falling back to the two-sweep path when the
// epilogue analysis failed at compile time (epi nil) or buffer aliasing
// makes folding unsafe.
func (m *Machine) execClusterReduce(p *bytecode.Program, cl cluster, epi *epiPlan) error {
	ok, err := m.tryReduceEpilogue(p, cl, epi)
	if err != nil || ok {
		return err
	}
	// Fallback: run the producers as a plain cluster, then the reduction
	// through the interpreter.
	prod := cluster{start: cl.start, end: cl.end - 1, fused: cl.end-1-cl.start > 1, shape: cl.shape, linear: cl.linear}
	switch {
	case !prod.fused:
		if err := m.exec(p, &p.Instrs[prod.start]); err != nil {
			return instrErr(p, prod.start, err)
		}
	case prod.linear:
		if err := m.execCluster(p, prod); err != nil {
			return err
		}
	default:
		if err := m.execClusterStrided(p, prod, prod.shape); err != nil {
			return err
		}
	}
	if err := m.exec(p, &p.Instrs[cl.end-1]); err != nil {
		return instrErr(p, cl.end-1, err)
	}
	return nil
}

// countEpilogueStats attributes one folded sweep to the counters: every
// producer plus the reduction ran, fused, in a single launch.
func (m *Machine) countEpilogueStats(p *bytecode.Program, plan *epiPlan) {
	nProd := len(plan.steps)
	m.stats.instructions.Add(int64(nProd + 1))
	m.stats.fusedInstructions.Add(int64(nProd + 1))
	m.countFusedDTypes(p, plan.cl.start, plan.cl.end)
	m.stats.sweeps.Add(1)
	m.stats.fusedReductions.Add(1)
	m.stats.elements.Add(int64(plan.shape.Size() * (nProd + 1)))
}

// tryReduceEpilogue compiles and runs the folded sweep from the
// precomputed (buffer-independent) epilogue analysis. It returns
// (false, nil) when plan is nil or when the reduction output's buffer
// aliases a producer operand — the caller then takes the two-sweep path,
// whose serial write order tolerates the alias. Linear (all-contiguous)
// clusters run the blockwise vectorized fold; strided clusters run the
// per-element evaluator below, which matches the cost model of their
// per-element cluster sweep.
func (m *Machine) tryReduceEpilogue(p *bytecode.Program, cl cluster, plan *epiPlan) (bool, error) {
	if plan == nil {
		return false, nil
	}
	red := plan.red
	outBuf, err := m.regs.ensure(p, red.Out.Reg)
	if err != nil {
		return false, instrErr(p, plan.redIdx, err)
	}
	// The blockwise linear path assumes line-major element order and a
	// plain accumulator fold, so it serves last-axis base reductions only;
	// interior axes and (value, index) folds run the per-element evaluator.
	if cl.linear && plan.axis == len(plan.shape)-1 && !red.Op.ArgReduce() {
		return m.tryLinearEpilogue(p, plan, outBuf)
	}
	// Validate compilation once up front; this also collects the memory
	// buffers the producers touch for the alias check.
	ev0, err := m.buildEpiEval(p, plan)
	if err != nil {
		return false, err
	}
	for _, buf := range ev0.bufs {
		if buf == outBuf {
			return false, nil
		}
	}

	m.countEpilogueStats(p, plan)
	strategy := m.sweepStrategyFor(red.Out.View, plan.lines, plan.axLen)
	build := func() (*epiEval, error) { return m.buildEpiEval(p, plan) }

	if red.Op.ArgReduce() {
		// Index reductions fold a (value, index) pair with execArgReduce's
		// exact comparison semantics: lowest index wins ties, the first NaN
		// beats every number, and the comparison class follows the producer
		// dtype. Comparisons never re-associate, so every strategy is
		// bit-identical to the interpreted fold.
		if !plan.pFloat {
			better := func(v, best int64) bool { return v < best }
			if red.Op == bytecode.OpArgmaxReduce {
				better = func(v, best int64) bool { return v > best }
			}
			runArgEpilogue(m, strategy, build, ev0, better,
				func(ev *epiEval) int64 { return ev.readI() }, outBuf, plan.lines, plan.axLen)
			return true, nil
		}
		better := func(v, best float64) bool {
			return v < best || (math.IsNaN(v) && !math.IsNaN(best))
		}
		if red.Op == bytecode.OpArgmaxReduce {
			better = func(v, best float64) bool {
				return v > best || (math.IsNaN(v) && !math.IsNaN(best))
			}
		}
		runArgEpilogue(m, strategy, build, ev0, better,
			func(ev *epiEval) float64 { return ev.readF() }, outBuf, plan.lines, plan.axLen)
		return true, nil
	}

	base, _ := red.Op.ReduceBase()
	if plan.intRed {
		k, ok := intBinaryKernel(base)
		if !ok {
			return false, instrErr(p, plan.redIdx, fmt.Errorf("no int kernel for %s", base))
		}
		runEpilogue(m, strategy, build, ev0, k,
			func(ev *epiEval) int64 { return ev.readI() }, tensor.Buffer.SetInt,
			outBuf, plan.lines, plan.axLen)
		return true, nil
	}
	k, ok := floatBinaryKernel(base)
	if !ok {
		return false, instrErr(p, plan.redIdx, fmt.Errorf("no kernel for %s", base))
	}
	runEpilogue(m, strategy, build, ev0, k,
		func(ev *epiEval) float64 { return ev.readF() }, tensor.Buffer.Set,
		outBuf, plan.lines, plan.axLen)
	return true, nil
}

// runEpilogue drives the folded sweep with the chosen strategy. Chunk
// boundaries come from chunkParams alone, so results are independent of
// the worker count exactly as in reduce.go: integer folds are bit-equal
// to serial, chunked float folds carry the documented reassociation
// tolerance.
func runEpilogue[E int64 | float64](m *Machine, strategy sweepStrategy, build func() (*epiEval, error),
	ev0 *epiEval, k func(a, b E) E, read func(*epiEval) E, set func(tensor.Buffer, int, E),
	out tensor.Buffer, lines, axLen int) {

	foldLine := func(ev *epiEval, l int) {
		ev.rebase(l)
		ev.eval(0)
		acc := read(ev)
		for j := 1; j < axLen; j++ {
			ev.eval(j)
			acc = k(acc, read(ev))
		}
		set(out, ev.outCur.idx, acc)
	}

	switch strategy {
	case sweepSplitOutputs:
		m.par.parallelFor(lines, 2, func(lo, hi int) {
			ev, err := build()
			if err != nil {
				return // validated up front; cannot fail here
			}
			for l := lo; l < hi; l++ {
				foldLine(ev, l)
			}
		})
	case sweepChunkAxis:
		size, nc := chunkParams(axLen)
		partials := make([]E, nc)
		for l := 0; l < lines; l++ {
			m.par.parallelFor(nc, 2, func(lo, hi int) {
				ev, err := build()
				if err != nil {
					return
				}
				ev.rebase(l)
				for c := lo; c < hi; c++ {
					start, end := chunkBounds(c, size, axLen)
					ev.eval(start)
					acc := read(ev)
					for j := start + 1; j < end; j++ {
						ev.eval(j)
						acc = k(acc, read(ev))
					}
					partials[c] = acc
				}
			})
			acc := partials[0]
			for c := 1; c < nc; c++ {
				acc = k(acc, partials[c])
			}
			ev0.rebase(l)
			set(out, ev0.outCur.idx, acc)
		}
	default:
		for l := 0; l < lines; l++ {
			foldLine(ev0, l)
		}
	}
}

// runArgEpilogue drives a folded index reduction: the producer steps
// evaluate per element exactly as in runEpilogue, but the fold carries a
// (value, index) pair and writes the winning axis index. The chunked
// strategy combines chunk partials in chunk order with the same
// comparison, which reproduces the serial winner exactly — as in
// runArgReduce, comparisons do not re-associate.
func runArgEpilogue[E int64 | float64](m *Machine, strategy sweepStrategy, build func() (*epiEval, error),
	ev0 *epiEval, better func(v, best E) bool, read func(*epiEval) E,
	out tensor.Buffer, lines, axLen int) {

	foldLine := func(ev *epiEval, l int) {
		ev.rebase(l)
		ev.eval(0)
		best := read(ev)
		bestIdx := 0
		for j := 1; j < axLen; j++ {
			ev.eval(j)
			if v := read(ev); better(v, best) {
				best, bestIdx = v, j
			}
		}
		out.SetInt(ev.outCur.idx, int64(bestIdx))
	}

	switch strategy {
	case sweepSplitOutputs:
		m.par.parallelFor(lines, 2, func(lo, hi int) {
			ev, err := build()
			if err != nil {
				return // validated up front; cannot fail here
			}
			for l := lo; l < hi; l++ {
				foldLine(ev, l)
			}
		})
	case sweepChunkAxis:
		size, nc := chunkParams(axLen)
		vals := make([]E, nc)
		idxs := make([]int, nc)
		for l := 0; l < lines; l++ {
			m.par.parallelFor(nc, 2, func(lo, hi int) {
				ev, err := build()
				if err != nil {
					return
				}
				ev.rebase(l)
				for c := lo; c < hi; c++ {
					start, end := chunkBounds(c, size, axLen)
					ev.eval(start)
					best := read(ev)
					bestIdx := start
					for j := start + 1; j < end; j++ {
						ev.eval(j)
						if v := read(ev); better(v, best) {
							best, bestIdx = v, j
						}
					}
					vals[c], idxs[c] = best, bestIdx
				}
			})
			best, bestIdx := vals[0], idxs[0]
			for c := 1; c < nc; c++ {
				if better(vals[c], best) {
					best, bestIdx = vals[c], idxs[c]
				}
			}
			ev0.rebase(l)
			out.SetInt(ev0.outCur.idx, int64(bestIdx))
		}
	default:
		for l := 0; l < lines; l++ {
			foldLine(ev0, l)
		}
	}
}
