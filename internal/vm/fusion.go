package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Fusion clusters consecutive elementwise byte-codes into one sweep over
// their shared iteration space — this reproduction's substitute for the
// OpenCL kernel JIT: where Bohrium emits one kernel source for a fusible
// batch, we emit one fused Go loop.
//
// Two byte-codes may share a sweep when:
//   - both are elementwise and each instruction's register operands all
//     share one dtype (any supported dtype; steps of *different* dtypes
//     may still share a cluster — each step compiles its own typed loop),
//   - their result views share one iteration shape (inputs may broadcast
//     into it), the result view addresses each element at most once, and
//   - every register they share is addressed through the *same* view in
//     both (otherwise element i of one is element j≠i of the other, and
//     per-element interleaving would reorder a cross-element dependence).
//
// Fully contiguous clusters run over raw slices (execCluster); strided
// clusters — stencils, sliced views — run with multi-cursor odometer
// iteration (execClusterStrided). A full or last-axis reduction that
// consumes the cluster's output extends the cluster as an epilogue: the
// producer chain folds into the reduction's accumulation loop
// (execClusterReduce) and dead producer temporaries are never
// materialized. System byte-codes, other reductions, extensions, and
// RANDOM end a cluster.

// cluster is a run of instruction indices executable as one sweep.
type cluster struct {
	start, end int // [start, end) in p.Instrs
	fused      bool
	shape      tensor.Shape // shared iteration shape when fused
	linear     bool         // every operand contiguous: raw-slice path
	reduce     bool         // p.Instrs[end-1] is a reduction epilogue
}

// planClusters splits the program into sweeps.
func (m *Machine) planClusters(p *bytecode.Program) []cluster {
	var out []cluster
	i := 0
	for i < len(p.Instrs) {
		shape, linear, fusible := m.fusibleAt(p, i)
		if !fusible {
			out = append(out, cluster{start: i, end: i + 1})
			i++
			continue
		}
		// Extend the cluster while the next instruction is fusible over
		// the same iteration shape and no write view conflicts with any
		// other access of the same register.
		acc := newAccessTracker()
		acc.record(&p.Instrs[i])
		j := i + 1
		for j < len(p.Instrs) {
			shape2, linear2, ok := m.fusibleAt(p, j)
			if !ok || !shape2.Equal(shape) || !acc.compatible(&p.Instrs[j]) {
				break
			}
			linear = linear && linear2
			acc.record(&p.Instrs[j])
			j++
		}
		cl := cluster{start: i, end: j, fused: j-i > 1, shape: shape, linear: linear}
		if j < len(p.Instrs) && reduceEpilogueAt(p, cl, j) {
			cl.end = j + 1
			cl.fused = true
			cl.reduce = true
			j++
		}
		out = append(out, cl)
		i = j
	}
	return out
}

// fusibleAt reports whether instruction i qualifies for fused execution,
// returning its iteration shape and whether all operands are contiguous.
func (m *Machine) fusibleAt(p *bytecode.Program, i int) (tensor.Shape, bool, bool) {
	in := &p.Instrs[i]
	if !in.Op.Elementwise() || len(in.Inputs()) == 0 {
		return nil, false, false
	}
	if !in.Out.IsReg() || !viewInjective(in.Out.View) {
		return nil, false, false
	}
	ri, ok := p.Reg(in.Out.Reg)
	if !ok || !ri.DType.Valid() {
		return nil, false, false
	}
	dt := ri.DType
	shape := in.Out.View.Shape
	linear := in.Out.View.Contiguous()
	for _, opnd := range in.Inputs() {
		if !opnd.IsReg() {
			continue
		}
		si, ok := p.Reg(opnd.Reg)
		if !ok || si.DType != dt {
			// Mixed-dtype steps (casts, promoted operands) keep the
			// accessor path, which defines the conversion semantics.
			return nil, false, false
		}
		if !opnd.View.Shape.BroadcastableTo(shape) {
			return nil, false, false
		}
		if !opnd.View.Shape.Equal(shape) || !opnd.View.Contiguous() {
			linear = false
		}
		// A misaligned self-overlap needs the snapshot the unfused path
		// takes; keep such instructions out of fused sweeps.
		if opnd.Reg == in.Out.Reg && !opnd.View.Equal(in.Out.View) && opnd.View.Overlaps(in.Out.View) {
			return nil, false, false
		}
	}
	return shape, linear, true
}

// reduceEpilogueAt reports whether the reduction at index j can fold the
// preceding elementwise cluster cl into its accumulation loop. The legal
// shape: a reduction over any axis — including the argmin/argmax index
// reductions, whose fold carries a (value, index) pair — whose input is
// a register the cluster wrote, through exactly the window of the
// cluster's final write, into an output register the cluster does not
// write. The folded sweep walks the reduced line space in the same
// row-major order the interpreted two-sweep path does, so no axis is
// special. Buffer-level aliasing between the reduction output and the
// producers' operands is checked at execution time (execClusterReduce
// falls back).
func reduceEpilogueAt(p *bytecode.Program, cl cluster, j int) bool {
	in := &p.Instrs[j]
	if in.Op.Info().Kind != bytecode.KindReduction {
		return false
	}
	if _, ok := in.Op.ReduceBase(); !ok && !in.Op.ArgReduce() {
		return false
	}
	if !in.In1.IsReg() || !in.Out.IsReg() {
		return false
	}
	nd := in.In1.View.NDim()
	if nd == 0 || in.Axis < 0 || in.Axis >= nd {
		return false
	}
	if in.In1.View.Shape[in.Axis] == 0 {
		return false // empty axis takes the identity-fill path
	}
	if !in.In1.View.Shape.Equal(cl.shape) {
		return false
	}
	lastWrite := -1
	for k := cl.start; k < cl.end; k++ {
		if p.Instrs[k].Out.Reg == in.In1.Reg {
			lastWrite = k
		}
	}
	if lastWrite < 0 || !p.Instrs[lastWrite].Out.View.Equal(in.In1.View) {
		return false
	}
	// The output register must be untouched by the cluster: the epilogue
	// writes it line-by-line while producer steps still evaluate.
	for k := cl.start; k < cl.end; k++ {
		if p.Instrs[k].Out.Reg == in.Out.Reg {
			return false
		}
	}
	return in.Out.Reg != in.In1.Reg
}

// accessTracker records per-register read and write views inside a
// cluster. Fused per-element execution preserves step order *within* an
// element, so the only cross-element hazard is a register accessed through
// two views where the same buffer slot maps to different iteration
// indices — i.e. a WRITE view overlapping any other non-equal view.
// Overlapping reads (the stencil's north/south/east/west windows) are
// always safe.
type accessTracker struct {
	reads  map[bytecode.RegID][]tensor.View
	writes map[bytecode.RegID][]tensor.View
}

func newAccessTracker() *accessTracker {
	return &accessTracker{
		reads:  map[bytecode.RegID][]tensor.View{},
		writes: map[bytecode.RegID][]tensor.View{},
	}
}

func (a *accessTracker) record(in *bytecode.Instruction) {
	a.writes[in.Out.Reg] = append(a.writes[in.Out.Reg], in.Out.View)
	for _, opnd := range in.Inputs() {
		if opnd.IsReg() {
			a.reads[opnd.Reg] = append(a.reads[opnd.Reg], opnd.View)
		}
	}
}

func (a *accessTracker) compatible(in *bytecode.Instruction) bool {
	// The candidate's write must not alias any earlier access through a
	// different window.
	w := in.Out.View
	for _, v := range a.reads[in.Out.Reg] {
		if !w.Equal(v) && w.Overlaps(v) {
			return false
		}
	}
	for _, v := range a.writes[in.Out.Reg] {
		if !w.Equal(v) && w.Overlaps(v) {
			return false
		}
	}
	// The candidate's reads must not alias any earlier write through a
	// different window.
	for _, opnd := range in.Inputs() {
		if !opnd.IsReg() {
			continue
		}
		for _, v := range a.writes[opnd.Reg] {
			if !opnd.View.Equal(v) && opnd.View.Overlaps(v) {
				return false
			}
		}
	}
	return true
}

// fusedBlockSize is the tile width (in elements) for fused contiguous
// sweeps: each step's compiled loop runs over one L1-resident block before
// the next step touches it, giving the locality a JIT-compiled kernel
// would get without per-element dispatch. 8192 float64s = 64 KiB.
const fusedBlockSize = 8192

// instrErr annotates err with the index and disassembly of the failing
// instruction. The cause is wrapped (%w, identical text) so typed
// sentinels like ErrMemoryPressure survive to errors.Is at the host.
func instrErr(p *bytecode.Program, i int, err error) error {
	return fmt.Errorf("instr %d (%s): %w", i, p.Instrs[i].String(), err)
}

func (m *Machine) execCluster(p *bytecode.Program, cl cluster) error {
	n := cl.shape.Size()
	loops := make([]func(lo, hi int), 0, cl.end-cl.start)
	for i := cl.start; i < cl.end; i++ {
		loop, err := m.compileStep(p, &p.Instrs[i], n)
		if err != nil {
			return instrErr(p, i, err)
		}
		loops = append(loops, loop)
	}

	m.stats.instructions.Add(int64(len(loops)))
	m.stats.fusedInstructions.Add(int64(len(loops)))
	m.countFusedDTypes(p, cl.start, cl.end)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(n * len(loops)))

	m.par.parallelFor(n, m.cfg.ParallelThreshold, func(lo, hi int) {
		for blockLo := lo; blockLo < hi; blockLo += fusedBlockSize {
			blockHi := blockLo + fusedBlockSize
			if blockHi > hi {
				blockHi = hi
			}
			for _, loop := range loops {
				loop(blockLo, blockHi)
			}
		}
	})
	return nil
}

// countFusedDTypes attributes the instructions in [start, end) to the
// per-dtype fused counters by their output register's dtype.
func (m *Machine) countFusedDTypes(p *bytecode.Program, start, end int) {
	for i := start; i < end; i++ {
		if ri, ok := p.Reg(p.Instrs[i].Out.Reg); ok {
			m.stats.addDType(ri.DType, 1)
		}
	}
}

// compileStep compiles one cluster instruction into a raw-slice loop,
// dispatching on the output register's storage dtype.
func (m *Machine) compileStep(p *bytecode.Program, in *bytecode.Instruction, n int) (func(lo, hi int), error) {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return nil, err
	}
	switch outBuf.DType() {
	case tensor.Float64:
		return compileStepTyped[float64](m, p, in, n, outBuf)
	case tensor.Float32:
		return compileStepTyped[float32](m, p, in, n, outBuf)
	case tensor.Int64:
		return compileStepTyped[int64](m, p, in, n, outBuf)
	case tensor.Int32:
		return compileStepTyped[int32](m, p, in, n, outBuf)
	case tensor.Bool, tensor.Uint8:
		return compileStepTyped[uint8](m, p, in, n, outBuf)
	default:
		return nil, fmt.Errorf("fused output %s has unsupported dtype %v", in.Out.Reg, outBuf.DType())
	}
}

func compileStepTyped[T tensor.Elem](m *Machine, p *bytecode.Program, in *bytecode.Instruction, n int, outBuf tensor.Buffer) (func(lo, hi int), error) {
	raw, ok := tensor.RawSlice[T](outBuf)
	if !ok {
		return nil, fmt.Errorf("fused output %s is not %v", in.Out.Reg, outBuf.DType())
	}
	dst := raw[in.Out.View.Offset : in.Out.View.Offset+n]

	srcs := make([]rawSrc[T], 0, 2)
	for _, opnd := range in.Inputs() {
		if opnd.IsConst() {
			srcs = append(srcs, rawSrc[T]{cf: opnd.Const.Float(), ci: opnd.Const.Int()})
			continue
		}
		buf, err := m.regs.ensure(p, opnd.Reg)
		if err != nil {
			return nil, err
		}
		sraw, ok := tensor.RawSlice[T](buf)
		if !ok {
			return nil, fmt.Errorf("fused input %s is not %v", opnd.Reg, outBuf.DType())
		}
		srcs = append(srcs, rawSrc[T]{arr: sraw[opnd.View.Offset : opnd.View.Offset+n]})
	}

	loop, ok := compileLoop(outBuf.DType(), in.Op, dst, srcs)
	if !ok {
		return nil, fmt.Errorf("no compiled loop for %s", in.Op)
	}
	return loop, nil
}
