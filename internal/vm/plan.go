package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
)

// Plan is the reusable compilation of one program: validation, fusion
// cluster discovery, and reduction-epilogue analysis — everything Run
// used to redo on every call that does not depend on buffer bindings.
// A Plan may be executed many times against the same Machine; each
// Execute resolves register buffers from the machine's register file
// afresh (new input bindings, recycled temporaries) without re-running
// any analysis. Plans are not safe for concurrent use, matching the
// Machine they were compiled on.
type Plan struct {
	prog     *bytecode.Program
	fused    bool
	clusters []cluster
	epis     []*epiPlan // per cluster; non-nil only for foldable reductions
}

// Compile analyzes p into a Plan. Validation runs here (unless the
// machine's SkipValidation is set), so Execute can trust the program.
// The plan keeps a reference to p; callers must not mutate it afterwards
// except through PatchConstants.
func (m *Machine) Compile(p *bytecode.Program) (*Plan, error) {
	if !m.cfg.SkipValidation {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrExec, err)
		}
	}
	pl := &Plan{prog: p, fused: m.cfg.Fusion}
	if m.cfg.Fusion {
		pl.clusters = m.planClusters(p)
		pl.epis = make([]*epiPlan, len(pl.clusters))
		for i, cl := range pl.clusters {
			if cl.reduce {
				if epi, ok := analyzeEpilogue(p, cl); ok {
					pl.epis[i] = epi
				}
			}
		}
	}
	return pl, nil
}

// Program returns the compiled program. Treat it as read-only: the plan's
// cluster analysis describes exactly this instruction sequence.
func (pl *Plan) Program() *bytecode.Program { return pl.prog }

// PatchConstants rebinds the plan's constant operands to vals (in
// Program.Constants order). Only plans whose program is structurally
// identical to the batch the values come from may be patched — the plan
// cache guarantees that by fingerprint. Epilogue analyses copy immediates
// at analysis time, so a value change recompiles them (analysis only, no
// buffer work).
func (pl *Plan) PatchConstants(vals []bytecode.Constant) error {
	changed, err := pl.prog.SetConstants(vals)
	if err != nil || !changed {
		return err
	}
	for i, cl := range pl.clusters {
		if !cl.reduce || pl.epis[i] == nil {
			continue
		}
		if epi, ok := analyzeEpilogue(pl.prog, cl); ok {
			pl.epis[i] = epi
		} else {
			pl.epis[i] = nil
		}
	}
	return nil
}

// Execute runs the plan against m's current register bindings. On error
// the register file may hold partial results; the error reports the
// failing instruction.
func (pl *Plan) Execute(m *Machine) error {
	p := pl.prog
	m.regs.grow(len(p.Regs))
	for _, r := range p.Inputs {
		if m.regs.get(r) == nil {
			return fmt.Errorf("%w: input register %s not bound", ErrExec, r)
		}
	}
	if !pl.fused {
		for idx := range p.Instrs {
			if err := m.exec(p, &p.Instrs[idx]); err != nil {
				return fmt.Errorf("%w: instr %d (%s): %v", ErrExec, idx, p.Instrs[idx].String(), err)
			}
		}
		return nil
	}
	// Fused execution, cluster by cluster. Errors name the failing
	// instruction (not merely the cluster's first): each execution path
	// annotates with the index and disassembly of the instruction whose
	// compilation or execution failed.
	for i, cl := range pl.clusters {
		var err error
		switch {
		case cl.reduce:
			err = m.execClusterReduce(p, cl, pl.epis[i])
		case !cl.fused:
			if err = m.exec(p, &p.Instrs[cl.start]); err != nil {
				err = instrErr(p, cl.start, err)
			}
		case cl.linear:
			err = m.execCluster(p, cl)
		default:
			err = m.execClusterStrided(p, cl, cl.shape)
		}
		if err != nil {
			return fmt.Errorf("%w: cluster [%d,%d): %v", ErrExec, cl.start, cl.end, err)
		}
	}
	return nil
}
