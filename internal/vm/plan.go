package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/faultinject"
)

// Plan is the reusable compilation of one program: validation, fusion
// cluster discovery, and reduction-epilogue analysis — everything Run
// used to redo on every call that does not depend on buffer bindings.
// A Plan may be executed many times, against any Machine on any Engine;
// each Execute resolves register buffers from that machine's register
// file afresh (new input bindings, recycled temporaries) without
// re-running any analysis. Execute is read-only on the Plan, so one Plan
// may execute on several Machines concurrently — the shared plan cache
// and the async Executor both depend on that, which is why a cached or
// queued plan must never be mutated: rebind constants with WithConstants
// (clone); PatchConstants (in place) is only for a plan the caller owns
// outright and is not executing anywhere. Keep any new Plan/epiPlan
// state immutable after Compile for the same reason.
type Plan struct {
	prog     *bytecode.Program
	fused    bool
	clusters []cluster
	epis     []*epiPlan // per cluster; non-nil only for foldable reductions
}

// Compile analyzes p into a Plan. Validation runs here (unless the
// machine's SkipValidation is set), so Execute can trust the program.
// The plan keeps a reference to p; callers must not mutate it afterwards
// except through PatchConstants.
func (m *Machine) Compile(p *bytecode.Program) (*Plan, error) {
	if !m.cfg.SkipValidation {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrExec, err)
		}
	}
	pl := &Plan{prog: p, fused: m.cfg.Fusion}
	if m.cfg.Fusion {
		pl.clusters = m.planClusters(p)
		pl.epis = make([]*epiPlan, len(pl.clusters))
		for i, cl := range pl.clusters {
			if cl.reduce {
				if epi, ok := analyzeEpilogue(p, cl); ok {
					pl.epis[i] = epi
				}
			}
		}
	}
	return pl, nil
}

// Program returns the compiled program. Treat it as read-only: the plan's
// cluster analysis describes exactly this instruction sequence.
func (pl *Plan) Program() *bytecode.Program { return pl.prog }

// WithConstants returns a plan identical to pl but with its constant
// operands rebound to vals (in Program.Constants order); pl itself is
// never mutated, so it may be executing concurrently — on this machine's
// async executor or on another session sharing the engine's plan cache.
// When vals already equal the plan's constants, pl is returned as-is.
// Cluster analysis is structural and carries over; reduction-epilogue
// analyses copy immediates, so they are recomputed against the patched
// program (analysis only, no buffer work).
func (pl *Plan) WithConstants(vals []bytecode.Constant) (*Plan, error) {
	prog := pl.prog.Clone()
	changed, err := prog.SetConstants(vals)
	if err != nil {
		return nil, err
	}
	if !changed {
		return pl, nil
	}
	np := &Plan{prog: prog, fused: pl.fused, clusters: pl.clusters}
	if pl.epis != nil {
		np.epis = make([]*epiPlan, len(pl.epis))
		for i, cl := range np.clusters {
			if !cl.reduce || pl.epis[i] == nil {
				continue
			}
			if epi, ok := analyzeEpilogue(prog, cl); ok {
				np.epis[i] = epi
			}
		}
	}
	return np, nil
}

// PatchConstants rebinds the plan's constant operands to vals (in
// Program.Constants order), in place. Only for plans the caller owns
// outright and is not executing anywhere: cached plans are shared and
// immutable — the plan cache uses WithConstants instead. Epilogue
// analyses copy immediates at analysis time, so a value change recompiles
// them (analysis only, no buffer work).
func (pl *Plan) PatchConstants(vals []bytecode.Constant) error {
	changed, err := pl.prog.SetConstants(vals)
	if err != nil || !changed {
		return err
	}
	for i, cl := range pl.clusters {
		if !cl.reduce || pl.epis[i] == nil {
			continue
		}
		if epi, ok := analyzeEpilogue(pl.prog, cl); ok {
			pl.epis[i] = epi
		} else {
			pl.epis[i] = nil
		}
	}
	return nil
}

// Execute runs the plan against m's current register bindings. On error
// the register file may hold partial results; the error reports the
// failing instruction. Errors wrap their cause with %w all the way
// down, so typed sentinels (ErrMemoryPressure, an injected fault's Err)
// survive to errors.Is at the host.
func (pl *Plan) Execute(m *Machine) error {
	// Chaos sites: a deliberately slow plan and a crashing worker, armed
	// per session label, inert otherwise.
	faultinject.Delay(faultinject.SlowExec, m.cfg.FaultLabel)
	faultinject.Panic(faultinject.WorkerPanic, m.cfg.FaultLabel)
	p := pl.prog
	m.regs.grow(len(p.Regs))
	for _, r := range p.Inputs {
		if m.regs.get(r) == nil {
			return fmt.Errorf("%w: input register %s not bound", ErrExec, r)
		}
	}
	if !pl.fused {
		for idx := range p.Instrs {
			if err := m.exec(p, &p.Instrs[idx]); err != nil {
				return fmt.Errorf("%w: instr %d (%s): %w", ErrExec, idx, p.Instrs[idx].String(), err)
			}
		}
		return nil
	}
	// Fused execution, cluster by cluster. Errors name the failing
	// instruction (not merely the cluster's first): each execution path
	// annotates with the index and disassembly of the instruction whose
	// compilation or execution failed.
	for i, cl := range pl.clusters {
		var err error
		switch {
		case cl.reduce:
			err = m.execClusterReduce(p, cl, pl.epis[i])
		case !cl.fused:
			if err = m.exec(p, &p.Instrs[cl.start]); err != nil {
				err = instrErr(p, cl.start, err)
			}
		case cl.linear:
			err = m.execCluster(p, cl)
		default:
			err = m.execClusterStrided(p, cl, cl.shape)
		}
		if err != nil {
			return fmt.Errorf("%w: cluster [%d,%d): %w", ErrExec, cl.start, cl.end, err)
		}
	}
	return nil
}
