package vm

import (
	"math"
	"testing"

	"bohrium/internal/bytecode"
)

// The specialized kernels claim bit-for-bit equality with the generic
// class-widened bodies they shadow. These suites check every claim
// kernel by kernel against the reference formula, over inputs chosen to
// stress the edges: subnormals, infinities, NaN, negative zero, and
// values that overflow the narrow integer widths.

func specF32Inputs() ([]float32, []float32) {
	xs := []float32{
		0, 1, -1, 0.5, -0.5, 1e-30, -1e-30, 1e30, -1e30,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.Copysign(0, -1)), 3.1415927, 2.7182817,
	}
	// Deterministic pseudo-random magnitudes across the exponent range.
	r := uint32(0x9e3779b9)
	for len(xs) < 1000 {
		r = r*1664525 + 1013904223
		xs = append(xs, float32(math.Ldexp(float64(int32(r))/float64(1<<31), int(r%64)-32)))
	}
	ys := make([]float32, len(xs))
	for i := range ys {
		ys[i] = xs[(i*7+3)%len(xs)]
	}
	return xs, ys
}

func TestSpecFloat32ArrArrBitExact(t *testing.T) {
	xs, ys := specF32Inputs()
	ops := []struct {
		op bytecode.Opcode
		k  func(a, b float64) float64
	}{
		{bytecode.OpAdd, func(a, b float64) float64 { return a + b }},
		{bytecode.OpSubtract, func(a, b float64) float64 { return a - b }},
		{bytecode.OpMultiply, func(a, b float64) float64 { return a * b }},
		{bytecode.OpDivide, func(a, b float64) float64 { return a / b }},
	}
	for _, tc := range ops {
		dst := make([]float32, len(xs))
		loop, ok := specializedFloatBinary(tc.op, dst, rawSrc[float32]{arr: xs}, rawSrc[float32]{arr: ys})
		if !ok {
			t.Fatalf("%s: specialized float32 arr-arr kernel missing", tc.op)
		}
		loop(0, len(xs))
		for i := range xs {
			want := float32(tc.k(float64(xs[i]), float64(ys[i])))
			if math.Float32bits(dst[i]) != math.Float32bits(want) && !(math.IsNaN(float64(dst[i])) && math.IsNaN(float64(want))) {
				t.Fatalf("%s[%d]: spec %x, reference %x (x=%v y=%v)",
					tc.op, i, math.Float32bits(dst[i]), math.Float32bits(want), xs[i], ys[i])
			}
		}
	}
}

func TestSpecFloat32ConstGate(t *testing.T) {
	xs, _ := specF32Inputs()
	dst := make([]float32, len(xs))
	// Exactly representable constant: the kernel compiles and matches the
	// double-rounding reference bitwise.
	exact := 1.5
	loop, ok := specializedFloatBinary(bytecode.OpMultiply, dst, rawSrc[float32]{arr: xs}, rawSrc[float32]{cf: exact})
	if !ok {
		t.Fatal("exact float32 constant declined")
	}
	loop(0, len(xs))
	for i := range xs {
		want := float32(float64(xs[i]) * exact)
		if math.Float32bits(dst[i]) != math.Float32bits(want) && !(math.IsNaN(float64(dst[i])) && math.IsNaN(float64(want))) {
			t.Fatalf("mul-const[%d]: spec %x, reference %x", i, math.Float32bits(dst[i]), math.Float32bits(want))
		}
	}
	// 0.1 is not a float32: the specialization must decline so the generic
	// double-rounding body keeps the interpreted semantics.
	if _, ok := specializedFloatBinary(bytecode.OpAdd, dst, rawSrc[float32]{arr: xs}, rawSrc[float32]{cf: 0.1}); ok {
		t.Error("inexact float32 constant was not declined")
	}
	// Neither is NaN (the gate's c==c comparison fails), which is the
	// conservative choice.
	if _, ok := specializedFloatBinary(bytecode.OpAdd, dst, rawSrc[float32]{arr: xs}, rawSrc[float32]{cf: math.NaN()}); ok {
		t.Error("NaN constant was not declined")
	}
}

func TestSpecFloat64UnrolledBitExact(t *testing.T) {
	xs := make([]float64, 1003) // deliberately not a multiple of the unroll
	for i := range xs {
		xs[i] = math.Ldexp(float64(i*2654435761%4999)-2500, i%40-20)
	}
	xs[17] = math.Inf(1)
	xs[18] = math.NaN()
	xs[19] = math.Copysign(0, -1)
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = xs[(i*13+5)%len(xs)]
	}
	ops := []struct {
		op bytecode.Opcode
		k  func(a, b float64) float64
	}{
		{bytecode.OpAdd, func(a, b float64) float64 { return a + b }},
		{bytecode.OpSubtract, func(a, b float64) float64 { return a - b }},
		{bytecode.OpMultiply, func(a, b float64) float64 { return a * b }},
	}
	for _, tc := range ops {
		dst := make([]float64, len(xs))
		loop, ok := specializedFloatBinary(tc.op, dst, rawSrc[float64]{arr: xs}, rawSrc[float64]{arr: ys})
		if !ok {
			t.Fatalf("%s: unrolled float64 kernel missing", tc.op)
		}
		// Odd sub-ranges exercise both the unrolled body and the tail.
		loop(0, 7)
		loop(7, len(xs))
		for i := range xs {
			want := tc.k(xs[i], ys[i])
			if math.Float64bits(dst[i]) != math.Float64bits(want) && !(math.IsNaN(dst[i]) && math.IsNaN(want)) {
				t.Fatalf("%s[%d]: spec %x, reference %x", tc.op, i, math.Float64bits(dst[i]), math.Float64bits(want))
			}
		}
		// Constant form too.
		c := 1.0 / 3.0
		dstC := make([]float64, len(xs))
		loopC, ok := specializedFloatBinary(tc.op, dstC, rawSrc[float64]{arr: xs}, rawSrc[float64]{cf: c})
		if !ok {
			t.Fatalf("%s: unrolled float64 const kernel missing", tc.op)
		}
		loopC(0, len(xs))
		for i := range xs {
			want := tc.k(xs[i], c)
			if math.Float64bits(dstC[i]) != math.Float64bits(want) && !(math.IsNaN(dstC[i]) && math.IsNaN(want)) {
				t.Fatalf("%s-const[%d]: spec %x, reference %x", tc.op, i, math.Float64bits(dstC[i]), math.Float64bits(want))
			}
		}
	}
}

func TestSpecIntWrapExact(t *testing.T) {
	xs32 := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 1 << 30, -(1 << 30), 123456789, -987654321}
	ys32 := []int32{1, -1, math.MaxInt32, math.MinInt32, 3, 1 << 20, 7, -13, 2}
	ops := []struct {
		op bytecode.Opcode
		k  func(a, b int64) int64
	}{
		{bytecode.OpAdd, func(a, b int64) int64 { return a + b }},
		{bytecode.OpSubtract, func(a, b int64) int64 { return a - b }},
		{bytecode.OpMultiply, func(a, b int64) int64 { return a * b }},
	}
	for _, tc := range ops {
		dst := make([]int32, len(xs32))
		loop, ok := specializedIntBinary(tc.op, dst, rawSrc[int32]{arr: xs32}, rawSrc[int32]{arr: ys32})
		if !ok {
			t.Fatalf("%s: specialized int32 kernel missing", tc.op)
		}
		loop(0, len(xs32))
		for i := range xs32 {
			// Reference: the generic body's widen-compute-truncate.
			want := int32(tc.k(int64(xs32[i]), int64(ys32[i])))
			if dst[i] != want {
				t.Fatalf("%s int32[%d]: spec %d, reference %d", tc.op, i, dst[i], want)
			}
		}
		// Constant form with a constant that wraps at int32 width: the
		// truncate-first evaluation must still match truncate-last.
		bigC := int64(math.MaxInt32) + 12345
		dstC := make([]int32, len(xs32))
		loopC, ok := specializedIntBinary(tc.op, dstC, rawSrc[int32]{arr: xs32}, rawSrc[int32]{ci: bigC})
		if !ok {
			t.Fatalf("%s: specialized int32 const kernel missing", tc.op)
		}
		loopC(0, len(xs32))
		for i := range xs32 {
			want := int32(tc.k(int64(xs32[i]), bigC))
			if dstC[i] != want {
				t.Fatalf("%s int32-const[%d]: spec %d, reference %d", tc.op, i, dstC[i], want)
			}
		}
		// int64 arr-arr.
		xs64 := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 62, -(1 << 62), 2654435761}
		ys64 := []int64{1, -1, math.MaxInt64, 3, math.MinInt64, 7, -13, 40503}
		dst64 := make([]int64, len(xs64))
		loop64, ok := specializedIntBinary(tc.op, dst64, rawSrc[int64]{arr: xs64}, rawSrc[int64]{arr: ys64})
		if !ok {
			t.Fatalf("%s: specialized int64 kernel missing", tc.op)
		}
		loop64(0, len(xs64))
		for i := range xs64 {
			if want := tc.k(xs64[i], ys64[i]); dst64[i] != want {
				t.Fatalf("%s int64[%d]: spec %d, reference %d", tc.op, i, dst64[i], want)
			}
		}
	}
}

// TestSpecializedEndToEnd runs whole programs through the engine — which
// now picks the specialized kernels on its fast path and in fused
// clusters — against a machine configured below the parallel threshold,
// and pins a float32 stream against its interpreted (Fusion: false) twin.
func TestSpecializedEndToEnd(t *testing.T) {
	src := `
.reg a0 float32 10000
.reg a1 float32 10000
.reg a2 float32 10000
.reg a3 int32 10000
.reg a4 int32 10000
BH_RANDOM a0 61 0
BH_RANDOM a1 67 0
BH_ADD a2 a0 a1
BH_MULTIPLY a2 a2 1.5
BH_DIVIDE a2 a2 a1
BH_RANDOM a3 71 0
BH_MULTIPLY a4 a3 2654435761
BH_ADD a4 a4 40503
BH_SYNC a2
BH_SYNC a4
`
	plain := run(t, Config{Fusion: false}, src)
	fused := run(t, Config{Fusion: true}, src)
	compareRegs(t, plain, fused, 2, 10000, 0)
	compareRegs(t, plain, fused, 4, 10000, 0)
}
