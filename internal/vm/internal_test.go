package vm

import (
	"testing"
	"testing/quick"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

func TestViewInjective(t *testing.T) {
	tests := []struct {
		name string
		view tensor.View
		want bool
	}{
		{"contiguous 1d", tensor.NewView(tensor.MustShape(10)), true},
		{"contiguous 2d", tensor.NewView(tensor.MustShape(3, 4)), true},
		{"strided", mustView(0, tensor.MustShape(5), []int{2}), true},
		{"negative stride", mustView(9, tensor.MustShape(10), []int{-1}), true},
		{"broadcast stride 0", mustView(0, tensor.MustShape(5), []int{0}), false},
		{"singleton dim stride 0 ok", mustView(0, tensor.MustShape(1, 4), []int{0, 1}), true},
		{"colliding strides", mustView(0, tensor.MustShape(4, 4), []int{2, 1}), false},
		{"transposed", tensor.NewView(tensor.MustShape(3, 4)).Transpose(), true},
		{"spread ok", mustView(0, tensor.MustShape(3, 4), []int{10, 2}), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := viewInjective(tt.view); got != tt.want {
				t.Errorf("viewInjective = %v, want %v", got, tt.want)
			}
		})
	}
}

func mustView(offset int, shape tensor.Shape, strides []int) tensor.View {
	v, err := tensor.NewStridedView(offset, shape, strides)
	if err != nil {
		panic(err)
	}
	return v
}

func TestViewInjectiveNeverWrong(t *testing.T) {
	// Property: when viewInjective says true, all addressed indices are
	// in fact distinct (the condition is allowed to be conservative the
	// other way).
	f := func(d1, d2, s1raw, s2raw, off uint8) bool {
		shape := tensor.MustShape(int(d1%4)+1, int(d2%4)+1)
		strides := []int{int(s1raw % 12), int(s2raw % 5)}
		v := tensor.View{Offset: int(off % 8), Shape: shape, Strides: strides}
		if !viewInjective(v) {
			return true
		}
		seen := map[int]bool{}
		it := tensor.NewIterator(v)
		for it.Next() {
			if seen[it.Index()] {
				return false
			}
			seen[it.Index()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCursorSeekMatchesIterator(t *testing.T) {
	// Property: cursor.seek(i) lands on the same buffer index the i-th
	// iterator step reaches, and delta-advances track it exactly.
	f := func(d1, d2, st uint8) bool {
		shape := tensor.MustShape(int(d1%4)+1, int(d2%4)+2)
		v := tensor.View{
			Offset:  3,
			Shape:   shape,
			Strides: []int{int(st%3)*7 + 8, 2},
		}
		c := newCursor(v)

		// Collect ground-truth indices.
		var want []int
		it := tensor.NewIterator(v)
		for it.Next() {
			want = append(want, it.Index())
		}
		// Seek to each position directly.
		dims := []int(shape)
		for i, w := range want {
			c.seek(dims, i)
			if c.idx != w {
				return false
			}
		}
		// Walk with delta advances from position 0.
		c.seek(dims, 0)
		coords := make([]int, len(dims))
		for i := 1; i < len(want); i++ {
			for d := len(dims) - 1; d >= 0; d-- {
				coords[d]++
				if coords[d] < dims[d] {
					c.idx += c.delta[d]
					break
				}
				coords[d] = 0
			}
			if c.idx != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWorkerPoolRunsAllChunks(t *testing.T) {
	pool := newWorkerPool(4)
	defer pool.close()
	n := 10000
	hits := make([]int32, n)
	pool.parallelFor(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("element %d visited %d times", i, h)
		}
	}
}

func TestWorkerPoolSmallRangeInline(t *testing.T) {
	pool := newWorkerPool(4)
	defer pool.close()
	count := 0
	pool.parallelFor(10, 1000, func(lo, hi int) {
		count += hi - lo // runs inline: no race possible
	})
	if count != 10 {
		t.Errorf("count = %d", count)
	}
	pool.parallelFor(0, 1, func(lo, hi int) {
		t.Error("body called for empty range")
	})
}

func TestIpow(t *testing.T) {
	tests := []struct {
		base, exp, want int64
	}{
		{2, 10, 1024},
		{3, 0, 1},
		{0, 0, 1},
		{5, 1, 5},
		{-2, 3, -8},
		{-2, 4, 16},
		{7, -1, 0},
		{1, -5, 1},
		{-1, -3, -1},
		{-1, -4, 1},
	}
	for _, tt := range tests {
		if got := ipow(tt.base, tt.exp); got != tt.want {
			t.Errorf("ipow(%d, %d) = %d, want %d", tt.base, tt.exp, got, tt.want)
		}
	}
}

func TestShifts(t *testing.T) {
	if shiftL(1, 70) != 0 || shiftL(1, -1) != 0 {
		t.Error("out-of-range left shift should be 0")
	}
	if shiftL(3, 2) != 12 {
		t.Error("3 << 2")
	}
	if shiftR(12, 2) != 3 {
		t.Error("12 >> 2")
	}
	if shiftR(12, 64) != 0 {
		t.Error("out-of-range right shift should be 0")
	}
}

func TestKernelCoverage(t *testing.T) {
	// Every binary/unary op-code in the table must have a float kernel;
	// the VM falls back to it for any dtype combination.
	for _, op := range bytecodeOps() {
		switch op.Info().Kind {
		case bytecode.KindBinary:
			if _, ok := floatBinaryKernel(op); !ok {
				t.Errorf("no float kernel for binary %s", op)
			}
		case bytecode.KindUnary:
			if _, ok := floatUnaryKernel(op); !ok {
				t.Errorf("no float kernel for unary %s", op)
			}
		}
	}
}

func bytecodeOps() []bytecode.Opcode { return bytecode.Opcodes() }
