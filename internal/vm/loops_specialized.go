package vm

import (
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Specialized inner loops for the hottest (op, dtype) pairs: word-wide
// native arithmetic instead of the generic widen-to-class-and-round-back
// bodies of loops.go. They slot in underneath the existing dispatch —
// compileFloatBinaryLoop/compileIntBinaryLoop try these first — so fused
// clusters, the single-sweep fast path, and the linear reduction epilogue
// all pick them up with no planning changes.
//
// Every specialization here is bit-for-bit identical to the generic body
// it replaces, by construction rather than by tolerance:
//
//   - float32 ⊗ float32 for +,-,*,/: rounding a float64-exact sum,
//     difference, product, or quotient of two float32s to float32 equals
//     the native float32 operation (double rounding is innocuous because
//     float64 carries more than 2·24+2 significand bits).
//   - float32 ⊗ const: the same theorem applies only when the float64
//     constant is exactly a float32, so the form is gated on
//     float64(float32(c)) == c and declines otherwise.
//   - int32/int64 +,-,*: two's-complement wrap is a ring homomorphism
//     under truncation, so narrowing the int64-class result equals native
//     narrow arithmetic for any operands and any constant.
//   - float64 +,-,* unrolled by four: identical arithmetic, fewer loop
//     branches for the memory-bound sweeps the roofline table measures.
//
// The per-kernel differential suite in loops_specialized_test.go pins
// each of these equalities against the generic bodies.
func specializedFloatBinary[T tensor.Elem](op bytecode.Opcode, dst []T, a, b rawSrc[T]) (func(lo, hi int), bool) {
	switch d := any(dst).(type) {
	case []float32:
		x, _ := any(a.arr).([]float32)
		y, _ := any(b.arr).([]float32)
		return specFloat32Binary(op, d, x, y, b.cf, b.arr == nil)
	case []float64:
		x, _ := any(a.arr).([]float64)
		y, _ := any(b.arr).([]float64)
		return specFloat64Binary(op, d, x, y, b.cf, b.arr == nil)
	}
	return nil, false
}

// specFloat32Binary compiles the float32 forms. bConst reports a constant
// right operand (value bcf); constant forms decline unless bcf is exactly
// representable, keeping the double-rounding equivalence intact.
func specFloat32Binary(op bytecode.Opcode, dst, x, y []float32, bcf float64, bConst bool) (func(lo, hi int), bool) {
	if x == nil {
		return nil, false
	}
	c := float32(bcf)
	constExact := bConst && float64(c) == bcf
	switch op {
	case bytecode.OpAdd:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] + ys[i]
				}
			}, true
		}
		if constExact {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] + c
				}
			}, true
		}
	case bytecode.OpSubtract:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] - ys[i]
				}
			}, true
		}
		if constExact {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] - c
				}
			}, true
		}
	case bytecode.OpMultiply:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] * ys[i]
				}
			}, true
		}
		if constExact {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] * c
				}
			}, true
		}
	case bytecode.OpDivide:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] / ys[i]
				}
			}, true
		}
		if constExact {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] / c
				}
			}, true
		}
	}
	return nil, false
}

// specFloat64Binary compiles the unrolled float64 forms. float64 is the
// computation class itself, so no rounding argument is needed — the
// unroll reorders nothing, it only amortizes loop overhead.
func specFloat64Binary(op bytecode.Opcode, dst, x, y []float64, bcf float64, bConst bool) (func(lo, hi int), bool) {
	if x == nil {
		return nil, false
	}
	var kArr func(d, xs, ys []float64)
	var kConst func(d, xs []float64, c float64)
	switch op {
	case bytecode.OpAdd:
		kArr = func(d, xs, ys []float64) {
			i := 0
			for ; i+4 <= len(d); i += 4 {
				d[i] = xs[i] + ys[i]
				d[i+1] = xs[i+1] + ys[i+1]
				d[i+2] = xs[i+2] + ys[i+2]
				d[i+3] = xs[i+3] + ys[i+3]
			}
			for ; i < len(d); i++ {
				d[i] = xs[i] + ys[i]
			}
		}
		kConst = func(d, xs []float64, c float64) {
			i := 0
			for ; i+4 <= len(d); i += 4 {
				d[i] = xs[i] + c
				d[i+1] = xs[i+1] + c
				d[i+2] = xs[i+2] + c
				d[i+3] = xs[i+3] + c
			}
			for ; i < len(d); i++ {
				d[i] = xs[i] + c
			}
		}
	case bytecode.OpSubtract:
		kArr = func(d, xs, ys []float64) {
			i := 0
			for ; i+4 <= len(d); i += 4 {
				d[i] = xs[i] - ys[i]
				d[i+1] = xs[i+1] - ys[i+1]
				d[i+2] = xs[i+2] - ys[i+2]
				d[i+3] = xs[i+3] - ys[i+3]
			}
			for ; i < len(d); i++ {
				d[i] = xs[i] - ys[i]
			}
		}
		kConst = func(d, xs []float64, c float64) {
			i := 0
			for ; i+4 <= len(d); i += 4 {
				d[i] = xs[i] - c
				d[i+1] = xs[i+1] - c
				d[i+2] = xs[i+2] - c
				d[i+3] = xs[i+3] - c
			}
			for ; i < len(d); i++ {
				d[i] = xs[i] - c
			}
		}
	case bytecode.OpMultiply:
		kArr = func(d, xs, ys []float64) {
			i := 0
			for ; i+4 <= len(d); i += 4 {
				d[i] = xs[i] * ys[i]
				d[i+1] = xs[i+1] * ys[i+1]
				d[i+2] = xs[i+2] * ys[i+2]
				d[i+3] = xs[i+3] * ys[i+3]
			}
			for ; i < len(d); i++ {
				d[i] = xs[i] * ys[i]
			}
		}
		kConst = func(d, xs []float64, c float64) {
			i := 0
			for ; i+4 <= len(d); i += 4 {
				d[i] = xs[i] * c
				d[i+1] = xs[i+1] * c
				d[i+2] = xs[i+2] * c
				d[i+3] = xs[i+3] * c
			}
			for ; i < len(d); i++ {
				d[i] = xs[i] * c
			}
		}
	default:
		return nil, false
	}
	if !bConst && y != nil {
		return func(lo, hi int) {
			kArr(dst[lo:hi], x[lo:hi], y[lo:hi])
		}, true
	}
	if bConst {
		c := bcf
		return func(lo, hi int) {
			kConst(dst[lo:hi], x[lo:hi], c)
		}, true
	}
	return nil, false
}

// specializedIntBinary dispatches the native int32/int64 forms.
func specializedIntBinary[T tensor.Elem](op bytecode.Opcode, dst []T, a, b rawSrc[T]) (func(lo, hi int), bool) {
	switch d := any(dst).(type) {
	case []int64:
		x, _ := any(a.arr).([]int64)
		y, _ := any(b.arr).([]int64)
		return specIntBinary(op, d, x, y, b.ci, b.arr == nil)
	case []int32:
		x, _ := any(a.arr).([]int32)
		y, _ := any(b.arr).([]int32)
		return specIntBinary(op, d, x, y, b.ci, b.arr == nil)
	}
	return nil, false
}

// specIntBinary compiles native-width +,-,* — wrap-exact at any width, so
// constants need no representability gate: truncating the constant first
// commutes with truncating the int64-class result.
func specIntBinary[T int32 | int64](op bytecode.Opcode, dst, x, y []T, bci int64, bConst bool) (func(lo, hi int), bool) {
	if x == nil {
		return nil, false
	}
	c := T(bci)
	switch op {
	case bytecode.OpAdd:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] + ys[i]
				}
			}, true
		}
		if bConst {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] + c
				}
			}, true
		}
	case bytecode.OpSubtract:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] - ys[i]
				}
			}, true
		}
		if bConst {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] - c
				}
			}, true
		}
	case bytecode.OpMultiply:
		if !bConst && y != nil {
			return func(lo, hi int) {
				d, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
				for i := range d {
					d[i] = xs[i] * ys[i]
				}
			}, true
		}
		if bConst {
			return func(lo, hi int) {
				d, xs := dst[lo:hi], x[lo:hi]
				for i := range d {
					d[i] = xs[i] * c
				}
			}, true
		}
	}
	return nil, false
}
