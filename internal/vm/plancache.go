package vm

import (
	"container/list"

	"bohrium/internal/bytecode"
)

// The plan cache is the middleware's kernel-cache analogue: a batch whose
// structure was already analyzed and compiled re-executes from its Plan
// instead of being re-lowered. Entries are keyed by the batch's
// structural Fingerprint plus its constant vector:
//
//   - A plan compiled from a batch the optimizer left untouched
//     (parametric entry) matches ANY constant values — replaying its
//     program with patched constants is exactly executing the new batch.
//   - A plan the optimizer rewrote (baked entry) matches only the exact
//     constant vector it was compiled from: rules inspect constant
//     values (merging, folding, CSE, power expansion), so a different
//     vector could have rewritten differently.
//
// Several entries may share one fingerprint (same structure, different
// baked vectors); eviction is LRU over all entries.

// DefaultPlanCacheSize is the entry cap when Config.PlanCacheSize is zero.
const DefaultPlanCacheSize = 64

type planEntry struct {
	fp         bytecode.Fingerprint
	vals       []bytecode.Constant
	parametric bool
	plan       *Plan // nil: the batch optimized to an empty program
	meta       any   // front-end bookkeeping, opaque to the VM
}

type planCache struct {
	cap   int
	order *list.List // of *planEntry; front = most recently used
	byFP  map[bytecode.Fingerprint][]*list.Element
}

func newPlanCache(cap int) *planCache {
	return &planCache{cap: cap, order: list.New(), byFP: map[bytecode.Fingerprint][]*list.Element{}}
}

// PlanCacheEnabled reports whether this machine caches plans (it does
// unless Config.PlanCacheSize was negative). Front-ends consult it before
// paying for fingerprint computation.
func (m *Machine) PlanCacheEnabled() bool { return m.plans != nil }

// PlanCacheLen returns the number of cached plans.
func (m *Machine) PlanCacheLen() int {
	if m.plans == nil {
		return 0
	}
	return m.plans.order.Len()
}

// LookupPlan finds a cached plan for the batch identified by fp and its
// constant vector. accept (optional) filters candidates by the metadata
// stored at insert time — front-ends use it to reject plans whose
// scratch registers have since been repurposed. On a hit the entry moves
// to the LRU front, parametric plans are patched to consts, and the
// stored plan and metadata are returned; the plan is nil when the batch
// is known to optimize to nothing. Counters: PlanHits / PlanMisses.
func (m *Machine) LookupPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool) (*Plan, any, bool) {
	plan, meta, patch, ok := m.lookupPlan(fp, consts, accept, true)
	if !ok {
		return nil, nil, false
	}
	if patch {
		// patch is only reported when immediate patching was declined, so
		// it cannot be set here.
		panic("vm: immediate lookup returned a deferred patch")
	}
	return plan, meta, true
}

// LookupPlanDeferred is LookupPlan for pipelined execution: it never
// patches constants on the calling goroutine. When patch is true the
// caller must hand consts along with the plan to the executing goroutine
// (Executor.Submit does), which applies them immediately before Execute —
// the plan may still be executing a previous submission's values, so
// patching here would corrupt that run. The one behavioural difference
// from LookupPlan: a constant-vector/structure mismatch (a fingerprint
// collision) surfaces as an execution error instead of a silent
// recompile.
func (m *Machine) LookupPlanDeferred(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool) (plan *Plan, meta any, patch, ok bool) {
	return m.lookupPlan(fp, consts, accept, false)
}

func (m *Machine) lookupPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool, patchNow bool) (*Plan, any, bool, bool) {
	if m.plans == nil {
		return nil, nil, false, false
	}
	for _, el := range m.plans.byFP[fp] {
		e := el.Value.(*planEntry)
		if !e.parametric && !constantsEqual(e.vals, consts) {
			continue
		}
		if accept != nil && !accept(e.meta) {
			continue
		}
		patch := e.parametric && e.plan != nil
		if patch && patchNow {
			if err := e.plan.PatchConstants(consts); err != nil {
				continue // digest collision or corrupted entry: recompile
			}
			patch = false
		}
		m.plans.order.MoveToFront(el)
		m.stats.planHits.Add(1)
		return e.plan, e.meta, patch, true
	}
	m.stats.planMisses.Add(1)
	return nil, nil, false, false
}

// InsertPlan stores a freshly compiled plan (nil for a batch that
// optimized to an empty program) under fp and its constant vector.
// parametric marks plans compiled from batches the optimizer left
// untouched; only those may be replayed with different constants. Over
// capacity, the least recently used entry is dropped (PlanEvictions).
func (m *Machine) InsertPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, parametric bool, pl *Plan, meta any) {
	if m.plans == nil {
		return
	}
	e := &planEntry{
		fp:         fp,
		vals:       append([]bytecode.Constant(nil), consts...),
		parametric: parametric,
		plan:       pl,
		meta:       meta,
	}
	el := m.plans.order.PushFront(e)
	m.plans.byFP[fp] = append(m.plans.byFP[fp], el)
	for m.plans.order.Len() > m.plans.cap {
		back := m.plans.order.Back()
		ev := back.Value.(*planEntry)
		m.plans.order.Remove(back)
		bucket := m.plans.byFP[ev.fp]
		for i, b := range bucket {
			if b == back {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(m.plans.byFP, ev.fp)
		} else {
			m.plans.byFP[ev.fp] = bucket
		}
		m.stats.planEvictions.Add(1)
	}
}

func constantsEqual(a, b []bytecode.Constant) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
