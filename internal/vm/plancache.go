package vm

import (
	"container/list"
	"sync"

	"bohrium/internal/bytecode"
)

// The plan cache is the middleware's kernel-cache analogue: a batch whose
// structure was already analyzed and compiled re-executes from its Plan
// instead of being re-lowered. Entries are keyed by the batch's
// structural Fingerprint plus its constant vector:
//
//   - A plan compiled from a batch the optimizer left untouched
//     (parametric entry) matches ANY constant values — replaying its
//     program with the new constants is exactly executing the new batch.
//   - A plan the optimizer rewrote (baked entry) matches only the exact
//     constant vector it was compiled from: rules inspect constant
//     values (merging, folding, CSE, power expansion), so a different
//     vector could have rewritten differently.
//
// Several entries may share one fingerprint (same structure, different
// baked vectors).
//
// On a shared Engine the cache serves many sessions at once, so it is
// sharded by fingerprint: each shard has its own mutex and its own LRU
// list, and eviction is LRU within a shard. Caches sized below the
// default capacity collapse to a single shard (minShardedCapacity),
// preserving exact global-LRU behavior where the caller sized capacity
// tightly to a working set. The capacity bound is
// therefore per shard (total/shards): a hot working set whose
// fingerprints collide into one shard can evict there while other
// shards sit under-full — the standard sharding tradeoff, bought for
// lock-free coexistence of sessions on different shards. Size
// PlanCacheSize with headroom (shards hold ~planShardTarget entries
// each) rather than to the exact working-set count.
//
// A cached plan is immutable. A parametric hit whose constant vector
// differs from the entry's current one does not patch the stored plan in
// place — another session (or a queued async execution in this session)
// may be executing it right now — it clones the plan, patches the clone,
// and swaps the entry to the clone under the shard lock. Steady-state
// iterations with unchanged constants pay no clone at all.

// DefaultPlanCacheSize is the entry cap when Config.PlanCacheSize is zero.
const DefaultPlanCacheSize = 64

// planShardTarget is the per-shard capacity the shard count aims for; a
// cache of the default 64 entries gets 8 shards of 8.
const planShardTarget = 8

// maxPlanShards bounds the shard count for very large caches.
const maxPlanShards = 16

// minShardedCapacity is the capacity below which the cache stays a single
// shard. A caller that sizes PlanCacheSize tightly to a known working set
// is promising itself "this many entries fit"; splitting such a small
// budget across shards could evict entries that nominally fit whenever
// fingerprints collide into one shard. At or above the default capacity
// the budget is headroom, not a fit-guarantee, and sharding buys
// cross-session concurrency.
const minShardedCapacity = DefaultPlanCacheSize

type planEntry struct {
	fp         bytecode.Fingerprint
	vals       []bytecode.Constant
	parametric bool
	plan       CachedPlan // nil: the batch is known to optimize to nothing
	meta       any        // front-end bookkeeping, opaque to the VM
}

type planShard struct {
	mu    sync.Mutex
	cap   int                                      // guarded by mu
	order *list.List                               // guarded by mu: of *planEntry; front = most recently used
	byFP  map[bytecode.Fingerprint][]*list.Element // guarded by mu
}

type planCache struct {
	shards []*planShard
}

func newPlanCache(capacity int) *planCache {
	n := 1
	if capacity >= minShardedCapacity {
		n = capacity / planShardTarget
		if n > maxPlanShards {
			n = maxPlanShards
		}
	}
	c := &planCache{shards: make([]*planShard, n)}
	for i := range c.shards {
		capI := capacity / n
		if i < capacity%n {
			capI++
		}
		c.shards[i] = &planShard{
			cap:   capI,
			order: list.New(),
			byFP:  map[bytecode.Fingerprint][]*list.Element{},
		}
	}
	return c
}

// unlink removes one element from the shard's LRU order and fingerprint
// bucket. Call with the shard lock held; unlinking an already-removed
// element is a no-op.
func (s *planShard) unlink(el *list.Element) {
	e := el.Value.(*planEntry)
	s.order.Remove(el) // no-op if el was already evicted
	bucket := s.byFP[e.fp]
	for i, b := range bucket {
		if b == el {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.byFP, e.fp)
	} else {
		s.byFP[e.fp] = bucket
	}
}

func (c *planCache) shardFor(fp bytecode.Fingerprint) *planShard {
	return c.shards[int(fp[0])%len(c.shards)]
}

// purge drops every cached plan across all shards — the memory-pressure
// release valve. In-flight executions of purged plans are unaffected
// (plans are immutable); future lookups recompile and refill normally.
func (c *planCache) purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.order.Init()
		s.byFP = map[bytecode.Fingerprint][]*list.Element{}
		s.mu.Unlock()
	}
}

func (c *planCache) len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}

// PlanCacheEnabled reports whether this machine caches plans: the engine
// must have a cache (EngineConfig.PlanCacheSize not negative) and the
// machine must not have opted out (Config.PlanCacheSize not negative).
// Front-ends consult it before paying for fingerprint computation.
func (m *Machine) PlanCacheEnabled() bool { return m.useCache && m.eng.plans != nil }

// PlanCacheLen returns the number of plans cached on this machine's
// engine (shared machines see every session's entries).
func (m *Machine) PlanCacheLen() int {
	if m.eng.plans == nil {
		return 0
	}
	return m.eng.plans.len()
}

// LookupPlan finds a cached plan for the batch identified by fp and its
// constant vector. accept (optional) filters candidates by the metadata
// stored at insert time — front-ends use it to reject plans whose
// scratch registers have since been repurposed. On a hit the entry moves
// to the LRU front and the stored plan and metadata are returned; the
// plan is nil when the batch is known to optimize to nothing. A
// parametric hit under a different constant vector returns a patched
// clone via CachedPlan.Rebind (and caches it for the next identical
// lookup) — the previously returned plan is never mutated, so callers may
// still be executing it, on this session or any other sharing the engine.
// Counters: PlanHits / PlanMisses, counted on this machine.
func (m *Machine) LookupPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool) (CachedPlan, any, bool) {
	if !m.PlanCacheEnabled() {
		return nil, nil, false
	}
	s := m.eng.plans.shardFor(fp)

	// Find the candidate and snapshot it under the shard lock; the clone
	// and epilogue re-analysis of a constant patch run OUTSIDE the lock,
	// so sessions landing on one shard don't serialize behind each
	// other's analysis work.
	s.mu.Lock()
	var elem *list.Element
	var entry *planEntry
	var plan CachedPlan
	var meta any
	needPatch := false
	for _, el := range s.byFP[fp] {
		e := el.Value.(*planEntry)
		if !e.parametric && !constantsEqual(e.vals, consts) {
			continue
		}
		if accept != nil && !accept(e.meta) {
			continue
		}
		elem, entry, plan, meta = el, e, e.plan, e.meta
		needPatch = e.parametric && plan != nil && !constantsEqual(e.vals, consts)
		s.order.MoveToFront(el)
		break
	}
	s.mu.Unlock()
	if entry == nil {
		m.stats.planMisses.Add(1)
		return nil, nil, false
	}
	if needPatch {
		patched, err := plan.Rebind(consts)
		if err != nil {
			// Digest collision or corrupted entry. Unlink it — it was
			// just promoted to MRU, so leaving it in place would shadow
			// healthy same-fingerprint entries forever — and report a
			// miss so the caller recompiles.
			s.mu.Lock()
			s.unlink(elem)
			s.mu.Unlock()
			m.stats.planMisses.Add(1)
			return nil, nil, false
		}
		plan = patched
		// Swap the entry to the patched clone so the next lookup with the
		// same vector pays nothing. Racing sessions last-write-wins; a
		// concurrently evicted entry is updated harmlessly. plan and vals
		// move together, always under the lock.
		s.mu.Lock()
		entry.plan = patched
		entry.vals = append([]bytecode.Constant(nil), consts...)
		s.mu.Unlock()
	}
	m.stats.planHits.Add(1)
	return plan, meta, true
}

// InsertPlan stores a freshly compiled plan (nil for a batch that
// optimized to an empty program) under fp and its constant vector.
// parametric marks plans compiled from batches the optimizer left
// untouched; only those may be replayed with different constants. The
// caller must treat the plan as immutable from here on. Over shard
// capacity, the shard's least recently used entry is dropped
// (PlanEvictions, counted on the inserting machine).
func (m *Machine) InsertPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, parametric bool, pl CachedPlan, meta any) {
	if !m.PlanCacheEnabled() {
		return
	}
	e := &planEntry{
		fp:         fp,
		vals:       append([]bytecode.Constant(nil), consts...),
		parametric: parametric,
		plan:       pl,
		meta:       meta,
	}
	s := m.eng.plans.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.order.PushFront(e)
	s.byFP[fp] = append(s.byFP[fp], el)
	for s.order.Len() > s.cap {
		s.unlink(s.order.Back())
		m.stats.planEvictions.Add(1)
	}
}

func constantsEqual(a, b []bytecode.Constant) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
