package vm

import (
	"fmt"
	"sync"
)

// DefaultAsyncDepth is the submit-queue depth when Executor callers pass
// zero: how many compiled batches may sit between the recording goroutine
// and the executing one before Submit applies backpressure.
const DefaultAsyncDepth = 8

// Executor runs plans on a background goroutine so a front-end can record
// batch N+1 while batch N executes — the async half of the submit/wait
// pipeline. Exactly one goroutine (the "recorder") may call Submit, Wait
// and Close; the executor goroutine is the only one that touches the
// machine's register file while jobs are in flight. The recorder keeps
// ownership of plan lookup and compilation; the machine's counters are
// atomic, so both sides count.
//
// Every queued plan is immutable (a parametric plan-cache hit under new
// constants is a patched clone, see Plan.WithConstants), so two
// submissions of structurally identical batches with different constant
// vectors are simply two different *Plan values — each execution sees its
// own values with no patching on this side of the handoff.
//
// The first execution error poisons the pipeline: queued and future jobs
// are skipped, and Wait (and every later Wait) returns that error. The
// register file may hold partial results, exactly as after a failed
// synchronous Run.
type Executor struct {
	m    *Machine   // immutable after NewExecutor
	jobs chan *Plan // immutable after NewExecutor (the channel; Close closes it under mu)
	wg   sync.WaitGroup
	done chan struct{} // immutable after NewExecutor

	mu     sync.Mutex
	err    error // guarded by mu
	closed bool  // guarded by mu
}

// NewExecutor starts a background executor for m with the given queue
// depth (0 selects DefaultAsyncDepth). Close it before closing the
// machine: the worker pool must outlive every in-flight plan.
func (m *Machine) NewExecutor(depth int) *Executor {
	if depth <= 0 {
		depth = DefaultAsyncDepth
	}
	e := &Executor{m: m, jobs: make(chan *Plan, depth), done: make(chan struct{})}
	go e.loop()
	return e
}

func (e *Executor) loop() {
	defer close(e.done)
	for pl := range e.jobs {
		if e.Err() == nil {
			e.m.stats.pipelined.Add(1)
			if err := e.runOne(pl); err != nil {
				e.mu.Lock()
				if e.err == nil {
					e.err = err
				}
				e.mu.Unlock()
			}
		}
		e.wg.Done()
	}
}

// runOne executes a single queued plan, converting a panic in execution
// (a worker bug, an injected worker-panic fault) into a sticky pipeline
// error instead of killing the whole process: the failure belongs to the
// session that submitted the plan, not to every session on the engine.
func (e *Executor) runOne(pl *Plan) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: panic during pipelined execution: %v", ErrExec, v)
		}
	}()
	return pl.Execute(e.m)
}

// Submit queues one plan for background execution. The plan must not be
// mutated afterwards — cache hits and freshly compiled plans both satisfy
// this. Submit blocks only when the queue is full (backpressure), never
// on execution itself.
func (e *Executor) Submit(pl *Plan) {
	e.wg.Add(1)
	e.jobs <- pl
}

// Wait blocks until every submitted plan has executed (or been skipped
// after a failure) and returns the pipeline's first execution error. The
// error is sticky: once a plan fails, every subsequent Wait reports it.
func (e *Executor) Wait() error {
	e.wg.Wait()
	return e.Err()
}

// Err returns the sticky pipeline error without waiting.
func (e *Executor) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close drains the queue, stops the executor goroutine, and returns the
// sticky pipeline error. Close is idempotent; Submit must not be called
// afterwards.
func (e *Executor) Close() error {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		e.wg.Wait()
		close(e.jobs)
	}
	<-e.done
	return e.Err()
}
