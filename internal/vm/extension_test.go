package vm

import (
	"math"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// runErr assembles src and returns the execution error (nil compile
// errors are fatal — these tests target the runtime dispatch paths in
// extension.go, not the assembler).
func runErr(t *testing.T, cfg Config, src string, bind func(m *Machine)) error {
	t.Helper()
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	if bind != nil {
		bind(m)
	}
	return m.Run(p)
}

// TestExtensionMissingInputBuffer pins the runtime guard in the operand
// packer: a declared-but-never-bound input register must fail with the
// register's name, for both the In1 and In2 slots, identically with
// fusion on and off (extensions are barriers either way, but the error
// threads through different cluster wrappers).
func TestExtensionMissingInputBuffer(t *testing.T) {
	// The registers are deliberately NOT declared .in: declared inputs
	// trip the earlier "not bound" pre-check, while an undeclared,
	// never-written register (legal only with validation off) reaches the
	// extension's own packer guard.
	const solveUnboundA = `
.reg a0 float64 4
.reg a1 float64 2
.reg a2 float64 2
BH_IDENTITY a1 [0:2:1] 1
BH_SOLVE a2 [0:2:1] a0 [0:4:2][0:2:1] a1 [0:2:1]
BH_SYNC a2 [0:2:1]
`
	const matmulUnboundB = `
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 4
BH_IDENTITY a0 [0:4:1] 1
BH_MATMUL a2 [0:4:2][0:2:1] a0 [0:4:2][0:2:1] a1 [0:4:2][0:2:1]
BH_SYNC a2 [0:4:1]
`
	cases := []struct {
		name, src, wantReg string
	}{
		{"solve-in1", solveUnboundA, "a0"},
		{"matmul-in2", matmulUnboundB, "a1"},
	}
	for _, tc := range cases {
		for _, fusion := range []bool{false, true} {
			name := tc.name + map[bool]string{false: "/unfused", true: "/fused"}[fusion]
			t.Run(name, func(t *testing.T) {
				err := runErr(t, Config{Fusion: fusion, SkipValidation: true}, tc.src, nil)
				if err == nil {
					t.Fatal("unbound extension input executed successfully")
				}
				want := "input register " + tc.wantReg + " has no buffer"
				if !strings.Contains(err.Error(), want) {
					t.Errorf("err = %v, want mention of %q", err, want)
				}
			})
		}
	}
}

// TestExtensionShapeErrors drives each shape-legality gate under the
// extension dispatch: non-square LU/solve operands, inner-dimension
// mismatches surfacing from the dense unpack, and rank-3 operands the
// packer refuses outright.
func TestExtensionShapeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			// A is packed as 2x3 (rectangular): LU factorization refuses.
			"solve-nonsquare",
			`
.reg a0 float64 6
.reg a1 float64 2
.reg a2 float64 2
BH_IDENTITY a0 [0:6:1] 1
BH_IDENTITY a1 [0:2:1] 1
BH_SOLVE a2 [0:2:1] a0 [0:6:3][0:3:1] a1 [0:2:1]
BH_SYNC a2 [0:2:1]
`,
			"LU of 2x3 matrix",
		},
		{
			// 2x2 · 2x2 result cannot unpack into a 3-element view.
			"matmul-unpack-mismatch",
			`
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 3
BH_IDENTITY a0 [0:4:1] 1
BH_IDENTITY a1 [0:4:1] 2
BH_MATMUL a2 [0:3:1] a0 [0:4:2][0:2:1] a1 [0:4:2][0:2:1]
BH_SYNC a2 [0:3:1]
`,
			"cannot unpack 2x2",
		},
		{
			// Rank-3 operand: the dense packer only accepts 1-d and 2-d.
			"inverse-rank3",
			`
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 [0:8:1] 1
BH_INVERSE a1 [0:8:4][0:4:2][0:2:1] a0 [0:8:4][0:4:2][0:2:1]
BH_SYNC a1 [0:8:1]
`,
			"want 1-d or 2-d tensor, got 3-d",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, Config{SkipValidation: true}, tc.src, nil)
			if err == nil {
				t.Fatal("shape-illegal extension executed successfully")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestExtensionUnknownMethod covers the dispatch default: an instruction
// routed to execExtension with a non-extension op-code is a VM bug and
// must name the op instead of silently no-opping. The case is
// unreachable through Compile (which routes by Kind), so it is invoked
// directly.
func TestExtensionUnknownMethod(t *testing.T) {
	p := bytecode.NewProgram()
	r := p.NewReg(tensor.Float64, 2)
	v := tensor.NewView(tensor.MustShape(2))
	p.EmitUnary(bytecode.OpSqrt, bytecode.Reg(r, v), bytecode.Reg(r, v))

	m := New(Config{})
	defer m.Close()
	in := &bytecode.Instruction{Op: bytecode.OpSqrt, Out: bytecode.Reg(r, v), In1: bytecode.Reg(r, v)}
	err := m.execExtension(p, in)
	if err == nil || !strings.Contains(err.Error(), "unknown extension method BH_SQRT") {
		t.Errorf("err = %v, want unknown extension method BH_SQRT", err)
	}
}

// TestExtensionStats pins the counter contract of the extension path:
// each extension call counts as one instruction and one sweep (one
// "kernel launch" — however large the repack is, the VM issues it once)
// and adds the result view's element count.
func TestExtensionStats(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 4
BH_RANGE a0 [0:4:1]
BH_MATMUL a1 [0:4:2][0:2:1] a0 [0:4:2][0:2:1] a0 [0:4:2][0:2:1]
BH_INVERSE a2 [0:4:2][0:2:1] a1 [0:4:2][0:2:1]
BH_SYNC a2 [0:4:1]
`)
	st := m.Stats()
	// One generator + two extension calls, each over 4 elements; the
	// extensions launch one sweep apiece, like the generator.
	if st.Instructions != 3 {
		t.Errorf("Instructions = %d, want 3", st.Instructions)
	}
	if st.Sweeps != 3 {
		t.Errorf("Sweeps = %d, want 3 (extensions launch exactly one sweep each)", st.Sweeps)
	}
	if st.Elements != 12 {
		t.Errorf("Elements = %d, want 12", st.Elements)
	}

	// A = [[0,1],[2,3]] so A·A = [[2,3],[6,11]] — the values prove the
	// repack round-trip, not just the counters.
	want := []float64{2, 3, 6, 11}
	got := regSlice(t, m, 1, 4)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("matmul = %v, want %v", got, want)
		}
	}
}
