// Package vm executes Bohrium byte-code programs. It is this
// reproduction's substitute for the paper's OpenCL/JIT backend: byte-codes
// are grouped into fusible clusters, each cluster compiles to one sweep
// over its iteration space, and sweeps are split across a goroutine worker
// pool. The property the substitution preserves is the one the paper's
// transformations exploit — every byte-code costs a full pass over its
// operand memory, so fewer/cheaper byte-codes means proportionally less
// time, exactly as on a GPU command queue.
package vm

import (
	"errors"
	"fmt"
	"runtime"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// ErrExec wraps runtime execution failures.
var ErrExec = errors.New("vm: execution error")

// Config selects the execution strategy.
type Config struct {
	// Workers is the goroutine pool width for data-parallel sweeps.
	// Zero means GOMAXPROCS.
	Workers int
	// Fusion enables clustering contiguous elementwise byte-codes into
	// single sweeps (the JIT-kernel substitute). Off, every byte-code is
	// its own sweep.
	Fusion bool
	// ParallelThreshold is the minimum element count before a sweep is
	// split across workers; tiny sweeps run inline. It also gates the
	// parallel reduction/scan strategies: a reduction or scan whose total
	// input is below the threshold always runs serially; above it, the
	// engine splits the output sweep (many outputs) or chunks the axis
	// (few outputs over an axis long enough to cut into chunks). Zero
	// picks a default.
	ParallelThreshold int
	// SkipValidation trusts the caller to have validated the program
	// (the optimizer pipeline validates after every pass).
	SkipValidation bool
	// PlanCacheSize caps the machine's fingerprint-keyed plan cache, in
	// entries. Zero selects DefaultPlanCacheSize; negative disables the
	// cache entirely (LookupPlan always misses without counting).
	PlanCacheSize int
}

// DefaultParallelThreshold is the sweep size below which goroutine fan-out
// costs more than it buys.
const DefaultParallelThreshold = 1 << 15

// Machine executes programs against a register file. A Machine may run
// many programs; registers persist between runs so a lazy front-end can
// flush incrementally. Machine is not safe for concurrent use — it *is*
// the execution engine, parallelism happens inside Run.
type Machine struct {
	cfg   Config
	regs  registerFile
	stats Stats
	pool  *workerPool
	plans *planCache
}

// DTypeCounts holds one counter per dtype, indexed by tensor.DType. It is
// a fixed-size array (not a map) so Stats stays a plain copyable value.
type DTypeCounts [8]int

func (c *DTypeCounts) add(dt tensor.DType, n int) {
	if dt > 0 && int(dt) < len(c) {
		c[dt] += n
	}
}

// Get returns the counter for dt.
func (c DTypeCounts) Get(dt tensor.DType) int {
	if dt > 0 && int(dt) < len(c) {
		return c[dt]
	}
	return 0
}

// String formats the non-zero counters as "float64:3 int32:1" in dtype
// declaration order, or "-" when all are zero.
func (c DTypeCounts) String() string {
	out := ""
	for dt := tensor.DType(1); int(dt) < len(c); dt++ {
		if c[dt] == 0 || !dt.Valid() {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", dt, c[dt])
	}
	if out == "" {
		return "-"
	}
	return out
}

// Stats counts execution work, for experiment tables and fusion ablations.
type Stats struct {
	// Instructions executed, excluding system byte-codes.
	Instructions int
	// Sweeps launched (fused clusters count once — the "kernel launches"
	// a GPU backend would issue).
	Sweeps int
	// FusedInstructions is how many instructions ran inside multi-op
	// sweeps.
	FusedInstructions int
	// FusedReductions counts reductions executed as the epilogue of a
	// fused producer sweep: the elementwise chain feeding the reduction
	// was folded into its accumulation loop, and producer temporaries
	// that were dead afterwards were never materialized.
	FusedReductions int
	// FusedByDType counts instructions executed inside fused sweeps,
	// keyed by each instruction's output dtype.
	FusedByDType DTypeCounts
	// Elements processed, summed over instructions.
	Elements int
	// BuffersAllocated counts fresh register-buffer allocations.
	BuffersAllocated int
	// PoolHits counts register materializations served by recycling a
	// previously freed buffer instead of allocating.
	PoolHits int
	// BytesAllocated totals the bytes of fresh allocations (pool hits add
	// nothing — that is the point).
	BytesAllocated int
	// PlanHits counts batches served from the fingerprint-keyed plan
	// cache: no rewrite passes, no cluster re-analysis — straight to
	// Plan.Execute with rebound buffers.
	PlanHits int
	// PlanMisses counts cache lookups that had to compile a fresh plan.
	PlanMisses int
	// PlanEvictions counts plans the LRU dropped when over capacity.
	PlanEvictions int
}

// New returns a Machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ParallelThreshold <= 0 {
		cfg.ParallelThreshold = DefaultParallelThreshold
	}
	m := &Machine{cfg: cfg, pool: newWorkerPool(cfg.Workers)}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		m.plans = newPlanCache(size)
	}
	m.regs.stats = &m.stats
	return m
}

// Stats returns cumulative execution counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (between experiment repetitions).
func (m *Machine) ResetStats() { m.stats = Stats{} }

// Bind presets register r with an existing tensor before Run — the
// front-end binds arrays listed in the program's Inputs this way. The
// tensor's buffer is used directly (no copy), so results written to r are
// visible through t.
func (m *Machine) Bind(r bytecode.RegID, t tensor.Tensor) {
	m.regs.bind(r, t.Buf)
}

// Tensor returns the current contents of register r addressed through
// view v, or false if r has no buffer (never written or freed).
func (m *Machine) Tensor(r bytecode.RegID, v tensor.View) (tensor.Tensor, bool) {
	buf := m.regs.get(r)
	if buf == nil {
		return tensor.Tensor{}, false
	}
	return tensor.Tensor{Buf: buf, View: v}, true
}

// Run compiles and executes the program in one step — Compile then
// Plan.Execute. Callers that run a structurally identical program many
// times should Compile once and Execute the plan per run (or go through
// the plan cache, LookupPlan/InsertPlan). On error the register file may
// hold partial results; the error reports the failing instruction.
func (m *Machine) Run(p *bytecode.Program) error {
	pl, err := m.Compile(p)
	if err != nil {
		return err
	}
	return pl.Execute(m)
}

// Close releases the worker pool. The Machine must not be used afterwards.
func (m *Machine) Close() {
	m.pool.close()
}
