// Package vm executes Bohrium byte-code programs. It is this
// reproduction's substitute for the paper's OpenCL/JIT backend: byte-codes
// are grouped into fusible clusters, each cluster compiles to one sweep
// over its iteration space, and sweeps are split across a goroutine worker
// pool. The property the substitution preserves is the one the paper's
// transformations exploit — every byte-code costs a full pass over its
// operand memory, so fewer/cheaper byte-codes means proportionally less
// time, exactly as on a GPU command queue.
package vm

import (
	"errors"
	"fmt"
	"sync/atomic"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// ErrExec wraps runtime execution failures.
var ErrExec = errors.New("vm: execution error")

// ErrMemoryPressure marks allocations the engine denied because its
// high-watermark byte budget is exhausted even after shedding the plan
// cache and the recycle pool (EngineConfig.MemoryHighWatermark). It is
// graceful degradation, not corruption: the failing batch's registers
// may hold partial results, but the session — and every other session
// on the engine — keeps working, and retrying after other sessions free
// memory can succeed. Execution paths wrap it with %w, so hosts map it
// with errors.Is (the bhd daemon turns it into a retryable 503).
var ErrMemoryPressure = errors.New("vm: memory pressure")

// Config selects the execution strategy.
type Config struct {
	// Workers is the goroutine pool width for data-parallel sweeps.
	// Zero means GOMAXPROCS.
	Workers int
	// Fusion enables clustering contiguous elementwise byte-codes into
	// single sweeps (the JIT-kernel substitute). Off, every byte-code is
	// its own sweep.
	Fusion bool
	// ParallelThreshold is the minimum element count before a sweep is
	// split across workers; tiny sweeps run inline. It also gates the
	// parallel reduction/scan strategies: a reduction or scan whose total
	// input is below the threshold always runs serially; above it, the
	// engine splits the output sweep (many outputs) or chunks the axis
	// (few outputs over an axis long enough to cut into chunks). Zero
	// picks a default.
	ParallelThreshold int
	// SkipValidation trusts the caller to have validated the program
	// (the optimizer pipeline validates after every pass).
	SkipValidation bool
	// PlanCacheSize tunes the machine's use of the fingerprint-keyed plan
	// cache. Negative opts the machine out entirely (LookupPlan always
	// misses without counting, inserts are dropped). For a machine made
	// by New — which builds its own private Engine — a positive value
	// caps that engine's cache in entries and zero selects
	// DefaultPlanCacheSize; for a machine on a shared Engine
	// (Engine.NewMachine) capacity is fixed by EngineConfig.PlanCacheSize
	// and only this field's sign is consulted.
	PlanCacheSize int
	// FaultLabel tags this machine's faultinject sites (allocation
	// failure, slow or panicking execution) so a chaos harness can
	// target one session among many — the bhd daemon labels every
	// session's machine with its tenant. Empty machines only match
	// label-less faults. Inert unless a fault is armed.
	FaultLabel string
}

// DefaultParallelThreshold is the sweep size below which goroutine fan-out
// costs more than it buys.
const DefaultParallelThreshold = 1 << 15

// Machine is one session's execution state on an Engine: the register
// file, the session counters, and the session's view of the shared
// substrate (its sweep fan-out width, its opt-in to the shared plan
// cache). A Machine may run many programs; registers persist between runs
// so a lazy front-end can flush incrementally. Machine is not safe for
// general concurrent use — one goroutine drives it, parallelism happens
// inside Run — but it supports exactly one sanctioned split: a recording
// goroutine that compiles and looks up plans while an Executor goroutine
// executes them (see async.go for the ownership rules). Counters are
// atomic so both sides may count. Different Machines on one shared Engine
// may run fully concurrently: everything they share (worker pool, plan
// cache, buffer pool) is concurrency-safe, and everything per-session
// lives here.
type Machine struct {
	cfg      Config
	eng      *Engine
	par      parRunner
	useCache bool // session opted into the engine's plan cache
	private  bool // Close also closes the engine (vm.New compatibility)
	regs     registerFile
	stats    atomicStats
}

// DTypeCounts holds one counter per dtype, indexed by tensor.DType. It is
// a fixed-size array (not a map) so Stats stays a plain copyable value.
type DTypeCounts [8]int

func (c *DTypeCounts) add(dt tensor.DType, n int) {
	if dt > 0 && int(dt) < len(c) {
		c[dt] += n
	}
}

// Get returns the counter for dt.
func (c DTypeCounts) Get(dt tensor.DType) int {
	if dt > 0 && int(dt) < len(c) {
		return c[dt]
	}
	return 0
}

// String formats the non-zero counters as "float64:3 int32:1" in dtype
// declaration order, or "-" when all are zero.
func (c DTypeCounts) String() string {
	out := ""
	for dt := tensor.DType(1); int(dt) < len(c); dt++ {
		if c[dt] == 0 || !dt.Valid() {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", dt, c[dt])
	}
	if out == "" {
		return "-"
	}
	return out
}

// Stats counts execution work, for experiment tables and fusion ablations.
type Stats struct {
	// Instructions executed, excluding system byte-codes.
	Instructions int
	// Sweeps launched (fused clusters count once — the "kernel launches"
	// a GPU backend would issue).
	Sweeps int
	// FusedInstructions is how many instructions ran inside multi-op
	// sweeps.
	FusedInstructions int
	// FusedReductions counts reductions executed as the epilogue of a
	// fused producer sweep: the elementwise chain feeding the reduction
	// was folded into its accumulation loop, and producer temporaries
	// that were dead afterwards were never materialized.
	FusedReductions int
	// FusedByDType counts instructions executed inside fused sweeps,
	// keyed by each instruction's output dtype.
	FusedByDType DTypeCounts
	// Elements processed, summed over instructions.
	Elements int
	// BuffersAllocated counts fresh register-buffer allocations.
	BuffersAllocated int
	// PoolHits counts register materializations served by recycling a
	// previously freed buffer instead of allocating.
	PoolHits int
	// BytesAllocated totals the bytes of fresh allocations (pool hits add
	// nothing — that is the point).
	BytesAllocated int
	// PlanHits counts batches served from the fingerprint-keyed plan
	// cache: no rewrite passes, no cluster re-analysis — straight to
	// Plan.Execute with rebound buffers.
	PlanHits int
	// PlanMisses counts cache lookups that had to compile a fresh plan.
	PlanMisses int
	// PlanEvictions counts plans the LRU dropped when over capacity.
	PlanEvictions int
	// Pipelined counts plans executed on a background Executor goroutine
	// (async submit/wait pipelining) rather than on the caller.
	Pipelined int
	// Chunks counts the tiles an out-of-core backend streamed through the
	// buffer recycle pool: each chunk of a segmented sweep counts once.
	// Always zero for purely in-process execution.
	Chunks int
	// XPlanFused counts combined cross-plan submissions: the front end
	// proved a flush boundary elidable, held batch N back, and submitted
	// N and N+1 as one program — one fence, one plan, one optimizer view
	// across what would have been two.
	XPlanFused int
	// XPlanDisarms counts deferrals the front end abandoned because the
	// xplan-disarm fault point fired: the batch took the ordinary
	// single-plan path instead. Always zero outside chaos tests.
	XPlanDisarms int
}

// Accumulate adds every counter of o into s — how Engine.Stats (and any
// host summing per-session numbers) folds snapshots into one total.
func (s *Stats) Accumulate(o Stats) {
	s.Instructions += o.Instructions
	s.Sweeps += o.Sweeps
	s.FusedInstructions += o.FusedInstructions
	s.FusedReductions += o.FusedReductions
	for dt := range s.FusedByDType {
		s.FusedByDType[dt] += o.FusedByDType[dt]
	}
	s.Elements += o.Elements
	s.BuffersAllocated += o.BuffersAllocated
	s.PoolHits += o.PoolHits
	s.BytesAllocated += o.BytesAllocated
	s.PlanHits += o.PlanHits
	s.PlanMisses += o.PlanMisses
	s.PlanEvictions += o.PlanEvictions
	s.Pipelined += o.Pipelined
	s.Chunks += o.Chunks
	s.XPlanFused += o.XPlanFused
	s.XPlanDisarms += o.XPlanDisarms
}

// atomicStats is the Machine's internal counter set. The counters are
// atomics because the pipelined flush mode splits the machine across two
// goroutines — the recorder counts plan-cache traffic while the Executor
// counts sweeps and buffer work — and Stats() may be read while both are
// active. snapshot assembles the exported value type.
type atomicStats struct {
	instructions      atomic.Int64
	sweeps            atomic.Int64
	fusedInstructions atomic.Int64
	fusedReductions   atomic.Int64
	fusedByDType      [8]atomic.Int64
	elements          atomic.Int64
	buffersAllocated  atomic.Int64
	poolHits          atomic.Int64
	bytesAllocated    atomic.Int64
	planHits          atomic.Int64
	planMisses        atomic.Int64
	planEvictions     atomic.Int64
	pipelined         atomic.Int64
	chunks            atomic.Int64
	xplanFused        atomic.Int64
	xplanDisarms      atomic.Int64
}

func (s *atomicStats) addDType(dt tensor.DType, n int) {
	if dt > 0 && int(dt) < len(s.fusedByDType) {
		s.fusedByDType[dt].Add(int64(n))
	}
}

func (s *atomicStats) snapshot() Stats {
	out := Stats{
		Instructions:      int(s.instructions.Load()),
		Sweeps:            int(s.sweeps.Load()),
		FusedInstructions: int(s.fusedInstructions.Load()),
		FusedReductions:   int(s.fusedReductions.Load()),
		Elements:          int(s.elements.Load()),
		BuffersAllocated:  int(s.buffersAllocated.Load()),
		PoolHits:          int(s.poolHits.Load()),
		BytesAllocated:    int(s.bytesAllocated.Load()),
		PlanHits:          int(s.planHits.Load()),
		PlanMisses:        int(s.planMisses.Load()),
		PlanEvictions:     int(s.planEvictions.Load()),
		Pipelined:         int(s.pipelined.Load()),
		Chunks:            int(s.chunks.Load()),
		XPlanFused:        int(s.xplanFused.Load()),
		XPlanDisarms:      int(s.xplanDisarms.Load()),
	}
	for dt := range s.fusedByDType {
		out.FusedByDType[dt] = int(s.fusedByDType[dt].Load())
	}
	return out
}

func (s *atomicStats) reset() {
	s.instructions.Store(0)
	s.sweeps.Store(0)
	s.fusedInstructions.Store(0)
	s.fusedReductions.Store(0)
	for i := range s.fusedByDType {
		s.fusedByDType[i].Store(0)
	}
	s.elements.Store(0)
	s.buffersAllocated.Store(0)
	s.poolHits.Store(0)
	s.bytesAllocated.Store(0)
	s.planHits.Store(0)
	s.planMisses.Store(0)
	s.planEvictions.Store(0)
	s.pipelined.Store(0)
	s.chunks.Store(0)
	s.xplanFused.Store(0)
	s.xplanDisarms.Store(0)
}

// New returns a Machine on a private Engine built from the same
// configuration — the single-session shape every pre-Runtime caller used.
// Closing the machine closes its engine too. Multi-session hosts create
// one Engine (or a bohrium.Runtime) and hang machines off it instead.
func New(cfg Config) *Machine {
	eng := NewEngine(EngineConfig{Workers: cfg.Workers, PlanCacheSize: cfg.PlanCacheSize})
	m := eng.NewMachine(cfg)
	m.private = true
	return m
}

// Stats returns a snapshot of the cumulative execution counters. It is
// safe to call while an Executor is running plans in the background; for
// deterministic numbers, Wait on the executor first.
func (m *Machine) Stats() Stats { return m.stats.snapshot() }

// ResetStats zeroes the counters (between experiment repetitions).
func (m *Machine) ResetStats() { m.stats.reset() }

// Bind presets register r with an existing tensor before Run — the
// front-end binds arrays listed in the program's Inputs this way. The
// tensor's buffer is used directly (no copy), so results written to r are
// visible through t.
func (m *Machine) Bind(r bytecode.RegID, t tensor.Tensor) {
	m.regs.bind(r, t.Buf)
}

// Tensor returns the current contents of register r addressed through
// view v, or false if r has no buffer (never written or freed).
func (m *Machine) Tensor(r bytecode.RegID, v tensor.View) (tensor.Tensor, bool) {
	buf := m.regs.get(r)
	if buf == nil {
		return tensor.Tensor{}, false
	}
	return tensor.Tensor{Buf: buf, View: v}, true
}

// Run compiles and executes the program in one step — Compile then
// Plan.Execute. Callers that run a structurally identical program many
// times should Compile once and Execute the plan per run (or go through
// the plan cache, LookupPlan/InsertPlan). On error the register file may
// hold partial results; the error reports the failing instruction.
func (m *Machine) Run(p *bytecode.Program) error {
	pl, err := m.Compile(p)
	if err != nil {
		return err
	}
	return pl.Execute(m)
}

// Engine returns the (possibly shared) engine this machine runs on.
func (m *Machine) Engine() *Engine { return m.eng }

// Close detaches the machine from its engine: the session's registers
// are released (owned buffers recycle into the shared pool, the
// engine's live-byte account is credited), the session's counters fold
// into the engine's process-wide totals, and the machine must not be
// used afterwards. A machine made by New owns its engine and closes it
// too; a machine made by Engine.NewMachine never touches the shared
// pool — other sessions keep running.
func (m *Machine) Close() {
	m.ReleaseRegisters()
	m.eng.detach(m)
	if m.private {
		m.eng.Close()
	}
}
