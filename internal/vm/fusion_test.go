package vm

import (
	"testing"
	"testing/quick"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

func TestFusionClusterPlanning(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 100
BH_IDENTITY a0 0
BH_ADD a0 a0 1
BH_ADD a0 a0 1
BH_SYNC a0
BH_MULTIPLY a0 a0 2.0
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	clusters := m.planClusters(p)
	// [IDENTITY ADD ADD] fused, [SYNC], [MULTIPLY].
	if len(clusters) != 3 {
		t.Fatalf("planned %d clusters, want 3: %+v", len(clusters), clusters)
	}
	if !clusters[0].fused || clusters[0].end-clusters[0].start != 3 {
		t.Errorf("first cluster = %+v, want fused run of 3", clusters[0])
	}
	if clusters[1].fused || clusters[2].fused {
		t.Error("SYNC and singleton sweeps must not report fused")
	}
}

func TestFusionBreaksOnOverlappingViewChange(t *testing.T) {
	// The second ADD writes a window overlapping the first one's at a
	// different alignment: the same buffer slot maps to different
	// iteration indices, so fusing would reorder a cross-element
	// dependence. Must not fuse.
	p := bytecode.MustParse(`
.reg a0 float64 100
BH_IDENTITY a0 0
BH_ADD a0 [0:50:1] a0 [0:50:1] 1
BH_ADD a0 [25:75:1] a0 [25:75:1] 1
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	for _, c := range m.planClusters(p) {
		if c.fused {
			for i := c.start + 1; i < c.end; i++ {
				if p.Instrs[i].Op == bytecode.OpAdd && p.Instrs[i-1].Op == bytecode.OpAdd {
					t.Errorf("overlapping misaligned ADDs fused: %+v", c)
				}
			}
		}
	}
	// Sanity: the fused result still matches unfused execution.
	runBoth(t, p)
}

func TestFusionAllowsDisjointViews(t *testing.T) {
	// Disjoint halves of the same register share no buffer slot: fusing
	// the two in-place ADDs is safe and saves a sweep.
	p := bytecode.MustParse(`
.reg a0 float64 100
BH_IDENTITY a0 0
BH_ADD a0 [0:50:1] a0 [0:50:1] 1
BH_ADD a0 [50:100:1] a0 [50:100:1] 2
BH_SYNC a0
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	fusedPair := false
	for _, c := range m.planClusters(p) {
		if c.fused && c.end-c.start >= 2 {
			fusedPair = true
		}
	}
	if !fusedPair {
		t.Error("disjoint-view ADDs did not fuse")
	}
	runBoth(t, p)
}

func TestFusionShiftedWindows(t *testing.T) {
	// Stencil-style reads through three overlapping shifted windows of
	// a0 (reads never conflict) accumulating into a1: fuses into one
	// sweep, results must match unfused execution.
	p := bytecode.MustParse(`
.reg a0 float64 40
.reg a1 float64 38
BH_RANGE a0
BH_ADD a1 [0:38:1] a0 [0:38:1] a0 [2:40:1]
BH_MULTIPLY a1 [0:38:1] a1 [0:38:1] a0 [1:39:1]
BH_SYNC a1
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	clusters := m.planClusters(p)
	found := false
	for _, c := range clusters {
		if c.fused && c.end-c.start == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("shifted read windows did not fuse: %+v", clusters)
	}
	runBoth(t, p)
}

func TestFusionStridedCluster(t *testing.T) {
	// Strided operand views (every other element) share shape (20): the
	// cluster takes the multi-cursor path and must match unfused results.
	p := bytecode.MustParse(`
.reg a0 float64 40
.reg a1 float64 20
BH_RANGE a0
BH_ADD a1 [0:20:1] a0 [0:40:2] a0 [1:41:2]
BH_MULTIPLY a1 [0:20:1] a1 [0:20:1] 3.0
BH_SYNC a1
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	var strided bool
	for _, c := range m.planClusters(p) {
		if c.fused && !c.linear {
			strided = true
		}
	}
	if !strided {
		t.Errorf("strided cluster not planned: %+v", m.planClusters(p))
	}
	runBoth(t, p)
}

func TestFusionStrided2D(t *testing.T) {
	// A genuine 2-d Jacobi step over a 6x6 grid: four shifted 4x4 windows
	// plus a constant scale fuse into one strided sweep; the write-back
	// into the grid (overlapping the read windows) stays separate.
	p := bytecode.MustParse(`
.reg a0 float64 36
.reg a1 float64 16
BH_RANGE a0 [0:36:1]
BH_ADD a1 [0:16:4][0:4:1] a0 [1:25:6][0:4:1] a0 [13:37:6][0:4:1]
BH_ADD a1 [0:16:4][0:4:1] a1 [0:16:4][0:4:1] a0 [6:30:6][0:4:1]
BH_ADD a1 [0:16:4][0:4:1] a1 [0:16:4][0:4:1] a0 [8:32:6][0:4:1]
BH_MULTIPLY a1 [0:16:4][0:4:1] a1 [0:16:4][0:4:1] 0.25
BH_IDENTITY a0 [7:31:6][0:4:1] a1 [0:16:4][0:4:1]
BH_SYNC a0 [0:36:1]
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	clusters := m.planClusters(p)
	var bigCluster bool
	for _, c := range clusters {
		if c.fused && c.end-c.start >= 4 {
			bigCluster = true
			// The write-back IDENTITY must not be part of this cluster.
			for i := c.start; i < c.end; i++ {
				if p.Instrs[i].Op == bytecode.OpIdentity && p.Instrs[i].Out.Reg == 0 {
					t.Error("grid write-back fused with reads of overlapping windows")
				}
			}
		}
	}
	if !bigCluster {
		t.Errorf("stencil reads did not fuse: %+v", clusters)
	}
	runBoth(t, p)
}

func TestFusionBreaksOnMixedDTypeStep(t *testing.T) {
	// A single step whose operands mix dtypes (the cast below reads int64
	// into a float64 result) must stay out of fused clusters — conversion
	// semantics belong to the accessor path.
	p := bytecode.MustParse(`
.reg a0 float64 100
.reg a1 int64 100
BH_IDENTITY a1 3
BH_ADD a1 a1 1
BH_IDENTITY a0 a1
BH_ADD a0 a0 0.5
BH_SYNC a0
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	for _, c := range m.planClusters(p) {
		if !c.fused {
			continue
		}
		for i := c.start; i < c.end; i++ {
			in := &p.Instrs[i]
			if in.Op == bytecode.OpIdentity && in.Out.Reg == 0 {
				t.Errorf("mixed-dtype cast fused: %+v", c)
			}
		}
	}
	runBoth(t, p)
}

func TestFusionClustersEveryDType(t *testing.T) {
	// Uniform-dtype chains fuse for every supported dtype, and steps of
	// different dtypes may share one cluster when shapes agree.
	for _, dt := range []string{"float64", "float32", "int64", "int32", "uint8"} {
		t.Run(dt, func(t *testing.T) {
			p := bytecode.MustParse(`
.reg a0 ` + dt + ` 100
BH_IDENTITY a0 2
BH_ADD a0 a0 3
BH_MULTIPLY a0 a0 a0
BH_SYNC a0
`)
			m := New(Config{Fusion: true})
			defer m.Close()
			fusedRun := false
			for _, c := range m.planClusters(p) {
				if c.fused && c.end-c.start == 3 {
					fusedRun = true
				}
			}
			if !fusedRun {
				t.Errorf("%s chain did not fuse: %+v", dt, m.planClusters(p))
			}
			runBoth(t, p)
		})
	}
	// Cross-dtype cluster: float64 and int64 steps over one shape fuse
	// into a single sweep, each step with its own typed loop.
	p := bytecode.MustParse(`
.reg a0 float64 100
.reg a1 int64 100
BH_IDENTITY a0 0.5
BH_IDENTITY a1 3
BH_ADD a0 a0 1.5
BH_ADD a1 a1 1
BH_SYNC a0
BH_SYNC a1
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	clusters := m.planClusters(p)
	if !clusters[0].fused || clusters[0].end-clusters[0].start != 4 {
		t.Errorf("cross-dtype cluster did not form: %+v", clusters)
	}
	runBoth(t, p)
}

func TestFusionSkipsMisalignedSelfOverlap(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 100
BH_RANGE a0
BH_ADD a0 [1:100:1] a0 [0:99:1] 0
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	for _, c := range m.planClusters(p) {
		if c.fused {
			t.Errorf("misaligned self-overlap fused: %+v", c)
		}
	}
}

// runBoth executes the program twice — fusion off and on — and compares
// every synced register.
func runBoth(t *testing.T, p *bytecode.Program) {
	t.Helper()
	plain := New(Config{Fusion: false})
	defer plain.Close()
	fused := New(Config{Fusion: true})
	defer fused.Close()
	if err := plain.Run(p.Clone()); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if err := fused.Run(p.Clone()); err != nil {
		t.Fatalf("fused run: %v", err)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op != bytecode.OpSync {
			continue
		}
		a, ok1 := plain.Tensor(in.Out.Reg, in.Out.View)
		b, ok2 := fused.Tensor(in.Out.Reg, in.Out.View)
		if !ok1 || !ok2 {
			t.Fatalf("synced register %s missing", in.Out.Reg)
		}
		if !a.AllClose(b, 1e-12, 1e-12) {
			t.Errorf("fusion changed register %s: max diff %v", in.Out.Reg, a.MaxAbsDiff(b))
		}
	}
	// Fusion must actually reduce sweeps on fusible programs.
	if fused.Stats().Sweeps > plain.Stats().Sweeps {
		t.Errorf("fusion increased sweeps: %d vs %d", fused.Stats().Sweeps, plain.Stats().Sweeps)
	}
}

func TestFusionEquivalenceListing2(t *testing.T) {
	runBoth(t, bytecode.MustParse(`
BH_IDENTITY a0 [0:1000:1] 0
BH_ADD a0 [0:1000:1] a0 [0:1000:1] 1
BH_ADD a0 [0:1000:1] a0 [0:1000:1] 1
BH_ADD a0 [0:1000:1] a0 [0:1000:1] 1
BH_SYNC a0 [0:1000:1]
`))
}

func TestFusionEquivalenceMixed(t *testing.T) {
	runBoth(t, bytecode.MustParse(`
.reg a0 float64 512
.reg a1 float64 512
.reg a2 float64 512
BH_RANGE a0
BH_MULTIPLY a1 a0 0.01
BH_SIN a2 a1
BH_MULTIPLY a2 a2 a2
BH_ADD a2 a2 1.0
BH_SQRT a2 a2
BH_SYNC a2
`))
}

func TestFusionEquivalenceRandomPrograms(t *testing.T) {
	f := func(seed uint64, nInstr uint8) bool {
		p := randomFloatProgram(seed, int(nInstr%15)+1)
		plain := New(Config{Fusion: false})
		defer plain.Close()
		fused := New(Config{Fusion: true})
		defer fused.Close()
		if err := plain.Run(p.Clone()); err != nil {
			return false
		}
		if err := fused.Run(p.Clone()); err != nil {
			return false
		}
		for r := 0; r < len(p.Regs); r++ {
			info, _ := p.Reg(bytecode.RegID(r))
			v := tensor.NewView(tensor.MustShape(info.Len))
			a, ok1 := plain.Tensor(bytecode.RegID(r), v)
			b, ok2 := fused.Tensor(bytecode.RegID(r), v)
			if ok1 != ok2 {
				return false
			}
			if ok1 && !a.AllClose(b, 1e-12, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomFloatProgram builds a random fusible-ish float64 program: a few
// registers, a mix of unary/binary ops, occasional strided views and SYNCs.
func randomFloatProgram(seed uint64, n int) *bytecode.Program {
	r := tensor.NewSplitMix64(seed)
	p := bytecode.NewProgram()
	regLen := r.Intn(200) + 4
	full := tensor.NewView(tensor.MustShape(regLen))
	nRegs := r.Intn(3) + 1
	regs := make([]bytecode.RegID, nRegs)
	for i := range regs {
		regs[i] = p.NewReg(tensor.Float64, regLen)
		p.EmitIdentity(bytecode.Reg(regs[i], full), bytecode.Const(bytecode.ConstFloat(float64(r.Intn(9))-4)))
	}
	binOps := []bytecode.Opcode{bytecode.OpAdd, bytecode.OpSubtract, bytecode.OpMultiply, bytecode.OpMaximum, bytecode.OpMinimum}
	unOps := []bytecode.Opcode{bytecode.OpAbsolute, bytecode.OpNegative, bytecode.OpFloor, bytecode.OpCos}
	for i := 0; i < n; i++ {
		out := regs[r.Intn(nRegs)]
		view := full
		if r.Intn(4) == 0 { // occasionally strided: half the elements
			view, _ = full.Slice(0, 0, regLen-regLen%2, 2)
		}
		switch r.Intn(4) {
		case 0:
			p.EmitBinary(binOps[r.Intn(len(binOps))], bytecode.Reg(out, view),
				bytecode.Reg(regs[r.Intn(nRegs)], view), bytecode.Const(bytecode.ConstFloat(float64(r.Intn(5)))))
		case 1:
			p.EmitBinary(binOps[r.Intn(len(binOps))], bytecode.Reg(out, view),
				bytecode.Reg(regs[r.Intn(nRegs)], view), bytecode.Reg(regs[r.Intn(nRegs)], view))
		case 2:
			p.EmitUnary(unOps[r.Intn(len(unOps))], bytecode.Reg(out, view), bytecode.Reg(regs[r.Intn(nRegs)], view))
		default:
			p.EmitSync(bytecode.Reg(out, full))
		}
	}
	for i := range regs {
		p.EmitSync(bytecode.Reg(regs[i], full))
	}
	return p
}

func TestFusedStatsCountClusters(t *testing.T) {
	p := bytecode.MustParse(`
BH_IDENTITY a0 [0:100:1] 0
BH_ADD a0 [0:100:1] a0 [0:100:1] 1
BH_ADD a0 [0:100:1] a0 [0:100:1] 1
BH_SYNC a0 [0:100:1]
`)
	m := New(Config{Fusion: true})
	defer m.Close()
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Sweeps != 1 {
		t.Errorf("Sweeps = %d, want 1 (one fused cluster)", st.Sweeps)
	}
	if st.Instructions != 3 || st.FusedInstructions != 3 {
		t.Errorf("Instructions = %d, FusedInstructions = %d, want 3, 3", st.Instructions, st.FusedInstructions)
	}
}

func TestParallelEquivalence(t *testing.T) {
	// Same program, 1 vs 4 workers with a tiny parallel threshold: results
	// must be identical.
	src := `
.reg a0 float64 10000
.reg a1 float64 10000
BH_RANGE a0
BH_MULTIPLY a1 a0 2.0
BH_ADD a1 a1 1.0
BH_SQRT a1 a1
BH_SYNC a1
`
	p := bytecode.MustParse(src)
	serial := New(Config{Workers: 1})
	defer serial.Close()
	parallel := New(Config{Workers: 4, ParallelThreshold: 64})
	defer parallel.Close()
	if err := serial.Run(p.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Run(p.Clone()); err != nil {
		t.Fatal(err)
	}
	v := tensor.NewView(tensor.MustShape(10000))
	a, _ := serial.Tensor(1, v)
	b, _ := parallel.Tensor(1, v)
	if !a.Equal(b) {
		t.Error("parallel execution changed results")
	}
}

func TestParallelFusedEquivalence(t *testing.T) {
	p := bytecode.MustParse(`
BH_IDENTITY a0 [0:50000:1] 1.5
BH_MULTIPLY a0 [0:50000:1] a0 [0:50000:1] a0 [0:50000:1]
BH_ADD a0 [0:50000:1] a0 [0:50000:1] 3
BH_SYNC a0 [0:50000:1]
`)
	fusedPar := New(Config{Workers: 8, Fusion: true, ParallelThreshold: 128})
	defer fusedPar.Close()
	plain := New(Config{Workers: 1})
	defer plain.Close()
	if err := fusedPar.Run(p.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := plain.Run(p.Clone()); err != nil {
		t.Fatal(err)
	}
	v := tensor.NewView(tensor.MustShape(50000))
	a, _ := fusedPar.Tensor(0, v)
	b, _ := plain.Tensor(0, v)
	if !a.Equal(b) {
		t.Error("parallel fused execution changed results")
	}
}
