package vm

import (
	"errors"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/faultinject"
	"bohrium/internal/tensor"
)

// TestChaosWatermarkShedsThenDenies pins the graceful-degradation
// policy at the engine level: an allocation pushing live+parked bytes
// over the high watermark sheds the shareable caches (every compiled
// plan, every parked recycle buffer) and succeeds if live bytes alone
// then fit; only an allocation that cannot fit even after the shed is
// denied with ErrMemoryPressure, and the denial undoes its booking.
func TestChaosWatermarkShedsThenDenies(t *testing.T) {
	eng := NewEngine(EngineConfig{MemoryHighWatermark: 1024})
	defer eng.Close()
	m := eng.NewMachine(Config{Fusion: true})
	defer m.Close()

	// Seed the plan cache so the shed has something to drop.
	prog := planTestProg(1)
	pl, err := m.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.InsertPlan(prog.Fingerprint(), prog.Constants(), true, pl, nil)
	if eng.PlanCacheLen() == 0 {
		t.Fatal("plan cache empty after insert")
	}

	small, err := m.AcquireBuffer(tensor.Float64, 64) // 512 B live, fits
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.LiveBytes(); got != 512 {
		t.Fatalf("live bytes = %d, want 512", got)
	}
	m.ReleaseBuffer(small) // 0 live, 512 parked

	// 1024 B fresh: live+parked = 1536 > 1024 → shed; live alone fits.
	big, err := m.AcquireBuffer(tensor.Float64, 128)
	if err != nil {
		t.Fatalf("allocation within the watermark denied after shed: %v", err)
	}
	if sheds := eng.MemorySheds(); sheds != 1 {
		t.Fatalf("memory sheds = %d, want 1", sheds)
	}
	if n := eng.PlanCacheLen(); n != 0 {
		t.Fatalf("plan cache holds %d entries after pressure shed, want 0", n)
	}
	if got := eng.LiveBytes(); got != 1024 {
		t.Fatalf("live bytes = %d, want 1024", got)
	}

	// 512 B more cannot fit even with nothing left to shed: denied, and
	// the optimistic booking is undone.
	_, err = m.AcquireBuffer(tensor.Float64, 64)
	if !errors.Is(err, ErrMemoryPressure) {
		t.Fatalf("over-watermark allocation: %v, want ErrMemoryPressure", err)
	}
	if !strings.Contains(err.Error(), "high watermark") {
		t.Fatalf("denial does not explain the watermark: %v", err)
	}
	if sheds := eng.MemorySheds(); sheds != 2 {
		t.Fatalf("memory sheds = %d, want 2", sheds)
	}
	if got := eng.LiveBytes(); got != 1024 {
		t.Fatalf("denied allocation leaked its booking: live bytes = %d, want 1024", got)
	}

	// A recycle hit moves parked bytes to live without growing the total,
	// so it can never be denied — even exactly at the watermark.
	m.ReleaseBuffer(big)
	again, err := m.AcquireBuffer(tensor.Float64, 128)
	if err != nil {
		t.Fatalf("recycle hit denied: %v", err)
	}
	if sheds := eng.MemorySheds(); sheds != 2 {
		t.Fatalf("recycle hit tripped a shed: %d sheds, want 2", sheds)
	}
	m.ReleaseBuffer(again)
}

// TestChaosMemoryPressureSurfacesThroughRun pins that ErrMemoryPressure
// survives every layer of wrapping between a register materialization
// deep in a sweep and the error Run returns — the contract the bhd
// daemon's errors.Is mapping to a retryable 503 depends on.
func TestChaosMemoryPressureSurfacesThroughRun(t *testing.T) {
	eng := NewEngine(EngineConfig{MemoryHighWatermark: 1024})
	defer eng.Close()
	m := eng.NewMachine(Config{Fusion: true})
	defer m.Close()

	sized := func(n int) *bytecode.Program {
		p := bytecode.NewProgram()
		a := p.NewReg(tensor.Float64, n)
		v := tensor.NewView(tensor.MustShape(n))
		p.EmitIdentity(bytecode.Reg(a, v), bytecode.Const(bytecode.ConstFloat(1)))
		p.EmitSync(bytecode.Reg(a, v))
		p.MarkOutput(a)
		return p
	}

	err := m.Run(sized(1024)) // 8 KiB register vs a 1 KiB watermark
	if !errors.Is(err, ErrMemoryPressure) {
		t.Fatalf("oversized run: %v, want an ErrMemoryPressure chain", err)
	}
	// The machine is degraded, not dead: a batch that fits still runs.
	if err := m.Run(sized(16)); err != nil {
		t.Fatalf("within-watermark run after a denial: %v", err)
	}
}

// TestChaosAllocFailTargetsLabeledMachine pins the fault-injection
// label plumbing at the vm level: an armed alloc-fail with a label
// strikes only machines configured with that FaultLabel, wraps
// ErrInjected through the execution error chain, and stops the moment
// it is disarmed.
func TestChaosAllocFailTargetsLabeledMachine(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	defer eng.Close()
	victim := eng.NewMachine(Config{Fusion: true, FaultLabel: "victim"})
	bystander := eng.NewMachine(Config{Fusion: true, FaultLabel: "bystander"})
	defer victim.Close()
	defer bystander.Close()
	bindVec(t, victim, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	bindVec(t, bystander, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})

	disarm := faultinject.Arm(faultinject.AllocFail, faultinject.Fault{Label: "victim"})
	defer disarm()
	if err := victim.Run(planTestProg(1)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("victim run: %v, want an ErrInjected chain", err)
	}
	if err := bystander.Run(planTestProg(1)); err != nil {
		t.Fatalf("bystander run while victim's fault armed: %v", err)
	}

	disarm()
	if err := victim.Run(planTestProg(1)); err != nil {
		t.Fatalf("victim run after disarm: %v", err)
	}
}

// TestChaosExecutorPanicBecomesStickyError pins async panic
// containment at the vm level: a panic while the background executor
// runs a queued plan becomes the pipeline's sticky ErrExec-wrapped
// error — reported by every Wait and by Close — instead of killing the
// process.
func TestChaosExecutorPanicBecomesStickyError(t *testing.T) {
	m := New(Config{Fusion: true, FaultLabel: "sess"})
	defer m.Close()
	e := m.NewExecutor(2)
	bindVec(t, m, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	pl, err := m.Compile(planTestProg(1))
	if err != nil {
		t.Fatal(err)
	}

	disarm := faultinject.Arm(faultinject.WorkerPanic, faultinject.Fault{Label: "sess", Times: 1})
	defer disarm()
	e.Submit(pl)
	werr := e.Wait()
	if !errors.Is(werr, ErrExec) {
		t.Fatalf("wait after injected panic: %v, want an ErrExec chain", werr)
	}
	if !strings.Contains(werr.Error(), "panic during pipelined execution") {
		t.Fatalf("pipeline error does not name the recovered panic: %v", werr)
	}
	if again := e.Wait(); again == nil || again.Error() != werr.Error() {
		t.Fatalf("sticky error changed across waits: %v then %v", werr, again)
	}
	if cerr := e.Close(); cerr == nil || cerr.Error() != werr.Error() {
		t.Fatalf("close lost the sticky error: %v", cerr)
	}
}
