package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/linalg"
	"bohrium/internal/tensor"
)

// execExtension dispatches the linear-algebra extension methods, packing
// operand views into dense workspaces the way a LAPACK-backed extension
// would repack before dgetrf/dgetrs.
func (m *Machine) execExtension(p *bytecode.Program, in *bytecode.Instruction) error {
	outBuf, err := m.regs.ensure(p, in.Out.Reg)
	if err != nil {
		return err
	}
	out := tensor.Tensor{Buf: outBuf, View: in.Out.View}

	pack := func(o bytecode.Operand) (linalg.Dense, error) {
		buf := m.regs.get(o.Reg)
		if buf == nil {
			return linalg.Dense{}, fmt.Errorf("input register %s has no buffer", o.Reg)
		}
		return linalg.FromTensor(tensor.Tensor{Buf: buf, View: o.View})
	}

	m.stats.instructions.Add(1)
	m.stats.sweeps.Add(1)
	m.stats.elements.Add(int64(in.Out.View.Size()))

	switch in.Op {
	case bytecode.OpMatmul:
		a, err := pack(in.In1)
		if err != nil {
			return err
		}
		b, err := pack(in.In2)
		if err != nil {
			return err
		}
		return linalg.MatMulDense(a, b).ToTensor(out)

	case bytecode.OpLU:
		a, err := pack(in.In1)
		if err != nil {
			return err
		}
		lu, err := linalg.Factor(a)
		if err != nil {
			return err
		}
		// The packed factors of P·A; the permutation stays internal to
		// the extension (byte-code has a single result operand).
		return lu.Packed.ToTensor(out)

	case bytecode.OpSolve:
		a, err := pack(in.In1)
		if err != nil {
			return err
		}
		b, err := pack(in.In2)
		if err != nil {
			return err
		}
		x, err := linalg.Solve(a, b)
		if err != nil {
			return err
		}
		return x.ToTensor(out)

	case bytecode.OpInverse:
		a, err := pack(in.In1)
		if err != nil {
			return err
		}
		inv, err := linalg.Inverse(a)
		if err != nil {
			return err
		}
		return inv.ToTensor(out)

	default:
		return fmt.Errorf("unknown extension method %s", in.Op)
	}
}
