package vm

import (
	"math"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Differential tests: every elementwise op-code must produce identical
// results through the contiguous fast path and the strided slow path, and
// match a scalar Go reference on spot values. This pins the kernel table
// against both dispatch layers.

// refBinary mirrors the float kernel semantics in plain Go.
func refBinary(op bytecode.Opcode, a, b float64) float64 {
	k, ok := floatBinaryKernel(op)
	if !ok {
		panic("no kernel " + op.String())
	}
	return k(a, b)
}

func TestBinaryOpsFastVsStrided(t *testing.T) {
	binaryOps := []bytecode.Opcode{
		bytecode.OpAdd, bytecode.OpSubtract, bytecode.OpMultiply, bytecode.OpDivide,
		bytecode.OpPower, bytecode.OpMod, bytecode.OpMaximum, bytecode.OpMinimum,
		bytecode.OpArctan2,
	}
	const n = 64
	for _, op := range binaryOps {
		t.Run(op.String(), func(t *testing.T) {
			// Contiguous program.
			src := `
.reg a0 float64 ` + itoa(n) + `
.reg a1 float64 ` + itoa(n) + `
.reg a2 float64 ` + itoa(n) + `
BH_RANDOM a0 11 0
BH_RANDOM a1 13 0
BH_ADD a0 a0 0.5
BH_ADD a1 a1 0.5
` + op.String() + ` a2 a0 a1
BH_SYNC a2
`
			m := run(t, Config{}, src)
			fast := regSlice(t, m, 2, n)

			// Same values through strided views over doubled buffers.
			n2 := itoa(2 * n)
			strided := `
.reg a0 float64 ` + n2 + `
.reg a1 float64 ` + n2 + `
.reg a2 float64 ` + n2 + `
BH_RANDOM a0 [0:` + itoa(n) + `:1] 11 0
BH_RANDOM a1 [0:` + itoa(n) + `:1] 13 0
BH_ADD a0 [0:` + itoa(n) + `:1] a0 [0:` + itoa(n) + `:1] 0.5
BH_ADD a1 [0:` + itoa(n) + `:1] a1 [0:` + itoa(n) + `:1] 0.5
BH_IDENTITY a0 [0:` + n2 + `:2] a0 [0:` + itoa(n) + `:1]
BH_IDENTITY a1 [1:` + itoa(2*n+1) + `:2] a1 [0:` + itoa(n) + `:1]
` + op.String() + ` a2 [0:` + n2 + `:2] a0 [0:` + n2 + `:2] a1 [1:` + itoa(2*n+1) + `:2]
BH_SYNC a2
`
			ms := run(t, Config{}, strided)
			tt, ok := ms.Tensor(2, mustView(0, tensor.MustShape(n), []int{2}))
			if !ok {
				t.Fatal("strided result missing")
			}
			slow := tt.Float64Slice()

			for i := 0; i < n; i++ {
				if fast[i] != slow[i] && !(math.IsNaN(fast[i]) && math.IsNaN(slow[i])) {
					t.Fatalf("element %d: fast %v, strided %v", i, fast[i], slow[i])
				}
			}
			// Spot-check against the scalar reference.
			a0 := regSlice(t, m, 0, n)
			a1 := regSlice(t, m, 1, n)
			for i := 0; i < n; i++ {
				want := refBinary(op, a0[i], a1[i])
				if fast[i] != want && !(math.IsNaN(fast[i]) && math.IsNaN(want)) {
					t.Fatalf("element %d: got %v, reference %v (a=%v b=%v)", i, fast[i], want, a0[i], a1[i])
				}
			}
		})
	}
}

func TestUnaryOpsFastVsStrided(t *testing.T) {
	unaryOps := []bytecode.Opcode{
		bytecode.OpNegative, bytecode.OpAbsolute, bytecode.OpSqrt, bytecode.OpExp,
		bytecode.OpExpm1, bytecode.OpLog1p, bytecode.OpSin, bytecode.OpCos,
		bytecode.OpTan, bytecode.OpArctan, bytecode.OpSinh, bytecode.OpCosh,
		bytecode.OpTanh, bytecode.OpFloor, bytecode.OpCeil, bytecode.OpRint,
		bytecode.OpTrunc, bytecode.OpSign,
	}
	const n = 64
	for _, op := range unaryOps {
		t.Run(op.String(), func(t *testing.T) {
			src := `
.reg a0 float64 ` + itoa(n) + `
.reg a1 float64 ` + itoa(n) + `
BH_RANDOM a0 17 0
BH_SUBTRACT a0 a0 0.25
BH_MULTIPLY a0 a0 3.0
` + op.String() + ` a1 a0
BH_SYNC a1
`
			m := run(t, Config{}, src)
			fast := regSlice(t, m, 1, n)
			a0 := regSlice(t, m, 0, n)

			k, ok := floatUnaryKernel(op)
			if !ok {
				t.Fatalf("no kernel for %s", op)
			}
			for i := 0; i < n; i++ {
				want := k(a0[i])
				if fast[i] != want && !(math.IsNaN(fast[i]) && math.IsNaN(want)) {
					t.Fatalf("element %d: got %v, reference %v (x=%v)", i, fast[i], want, a0[i])
				}
			}

			// Strided output: odd slots of a doubled buffer.
			n2 := itoa(2 * n)
			strided := `
.reg a0 float64 ` + itoa(n) + `
.reg a1 float64 ` + n2 + `
BH_RANDOM a0 17 0
BH_SUBTRACT a0 a0 0.25
BH_MULTIPLY a0 a0 3.0
` + op.String() + ` a1 [1:` + itoa(2*n+1) + `:2] a0 [0:` + itoa(n) + `:1]
BH_SYNC a1 [1:` + itoa(2*n+1) + `:2]
`
			ms := run(t, Config{}, strided)
			tt, ok := ms.Tensor(1, mustView(1, tensor.MustShape(n), []int{2}))
			if !ok {
				t.Fatal("strided result missing")
			}
			slow := tt.Float64Slice()
			for i := 0; i < n; i++ {
				if fast[i] != slow[i] && !(math.IsNaN(fast[i]) && math.IsNaN(slow[i])) {
					t.Fatalf("element %d: fast %v, strided %v", i, fast[i], slow[i])
				}
			}
		})
	}
}

func TestIntVsFloatClassAgreement(t *testing.T) {
	// For small integers, the int64 and float64 computation classes must
	// agree on the shared arithmetic ops.
	ops := []bytecode.Opcode{
		bytecode.OpAdd, bytecode.OpSubtract, bytecode.OpMultiply,
		bytecode.OpMaximum, bytecode.OpMinimum, bytecode.OpPower,
	}
	for _, op := range ops {
		t.Run(op.String(), func(t *testing.T) {
			fk, _ := floatBinaryKernel(op)
			ik, _ := intBinaryKernel(op)
			for a := int64(0); a <= 6; a++ {
				for b := int64(0); b <= 4; b++ {
					fi := fk(float64(a), float64(b))
					ii := ik(a, b)
					if float64(ii) != fi {
						t.Fatalf("%s(%d, %d): int %d, float %v", op, a, b, ii, fi)
					}
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
