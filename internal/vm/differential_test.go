package vm

import (
	"math"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Differential tests: every elementwise op-code must produce identical
// results through the contiguous fast path and the strided slow path, and
// match a scalar Go reference on spot values. This pins the kernel table
// against both dispatch layers.

// refBinary mirrors the float kernel semantics in plain Go.
func refBinary(op bytecode.Opcode, a, b float64) float64 {
	k, ok := floatBinaryKernel(op)
	if !ok {
		panic("no kernel " + op.String())
	}
	return k(a, b)
}

func TestBinaryOpsFastVsStrided(t *testing.T) {
	binaryOps := []bytecode.Opcode{
		bytecode.OpAdd, bytecode.OpSubtract, bytecode.OpMultiply, bytecode.OpDivide,
		bytecode.OpPower, bytecode.OpMod, bytecode.OpMaximum, bytecode.OpMinimum,
		bytecode.OpArctan2,
	}
	const n = 64
	for _, op := range binaryOps {
		t.Run(op.String(), func(t *testing.T) {
			// Contiguous program.
			src := `
.reg a0 float64 ` + itoa(n) + `
.reg a1 float64 ` + itoa(n) + `
.reg a2 float64 ` + itoa(n) + `
BH_RANDOM a0 11 0
BH_RANDOM a1 13 0
BH_ADD a0 a0 0.5
BH_ADD a1 a1 0.5
` + op.String() + ` a2 a0 a1
BH_SYNC a2
`
			m := run(t, Config{}, src)
			fast := regSlice(t, m, 2, n)

			// Same values through strided views over doubled buffers.
			n2 := itoa(2 * n)
			strided := `
.reg a0 float64 ` + n2 + `
.reg a1 float64 ` + n2 + `
.reg a2 float64 ` + n2 + `
BH_RANDOM a0 [0:` + itoa(n) + `:1] 11 0
BH_RANDOM a1 [0:` + itoa(n) + `:1] 13 0
BH_ADD a0 [0:` + itoa(n) + `:1] a0 [0:` + itoa(n) + `:1] 0.5
BH_ADD a1 [0:` + itoa(n) + `:1] a1 [0:` + itoa(n) + `:1] 0.5
BH_IDENTITY a0 [0:` + n2 + `:2] a0 [0:` + itoa(n) + `:1]
BH_IDENTITY a1 [1:` + itoa(2*n+1) + `:2] a1 [0:` + itoa(n) + `:1]
` + op.String() + ` a2 [0:` + n2 + `:2] a0 [0:` + n2 + `:2] a1 [1:` + itoa(2*n+1) + `:2]
BH_SYNC a2
`
			ms := run(t, Config{}, strided)
			tt, ok := ms.Tensor(2, mustView(0, tensor.MustShape(n), []int{2}))
			if !ok {
				t.Fatal("strided result missing")
			}
			slow := tt.Float64Slice()

			for i := 0; i < n; i++ {
				if fast[i] != slow[i] && !(math.IsNaN(fast[i]) && math.IsNaN(slow[i])) {
					t.Fatalf("element %d: fast %v, strided %v", i, fast[i], slow[i])
				}
			}
			// Spot-check against the scalar reference.
			a0 := regSlice(t, m, 0, n)
			a1 := regSlice(t, m, 1, n)
			for i := 0; i < n; i++ {
				want := refBinary(op, a0[i], a1[i])
				if fast[i] != want && !(math.IsNaN(fast[i]) && math.IsNaN(want)) {
					t.Fatalf("element %d: got %v, reference %v (a=%v b=%v)", i, fast[i], want, a0[i], a1[i])
				}
			}
		})
	}
}

func TestUnaryOpsFastVsStrided(t *testing.T) {
	unaryOps := []bytecode.Opcode{
		bytecode.OpNegative, bytecode.OpAbsolute, bytecode.OpSqrt, bytecode.OpExp,
		bytecode.OpExpm1, bytecode.OpLog1p, bytecode.OpSin, bytecode.OpCos,
		bytecode.OpTan, bytecode.OpArctan, bytecode.OpSinh, bytecode.OpCosh,
		bytecode.OpTanh, bytecode.OpFloor, bytecode.OpCeil, bytecode.OpRint,
		bytecode.OpTrunc, bytecode.OpSign,
	}
	const n = 64
	for _, op := range unaryOps {
		t.Run(op.String(), func(t *testing.T) {
			src := `
.reg a0 float64 ` + itoa(n) + `
.reg a1 float64 ` + itoa(n) + `
BH_RANDOM a0 17 0
BH_SUBTRACT a0 a0 0.25
BH_MULTIPLY a0 a0 3.0
` + op.String() + ` a1 a0
BH_SYNC a1
`
			m := run(t, Config{}, src)
			fast := regSlice(t, m, 1, n)
			a0 := regSlice(t, m, 0, n)

			k, ok := floatUnaryKernel(op)
			if !ok {
				t.Fatalf("no kernel for %s", op)
			}
			for i := 0; i < n; i++ {
				want := k(a0[i])
				if fast[i] != want && !(math.IsNaN(fast[i]) && math.IsNaN(want)) {
					t.Fatalf("element %d: got %v, reference %v (x=%v)", i, fast[i], want, a0[i])
				}
			}

			// Strided output: odd slots of a doubled buffer.
			n2 := itoa(2 * n)
			strided := `
.reg a0 float64 ` + itoa(n) + `
.reg a1 float64 ` + n2 + `
BH_RANDOM a0 17 0
BH_SUBTRACT a0 a0 0.25
BH_MULTIPLY a0 a0 3.0
` + op.String() + ` a1 [1:` + itoa(2*n+1) + `:2] a0 [0:` + itoa(n) + `:1]
BH_SYNC a1 [1:` + itoa(2*n+1) + `:2]
`
			ms := run(t, Config{}, strided)
			tt, ok := ms.Tensor(1, mustView(1, tensor.MustShape(n), []int{2}))
			if !ok {
				t.Fatal("strided result missing")
			}
			slow := tt.Float64Slice()
			for i := 0; i < n; i++ {
				if fast[i] != slow[i] && !(math.IsNaN(fast[i]) && math.IsNaN(slow[i])) {
					t.Fatalf("element %d: fast %v, strided %v", i, fast[i], slow[i])
				}
			}
		})
	}
}

func TestIntVsFloatClassAgreement(t *testing.T) {
	// For small integers, the int64 and float64 computation classes must
	// agree on the shared arithmetic ops.
	ops := []bytecode.Opcode{
		bytecode.OpAdd, bytecode.OpSubtract, bytecode.OpMultiply,
		bytecode.OpMaximum, bytecode.OpMinimum, bytecode.OpPower,
	}
	for _, op := range ops {
		t.Run(op.String(), func(t *testing.T) {
			fk, _ := floatBinaryKernel(op)
			ik, _ := intBinaryKernel(op)
			for a := int64(0); a <= 6; a++ {
				for b := int64(0); b <= 4; b++ {
					fi := fk(float64(a), float64(b))
					ii := ik(a, b)
					if float64(ii) != fi {
						t.Fatalf("%s(%d, %d): int %d, float %v", op, a, b, ii, fi)
					}
				}
			}
		})
	}
}

// compareRegs asserts registers r of machines a and b hold the same n
// values. Integer registers compare exactly; float registers compare within
// relative tolerance tol (tol 0 demands bit-equality, NaN matching NaN).
func compareRegs(t *testing.T, a, b *Machine, r bytecode.RegID, n int, tol float64) {
	t.Helper()
	view := tensor.NewView(tensor.MustShape(n))
	ta, ok := a.Tensor(r, view)
	if !ok {
		t.Fatalf("register %s missing on first machine", r)
	}
	tb, ok := b.Tensor(r, view)
	if !ok {
		t.Fatalf("register %s missing on second machine", r)
	}
	if !ta.Buf.DType().IsFloat() {
		for i := 0; i < n; i++ {
			if va, vb := ta.Buf.GetInt(i), tb.Buf.GetInt(i); va != vb {
				t.Fatalf("%s[%d]: %d vs %d", r, i, va, vb)
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		va, vb := ta.Buf.Get(i), tb.Buf.Get(i)
		if math.IsNaN(va) && math.IsNaN(vb) {
			continue
		}
		if tol == 0 {
			if va != vb {
				t.Fatalf("%s[%d]: %v vs %v (bit-equality required)", r, i, va, vb)
			}
			continue
		}
		scale := math.Max(1, math.Max(math.Abs(va), math.Abs(vb)))
		if math.Abs(va-vb) > tol*scale {
			t.Fatalf("%s[%d]: %v vs %v exceeds tolerance %v", r, i, va, vb, tol)
		}
	}
}

// sweepCases cover every reduce/scan strategy (split-outputs, chunk-axis,
// serial), both computation classes, and strided/broadcast views. serialTol
// is the permitted relative difference against the forced-serial machine:
// 0 for integer folds and the bitwise-identical strategies, small for the
// float chunked paths (reassociation error, documented in reduce.go).
var sweepCases = []struct {
	name      string
	src       string
	out       bytecode.RegID
	n         int
	serialTol float64
}{
	{
		// 256 outputs ≥ reduceSplitMinOutputs → split-outputs strategy.
		name: "sum-rows-float64-split",
		src: `
.reg a0 float64 8448
.reg a1 float64 256
BH_RANDOM a0 7 0
BH_ADD_REDUCE a1 [0:256:1] a0 [0:8448:33][0:33:1] axis=1
BH_SYNC a1
`,
		out: 1, n: 256, serialTol: 0,
	},
	{
		// 3 outputs over a 20000-long axis → chunk-axis two-phase; float
		// partial combine reassociates, so vs-serial gets a tolerance.
		name: "sum-rows-float64-chunked",
		src: `
.reg a0 float64 60000
.reg a1 float64 3
BH_RANDOM a0 11 0
BH_ADD_REDUCE a1 [0:3:1] a0 [0:60000:20000][0:20000:1] axis=1
BH_SYNC a1
`,
		out: 1, n: 3, serialTol: 1e-9,
	},
	{
		// 96 outputs (below the split minimum) over a 5000-long axis:
		// big total work, medium axis — the chunk-axis band that used to
		// fall through to serial.
		name: "sum-rows-medium-chunked",
		src: `
.reg a0 float64 480000
.reg a1 float64 96
BH_RANDOM a0 43 0
BH_ADD_REDUCE a1 [0:96:1] a0 [0:480000:5000][0:5000:1] axis=1
BH_SYNC a1
`,
		out: 1, n: 96, serialTol: 1e-9,
	},
	{
		// Full reduction of 40000 int64 values, chunked: integer adds are
		// associative, so even the chunked path is bit-equal to serial.
		name: "sum-all-int64-chunked",
		src: `
.reg a0 int64 40000
.reg a1 int64 1
BH_RANDOM a0 13 0
BH_MOD a0 a0 97
BH_ADD_REDUCE a1 [0:1:1] a0 [0:40000:1] axis=0
BH_SYNC a1
`,
		out: 1, n: 1, serialTol: 0,
	},
	{
		// Wrapping int64 product over a long axis, chunked, still exact.
		name: "prod-all-int64-chunked",
		src: `
.reg a0 int64 40000
.reg a1 int64 1
BH_RANDOM a0 29 0
BH_MOD a0 a0 3
BH_ADD a0 a0 1
BH_MULTIPLY_REDUCE a1 [0:1:1] a0 [0:40000:1] axis=0
BH_SYNC a1
`,
		out: 1, n: 1, serialTol: 0,
	},
	{
		// Strided input view (every other element); MAX is associative and
		// exact in float, so chunking stays bit-equal.
		name: "max-strided-float64-chunked",
		src: `
.reg a0 float64 40000
.reg a1 float64 1
BH_RANDOM a0 17 0
BH_MAXIMUM_REDUCE a1 [0:1:1] a0 [0:40000:2] axis=0
BH_SYNC a1
`,
		out: 1, n: 1, serialTol: 0,
	},
	{
		// Broadcast input (200 virtual rows of the same vector, stride 0)
		// reduced along the data axis through the split-outputs strategy.
		name: "min-broadcast-float64-split",
		src: `
.reg a0 float64 200
.reg a1 float64 200
BH_RANDOM a0 19 0
BH_MINIMUM_REDUCE a1 [0:200:1] a0 [0:200:0][0:200:1] axis=1
BH_SYNC a1
`,
		out: 1, n: 200, serialTol: 0,
	},
	{
		// Strided output view: 256 sums written to the even slots of a
		// 512-element register.
		name: "sum-rows-strided-out-split",
		src: `
.reg a0 float64 8448
.reg a1 float64 512
BH_RANDOM a0 23 0
BH_ADD_REDUCE a1 [0:512:2] a0 [0:8448:33][0:33:1] axis=1
BH_SYNC a1
`,
		out: 1, n: 512, serialTol: 0,
	},
	{
		// Long 1-D prefix sum → three-pass chunked scan (multiple chunks:
		// 40000 > reduceChunk); float rescan carries reassociation error.
		name: "cumsum-float64-chunked",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
BH_RANDOM a0 31 0
BH_ADD_ACCUMULATE a1 a0 axis=0
BH_SYNC a1
`,
		out: 1, n: 40000, serialTol: 1e-9,
	},
	{
		// Row-wise int64 prefix sums over 256 lines → split-outputs scan.
		name: "cumsum-rows-int64-split",
		src: `
.reg a0 int64 8448
.reg a1 int64 8448
BH_RANDOM a0 37 0
BH_MOD a0 a0 1000
BH_ADD_ACCUMULATE a1 [0:8448:33][0:33:1] a0 [0:8448:33][0:33:1] axis=1
BH_SYNC a1
`,
		out: 1, n: 8448, serialTol: 0,
	},
	{
		// Long wrapping int64 prefix product through the three-pass scan.
		name: "cumprod-int64-chunked",
		src: `
.reg a0 int64 40000
.reg a1 int64 40000
BH_RANDOM a0 41 0
BH_MOD a0 a0 3
BH_ADD a0 a0 1
BH_MULTIPLY_ACCUMULATE a1 a0 axis=0
BH_SYNC a1
`,
		out: 1, n: 40000, serialTol: 0,
	},
}

// TestSweepWorkersDifferential pins the parallel reduction/scan engine:
// for every strategy, a Workers:1 and a Workers:8 machine with the same
// ParallelThreshold must produce bit-equal results (strategy selection and
// chunk boundaries are worker-independent by construction), and both must
// match a forced-serial machine exactly for integer folds and within the
// documented reassociation tolerance for float chunked folds.
func TestSweepWorkersDifferential(t *testing.T) {
	const threshold = 512 // low enough that every case crosses it
	for _, tc := range sweepCases {
		t.Run(tc.name, func(t *testing.T) {
			serial := run(t, Config{Workers: 1, ParallelThreshold: 1 << 30}, tc.src)
			w1 := run(t, Config{Workers: 1, ParallelThreshold: threshold}, tc.src)
			w8 := run(t, Config{Workers: 8, ParallelThreshold: threshold}, tc.src)
			compareRegs(t, w1, w8, tc.out, tc.n, 0)
			compareRegs(t, w8, serial, tc.out, tc.n, tc.serialTol)
		})
	}
}

// TestAliasedSweepsStaySafe pins the aliasing demotion: when a reduction's
// or scan's output aliases its source buffer through a different window,
// the parallel strategies must fall back so results stay deterministic and
// race-free (run under -race) and equal to the serial machine.
func TestAliasedSweepsStaySafe(t *testing.T) {
	cases := []struct {
		name string
		src  string
		out  bytecode.RegID
		n    int
	}{
		{
			// Output occupies the first half of the register the 256×2
			// source view reads — the split-outputs strategy would race.
			name: "reduce-aliased-out",
			src: `
.reg a0 float64 512
BH_RANDOM a0 7 0
BH_ADD_REDUCE a0 [0:256:1] a0 [0:512:2][0:2:1] axis=1
BH_SYNC a0 [0:256:1]
`,
			out: 0, n: 512,
		},
		{
			// Shifted in-place scan: out window starts one slot after the
			// source window — the three-pass rescan would race.
			name: "scan-aliased-shifted",
			src: `
.reg a0 float64 40000
BH_RANDOM a0 11 0
BH_ADD_ACCUMULATE a0 [1:40000:1] a0 [0:39999:1] axis=0
BH_SYNC a0
`,
			out: 0, n: 40000,
		},
		{
			// Aligned in-place scan (equal views) stays parallel and must
			// still match the serial machine bit-for-bit across workers.
			name: "scan-aliased-aligned",
			src: `
.reg a0 int64 40000
BH_RANDOM a0 13 0
BH_MOD a0 a0 5
BH_ADD_ACCUMULATE a0 a0 axis=0
BH_SYNC a0
`,
			out: 0, n: 40000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := run(t, Config{Workers: 1, ParallelThreshold: 1 << 30}, tc.src)
			w8 := run(t, Config{Workers: 8, ParallelThreshold: 16}, tc.src)
			compareRegs(t, w8, serial, tc.out, tc.n, 0)
		})
	}
}

// TestFusedVsInterpretedDTypes sweeps the dtype-generic fused engine:
// the same chain (contiguous cluster plus a strided in-place step) must
// be bit-identical with fusion on and off for every supported dtype.
func TestFusedVsInterpretedDTypes(t *testing.T) {
	for _, dt := range []string{"float64", "float32", "int64", "int32", "uint8"} {
		t.Run(dt, func(t *testing.T) {
			src := `
.reg a0 ` + dt + ` 4096
.reg a1 ` + dt + ` 4096
BH_RANDOM a0 31 0
BH_MOD a0 a0 100
BH_MULTIPLY a1 a0 3
BH_ADD a1 a1 7
BH_MAXIMUM a1 a1 a0
BH_MULTIPLY a1 [0:4096:2] a1 [0:4096:2] 2
BH_SUBTRACT a1 a1 a0
BH_SYNC a1
`
			interp := run(t, Config{Fusion: false}, src)
			fused := run(t, Config{Fusion: true}, src)
			fusedPar := run(t, Config{Fusion: true, Workers: 8, ParallelThreshold: 256}, src)
			compareRegs(t, interp, fused, 1, 4096, 0)
			compareRegs(t, fused, fusedPar, 1, 4096, 0)
			if fused.Stats().FusedInstructions == 0 {
				t.Error("no instructions fused")
			}
			dtype, err := tensor.ParseDType(dt)
			if err != nil {
				t.Fatal(err)
			}
			if fused.Stats().FusedByDType.Get(dtype) == 0 {
				t.Errorf("FusedByDType[%s] = 0", dt)
			}
		})
	}
}

// TestFusedBoolCluster pins bool-dtype fusion for logical chains: the
// bool steps fuse (the float→bool comparison stays interpreted) and the
// results match the accessor path bit-for-bit.
func TestFusedBoolCluster(t *testing.T) {
	src := `
.reg a0 float64 4096
.reg a1 bool 4096
.reg a2 bool 4096
BH_RANDOM a0 37 0
BH_GREATER a1 a0 0.25
BH_LOGICAL_NOT a2 a1
BH_LOGICAL_AND a2 a2 a1
BH_LOGICAL_OR a2 a2 true
BH_SYNC a2
`
	interp := run(t, Config{Fusion: false}, src)
	fused := run(t, Config{Fusion: true}, src)
	compareRegs(t, interp, fused, 2, 4096, 0)
	if fused.Stats().FusedByDType.Get(tensor.Bool) == 0 {
		t.Error("bool steps did not fuse")
	}
}

// epilogueCases cover the reduction-epilogue paths: linear blockwise
// folds (full, last-axis/split-outputs, chunked), the per-element fold
// over strided and broadcast producers, float32/int32/bool dtypes, MAX
// folds, and a live (materialized) producer. serialTol follows the
// reduce.go contract: 0 except chunked float folds vs the forced-serial
// machine.
var epilogueCases = []struct {
	name      string
	src       string
	out       bytecode.RegID
	n         int
	serialTol float64
	wantFR    int
}{
	{
		// The acceptance shape: sum(x*y) as one sweep, chunk-axis fold.
		name: "sum-xy-float64",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
.reg a2 float64 40000
.reg a3 float64 1
BH_RANDOM a0 11 0
BH_RANDOM a1 13 0
BH_MULTIPLY a2 a0 a1
BH_ADD_REDUCE a3 [0:1:1] a2 axis=0
BH_FREE a2
BH_SYNC a3
`,
		out: 3, n: 1, serialTol: 1e-9, wantFR: 1,
	},
	{
		name: "sum-xy-float32",
		src: `
.reg a0 float32 40000
.reg a1 float32 40000
.reg a2 float32 40000
.reg a3 float32 1
BH_RANDOM a0 11 0
BH_RANDOM a1 13 0
BH_MULTIPLY a2 a0 a1
BH_ADD_REDUCE a3 [0:1:1] a2 axis=0
BH_FREE a2
BH_SYNC a3
`,
		out: 3, n: 1, serialTol: 1e-5, wantFR: 1,
	},
	{
		// Deep float32 chain: every producer stays virtual.
		name: "chain-float32-chunked",
		src: `
.reg a0 float32 40000
.reg a1 float32 40000
.reg a2 float32 40000
.reg a3 float32 1
BH_RANDOM a0 17 0
BH_MULTIPLY a1 a0 3
BH_ADD a1 a1 0.5
BH_MULTIPLY a2 a1 a0
BH_ADD_REDUCE a3 [0:1:1] a2 axis=0
BH_FREE a1
BH_FREE a2
BH_SYNC a3
`,
		out: 3, n: 1, serialTol: 1e-5, wantFR: 1,
	},
	{
		// Exact int32 fold: bit-equal everywhere including vs serial.
		name: "sum-hash-int32",
		src: `
.reg a0 int32 40000
.reg a1 int32 40000
.reg a2 int32 1
BH_RANDOM a0 19 0
BH_MOD a0 a0 977
BH_MULTIPLY a1 a0 31
BH_ADD a1 a1 7
BH_MULTIPLY a1 a1 a0
BH_ADD_REDUCE a2 [0:1:1] a1 axis=0
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 1, serialTol: 0, wantFR: 1,
	},
	{
		// Last-axis reduce over 256 rows: split-outputs blockwise fold.
		name: "rows-split-float64",
		src: `
.reg a0 float64 8448
.reg a1 float64 8448
.reg a2 float64 256
BH_RANDOM a0 7 0
BH_MULTIPLY a1 [0:8448:33][0:33:1] a0 [0:8448:33][0:33:1] a0 [0:8448:33][0:33:1]
BH_ADD_REDUCE a2 [0:256:1] a1 [0:8448:33][0:33:1] axis=1
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 256, serialTol: 0, wantFR: 1,
	},
	{
		// MAX fold is exact in float: bit-equal vs serial even chunked.
		name: "max-chain-float64",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
.reg a2 float64 1
BH_RANDOM a0 23 0
BH_SUBTRACT a1 a0 0.5
BH_ABSOLUTE a1 a1
BH_MAXIMUM_REDUCE a2 [0:1:1] a1 axis=0
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 1, serialTol: 0, wantFR: 1,
	},
	{
		// Strided producer inputs: the per-element epilogue path.
		name: "sum-strided-float64",
		src: `
.reg a0 float64 80000
.reg a1 float64 40000
.reg a2 float64 1
BH_RANDOM a0 29 0
BH_MULTIPLY a1 a0 [0:80000:2] a0 [1:80001:2]
BH_ADD_REDUCE a2 [0:1:1] a1 axis=0
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 1, serialTol: 1e-9, wantFR: 1,
	},
	{
		// Broadcast input (stride-0 leading dim) reduced along the data
		// axis: per-element epilogue through the split-outputs strategy.
		name: "sum-broadcast-float64",
		src: `
.reg a0 float64 200
.reg a1 float64 40000
.reg a2 float64 200
BH_RANDOM a0 41 0
BH_MULTIPLY a1 [0:40000:200][0:200:1] a0 [0:200:0][0:200:1] 2.0
BH_ADD_REDUCE a2 [0:200:1] a1 [0:40000:200][0:200:1] axis=1
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 200, serialTol: 0, wantFR: 1,
	},
	{
		// Bool epilogue: a logical producer folded into OR_REDUCE.
		name: "any-bool",
		src: `
.reg a0 float64 5000
.reg a1 bool 5000
.reg a2 bool 5000
.reg a3 bool 1
BH_RANDOM a0 43 0
BH_GREATER a1 a0 0.9999
BH_LOGICAL_NOT a2 a1
BH_LOGICAL_AND_REDUCE a3 [0:1:1] a2 axis=0
BH_FREE a2
BH_SYNC a3
`,
		out: 3, n: 1, serialTol: 0, wantFR: 1,
	},
	{
		// Live producer: a1 is SYNCed after the reduce, so it must
		// materialize while the fold still fuses.
		name: "sum-live-producer",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
.reg a2 float64 1
BH_RANDOM a0 47 0
BH_MULTIPLY a1 a0 a0
BH_ADD_REDUCE a2 [0:1:1] a1 axis=0
BH_SYNC a1
BH_SYNC a2
`,
		out: 2, n: 1, serialTol: 1e-9, wantFR: 1,
	},
	{
		// Leading-axis reduce: the any-axis epilogue path (the linear
		// blockwise fold only serves the last axis). Per-line folds are
		// exact, so serial comparison is bitwise too.
		name: "sum-axis0-float64",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
.reg a2 float64 200
BH_RANDOM a0 31 0
BH_MULTIPLY a1 [0:40000:200][0:200:1] a0 [0:40000:200][0:200:1] 1.5
BH_ADD_REDUCE a2 [0:200:1] a1 [0:40000:200][0:200:1] axis=0
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 200, serialTol: 0, wantFR: 1,
	},
	{
		// Interior axis of a 3-D producer: lines are the (outer, inner)
		// pairs around axis 1.
		name: "sum-midaxis-float64",
		src: `
.reg a0 float64 27000
.reg a1 float64 27000
.reg a2 float64 900
BH_RANDOM a0 53 0
BH_MULTIPLY a1 [0:27000:900][0:900:30][0:30:1] a0 [0:27000:900][0:900:30][0:30:1] a0 [0:27000:900][0:900:30][0:30:1]
BH_ADD_REDUCE a2 [0:900:30][0:30:1] a1 [0:27000:900][0:900:30][0:30:1] axis=1
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 900, serialTol: 0, wantFR: 1,
	},
	{
		// Argmin epilogue over rows: the (value, index) fold through the
		// split-outputs strategy, bit-exact everywhere.
		name: "argmin-rows-float64",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
.reg a2 int64 200
BH_RANDOM a0 37 0
BH_SUBTRACT a1 [0:40000:200][0:200:1] a0 [0:40000:200][0:200:1] 0.5
BH_ABSOLUTE a1 [0:40000:200][0:200:1] a1 [0:40000:200][0:200:1]
BH_ARGMIN_REDUCE a2 [0:200:1] a1 [0:40000:200][0:200:1] axis=1
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 200, serialTol: 0, wantFR: 1,
	},
	{
		// Argmax epilogue over one long axis whose producer makes NaNs
		// (sqrt of negatives): the chunked (value, index) fold must
		// reproduce the serial first-NaN-wins winner exactly.
		name: "argmax-nan-chunked-float64",
		src: `
.reg a0 float64 40000
.reg a1 float64 40000
.reg a2 int64 1
BH_RANDOM a0 41 0
BH_SUBTRACT a1 a0 0.5
BH_SQRT a1 a1
BH_ARGMAX_REDUCE a2 [0:1:1] a1 axis=0
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 1, serialTol: 0, wantFR: 1,
	},
	{
		// Integer argmin epilogue: comparisons run in the int64 class.
		name: "argmin-int32",
		src: `
.reg a0 int32 40000
.reg a1 int32 40000
.reg a2 int64 1
BH_RANDOM a0 43 0
BH_MOD a1 a0 997
BH_ARGMIN_REDUCE a2 [0:1:1] a1 axis=0
BH_FREE a1
BH_SYNC a2
`,
		out: 2, n: 1, serialTol: 0, wantFR: 1,
	},
}

// TestReductionEpilogueDifferential pins the folded sweep against the
// two-sweep interpreter and across worker counts: at one threshold both
// engines pick the same strategy with the same chunk boundaries, so every
// comparison except forced-serial-vs-chunked-float demands bit-equality.
func TestReductionEpilogueDifferential(t *testing.T) {
	const threshold = 512
	for _, tc := range epilogueCases {
		t.Run(tc.name, func(t *testing.T) {
			interp1 := run(t, Config{Fusion: false, Workers: 1, ParallelThreshold: threshold}, tc.src)
			interp8 := run(t, Config{Fusion: false, Workers: 8, ParallelThreshold: threshold}, tc.src)
			fused1 := run(t, Config{Fusion: true, Workers: 1, ParallelThreshold: threshold}, tc.src)
			fused8 := run(t, Config{Fusion: true, Workers: 8, ParallelThreshold: threshold}, tc.src)
			serial := run(t, Config{Fusion: false, Workers: 1, ParallelThreshold: 1 << 30}, tc.src)
			compareRegs(t, fused1, fused8, tc.out, tc.n, 0)
			compareRegs(t, fused8, interp8, tc.out, tc.n, 0)
			compareRegs(t, interp1, interp8, tc.out, tc.n, 0)
			compareRegs(t, fused8, serial, tc.out, tc.n, tc.serialTol)
			if fr := fused8.Stats().FusedReductions; fr != tc.wantFR {
				t.Errorf("FusedReductions = %d, want %d", fr, tc.wantFR)
			}
		})
	}
}

// TestEpilogueLiveProducerValues: a materialized producer register holds
// the same values the interpreter writes.
func TestEpilogueLiveProducerValues(t *testing.T) {
	var src string
	for _, tc := range epilogueCases {
		if tc.name == "sum-live-producer" {
			src = tc.src
		}
	}
	interp := run(t, Config{Fusion: false}, src)
	fused := run(t, Config{Fusion: true}, src)
	compareRegs(t, interp, fused, 1, 40000, 0)
}

// TestEpilogueSkipsMaterialization: the acceptance claim — sum(x*y) runs
// as one fused sweep and the dead temporary never allocates a buffer.
func TestEpilogueSkipsMaterialization(t *testing.T) {
	for _, dt := range []string{"float64", "float32"} {
		t.Run(dt, func(t *testing.T) {
			src := `
.reg a0 ` + dt + ` 20000
.reg a1 ` + dt + ` 20000
.reg a2 ` + dt + ` 20000
.reg a3 ` + dt + ` 1
BH_RANDOM a0 11 0
BH_RANDOM a1 13 0
BH_MULTIPLY a2 a0 a1
BH_ADD_REDUCE a3 [0:1:1] a2 axis=0
BH_FREE a2
BH_SYNC a3
`
			m := run(t, Config{Fusion: true}, src)
			st := m.Stats()
			if st.FusedReductions != 1 {
				t.Errorf("FusedReductions = %d, want 1", st.FusedReductions)
			}
			// a0, a1 (inputs) and a3 (result) materialize; a2 must not.
			if st.BuffersAllocated != 3 {
				t.Errorf("BuffersAllocated = %d, want 3 (temporary a2 must stay virtual)", st.BuffersAllocated)
			}
			// MULTIPLY + ADD_REDUCE share one sweep: 2 RANDOM singletons
			// plus the fold.
			if st.Sweeps != 3 {
				t.Errorf("Sweeps = %d, want 3", st.Sweeps)
			}
		})
	}
}

// TestEpilogueAliasedOutputFallsBack: when the reduction output register
// is bound to the same buffer as a producer input, folding would write
// while other lines still read — the VM must fall back to the two-sweep
// path and still match unfused execution.
func TestEpilogueAliasedOutputFallsBack(t *testing.T) {
	build := func() (*bytecode.Program, tensor.Tensor) {
		p := bytecode.NewProgram()
		x := p.NewReg(tensor.Float64, 1000)
		tmp := p.NewReg(tensor.Float64, 1000)
		s := p.NewReg(tensor.Float64, 1001)
		v := tensor.NewView(tensor.MustShape(1000))
		outView, err := tensor.NewStridedView(1000, tensor.MustShape(1), []int{1})
		if err != nil {
			t.Fatal(err)
		}
		p.MarkInput(x)
		p.MarkInput(s)
		p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(tmp, v), bytecode.Reg(x, v), bytecode.Reg(x, v))
		p.EmitReduce(bytecode.OpAddReduce, bytecode.Reg(s, outView), bytecode.Reg(tmp, v), 0)
		p.EmitFree(bytecode.Reg(tmp, v))
		p.EmitSync(bytecode.Reg(s, outView))
		// One backing tensor: x reads [0:1000), the sum lands at 1000.
		shared := tensor.MustNew(tensor.Float64, tensor.MustShape(1001))
		shared.FillRandom(7, 0, 1)
		return p, shared
	}

	runWith := func(fusion bool) float64 {
		p, shared := build()
		m := New(Config{Fusion: fusion})
		defer m.Close()
		m.Bind(0, shared)
		m.Bind(2, shared)
		if err := m.Run(p); err != nil {
			t.Fatal(err)
		}
		if fusion && m.Stats().FusedReductions != 0 {
			t.Error("aliased epilogue did not fall back")
		}
		return shared.Buf.Get(1000)
	}

	plain := runWith(false)
	fused := runWith(true)
	if plain != fused {
		t.Errorf("aliased reduce differs: fused %v, plain %v", fused, plain)
	}
}

// TestFusedErrorNamesFailingInstruction pins the error path: when a later
// step of a cluster fails to compile, the error names that instruction,
// not the cluster's first.
func TestFusedErrorNamesFailingInstruction(t *testing.T) {
	p := bytecode.NewProgram()
	a0 := p.NewReg(tensor.Float64, 64)
	a1 := p.NewReg(tensor.Float64, 64)
	v := tensor.NewView(tensor.MustShape(64))
	p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstFloat(1)))
	p.EmitBinary(bytecode.OpAdd, bytecode.Reg(a0, v), bytecode.Reg(a0, v), bytecode.Reg(a1, v))
	p.MarkInput(a1)
	m := New(Config{Fusion: true, SkipValidation: true})
	defer m.Close()
	// Bind a1 with the wrong storage type so only the second step fails.
	m.Bind(a1, tensor.MustNew(tensor.Float32, tensor.MustShape(64)))
	err := m.Run(p)
	if err == nil {
		t.Fatal("expected execution error")
	}
	if !strings.Contains(err.Error(), "instr 1") || !strings.Contains(err.Error(), "BH_ADD") {
		t.Errorf("error does not name the failing instruction: %v", err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
