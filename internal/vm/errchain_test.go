package vm

import (
	"errors"
	"testing"

	"bohrium/internal/bytecode"
)

// TestCompileErrorChainExposesInvalidCause pins the double-%w chain at
// Compile's validation gate: handing the VM an invalid program must
// yield an error matching both ErrExec (the VM's sentinel — "this batch
// did not execute") and bytecode.ErrInvalid (why). The daemon's error
// classifier and the front end's retry logic each match a different
// link; flattening either wrap to %v silently breaks one of them while
// the printed message stays byte-identical.
func TestCompileErrorChainExposesInvalidCause(t *testing.T) {
	p, err := bytecode.Parse(".reg a0 float64 4\n.reg a1 float64 4\nBH_ADD a0 a1 a1\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	defer m.Close()
	_, cerr := m.Compile(p)
	if cerr == nil {
		t.Fatal("Compile accepted an invalid program")
	}
	if !errors.Is(cerr, ErrExec) {
		t.Errorf("error %v does not match ErrExec", cerr)
	}
	if !errors.Is(cerr, bytecode.ErrInvalid) {
		t.Errorf("error %v does not expose bytecode.ErrInvalid through the exec wrap", cerr)
	}
}
