package vm

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Blockwise linear epilogue: when every operand of the producer cluster
// is contiguous over the shared shape, the folded sweep keeps the
// compiled raw-slice loops of execCluster instead of interpreting steps
// per element. Each worker owns one scratch buffer of fusedBlockSize
// elements per virtual register; producer loops run block by block into
// scratch (or through to real memory for live registers), and the
// reduction folds each block in order the moment it is produced. The
// element order of every line/chunk fold is unchanged, so results stay
// bit-identical to the two-sweep path and independent of both the worker
// count and the block size.

// linSrc is a resolved source of a blockwise step: a constant, a virtual
// scratch slot, or a contiguous window of a real buffer.
type linSrc struct {
	isConst bool
	cf      float64
	ci      int64
	slot    int // >= 0: scratch
	buf     tensor.Buffer
	off     int
}

// linStep is one producer instruction resolved for blockwise execution.
type linStep struct {
	index   int // instruction index, for error reports
	dtype   tensor.DType
	op      bytecode.Opcode
	dstSlot int // >= 0: scratch destination
	dstBuf  tensor.Buffer
	dstOff  int
	srcs    []linSrc
}

// resolveLinSteps binds the plan's steps to buffers and scratch slots,
// returning the compiled steps, the reduction source's location (scratch
// slot or buffer+offset), and every real buffer the sweep touches (for
// the output-alias check).
func (m *Machine) resolveLinSteps(p *bytecode.Program, plan *epiPlan) ([]linStep, int, tensor.Buffer, int, []tensor.Buffer, error) {
	var bufs []tensor.Buffer
	steps := make([]linStep, 0, len(plan.steps))
	for i := range plan.steps {
		sd := &plan.steps[i]
		st := linStep{index: sd.index, dtype: sd.dtype, op: sd.in.Op, dstSlot: -1}
		if sd.matDst {
			buf, err := m.regs.ensure(p, sd.in.Out.Reg)
			if err != nil {
				return nil, 0, nil, 0, nil, instrErr(p, sd.index, err)
			}
			st.dstBuf, st.dstOff = buf, sd.in.Out.View.Offset
			bufs = append(bufs, buf)
		} else {
			st.dstSlot = sd.outSlot
		}
		for j := range sd.srcs {
			d := &sd.srcs[j]
			switch {
			case d.isConst:
				st.srcs = append(st.srcs, linSrc{isConst: true, cf: d.cf, ci: d.ci, slot: -1})
			case d.slot >= 0 && !plan.mat[d.reg]:
				st.srcs = append(st.srcs, linSrc{slot: d.slot})
			default:
				// Memory read: an external register, or a cluster-written
				// register that materializes — its values land in real
				// memory block-by-block before this step's loop runs.
				var buf tensor.Buffer
				var err error
				if _, written := plan.slotOf[d.reg]; written {
					buf, err = m.regs.ensure(p, d.reg)
					if err != nil {
						return nil, 0, nil, 0, nil, instrErr(p, sd.index, err)
					}
				} else if buf = m.regs.get(d.reg); buf == nil {
					return nil, 0, nil, 0, nil, instrErr(p, sd.index,
						fmt.Errorf("input register %s has no buffer", d.reg))
				}
				bufs = append(bufs, buf)
				st.srcs = append(st.srcs, linSrc{slot: -1, buf: buf, off: d.view.Offset})
			}
		}
		steps = append(steps, st)
	}
	pReg := plan.red.In1.Reg
	if !plan.mat[pReg] {
		return steps, plan.pSlot, nil, 0, bufs, nil
	}
	pBuf, err := m.regs.ensure(p, pReg)
	if err != nil {
		return nil, 0, nil, 0, nil, instrErr(p, plan.redIdx, err)
	}
	return steps, -1, pBuf, plan.red.In1.View.Offset, bufs, nil
}

// newLinScratch allocates one worker's scratch set: a fusedBlockSize
// buffer per virtual register. Scratch lives outside the register file,
// so it never touches the BuffersAllocated/pool counters — that is the
// "no materialized temporary" the epilogue promises.
func newLinScratch(plan *epiPlan) []tensor.Buffer {
	scratch := make([]tensor.Buffer, plan.nSlots)
	for s, dt := range plan.slotDT {
		scratch[s] = tensor.MustBuffer(dt, fusedBlockSize)
	}
	return scratch
}

// compileLinBlock compiles one step for the flat element block [gLo, gHi),
// dispatching on the step's storage dtype. The returned loop runs over
// [0, gHi-gLo).
func compileLinBlock(st *linStep, scratch []tensor.Buffer, gLo, gHi int) (func(lo, hi int), error) {
	switch st.dtype {
	case tensor.Float64:
		return compileLinBlockTyped[float64](st, scratch, gLo, gHi)
	case tensor.Float32:
		return compileLinBlockTyped[float32](st, scratch, gLo, gHi)
	case tensor.Int64:
		return compileLinBlockTyped[int64](st, scratch, gLo, gHi)
	case tensor.Int32:
		return compileLinBlockTyped[int32](st, scratch, gLo, gHi)
	case tensor.Bool, tensor.Uint8:
		return compileLinBlockTyped[uint8](st, scratch, gLo, gHi)
	default:
		return nil, fmt.Errorf("unsupported dtype %v", st.dtype)
	}
}

func compileLinBlockTyped[T tensor.Elem](st *linStep, scratch []tensor.Buffer, gLo, gHi int) (func(lo, hi int), error) {
	n := gHi - gLo
	var dst []T
	if st.dstSlot >= 0 {
		raw, ok := tensor.RawSlice[T](scratch[st.dstSlot])
		if !ok {
			return nil, fmt.Errorf("scratch slot %d is not %v", st.dstSlot, st.dtype)
		}
		dst = raw[:n]
	} else {
		raw, ok := tensor.RawSlice[T](st.dstBuf)
		if !ok {
			return nil, fmt.Errorf("fused output is not %v", st.dtype)
		}
		dst = raw[st.dstOff+gLo : st.dstOff+gHi]
	}
	srcs := make([]rawSrc[T], 0, 2)
	for _, s := range st.srcs {
		switch {
		case s.isConst:
			srcs = append(srcs, rawSrc[T]{cf: s.cf, ci: s.ci})
		case s.slot >= 0:
			raw, ok := tensor.RawSlice[T](scratch[s.slot])
			if !ok {
				return nil, fmt.Errorf("scratch slot %d is not %v", s.slot, st.dtype)
			}
			srcs = append(srcs, rawSrc[T]{arr: raw[:n]})
		default:
			raw, ok := tensor.RawSlice[T](s.buf)
			if !ok {
				return nil, fmt.Errorf("fused input is not %v", st.dtype)
			}
			srcs = append(srcs, rawSrc[T]{arr: raw[s.off+gLo : s.off+gHi]})
		}
	}
	loop, ok := compileLoop(st.dtype, st.op, dst, srcs)
	if !ok {
		return nil, fmt.Errorf("no compiled loop for %s", st.op)
	}
	return loop, nil
}

// runLinBlock executes every producer step over the flat block [gLo, gHi).
// Compilation errors were ruled out by the up-front validation pass.
func runLinBlock(steps []linStep, scratch []tensor.Buffer, gLo, gHi int) {
	for i := range steps {
		loop, err := compileLinBlock(&steps[i], scratch, gLo, gHi)
		if err != nil {
			return
		}
		loop(0, gHi-gLo)
	}
}

// foldBlockFloat folds buf[lo:hi) into acc in element order with the
// float64-class kernel, widening each element exactly as Buffer.Get does.
func foldBlockFloat(buf tensor.Buffer, lo, hi int, k func(a, b float64) float64, acc float64) float64 {
	switch b := buf.(type) {
	case *tensor.Data[float64]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, v)
		}
	case *tensor.Data[float32]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, float64(v))
		}
	case *tensor.Data[int64]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, float64(v))
		}
	case *tensor.Data[int32]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, float64(v))
		}
	case *tensor.Data[uint8]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, float64(v))
		}
	}
	return acc
}

// foldBlockInt is foldBlockFloat for the exact int64 class.
func foldBlockInt(buf tensor.Buffer, lo, hi int, k func(a, b int64) int64, acc int64) int64 {
	switch b := buf.(type) {
	case *tensor.Data[int64]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, v)
		}
	case *tensor.Data[int32]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, int64(v))
		}
	case *tensor.Data[uint8]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, int64(v))
		}
	case *tensor.Data[float64]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, int64(v))
		}
	case *tensor.Data[float32]:
		for _, v := range b.Raw()[lo:hi] {
			acc = k(acc, int64(v))
		}
	}
	return acc
}

// tryLinearEpilogue runs the folded sweep over contiguous operands with
// blockwise vectorized producer loops. Returns (false, nil) when the
// reduction output aliases a producer buffer.
func (m *Machine) tryLinearEpilogue(p *bytecode.Program, plan *epiPlan, outBuf tensor.Buffer) (bool, error) {
	steps, pSlot, pBuf, pOff, bufs, err := m.resolveLinSteps(p, plan)
	if err != nil {
		return false, err
	}
	for _, buf := range bufs {
		if buf == outBuf {
			return false, nil
		}
	}
	// Validate every step compiles before any goroutine runs.
	scratch0 := newLinScratch(plan)
	probe := plan.axLen
	if probe > fusedBlockSize {
		probe = fusedBlockSize
	}
	for i := range steps {
		if _, err := compileLinBlock(&steps[i], scratch0, 0, probe); err != nil {
			return false, instrErr(p, steps[i].index, err)
		}
	}

	m.countEpilogueStats(p, plan)
	strategy := m.sweepStrategyFor(plan.red.Out.View, plan.lines, plan.axLen)
	base, _ := plan.red.Op.ReduceBase()
	if plan.intRed {
		k, ok := intBinaryKernel(base)
		if !ok {
			return false, instrErr(p, plan.redIdx, fmt.Errorf("no int kernel for %s", base))
		}
		runLinEpilogue(m, plan, steps, scratch0, pSlot, pBuf, pOff, strategy, outBuf,
			k, tensor.Buffer.GetInt, tensor.Buffer.SetInt, foldBlockInt)
		return true, nil
	}
	k, ok := floatBinaryKernel(base)
	if !ok {
		return false, instrErr(p, plan.redIdx, fmt.Errorf("no kernel for %s", base))
	}
	runLinEpilogue(m, plan, steps, scratch0, pSlot, pBuf, pOff, strategy, outBuf,
		k, tensor.Buffer.Get, tensor.Buffer.Set, foldBlockFloat)
	return true, nil
}

// linOutIndexer maps a line number to its output buffer index.
func linOutIndexer(plan *epiPlan) func(l int) int {
	if !plan.outSeek {
		off := plan.red.Out.View.Offset
		return func(int) int { return off }
	}
	cur := newCursor(plan.red.Out.View)
	dims := plan.lineDims
	return func(l int) int {
		cur.seek(dims, l)
		return cur.idx
	}
}

// runLinEpilogue drives the blockwise fold with the chosen strategy.
// Every fold visits its line (or chunk) elements strictly in order, so
// the result is bit-identical to the two-sweep path under the same
// strategy, and — as in reduce.go — independent of the worker count.
func runLinEpilogue[E int64 | float64](m *Machine, plan *epiPlan, steps []linStep, scratch0 []tensor.Buffer,
	pSlot int, pBuf tensor.Buffer, pOff int, strategy sweepStrategy, out tensor.Buffer,
	k func(a, b E) E, get func(tensor.Buffer, int) E, set func(tensor.Buffer, int, E),
	fold func(tensor.Buffer, int, int, func(a, b E) E, E) E) {

	lines, axLen := plan.lines, plan.axLen

	// foldRange folds the producer values of flat elements
	// [gLo, gLo+n) in order. seeded reports whether acc already holds a
	// value; the first element otherwise seeds the fold, exactly like the
	// first-element-seeded folds of reduce.go.
	foldRange := func(scratch []tensor.Buffer, gLo, n int, acc E, seeded bool) E {
		runLinBlock(steps, scratch, gLo, gLo+n)
		buf, lo := pBuf, pOff+gLo
		if pSlot >= 0 {
			buf, lo = scratch[pSlot], 0
		}
		if !seeded {
			acc = get(buf, lo)
			return fold(buf, lo+1, lo+n, k, acc)
		}
		return fold(buf, lo, lo+n, k, acc)
	}

	// foldSpan folds one contiguous span [start, end) of a line in
	// blockwise sub-ranges, preserving element order.
	foldSpan := func(scratch []tensor.Buffer, lineBase, start, end int) E {
		var acc E
		for b := start; b < end; b += fusedBlockSize {
			bh := b + fusedBlockSize
			if bh > end {
				bh = end
			}
			acc = foldRange(scratch, lineBase+b, bh-b, acc, b > start)
		}
		return acc
	}

	outIdx := linOutIndexer(plan)

	// processLines folds whole lines [lLo, lHi). Short lines share one
	// producer block; long lines split into sub-blocks.
	processLines := func(scratch []tensor.Buffer, oi func(int) int, lLo, lHi int) {
		if axLen >= fusedBlockSize {
			for l := lLo; l < lHi; l++ {
				set(out, oi(l), foldSpan(scratch, l*axLen, 0, axLen))
			}
			return
		}
		perBlock := fusedBlockSize / axLen
		for lb := lLo; lb < lHi; lb += perBlock {
			le := lb + perBlock
			if le > lHi {
				le = lHi
			}
			runLinBlock(steps, scratch, lb*axLen, le*axLen)
			for l := lb; l < le; l++ {
				buf, base := pBuf, pOff+l*axLen
				if pSlot >= 0 {
					buf, base = scratch[pSlot], (l-lb)*axLen
				}
				acc := get(buf, base)
				acc = fold(buf, base+1, base+axLen, k, acc)
				set(out, oi(l), acc)
			}
		}
	}

	switch strategy {
	case sweepSplitOutputs:
		m.par.parallelFor(lines, 2, func(lo, hi int) {
			processLines(newLinScratch(plan), linOutIndexer(plan), lo, hi)
		})
	case sweepChunkAxis:
		size, nc := chunkParams(axLen)
		partials := make([]E, nc)
		for l := 0; l < lines; l++ {
			base := l * axLen
			m.par.parallelFor(nc, 2, func(cLo, cHi int) {
				scratch := newLinScratch(plan)
				for c := cLo; c < cHi; c++ {
					start, end := chunkBounds(c, size, axLen)
					partials[c] = foldSpan(scratch, base, start, end)
				}
			})
			acc := partials[0]
			for c := 1; c < nc; c++ {
				acc = k(acc, partials[c])
			}
			set(out, outIdx(l), acc)
		}
	default:
		processLines(scratch0, outIdx, 0, lines)
	}
}
