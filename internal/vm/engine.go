package vm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// EngineConfig tunes the shared execution substrate. The zero value gives
// a GOMAXPROCS-wide pool, the default plan-cache capacity, and the default
// recycle-pool byte bound.
type EngineConfig struct {
	// Workers is the goroutine pool width. Zero means GOMAXPROCS. Machines
	// cap their own sweep fan-out with their Config.Workers; the engine
	// width only sets how many goroutines serve all of them.
	Workers int
	// PlanCacheSize caps the shared fingerprint-keyed plan cache, in
	// entries across all shards. Zero selects DefaultPlanCacheSize;
	// negative disables the cache for every machine on the engine.
	PlanCacheSize int
	// PoolCapBytes bounds the bytes parked in the shared buffer recycle
	// pool; zero selects the default (256 MiB).
	PoolCapBytes int
	// MemoryHighWatermark is the engine's graceful-degradation budget in
	// bytes; zero means unlimited. When a fresh allocation would push
	// live bytes (buffers held by register files and backend staging)
	// plus parked recycle-pool bytes past it, the engine sheds its
	// shareable caches first — every compiled plan, every parked
	// buffer — and re-checks; only if live bytes alone still exceed the
	// watermark is the allocation denied with ErrMemoryPressure. Recycle
	// hits never trip it: taking a parked buffer moves bytes between
	// accounts without growing the total.
	MemoryHighWatermark int
}

// Engine is the shared execution substrate behind one or more Machines:
// the worker pool, the sharded plan cache, and the buffer recycle pool.
// The paper's middleware is exactly this shape — one configurable VM layer
// that many front-end sessions plug into — so the shareable state lives
// here and the per-session state (register file, counters) stays on the
// Machine. All Engine methods are safe for concurrent use; Machines from
// different goroutines may execute plans, hit the plan cache, and recycle
// buffers simultaneously.
type Engine struct {
	pool  *workerPool // immutable after NewEngine
	plans *planCache  // immutable after NewEngine
	bufs  *bufferPool // immutable after NewEngine

	// watermark is the MemoryHighWatermark byte budget (0: unlimited),
	// immutable after NewEngine; liveBytes tracks buffers currently held
	// by register files and backend staging (recycle-pool bytes are
	// accounted separately on the pool); memSheds counts the times
	// pressure forced the caches out.
	watermark int
	liveBytes atomic.Int64
	memSheds  atomic.Int64

	mu       sync.Mutex
	machines map[*Machine]struct{} // guarded by mu
	retired  Stats                 // guarded by mu: folded-in counters of machines closed so far
}

// NewEngine builds a shared engine. Close it after every Machine created
// on it is done; closing a Machine never tears the engine down.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		pool:      newWorkerPool(cfg.Workers),
		bufs:      newBufferPool(cfg.PoolCapBytes),
		machines:  map[*Machine]struct{}{},
		watermark: cfg.MemoryHighWatermark,
	}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		e.plans = newPlanCache(size)
	}
	return e
}

// NewMachine creates a session-private Machine on the shared engine. The
// machine's Config governs its own sweep fan-out (Workers), thresholds,
// fusion, and validation; PlanCacheSize < 0 opts this machine out of the
// shared plan cache (lookups miss silently, inserts are dropped) while a
// non-negative value defers to the engine's cache configuration.
//
// The shared plan cache keys on program fingerprints only — it does not
// know which Config a plan was compiled under. A plan executes with the
// fusion decisions of its compiling machine, so machines with different
// Fusion settings sharing one cache will serve each other plans whose
// sweep/fusion counters don't match their own setting (values stay
// bit-identical — fused and unfused execution are differentially
// pinned). Callers mixing compile configs on one engine must segregate
// entries themselves via LookupPlan's accept filter, the way the
// bohrium front-end does with its compileSig metadata.
func (e *Engine) NewMachine(cfg Config) *Machine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ParallelThreshold <= 0 {
		cfg.ParallelThreshold = DefaultParallelThreshold
	}
	m := &Machine{cfg: cfg, eng: e, useCache: cfg.PlanCacheSize >= 0}
	m.par = parRunner{pool: e.pool, width: cfg.Workers}
	m.regs.stats = &m.stats
	m.regs.shared = e.bufs
	m.regs.eng = e
	m.regs.label = cfg.FaultLabel
	e.mu.Lock()
	e.machines[m] = struct{}{}
	e.mu.Unlock()
	return m
}

// detach removes a closing machine from the registry, folding its counters
// into the engine's retired total so Engine.Stats keeps counting it.
func (e *Engine) detach(m *Machine) {
	e.mu.Lock()
	if _, ok := e.machines[m]; ok {
		delete(e.machines, m)
		e.retired.Accumulate(m.stats.snapshot())
	}
	e.mu.Unlock()
}

// Stats returns the process-wide aggregate over every machine the engine
// has hosted: live sessions contribute a snapshot, closed sessions were
// folded in at detach time. Like Machine.Stats, it may be read while
// executions are in flight.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.retired
	for m := range e.machines {
		out.Accumulate(m.stats.snapshot())
	}
	return out
}

// reserveBytes books n bytes of fresh allocation against the engine's
// live-byte account and, when a high watermark is configured, enforces
// the graceful-degradation policy: over the watermark, shed the
// shareable caches (compiled plans, parked recycle buffers) and
// re-check; still over on live bytes alone, undo the booking and deny
// with ErrMemoryPressure. The optimistic add keeps the common path one
// atomic; concurrent allocators racing past the watermark at worst shed
// twice, never under-count.
func (e *Engine) reserveBytes(n int) error {
	if n > 0 {
		e.liveBytes.Add(int64(n))
	}
	if e.watermark <= 0 || n <= 0 {
		return nil
	}
	live := e.liveBytes.Load()
	if live+int64(e.bufs.bytes()) <= int64(e.watermark) {
		return nil
	}
	e.memSheds.Add(1)
	if e.plans != nil {
		e.plans.purge()
	}
	e.bufs.drain()
	if e.liveBytes.Load() <= int64(e.watermark) {
		return nil
	}
	e.liveBytes.Add(int64(-n))
	return fmt.Errorf("%w: a %d-byte allocation would hold %d live bytes over the %d-byte high watermark (plan cache and recycle pool already shed)",
		ErrMemoryPressure, n, live, e.watermark)
}

// adoptBytes moves n bytes from the recycle pool's parked account to
// the live account (a pool take): the total against the watermark is
// unchanged, so no check runs and a recycle hit can never be denied.
func (e *Engine) adoptBytes(n int) { e.liveBytes.Add(int64(n)) }

// releaseBytes credits n bytes back to the live account — a freed
// buffer heading for the recycle pool (whose own account the pool
// keeps) or the GC.
func (e *Engine) releaseBytes(n int) { e.liveBytes.Add(int64(-n)) }

// LiveBytes reports the bytes currently held by register files and
// backend staging buffers across every machine on the engine
// (recycle-pool bytes are parked, not live). A racy snapshot, exact
// when the engine is quiesced.
func (e *Engine) LiveBytes() int { return int(e.liveBytes.Load()) }

// MemorySheds reports how many times memory pressure forced the plan
// cache and recycle pool out (whether or not the triggering allocation
// then succeeded).
func (e *Engine) MemorySheds() int { return int(e.memSheds.Load()) }

// PlanCacheLen returns the number of plans cached across all shards.
func (e *Engine) PlanCacheLen() int {
	if e.plans == nil {
		return 0
	}
	return e.plans.len()
}

// Close shuts the shared worker pool down. It waits for in-flight sweep
// submissions (a session mid-parallelFor finishes its chunks first) and is
// idempotent. Machines must not Run/Execute after their engine closes —
// sweeps would degrade to inline execution — so close Contexts/Machines
// first; the order is only a convention, not a safety requirement.
func (e *Engine) Close() {
	e.pool.close() // idempotent: guards its own close-once
}
