package vm

import (
	"runtime"
	"sync"
)

// EngineConfig tunes the shared execution substrate. The zero value gives
// a GOMAXPROCS-wide pool, the default plan-cache capacity, and the default
// recycle-pool byte bound.
type EngineConfig struct {
	// Workers is the goroutine pool width. Zero means GOMAXPROCS. Machines
	// cap their own sweep fan-out with their Config.Workers; the engine
	// width only sets how many goroutines serve all of them.
	Workers int
	// PlanCacheSize caps the shared fingerprint-keyed plan cache, in
	// entries across all shards. Zero selects DefaultPlanCacheSize;
	// negative disables the cache for every machine on the engine.
	PlanCacheSize int
	// PoolCapBytes bounds the bytes parked in the shared buffer recycle
	// pool; zero selects the default (256 MiB).
	PoolCapBytes int
}

// Engine is the shared execution substrate behind one or more Machines:
// the worker pool, the sharded plan cache, and the buffer recycle pool.
// The paper's middleware is exactly this shape — one configurable VM layer
// that many front-end sessions plug into — so the shareable state lives
// here and the per-session state (register file, counters) stays on the
// Machine. All Engine methods are safe for concurrent use; Machines from
// different goroutines may execute plans, hit the plan cache, and recycle
// buffers simultaneously.
type Engine struct {
	pool  *workerPool
	plans *planCache
	bufs  *bufferPool

	mu       sync.Mutex
	machines map[*Machine]struct{}
	retired  Stats // folded-in counters of machines closed so far
}

// NewEngine builds a shared engine. Close it after every Machine created
// on it is done; closing a Machine never tears the engine down.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		pool:     newWorkerPool(cfg.Workers),
		bufs:     newBufferPool(cfg.PoolCapBytes),
		machines: map[*Machine]struct{}{},
	}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		e.plans = newPlanCache(size)
	}
	return e
}

// NewMachine creates a session-private Machine on the shared engine. The
// machine's Config governs its own sweep fan-out (Workers), thresholds,
// fusion, and validation; PlanCacheSize < 0 opts this machine out of the
// shared plan cache (lookups miss silently, inserts are dropped) while a
// non-negative value defers to the engine's cache configuration.
//
// The shared plan cache keys on program fingerprints only — it does not
// know which Config a plan was compiled under. A plan executes with the
// fusion decisions of its compiling machine, so machines with different
// Fusion settings sharing one cache will serve each other plans whose
// sweep/fusion counters don't match their own setting (values stay
// bit-identical — fused and unfused execution are differentially
// pinned). Callers mixing compile configs on one engine must segregate
// entries themselves via LookupPlan's accept filter, the way the
// bohrium front-end does with its compileSig metadata.
func (e *Engine) NewMachine(cfg Config) *Machine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ParallelThreshold <= 0 {
		cfg.ParallelThreshold = DefaultParallelThreshold
	}
	m := &Machine{cfg: cfg, eng: e, useCache: cfg.PlanCacheSize >= 0}
	m.par = parRunner{pool: e.pool, width: cfg.Workers}
	m.regs.stats = &m.stats
	m.regs.shared = e.bufs
	e.mu.Lock()
	e.machines[m] = struct{}{}
	e.mu.Unlock()
	return m
}

// detach removes a closing machine from the registry, folding its counters
// into the engine's retired total so Engine.Stats keeps counting it.
func (e *Engine) detach(m *Machine) {
	e.mu.Lock()
	if _, ok := e.machines[m]; ok {
		delete(e.machines, m)
		e.retired.Accumulate(m.stats.snapshot())
	}
	e.mu.Unlock()
}

// Stats returns the process-wide aggregate over every machine the engine
// has hosted: live sessions contribute a snapshot, closed sessions were
// folded in at detach time. Like Machine.Stats, it may be read while
// executions are in flight.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.retired
	for m := range e.machines {
		out.Accumulate(m.stats.snapshot())
	}
	return out
}

// PlanCacheLen returns the number of plans cached across all shards.
func (e *Engine) PlanCacheLen() int {
	if e.plans == nil {
		return 0
	}
	return e.plans.len()
}

// Close shuts the shared worker pool down. It waits for in-flight sweep
// submissions (a session mid-parallelFor finishes its chunks first) and is
// idempotent. Machines must not Run/Execute after their engine closes —
// sweeps would degrade to inline execution — so close Contexts/Machines
// first; the order is only a convention, not a safety requirement.
func (e *Engine) Close() {
	e.pool.close() // idempotent: guards its own close-once
}
