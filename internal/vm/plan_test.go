package vm

import (
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// planTestProg builds "a1 = (a0 + c) * 2; sync a1" with a0 bound by the
// caller — a fusible two-step cluster.
func planTestProg(c float64) *bytecode.Program {
	p := bytecode.NewProgram()
	a0 := p.NewReg(tensor.Float64, 8)
	a1 := p.NewReg(tensor.Float64, 8)
	v := tensor.NewView(tensor.MustShape(8))
	p.MarkInput(a0)
	p.EmitBinary(bytecode.OpAdd, bytecode.Reg(a1, v), bytecode.Reg(a0, v),
		bytecode.Const(bytecode.ConstFloat(c)))
	p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(a1, v), bytecode.Reg(a1, v),
		bytecode.Const(bytecode.ConstFloat(2)))
	p.EmitSync(bytecode.Reg(a1, v))
	p.MarkOutput(a1)
	return p
}

func bindVec(t *testing.T, m *Machine, r bytecode.RegID, vals []float64) {
	t.Helper()
	tt, err := tensor.FromFloat64s(vals, tensor.MustShape(len(vals)))
	if err != nil {
		t.Fatal(err)
	}
	m.Bind(r, tt)
}

func regVals(t *testing.T, m *Machine, r bytecode.RegID, n int) []float64 {
	t.Helper()
	tt, ok := m.Tensor(r, tensor.NewView(tensor.MustShape(n)))
	if !ok {
		t.Fatalf("register %s has no buffer", r)
	}
	return tt.Float64Slice()
}

// TestPlanExecuteRebinds compiles once and executes twice with different
// input bindings: the second run must see the new buffer without any
// recompilation.
func TestPlanExecuteRebinds(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	prog := planTestProg(1)
	pl, err := m.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	bindVec(t, m, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err := pl.Execute(m); err != nil {
		t.Fatal(err)
	}
	got := regVals(t, m, 1, 8)
	if got[0] != 4 || got[7] != 18 {
		t.Errorf("first run: %v", got)
	}
	bindVec(t, m, 0, []float64{10, 10, 10, 10, 10, 10, 10, 10})
	if err := pl.Execute(m); err != nil {
		t.Fatal(err)
	}
	got = regVals(t, m, 1, 8)
	for i, v := range got {
		if v != 22 {
			t.Fatalf("rebound run element %d = %v, want 22", i, v)
		}
	}
}

// TestPlanPatchConstants verifies a parametric plan replays with new
// immediates, including through a fused reduction epilogue (whose
// analysis snapshots constant values and must be recomputed).
func TestPlanPatchConstants(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	p := bytecode.NewProgram()
	a0 := p.NewReg(tensor.Float64, 8)
	a1 := p.NewReg(tensor.Float64, 8)
	out := p.NewReg(tensor.Float64, 1)
	v := tensor.NewView(tensor.MustShape(8))
	v1 := tensor.NewView(tensor.MustShape(1))
	p.MarkInput(a0)
	p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(a1, v), bytecode.Reg(a0, v),
		bytecode.Const(bytecode.ConstFloat(3)))
	p.EmitReduce(bytecode.OpAddReduce, bytecode.Reg(out, v1), bytecode.Reg(a1, v), 0)
	p.EmitFree(bytecode.Reg(a1, v))
	p.EmitSync(bytecode.Reg(out, v1))
	p.MarkOutput(out)

	pl, err := m.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	ones := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	bindVec(t, m, 0, ones)
	if err := pl.Execute(m); err != nil {
		t.Fatal(err)
	}
	if got := regVals(t, m, 2, 1)[0]; got != 24 {
		t.Fatalf("sum(1*3) over 8 = %v, want 24", got)
	}
	if err := pl.PatchConstants([]bytecode.Constant{bytecode.ConstFloat(5)}); err != nil {
		t.Fatal(err)
	}
	bindVec(t, m, 0, ones)
	if err := pl.Execute(m); err != nil {
		t.Fatal(err)
	}
	if got := regVals(t, m, 2, 1)[0]; got != 40 {
		t.Fatalf("patched sum(1*5) over 8 = %v, want 40", got)
	}
}

func fpOf(c float64) bytecode.Fingerprint { return planTestProg(c).Fingerprint() }

// TestPlanCacheBakedMatching: non-parametric entries hit only on their
// exact constant vector.
func TestPlanCacheBakedMatching(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	prog := planTestProg(1)
	pl, err := m.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	fp := prog.Fingerprint()
	m.InsertPlan(fp, prog.Constants(), false, pl, "meta")
	if _, meta, ok := m.LookupPlan(fp, prog.Constants(), nil); !ok || meta != "meta" {
		t.Errorf("exact-constant lookup missed (ok=%v meta=%v)", ok, meta)
	}
	other := planTestProg(9).Constants()
	if _, _, ok := m.LookupPlan(fp, other, nil); ok {
		t.Error("baked entry hit with different constants")
	}
	st := m.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.PlanHits, st.PlanMisses)
	}
}

// TestPlanCacheParametricMatching: parametric entries hit on any constant
// vector and patch the plan's program.
func TestPlanCacheParametricMatching(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	prog := planTestProg(1)
	pl, err := m.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	fp := prog.Fingerprint()
	m.InsertPlan(fp, prog.Constants(), true, pl, nil)
	want := planTestProg(7).Constants()
	got, _, ok := m.LookupPlan(fp, want, nil)
	if !ok {
		t.Fatal("parametric lookup missed")
	}
	if cs := got.(*Plan).Program().Constants(); !constantsEqual(cs, want) {
		t.Errorf("plan not patched: %v", cs)
	}
}

// TestPlanCacheAcceptFilter: the caller's metadata vet can reject a
// candidate, turning the lookup into a miss.
func TestPlanCacheAcceptFilter(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	prog := planTestProg(1)
	pl, _ := m.Compile(prog)
	fp := prog.Fingerprint()
	m.InsertPlan(fp, prog.Constants(), false, pl, "stale")
	if _, _, ok := m.LookupPlan(fp, prog.Constants(), func(meta any) bool { return meta != "stale" }); ok {
		t.Error("rejected entry still hit")
	}
	if st := m.Stats(); st.PlanMisses != 1 {
		t.Errorf("misses=%d, want 1", st.PlanMisses)
	}
}

// TestPlanCacheLRUEviction: capacity 2, least-recently-used goes first,
// and a hit refreshes recency.
func TestPlanCacheLRUEviction(t *testing.T) {
	m := New(Config{Fusion: true, PlanCacheSize: 2})
	defer m.Close()
	// Distinct structures via distinct vector lengths.
	sized := func(n int) *bytecode.Program {
		p := bytecode.NewProgram()
		a0 := p.NewReg(tensor.Float64, n)
		v := tensor.NewView(tensor.MustShape(n))
		p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstFloat(1)))
		p.EmitSync(bytecode.Reg(a0, v))
		p.MarkOutput(a0)
		return p
	}
	insert := func(n int) (bytecode.Fingerprint, []bytecode.Constant) {
		prog := sized(n)
		pl, err := m.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		fp := prog.Fingerprint()
		m.InsertPlan(fp, prog.Constants(), true, pl, nil)
		return fp, prog.Constants()
	}
	fpA, csA := insert(4)
	fpB, csB := insert(5)
	if _, _, ok := m.LookupPlan(fpA, csA, nil); !ok { // A is now most recent
		t.Fatal("A missing before eviction")
	}
	fpC, csC := insert(6) // evicts B, the least recently used
	if _, _, ok := m.LookupPlan(fpB, csB, nil); ok {
		t.Error("LRU entry B survived eviction")
	}
	if _, _, ok := m.LookupPlan(fpA, csA, nil); !ok {
		t.Error("recently used entry A was evicted")
	}
	if _, _, ok := m.LookupPlan(fpC, csC, nil); !ok {
		t.Error("newest entry C was evicted")
	}
	st := m.Stats()
	if st.PlanEvictions != 1 {
		t.Errorf("evictions=%d, want 1", st.PlanEvictions)
	}
	if m.PlanCacheLen() != 2 {
		t.Errorf("cache len=%d, want 2", m.PlanCacheLen())
	}
}

// TestPlanCacheDisabled: negative capacity disables the cache — lookups
// miss without counting, inserts are dropped.
func TestPlanCacheDisabled(t *testing.T) {
	m := New(Config{Fusion: true, PlanCacheSize: -1})
	defer m.Close()
	if m.PlanCacheEnabled() {
		t.Fatal("cache enabled despite negative capacity")
	}
	prog := planTestProg(1)
	pl, _ := m.Compile(prog)
	fp := prog.Fingerprint()
	m.InsertPlan(fp, nil, true, pl, nil)
	if _, _, ok := m.LookupPlan(fp, nil, nil); ok {
		t.Error("disabled cache produced a hit")
	}
	st := m.Stats()
	if st.PlanHits != 0 || st.PlanMisses != 0 || st.PlanEvictions != 0 {
		t.Errorf("disabled cache counted: %+v", st)
	}
}
