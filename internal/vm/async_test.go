package vm

import (
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// TestExecutorRunsSubmittedPlans: plans submitted to the background
// executor execute in order against the machine's register file, Wait
// drains, and the Pipelined counter tracks them.
func TestExecutorRunsSubmittedPlans(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	e := m.NewExecutor(0)
	defer e.Close()

	bindVec(t, m, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	pl, err := m.Compile(planTestProg(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Submit(pl)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	got := regVals(t, m, 1, 8)
	if got[0] != 4 || got[7] != 18 { // (x+1)*2, last submission wins (idempotent here)
		t.Errorf("executed values = %v", got)
	}
	if st := m.Stats(); st.Pipelined != 3 {
		t.Errorf("Pipelined = %d, want 3", st.Pipelined)
	}
}

// TestExecutorQueuedPlansKeepOwnConstants: two structurally identical
// batches with different constant vectors queued back to back must each
// execute with their own values. A parametric cache hit under new
// constants is a patched CLONE (the cached plan is immutable), so the
// plan already in the executor queue is never retouched.
func TestExecutorQueuedPlansKeepOwnConstants(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	e := m.NewExecutor(0)
	defer e.Close()

	prog := planTestProg(1)
	fp := prog.Fingerprint()
	pl, err := m.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.InsertPlan(fp, prog.Constants(), true, pl, nil)
	bindVec(t, m, 0, []float64{1, 1, 1, 1, 1, 1, 1, 1})

	// Two structurally identical batches with different immediates.
	var plans []*Plan
	for _, c := range []float64{1, 10} {
		b := planTestProg(c)
		cached, _, ok := m.LookupPlan(b.Fingerprint(), b.Constants(), nil)
		if !ok {
			t.Fatalf("c=%v: lookup missed", c)
		}
		plan := cached.(*Plan)
		if cs := plan.Program().Constants(); !constantsEqual(cs, b.Constants()) {
			t.Fatalf("c=%v: returned plan carries %v", c, cs)
		}
		plans = append(plans, plan)
		e.Submit(plan)
	}
	if plans[0] == plans[1] {
		t.Fatal("different constant vectors returned the same plan object")
	}
	// The first queued plan must still hold ITS vector after the second
	// lookup patched the cache entry — immutability of queued plans.
	if cs := plans[0].Program().Constants(); cs[0].Float() != 1 {
		t.Errorf("queued plan was retouched: %v", cs)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	// The last submission used c=10: (1+10)*2 = 22.
	if got := regVals(t, m, 1, 8); got[0] != 22 {
		t.Errorf("patched execution = %v, want 22", got[0])
	}
}

// failingProg reduces an empty axis with MAX — compiles fine, fails at
// execution (no identity for empty MAX).
func failingProg() *bytecode.Program {
	p := bytecode.NewProgram()
	src := p.NewReg(tensor.Float64, 0)
	dst := p.NewReg(tensor.Float64, 1)
	vEmpty := tensor.NewView(tensor.MustShape(0))
	v1 := tensor.NewView(tensor.MustShape(1))
	p.EmitIdentity(bytecode.Reg(src, vEmpty), bytecode.Const(bytecode.ConstFloat(0)))
	p.EmitReduce(bytecode.OpMaximumReduce, bytecode.Reg(dst, v1), bytecode.Reg(src, vEmpty), 0)
	p.EmitSync(bytecode.Reg(dst, v1))
	p.MarkOutput(dst)
	return p
}

// TestExecutorErrorPoisonsAndSkips: the first failing plan poisons the
// pipeline — queued plans are skipped, Wait returns the error, and the
// error stays sticky through further Waits and Close.
func TestExecutorErrorPoisonsAndSkips(t *testing.T) {
	m := New(Config{Fusion: true})
	defer m.Close()
	e := m.NewExecutor(4)

	bad, err := m.Compile(failingProg())
	if err != nil {
		t.Fatal(err)
	}
	bindVec(t, m, 0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	good, err := m.Compile(planTestProg(1))
	if err != nil {
		t.Fatal(err)
	}

	e.Submit(bad)
	e.Submit(good) // must be skipped
	werr := e.Wait()
	if werr == nil {
		t.Fatal("Wait returned nil for a failing plan")
	}
	if !strings.Contains(werr.Error(), "MAX_REDUCE") && !strings.Contains(werr.Error(), "reduce") {
		t.Logf("error text: %v", werr)
	}
	if st := m.Stats(); st.Pipelined != 1 {
		t.Errorf("Pipelined = %d, want 1 (queued plan after the failure must be skipped)", st.Pipelined)
	}
	if again := e.Wait(); again == nil || again.Error() != werr.Error() {
		t.Errorf("sticky error lost: %v", again)
	}
	if cerr := e.Close(); cerr == nil || cerr.Error() != werr.Error() {
		t.Errorf("Close error = %v, want the pipeline error", cerr)
	}
}

// TestExecutorCloseIdempotent: Close twice is safe and keeps returning
// the same (nil) error.
func TestExecutorCloseIdempotent(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	e := m.NewExecutor(0)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLookupBakedExactVectorOnly: baked (non-parametric) entries match
// only their exact constant vector, and an exact-vector hit returns the
// stored plan itself — no clone, no patch.
func TestLookupBakedExactVectorOnly(t *testing.T) {
	m := New(Config{})
	defer m.Close()
	prog := planTestProg(3)
	pl, err := m.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m.InsertPlan(prog.Fingerprint(), prog.Constants(), false, pl, nil)

	got, _, ok := m.LookupPlan(prog.Fingerprint(), prog.Constants(), nil)
	if !ok || got != pl {
		t.Errorf("exact-vector baked lookup: ok=%v samePlan=%v, want hit on the stored plan", ok, got == pl)
	}
	other := planTestProg(4)
	if _, _, ok := m.LookupPlan(other.Fingerprint(), other.Constants(), nil); ok {
		t.Error("baked entry matched a different constant vector")
	}
}
