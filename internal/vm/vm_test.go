package vm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// run assembles src, executes it on a fresh machine with cfg, and returns
// the machine for register inspection.
func run(t *testing.T, cfg Config, src string) *Machine {
	t.Helper()
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	return m
}

// regSlice reads register r as a flat float64 slice through a contiguous
// 1-d view of n elements.
func regSlice(t *testing.T, m *Machine, r bytecode.RegID, n int) []float64 {
	t.Helper()
	tt, ok := m.Tensor(r, tensor.NewView(tensor.MustShape(n)))
	if !ok {
		t.Fatalf("register %s has no buffer", r)
	}
	return tt.Float64Slice()
}

func TestListing2Execution(t *testing.T) {
	// Paper Listing 1/2: zeros(10); a += 1 three times; every element
	// must be 3.
	m := run(t, Config{}, `
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`)
	for i, v := range regSlice(t, m, 0, 10) {
		if v != 3 {
			t.Fatalf("a0[%d] = %v, want 3", i, v)
		}
	}
}

func TestListing3EqualsListing2(t *testing.T) {
	// The paper's optimized Listing 3 must produce identical results.
	m := run(t, Config{}, `
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 3
BH_SYNC a0
`)
	for i, v := range regSlice(t, m, 0, 10) {
		if v != 3 {
			t.Fatalf("a0[%d] = %v, want 3", i, v)
		}
	}
}

func TestListing5PowerChain(t *testing.T) {
	// Paper Listing 5: x^10 via five multiplies; with x = 2 the result
	// must be 1024 everywhere.
	m := run(t, Config{}, `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2
BH_MULTIPLY a1 a0 a0
BH_MULTIPLY a1 a1 a1
BH_MULTIPLY a1 a1 a1
BH_MULTIPLY a1 a1 a0
BH_MULTIPLY a1 a1 a0
BH_SYNC a1
`)
	for i, v := range regSlice(t, m, 1, 8) {
		if v != 1024 {
			t.Fatalf("a1[%d] = %v, want 1024", i, v)
		}
	}
}

func TestPowerOpMatchesChain(t *testing.T) {
	// BH_POWER and the expanded multiply chain agree (eq. (1)).
	m := run(t, Config{}, `
.reg a0 float64 16
.reg a1 float64 16
BH_IDENTITY a0 1.5
BH_POWER a1 a0 10
BH_SYNC a1
`)
	want := math.Pow(1.5, 10)
	for i, v := range regSlice(t, m, 1, 16) {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("a1[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestBinaryOpsFloat(t *testing.T) {
	tests := []struct {
		op   string
		want float64
	}{
		{"BH_ADD", 9},
		{"BH_SUBTRACT", 5},
		{"BH_MULTIPLY", 14},
		{"BH_DIVIDE", 3.5},
		{"BH_POWER", 49},
		{"BH_MOD", 1},
		{"BH_MAXIMUM", 7},
		{"BH_MINIMUM", 2},
	}
	for _, tt := range tests {
		t.Run(tt.op, func(t *testing.T) {
			m := run(t, Config{}, `
.reg a0 float64 4
BH_IDENTITY a0 7.0
`+tt.op+` a0 a0 2.0
BH_SYNC a0
`)
			for _, v := range regSlice(t, m, 0, 4) {
				if v != tt.want {
					t.Fatalf("%s(7, 2) = %v, want %v", tt.op, v, tt.want)
				}
			}
		})
	}
}

func TestComparisonsProduceBool(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 4
.reg a1 bool 4
BH_IDENTITY a0 3.0
BH_LESS a1 a0 5.0
BH_SYNC a1
`)
	for _, v := range regSlice(t, m, 1, 4) {
		if v != 1 {
			t.Fatalf("3 < 5 = %v, want 1", v)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	tests := []struct {
		op    string
		input string
		want  float64
	}{
		{"BH_SQRT", "9.0", 3},
		{"BH_NEGATIVE", "4.0", -4},
		{"BH_ABSOLUTE", "-4.0", 4},
		{"BH_EXP", "0.0", 1},
		{"BH_LOG", "1.0", 0},
		{"BH_FLOOR", "2.7", 2},
		{"BH_CEIL", "2.2", 3},
		{"BH_TRUNC", "-2.7", -2},
		{"BH_RINT", "2.5", 2},
		{"BH_SIGN", "-7.0", -1},
		{"BH_SIN", "0.0", 0},
		{"BH_COS", "0.0", 1},
	}
	for _, tt := range tests {
		t.Run(tt.op, func(t *testing.T) {
			m := run(t, Config{}, `
.reg a0 float64 4
.reg a1 float64 4
BH_IDENTITY a0 `+tt.input+`
`+tt.op+` a1 a0
BH_SYNC a1
`)
			for _, v := range regSlice(t, m, 1, 4) {
				if math.Abs(v-tt.want) > 1e-12 {
					t.Fatalf("%s(%s) = %v, want %v", tt.op, tt.input, v, tt.want)
				}
			}
		})
	}
}

func TestIntegerExactness(t *testing.T) {
	// Integer adds keep exact int64 semantics beyond float64 precision:
	// 2^62 + 1 is representable in int64 but not float64.
	m := run(t, Config{}, `
.reg a0 int64 4
BH_IDENTITY a0 4611686018427387904
BH_ADD a0 a0 1
BH_SYNC a0
`)
	tt, _ := m.Tensor(0, tensor.NewView(tensor.MustShape(4)))
	got := tt.Buf.GetInt(0)
	if got != 4611686018427387905 {
		t.Errorf("int64 add = %d, want 4611686018427387905", got)
	}
}

func TestIntegerPower(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 int64 4
.reg a1 int64 4
BH_IDENTITY a0 3
BH_POWER a1 a0 7
BH_SYNC a1
`)
	tt, _ := m.Tensor(1, tensor.NewView(tensor.MustShape(4)))
	if got := tt.Buf.GetInt(0); got != 2187 {
		t.Errorf("3^7 = %d, want 2187", got)
	}
}

func TestIntegerDivisionByZero(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 int64 2
.reg a1 int64 2
BH_IDENTITY a0 5
BH_DIVIDE a1 a0 0
BH_MOD a1 a1 0
BH_SYNC a1
`)
	tt, _ := m.Tensor(1, tensor.NewView(tensor.MustShape(2)))
	if got := tt.Buf.GetInt(0); got != 0 {
		t.Errorf("int 5/0 then %%0 = %d, want 0", got)
	}
}

func TestFloatDivisionByZero(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 2
BH_IDENTITY a0 5.0
BH_DIVIDE a0 a0 0.0
BH_SYNC a0
`)
	if v := regSlice(t, m, 0, 2)[0]; !math.IsInf(v, 1) {
		t.Errorf("float 5/0 = %v, want +Inf", v)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 int64 2
.reg a1 int64 2
BH_IDENTITY a0 12
BH_BITWISE_AND a1 a0 10
BH_LEFT_SHIFT a1 a1 2
BH_RIGHT_SHIFT a1 a1 1
BH_BITWISE_XOR a1 a1 1
BH_SYNC a1
`)
	tt, _ := m.Tensor(1, tensor.NewView(tensor.MustShape(2)))
	// ((12 & 10) << 2) >> 1 ^ 1 = (8 << 2 >> 1) ^ 1 = 16 ^ 1 = 17.
	if got := tt.Buf.GetInt(0); got != 17 {
		t.Errorf("bitwise chain = %d, want 17", got)
	}
}

func TestBroadcastRowAcrossMatrix(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 12
.reg a1 float64 4
BH_IDENTITY a0 [0:12:4][0:4:1] 10.0
BH_RANGE a1 [0:4:1]
BH_ADD a0 [0:12:4][0:4:1] a0 [0:12:4][0:4:1] a1 [0:3:0][0:4:1]
BH_SYNC a0 [0:12:4][0:4:1]
`)
	got := regSlice(t, m, 0, 12)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if got[i*4+j] != 10+float64(j) {
				t.Fatalf("a0[%d,%d] = %v, want %v", i, j, got[i*4+j], 10+float64(j))
			}
		}
	}
}

func TestStridedViewExecution(t *testing.T) {
	// Add 1 only to even indices.
	m := run(t, Config{}, `
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 [0:10:2] a0 [0:10:2] 1
BH_SYNC a0
`)
	got := regSlice(t, m, 0, 10)
	for i, v := range got {
		want := 0.0
		if i%2 == 0 {
			want = 1
		}
		if v != want {
			t.Fatalf("a0[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestMisalignedSelfOverlapSnapshots(t *testing.T) {
	// a[1:10] = a[0:9] + 0 must behave as if the right-hand side were
	// fully read first (NumPy-style), not smear a[0] everywhere.
	m := run(t, Config{}, `
.reg a0 float64 10
BH_RANGE a0
BH_ADD a0 [1:10:1] a0 [0:9:1] 0
BH_SYNC a0
`)
	got := regSlice(t, m, 0, 10)
	want := []float64{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shift result = %v, want %v", got, want)
		}
	}
}

func TestRangeAndRandom(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 6
.reg a1 float64 1000
BH_RANGE a0
BH_RANDOM a1 42 0
BH_SYNC a0
BH_SYNC a1
`)
	for i, v := range regSlice(t, m, 0, 6) {
		if v != float64(i) {
			t.Fatalf("range[%d] = %v", i, v)
		}
	}
	vals := regSlice(t, m, 1, 1000)
	mean := 0.0
	for _, v := range vals {
		if v < 0 || v >= 1 {
			t.Fatalf("random value %v outside [0,1)", v)
		}
		mean += v
	}
	mean /= float64(len(vals))
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("random mean = %v, want ~0.5", mean)
	}
	// Determinism: same seed, same stream.
	m2 := run(t, Config{}, `
.reg a1 float64 1000
BH_RANDOM a1 42 0
BH_SYNC a1
`)
	vals2 := regSlice(t, m2, 0, 1000)
	for i := range vals {
		if vals[i] != vals2[i] {
			t.Fatal("BH_RANDOM is not deterministic per seed")
		}
	}
}

func TestReductions(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 12
.reg a1 float64 3
.reg a2 float64 4
.reg a3 float64 1
BH_RANGE a0 [0:12:1]
BH_ADD_REDUCE a1 [0:3:1] a0 [0:12:4][0:4:1] axis=1
BH_ADD_REDUCE a2 [0:4:1] a0 [0:12:4][0:4:1] axis=0
BH_MAXIMUM_REDUCE a3 [0:1:1] a0 [0:12:1] axis=0
BH_SYNC a1
`)
	rows := regSlice(t, m, 1, 3)
	wantRows := []float64{6, 22, 38}
	for i := range wantRows {
		if rows[i] != wantRows[i] {
			t.Errorf("row sum[%d] = %v, want %v", i, rows[i], wantRows[i])
		}
	}
	cols := regSlice(t, m, 2, 4)
	wantCols := []float64{12, 15, 18, 21}
	for i := range wantCols {
		if cols[i] != wantCols[i] {
			t.Errorf("col sum[%d] = %v, want %v", i, cols[i], wantCols[i])
		}
	}
	if mx := regSlice(t, m, 3, 1)[0]; mx != 11 {
		t.Errorf("max = %v, want 11", mx)
	}
}

func TestIntReduction(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 int64 5
.reg a1 int64 1
BH_IDENTITY a0 3
BH_MULTIPLY_REDUCE a1 [0:1:1] a0 [0:5:1] axis=0
BH_SYNC a1
`)
	tt, _ := m.Tensor(1, tensor.NewView(tensor.MustShape(1)))
	if got := tt.Buf.GetInt(0); got != 243 {
		t.Errorf("3^5 product = %d, want 243", got)
	}
}

func TestScan(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 5
.reg a1 float64 5
BH_RANGE a0
BH_ADD_ACCUMULATE a1 a0 axis=0
BH_SYNC a1
`)
	got := regSlice(t, m, 1, 5)
	want := []float64{0, 1, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix sums = %v, want %v", got, want)
		}
	}
}

func TestSolveExtension(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x=1, y=3, through byte-code.
	p := bytecode.NewProgram()
	a := p.NewReg(tensor.Float64, 4)
	b := p.NewReg(tensor.Float64, 2)
	x := p.NewReg(tensor.Float64, 2)
	va := tensor.NewView(tensor.MustShape(2, 2))
	vb := tensor.NewView(tensor.MustShape(2))
	p.MarkInput(a)
	p.MarkInput(b)
	p.EmitBinary(bytecode.OpSolve, bytecode.Reg(x, vb), bytecode.Reg(a, va), bytecode.Reg(b, vb))
	p.EmitSync(bytecode.Reg(x, vb))

	m := New(Config{})
	defer m.Close()
	at, _ := tensor.FromFloat64s([]float64{2, 1, 1, 3}, tensor.MustShape(2, 2))
	bt, _ := tensor.FromFloat64s([]float64{5, 10}, tensor.MustShape(2))
	m.Bind(a, at)
	m.Bind(b, bt)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	got := regSlice(t, m, 2, 2)
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Errorf("solve = %v, want [1 3]", got)
	}
}

func TestInverseThenMatmulEqualsSolve(t *testing.T) {
	// Equation (2): x = A⁻¹·B and SOLVE(A, B) agree.
	src := `
.reg a0 float64 9
.reg a1 float64 3
.reg a2 float64 9
.reg a3 float64 3
.reg a4 float64 3
.in a0
.in a1
BH_INVERSE a2 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_MATMUL a3 [0:3:1][0:1:1] a2 [0:9:3][0:3:1] a1 [0:3:1][0:1:1]
BH_SOLVE a4 [0:3:1] a0 [0:9:3][0:3:1] a1 [0:3:1]
BH_SYNC a3
BH_SYNC a4
`
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	defer m.Close()
	at, _ := tensor.FromFloat64s([]float64{4, 1, 0, 1, 5, 2, 0, 2, 6}, tensor.MustShape(3, 3))
	bt, _ := tensor.FromFloat64s([]float64{1, 2, 3}, tensor.MustShape(3))
	m.Bind(0, at)
	m.Bind(1, bt)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	viaInv := regSlice(t, m, 3, 3)
	viaSolve := regSlice(t, m, 4, 3)
	for i := range viaInv {
		if math.Abs(viaInv[i]-viaSolve[i]) > 1e-9 {
			t.Errorf("paths disagree at %d: %v vs %v", i, viaInv[i], viaSolve[i])
		}
	}
}

func TestLUExtension(t *testing.T) {
	// A = [[4, 3], [6, 3]]: pivoting swaps rows, packed factors of P·A
	// are L = [[1, 0], [2/3, 1]], U = [[6, 3], [0, 1]].
	src := `
.reg a0 float64 4
.reg a1 float64 4
.in a0
BH_LU a1 [0:4:2][0:2:1] a0 [0:4:2][0:2:1]
BH_SYNC a1
`
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	defer m.Close()
	at, _ := tensor.FromFloat64s([]float64{4, 3, 6, 3}, tensor.MustShape(2, 2))
	m.Bind(0, at)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	got := regSlice(t, m, 1, 4)
	want := []float64{6, 3, 4.0 / 6.0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("packed LU = %v, want %v", got, want)
		}
	}
}

func TestFreeReleasesBuffer(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_FREE a0
`)
	if _, ok := m.Tensor(0, tensor.NewView(tensor.MustShape(4))); ok {
		t.Error("freed register still has a buffer")
	}
}

func TestUnboundInputRejected(t *testing.T) {
	p := bytecode.NewProgram()
	a := p.NewReg(tensor.Float64, 4)
	p.MarkInput(a)
	p.EmitSync(bytecode.Reg(a, tensor.NewView(tensor.MustShape(4))))
	m := New(Config{})
	defer m.Close()
	err := m.Run(p)
	if err == nil || !errors.Is(err, ErrExec) {
		t.Errorf("unbound input: %v, want ErrExec", err)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	p := bytecode.NewProgram()
	a := p.NewReg(tensor.Float64, 4)
	v := tensor.NewView(tensor.MustShape(4))
	p.EmitUnary(bytecode.OpSqrt, bytecode.Reg(a, v), bytecode.Reg(a, v)) // use before def
	m := New(Config{})
	defer m.Close()
	if err := m.Run(p); err == nil {
		t.Error("invalid program executed")
	}
}

func TestSingularSolveFails(t *testing.T) {
	src := `
.reg a0 float64 4
.reg a1 float64 2
.reg a2 float64 2
BH_IDENTITY a0 1.0
BH_IDENTITY a1 1.0
BH_SOLVE a2 [0:2:1] a0 [0:4:2][0:2:1] a1 [0:2:1]
`
	p, err := bytecode.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	defer m.Close()
	err = m.Run(p)
	if err == nil || !strings.Contains(err.Error(), "singular") {
		t.Errorf("singular solve: %v, want singular error", err)
	}
}

func TestStatsCounting(t *testing.T) {
	m := run(t, Config{}, `
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 1
BH_ADD a0 a0 1
BH_SYNC a0
`)
	st := m.Stats()
	if st.Instructions != 3 {
		t.Errorf("Instructions = %d, want 3 (SYNC excluded)", st.Instructions)
	}
	if st.Sweeps != 3 {
		t.Errorf("Sweeps = %d, want 3", st.Sweeps)
	}
	if st.Elements != 30 {
		t.Errorf("Elements = %d, want 30", st.Elements)
	}
	m.ResetStats()
	if m.Stats().Instructions != 0 {
		t.Error("ResetStats did not clear")
	}
}
