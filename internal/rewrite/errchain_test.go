package rewrite

import (
	"errors"
	"testing"

	"bohrium/internal/bytecode"
)

// TestRewriteErrorChainExposesInvalidCause pins the double-%w chain at
// the pipeline's post-rule validation: when a rule corrupts the program,
// the error must match ErrRewrite (the pipeline sentinel) AND
// bytecode.ErrInvalid (the underlying validation failure) — callers
// attribute the failure to the optimizer while still classifying what
// went wrong. A %v regression on either wrap breaks the deep match
// without changing the message, which is why the errwrap analyzer and
// this test exist together.
func TestRewriteErrorChainExposesInvalidCause(t *testing.T) {
	p := bytecode.MustParse(listing2)
	_, err := NewPipeline(brokenRule{}).Run(p)
	if err == nil {
		t.Fatal("pipeline accepted a corrupted program")
	}
	if !errors.Is(err, ErrRewrite) {
		t.Errorf("error %v does not match ErrRewrite", err)
	}
	if !errors.Is(err, bytecode.ErrInvalid) {
		t.Errorf("error %v does not expose bytecode.ErrInvalid through the rewrite wrap", err)
	}
}
