package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bohrium/internal/bytecode"
)

// ErrRewrite wraps rule application failures (a rule producing an invalid
// program is a bug; the pipeline surfaces it rather than executing wrong
// code).
var ErrRewrite = errors.New("rewrite: pipeline error")

// Rule is one algebraic transformation. Apply mutates the program in
// place and returns how many rewrites it performed (zero when it found
// nothing).
type Rule interface {
	// Name identifies the rule in reports and ablation configs.
	Name() string
	// Apply rewrites the program, returning the number of sites changed.
	Apply(p *bytecode.Program) (int, error)
}

// Pipeline drives rules to a fixpoint.
type Pipeline struct {
	rules []Rule
	// MaxPasses bounds fixpoint iteration (a safety net against
	// oscillating rule pairs; well-formed rule sets converge quickly).
	MaxPasses int
	// Validate re-validates the program after every rule application,
	// attributing breakage to the rule that caused it.
	Validate bool
}

// NewPipeline builds a pipeline over the given rules, applied in order
// within each pass, with validation enabled and a default pass bound.
func NewPipeline(rules ...Rule) *Pipeline {
	return &Pipeline{rules: rules, MaxPasses: 10, Validate: true}
}

// Rules returns the pipeline's rules in application order.
func (pl *Pipeline) Rules() []Rule { return pl.rules }

// Metrics summarizes a program for before/after comparison in reports.
type Metrics struct {
	Instructions int
	Work         float64
}

// Report describes what a pipeline run did.
type Report struct {
	Passes  int
	Applied map[string]int
	Before  Metrics
	After   Metrics
}

// TotalApplied returns the total number of rewrites across rules.
func (r *Report) TotalApplied() int {
	n := 0
	for _, c := range r.Applied {
		n += c
	}
	return n
}

// String renders the report as a small table for tool output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "passes: %d, byte-codes: %d -> %d, est. work: %.0f -> %.0f\n",
		r.Passes, r.Before.Instructions, r.After.Instructions, r.Before.Work, r.After.Work)
	names := make([]string, 0, len(r.Applied))
	for name := range r.Applied {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if r.Applied[name] > 0 {
			fmt.Fprintf(&b, "  %-24s %d\n", name, r.Applied[name])
		}
	}
	return b.String()
}

// measure snapshots program metrics.
func measure(p *bytecode.Program) Metrics {
	return Metrics{Instructions: p.Len(), Work: p.WorkEstimate()}
}

// Run applies the pipeline to p in place, returning the report. On error
// the program may be partially rewritten; callers should Clone first if
// they need the original (the Optimize helper does).
func (pl *Pipeline) Run(p *bytecode.Program) (*Report, error) {
	report := &Report{Applied: map[string]int{}, Before: measure(p)}
	for pass := 0; pass < pl.MaxPasses; pass++ {
		changed := 0
		for _, rule := range pl.rules {
			n, err := rule.Apply(p)
			if err != nil {
				return report, fmt.Errorf("%w: rule %s: %w", ErrRewrite, rule.Name(), err)
			}
			if n > 0 && pl.Validate {
				if err := p.Validate(); err != nil {
					return report, fmt.Errorf("%w: rule %s produced invalid program: %w",
						ErrRewrite, rule.Name(), err)
				}
			}
			report.Applied[rule.Name()] += n
			changed += n
		}
		report.Passes++
		if changed == 0 {
			break
		}
	}
	report.After = measure(p)
	return report, nil
}

// Optimize clones p, runs the pipeline on the clone, and returns it with
// the report — the non-destructive entry point the front-end and tools use.
func (pl *Pipeline) Optimize(p *bytecode.Program) (*bytecode.Program, *Report, error) {
	out := p.Clone()
	report, err := pl.Run(out)
	if err != nil {
		return nil, report, err
	}
	return out, report, nil
}

// Program edit helpers shared by the rules.

// removeAt deletes instruction idx.
func removeAt(p *bytecode.Program, idx int) {
	p.Instrs = append(p.Instrs[:idx], p.Instrs[idx+1:]...)
}

// replaceAt substitutes instruction idx with the given sequence.
func replaceAt(p *bytecode.Program, idx int, with ...bytecode.Instruction) {
	tail := append([]bytecode.Instruction(nil), p.Instrs[idx+1:]...)
	p.Instrs = append(p.Instrs[:idx], append(with, tail...)...)
}
