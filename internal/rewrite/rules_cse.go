package rewrite

import (
	"bohrium/internal/bytecode"
)

// CommonSubexprRule replaces a recomputation of an expensive elementwise
// byte-code with a copy of the earlier result: two identical BH_SQRT (or
// POWER, DIVIDE, transcendental) byte-codes over identical operands become
// one computation plus one BH_IDENTITY. Cheap sweeps (cost 1) are left
// alone — a copy costs the same sweep, so nothing is gained.
type CommonSubexprRule struct {
	// MinCost is the minimum op cost worth deduplicating; zero means 4
	// (DIVIDE and up).
	MinCost float64
}

// Name implements Rule.
func (CommonSubexprRule) Name() string { return "common-subexpr" }

// Apply implements Rule.
func (r CommonSubexprRule) Apply(p *bytecode.Program) (int, error) {
	minCost := r.MinCost
	if minCost == 0 {
		minCost = 4
	}
	total := 0
	for i := 0; i < len(p.Instrs); i++ {
		first := &p.Instrs[i]
		info := first.Op.Info()
		if !first.Op.Elementwise() || info.Cost < minCost || !first.Out.IsReg() {
			continue
		}
	scan:
		for j := i + 1; j < len(p.Instrs); j++ {
			second := &p.Instrs[j]
			// The gap (and the candidate itself, for its inputs) must
			// leave the first result and the shared inputs untouched.
			if writesOverlap(second, first.Out.Reg, first.Out.View) && !sameComputation(first, second) {
				break scan
			}
			for _, opnd := range first.Inputs() {
				if opnd.IsReg() && writesOverlap(second, opnd.Reg, opnd.View) {
					break scan
				}
			}
			if !sameComputation(first, second) {
				continue
			}
			if second.Out.Reg == first.Out.Reg && second.Out.View.Equal(first.Out.View) {
				// Bitwise re-store of the same value: drop it entirely.
				removeAt(p, j)
				total++
				break scan
			}
			p.Instrs[j] = bytecode.Instruction{
				Op:  bytecode.OpIdentity,
				Out: second.Out,
				In1: bytecode.Reg(first.Out.Reg, first.Out.View),
			}
			total++
			break scan
		}
	}
	return total, nil
}

// sameComputation reports whether two instructions perform the identical
// elementwise computation over identical operands (results may land in
// different registers).
func sameComputation(a, b *bytecode.Instruction) bool {
	if a.Op != b.Op || !a.Out.View.Shape.Equal(b.Out.View.Shape) {
		return false
	}
	return operandEqual(a.In1, b.In1) && operandEqual(a.In2, b.In2)
}

func operandEqual(a, b bytecode.Operand) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case bytecode.OperandReg:
		return a.Reg == b.Reg && a.View.Equal(b.View)
	case bytecode.OperandConst:
		return a.Const.Equal(b.Const)
	default:
		return true
	}
}
