package rewrite

import (
	"testing"
	"testing/quick"

	"bohrium/internal/bytecode"
	"bohrium/internal/chains"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// The optimizer's contract: an optimized program computes the same tensors
// as the original (up to float reassociation tolerance). These tests
// execute random and hand-picked programs through the VM twice — raw and
// optimized — and compare every register.

func runProgram(t *testing.T, p *bytecode.Program) map[bytecode.RegID]tensor.Tensor {
	t.Helper()
	m := vm.New(vm.Config{})
	defer m.Close()
	if err := m.Run(p); err != nil {
		t.Fatalf("execution failed: %v\nprogram:\n%s", err, p)
	}
	out := map[bytecode.RegID]tensor.Tensor{}
	for r := range p.Regs {
		info, _ := p.Reg(bytecode.RegID(r))
		tt, ok := m.Tensor(bytecode.RegID(r), tensor.NewView(tensor.MustShape(info.Len)))
		if ok {
			out[bytecode.RegID(r)] = tt.Compact()
		}
	}
	return out
}

// checkSound optimizes p with the pipeline and verifies result equality on
// all registers that survive in both programs.
func checkSound(t *testing.T, pl *Pipeline, p *bytecode.Program, rtol float64) *Report {
	t.Helper()
	optimized, report, err := pl.Optimize(p)
	if err != nil {
		t.Fatalf("optimize: %v\nprogram:\n%s", err, p)
	}
	raw := runProgram(t, p)
	opt := runProgram(t, optimized)
	for r, want := range raw {
		got, ok := opt[r]
		if !ok {
			continue // optimizer may legitimately never materialize dead registers
		}
		if !want.AllClose(got, rtol, rtol) {
			t.Errorf("register %s diverged (max diff %v)\noriginal:\n%s\noptimized:\n%s",
				r, want.MaxAbsDiff(got), p, optimized)
		}
	}
	return report
}

func TestPipelineSoundOnListing2(t *testing.T) {
	p := bytecode.MustParse(`
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`)
	report := checkSound(t, Default(), p, 0)
	if report.After.Instructions >= report.Before.Instructions {
		t.Errorf("no shrink: %d -> %d", report.Before.Instructions, report.After.Instructions)
	}
}

func TestPipelineSoundOnPowerChains(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 10, 15, 16, 17, 31, 32, 33, 64, 100} {
		for _, strat := range []chains.Strategy{
			chains.StrategyNaive, chains.StrategySquareIncrement,
			chains.StrategyBinary, chains.StrategyOptimal,
		} {
			p := bytecode.NewProgram()
			a0 := p.NewReg(tensor.Float64, 16)
			a1 := p.NewReg(tensor.Float64, 16)
			v := tensor.NewView(tensor.MustShape(16))
			p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstFloat(1.0001)))
			p.EmitBinary(bytecode.OpPower, bytecode.Reg(a1, v), bytecode.Reg(a0, v),
				bytecode.Const(bytecode.ConstInt(int64(n))))
			p.EmitSync(bytecode.Reg(a1, v))

			pl := Build(Options{
				PowerExpand:           true,
				PowerStrategy:         strat,
				PowerAllowTemporaries: strat == chains.StrategyOptimal,
			})
			checkSound(t, pl, p, 1e-9)
		}
	}
}

func TestPipelineSoundOnSolve(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 16
.reg a1 float64 16
.reg a2 float64 4
.reg a3 float64 4
BH_RANDOM a0 [0:16:1] 7 0
BH_ADD a0 [0:20:5] a0 [0:20:5] 8.0
BH_RANDOM a2 [0:4:1] 9 0
BH_INVERSE a1 [0:16:4][0:4:1] a0 [0:16:4][0:4:1]
BH_MATMUL a3 [0:4:1][0:1:1] a1 [0:16:4][0:4:1] a2 [0:4:1][0:1:1]
BH_SYNC a3
`)
	report := checkSound(t, Default(), p, 1e-8)
	if report.Applied["inverse-to-solve"] != 1 {
		t.Errorf("solve rewrite did not fire: %v", report.Applied)
	}
}

func TestPipelineSoundOnRandomPrograms(t *testing.T) {
	pl := Default()
	f := func(seed uint64, size uint8) bool {
		p := randomProgram(seed, int(size%20)+2)
		optimized, _, err := pl.Optimize(p)
		if err != nil {
			t.Logf("optimize error on seed %d: %v\n%s", seed, err, p)
			return false
		}
		raw := execOrNil(p)
		opt := execOrNil(optimized)
		if raw == nil || opt == nil {
			return raw == nil && opt == nil
		}
		for r, want := range raw {
			got, ok := opt[r]
			if !ok {
				continue
			}
			if !want.AllClose(got, 1e-9, 1e-9) {
				t.Logf("seed %d register %s diverged by %v\noriginal:\n%s\noptimized:\n%s",
					seed, r, want.MaxAbsDiff(got), p, optimized)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func execOrNil(p *bytecode.Program) map[bytecode.RegID]tensor.Tensor {
	m := vm.New(vm.Config{})
	defer m.Close()
	if err := m.Run(p); err != nil {
		return nil
	}
	out := map[bytecode.RegID]tensor.Tensor{}
	for r := range p.Regs {
		info, _ := p.Reg(bytecode.RegID(r))
		tt, ok := m.Tensor(bytecode.RegID(r), tensor.NewView(tensor.MustShape(info.Len)))
		if ok {
			out[bytecode.RegID(r)] = tt.Compact()
		}
	}
	return out
}

// randomProgram generates a random valid byte-code program exercising the
// rewrite rules: constant add/mul chains, powers, identities, reductions,
// occasional syncs, and strided views.
func randomProgram(seed uint64, n int) *bytecode.Program {
	r := tensor.NewSplitMix64(seed)
	p := bytecode.NewProgram()
	regLen := r.Intn(24) + 4
	full := tensor.NewView(tensor.MustShape(regLen))
	nRegs := r.Intn(3) + 2
	regs := make([]bytecode.RegID, nRegs)
	for i := range regs {
		regs[i] = p.NewReg(tensor.Float64, regLen)
		p.EmitIdentity(bytecode.Reg(regs[i], full),
			bytecode.Const(bytecode.ConstFloat(float64(r.Intn(7))+0.5)))
	}
	for i := 0; i < n; i++ {
		out := regs[r.Intn(nRegs)]
		view := full
		if r.Intn(5) == 0 {
			view, _ = full.Slice(0, 0, regLen-regLen%2, 2)
		}
		switch r.Intn(8) {
		case 0, 1, 2: // constant add/sub chains — merge fodder
			op := bytecode.OpAdd
			if r.Intn(3) == 0 {
				op = bytecode.OpSubtract
			}
			p.EmitBinary(op, bytecode.Reg(out, view), bytecode.Reg(out, view),
				bytecode.Const(bytecode.ConstInt(int64(r.Intn(5)))))
		case 3: // constant mul chains
			p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(out, view), bytecode.Reg(out, view),
				bytecode.Const(bytecode.ConstFloat(float64(r.Intn(3))+0.5)))
		case 4: // integral powers into a different register
			src := regs[r.Intn(nRegs)]
			p.EmitBinary(bytecode.OpPower, bytecode.Reg(out, full), bytecode.Reg(src, full),
				bytecode.Const(bytecode.ConstInt(int64(r.Intn(12)))))
		case 5: // identity-eligible ops
			consts := []float64{0, 1}
			ops := []bytecode.Opcode{bytecode.OpAdd, bytecode.OpMultiply}
			k := r.Intn(2)
			p.EmitBinary(ops[k], bytecode.Reg(out, view), bytecode.Reg(out, view),
				bytecode.Const(bytecode.ConstFloat(consts[k])))
		case 6: // binary reg-reg
			ops := []bytecode.Opcode{bytecode.OpAdd, bytecode.OpMultiply, bytecode.OpMaximum}
			p.EmitBinary(ops[r.Intn(3)], bytecode.Reg(out, view),
				bytecode.Reg(regs[r.Intn(nRegs)], view), bytecode.Reg(regs[r.Intn(nRegs)], view))
		default: // observation points
			p.EmitSync(bytecode.Reg(out, full))
		}
	}
	for i := range regs {
		p.EmitSync(bytecode.Reg(regs[i], full))
	}
	return p
}

func TestPipelineConvergesAndReports(t *testing.T) {
	p := bytecode.MustParse(listing2)
	pl := Default()
	report, err := pl.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalApplied() == 0 {
		t.Error("no rewrites applied to Listing 2")
	}
	if report.Passes >= pl.MaxPasses {
		t.Errorf("pipeline did not converge in %d passes", report.Passes)
	}
	if report.String() == "" {
		t.Error("empty report")
	}
	// Full pipeline collapses Listing 2 to IDENTITY 3 + SYNC.
	if p.Len() != 2 {
		t.Errorf("fully optimized Listing 2 has %d byte-codes, want 2:\n%s", p.Len(), p)
	}
}

func TestOptimizeDoesNotMutateOriginal(t *testing.T) {
	p := bytecode.MustParse(listing2)
	before := p.String()
	if _, _, err := Default().Optimize(p); err != nil {
		t.Fatal(err)
	}
	if p.String() != before {
		t.Error("Optimize mutated its input")
	}
}
