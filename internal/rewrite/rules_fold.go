package rewrite

import (
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Constant-folding rules: the paper's Listing 2→3 transformation family.
// All of them assume real-number algebra; merged float operations may
// round differently from the original sequence (the same license the
// paper's merge of float additions takes). Integer merges are exact.

// CanonicalizeRule normalizes commutative binary byte-codes so that a
// constant operand sits in the second slot, letting every later rule match
// one shape instead of two.
type CanonicalizeRule struct{}

// Name implements Rule.
func (CanonicalizeRule) Name() string { return "canonicalize" }

// Apply implements Rule.
func (CanonicalizeRule) Apply(p *bytecode.Program) (int, error) {
	n := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if !in.Op.Info().Commutative || in.Op.Info().Arity != 2 {
			continue
		}
		if in.In1.IsConst() && in.In2.IsReg() {
			in.In1, in.In2 = in.In2, in.In1
			n++
		}
	}
	return n, nil
}

// AddMergeRule merges consecutive constant additions/subtractions into one
// byte-code: "BH_ADD a0 a0 1" three times becomes "BH_ADD a0 a0 3"
// (Listings 2→3). Interleaved unrelated byte-codes are tolerated as long
// as they do not touch the target view.
type AddMergeRule struct {
	// AdjacentOnly restricts matching to strictly consecutive byte-codes
	// (the paper's literal listings) — the D1 ablation knob that shows
	// what interference-aware gap tolerance buys on realistic streams.
	AdjacentOnly bool
}

// Name implements Rule.
func (AddMergeRule) Name() string { return "add-merge" }

var addMergePattern = SeqPattern{
	Pats: []InstrPattern{
		{
			Ops: []bytecode.Opcode{bytecode.OpAdd, bytecode.OpSubtract},
			Out: RegOp("r", "v"), In1: RegOp("r", "v"), In2: ConstOp("c1"),
		},
		{
			Ops: []bytecode.Opcode{bytecode.OpAdd, bytecode.OpSubtract},
			Out: RegOp("r", "v"), In1: RegOp("r", "v"), In2: ConstOp("c2"),
		},
	},
	Protect: []Protected{{Reg: "r", View: "v"}},
}

// Apply implements Rule.
func (r AddMergeRule) Apply(p *bytecode.Program) (int, error) {
	pattern := addMergePattern
	pattern.NoGaps = r.AdjacentOnly
	total := 0
	for {
		m, ok := pattern.Find(p)
		if !ok {
			return total, nil
		}
		i, j := m.Positions[0], m.Positions[1]
		first, second := &p.Instrs[i], &p.Instrs[j]
		c1, c2 := m.Binding.Consts["c1"], m.Binding.Consts["c2"]

		s1, s2 := signOf(first.Op), signOf(second.Op)
		var merged bytecode.Constant
		if isExactInt(c1) && isExactInt(c2) {
			merged = bytecode.ConstInt(s1*c1.Int() + s2*c2.Int())
		} else {
			merged = bytecode.ConstFloat(float64(s1)*c1.Float() + float64(s2)*c2.Float())
		}
		first.Op = bytecode.OpAdd
		first.In2 = bytecode.Const(merged)
		removeAt(p, j)
		total++
	}
}

// MulMergeRule merges consecutive constant multiplications/divisions:
// x·c1·c2 → x·(c1c2), x/c1/c2 → x/(c1c2), and the mixed forms in float
// arithmetic. Integer registers only merge the cases where truncating
// semantics compose exactly (MUL·MUL always; DIV·DIV for positive
// divisors).
type MulMergeRule struct{}

// Name implements Rule.
func (MulMergeRule) Name() string { return "mul-merge" }

var mulMergePattern = SeqPattern{
	Pats: []InstrPattern{
		{
			Ops: []bytecode.Opcode{bytecode.OpMultiply, bytecode.OpDivide},
			Out: RegOp("r", "v"), In1: RegOp("r", "v"), In2: ConstOp("c1"),
		},
		{
			Ops: []bytecode.Opcode{bytecode.OpMultiply, bytecode.OpDivide},
			Out: RegOp("r", "v"), In1: RegOp("r", "v"), In2: ConstOp("c2"),
		},
	},
	Protect: []Protected{{Reg: "r", View: "v"}},
}

// Apply implements Rule.
func (MulMergeRule) Apply(p *bytecode.Program) (int, error) {
	total := 0
	for from := 0; ; {
		m, ok := mulMergePattern.FindFrom(p, from)
		if !ok {
			return total, nil
		}
		i, j := m.Positions[0], m.Positions[1]
		first, second := &p.Instrs[i], &p.Instrs[j]
		c1, c2 := m.Binding.Consts["c1"], m.Binding.Consts["c2"]
		ri, _ := p.Reg(first.Out.Reg)

		op1, op2 := first.Op, second.Op
		intReg := !ri.DType.IsFloat()
		switch {
		case intReg && op1 == bytecode.OpMultiply && op2 == bytecode.OpMultiply &&
			isExactInt(c1) && isExactInt(c2):
			first.In2 = bytecode.Const(bytecode.ConstInt(c1.Int() * c2.Int()))
		case intReg && op1 == bytecode.OpDivide && op2 == bytecode.OpDivide &&
			isExactInt(c1) && isExactInt(c2) && c1.Int() > 0 && c2.Int() > 0:
			first.In2 = bytecode.Const(bytecode.ConstInt(c1.Int() * c2.Int()))
		case intReg:
			// Mixed or non-exact integer forms do not compose under
			// truncation; skip past this site.
			from = i + 1
			continue
		case op1 == bytecode.OpMultiply && op2 == bytecode.OpMultiply:
			first.In2 = bytecode.Const(bytecode.ConstFloat(c1.Float() * c2.Float()))
		case op1 == bytecode.OpDivide && op2 == bytecode.OpDivide:
			first.In2 = bytecode.Const(bytecode.ConstFloat(c1.Float() * c2.Float()))
		case op1 == bytecode.OpMultiply && op2 == bytecode.OpDivide:
			if c2.Float() == 0 {
				from = i + 1
				continue
			}
			first.In2 = bytecode.Const(bytecode.ConstFloat(c1.Float() / c2.Float()))
		default: // DIVIDE then MULTIPLY
			if c1.Float() == 0 {
				from = i + 1
				continue
			}
			first.Op = bytecode.OpMultiply
			first.In2 = bytecode.Const(bytecode.ConstFloat(c2.Float() / c1.Float()))
		}
		removeAt(p, j)
		total++
		from = 0
	}
}

// IdentityFoldRule folds a constant initialization followed by a constant
// arithmetic byte-code into one initialization: IDENTITY 0 then ADD 3
// becomes IDENTITY 3. Together with AddMergeRule this collapses Listing 2
// all the way to two byte-codes.
type IdentityFoldRule struct{}

// Name implements Rule.
func (IdentityFoldRule) Name() string { return "identity-fold" }

var identityFoldPattern = SeqPattern{
	Pats: []InstrPattern{
		{
			Ops: []bytecode.Opcode{bytecode.OpIdentity},
			Out: RegOp("r", "v"), In1: ConstOp("c1"), In2: Absent,
		},
		{
			Ops: []bytecode.Opcode{
				bytecode.OpAdd, bytecode.OpSubtract, bytecode.OpMultiply,
				bytecode.OpDivide, bytecode.OpPower,
			},
			Out: RegOp("r", "v"), In1: RegOp("r", "v"), In2: ConstOp("c2"),
		},
	},
	Protect: []Protected{{Reg: "r", View: "v"}},
}

// Apply implements Rule.
func (IdentityFoldRule) Apply(p *bytecode.Program) (int, error) {
	total := 0
	for from := 0; ; {
		m, ok := identityFoldPattern.FindFrom(p, from)
		if !ok {
			return total, nil
		}
		i, j := m.Positions[0], m.Positions[1]
		c1, c2 := m.Binding.Consts["c1"], m.Binding.Consts["c2"]
		folded, ok := foldConstants(p.Instrs[j].Op, c1, c2)
		if !ok {
			from = i + 1
			continue
		}
		p.Instrs[i].In1 = bytecode.Const(folded)
		removeAt(p, j)
		total++
		from = 0
	}
}

// foldConstants evaluates op(c1, c2) at rewrite time, exactly for integer
// constants.
func foldConstants(op bytecode.Opcode, c1, c2 bytecode.Constant) (bytecode.Constant, bool) {
	if isExactInt(c1) && isExactInt(c2) {
		a, b := c1.Int(), c2.Int()
		switch op {
		case bytecode.OpAdd:
			return bytecode.ConstInt(a + b), true
		case bytecode.OpSubtract:
			return bytecode.ConstInt(a - b), true
		case bytecode.OpMultiply:
			return bytecode.ConstInt(a * b), true
		case bytecode.OpDivide:
			if b == 0 {
				return bytecode.Constant{}, false
			}
			return bytecode.ConstInt(a / b), true
		case bytecode.OpPower:
			if b < 0 {
				return bytecode.Constant{}, false
			}
			return bytecode.ConstInt(ipowConst(a, b)), true
		}
		return bytecode.Constant{}, false
	}
	a, b := c1.Float(), c2.Float()
	switch op {
	case bytecode.OpAdd:
		return bytecode.ConstFloat(a + b), true
	case bytecode.OpSubtract:
		return bytecode.ConstFloat(a - b), true
	case bytecode.OpMultiply:
		return bytecode.ConstFloat(a * b), true
	case bytecode.OpDivide:
		if b == 0 {
			return bytecode.Constant{}, false
		}
		return bytecode.ConstFloat(a / b), true
	default:
		return bytecode.Constant{}, false
	}
}

func ipowConst(base, exp int64) int64 {
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// IdentityElimRule removes or simplifies byte-codes that apply an
// operation's neutral element: x+0, x-0, x·1, x/1, x¹ vanish (or become
// plain copies when source and destination differ); x⁰ and x·0 become
// constant initializations.
type IdentityElimRule struct{}

// Name implements Rule.
func (IdentityElimRule) Name() string { return "identity-elim" }

// Apply implements Rule.
func (IdentityElimRule) Apply(p *bytecode.Program) (int, error) {
	total := 0
	for i := 0; i < len(p.Instrs); i++ {
		in := &p.Instrs[i]
		if in.Op.Info().Arity != 2 || !in.In2.IsConst() || !in.In1.IsReg() || !in.Out.IsReg() {
			continue
		}
		c := in.In2.Const.Float()
		info := in.Op.Info()
		switch {
		case info.HasIdentity && c == info.Identity &&
			(in.Op == bytecode.OpAdd || in.Op == bytecode.OpSubtract ||
				in.Op == bytecode.OpMultiply || in.Op == bytecode.OpDivide ||
				in.Op == bytecode.OpPower):
			if in.Out.Reg == in.In1.Reg && in.Out.View.Equal(in.In1.View) {
				removeAt(p, i)
				i--
			} else {
				p.Instrs[i] = bytecode.Instruction{Op: bytecode.OpIdentity, Out: in.Out, In1: in.In1}
			}
			total++
		case in.Op == bytecode.OpPower && c == 0:
			// x⁰ = 1 for every element (NumPy: pow(x, 0) == 1, incl. 0⁰).
			p.Instrs[i] = bytecode.Instruction{
				Op:  bytecode.OpIdentity,
				Out: in.Out,
				In1: bytecode.Const(constOne(p, in.Out.Reg)),
			}
			total++
		case in.Op == bytecode.OpMultiply && c == 0 && !couldBeNaN(p, in.In1.Reg):
			// x·0 = 0 — only for integer registers, where no NaN/Inf can
			// make 0·x ≠ 0.
			p.Instrs[i] = bytecode.Instruction{
				Op:  bytecode.OpIdentity,
				Out: in.Out,
				In1: bytecode.Const(bytecode.ConstInt(0)),
			}
			total++
		}
	}
	return total, nil
}

func constOne(p *bytecode.Program, r bytecode.RegID) bytecode.Constant {
	ri, _ := p.Reg(r)
	return bytecode.ConstOf(ri.DType, 1)
}

// couldBeNaN reports whether register r can hold NaN or infinities — true
// for float registers, where x·0 must not fold to 0.
func couldBeNaN(p *bytecode.Program, r bytecode.RegID) bool {
	ri, ok := p.Reg(r)
	return !ok || ri.DType.IsFloat()
}

func signOf(op bytecode.Opcode) int64 {
	if op == bytecode.OpSubtract {
		return -1
	}
	return 1
}

func isExactInt(c bytecode.Constant) bool {
	return (c.DType.IsInteger() || c.DType == tensor.Bool) && c.IsIntegral()
}
