package rewrite

import (
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// The pattern matcher. Rules describe byte-code sequences as ordered
// InstrPatterns over named binding variables: the same register variable
// must bind the same register everywhere it appears, the same view
// variable the same (exactly equal) view, the same constant variable the
// same constant. Sequences tolerate gaps: unrelated byte-codes may sit
// between matched ones as long as they do not touch any *protected*
// binding (interference analysis from deps.go). That gap tolerance is what
// makes the rewriter effective on real interleaved streams rather than
// only on the paper's adjacent listings.

// Binding is the variable environment accumulated during a match.
type Binding struct {
	Regs   map[string]bytecode.RegID
	Views  map[string]tensor.View
	Consts map[string]bytecode.Constant
}

func newBinding() *Binding {
	return &Binding{
		Regs:   map[string]bytecode.RegID{},
		Views:  map[string]tensor.View{},
		Consts: map[string]bytecode.Constant{},
	}
}

func (b *Binding) clone() *Binding {
	out := newBinding()
	for k, v := range b.Regs {
		out.Regs[k] = v
	}
	for k, v := range b.Views {
		out.Views[k] = v
	}
	for k, v := range b.Consts {
		out.Consts[k] = v
	}
	return out
}

func (b *Binding) bindReg(name string, r bytecode.RegID) bool {
	if name == "" {
		return true
	}
	if prev, ok := b.Regs[name]; ok {
		return prev == r
	}
	b.Regs[name] = r
	return true
}

func (b *Binding) bindView(name string, v tensor.View) bool {
	if name == "" {
		return true
	}
	if prev, ok := b.Views[name]; ok {
		return prev.Equal(v)
	}
	b.Views[name] = v.Clone()
	return true
}

func (b *Binding) bindConst(name string, c bytecode.Constant) bool {
	if name == "" {
		return true
	}
	if prev, ok := b.Consts[name]; ok {
		return prev.Equal(c)
	}
	b.Consts[name] = c
	return true
}

// OperandPattern matches one operand slot.
type OperandPattern struct {
	// Want constrains the operand kind; zero (OperandNone) means the slot
	// must be absent.
	Want bytecode.OperandKind
	// Reg and View name binding variables for register operands.
	Reg  string
	View string
	// Const names a binding variable for constant operands; ConstPred
	// additionally filters acceptable constants.
	Const     string
	ConstPred func(bytecode.Constant) bool
}

// AnyOperand matches register or constant without binding.
var AnyOperand = OperandPattern{Want: -1}

// RegOp matches a register operand binding its register and view.
func RegOp(reg, view string) OperandPattern {
	return OperandPattern{Want: bytecode.OperandReg, Reg: reg, View: view}
}

// ConstOp matches a constant operand binding it under name.
func ConstOp(name string) OperandPattern {
	return OperandPattern{Want: bytecode.OperandConst, Const: name}
}

// ConstWhere matches a constant satisfying pred.
func ConstWhere(name string, pred func(bytecode.Constant) bool) OperandPattern {
	return OperandPattern{Want: bytecode.OperandConst, Const: name, ConstPred: pred}
}

// Absent matches an empty operand slot.
var Absent = OperandPattern{Want: bytecode.OperandNone}

func (op OperandPattern) match(o bytecode.Operand, b *Binding) bool {
	if op.Want == -1 {
		return true
	}
	if o.Kind != op.Want {
		return false
	}
	switch o.Kind {
	case bytecode.OperandReg:
		return b.bindReg(op.Reg, o.Reg) && b.bindView(op.View, o.View)
	case bytecode.OperandConst:
		if op.ConstPred != nil && !op.ConstPred(o.Const) {
			return false
		}
		return b.bindConst(op.Const, o.Const)
	default:
		return true
	}
}

// InstrPattern matches one instruction.
type InstrPattern struct {
	// Ops lists acceptable op-codes (empty means any).
	Ops []bytecode.Opcode
	// Out, In1, In2 constrain the operand slots.
	Out, In1, In2 OperandPattern
	// Pred is an optional extra guard run after operand binding.
	Pred func(in *bytecode.Instruction, b *Binding) bool
}

func (ip *InstrPattern) match(in *bytecode.Instruction, b *Binding) bool {
	if len(ip.Ops) > 0 {
		ok := false
		for _, op := range ip.Ops {
			if in.Op == op {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if !ip.Out.match(in.Out, b) || !ip.In1.match(in.In1, b) || !ip.In2.match(in.In2, b) {
		return false
	}
	if ip.Pred != nil && !ip.Pred(in, b) {
		return false
	}
	return true
}

// SeqPattern is an ordered sequence of instruction patterns with
// interference-checked gaps.
type SeqPattern struct {
	Pats []InstrPattern
	// Protect lists bindings that gap instructions between two matched
	// positions must not interfere with.
	Protect []Protected
	// NoGaps requires strictly adjacent matches (the paper's literal
	// listings); the ablation experiments use it to quantify what gap
	// tolerance buys.
	NoGaps bool
}

// Match is a successful sequence match: the instruction indices matched,
// in order, and the final variable binding.
type Match struct {
	Positions []int
	Binding   *Binding
}

// FindFrom returns the first match of the sequence starting at or after
// instruction index from, scanning left to right.
func (sp *SeqPattern) FindFrom(p *bytecode.Program, from int) (Match, bool) {
	for i := from; i < len(p.Instrs); i++ {
		b := newBinding()
		if !sp.Pats[0].match(&p.Instrs[i], b) {
			continue
		}
		if m, ok := sp.extend(p, []int{i}, b, 1); ok {
			return m, true
		}
	}
	return Match{}, false
}

// Find returns the first match in the program.
func (sp *SeqPattern) Find(p *bytecode.Program) (Match, bool) {
	return sp.FindFrom(p, 0)
}

func (sp *SeqPattern) extend(p *bytecode.Program, positions []int, b *Binding, k int) (Match, bool) {
	if k == len(sp.Pats) {
		return Match{Positions: positions, Binding: b}, true
	}
	prev := positions[len(positions)-1]
	for j := prev + 1; j < len(p.Instrs); j++ {
		if sp.NoGaps && j != prev+1 {
			break
		}
		cand := b.clone()
		if sp.Pats[k].match(&p.Instrs[j], cand) {
			if sp.gapsClear(p, prev, j, cand) {
				if m, ok := sp.extend(p, append(append([]int(nil), positions...), j), cand, k+1); ok {
					return m, true
				}
			}
		}
		// Even when instruction j does not match (or the match fails
		// deeper), the scan may only continue past j if j itself does
		// not interfere with the protected bindings.
		if !sp.gapInstrClear(p, j, b) {
			break
		}
	}
	return Match{}, false
}

func (sp *SeqPattern) gapsClear(p *bytecode.Program, i, j int, b *Binding) bool {
	for k := i + 1; k < j; k++ {
		if !sp.gapInstrClearAt(p, k, b) {
			return false
		}
	}
	return true
}

func (sp *SeqPattern) gapInstrClear(p *bytecode.Program, k int, b *Binding) bool {
	return sp.gapInstrClearAt(p, k, b)
}

func (sp *SeqPattern) gapInstrClearAt(p *bytecode.Program, k int, b *Binding) bool {
	in := &p.Instrs[k]
	for _, pr := range sp.Protect {
		reg, ok := b.Regs[pr.Reg]
		if !ok {
			continue // variable not bound yet: nothing to protect
		}
		view, hasView := b.Views[pr.View]
		if hasView {
			if writesOverlap(in, reg, view) {
				return false
			}
			if !pr.WritesOnly && readsOverlap(in, reg, view) {
				return false
			}
			continue
		}
		// No view bound: protect the whole register.
		if in.WritesReg(reg) || (in.Op == bytecode.OpFree && in.Out.IsReg() && in.Out.Reg == reg) {
			return false
		}
		if !pr.WritesOnly && readsReg(in, reg) {
			return false
		}
	}
	return true
}

// Protected names a (register, view) binding pair that gap instructions
// must leave alone. WritesOnly permits gap reads (enough when the matched
// sequence only reads the binding itself).
type Protected struct {
	Reg, View  string
	WritesOnly bool
}
