package rewrite

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/chains"
	"bohrium/internal/tensor"
)

// PowerExpandRule implements the paper's equation (1): BH_POWER with an
// integral exponent becomes a chain of BH_MULTIPLYs (Listings 4/5). The
// chain strategy is configurable — the paper's square-then-increment
// Listing 5, the naive Listing 4, or the stronger binary/factor/optimal
// chains — and a cost-model guard keeps expansion profitable (design
// decision D2).
type PowerExpandRule struct {
	// Strategy picks the chain generator; zero means binary.
	Strategy chains.Strategy
	// MaxExponent bounds expansion; larger exponents keep BH_POWER.
	// Zero means DefaultMaxExponent.
	MaxExponent int64
	// DisableCostModel expands unconditionally (ablation E6/D2); by
	// default a chain is only emitted when its estimated sweeps cost
	// less than one BH_POWER sweep.
	DisableCostModel bool
	// AllowTemporaries permits chains that need scratch registers
	// (factor/optimal strategies); the paper's constraint §3.1 forbids
	// them by default because "copying data to create temporary tensors
	// would be time consuming".
	AllowTemporaries bool
}

// DefaultMaxExponent bounds power expansion: beyond this the chain code
// size outgrows any sweep savings.
const DefaultMaxExponent = 1024

// Name implements Rule.
func (r PowerExpandRule) Name() string { return "power-expand" }

// Apply implements Rule.
func (r PowerExpandRule) Apply(p *bytecode.Program) (int, error) {
	strategy := r.Strategy
	if strategy == 0 {
		strategy = chains.StrategyBinary
	}
	maxExp := r.MaxExponent
	if maxExp == 0 {
		maxExp = DefaultMaxExponent
	}

	total := 0
	for i := 0; i < len(p.Instrs); i++ {
		in := &p.Instrs[i]
		if in.Op != bytecode.OpPower || !in.Out.IsReg() || !in.In1.IsReg() || !in.In2.IsConst() {
			continue
		}
		c := in.In2.Const
		if !c.IsIntegral() || c.Int() < 2 || c.Int() > maxExp {
			continue
		}
		n := int(c.Int())

		chain, err := chains.Generate(strategy, n)
		if err != nil {
			return total, fmt.Errorf("power-expand: %w", err)
		}
		if !r.AllowTemporaries && !chain.TwoTensorSafe() {
			// Fall back to the best chain that honors the two-tensor
			// constraint.
			if chain, err = chains.Binary(n); err != nil {
				return total, fmt.Errorf("power-expand: %w", err)
			}
		}
		if !r.DisableCostModel {
			mulCost := bytecode.OpMultiply.Info().Cost
			powCost := bytecode.OpPower.Info().Cost
			if float64(chain.MultiplyCount())*mulCost >= powCost {
				continue
			}
		}

		seq, ok := r.emit(p, in, chain)
		if !ok {
			continue
		}
		replaceAt(p, i, seq...)
		i += len(seq) - 1
		total++
	}
	return total, nil
}

// emit lowers one POWER byte-code into its multiply chain. For two-tensor
// safe chains every step writes the result register; general chains
// allocate scratch registers per intermediate exponent and free them
// afterwards.
func (r PowerExpandRule) emit(p *bytecode.Program, in *bytecode.Instruction, chain chains.Chain) ([]bytecode.Instruction, bool) {
	src := in.In1 // origin tensor x (paper: a0)
	dst := in.Out // result tensor (paper: a1)
	sameReg := src.Reg == dst.Reg

	// In-place emission: every step writes the result register, reading
	// either it or the origin. If the result IS the origin, increment
	// steps (· x) would read an already-updated x, so only pure-doubling
	// chains qualify in that case.
	if chain.TwoTensorSafe() && (!sameReg || pureDoubling(chain)) {
		seq := make([]bytecode.Instruction, 0, len(chain))
		for _, s := range chain {
			in1, in2 := bytecode.Operand(dst), bytecode.Operand(dst)
			if s.I == 0 {
				in1 = src
			}
			if s.J == 0 {
				in2 = src
			}
			seq = append(seq, bytecode.Instruction{Op: bytecode.OpMultiply, Out: dst, In1: in1, In2: in2})
		}
		return seq, true
	}
	if !r.AllowTemporaries {
		return nil, false
	}

	// General chain: one scratch register per intermediate exponent, all
	// freed after the final multiply lands in the result register.
	ri, _ := p.Reg(dst.Reg)
	tempView := tensor.NewView(dst.View.Shape)
	loc := make([]bytecode.Operand, len(chain)+1)
	loc[0] = src
	var temps []bytecode.RegID
	for k := range chain {
		if k == len(chain)-1 {
			loc[k+1] = dst
			continue
		}
		t := p.NewReg(ri.DType, tempView.Size())
		temps = append(temps, t)
		loc[k+1] = bytecode.Reg(t, tempView)
	}
	seq := make([]bytecode.Instruction, 0, len(chain)+len(temps))
	for k, s := range chain {
		seq = append(seq, bytecode.Instruction{
			Op: bytecode.OpMultiply, Out: loc[k+1], In1: loc[s.I], In2: loc[s.J],
		})
	}
	for _, t := range temps {
		seq = append(seq, bytecode.Instruction{Op: bytecode.OpFree, Out: bytecode.Reg(t, tempView)})
	}
	return seq, true
}

// pureDoubling reports whether every chain step squares the running result
// (n is a power of two) — the only chains safe when origin == result.
func pureDoubling(c chains.Chain) bool {
	for k, s := range c {
		if !(s.I == k && s.J == k) {
			return false
		}
	}
	return true
}
