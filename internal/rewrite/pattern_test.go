package rewrite

import (
	"testing"

	"bohrium/internal/bytecode"
)

func TestPatternMatchesAdjacentAdds(t *testing.T) {
	p := bytecode.MustParse(`
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`)
	m, ok := addMergePattern.Find(p)
	if !ok {
		t.Fatal("no match on Listing 2 adds")
	}
	if m.Positions[0] != 1 || m.Positions[1] != 2 {
		t.Errorf("positions = %v, want [1 2]", m.Positions)
	}
	if m.Binding.Consts["c1"].Int() != 1 || m.Binding.Consts["c2"].Int() != 1 {
		t.Error("constants not bound")
	}
	if m.Binding.Regs["r"] != 0 {
		t.Error("register not bound")
	}
}

func TestPatternMatchesAcrossUnrelatedGap(t *testing.T) {
	// An unrelated byte-code on a different register sits between the two
	// adds; gap tolerance (D1) must still find the pair.
	p := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 10
BH_IDENTITY a0 0
BH_IDENTITY a1 0
BH_ADD a0 a0 1
BH_MULTIPLY a1 a1 2.0
BH_ADD a0 a0 2
BH_SYNC a0
BH_SYNC a1
`)
	m, ok := addMergePattern.Find(p)
	if !ok {
		t.Fatal("gap-tolerant match failed")
	}
	if m.Positions[0] != 2 || m.Positions[1] != 4 {
		t.Errorf("positions = %v, want [2 4]", m.Positions)
	}
}

func TestPatternBlockedByInterferingGap(t *testing.T) {
	// A SYNC of the target register between the adds observes the
	// intermediate value: merging would change observable behaviour.
	p := bytecode.MustParse(`
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 1
BH_SYNC a0
BH_ADD a0 a0 2
`)
	if _, ok := addMergePattern.Find(p); ok {
		t.Error("matched across an observing SYNC")
	}
}

func TestPatternBlockedByOverlappingWrite(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 1
BH_MULTIPLY a0 a0 3.0
BH_ADD a0 a0 2
`)
	if _, ok := addMergePattern.Find(p); ok {
		t.Error("matched across an intervening write to the same view")
	}
}

func TestPatternAllowsDisjointViewGap(t *testing.T) {
	// The gap instruction writes a DIFFERENT half of the same register:
	// view-granular interference must allow the merge of the full-view...
	// no — here the adds target the first half and the gap writes the
	// second half, so they commute.
	p := bytecode.MustParse(`
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 [0:5:1] a0 [0:5:1] 1
BH_ADD a0 [5:10:1] a0 [5:10:1] 9
BH_ADD a0 [0:5:1] a0 [0:5:1] 2
BH_SYNC a0
`)
	m, ok := addMergePattern.Find(p)
	if !ok {
		t.Fatal("disjoint-view gap blocked a valid merge")
	}
	if m.Positions[0] != 1 || m.Positions[1] != 3 {
		t.Errorf("positions = %v, want [1 3]", m.Positions)
	}
}

func TestPatternNoGapsMode(t *testing.T) {
	pat := addMergePattern
	pat.NoGaps = true
	p := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 10
BH_IDENTITY a0 0
BH_IDENTITY a1 0
BH_ADD a0 a0 1
BH_MULTIPLY a1 a1 2.0
BH_ADD a0 a0 2
`)
	if _, ok := pat.Find(p); ok {
		t.Error("NoGaps pattern matched across a gap")
	}
	q := bytecode.MustParse(`
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 1
BH_ADD a0 a0 2
`)
	if _, ok := pat.Find(q); !ok {
		t.Error("NoGaps pattern missed adjacent match")
	}
}

func TestBindingConsistency(t *testing.T) {
	// Two adds on DIFFERENT registers must not match a pattern whose
	// variable "r" appears in both.
	p := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 10
BH_IDENTITY a0 0
BH_IDENTITY a1 0
BH_ADD a0 a0 1
BH_ADD a1 a1 2
`)
	if _, ok := addMergePattern.Find(p); ok {
		t.Error("pattern bound one variable to two registers")
	}
}

func TestBindingViewConsistency(t *testing.T) {
	// Same register, different views: variable "v" must not unify.
	p := bytecode.MustParse(`
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 [0:5:1] a0 [0:5:1] 1
BH_ADD a0 [5:10:1] a0 [5:10:1] 2
`)
	if _, ok := addMergePattern.Find(p); ok {
		t.Error("pattern unified two different views")
	}
}

func TestConstPredFilter(t *testing.T) {
	pat := SeqPattern{
		Pats: []InstrPattern{{
			Ops: []bytecode.Opcode{bytecode.OpPower},
			Out: RegOp("o", "vo"), In1: RegOp("x", "vx"),
			In2: ConstWhere("n", func(c bytecode.Constant) bool { return c.IsIntegral() && c.Int() >= 2 }),
		}},
	}
	match := bytecode.MustParse(`
.reg a0 float64 4
.reg a1 float64 4
BH_IDENTITY a0 2.0
BH_POWER a1 a0 10
`)
	if _, ok := pat.Find(match); !ok {
		t.Error("integral exponent not matched")
	}
	noMatch := bytecode.MustParse(`
.reg a0 float64 4
.reg a1 float64 4
BH_IDENTITY a0 2.0
BH_POWER a1 a0 2.5
`)
	if _, ok := pat.Find(noMatch); ok {
		t.Error("fractional exponent matched integral pattern")
	}
}

func TestWritesOnlyProtection(t *testing.T) {
	// solvePattern protects A writes-only: a gap READ of A (the add into
	// a5) must not block the match.
	p := bytecode.MustParse(`
.reg a0 float64 9
.reg a1 float64 9
.reg a2 float64 3
.reg a3 float64 3
.reg a5 float64 9
.in a0
.in a2
BH_INVERSE a1 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_ADD a5 [0:9:1] a0 [0:9:1] 1.0
BH_MATMUL a3 [0:3:1][0:1:1] a1 [0:9:3][0:3:1] a2 [0:3:1][0:1:1]
BH_SYNC a3
BH_SYNC a5
`)
	if _, ok := solvePattern.Find(p); !ok {
		t.Error("gap read of A blocked the solve pattern")
	}
	// But a gap WRITE to A must block it.
	q := bytecode.MustParse(`
.reg a0 float64 9
.reg a1 float64 9
.reg a2 float64 3
.reg a3 float64 3
.in a0
.in a2
BH_INVERSE a1 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_ADD a0 [0:9:1] a0 [0:9:1] 1.0
BH_MATMUL a3 [0:3:1][0:1:1] a1 [0:9:3][0:3:1] a2 [0:3:1][0:1:1]
BH_SYNC a3
`)
	if _, ok := solvePattern.Find(q); ok {
		t.Error("gap write to A did not block the solve pattern")
	}
}

func TestDeadAfter(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 4
.reg a1 float64 4
BH_IDENTITY a0 1
BH_IDENTITY a1 2
BH_ADD a0 a0 a1
BH_SYNC a0
`)
	if DeadAfter(p, 1, 1) {
		t.Error("a1 reported dead before its read at instr 2")
	}
	if !DeadAfter(p, 2, 1) {
		t.Error("a1 reported live after its last read")
	}
	if DeadAfter(p, 2, 0) {
		t.Error("a0 reported dead before its SYNC")
	}
	if !DeadAfter(p, 3, 0) {
		t.Error("a0 reported live after its SYNC (no later reads)")
	}
}

func TestDeadAfterInputStaysLive(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 4
.in a0
BH_ADD a0 a0 1
`)
	if DeadAfter(p, 0, 0) {
		t.Error("externally bound input register reported dead")
	}
}

func TestDeadAfterFreeKills(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 4
BH_IDENTITY a0 1
BH_FREE a0
`)
	if !DeadAfter(p, 0, 0) {
		t.Error("freed register reported live")
	}
}
