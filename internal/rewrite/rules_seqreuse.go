package rewrite

import (
	"bohrium/internal/bytecode"
)

// ReuseRule eliminates a *recomputation* of an expensive sweep by
// substituting the earlier result register for the duplicate's — the
// zero-copy sibling of CommonSubexprRule, built for the combined batches
// the cross-plan deferral path produces. When a session streams the same
// batch twice (A, A) and the front end submits them as one program, the
// second half recomputes every value the first half just computed and
// freed; CSE cannot reach across the boundary because the BH_FREE of the
// first half's temporaries counts as a write. This rule may sink exactly
// one such BH_FREE past the duplicate: the first result stays alive
// until the point where the duplicate's result died, so register
// lifetimes — and therefore the front end's register recycling and the
// batch fingerprints of later iterations — are exactly what the
// unoptimized program produced.
//
// Legality (all conditions conservative):
//   - the producer is an expensive elementwise byte-code (cost ≥ MinCost)
//     or any reduction/scan sweep, is not in-place, and the duplicate
//     repeats it bit-for-bit: same opcode, same axis, same operands, same
//     output view (deterministic kernels make the results bitwise equal);
//   - between producer and duplicate nothing writes the producer's inputs
//     or its result — except at most one BH_FREE of the result, which is
//     the free this rule sinks;
//   - the duplicate's result register is fresh (never referenced before
//     the duplicate, not an external input or output) and after the
//     duplicate is only *read* through the producer's output view, then
//     freed at most once;
//   - if the producer's result was freed in the gap, the duplicate's
//     result must be freed too (the sink target); the producer's result
//     must not be written after the duplicate before that point.
//
// The rewrite deletes the duplicate, redirects every later read of its
// result to the producer's, and swaps the sunk BH_FREE for the
// duplicate's BH_FREE — one sweep instead of two, no copies inserted.
type ReuseRule struct {
	// MinCost is the minimum elementwise op cost worth deduplicating;
	// zero means 4 (DIVIDE and up). Reductions and scans always qualify:
	// removing one removes a whole sweep at zero copy cost.
	MinCost float64
}

// Name implements Rule.
func (ReuseRule) Name() string { return "seq-reuse" }

// Apply implements Rule.
func (r ReuseRule) Apply(p *bytecode.Program) (int, error) {
	minCost := r.MinCost
	if minCost == 0 {
		minCost = 4
	}
	total := 0
	// Each firing rewrites the program, so rescan from the top until no
	// duplicate remains; the instruction count strictly shrinks, bounding
	// the loop.
	for r.applyOnce(p, minCost) {
		total++
	}
	return total, nil
}

// applyOnce finds and rewrites the first duplicate sweep, reporting
// whether it fired.
func (r ReuseRule) applyOnce(p *bytecode.Program, minCost float64) bool {
	for i := 0; i < len(p.Instrs); i++ {
		first := &p.Instrs[i]
		if !reusableSweep(first, minCost) {
			continue
		}
		if first.ReadsReg(first.Out.Reg) {
			continue // in-place update: the "inputs" change at i itself
		}
		if r.tryFrom(p, i) {
			return true
		}
	}
	return false
}

// reusableSweep reports whether in is a deterministic sweep expensive
// enough to deduplicate.
func reusableSweep(in *bytecode.Instruction, minCost float64) bool {
	if !in.Out.IsReg() {
		return false
	}
	info := in.Op.Info()
	switch info.Kind {
	case bytecode.KindReduction, bytecode.KindScan:
		return true
	default:
		return in.Op.Elementwise() && info.Cost >= minCost
	}
}

// tryFrom scans forward from producer i for a duplicate it can eliminate.
func (r ReuseRule) tryFrom(p *bytecode.Program, i int) bool {
	first := &p.Instrs[i]
	pr := first.Out.Reg
	outView := first.Out.View
	sunkFree := -1 // index of the single sinkable BH_FREE of pr, if any
	for j := i + 1; j < len(p.Instrs); j++ {
		second := &p.Instrs[j]
		if sameSweep(first, second) && second.Out.IsReg() && second.Out.Reg != pr &&
			second.Out.View.Equal(outView) && r.rewriteDup(p, i, j, sunkFree) {
			return true
		}
		// The gap must leave the producer's result and inputs untouched —
		// except one BH_FREE of the result, which the rewrite can sink.
		if writesOverlap(second, pr, outView) {
			if second.Op == bytecode.OpFree && sunkFree < 0 {
				sunkFree = j
				continue
			}
			return false
		}
		for _, opnd := range first.Inputs() {
			if opnd.IsReg() && writesOverlap(second, opnd.Reg, opnd.View) {
				return false
			}
		}
	}
	return false
}

// sameSweep reports whether two instructions perform the identical sweep:
// sameComputation plus axis agreement (reductions and scans of different
// axes share operands but not results).
func sameSweep(a, b *bytecode.Instruction) bool {
	return a.Op == b.Op && a.Axis == b.Axis && sameComputation(a, b)
}

// rewriteDup validates the duplicate at j against producer i and, when
// every condition holds, performs the substitution. sunkFree is the index
// of the BH_FREE of the producer's result sitting between i and j, or -1.
func (r ReuseRule) rewriteDup(p *bytecode.Program, i, j, sunkFree int) bool {
	first := &p.Instrs[i]
	pr := first.Out.Reg
	q := p.Instrs[j].Out.Reg
	outView := first.Out.View
	if p.IsInput(q) || p.IsOutput(q) {
		return false
	}
	// q must be fresh: no instruction before the duplicate may reference
	// it (reads, writes, BH_FREE and BH_SYNC all count).
	for k := 0; k < j; k++ {
		in := &p.Instrs[k]
		if in.ReadsReg(q) || (in.Out.IsReg() && in.Out.Reg == q) {
			return false
		}
	}
	// After the duplicate, q may only be read through the producer's
	// output view and freed at most once; pr must not be written again
	// before q's last use (its value must stay what the producer wrote).
	type site struct {
		idx int
		in2 bool
	}
	var reads []site
	qFree := -1
	prTouched := false // pr written or freed somewhere after j
	for k := j + 1; k < len(p.Instrs); k++ {
		in := &p.Instrs[k]
		if in.Out.IsReg() && in.Out.Reg == q {
			if in.Op != bytecode.OpFree || qFree >= 0 {
				return false // rewrite, sync or double free of q
			}
			qFree = k
			continue
		}
		if qFree >= 0 && in.ReadsReg(q) {
			return false // use after free (invalid input; just bail)
		}
		if in.In1.IsReg() && in.In1.Reg == q {
			if prTouched || !in.In1.View.Equal(outView) {
				return false // pr no longer holds the value here
			}
			reads = append(reads, site{k, false})
		}
		if in.In2.IsReg() && in.In2.Reg == q {
			if prTouched || !in.In2.View.Equal(outView) {
				return false
			}
			reads = append(reads, site{k, true})
		}
		if in.Out.IsReg() && in.Out.Reg == pr && in.Op != bytecode.OpSync {
			// In the sink case pr's free lands where q died, so nothing
			// may touch pr after the duplicate at all; otherwise later
			// writes are fine as long as no redirected read follows
			// (checked above via prTouched — an instruction that both
			// reads q and writes pr reads before it writes, elementwise
			// style, so its own read is still safe).
			if sunkFree >= 0 {
				return false
			}
			prTouched = true
		}
	}
	if sunkFree >= 0 && qFree < 0 {
		// The producer's result died in the gap but the duplicate's never
		// dies: sinking the free would extend pr's lifetime to program
		// end and change the register's fate. Not worth distorting
		// recycling for.
		return false
	}
	// All conditions hold — rewrite. Substitutions first (indices are
	// stable), then the free swap, then deletions in descending order.
	for _, s := range reads {
		if s.in2 {
			p.Instrs[s.idx].In2.Reg = pr
		} else {
			p.Instrs[s.idx].In1.Reg = pr
		}
	}
	drop := []int{j}
	if sunkFree >= 0 {
		// pr's free sinks to where q died: rewrite q's BH_FREE into pr's
		// (keeping pr's original free operand) and delete the early one.
		p.Instrs[qFree].Out = p.Instrs[sunkFree].Out
		drop = append(drop, sunkFree)
	} else if qFree >= 0 {
		// pr stays live past q's death anyway; q's free just disappears.
		drop = append(drop, qFree)
	}
	// Descending order keeps the remaining indices valid.
	for a := 0; a < len(drop); a++ {
		for b := a + 1; b < len(drop); b++ {
			if drop[b] > drop[a] {
				drop[a], drop[b] = drop[b], drop[a]
			}
		}
	}
	for _, idx := range drop {
		removeAt(p, idx)
	}
	return true
}
