package rewrite

import (
	"testing"

	"bohrium/internal/bytecode"
)

// combinedPowerBatch is the program the cross-plan deferral path submits
// for two iterations of the power-accumulate stream: each half computes
// x^10, reduces it, accumulates the scalar, and frees its temporaries.
// CSE cannot merge the halves (the BH_FREEs between them count as
// writes); seq-reuse must collapse them to one power sweep and one
// reduction.
const combinedPowerBatch = `
.reg a0 float64 10
.reg a1 float64 10
.reg a2 float64 1
.reg a3 float64 1
.reg a4 float64 10
.reg a5 float64 1
.in a0
.in a3
.out a3
BH_POWER a1 a0 10.0
BH_ADD_REDUCE a2 a1 axis=0
BH_ADD a3 a3 a2
BH_FREE a1
BH_FREE a2
BH_POWER a4 a0 10.0
BH_ADD_REDUCE a5 a4 axis=0
BH_ADD a3 a3 a5
BH_FREE a4
BH_FREE a5
`

func countOps(p *bytecode.Program, op bytecode.Opcode) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op == op {
			n++
		}
	}
	return n
}

func TestSeqReuseCollapsesDuplicateHalves(t *testing.T) {
	p := bytecode.MustParse(combinedPowerBatch)
	report, err := NewPipeline(ReuseRule{}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalApplied() != 2 {
		t.Errorf("applied %d rewrites, want 2 (power pair, reduce pair)", report.TotalApplied())
	}
	if got := len(p.Instrs); got != 6 {
		t.Fatalf("program has %d instructions, want 6:\n%s", got, p)
	}
	if n := countOps(p, bytecode.OpPower); n != 1 {
		t.Errorf("%d BH_POWER left, want 1:\n%s", n, p)
	}
	if n := countOps(p, bytecode.OpAddReduce); n != 1 {
		t.Errorf("%d BH_ADD_REDUCE left, want 1:\n%s", n, p)
	}
	if n := countOps(p, bytecode.OpAdd); n != 2 {
		t.Errorf("%d BH_ADD left, want 2 (the accumulation runs twice):\n%s", n, p)
	}
	// Register fate must match the unoptimized batch: both surviving
	// temporaries freed exactly once, duplicates gone entirely.
	frees := map[bytecode.RegID]int{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == bytecode.OpFree {
			frees[in.Out.Reg]++
		}
		if in.ReadsReg(4) || in.ReadsReg(5) || (in.Out.IsReg() && (in.Out.Reg == 4 || in.Out.Reg == 5)) {
			t.Errorf("instruction %d still references a duplicate register:\n%s", i, p)
		}
	}
	if frees[1] != 1 || frees[2] != 1 {
		t.Errorf("frees = %v, want a1 and a2 freed exactly once", frees)
	}
}

func TestSeqReuseBlockedBySyncedDuplicate(t *testing.T) {
	// The duplicate's result is materialized for an observer: redirecting
	// it would leave the SYNC pointing at a register the rewrite retired.
	p := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 1
.reg a2 float64 1
.in a0
BH_ADD_REDUCE a1 a0 axis=0
BH_ADD_REDUCE a2 a0 axis=0
BH_SYNC a2
BH_FREE a1
BH_FREE a2
`)
	report, err := NewPipeline(ReuseRule{}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalApplied() != 0 {
		t.Errorf("applied %d rewrites across a SYNC of the duplicate, want 0", report.TotalApplied())
	}
}

func TestSeqReuseBlockedByInputWrite(t *testing.T) {
	// The shared input changes between the two sweeps: they are not the
	// same computation.
	p := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 10
.reg a2 float64 10
.in a0
BH_POWER a1 a0 10.0
BH_ADD a0 a0 1.0
BH_POWER a2 a0 10.0
BH_FREE a1
BH_FREE a2
`)
	report, err := NewPipeline(ReuseRule{}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalApplied() != 0 {
		t.Errorf("applied %d rewrites across a write to the shared input, want 0", report.TotalApplied())
	}
}

func TestSeqReuseAxisMismatchIsNotADuplicate(t *testing.T) {
	// Same opcode, same operands, same output shape — but different
	// reduction axes produce different values on a square input.
	p := bytecode.MustParse(`
.reg a0 float64 4
.reg a1 float64 2
.reg a2 float64 2
.in a0
BH_ADD_REDUCE a1 [0:2:1] a0 [0:2:2][0:2:1] axis=0
BH_ADD_REDUCE a2 [0:2:1] a0 [0:2:2][0:2:1] axis=1
BH_FREE a1
BH_FREE a2
`)
	report, err := NewPipeline(ReuseRule{}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalApplied() != 0 {
		t.Errorf("applied %d rewrites across an axis mismatch, want 0", report.TotalApplied())
	}
}

func TestSeqReuseWithoutGapFree(t *testing.T) {
	// The producer's result stays live past the duplicate: no free to
	// sink, the duplicate and its free simply vanish.
	p := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 1
.reg a2 float64 1
.reg a3 float64 1
.in a0
.out a3
BH_ADD_REDUCE a1 a0 axis=0
BH_ADD_REDUCE a2 a0 axis=0
BH_ADD a3 a1 a2
BH_FREE a1
BH_FREE a2
`)
	report, err := NewPipeline(ReuseRule{}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalApplied() != 1 {
		t.Fatalf("applied %d rewrites, want 1:\n%s", report.TotalApplied(), p)
	}
	if got := len(p.Instrs); got != 3 {
		t.Errorf("program has %d instructions, want 3:\n%s", got, p)
	}
	// a1 feeds both ADD operands now and keeps its single free.
	frees := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == bytecode.OpFree {
			frees++
			if in.Out.Reg != 1 {
				t.Errorf("free of a%d left, want only a1:\n%s", in.Out.Reg, p)
			}
		}
	}
	if frees != 1 {
		t.Errorf("%d frees left, want 1:\n%s", frees, p)
	}
}

func TestSequenceFusible(t *testing.T) {
	fusible := bytecode.MustParse(`
.reg a0 float64 10
.reg a1 float64 1
.in a0
BH_ADD_REDUCE a1 a0 axis=0
BH_FREE a1
`)
	if !SequenceFusible(fusible) {
		t.Error("plain sweep batch reported non-fusible")
	}
	synced := bytecode.MustParse(`
.reg a0 float64 10
.in a0
BH_SYNC a0
`)
	if SequenceFusible(synced) {
		t.Error("batch with BH_SYNC reported fusible")
	}
	ext := bytecode.MustParse(`
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 4
.in a0
.in a1
BH_MATMUL a2 [0:2:2][0:2:1] a0 [0:2:2][0:2:1] a1 [0:2:2][0:2:1]
`)
	if SequenceFusible(ext) {
		t.Error("batch with extension byte-code reported fusible")
	}
}
