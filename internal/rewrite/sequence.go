package rewrite

import "bohrium/internal/bytecode"

// SequenceFusible reports whether a recorded batch may legally be held
// back and combined with the next batch by the front end's cross-plan
// deferral (ARCHITECTURE.md, "Cross-plan fusion"). Two things disqualify
// a batch:
//
//   - BH_SYNC: a sync materializes a register for an external observer
//     at the flush boundary; deferring the batch would move that
//     observation point. The front end flushes immediately after every
//     sync anyway, so a deferred sync batch would also stall the
//     observer an extra iteration.
//   - Extension byte-codes (BH_MATMUL, BH_LU, BH_SOLVE, BH_INVERSE):
//     they execute as barriers on every backend, so a combined plan
//     gains nothing, and the out-of-core backend's segment planner
//     budgets them per batch.
//
// Everything else — elementwise sweeps, reductions, scans, frees — keeps
// identical semantics whether executed as two programs or one: batch
// boundaries are not observation points, and the differential suites
// hold the combined submission to bit-for-bit equality with the split
// one.
func SequenceFusible(p *bytecode.Program) bool {
	for i := range p.Instrs {
		op := p.Instrs[i].Op
		if op == bytecode.OpSync || op.Info().Kind == bytecode.KindExtension {
			return false
		}
	}
	return true
}
