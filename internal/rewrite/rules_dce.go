package rewrite

import (
	"bohrium/internal/bytecode"
)

// DeadCodeElimRule removes byte-codes whose results are never observed: a
// write to a register that no later byte-code reads, no BH_SYNC
// materializes, and that is not an externally bound input array. Liveness
// is tracked per register (conservatively — partial writes never kill
// liveness), scanning backwards from program end.
type DeadCodeElimRule struct{}

// Name implements Rule.
func (DeadCodeElimRule) Name() string { return "dead-code-elim" }

// Apply implements Rule.
func (DeadCodeElimRule) Apply(p *bytecode.Program) (int, error) {
	total := 0
	for {
		n := dcePass(p)
		total += n
		if n == 0 {
			return total, nil
		}
	}
}

func dcePass(p *bytecode.Program) int {
	live := make([]bool, len(p.Regs))
	for _, r := range p.Inputs {
		live[r] = true
	}
	for _, r := range p.Outputs {
		live[r] = true
	}
	dead := make([]bool, len(p.Instrs))
	for i := len(p.Instrs) - 1; i >= 0; i-- {
		in := &p.Instrs[i]
		switch in.Op {
		case bytecode.OpSync:
			live[in.Out.Reg] = true
			continue
		case bytecode.OpFree:
			// The value dies at the FREE: nothing between the last read
			// and the FREE needs it.
			live[in.Out.Reg] = false
			continue
		case bytecode.OpNone:
			continue
		}
		if !live[in.Out.Reg] {
			dead[i] = true
			continue
		}
		for _, opnd := range in.Inputs() {
			if opnd.IsReg() {
				live[opnd.Reg] = true
			}
		}
	}
	removed := 0
	kept := p.Instrs[:0]
	// Forward cleanup alongside the removal: dropping a dead write can
	// orphan a later BH_FREE (or BH_SYNC kept alive only formally) of a
	// now never-defined register; drop those too.
	defined := make([]bool, len(p.Regs))
	for _, r := range p.Inputs {
		defined[r] = true
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if dead[i] {
			removed++
			continue
		}
		switch in.Op {
		case bytecode.OpFree, bytecode.OpSync:
			if !defined[in.Out.Reg] {
				removed++
				continue
			}
			if in.Op == bytecode.OpFree {
				defined[in.Out.Reg] = false
			}
		default:
			if in.Out.IsReg() && in.Op != bytecode.OpNone {
				defined[in.Out.Reg] = true
			}
		}
		kept = append(kept, p.Instrs[i])
	}
	p.Instrs = kept
	return removed
}
