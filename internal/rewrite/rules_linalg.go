package rewrite

import (
	"bohrium/internal/bytecode"
)

// SolveRewriteRule implements the paper's equation (2): the sequence
//
//	BH_INVERSE aI ← aA
//	BH_MATMUL  aX ← aI, aB
//
// becomes BH_SOLVE aX ← aA, aB (an LU-factorized solve), provided the
// inverse is used for nothing else — "this is of course only faster, if we
// do not use the A⁻¹ tensor for anything else in our computations". The
// liveness gate (design decision D3) enforces exactly that: the rewrite
// fires only when aI is dead after the matmul.
type SolveRewriteRule struct {
	// DisableLivenessCheck applies the rewrite even when the inverse
	// register stays live. Only the D3 ablation test uses it — the
	// pipeline validator will reject the resulting program when the
	// inverse's consumers lose their defining byte-code.
	DisableLivenessCheck bool
}

// Name implements Rule.
func (SolveRewriteRule) Name() string { return "inverse-to-solve" }

var solvePattern = SeqPattern{
	Pats: []InstrPattern{
		{
			Ops: []bytecode.Opcode{bytecode.OpInverse},
			Out: RegOp("inv", "vinv"), In1: RegOp("A", "vA"), In2: Absent,
		},
		{
			Ops: []bytecode.Opcode{bytecode.OpMatmul},
			Out: RegOp("x", "vx"), In1: RegOp("inv", "vinv"), In2: RegOp("B", "vB"),
		},
	},
	Protect: []Protected{
		// Nothing may read or write the inverse in the gap (a reader
		// would observe a value the rewrite deletes).
		{Reg: "inv", View: "vinv"},
		// A must hold the same value at the matmul as at the inverse;
		// gap reads of A are harmless.
		{Reg: "A", View: "vA", WritesOnly: true},
	},
}

// Apply implements Rule.
func (r SolveRewriteRule) Apply(p *bytecode.Program) (int, error) {
	total := 0
	for from := 0; ; {
		m, ok := solvePattern.FindFrom(p, from)
		if !ok {
			return total, nil
		}
		i, j := m.Positions[0], m.Positions[1]
		invReg := m.Binding.Regs["inv"]

		if !r.DisableLivenessCheck && !DeadAfter(p, j, invReg) {
			// A⁻¹ is reused later; keep the explicit inverse.
			from = i + 1
			continue
		}

		inv := p.Instrs[i]
		matmul := p.Instrs[j]
		p.Instrs[j] = bytecode.Instruction{
			Op:  bytecode.OpSolve,
			Out: matmul.Out,
			In1: inv.In1,    // A
			In2: matmul.In2, // B
		}
		removeAt(p, i)
		total++
		// Deleting the inverse's only definition would orphan a later
		// BH_FREE of that register; drop the first such FREE before any
		// redefinition.
		for k := j - 1; k < len(p.Instrs); k++ { // j-1: indices shifted by the removal
			in := &p.Instrs[k]
			if in.WritesReg(invReg) {
				break
			}
			if in.Op == bytecode.OpFree && in.Out.IsReg() && in.Out.Reg == invReg {
				removeAt(p, k)
				break
			}
		}
		from = 0
	}
}
