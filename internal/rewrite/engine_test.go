package rewrite

import (
	"errors"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
)

// brokenRule deliberately corrupts the program, to test the pipeline's
// validation attribution.
type brokenRule struct{}

func (brokenRule) Name() string { return "broken" }

func (brokenRule) Apply(p *bytecode.Program) (int, error) {
	if p.Len() == 0 {
		return 0, nil
	}
	// Point the first instruction's result at a non-existent register.
	p.Instrs[0].Out.Reg = bytecode.RegID(len(p.Regs) + 5)
	return 1, nil
}

// failingRule returns an error directly.
type failingRule struct{}

func (failingRule) Name() string { return "failing" }

func (failingRule) Apply(p *bytecode.Program) (int, error) {
	return 0, errors.New("synthetic failure")
}

// oscillatingRule flips an ADD to SUBTRACT and back, never converging.
type oscillatingRule struct{}

func (oscillatingRule) Name() string { return "oscillating" }

func (oscillatingRule) Apply(p *bytecode.Program) (int, error) {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case bytecode.OpAdd:
			in.Op = bytecode.OpSubtract
			return 1, nil
		case bytecode.OpSubtract:
			in.Op = bytecode.OpAdd
			return 1, nil
		}
	}
	return 0, nil
}

func TestPipelineAttributesInvalidProgram(t *testing.T) {
	p := bytecode.MustParse(listing2)
	pl := NewPipeline(brokenRule{})
	_, err := pl.Run(p)
	if err == nil {
		t.Fatal("pipeline accepted a corrupted program")
	}
	if !errors.Is(err, ErrRewrite) {
		t.Errorf("error %v is not ErrRewrite", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the culprit rule: %v", err)
	}
}

func TestPipelinePropagatesRuleError(t *testing.T) {
	p := bytecode.MustParse(listing2)
	_, err := NewPipeline(failingRule{}).Run(p)
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("rule error lost: %v", err)
	}
}

func TestPipelineMaxPassesBoundsOscillation(t *testing.T) {
	p := bytecode.MustParse(listing2)
	pl := NewPipeline(oscillatingRule{})
	pl.MaxPasses = 4
	report, err := pl.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if report.Passes != 4 {
		t.Errorf("ran %d passes, want the 4-pass bound", report.Passes)
	}
}

func TestPipelineValidateOff(t *testing.T) {
	p := bytecode.MustParse(listing2)
	pl := NewPipeline(brokenRule{})
	pl.Validate = false
	if _, err := pl.Run(p); err != nil {
		t.Errorf("validation disabled but error returned: %v", err)
	}
}

func TestBuildRespectsOptions(t *testing.T) {
	tests := []struct {
		name  string
		opts  Options
		rules int
	}{
		{"empty", Options{}, 0},
		{"fold only", Options{Fold: true}, 3},
		{"everything", DefaultOptions(), 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pl := Build(tt.opts)
			if got := len(pl.Rules()); got != tt.rules {
				t.Errorf("Build(%+v) has %d rules, want %d", tt.opts, got, tt.rules)
			}
		})
	}
}

func TestEmptyPipelineIsNoop(t *testing.T) {
	p := bytecode.MustParse(listing2)
	before := p.String()
	report, err := Build(Options{}).Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != before {
		t.Error("empty pipeline changed the program")
	}
	if report.TotalApplied() != 0 {
		t.Error("empty pipeline reported rewrites")
	}
	if report.Before.Instructions != report.After.Instructions {
		t.Error("metrics changed without rewrites")
	}
}

func TestReportString(t *testing.T) {
	p := bytecode.MustParse(listing2)
	report, err := Default().Run(p)
	if err != nil {
		t.Fatal(err)
	}
	s := report.String()
	if !strings.Contains(s, "byte-codes: 5 -> 2") {
		t.Errorf("report: %s", s)
	}
	if !strings.Contains(s, "add-merge") {
		t.Errorf("report misses rule stats: %s", s)
	}
}
