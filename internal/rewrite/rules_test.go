package rewrite

import (
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/chains"
)

func applyRule(t *testing.T, r Rule, src string) (*bytecode.Program, int) {
	t.Helper()
	p := bytecode.MustParse(src)
	n, err := r.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("rule %s produced invalid program: %v\n%s", r.Name(), err, p)
	}
	return p, n
}

const listing2 = `
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
`

func TestAddMergeListing2ToListing3(t *testing.T) {
	// The paper's flagship example: three BH_ADDs with constant 1 merge
	// into one BH_ADD with constant 3.
	p, n := applyRule(t, AddMergeRule{}, listing2)
	if n != 2 {
		t.Errorf("merged %d times, want 2", n)
	}
	if got := p.CountOp(bytecode.OpAdd); got != 1 {
		t.Errorf("BH_ADD count = %d, want 1", got)
	}
	add := p.Instrs[1]
	if add.Op != bytecode.OpAdd || add.In2.Const.Int() != 3 {
		t.Errorf("merged instruction = %s, want BH_ADD ... 3", add.String())
	}
	// Exact Listing 3 shape (plus views).
	want := "BH_ADD a0 [0:10:1] a0 [0:10:1] 3"
	if add.String() != want {
		t.Errorf("instr = %q, want %q", add.String(), want)
	}
}

func TestAddMergeSignedMix(t *testing.T) {
	p, _ := applyRule(t, AddMergeRule{}, `
.reg a0 float64 8
BH_IDENTITY a0 0
BH_ADD a0 a0 5
BH_SUBTRACT a0 a0 2
BH_ADD a0 a0 4
BH_SYNC a0
`)
	if got := p.Instrs[1].In2.Const.Int(); got != 7 {
		t.Errorf("net constant = %d, want 7 (5-2+4)", got)
	}
	if p.Instrs[1].Op != bytecode.OpAdd {
		t.Errorf("net op = %s, want BH_ADD", p.Instrs[1].Op)
	}
}

func TestAddMergeFloats(t *testing.T) {
	p, _ := applyRule(t, AddMergeRule{}, `
.reg a0 float64 8
BH_IDENTITY a0 0
BH_ADD a0 a0 0.5
BH_ADD a0 a0 0.25
BH_SYNC a0
`)
	if got := p.Instrs[1].In2.Const.Float(); got != 0.75 {
		t.Errorf("net float constant = %v, want 0.75", got)
	}
}

func TestAddMergeRespectsInterleavedReader(t *testing.T) {
	// a1 reads a0 between the adds: merge must not fire.
	p, n := applyRule(t, AddMergeRule{}, `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 0
BH_ADD a0 a0 1
BH_MULTIPLY a1 a0 2.0
BH_ADD a0 a0 1
BH_SYNC a0
BH_SYNC a1
`)
	if n != 0 {
		t.Errorf("merged across a reader of the target view (%d merges)\n%s", n, p)
	}
}

func TestAddMergeAcrossUnrelatedWork(t *testing.T) {
	_, n := applyRule(t, AddMergeRule{}, `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 0
BH_IDENTITY a1 0
BH_ADD a0 a0 1
BH_ADD a1 a1 10
BH_ADD a0 a0 1
BH_SYNC a0
BH_SYNC a1
`)
	if n != 1 {
		t.Errorf("gap-tolerant merge count = %d, want 1", n)
	}
}

func TestMulMergeCombos(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantOp  bytecode.Opcode
		wantVal float64
	}{
		{
			name: "mul mul float",
			src: `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_MULTIPLY a0 a0 2.0
BH_MULTIPLY a0 a0 3.0
BH_SYNC a0`,
			wantOp: bytecode.OpMultiply, wantVal: 6,
		},
		{
			name: "div div float",
			src: `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_DIVIDE a0 a0 2.0
BH_DIVIDE a0 a0 4.0
BH_SYNC a0`,
			wantOp: bytecode.OpDivide, wantVal: 8,
		},
		{
			name: "mul then div",
			src: `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_MULTIPLY a0 a0 6.0
BH_DIVIDE a0 a0 2.0
BH_SYNC a0`,
			wantOp: bytecode.OpMultiply, wantVal: 3,
		},
		{
			name: "div then mul",
			src: `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_DIVIDE a0 a0 4.0
BH_MULTIPLY a0 a0 6.0
BH_SYNC a0`,
			wantOp: bytecode.OpMultiply, wantVal: 1.5,
		},
		{
			name: "int mul mul",
			src: `
.reg a0 int64 4
BH_IDENTITY a0 1
BH_MULTIPLY a0 a0 3
BH_MULTIPLY a0 a0 5
BH_SYNC a0`,
			wantOp: bytecode.OpMultiply, wantVal: 15,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, n := applyRule(t, MulMergeRule{}, tt.src)
			if n != 1 {
				t.Fatalf("merge count = %d, want 1\n%s", n, p)
			}
			got := p.Instrs[1]
			if got.Op != tt.wantOp || got.In2.Const.Float() != tt.wantVal {
				t.Errorf("merged = %s, want %s with %v", got.String(), tt.wantOp, tt.wantVal)
			}
		})
	}
}

func TestMulMergeIntDivSkipped(t *testing.T) {
	// Truncating integer division does not compose with multiplication.
	_, n := applyRule(t, MulMergeRule{}, `
.reg a0 int64 4
BH_IDENTITY a0 100
BH_DIVIDE a0 a0 7
BH_MULTIPLY a0 a0 7
BH_SYNC a0
`)
	if n != 0 {
		t.Error("merged int DIV/MUL pair (not semantics-preserving)")
	}
}

func TestIdentityFoldCollapsesListing2Head(t *testing.T) {
	p, n := applyRule(t, IdentityFoldRule{}, `
.reg a0 float64 10
BH_IDENTITY a0 0
BH_ADD a0 a0 3
BH_SYNC a0
`)
	if n != 1 {
		t.Fatalf("fold count = %d, want 1", n)
	}
	if p.Len() != 2 || p.Instrs[0].In1.Const.Int() != 3 {
		t.Errorf("folded program:\n%s", p)
	}
}

func TestIdentityElimCases(t *testing.T) {
	tests := []struct {
		name     string
		line     string
		wantGone bool // instruction removed entirely
		wantOp   bytecode.Opcode
	}{
		{name: "add zero in place", line: "BH_ADD a0 a0 0", wantGone: true},
		{name: "sub zero in place", line: "BH_SUBTRACT a0 a0 0", wantGone: true},
		{name: "mul one in place", line: "BH_MULTIPLY a0 a0 1.0", wantGone: true},
		{name: "div one in place", line: "BH_DIVIDE a0 a0 1.0", wantGone: true},
		{name: "pow one in place", line: "BH_POWER a0 a0 1", wantGone: true},
		{name: "add zero copy", line: "BH_ADD a1 a0 0", wantOp: bytecode.OpIdentity},
		{name: "pow zero", line: "BH_POWER a1 a0 0", wantOp: bytecode.OpIdentity},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := `
.reg a0 float64 4
.reg a1 float64 4
BH_IDENTITY a0 5.0
` + tt.line + `
BH_SYNC a0
`
			p, n := applyRule(t, IdentityElimRule{}, src)
			if n != 1 {
				t.Fatalf("elim count = %d, want 1\n%s", n, p)
			}
			if tt.wantGone {
				if p.Len() != 2 {
					t.Errorf("program still has %d instrs:\n%s", p.Len(), p)
				}
				return
			}
			if p.Instrs[1].Op != tt.wantOp {
				t.Errorf("rewrote to %s, want %s", p.Instrs[1].Op, tt.wantOp)
			}
		})
	}
}

func TestIdentityElimMulZeroFloatKept(t *testing.T) {
	// 0·NaN = NaN: float multiply-by-zero must NOT fold to zero.
	_, n := applyRule(t, IdentityElimRule{}, `
.reg a0 float64 4
BH_IDENTITY a0 5.0
BH_MULTIPLY a0 a0 0.0
BH_SYNC a0
`)
	if n != 0 {
		t.Error("folded float x*0 to 0 (wrong for NaN/Inf)")
	}
}

func TestIdentityElimMulZeroIntFolds(t *testing.T) {
	p, n := applyRule(t, IdentityElimRule{}, `
.reg a0 int64 4
BH_IDENTITY a0 5
BH_MULTIPLY a0 a0 0
BH_SYNC a0
`)
	if n != 1 {
		t.Fatalf("int x*0 not folded")
	}
	if p.Instrs[1].Op != bytecode.OpIdentity || p.Instrs[1].In1.Const.Int() != 0 {
		t.Errorf("folded to %s, want IDENTITY 0", p.Instrs[1].String())
	}
}

func TestCanonicalize(t *testing.T) {
	p := bytecode.MustParse(`
.reg a0 float64 4
BH_IDENTITY a0 1
BH_ADD a0 2 a0
BH_SUBTRACT a0 3 a0
BH_SYNC a0
`)
	n, err := (CanonicalizeRule{}).Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("canonicalized %d, want 1 (SUBTRACT is not commutative)", n)
	}
	add := p.Instrs[1]
	if !add.In1.IsReg() || !add.In2.IsConst() {
		t.Errorf("ADD not canonicalized: %s", add.String())
	}
	sub := p.Instrs[2]
	if !sub.In1.IsConst() {
		t.Errorf("SUBTRACT was swapped: %s", sub.String())
	}
}

const listing4 = `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 10
BH_SYNC a1
`

func TestPowerExpandListing5(t *testing.T) {
	// With the paper's square-increment strategy, x^10 becomes exactly
	// Listing 5: five BH_MULTIPLYs using only a0 and a1.
	p, n := applyRule(t, PowerExpandRule{Strategy: chains.StrategySquareIncrement}, listing4)
	if n != 1 {
		t.Fatalf("expand count = %d, want 1", n)
	}
	if got := p.CountOp(bytecode.OpMultiply); got != 5 {
		t.Errorf("BH_MULTIPLY count = %d, want 5 (Listing 5)", got)
	}
	if got := p.CountOp(bytecode.OpPower); got != 0 {
		t.Errorf("BH_POWER count = %d, want 0", got)
	}
	// Verify the exact listing shape: x^2, x^4, x^8, x^9, x^10 — each row
	// is (result reg, in1 reg, in2 reg).
	wantRegs := [][3]bytecode.RegID{
		{1, 0, 0}, // BH_MULTIPLY a1 a0 a0   x^2
		{1, 1, 1}, // BH_MULTIPLY a1 a1 a1   x^4
		{1, 1, 1}, // BH_MULTIPLY a1 a1 a1   x^8
		{1, 1, 0}, // BH_MULTIPLY a1 a1 a0   x^9
		{1, 1, 0}, // BH_MULTIPLY a1 a1 a0   x^10
	}
	for i, want := range wantRegs {
		in := p.Instrs[1+i]
		got := [3]bytecode.RegID{in.Out.Reg, in.In1.Reg, in.In2.Reg}
		if got != want {
			t.Errorf("chain instr %d regs = %v, want %v (%s)", i, got, want, in.String())
		}
	}
	if len(p.Regs) != 2 {
		t.Errorf("expansion allocated temporaries: %d registers", len(p.Regs))
	}
}

func TestPowerExpandBinaryBeatsPaper(t *testing.T) {
	p, _ := applyRule(t, PowerExpandRule{Strategy: chains.StrategyBinary}, listing4)
	if got := p.CountOp(bytecode.OpMultiply); got != 4 {
		t.Errorf("binary chain multiplies = %d, want 4", got)
	}
}

func TestPowerExpandNaiveListing4(t *testing.T) {
	p, _ := applyRule(t, PowerExpandRule{Strategy: chains.StrategyNaive, DisableCostModel: true}, listing4)
	if got := p.CountOp(bytecode.OpMultiply); got != 9 {
		t.Errorf("naive chain multiplies = %d, want 9 (Listing 4)", got)
	}
}

func TestPowerExpandCostModelKeepsPower(t *testing.T) {
	// Naive expansion of x^60 would cost 59 sweeps > 24 (BH_POWER cost):
	// with the cost model on, the POWER stays.
	src := `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 60
BH_SYNC a1
`
	p, n := applyRule(t, PowerExpandRule{Strategy: chains.StrategyNaive}, src)
	if n != 0 || p.CountOp(bytecode.OpPower) != 1 {
		t.Errorf("cost model failed to keep BH_POWER (n=%d)\n%s", n, p)
	}
	// Without the cost model it expands anyway (ablation D2).
	p2, n2 := applyRule(t, PowerExpandRule{Strategy: chains.StrategyNaive, DisableCostModel: true}, src)
	if n2 != 1 || p2.CountOp(bytecode.OpMultiply) != 59 {
		t.Errorf("ablation expansion wrong: n=%d, muls=%d", n2, p2.CountOp(bytecode.OpMultiply))
	}
}

func TestPowerExpandSkipsNonIntegral(t *testing.T) {
	src := `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 2.5
BH_SYNC a1
`
	_, n := applyRule(t, PowerExpandRule{}, src)
	if n != 0 {
		t.Error("expanded a fractional exponent")
	}
}

func TestPowerExpandInPlacePowerOfTwo(t *testing.T) {
	// out == in: only pure doubling chains are safe; x^8 in place works.
	src := `
.reg a0 float64 8
BH_IDENTITY a0 2.0
BH_POWER a0 a0 8
BH_SYNC a0
`
	p, n := applyRule(t, PowerExpandRule{}, src)
	if n != 1 || p.CountOp(bytecode.OpMultiply) != 3 {
		t.Errorf("in-place x^8: n=%d muls=%d, want 1, 3", n, p.CountOp(bytecode.OpMultiply))
	}
	// x^10 in place needs the origin later: must NOT expand.
	src10 := `
.reg a0 float64 8
BH_IDENTITY a0 2.0
BH_POWER a0 a0 10
BH_SYNC a0
`
	_, n10 := applyRule(t, PowerExpandRule{}, src10)
	if n10 != 0 {
		t.Error("expanded in-place x^10 (origin clobbered)")
	}
}

func TestPowerExpandWithTemporaries(t *testing.T) {
	// Factor chain for 15 needs a temporary; with AllowTemporaries the
	// rule allocates and frees scratch registers.
	src := `
.reg a0 float64 8
.reg a1 float64 8
BH_IDENTITY a0 2.0
BH_POWER a1 a0 15
BH_SYNC a1
`
	p, n := applyRule(t, PowerExpandRule{
		Strategy:         chains.StrategyOptimal,
		AllowTemporaries: true,
	}, src)
	if n != 1 {
		t.Fatal("no expansion")
	}
	if got := p.CountOp(bytecode.OpMultiply); got != 5 {
		t.Errorf("optimal chain for 15 uses %d muls, want 5", got)
	}
	if len(p.Regs) <= 2 {
		t.Error("expected temporary registers")
	}
	if p.CountOp(bytecode.OpFree) == 0 {
		t.Error("temporaries are never freed")
	}
}

func TestSolveRewriteFires(t *testing.T) {
	src := `
.reg a0 float64 9
.reg a1 float64 9
.reg a2 float64 3
.reg a3 float64 3
.in a0
.in a2
BH_INVERSE a1 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_MATMUL a3 [0:3:1][0:1:1] a1 [0:9:3][0:3:1] a2 [0:3:1][0:1:1]
BH_SYNC a3
`
	p, n := applyRule(t, SolveRewriteRule{}, src)
	if n != 1 {
		t.Fatalf("rewrite count = %d, want 1\n%s", n, p)
	}
	if p.CountOp(bytecode.OpSolve) != 1 || p.CountOp(bytecode.OpInverse) != 0 || p.CountOp(bytecode.OpMatmul) != 0 {
		t.Errorf("rewritten program:\n%s", p)
	}
	solve := p.Instrs[0]
	if solve.In1.Reg != 0 || solve.In2.Reg != 2 || solve.Out.Reg != 3 {
		t.Errorf("SOLVE operands wrong: %s", solve.String())
	}
}

func TestSolveRewriteBlockedWhenInverseLive(t *testing.T) {
	// The inverse is synced afterwards (observed): the paper's "only if
	// we do not use A⁻¹ for anything else" — no rewrite.
	src := `
.reg a0 float64 9
.reg a1 float64 9
.reg a2 float64 3
.reg a3 float64 3
.in a0
.in a2
BH_INVERSE a1 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_MATMUL a3 [0:3:1][0:1:1] a1 [0:9:3][0:3:1] a2 [0:3:1][0:1:1]
BH_SYNC a3
BH_SYNC a1
`
	_, n := applyRule(t, SolveRewriteRule{}, src)
	if n != 0 {
		t.Error("rewrote while A⁻¹ is still observed")
	}
}

func TestSolveRewriteRemovesOrphanFree(t *testing.T) {
	src := `
.reg a0 float64 9
.reg a1 float64 9
.reg a2 float64 3
.reg a3 float64 3
.in a0
.in a2
BH_INVERSE a1 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_MATMUL a3 [0:3:1][0:1:1] a1 [0:9:3][0:3:1] a2 [0:3:1][0:1:1]
BH_FREE a1
BH_SYNC a3
`
	p, n := applyRule(t, SolveRewriteRule{}, src)
	if n != 1 {
		t.Fatalf("rewrite did not fire\n%s", p)
	}
	if p.CountOp(bytecode.OpFree) != 0 {
		t.Errorf("orphan FREE survived:\n%s", p)
	}
}

func TestDCERemovesUnobservedChain(t *testing.T) {
	p, n := applyRule(t, DeadCodeElimRule{}, `
.reg a0 float64 4
.reg a1 float64 4
BH_IDENTITY a0 1
BH_IDENTITY a1 2
BH_ADD a1 a1 3
BH_SYNC a0
`)
	if n != 2 {
		t.Errorf("removed %d, want 2 (a1 chain unobserved)", n)
	}
	if p.CountOp(bytecode.OpIdentity) != 1 {
		t.Errorf("program:\n%s", p)
	}
}

func TestDCEKeepsSyncedAndInputs(t *testing.T) {
	_, n := applyRule(t, DeadCodeElimRule{}, `
.reg a0 float64 4
.reg a1 float64 4
.in a1
BH_IDENTITY a0 1
BH_ADD a1 a1 1
BH_SYNC a0
`)
	if n != 0 {
		t.Error("removed a synced or input-register write")
	}
}

func TestDCERemovesValueDeadAtFree(t *testing.T) {
	p, n := applyRule(t, DeadCodeElimRule{}, `
.reg a0 float64 4
BH_IDENTITY a0 1
BH_FREE a0
`)
	if n != 2 {
		t.Errorf("removed %d, want 2 (write dead at FREE, FREE then orphaned)", n)
	}
	if p.Len() != 0 {
		t.Errorf("program not empty:\n%s", p)
	}
}

func TestCSEDeduplicatesExpensiveOp(t *testing.T) {
	p, n := applyRule(t, CommonSubexprRule{}, `
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 4
BH_IDENTITY a0 2.0
BH_SQRT a1 a0
BH_SQRT a2 a0
BH_SYNC a1
BH_SYNC a2
`)
	if n != 1 {
		t.Fatalf("CSE count = %d, want 1\n%s", n, p)
	}
	if p.CountOp(bytecode.OpSqrt) != 1 || p.CountOp(bytecode.OpIdentity) != 2 {
		t.Errorf("program:\n%s", p)
	}
}

func TestCSESkipsCheapOps(t *testing.T) {
	_, n := applyRule(t, CommonSubexprRule{}, `
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 4
BH_IDENTITY a0 2.0
BH_ADD a1 a0 1
BH_ADD a2 a0 1
BH_SYNC a1
BH_SYNC a2
`)
	if n != 0 {
		t.Error("CSE rewrote a cheap ADD (copy costs the same sweep)")
	}
}

func TestCSEBlockedByInputClobber(t *testing.T) {
	_, n := applyRule(t, CommonSubexprRule{}, `
.reg a0 float64 4
.reg a1 float64 4
.reg a2 float64 4
BH_IDENTITY a0 2.0
BH_SQRT a1 a0
BH_ADD a0 a0 1
BH_SQRT a2 a0
BH_SYNC a1
BH_SYNC a2
`)
	if n != 0 {
		t.Error("CSE merged across a clobbered input")
	}
}

func TestDCERespectsOutputs(t *testing.T) {
	// A register marked as an external output (an array the front-end
	// still holds) must keep its defining writes even without a SYNC.
	p := bytecode.MustParse(`
.reg a0 float64 4
.reg a1 float64 4
.out a1
BH_IDENTITY a0 1
BH_IDENTITY a1 2
BH_ADD a1 a1 3
BH_SYNC a0
`)
	q := p.Clone()
	n, err := (DeadCodeElimRule{}).Apply(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("DCE removed %d instrs writing an output register:\n%s", n, q)
	}
	// Without the output mark the a1 chain is dead.
	p.Outputs = nil
	n, err = (DeadCodeElimRule{}).Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("DCE removed %d instrs, want 2 once the output mark is gone", n)
	}
}

func TestSolveRewriteRespectsOutputInverse(t *testing.T) {
	// The inverse register is an external output (user holds the array):
	// DeadAfter must report it live and the rewrite must not fire.
	src := `
.reg a0 float64 9
.reg a1 float64 9
.reg a2 float64 3
.reg a3 float64 3
.in a0
.in a2
.out a1
BH_INVERSE a1 [0:9:3][0:3:1] a0 [0:9:3][0:3:1]
BH_MATMUL a3 [0:3:1][0:1:1] a1 [0:9:3][0:3:1] a2 [0:3:1][0:1:1]
BH_SYNC a3
`
	_, n := applyRule(t, SolveRewriteRule{}, src)
	if n != 0 {
		t.Error("rewrite fired although the inverse is an external output")
	}
}
