package rewrite

import "bohrium/internal/chains"

// Options configures the standard optimization pipeline. The zero value
// enables everything with default parameters (see Default).
type Options struct {
	// Fold enables canonicalization plus the constant merge rules
	// (Listings 2→3).
	Fold bool
	// IdentityElim enables neutral-element elimination.
	IdentityElim bool
	// IdentityFold enables folding constant arithmetic into constant
	// initializations.
	IdentityFold bool
	// PowerExpand enables equation (1) power expansion.
	PowerExpand bool
	// PowerStrategy picks the chain generator (zero: binary).
	PowerStrategy chains.Strategy
	// PowerMaxExponent bounds expansion (zero: DefaultMaxExponent).
	PowerMaxExponent int64
	// PowerNoCostModel disables the D2 profitability guard.
	PowerNoCostModel bool
	// PowerAllowTemporaries permits scratch registers in chains.
	PowerAllowTemporaries bool
	// CSE enables common-subexpression reuse of expensive sweeps.
	CSE bool
	// SeqReuse enables zero-copy deduplication of repeated sweeps — the
	// rule that collapses the duplicate halves of cross-plan combined
	// batches (it can sink one BH_FREE, which CSE must treat as a write).
	SeqReuse bool
	// SolveRewrite enables the equation (2) inverse→solve rewrite.
	SolveRewrite bool
	// DCE enables dead-code elimination.
	DCE bool
	// MaxPasses bounds fixpoint iteration (zero: 10).
	MaxPasses int
}

// DefaultOptions enables the full pipeline with the paper-faithful
// defaults: binary chains (two-tensor safe), cost model on, liveness gate
// on.
func DefaultOptions() Options {
	return Options{
		Fold:         true,
		IdentityElim: true,
		IdentityFold: true,
		PowerExpand:  true,
		CSE:          true,
		SeqReuse:     true,
		SolveRewrite: true,
		DCE:          true,
	}
}

// Default returns the standard full pipeline.
func Default() *Pipeline { return Build(DefaultOptions()) }

// Build assembles a pipeline from options. Rule order within a pass:
// canonicalize first (so merges see constants in slot two), folds before
// power expansion (a folded exponent may become expandable), structural
// rewrites, then cleanup (CSE before DCE so orphaned duplicates die).
func Build(opts Options) *Pipeline {
	var rules []Rule
	if opts.Fold {
		rules = append(rules, CanonicalizeRule{}, AddMergeRule{}, MulMergeRule{})
	}
	if opts.IdentityFold {
		rules = append(rules, IdentityFoldRule{})
	}
	if opts.IdentityElim {
		rules = append(rules, IdentityElimRule{})
	}
	if opts.SeqReuse {
		// Before PowerExpand: a duplicated BH_POWER must be deduplicated
		// while it is still one recognizable sweep, not two independently
		// expanded multiply chains over distinct temporaries.
		rules = append(rules, ReuseRule{})
	}
	if opts.PowerExpand {
		rules = append(rules, PowerExpandRule{
			Strategy:         opts.PowerStrategy,
			MaxExponent:      opts.PowerMaxExponent,
			DisableCostModel: opts.PowerNoCostModel,
			AllowTemporaries: opts.PowerAllowTemporaries,
		})
	}
	if opts.SolveRewrite {
		rules = append(rules, SolveRewriteRule{})
	}
	if opts.CSE {
		rules = append(rules, CommonSubexprRule{})
	}
	if opts.DCE {
		rules = append(rules, DeadCodeElimRule{})
	}
	pl := NewPipeline(rules...)
	if opts.MaxPasses > 0 {
		pl.MaxPasses = opts.MaxPasses
	}
	return pl
}
