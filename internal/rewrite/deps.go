// Package rewrite implements the paper's contribution: algebraic
// transformation of byte-code sequences. A pattern matcher with binding
// variables finds rewritable sequences (tolerating interleaved unrelated
// byte-codes via interference analysis), rules rewrite them — constant
// merging (Listings 2→3), power expansion over addition chains (eq. (1),
// Listings 4–5), identity/dead-code cleanup, common-subexpression reuse,
// and the context-aware inverse→LU-solve rewrite of equation (2) — and a
// pass manager drives everything to a fixpoint under a cost model.
package rewrite

import (
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// Dataflow facts about single instructions. Views make this more precise
// than register granularity: two byte-codes touching disjoint halves of a
// register do not interfere, so a merge may commute across them.

// readsOverlap reports whether in reads register reg through a view
// overlapping view. BH_SYNC counts as a read (it materializes the register
// for an external observer); BH_FREE does not read.
func readsOverlap(in *bytecode.Instruction, reg bytecode.RegID, view tensor.View) bool {
	if in.Op == bytecode.OpSync {
		return in.Out.IsReg() && in.Out.Reg == reg && in.Out.View.Overlaps(view)
	}
	for _, opnd := range in.Inputs() {
		if opnd.IsReg() && opnd.Reg == reg && opnd.View.Overlaps(view) {
			return true
		}
	}
	return false
}

// writesOverlap reports whether in writes register reg through a view
// overlapping view. BH_FREE counts as a write (it destroys the value).
func writesOverlap(in *bytecode.Instruction, reg bytecode.RegID, view tensor.View) bool {
	switch in.Op {
	case bytecode.OpSync, bytecode.OpNone:
		return false
	case bytecode.OpFree:
		return in.Out.IsReg() && in.Out.Reg == reg
	default:
		return in.Out.IsReg() && in.Out.Reg == reg && in.Out.View.Overlaps(view)
	}
}

// touches reports whether in reads or writes (reg, view).
func touches(in *bytecode.Instruction, reg bytecode.RegID, view tensor.View) bool {
	return readsOverlap(in, reg, view) || writesOverlap(in, reg, view)
}

// readsReg reports whether in reads any element of reg.
func readsReg(in *bytecode.Instruction, reg bytecode.RegID) bool {
	if in.Op == bytecode.OpSync {
		return in.Out.IsReg() && in.Out.Reg == reg
	}
	return in.ReadsReg(reg)
}

// DeadAfter reports whether the value held by reg after instruction idx is
// dead: no later instruction reads it (BH_SYNC counts as a read), it is
// not an externally bound input array, or a BH_FREE destroys it before any
// read. Writes do not kill liveness (they may be partial), keeping the
// analysis conservative — "dead" is never wrongly reported, "live" may be.
//
// This is the guard the paper states for equation (2): the inverse→solve
// rewrite is "only faster, if we do not use the A⁻¹ tensor for anything
// else in our computations" — and only *correct* to apply silently if
// nothing else observes A⁻¹ at all.
func DeadAfter(p *bytecode.Program, idx int, reg bytecode.RegID) bool {
	for i := idx + 1; i < len(p.Instrs); i++ {
		in := &p.Instrs[i]
		if in.Op == bytecode.OpFree && in.Out.IsReg() && in.Out.Reg == reg {
			return true
		}
		if readsReg(in, reg) {
			return false
		}
	}
	// Reached program end: registers bound or still held by the
	// front-end remain observable.
	return !p.IsInput(reg) && !p.IsOutput(reg)
}

// pathClear reports whether no instruction strictly between positions i
// and j touches (reg, view) — the interference condition that lets two
// matched byte-codes be treated as adjacent despite interleaved unrelated
// code (design decision D1).
func pathClear(p *bytecode.Program, i, j int, reg bytecode.RegID, view tensor.View) bool {
	for k := i + 1; k < j; k++ {
		if touches(&p.Instrs[k], reg, view) {
			return false
		}
	}
	return true
}
