package backend

import (
	"math"
	"strings"
	"testing"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

func openTest(t *testing.T, name string, cfg Config) (Backend, *vm.Engine) {
	t.Helper()
	eng := vm.NewEngine(vm.EngineConfig{})
	b, err := Open(name, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close(); eng.Close() })
	return b, eng
}

func bindVec(t *testing.T, b Backend, r bytecode.RegID, vals []float64) {
	t.Helper()
	tt, err := tensor.FromFloat64s(vals, tensor.MustShape(len(vals)))
	if err != nil {
		t.Fatal(err)
	}
	b.Bind(r, tt)
}

func regVals(t *testing.T, b Backend, r bytecode.RegID, n int) []float64 {
	t.Helper()
	tt, ok := b.Tensor(r, tensor.NewView(tensor.MustShape(n)))
	if !ok {
		t.Fatalf("register %s has no buffer", r)
	}
	return tt.Float64Slice()
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 2 || names[0] != "inprocess" || names[1] != "outofcore" {
		t.Fatalf("Names() = %v, want [inprocess outofcore]", names)
	}
	eng := vm.NewEngine(vm.EngineConfig{})
	defer eng.Close()
	if _, err := Open("gpu", eng, Config{}); err == nil || !strings.Contains(err.Error(), `unknown backend "gpu"`) {
		t.Fatalf("Open(gpu) = %v, want unknown-backend error", err)
	}
	b, err := Open("", eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Name() != DefaultName {
		t.Fatalf("Open(\"\") opened %q, want %q", b.Name(), DefaultName)
	}
	if b.Capabilities().Chunked {
		t.Error("inprocess backend reports Chunked")
	}
}

// chainProg builds a program whose elementwise chain is chunkable and
// whose reduction is a barrier: a1 = sqrt(a0*a0 + c); a2 = a1*a0;
// a3 = sum(a2); free a1. a1 is read only inside the segment and freed
// after it, so the out-of-core backend treats it as a segment local.
func chainProg(n int, c float64) *bytecode.Program {
	p := bytecode.NewProgram()
	a0 := p.NewReg(tensor.Float64, n)
	a1 := p.NewReg(tensor.Float64, n)
	a2 := p.NewReg(tensor.Float64, n)
	a3 := p.NewReg(tensor.Float64, 1)
	v := tensor.NewView(tensor.MustShape(n))
	v1 := tensor.NewView(tensor.MustShape(1))
	p.MarkInput(a0)
	p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(a1, v), bytecode.Reg(a0, v), bytecode.Reg(a0, v))
	p.EmitBinary(bytecode.OpAdd, bytecode.Reg(a1, v), bytecode.Reg(a1, v), bytecode.Const(bytecode.ConstFloat(c)))
	p.EmitUnary(bytecode.OpSqrt, bytecode.Reg(a1, v), bytecode.Reg(a1, v))
	p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(a2, v), bytecode.Reg(a1, v), bytecode.Reg(a0, v))
	p.EmitReduce(bytecode.OpAddReduce, bytecode.Reg(a3, v1), bytecode.Reg(a2, v), 0)
	p.EmitFree(bytecode.Reg(a1, v))
	p.MarkOutput(a2)
	p.MarkOutput(a3)
	return p
}

func irregularVals(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i)*0.7)*3.25 + 0.125*float64(i%17)
	}
	return vals
}

func runChain(t *testing.T, name string, cfg Config, n int, fusion bool) ([]float64, []float64, vm.Stats) {
	t.Helper()
	cfg.VM.Fusion = fusion
	b, _ := openTest(t, name, cfg)
	prog := chainProg(n, 1.5)
	pl, err := b.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	bindVec(t, b, 0, irregularVals(n))
	if err := b.Execute(pl); err != nil {
		t.Fatal(err)
	}
	return regVals(t, b, 2, n), regVals(t, b, 3, 1), b.Stats()
}

// TestDifferentialChunked pins out-of-core ≡ in-process bit-for-bit over
// an array far larger than the chunk budget, fused and unfused, including
// a tail chunk that does not divide evenly.
func TestDifferentialChunked(t *testing.T) {
	const chunkBytes = 4096 // 512 float64 per tile
	for _, n := range []int{10000, 1000, 512, 511, 3} {
		for _, fusion := range []bool{true, false} {
			ref2, ref3, _ := runChain(t, "inprocess", Config{}, n, fusion)
			got2, got3, st := runChain(t, "outofcore", Config{ChunkBytes: chunkBytes}, n, fusion)
			for i := range ref2 {
				if math.Float64bits(ref2[i]) != math.Float64bits(got2[i]) {
					t.Fatalf("n=%d fusion=%v: a2[%d] = %x, want %x", n, fusion, i, got2[i], ref2[i])
				}
			}
			if math.Float64bits(ref3[0]) != math.Float64bits(got3[0]) {
				t.Fatalf("n=%d fusion=%v: sum = %x, want %x", n, fusion, got3[0], ref3[0])
			}
			wantChunks := (n + 511) / 512
			if chunkBytes/8 > n {
				wantChunks = 1
			}
			if st.Chunks != wantChunks {
				t.Errorf("n=%d fusion=%v: Chunks = %d, want %d", n, fusion, st.Chunks, wantChunks)
			}
		}
	}
}

// TestOutOfCoreLocalNeverMaterialized: a segment temporary that is freed
// after its last in-segment read never gets a full-size buffer — the
// memory the backend exists to save. (The front end cannot observe the
// difference: its handle died with the BH_FREE.)
func TestOutOfCoreLocalNeverMaterialized(t *testing.T) {
	b, _ := openTest(t, "outofcore", Config{ChunkBytes: 4096})
	prog := chainProg(10000, 1.5)
	pl, err := b.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	bindVec(t, b, 0, irregularVals(10000))
	if err := b.Execute(pl); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Tensor(1, tensor.NewView(tensor.MustShape(10000))); ok {
		t.Error("segment local a1 was materialized at full size")
	}
	if _, ok := b.Tensor(2, tensor.NewView(tensor.MustShape(10000))); !ok {
		t.Error("live-out a2 was not materialized")
	}
}

// solveProg wires BH_SOLVE over the given 2x2 system.
func solveProg() *bytecode.Program {
	p := bytecode.NewProgram()
	a := p.NewReg(tensor.Float64, 4)
	bb := p.NewReg(tensor.Float64, 2)
	x := p.NewReg(tensor.Float64, 2)
	va := tensor.NewView(tensor.MustShape(2, 2))
	vb := tensor.NewView(tensor.MustShape(2))
	p.MarkInput(a)
	p.MarkInput(bb)
	p.EmitBinary(bytecode.OpSolve, bytecode.Reg(x, vb), bytecode.Reg(a, va), bytecode.Reg(bb, vb))
	p.MarkOutput(x)
	return p
}

// TestDifferentialErrorText pins that both backends fail with the
// character-identical error for a singular solve (a barrier executed via
// ExecOne) and for an unbound input register, fused and unfused.
func TestDifferentialErrorText(t *testing.T) {
	for _, fusion := range []bool{true, false} {
		var msgs [2]struct{ solve, unbound string }
		for i, name := range []string{"inprocess", "outofcore"} {
			b, _ := openTest(t, name, Config{VM: vm.Config{Fusion: fusion}, ChunkBytes: 64})
			pl, err := b.Compile(solveProg())
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Execute(pl); err == nil {
				t.Fatalf("%s: unbound inputs executed", name)
			} else {
				msgs[i].unbound = err.Error()
			}
			at, _ := tensor.FromFloat64s([]float64{1, 2, 2, 4}, tensor.MustShape(2, 2)) // singular
			bt, _ := tensor.FromFloat64s([]float64{1, 1}, tensor.MustShape(2))
			b.Bind(0, at)
			b.Bind(1, bt)
			if err := b.Execute(pl); err == nil {
				t.Fatalf("%s: singular solve succeeded", name)
			} else {
				msgs[i].solve = err.Error()
			}
		}
		if msgs[0].solve != msgs[1].solve {
			t.Errorf("fusion=%v: solve errors differ:\n  inprocess: %s\n  outofcore: %s",
				fusion, msgs[0].solve, msgs[1].solve)
		}
		if msgs[0].unbound != msgs[1].unbound {
			t.Errorf("fusion=%v: unbound errors differ:\n  inprocess: %s\n  outofcore: %s",
				fusion, msgs[0].unbound, msgs[1].unbound)
		}
	}
}

// TestPlanCacheScoping: two backends sharing one engine never serve each
// other's plans — the scoped keys keep the shared cache partitioned.
func TestPlanCacheScoping(t *testing.T) {
	eng := vm.NewEngine(vm.EngineConfig{})
	defer eng.Close()
	ip, err := Open("inprocess", eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	ooc, err := Open("outofcore", eng, Config{ChunkBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()

	prog := chainProg(64, 1.5)
	fp := prog.Fingerprint()
	consts := prog.Constants()
	pl, err := ip.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	ip.InsertPlan(fp, consts, true, pl, nil)
	if _, _, ok := ooc.LookupPlan(fp, consts, nil); ok {
		t.Fatal("outofcore hit an inprocess-compiled plan")
	}
	if _, _, ok := ip.LookupPlan(fp, consts, nil); !ok {
		t.Fatal("inprocess missed its own plan")
	}

	opl, err := ooc.Compile(chainProg(64, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	ooc.InsertPlan(fp, consts, true, opl, nil)
	got, _, ok := ooc.LookupPlan(fp, consts, nil)
	if !ok {
		t.Fatal("outofcore missed its own plan")
	}
	if _, isOoc := got.(*oocPlan); !isOoc {
		t.Fatalf("outofcore lookup returned %T", got)
	}
	// Out-of-core plans are constant-exact: a parametric-style lookup
	// under different constants must miss, not rebind.
	if _, _, ok := ooc.LookupPlan(fp, chainProg(64, 99).Constants(), nil); ok {
		t.Fatal("constant-exact outofcore plan hit under different constants")
	}
}

// TestExecutorSticky: the seam-level executor keeps vm.Executor's
// sticky-error pipeline semantics over backend plans.
func TestExecutorSticky(t *testing.T) {
	b, _ := openTest(t, "outofcore", Config{ChunkBytes: 64})
	pl, err := b.Compile(solveProg())
	if err != nil {
		t.Fatal(err)
	}
	at, _ := tensor.FromFloat64s([]float64{1, 2, 2, 4}, tensor.MustShape(2, 2)) // singular
	bt, _ := tensor.FromFloat64s([]float64{1, 1}, tensor.MustShape(2))
	b.Bind(0, at)
	b.Bind(1, bt)

	e := NewExecutor(b, 2, "")
	e.Submit(pl) // fails
	e.Submit(pl) // skipped
	err = e.Wait()
	if err == nil {
		t.Fatal("pipeline error lost")
	}
	if again := e.Wait(); again != err {
		t.Fatalf("sticky error changed: %v then %v", err, again)
	}
	if st := b.Stats(); st.Pipelined != 1 {
		t.Errorf("Pipelined = %d, want 1 (second plan skipped)", st.Pipelined)
	}
	if cerr := e.Close(); cerr != err {
		t.Fatalf("Close() = %v, want sticky %v", cerr, err)
	}
}

// TestExecutorPending: the pending counter counts submitted-not-finished
// plans and settles to zero at every recorder synchronization point —
// the invariant the bhd daemon's max-queued-batches quota meters.
func TestExecutorPending(t *testing.T) {
	b, _ := openTest(t, "inprocess", Config{})
	prog := chainProg(64, 3)
	in, _ := tensor.FromFloat64s(irregularVals(64), tensor.MustShape(64))
	b.Bind(0, in)
	pl, err := b.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(b, 4, "")
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d before any submit, want 0", got)
	}
	for i := 0; i < 8; i++ {
		e.Submit(pl)
	}
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Wait, want 0", got)
	}
	e.Submit(pl)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Close, want 0", got)
	}
}
