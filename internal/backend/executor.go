package backend

import (
	"sync"
	"sync/atomic"

	"bohrium/internal/vm"
)

// Executor runs backend plans on a background goroutine so a front end
// can record batch N+1 while batch N executes — the seam-level twin of
// vm.Executor, with identical semantics over any Backend. Exactly one
// goroutine (the "recorder") may call Submit, Wait and Close; the
// executor goroutine is the only one driving the backend's register state
// while jobs are in flight. The recorder keeps ownership of plan lookup
// and compilation — both are register-free on every backend.
//
// The first execution error poisons the pipeline: queued and future jobs
// are skipped, and Wait (and every later Wait) returns that error. The
// register file may hold partial results, exactly as after a failed
// synchronous Execute.
type Executor struct {
	b    Backend
	jobs chan Plan
	wg   sync.WaitGroup
	done chan struct{}
	// pending counts submitted-not-yet-finished plans (queued or in
	// flight) for admission control and monitoring.
	pending atomic.Int64

	mu     sync.Mutex
	err    error
	closed bool
}

// NewExecutor starts a background executor for b with the given queue
// depth (0 selects vm.DefaultAsyncDepth). Close it before closing the
// backend: the backend must outlive every in-flight plan.
func NewExecutor(b Backend, depth int) *Executor {
	if depth <= 0 {
		depth = vm.DefaultAsyncDepth
	}
	e := &Executor{b: b, jobs: make(chan Plan, depth), done: make(chan struct{})}
	go e.loop()
	return e
}

func (e *Executor) loop() {
	defer close(e.done)
	for pl := range e.jobs {
		if e.Err() == nil {
			e.b.CountPipelined()
			if err := e.b.Execute(pl); err != nil {
				e.mu.Lock()
				if e.err == nil {
					e.err = err
				}
				e.mu.Unlock()
			}
		}
		e.pending.Add(-1)
		e.wg.Done()
	}
}

// Submit queues one plan for background execution. The plan must not be
// mutated afterwards — cache hits and freshly compiled plans both satisfy
// this. Submit blocks only when the queue is full (backpressure), never
// on execution itself.
func (e *Executor) Submit(pl Plan) {
	e.wg.Add(1)
	e.pending.Add(1)
	e.jobs <- pl
}

// Pending reports how many submitted plans have not yet finished
// executing or being skipped (queued plus in flight). The value is a
// racy snapshot from any goroutine except the recorder's own
// synchronization points — right after Wait or Close it is exactly
// zero. Hosts use it for admission control: the bhd daemon's
// max-queued-batches quota counts a tenant's pending plans through it.
func (e *Executor) Pending() int { return int(e.pending.Load()) }

// Wait blocks until every submitted plan has executed (or been skipped
// after a failure) and returns the pipeline's first execution error. The
// error is sticky: once a plan fails, every subsequent Wait reports it.
func (e *Executor) Wait() error {
	e.wg.Wait()
	return e.Err()
}

// Err returns the sticky pipeline error without waiting.
func (e *Executor) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close drains the queue, stops the executor goroutine, and returns the
// sticky pipeline error. Close is idempotent; Submit must not be called
// afterwards.
func (e *Executor) Close() error {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		e.wg.Wait()
		close(e.jobs)
	}
	<-e.done
	return e.Err()
}
