package backend

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"bohrium/internal/faultinject"
	"bohrium/internal/vm"
)

// Executor runs backend plans on a background goroutine so a front end
// can record batch N+1 while batch N executes — the seam-level twin of
// vm.Executor, with identical semantics over any Backend. Exactly one
// goroutine (the "recorder") may call Submit, SubmitCtx, Wait, WaitCtx
// and Close; the executor goroutine is the only one driving the
// backend's register state while jobs are in flight. The recorder keeps
// ownership of plan lookup and compilation — both are register-free on
// every backend.
//
// The first execution error poisons the pipeline: queued and future jobs
// are skipped, and Wait (and every later Wait) returns that error. The
// register file may hold partial results, exactly as after a failed
// synchronous Execute. A panic while executing a queued plan is
// converted into a sticky pipeline error too — the failure belongs to
// the session that submitted the plan, never to the process.
type Executor struct {
	b     Backend   // immutable after NewExecutor
	label string    // immutable after NewExecutor: faultinject site label (the host's tenant name)
	jobs  chan Plan // immutable after NewExecutor (the channel; Close closes it under mu)
	wg    sync.WaitGroup
	done  chan struct{} // immutable after NewExecutor
	// pending counts submitted-not-yet-finished plans (queued or in
	// flight) for admission control and monitoring.
	pending atomic.Int64

	mu     sync.Mutex
	err    error // guarded by mu
	closed bool  // guarded by mu
	// quiet is closed when pending drops to zero; created lazily on the
	// 0→1 transition. WaitCtx snapshots it so a deadline-bounded wait
	// can select against cancellation without consuming wg state.
	// guarded by mu.
	quiet chan struct{}
}

// NewExecutor starts a background executor for b with the given queue
// depth (0 selects vm.DefaultAsyncDepth). label names the session for
// fault-injection targeting (empty matches any armed fault). Close the
// executor before closing the backend: the backend must outlive every
// in-flight plan.
func NewExecutor(b Backend, depth int, label string) *Executor {
	if depth <= 0 {
		depth = vm.DefaultAsyncDepth
	}
	e := &Executor{b: b, label: label, jobs: make(chan Plan, depth), done: make(chan struct{})}
	go e.loop()
	return e
}

func (e *Executor) loop() {
	defer close(e.done)
	for pl := range e.jobs {
		faultinject.Delay(faultinject.ExecStall, e.label)
		if e.Err() == nil {
			e.b.CountPipelined()
			if err := e.execOne(pl); err != nil {
				e.mu.Lock()
				if e.err == nil {
					e.err = err
				}
				e.mu.Unlock()
			}
		}
		e.finishOne()
	}
}

// execOne executes a single queued plan, converting a panic (a backend
// bug, an injected worker-panic fault) into a pipeline error instead of
// killing the whole process.
func (e *Executor) execOne(pl Plan) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: panic during pipelined execution: %v", vm.ErrExec, v)
		}
	}()
	return e.b.Execute(pl)
}

// noteSubmit books one plan into the pending account before the enqueue
// attempt; pair with finishOne on completion OR on a failed SubmitCtx.
func (e *Executor) noteSubmit() {
	e.wg.Add(1)
	e.mu.Lock()
	if e.pending.Add(1) == 1 {
		e.quiet = make(chan struct{})
	}
	e.mu.Unlock()
}

// finishOne retires one booked plan, closing the quiet channel when the
// pipeline goes idle.
func (e *Executor) finishOne() {
	e.mu.Lock()
	if e.pending.Add(-1) == 0 && e.quiet != nil {
		close(e.quiet)
		e.quiet = nil
	}
	e.mu.Unlock()
	e.wg.Done()
}

// Submit queues one plan for background execution. The plan must not be
// mutated afterwards — cache hits and freshly compiled plans both satisfy
// this. Submit blocks only when the queue is full (backpressure), never
// on execution itself.
func (e *Executor) Submit(pl Plan) {
	e.noteSubmit()
	e.jobs <- pl
}

// SubmitCtx queues one plan like Submit, but gives the backpressure
// block a deadline: when the queue is full and ctx expires (or is
// canceled) before a slot frees, the plan is NOT queued and the ctx
// error is returned wrapped — the pipeline's committed work is
// untouched, so the caller can shed this one submission as retryable.
// A nil error means the plan is queued exactly as Submit would have.
func (e *Executor) SubmitCtx(ctx context.Context, pl Plan) error {
	e.noteSubmit()
	select {
	case e.jobs <- pl:
		return nil
	default:
	}
	select {
	case e.jobs <- pl:
		return nil
	case <-ctx.Done():
		e.finishOne()
		return fmt.Errorf("executor queue full (depth %d): %w", cap(e.jobs), ctx.Err())
	}
}

// Pending reports how many submitted plans have not yet finished
// executing or being skipped (queued plus in flight). The value is a
// racy snapshot from any goroutine except the recorder's own
// synchronization points — right after Wait or Close it is exactly
// zero. Hosts use it for admission control: the bhd daemon's
// max-queued-batches quota counts a tenant's pending plans through it.
func (e *Executor) Pending() int { return int(e.pending.Load()) }

// Wait blocks until every submitted plan has executed (or been skipped
// after a failure) and returns the pipeline's first execution error. The
// error is sticky: once a plan fails, every subsequent Wait reports it.
func (e *Executor) Wait() error {
	e.wg.Wait()
	return e.Err()
}

// WaitCtx is Wait with a deadline: it returns the sticky pipeline error
// once every submitted plan has finished, or ctx.Err() when ctx expires
// first. Cancellation abandons only the WAIT — queued and in-flight
// plans keep executing and their results land normally, so a later
// Wait/WaitCtx observes them; nothing in flight is ever canceled.
func (e *Executor) WaitCtx(ctx context.Context) error {
	e.mu.Lock()
	ch := e.quiet
	e.mu.Unlock()
	if ch == nil {
		return e.Err()
	}
	select {
	case <-ch:
		return e.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the sticky pipeline error without waiting.
func (e *Executor) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close drains the queue, stops the executor goroutine, and returns the
// sticky pipeline error. Close is idempotent; Submit must not be called
// afterwards.
func (e *Executor) Close() error {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		e.wg.Wait()
		close(e.jobs)
	}
	<-e.done
	return e.Err()
}
