// Package backend is the middleware seam between the lazy bohrium front
// end and the vector engines that execute its byte-code — the pluggable
// layer the paper's component stack puts between the bridge and the
// hardware-specific engines. A Backend owns one session's execution
// state: it compiles optimized batches into opaque Plans, executes them
// against its register bindings, and fronts the engine's shared
// fingerprint-keyed plan cache with backend-scoped keys (a plan compiled
// by one backend is never served to another — the compiled forms are not
// interchangeable).
//
// Two backends register themselves here: "inprocess", the reference
// fused-sweep vm.Machine, and "outofcore", which streams arrays through
// chunk-sized tiles so a segment's working set stays within a configured
// byte budget (see outofcore.go for the chunking legality rules). Both
// are pinned bit-for-bit equal — values and error text — by the
// differential suite in the root package.
package backend

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// Plan is a backend's opaque compiled form of one optimized batch. A Plan
// may only be executed by the backend that compiled it; it is immutable
// after Compile, so one Plan may sit in the shared plan cache, on an async
// Executor queue, and mid-execution at the same time.
type Plan interface {
	// Program returns the compiled byte-code. Treat it as read-only.
	Program() *bytecode.Program
}

// Capabilities describes what an execution backend can do, for hosts that
// pick or report backends (cmd/bhrun prints them under -trace).
type Capabilities struct {
	// Chunked marks backends that execute plans over arrays larger than a
	// resident byte budget by streaming tiles, rather than requiring every
	// operand fully resident for the sweep.
	Chunked bool
	// ChunkBytes is the effective per-array tile budget of a chunked
	// backend, in bytes; zero for backends that never chunk.
	ChunkBytes int
	// SequenceFusion marks backends whose plans tolerate the front end's
	// cross-plan deferral: two consecutive batches may be submitted as
	// one combined program without changing per-batch semantics the
	// backend relies on. The out-of-core backend opts out — its segment
	// planner budgets resident bytes per batch, and a combined batch
	// could double a segment's working set behind its back.
	SequenceFusion bool
}

// Backend is one session's execution seam: compile, execute, bind, read,
// and the plan-cache and stats hooks the front end threads through. A
// Backend has the same concurrency contract as the vm.Machine it wraps —
// one goroutine drives it, except for the sanctioned recorder/executor
// split (Compile/LookupPlan/InsertPlan on the recorder, Execute on an
// Executor goroutine; see Executor).
type Backend interface {
	// Name returns the registry name the backend was opened under.
	Name() string
	// Capabilities reports what this backend can do.
	Capabilities() Capabilities

	// Compile analyzes an optimized program into an executable Plan.
	// Validation runs here unless the backend was configured with
	// vm.Config.SkipValidation; failures wrap vm.ErrExec with identical
	// text on every backend.
	Compile(p *bytecode.Program) (Plan, error)
	// Execute runs a plan this backend compiled against the current
	// register bindings. On error the register file may hold partial
	// results; the error reports the failing instruction with the same
	// text on every backend.
	Execute(pl Plan) error

	// Bind presets register r with an existing tensor before execution;
	// the buffer is used directly (no copy).
	Bind(r bytecode.RegID, t tensor.Tensor)
	// Tensor returns the current contents of register r addressed through
	// view v, or false if r has no buffer.
	Tensor(r bytecode.RegID, v tensor.View) (tensor.Tensor, bool)

	// PlanCacheEnabled reports whether LookupPlan/InsertPlan do anything;
	// front ends consult it before paying for fingerprint computation.
	PlanCacheEnabled() bool
	// LookupPlan finds a cached plan for the batch identified by fp (the
	// backend scopes the key, so two backends sharing one engine never
	// serve each other's plans). Semantics are vm.Machine.LookupPlan's: a
	// nil plan with ok=true means the batch optimizes to nothing.
	LookupPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool) (Plan, any, bool)
	// InsertPlan stores a freshly compiled plan (nil for an
	// optimized-to-empty batch) under the backend-scoped key. A backend
	// whose plans cannot be replayed under different constants may
	// downgrade parametric to false (the out-of-core backend does).
	InsertPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, parametric bool, pl Plan, meta any)

	// Stats snapshots the session's cumulative execution counters,
	// including every machine the backend drives internally.
	Stats() vm.Stats
	// ResetStats zeroes the counters (between experiment repetitions).
	ResetStats()
	// CountPipelined adds one background-executed plan to the Pipelined
	// counter — called by Executor, never by hosts.
	CountPipelined()
	// CountXPlanFused adds one combined cross-plan submission to the
	// XPlanFused counter — called by the front end when it elides a flush
	// boundary (only meaningful on backends with SequenceFusion).
	CountXPlanFused()
	// CountXPlanDisarm adds one abandoned cross-plan deferral to the
	// XPlanDisarms counter — the xplan-disarm fault point's stats hook.
	CountXPlanDisarm()

	// Close releases the session's state (register buffers return to the
	// engine's recycle pool, counters fold into the engine's totals). The
	// backend must not be used afterwards.
	Close()
}

// Config configures a backend session.
type Config struct {
	// VM is the per-session machine configuration every backend shares:
	// sweep fan-out, fusion, validation, plan-cache opt-out.
	VM vm.Config
	// ChunkBytes is the per-array tile budget of chunked backends, in
	// bytes; zero selects DefaultChunkBytes. Backends that never chunk
	// ignore it.
	ChunkBytes int
}

// Factory builds a backend session on a shared engine.
type Factory func(eng *vm.Engine, cfg Config) (Backend, error)

// DefaultName is the backend opened when no name is given.
const DefaultName = "inprocess"

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a backend factory under name. Backends register from
// init; re-registering a name panics (it would silently reroute every
// session).
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Open creates a session of the named backend ("" selects DefaultName) on
// the shared engine. Sessions of different backends may share one engine:
// they share its worker pool and buffer recycle pool, and the plan cache
// keeps their plans apart through backend-scoped keys.
func Open(name string, eng *vm.Engine, cfg Config) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return f(eng, cfg)
}

// scopeFingerprint derives the backend-scoped plan-cache key: the shared
// cache stores plans from every backend on the engine, and a fingerprint
// only identifies the batch's structure, not the compiled form — so each
// backend salts its name into the key and can only ever hit its own
// entries.
func scopeFingerprint(name string, fp bytecode.Fingerprint) bytecode.Fingerprint {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(fp[:])
	var out bytecode.Fingerprint
	h.Sum(out[:0])
	return out
}
