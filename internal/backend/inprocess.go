package backend

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

func init() {
	Register("inprocess", func(eng *vm.Engine, cfg Config) (Backend, error) {
		return &inProcess{m: eng.NewMachine(cfg.VM)}, nil
	})
}

// inProcess is the reference backend: a thin adapter over the fused-sweep
// vm.Machine, which was the only execution path before the seam existed.
// Every differential guarantee in the repo is stated against it.
type inProcess struct {
	m *vm.Machine
}

func (b *inProcess) Name() string { return "inprocess" }

func (b *inProcess) Capabilities() Capabilities { return Capabilities{SequenceFusion: true} }

func (b *inProcess) Compile(p *bytecode.Program) (Plan, error) {
	return b.m.Compile(p)
}

func (b *inProcess) Execute(pl Plan) error {
	vp, ok := pl.(*vm.Plan)
	if !ok {
		return fmt.Errorf("%w: plan %T was not compiled by the inprocess backend", vm.ErrExec, pl)
	}
	return vp.Execute(b.m)
}

func (b *inProcess) Bind(r bytecode.RegID, t tensor.Tensor) { b.m.Bind(r, t) }

func (b *inProcess) Tensor(r bytecode.RegID, v tensor.View) (tensor.Tensor, bool) {
	return b.m.Tensor(r, v)
}

func (b *inProcess) PlanCacheEnabled() bool { return b.m.PlanCacheEnabled() }

func (b *inProcess) LookupPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool) (Plan, any, bool) {
	cached, meta, ok := b.m.LookupPlan(scopeFingerprint(b.Name(), fp), consts, accept)
	if !ok {
		return nil, nil, false
	}
	if cached == nil {
		return nil, meta, true
	}
	return cached.(*vm.Plan), meta, true
}

func (b *inProcess) InsertPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, parametric bool, pl Plan, meta any) {
	var cached vm.CachedPlan
	if pl != nil {
		vp, ok := pl.(*vm.Plan)
		if !ok {
			return // a foreign plan must never enter this backend's cache slice
		}
		cached = vp
	}
	b.m.InsertPlan(scopeFingerprint(b.Name(), fp), consts, parametric, cached, meta)
}

func (b *inProcess) Stats() vm.Stats { return b.m.Stats() }

func (b *inProcess) ResetStats() { b.m.ResetStats() }

func (b *inProcess) CountPipelined() { b.m.CountPipelined() }

func (b *inProcess) CountXPlanFused() { b.m.CountXPlanFused() }

func (b *inProcess) CountXPlanDisarm() { b.m.CountXPlanDisarm() }

func (b *inProcess) Close() { b.m.Close() }
