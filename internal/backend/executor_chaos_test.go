package backend

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bohrium/internal/faultinject"
	"bohrium/internal/vm"
)

// TestChaosSubmitCtxShedsOnFullQueue pins deadline-bounded admission at
// the executor seam: with the queue full behind a stalled executor, a
// SubmitCtx whose context expires sheds ONLY its own submission — the
// ctx error comes back wrapped, the queued work is untouched, and the
// pipeline drains clean.
func TestChaosSubmitCtxShedsOnFullQueue(t *testing.T) {
	ref2, ref3, _ := runChain(t, "inprocess", Config{}, 64, true)

	b, _ := openTest(t, "inprocess", Config{VM: vm.Config{Fusion: true}})
	e := NewExecutor(b, 1, "stall-victim")
	defer e.Close()
	pl, err := b.Compile(chainProg(64, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	bindVec(t, b, 0, irregularVals(64))

	disarm := faultinject.Arm(faultinject.ExecStall, faultinject.Fault{
		Label: "stall-victim", Delay: 300 * time.Millisecond, Times: 1,
	})
	defer disarm()
	e.Submit(pl)                      // dequeued immediately, then stalls
	time.Sleep(20 * time.Millisecond) // let the executor enter the stall
	e.Submit(pl)                      // fills the depth-1 queue
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	serr := e.SubmitCtx(ctx, pl)
	if !errors.Is(serr, context.DeadlineExceeded) {
		t.Fatalf("submit into a full queue: %v, want a DeadlineExceeded chain", serr)
	}
	if !strings.Contains(serr.Error(), "executor queue full") {
		t.Fatalf("shed error does not name the full queue: %v", serr)
	}

	// The shed submission left no trace: both admitted plans execute,
	// the pipeline ends clean, and the results match the reference.
	if err := e.Wait(); err != nil {
		t.Fatalf("wait after a shed submission: %v", err)
	}
	if n := e.Pending(); n != 0 {
		t.Fatalf("pending = %d after wait, want 0 (shed submission still booked?)", n)
	}
	got2, got3 := regVals(t, b, 2, 64), regVals(t, b, 3, 1)
	for i := range ref2 {
		if got2[i] != ref2[i] {
			t.Fatalf("a2[%d] = %v, want %v", i, got2[i], ref2[i])
		}
	}
	if got3[0] != ref3[0] {
		t.Fatalf("a3 = %v, want %v", got3[0], ref3[0])
	}
}

// TestChaosWaitCtxHonorsCancelWithoutKillingWork pins the wait side of
// the deadline contract: WaitCtx returns the ctx error when the fence
// outruns its deadline, but abandoning the wait cancels nothing — the
// slow plan completes, a later unbounded Wait observes it, and an idle
// pipeline's WaitCtx returns immediately.
func TestChaosWaitCtxHonorsCancelWithoutKillingWork(t *testing.T) {
	ref2, ref3, _ := runChain(t, "inprocess", Config{}, 64, true)

	b, _ := openTest(t, "inprocess", Config{VM: vm.Config{Fusion: true, FaultLabel: "slow-victim"}})
	e := NewExecutor(b, 0, "slow-victim")
	defer e.Close()
	pl, err := b.Compile(chainProg(64, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	bindVec(t, b, 0, irregularVals(64))

	disarm := faultinject.Arm(faultinject.SlowExec, faultinject.Fault{
		Label: "slow-victim", Delay: 300 * time.Millisecond, Times: 1,
	})
	defer disarm()
	e.Submit(pl)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if werr := e.WaitCtx(ctx); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("fence against a slow plan: %v, want a DeadlineExceeded chain", werr)
	}

	if err := e.Wait(); err != nil {
		t.Fatalf("unbounded wait after an abandoned fence: %v", err)
	}
	got2, got3 := regVals(t, b, 2, 64), regVals(t, b, 3, 1)
	for i := range ref2 {
		if got2[i] != ref2[i] {
			t.Fatalf("a2[%d] = %v, want %v (abandoned fence corrupted execution?)", i, got2[i], ref2[i])
		}
	}
	if got3[0] != ref3[0] {
		t.Fatalf("a3 = %v, want %v", got3[0], ref3[0])
	}
	// Idle pipeline: WaitCtx needs no deadline headroom at all.
	if werr := e.WaitCtx(context.Background()); werr != nil {
		t.Fatalf("idle WaitCtx: %v", werr)
	}
}
