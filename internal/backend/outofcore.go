package backend

import (
	"fmt"

	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// The out-of-core backend executes plans over arrays larger than a
// configured byte budget by streaming chunk-sized tiles through the
// engine's buffer recycle pool, the way an accelerator backend streams
// host arrays through device memory. Compilation splits the program into
// an alternation of
//
//   - segments: maximal runs of elementwise instructions whose every
//     register operand is a full, offset-0, contiguous view of its
//     register and whose arrays all share one element count. Element i of
//     every array in a segment depends only on element i of the others,
//     so the segment is chunked: a chunk-local body program (compiled
//     once for the full tile size, once for the tail) executes per tile
//     against staging buffers, with copy-in for live-in registers and
//     copy-out for live-out ones. Registers whose value never escapes the
//     segment — temporaries consumed inside it and freed later without
//     another reference — are never materialized at full size at all:
//     that is the memory the backend saves.
//
//   - barriers: everything else. Reductions and scans are barriers by
//     fiat even though tiling them is algebraically possible: chunked
//     accumulation reorders float arithmetic, and the repo's contract is
//     bit-for-bit equality with the in-process backend. BH_RANGE and
//     BH_RANDOM are barriers because they generate from the global flat
//     element index, which a chunk-local body does not know. Extensions,
//     system byte-codes, and any instruction using strided or partial
//     views are barriers too. Barriers execute on the session machine via
//     vm.Machine.ExecOne, which reproduces Plan.Execute's error wrapping
//     exactly — the differential suite pins error text, not only values.
//
// Chunked segments reuse the fused-sweep kernels per tile: the body
// program is compiled by an ordinary chunk machine with the session's
// fusion setting, so a five-op elementwise chain still runs as one fused
// sweep per tile.
const DefaultChunkBytes = 1 << 20

func init() {
	Register("outofcore", func(eng *vm.Engine, cfg Config) (Backend, error) {
		chunkBytes := cfg.ChunkBytes
		if chunkBytes <= 0 {
			chunkBytes = DefaultChunkBytes
		}
		cmCfg := cfg.VM
		cmCfg.PlanCacheSize = -1 // body plans live on the oocPlan, not in the shared cache
		cmCfg.SkipValidation = false
		return &outOfCore{
			m:          eng.NewMachine(cfg.VM),
			cm:         eng.NewMachine(cmCfg),
			chunkBytes: chunkBytes,
			scope:      fmt.Sprintf("outofcore/%d", chunkBytes),
		}, nil
	})
}

type outOfCore struct {
	// m holds the session's full-size register file: front-end bindings,
	// barrier execution, and the materialized live-out arrays of chunked
	// segments. cm is the chunk machine: its register file holds only
	// tile-sized staging buffers, rebuilt from the recycle pool per
	// segment.
	m          *vm.Machine
	cm         *vm.Machine
	chunkBytes int
	// scope salts the shared plan-cache key with the chunk budget as
	// well as the backend name: oocPlans bake their tile size into every
	// segment body, so a session streaming 4 KiB tiles must never
	// execute a plan compiled for 1 MiB tiles (the values would match —
	// chunking is bit-exact — but the session's memory budget would
	// not). Sessions sharing one engine AND one budget still share
	// plans.
	scope string
}

// oocPlan is the out-of-core compiled form: the original program plus its
// segment/barrier decomposition, with the chunk-local body plans compiled
// up front. Immutable after Compile.
type oocPlan struct {
	prog  *bytecode.Program
	steps []oocStep
}

// Program implements Plan.
func (pl *oocPlan) Program() *bytecode.Program { return pl.prog }

// Rebind implements vm.CachedPlan. Out-of-core plans are inserted as
// constant-exact (never parametric), so the cache never patches them;
// replaying the body plans under new constants would mean recompiling
// every segment, which is exactly what a cache miss does anyway.
func (pl *oocPlan) Rebind(vals []bytecode.Constant) (vm.CachedPlan, error) {
	return nil, fmt.Errorf("outofcore: plans are constant-exact and cannot be rebound")
}

// oocStep is one execution step: a chunked segment, or a single barrier
// instruction (seg == nil).
type oocStep struct {
	barrier int
	seg     *oocSegment
}

// oocSegment is one chunkable run of instructions.
type oocSegment struct {
	start, end int // [start, end) in prog.Instrs
	n          int // element count of every array in the segment
	chunk      int // elements per full tile
	regs       []oocReg
	body       *vm.Plan // tile of chunk elements; nil when n < chunk
	tail       *vm.Plan // tile of n%chunk elements; nil when it divides evenly
}

// oocReg maps one top-level register touched by a segment to its
// chunk-local staging register.
type oocReg struct {
	id    bytecode.RegID // register in the top-level program
	local bytecode.RegID // register in the chunk-local body program
	dt    tensor.DType
	// liveIn: read before any write inside the segment — its current
	// full-size chunk is copied into staging before each tile executes.
	liveIn bool
	// liveOut: written in the segment and possibly observable after it —
	// each tile's staging result is copied back to the full-size buffer.
	// A written register that is provably dead past the segment (see
	// deadAfter) is a segment local instead: staged only, never
	// materialized at full size.
	liveOut bool
}

func (b *outOfCore) Name() string { return "outofcore" }

func (b *outOfCore) Capabilities() Capabilities {
	return Capabilities{Chunked: true, ChunkBytes: b.chunkBytes}
}

// canonicalFull reports whether operand o addresses its register through
// the full flat view: offset 0, contiguous, covering every declared
// element. Only such operands chunk by plain offset arithmetic.
func canonicalFull(p *bytecode.Program, o bytecode.Operand) bool {
	info, ok := p.Reg(o.Reg)
	if !ok {
		return false
	}
	return o.View.Offset == 0 && o.View.Contiguous() && o.View.Size() == info.Len
}

// streamable reports whether instruction i may join a chunked segment,
// and the shared element count of its arrays.
func streamable(p *bytecode.Program, i int) (int, bool) {
	in := &p.Instrs[i]
	// BH_RANGE is classified elementwise (its output is) but generates
	// from the global flat index — a chunk-local body would restart it at
	// zero every tile. BH_RANDOM is excluded by Elementwise already.
	if !in.Op.Elementwise() || in.Op == bytecode.OpRange {
		return 0, false
	}
	if !in.Out.IsReg() || !canonicalFull(p, in.Out) {
		return 0, false
	}
	if len(in.Inputs()) == 0 {
		return 0, false
	}
	n := in.Out.View.Size()
	for _, o := range in.Inputs() {
		if o.IsConst() {
			continue
		}
		if !o.IsReg() || !canonicalFull(p, o) || o.View.Size() != n {
			return 0, false
		}
	}
	return n, true
}

// deadAfter reports whether register r's value provably never escapes
// instruction index end, making it a segment local: r is not a program
// output, the only later reference to it is its own BH_FREE (BH_SYNC is a
// materialization fence and so counts as a reference), and that BH_FREE
// exists. The free must be present: a register still live at the
// program's end may be consumed by the session's NEXT batch as an input,
// so it has to be materialized even though this program never reads it
// again. Once freed, the front end's handle-generation guard makes the
// register unreadable, so skipping its materialization is unobservable.
func deadAfter(p *bytecode.Program, end int, r bytecode.RegID) bool {
	if p.IsOutput(r) {
		return false
	}
	freed := false
	for k := end; k < len(p.Instrs); k++ {
		in := &p.Instrs[k]
		if in.Op == bytecode.OpFree {
			if in.Out.IsReg() && in.Out.Reg == r {
				freed = true
			}
			continue
		}
		if in.Out.IsReg() && in.Out.Reg == r {
			return false
		}
		for _, o := range in.Inputs() {
			if o.IsReg() && o.Reg == r {
				return false
			}
		}
	}
	return freed
}

// Compile implements Backend: validate (identical wrapping to the
// in-process backend), decompose into segments and barriers, and compile
// each segment's chunk-local body plans.
func (b *outOfCore) Compile(p *bytecode.Program) (Plan, error) {
	if !b.m.SkipsValidation() {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %w", vm.ErrExec, err)
		}
	}
	pl := &oocPlan{prog: p}
	i := 0
	for i < len(p.Instrs) {
		n, ok := streamable(p, i)
		if !ok {
			pl.steps = append(pl.steps, oocStep{barrier: i})
			i++
			continue
		}
		j := i + 1
		for j < len(p.Instrs) {
			n2, ok := streamable(p, j)
			if !ok || n2 != n {
				break
			}
			j++
		}
		seg, err := b.compileSegment(p, i, j, n)
		if err != nil {
			return nil, err
		}
		pl.steps = append(pl.steps, oocStep{seg: seg})
		i = j
	}
	return pl, nil
}

func (b *outOfCore) compileSegment(p *bytecode.Program, start, end, n int) (*oocSegment, error) {
	seg := &oocSegment{start: start, end: end, n: n}
	index := map[bytecode.RegID]int{}
	written := map[bytecode.RegID]bool{}
	touch := func(id bytecode.RegID, read bool) {
		if _, ok := index[id]; ok {
			return
		}
		info, _ := p.Reg(id) // streamable already vetted the declaration
		index[id] = len(seg.regs)
		seg.regs = append(seg.regs, oocReg{
			id:     id,
			local:  bytecode.RegID(len(seg.regs)),
			dt:     info.DType,
			liveIn: read,
		})
	}
	for k := start; k < end; k++ {
		in := &p.Instrs[k]
		// Inputs first: a register whose first touch is a read enters the
		// segment live (read-modify-write chains like AddC-in-place copy
		// their current chunk in).
		for _, o := range in.Inputs() {
			if o.IsReg() {
				touch(o.Reg, true)
			}
		}
		touch(in.Out.Reg, false)
		written[in.Out.Reg] = true
	}
	maxElem := 1
	for ri := range seg.regs {
		r := &seg.regs[ri]
		r.liveOut = written[r.id] && !deadAfter(p, end, r.id)
		if s := r.dt.Size(); s > maxElem {
			maxElem = s
		}
	}
	seg.chunk = b.chunkBytes / maxElem
	if seg.chunk < 1 {
		seg.chunk = 1
	}
	if n > 0 && seg.chunk > n {
		seg.chunk = n
	}
	if n >= seg.chunk {
		body, err := b.compileBody(p, seg, seg.chunk)
		if err != nil {
			return nil, err
		}
		seg.body = body
	}
	if rem := n % seg.chunk; rem > 0 {
		tail, err := b.compileBody(p, seg, rem)
		if err != nil {
			return nil, err
		}
		seg.tail = tail
	}
	return seg, nil
}

// compileBody builds and compiles the chunk-local program of one tile
// size: the segment's instructions with every register operand remapped
// to a staging register addressed through a flat length-L view. One body
// serves every tile of its size — the tile offset lives entirely in the
// copy-in/copy-out, so the plan compiles once and re-executes per chunk.
func (b *outOfCore) compileBody(p *bytecode.Program, seg *oocSegment, L int) (*vm.Plan, error) {
	body := bytecode.NewProgram()
	for _, r := range seg.regs {
		body.NewReg(r.dt, L)
	}
	for _, r := range seg.regs {
		if r.liveIn {
			body.MarkInput(r.local)
		}
		if r.liveOut {
			body.MarkOutput(r.local)
		}
	}
	view := tensor.NewView(tensor.MustShape(L))
	local := map[bytecode.RegID]bytecode.RegID{}
	for _, r := range seg.regs {
		local[r.id] = r.local
	}
	remap := func(o bytecode.Operand) bytecode.Operand {
		if !o.IsReg() {
			return o
		}
		return bytecode.Reg(local[o.Reg], view)
	}
	for k := seg.start; k < seg.end; k++ {
		src := &p.Instrs[k]
		body.Emit(bytecode.Instruction{
			Op:   src.Op,
			Out:  remap(src.Out),
			In1:  remap(src.In1),
			In2:  remap(src.In2),
			Axis: src.Axis,
		})
	}
	pl, err := b.cm.Compile(body)
	if err != nil {
		return nil, fmt.Errorf("%w: outofcore body [%d,%d): %w", vm.ErrExec, seg.start, seg.end, err)
	}
	return pl, nil
}

// Execute implements Backend.
func (b *outOfCore) Execute(pl Plan) error {
	op, ok := pl.(*oocPlan)
	if !ok {
		return fmt.Errorf("%w: plan %T was not compiled by the outofcore backend", vm.ErrExec, pl)
	}
	p := op.prog
	for _, r := range p.Inputs {
		if !b.m.Bound(r) {
			return fmt.Errorf("%w: input register %s not bound", vm.ErrExec, r)
		}
	}
	for _, st := range op.steps {
		if st.seg == nil {
			if err := b.m.ExecOne(p, st.barrier); err != nil {
				return err
			}
			continue
		}
		if err := b.execSegment(p, st.seg); err != nil {
			return err
		}
	}
	return nil
}

// execSegment streams one segment: materialize live-out arrays at full
// size, stage live-in tiles through recycle-pool buffers, and run the
// body plan per chunk on the chunk machine.
func (b *outOfCore) execSegment(p *bytecode.Program, seg *oocSegment) error {
	type liveIn struct {
		role    *oocReg
		full    tensor.Buffer
		staging tensor.Buffer
	}
	type liveOut struct {
		role *oocReg
		full tensor.Buffer
	}
	var ins []liveIn
	var outs []liveOut
	for ri := range seg.regs {
		r := &seg.regs[ri]
		if r.liveIn {
			t, ok := b.m.Tensor(r.id, tensor.View{})
			if !ok {
				// Unreachable for validated programs: inputs were checked
				// at the top of Execute, everything else is def-before-use.
				return fmt.Errorf("%w: segment [%d,%d): input register %s has no buffer",
					vm.ErrExec, seg.start, seg.end, r.id)
			}
			ins = append(ins, liveIn{role: r, full: t.Buf})
		}
		if r.liveOut {
			full, err := b.m.Materialize(p, r.id)
			if err != nil {
				return fmt.Errorf("%w: segment [%d,%d): %w", vm.ErrExec, seg.start, seg.end, err)
			}
			outs = append(outs, liveOut{role: r, full: full})
		}
	}
	if seg.n == 0 {
		return nil // zero-element sweep: outputs materialized, nothing to stream
	}

	stagingLen := seg.chunk
	if seg.n < stagingLen {
		stagingLen = seg.n
	}
	for i := range ins {
		buf, err := b.m.AcquireBuffer(ins[i].role.dt, stagingLen)
		if err != nil {
			return fmt.Errorf("%w: segment [%d,%d): %w", vm.ErrExec, seg.start, seg.end, err)
		}
		ins[i].staging = buf
		b.cm.Bind(ins[i].role.local, tensor.Tensor{Buf: buf, View: tensor.NewView(tensor.MustShape(stagingLen))})
	}
	// All staging state — bound inputs and the body's own materialized
	// locals/outputs — is torn down when the segment is done, returning
	// the tiles to the shared recycle pool for the next segment (or the
	// next session) to pick up.
	defer func() {
		b.cm.ReleaseRegisters()
		for i := range ins {
			b.m.ReleaseBuffer(ins[i].staging)
		}
	}()

	for lo := 0; lo < seg.n; lo += seg.chunk {
		L := seg.chunk
		body := seg.body
		if seg.n-lo < seg.chunk {
			L = seg.n - lo
			body = seg.tail
		}
		for i := range ins {
			if err := tensor.CopyFlat(ins[i].staging, 0, ins[i].full, lo, L); err != nil {
				return fmt.Errorf("%w: segment [%d,%d): %w", vm.ErrExec, seg.start, seg.end, err)
			}
		}
		if err := body.Execute(b.cm); err != nil {
			return fmt.Errorf("outofcore segment [%d,%d): %w", seg.start, seg.end, err)
		}
		for i := range outs {
			t, ok := b.cm.Tensor(outs[i].role.local, tensor.View{})
			if !ok {
				return fmt.Errorf("%w: segment [%d,%d): staging for %s vanished",
					vm.ErrExec, seg.start, seg.end, outs[i].role.id)
			}
			if err := tensor.CopyFlat(outs[i].full, lo, t.Buf, 0, L); err != nil {
				return fmt.Errorf("%w: segment [%d,%d): %w", vm.ErrExec, seg.start, seg.end, err)
			}
		}
		b.m.CountChunks(1)
	}
	return nil
}

func (b *outOfCore) Bind(r bytecode.RegID, t tensor.Tensor) { b.m.Bind(r, t) }

func (b *outOfCore) Tensor(r bytecode.RegID, v tensor.View) (tensor.Tensor, bool) {
	return b.m.Tensor(r, v)
}

func (b *outOfCore) PlanCacheEnabled() bool { return b.m.PlanCacheEnabled() }

func (b *outOfCore) LookupPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, accept func(meta any) bool) (Plan, any, bool) {
	cached, meta, ok := b.m.LookupPlan(scopeFingerprint(b.scope, fp), consts, accept)
	if !ok {
		return nil, nil, false
	}
	if cached == nil {
		return nil, meta, true
	}
	return cached.(*oocPlan), meta, true
}

func (b *outOfCore) InsertPlan(fp bytecode.Fingerprint, consts []bytecode.Constant, parametric bool, pl Plan, meta any) {
	var cached vm.CachedPlan
	if pl != nil {
		op, ok := pl.(*oocPlan)
		if !ok {
			return // a foreign plan must never enter this backend's cache entries
		}
		cached = op
		// Out-of-core plans bake their segment bodies around the constant
		// vector they were compiled with; they hit only on the exact
		// vector (see Rebind). A nil plan has nothing to rebind, so the
		// optimized-to-empty entry stays parametric.
		parametric = false
	}
	b.m.InsertPlan(scopeFingerprint(b.scope, fp), consts, parametric, cached, meta)
}

// Stats combines the session machine's counters (barriers, plan cache,
// chunk count, staging buffer traffic) with the chunk machine's (the
// per-tile sweeps and fused instructions).
func (b *outOfCore) Stats() vm.Stats {
	st := b.m.Stats()
	st.Accumulate(b.cm.Stats())
	return st
}

func (b *outOfCore) ResetStats() {
	b.m.ResetStats()
	b.cm.ResetStats()
}

func (b *outOfCore) CountPipelined() { b.m.CountPipelined() }

func (b *outOfCore) CountXPlanFused() { b.m.CountXPlanFused() }

func (b *outOfCore) CountXPlanDisarm() { b.m.CountXPlanDisarm() }

func (b *outOfCore) Close() {
	b.cm.Close()
	b.m.Close()
}
