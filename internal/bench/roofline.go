package bench

import (
	"sync"
	"time"

	"bohrium/internal/vm"
)

// The roofline columns put every timing in machine context: an
// elementwise sweep is memory-bound, so its natural ceiling is the rate
// at which this machine can stream bytes through main memory, not FLOPS.
// RooflineGBs measures that ceiling once per process — a large memcpy,
// best-of several passes — and each row's achieved bandwidth is reported
// as gbs and as %roof against it. A fused pipeline at a high %roof has
// nothing left to win from further fusion; a low %roof says the row is
// dominated by overhead (compilation, dispatch, small shapes), which is
// exactly the regime the plan cache and cross-plan rows attack.

var (
	rooflineOnce sync.Once
	rooflineGBs  float64
)

// RooflineGBs returns this machine's streaming-memory ceiling in GB/s:
// the best-of-five bandwidth of a 64 MiB memcpy (counting both the bytes
// read and the bytes written), measured on first use and cached for the
// process lifetime. The copy is single-threaded, so multi-worker sweeps
// on machines with more memory channels than one core can saturate may
// legitimately report above 100 %roof.
func RooflineGBs() float64 {
	rooflineOnce.Do(func() {
		const n = 1 << 23 // 8 Mi float64 = 64 MiB per buffer
		src := make([]float64, n)
		dst := make([]float64, n)
		for i := range src {
			src[i] = float64(i)
		}
		copy(dst, src) // fault the pages in before timing
		var best time.Duration
		for r := 0; r < 5; r++ {
			start := time.Now()
			copy(dst, src)
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		if best > 0 {
			rooflineGBs = float64(16*n) / best.Seconds() / 1e9
		}
	})
	return rooflineGBs
}

// fillRoofline derives the optimized run's achieved bandwidth from the
// VM's processed-element counter and the best-of wall-clock time, using
// a deliberately simple traffic model: 16 bytes per processed element —
// one float64 stream read and one written. Kernels with two array
// operands move more than the model counts and integer/float32 sweeps
// move less, so gbs is a first-order figure, not a measurement of the
// bus; its job is to make rows comparable to the memcpy ceiling and to
// each other. Rows without sweep work (extension barriers, rewrite-only
// ablations) keep gbs = 0 and print "-".
func (r *Row) fillRoofline(st vm.Stats, opt time.Duration) {
	if st.Elements <= 0 || opt <= 0 {
		return
	}
	r.GBs = float64(st.Elements) * 16 / opt.Seconds() / 1e9
	if ceil := RooflineGBs(); ceil > 0 {
		r.PctRoof = 100 * r.GBs / ceil
	}
}
