package bench

import (
	"bohrium"
	"bohrium/internal/backend"
	"bohrium/internal/bytecode"
	"bohrium/internal/chains"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
	"fmt"
	"math"
	"sync"
)

// Scale tunes experiment sizes: 1 is the quick CI profile, larger values
// grow the vectors (experiments report the same qualitative shape at any
// scale — that is the point of the reproduction).
type Scale struct {
	VectorN  int // elementwise sweep length (default 1 << 20)
	SolveMax int // largest linear system (default 256)
	Repeats  int // timing repetitions, best-of (default 3)
	Sessions int // concurrent sessions in the E10 multi-session rows (default 4)
	// Backend selects the execution backend every experiment runs on
	// (default backend.DefaultName, the in-process reference). The
	// differential contract makes values identical across backends, so a
	// non-default backend only changes the timing columns — which is the
	// point: the same tables, re-measured on another engine.
	Backend string
	// ChunkBytes is the tile budget of chunked backends (0: backend
	// default). Ignored by backends without the Chunked capability.
	ChunkBytes int
}

// DefaultScale returns the profile used by cmd/bhbench and EXPERIMENTS.md.
func DefaultScale() Scale {
	return Scale{VectorN: 1 << 20, SolveMax: 256, Repeats: 3, Sessions: 4, Backend: backend.DefaultName}
}

func (s Scale) withDefaults() Scale {
	if s.VectorN == 0 {
		s.VectorN = 1 << 20
	}
	if s.SolveMax == 0 {
		s.SolveMax = 256
	}
	if s.Repeats == 0 {
		s.Repeats = 3
	}
	if s.Sessions <= 0 {
		s.Sessions = 4
	}
	if s.Backend == "" {
		s.Backend = backend.DefaultName
	}
	return s
}

// stamp records the Scale's backend on every row, so tables and JSON
// documents always say which engine produced the numbers.
func stamp(rows []Row, s Scale) []Row {
	for i := range rows {
		rows[i].Backend = s.Backend
	}
	return rows
}

// foldOnlyPipeline reproduces exactly the paper's Listing 2→3 step:
// constant merging without the further identity-fold collapse.
func foldOnlyPipeline() *rewrite.Pipeline {
	return rewrite.NewPipeline(rewrite.CanonicalizeRule{}, rewrite.AddMergeRule{}, rewrite.MulMergeRule{})
}

// E1AddMerge reproduces Listings 1–3 and the conclusion's "Bohrium already
// supports merging integer addition": k repeated adds collapse to one, and
// runtime drops with the byte-code count.
func E1AddMerge(s Scale) ([]Row, error) {
	s = s.withDefaults()
	var rows []Row
	for _, dt := range []tensor.DType{tensor.Float64, tensor.Int64} {
		for _, k := range []int{2, 3, 8, 16} {
			prog := AddMergeProgram(k, s.VectorN, dt)
			row, err := comparePrograms("E1", "add-merge("+dt.String()+")",
				fmt.Sprintf("k=%d N=%d", k, s.VectorN), prog, foldOnlyPipeline(), s, nil)
			if err != nil {
				return nil, err
			}
			row.Note = fmt.Sprintf("%d adds -> 1", k)
			rows = append(rows, row)
		}
	}
	return stamp(rows, s), nil
}

// E2PowerChain reproduces Listings 4–5: x¹⁰ as BH_POWER (baseline) versus
// the three expansion strategies; byte-code counts must be exactly the
// listings' 9 (naive) and 5 (paper), plus our 4 (binary).
func E2PowerChain(s Scale) ([]Row, error) {
	s = s.withDefaults()
	strategies := []struct {
		strat chains.Strategy
		label string
	}{
		{chains.StrategyNaive, "naive (Listing 4)"},
		{chains.StrategySquareIncrement, "paper (Listing 5)"},
		{chains.StrategyBinary, "binary (ours)"},
	}
	var rows []Row
	for _, st := range strategies {
		prog := PowerProgram(10, s.VectorN)
		pl := rewrite.Build(rewrite.Options{
			PowerExpand:      true,
			PowerStrategy:    st.strat,
			PowerNoCostModel: true,
		})
		row, err := comparePrograms("E2", "power-x10", fmt.Sprintf("N=%d", s.VectorN), prog, pl, s, nil)
		if err != nil {
			return nil, err
		}
		chain, err := chains.Generate(st.strat, 10)
		if err != nil {
			return nil, err
		}
		row.Note = fmt.Sprintf("%s: %d multiplies", st.label, chain.MultiplyCount())
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E3PowerSweep reproduces the conclusion claim "for values close to a
// power of 2, multiplying multiple times is faster than an actual
// BH_POWER": sweep the exponent, race BH_POWER against naive and binary
// chains, and report each winner.
func E3PowerSweep(s Scale) ([]Row, error) {
	s = s.withDefaults()
	exps := []int64{2, 3, 4, 8, 15, 16, 17, 24, 31, 32, 33, 48, 64}
	var rows []Row
	for _, strat := range []chains.Strategy{chains.StrategyNaive, chains.StrategyBinary} {
		for _, n := range exps {
			prog := PowerProgram(n, s.VectorN)
			pl := rewrite.Build(rewrite.Options{
				PowerExpand:      true,
				PowerStrategy:    strat,
				PowerNoCostModel: true,
			})
			row, err := comparePrograms("E3", "power-sweep-"+strat.String(),
				fmt.Sprintf("n=%d N=%d", n, s.VectorN), prog, pl, s, nil)
			if err != nil {
				return nil, err
			}
			chain, err := chains.Generate(strat, int(n))
			if err != nil {
				return nil, err
			}
			winner := "chain wins"
			if row.Speedup < 1 {
				winner = "BH_POWER wins"
			}
			row.Note = fmt.Sprintf("%d muls; %s", chain.MultiplyCount(), winner)
			rows = append(rows, row)
		}
	}
	return stamp(rows, s), nil
}

// E4Solve reproduces equation (2): x = A⁻¹·B (baseline) against the
// rewritten BH_SOLVE across system sizes.
func E4Solve(s Scale) ([]Row, error) {
	s = s.withDefaults()
	var rows []Row
	for m := 16; m <= s.SolveMax; m *= 2 {
		prog := SolveProgram(m)
		row, err := comparePrograms("E4", "inverse-vs-solve",
			fmt.Sprintf("m=%d", m), prog, rewrite.Default(), s, bindSolveInputs(m))
		if err != nil {
			return nil, err
		}
		row.Note = "INVERSE+MATMUL -> SOLVE"
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E5Workloads runs the end-to-end scientific kernels through the public
// API with the optimizer+fusion off versus fully on.
func E5Workloads(s Scale) ([]Row, error) {
	s = s.withDefaults()
	type workload struct {
		name  string
		param string
		run   func(*bohrium.Context) (float64, error)
		check func(float64) bool
	}
	n := s.VectorN
	grid := 96
	iters := 30
	workloads := []workload{
		{
			name: "heat-2d", param: fmt.Sprintf("grid=%dx%d iters=%d", grid, grid, iters),
			run:   func(c *bohrium.Context) (float64, error) { return Heat2D(c, grid, iters) },
			check: func(v float64) bool { return v >= 0 && v <= 100 },
		},
		{
			name: "black-scholes", param: fmt.Sprintf("N=%d", n),
			run:   func(c *bohrium.Context) (float64, error) { return BlackScholes(c, n) },
			check: func(v float64) bool { return v > 0 && v < 60 },
		},
		{
			name: "leibniz-pi", param: fmt.Sprintf("N=%d", n),
			run:   func(c *bohrium.Context) (float64, error) { return LeibnizPi(c, n) },
			check: func(v float64) bool { return math.Abs(v-math.Pi) < 1e-3 },
		},
		{
			name: "montecarlo-pi", param: fmt.Sprintf("N=%d", n),
			run:   func(c *bohrium.Context) (float64, error) { return MonteCarloPi(c, n) },
			check: func(v float64) bool { return math.Abs(v-math.Pi) < 0.05 },
		},
	}
	off := &rewrite.Options{} // all rewrites disabled
	var rows []Row
	for _, w := range workloads {
		var lastVal float64
		base, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{Optimizer: off, DisableFusion: true, Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx)
			lastVal = v
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.name, err)
		}
		baseVal := lastVal
		var optStats vm.Stats
		opt, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx)
			lastVal = v
			optStats = ctx.MustStats()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s optimized: %w", w.name, err)
		}
		note := fmt.Sprintf("value=%.5g", lastVal)
		if !w.check(lastVal) || math.Abs(lastVal-baseVal) > 1e-6*(1+math.Abs(baseVal)) {
			note = fmt.Sprintf("VALUE MISMATCH base=%v opt=%v", baseVal, lastVal)
		}
		row := Row{
			Experiment: "E5", Workload: w.name, Params: w.param,
			Baseline: base, Optimized: opt,
			Speedup:  float64(base) / float64(opt),
			PoolHits: optStats.PoolHits, BuffersAlloc: optStats.BuffersAllocated,
			FusedReductions: optStats.FusedReductions,
			PlanHits:        optStats.PlanHits, PlanMisses: optStats.PlanMisses,
			Note: note,
		}
		row.fillRoofline(optStats, opt)
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E6Ablations quantifies the design decisions D1–D4 from DESIGN.md.
func E6Ablations(s Scale) ([]Row, error) {
	s = s.withDefaults()
	var rows []Row

	// D1 — interference-aware gap tolerance: on the noisy stream, the
	// adjacent-only matcher (the paper's literal listings) merges
	// nothing; the gap-tolerant matcher collapses all k adds.
	noisy := AddMergeNoisyProgram(8, s.VectorN, tensor.Int64)
	adjacent := rewrite.NewPipeline(rewrite.AddMergeRule{AdjacentOnly: true})
	tolerant := rewrite.NewPipeline(rewrite.AddMergeRule{})
	adjOut, adjRep, err := adjacent.Optimize(noisy)
	if err != nil {
		return nil, err
	}
	tolOut, tolRep, err := tolerant.Optimize(noisy)
	if err != nil {
		return nil, err
	}
	adjTime, err := bestOf(s.Repeats, func() error {
		_, err := runProgram(adjOut.Clone(), s, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	tolTime, err := bestOf(s.Repeats, func() error {
		_, err := runProgram(tolOut.Clone(), s, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Experiment: "E6/D1", Workload: "gap-tolerance", Params: "noisy stream k=8",
		BytecodesBefore: adjRep.After.Instructions, BytecodesAfter: tolRep.After.Instructions,
		Baseline: adjTime, Optimized: tolTime, Speedup: float64(adjTime) / float64(tolTime),
		Note: fmt.Sprintf("adjacent-only merged %d, gap-tolerant merged %d",
			adjRep.TotalApplied(), tolRep.TotalApplied()),
	})

	// D2 — cost model: naive expansion of x^60 is a loss; the guard keeps
	// BH_POWER.
	guarded := rewrite.Build(rewrite.Options{PowerExpand: true, PowerStrategy: chains.StrategyNaive})
	unguarded := rewrite.Build(rewrite.Options{PowerExpand: true, PowerStrategy: chains.StrategyNaive, PowerNoCostModel: true})
	row, err := comparePrograms("E6/D2", "cost-model", fmt.Sprintf("x^60 N=%d", s.VectorN),
		PowerProgram(60, s.VectorN), unguarded, s, nil)
	if err != nil {
		return nil, err
	}
	_, guardRep, err := guarded.Optimize(PowerProgram(60, s.VectorN))
	if err != nil {
		return nil, err
	}
	row.Note = fmt.Sprintf("ungated naive chain: %d bc; cost model keeps POWER (%d bc)",
		row.BytecodesAfter, guardRep.After.Instructions)
	rows = append(rows, row)

	// D3 — liveness gate: with the inverse observed afterwards, the
	// rewrite must not fire; disabling the gate breaks the program and
	// pipeline validation catches it.
	live := SolveProgram(32)
	live.EmitSync(bytecode.Reg(1, tensor.NewView(tensor.MustShape(32, 32)))) // observe A⁻¹
	_, liveRep, err := rewrite.NewPipeline(rewrite.SolveRewriteRule{}).Optimize(live)
	if err != nil {
		return nil, err
	}
	unsound := rewrite.NewPipeline(rewrite.SolveRewriteRule{DisableLivenessCheck: true})
	_, _, unsoundErr := unsound.Optimize(live)
	note := "gate blocked rewrite (A⁻¹ live)"
	if liveRep.Applied["inverse-to-solve"] != 0 {
		note = "GATE FAILED: rewrite fired on live inverse"
	}
	if unsoundErr == nil {
		note += "; ABLATION UNEXPECTEDLY VALID"
	} else {
		note += "; ungated rewrite rejected by validator"
	}
	rows = append(rows, Row{
		Experiment: "E6/D3", Workload: "liveness-gate", Params: "m=32, A⁻¹ synced",
		BytecodesBefore: liveRep.Before.Instructions, BytecodesAfter: liveRep.After.Instructions,
		Speedup: 1, Note: note,
	})

	// D4 — rewrite-then-fuse: the unoptimized Listing-2 stream, executed
	// without and with sweep fusion.
	prog := AddMergeProgram(8, s.VectorN, tensor.Float64)
	noFuse, err := bestOf(s.Repeats, func() error {
		_, err := runConfigured(prog.Clone(), s, vm.Config{Fusion: false, SkipValidation: true})
		return err
	})
	if err != nil {
		return nil, err
	}
	fuse, err := bestOf(s.Repeats, func() error {
		_, err := runConfigured(prog.Clone(), s, vm.Config{Fusion: true, SkipValidation: true})
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Experiment: "E6/D4", Workload: "fusion", Params: fmt.Sprintf("k=8 N=%d", s.VectorN),
		BytecodesBefore: prog.Len(), BytecodesAfter: prog.Len(),
		Baseline: noFuse, Optimized: fuse, Speedup: float64(noFuse) / float64(fuse),
		Note: "same byte-code, fused sweeps",
	})
	return stamp(rows, s), nil
}

// E7DTypeFusion measures the dtype-generalized fused engine: the same
// byte-code executed with fusion off versus on, across float and integer
// dtypes, each workload ending in a reduction the fused engine folds into
// the producer sweep. No rewrite pipeline runs — the experiment isolates
// the execution engine, so bc-before equals bc-after; the fredux column
// and the per-dtype note show the epilogue firing.
func E7DTypeFusion(s Scale) ([]Row, error) {
	s = s.withDefaults()
	type wl struct {
		name string
		prog *bytecode.Program
	}
	var workloads []wl
	for _, dt := range []tensor.DType{tensor.Float64, tensor.Float32} {
		workloads = append(workloads, wl{"black-scholes-" + dt.String(), BlackScholesProgram(dt, s.VectorN)})
	}
	for _, dt := range []tensor.DType{tensor.Int64, tensor.Int32} {
		workloads = append(workloads, wl{"checksum-" + dt.String(), ChecksumProgram(dt, s.VectorN)})
	}
	var rows []Row
	for _, w := range workloads {
		if err := w.prog.Validate(); err != nil {
			return nil, fmt.Errorf("bench: invalid workload %s: %w", w.name, err)
		}
		base, err := bestOf(s.Repeats, func() error {
			_, err := runConfigured(w.prog.Clone(), s, vm.Config{Fusion: false, SkipValidation: true})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.name, err)
		}
		var st vm.Stats
		opt, err := bestOf(s.Repeats, func() error {
			var err error
			st, err = runConfigured(w.prog.Clone(), s, vm.Config{Fusion: true, SkipValidation: true})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s fused: %w", w.name, err)
		}
		row := Row{
			Experiment: "E7", Workload: w.name, Params: fmt.Sprintf("N=%d", s.VectorN),
			BytecodesBefore: w.prog.Len(), BytecodesAfter: w.prog.Len(),
			Baseline: base, Optimized: opt, Speedup: float64(base) / float64(opt),
			PoolHits: st.PoolHits, BuffersAlloc: st.BuffersAllocated,
			FusedReductions: st.FusedReductions,
			Note:            "fused " + st.FusedByDType.String(),
		}
		row.fillRoofline(st, opt)
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E8PlanCache measures the batch-fingerprinted plan cache on workloads
// that flush a structurally identical batch every iteration (the
// middleware's kernel-cache scenario): baseline runs with the cache
// disabled and pays clone + rewrite pipeline + cluster analysis per
// flush, optimized runs with the cache on and compiles only the first
// iteration or two. Shapes are deliberately small-to-medium — that is
// where per-flush compilation overhead dominates the sweeps themselves.
func E8PlanCache(s Scale) ([]Row, error) {
	s = s.withDefaults()
	vec := s.VectorN >> 6
	if vec < 256 {
		vec = 256
	}
	grid := 64
	iters := 60
	type wl struct {
		name   string
		params string
		run    func(*bohrium.Context) (float64, error)
	}
	workloads := []wl{
		{
			name: "heat-2d-stream", params: fmt.Sprintf("grid=%dx%d iters=%d", grid, grid, iters),
			run: func(c *bohrium.Context) (float64, error) { return Heat2DStream(c, grid, iters) },
		},
		{
			name: "power-stream", params: fmt.Sprintf("N=%d iters=%d", vec, iters),
			run: func(c *bohrium.Context) (float64, error) { return PowerChainStream(c, vec, iters) },
		},
		{
			name: "jacobi-1d-stream", params: fmt.Sprintf("N=%d iters=%d", vec, iters),
			run: func(c *bohrium.Context) (float64, error) { return Jacobi1DStream(c, vec, iters) },
		},
	}
	var rows []Row
	for _, w := range workloads {
		var baseVal float64
		base, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{PlanCacheSize: -1, Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx)
			baseVal = v
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s uncached: %w", w.name, err)
		}
		var optVal float64
		var optStats vm.Stats
		opt, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx)
			optVal = v
			optStats = ctx.MustStats()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s cached: %w", w.name, err)
		}
		note := fmt.Sprintf("value=%.5g", optVal)
		if optVal != baseVal {
			note = fmt.Sprintf("VALUE MISMATCH uncached=%v cached=%v", baseVal, optVal)
		}
		row := Row{
			Experiment: "E8", Workload: w.name, Params: w.params,
			Baseline: base, Optimized: opt,
			Speedup:  float64(base) / float64(opt),
			PoolHits: optStats.PoolHits, BuffersAlloc: optStats.BuffersAllocated,
			FusedReductions: optStats.FusedReductions,
			PlanHits:        optStats.PlanHits, PlanMisses: optStats.PlanMisses,
			Note: note,
		}
		row.fillRoofline(optStats, opt)
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E9Pipeline measures the async submit/wait pipeline on the E8 stream
// workloads: baseline records and executes each batch synchronously
// (Flush per iteration, plan cache on — the E8 optimized configuration),
// optimized submits each batch to the background executor and keeps
// recording (Submit per iteration; only the final probe read waits).
// Both sides hit the plan cache in steady state, so the row isolates the
// overlap win: the recorder's per-iteration work — recording,
// fingerprinting, cache lookup, register bookkeeping — hidden behind the
// previous batch's sweeps. Values must be bit-identical; a mismatch is
// flagged in the note.
func E9Pipeline(s Scale) ([]Row, error) {
	s = s.withDefaults()
	vec := s.VectorN >> 6
	if vec < 256 {
		vec = 256
	}
	grid := 64
	iters := 60
	type wl struct {
		name   string
		params string
		run    func(*bohrium.Context, func() error) (float64, error)
	}
	workloads := []wl{
		{
			name: "heat-2d-stream", params: fmt.Sprintf("grid=%dx%d iters=%d", grid, grid, iters),
			run: func(c *bohrium.Context, step func() error) (float64, error) {
				return Heat2DStreamStep(c, grid, iters, step)
			},
		},
		{
			name: "power-accum-stream", params: fmt.Sprintf("N=%d iters=%d", vec, iters),
			run: func(c *bohrium.Context, step func() error) (float64, error) {
				return PowerAccumStreamStep(c, vec, iters, step)
			},
		},
		{
			name: "jacobi-1d-stream", params: fmt.Sprintf("N=%d iters=%d", vec, iters),
			run: func(c *bohrium.Context, step func() error) (float64, error) {
				return Jacobi1DStreamStep(c, vec, iters, step)
			},
		},
	}
	var rows []Row
	for _, w := range workloads {
		var syncVal float64
		base, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx, ctx.Flush)
			syncVal = v
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s sync: %w", w.name, err)
		}
		var asyncVal float64
		var asyncStats vm.Stats
		opt, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{Async: true, Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx, ctx.Submit)
			asyncVal = v
			asyncStats = ctx.MustStats()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s async: %w", w.name, err)
		}
		note := fmt.Sprintf("value=%.5g", asyncVal)
		if math.Float64bits(asyncVal) != math.Float64bits(syncVal) {
			note = fmt.Sprintf("VALUE MISMATCH sync=%v async=%v", syncVal, asyncVal)
		}
		row := Row{
			Experiment: "E9", Workload: w.name, Params: w.params,
			Baseline: base, Optimized: opt,
			Speedup:  float64(base) / float64(opt),
			PoolHits: asyncStats.PoolHits, BuffersAlloc: asyncStats.BuffersAllocated,
			FusedReductions: asyncStats.FusedReductions,
			PlanHits:        asyncStats.PlanHits, PlanMisses: asyncStats.PlanMisses,
			Pipelined: asyncStats.Pipelined,
			Note:      note,
		}
		row.fillRoofline(asyncStats, opt)
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E10MultiSession measures the shared-Runtime tentpole: K concurrent
// sessions each running a stream workload, private runtimes (every
// session its own pool, plan cache, and recycle pool — the pre-Runtime
// shape) versus one shared Runtime serving all K. The shared runtime is
// warmed by one throwaway session — the steady state of a server that has
// seen the workload before — so every measured session's flushes hit
// plans another session compiled (the xsess column) and recycle buffers
// other sessions freed. Values must be bit-identical across all sessions
// and both variants; a mismatch is flagged in the note.
func E10MultiSession(s Scale) ([]Row, error) {
	s = s.withDefaults()
	k := s.Sessions
	vec := s.VectorN >> 6
	if vec < 256 {
		vec = 256
	}
	grid := 64
	iters := 40
	type wl struct {
		name   string
		params string
		run    func(*bohrium.Context) (float64, error)
	}
	workloads := []wl{
		{
			name: "heat-2d-stream", params: fmt.Sprintf("K=%d grid=%dx%d iters=%d", k, grid, grid, iters),
			run: func(c *bohrium.Context) (float64, error) { return Heat2DStream(c, grid, iters) },
		},
		{
			name: "power-stream", params: fmt.Sprintf("K=%d N=%d iters=%d", k, vec, iters),
			run: func(c *bohrium.Context) (float64, error) { return PowerChainStream(c, vec, iters) },
		},
		{
			name: "jacobi-1d-stream", params: fmt.Sprintf("K=%d N=%d iters=%d", k, vec, iters),
			run: func(c *bohrium.Context) (float64, error) { return Jacobi1DStream(c, vec, iters) },
		},
	}

	var rows []Row
	for _, w := range workloads {
		// runK drives K sessions concurrently and returns their summed
		// stats and every session's value.
		runK := func(factory func() *bohrium.Context) (vm.Stats, []float64, error) {
			var mu sync.Mutex
			var total vm.Stats
			vals := make([]float64, k)
			var firstErr error
			var wg sync.WaitGroup
			for i := 0; i < k; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ctx := factory()
					defer ctx.Close()
					v, err := w.run(ctx)
					st, sErr := ctx.Stats()
					mu.Lock()
					defer mu.Unlock()
					vals[i] = v
					if err == nil {
						err = sErr
					}
					if err != nil && firstErr == nil {
						firstErr = err
					}
					total.Accumulate(st)
				}(i)
			}
			wg.Wait()
			return total, vals, firstErr
		}

		// Private runtimes: the pre-Runtime shape.
		var privStats vm.Stats
		var privVals []float64
		base, err := bestOf(s.Repeats, func() error {
			st, vals, err := runK(func() *bohrium.Context {
				return bohrium.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			})
			privStats, privVals = st, vals
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s private: %w", w.name, err)
		}

		// One shared runtime, warmed once so the measured sessions run in
		// plan-cache steady state.
		rt := bohrium.NewRuntime(nil)
		warm := rt.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
		if _, err := w.run(warm); err != nil {
			rt.Close()
			return nil, fmt.Errorf("%s warmup: %w", w.name, err)
		}
		warm.Close()
		var shStats vm.Stats
		var shVals []float64
		opt, err := bestOf(s.Repeats, func() error {
			st, vals, err := runK(func() *bohrium.Context {
				return rt.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			})
			shStats, shVals = st, vals
			return err
		})
		rt.Close()
		if err != nil {
			return nil, fmt.Errorf("%s shared: %w", w.name, err)
		}

		// Every session, in both variants, must agree bit-for-bit.
		note := fmt.Sprintf("value=%.5g; alloc %d -> %d", shVals[0], privStats.BuffersAllocated, shStats.BuffersAllocated)
		for i := 0; i < k; i++ {
			if math.Float64bits(privVals[i]) != math.Float64bits(shVals[0]) ||
				math.Float64bits(shVals[i]) != math.Float64bits(shVals[0]) {
				note = fmt.Sprintf("VALUE MISMATCH session=%d private=%v shared=%v", i, privVals[i], shVals[i])
				break
			}
		}
		// Cross-session reuse: the cache was warmed by another session, so
		// in a healthy shared runtime the measured sessions miss nothing
		// and every hit is on a plan some other session compiled. Any miss
		// means a session compiled for itself — its later hits could be
		// self-hits — so the count collapses to 0 rather than letting
		// own-plan hits masquerade as sharing (a per-session cache would
		// otherwise still show hits >> misses and sneak past the guard).
		cross := 0
		if shStats.PlanMisses == 0 {
			cross = shStats.PlanHits
		}
		row := Row{
			Experiment: "E10", Workload: w.name, Params: w.params,
			Baseline: base, Optimized: opt,
			Speedup:  float64(base) / float64(opt),
			PoolHits: shStats.PoolHits, BuffersAlloc: shStats.BuffersAllocated,
			FusedReductions: shStats.FusedReductions,
			PlanHits:        shStats.PlanHits, PlanMisses: shStats.PlanMisses,
			Sessions:         k,
			CrossSessionHits: cross,
			BaselineAllocs:   privStats.BuffersAllocated,
			Note:             note,
		}
		row.fillRoofline(shStats, opt)
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// E12XPlanFuse measures cross-plan fusion on the iterative stream
// workloads: baseline flushes one batch per iteration with the plan
// cache warm (the E8 optimized configuration — the best the runtime does
// without crossing plan boundaries), optimized additionally turns on
// Config.XPlanFuse, so the sequence predictor defers hot batches and
// submits them combined with their successor. The combined program goes
// through the ordinary rewrite pipeline, so repeated identical
// computation dedups (seq-reuse) and fusion clusters span the former
// boundary; the xplan column counts the combined submissions. Values
// must be bit-identical to the unfused run; a mismatch is flagged in the
// note.
func E12XPlanFuse(s Scale) ([]Row, error) {
	s = s.withDefaults()
	vec := s.VectorN >> 6
	if vec < 256 {
		vec = 256
	}
	// The power-accum row runs on a larger vector than the other streams:
	// its combined batches dedup whole sweeps (seq-reuse), a win that
	// scales with the array, so the row measures execution-work elision
	// rather than compile-overhead amortization.
	pvec := s.VectorN >> 3
	if pvec < 4096 {
		pvec = 4096
	}
	grid := 64
	iters := 90
	type wl struct {
		name   string
		params string
		run    func(*bohrium.Context) (float64, error)
	}
	workloads := []wl{
		{
			name: "heat-2d-stream", params: fmt.Sprintf("grid=%dx%d iters=%d", grid, grid, iters),
			run: func(c *bohrium.Context) (float64, error) { return Heat2DStream(c, grid, iters) },
		},
		{
			name: "power-accum-stream", params: fmt.Sprintf("N=%d iters=%d", pvec, iters),
			run: func(c *bohrium.Context) (float64, error) {
				return PowerAccumStreamStep(c, pvec, iters, c.Flush)
			},
		},
		{
			name: "jacobi-1d-stream", params: fmt.Sprintf("N=%d iters=%d", vec, iters),
			run: func(c *bohrium.Context) (float64, error) { return Jacobi1DStream(c, vec, iters) },
		},
	}
	var rows []Row
	for _, w := range workloads {
		var baseVal float64
		base, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx)
			baseVal = v
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s unfused: %w", w.name, err)
		}
		var optVal float64
		var optStats vm.Stats
		opt, err := bestOf(s.Repeats, func() error {
			ctx := bohrium.NewContext(&bohrium.Config{XPlanFuse: true, Backend: s.Backend, ChunkBytes: s.ChunkBytes})
			defer ctx.Close()
			v, err := w.run(ctx)
			optVal = v
			optStats = ctx.MustStats()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s fused: %w", w.name, err)
		}
		note := fmt.Sprintf("value=%.5g", optVal)
		if math.Float64bits(optVal) != math.Float64bits(baseVal) {
			note = fmt.Sprintf("VALUE MISMATCH unfused=%v fused=%v", baseVal, optVal)
		}
		row := Row{
			Experiment: "E12", Workload: w.name, Params: w.params,
			Baseline: base, Optimized: opt,
			Speedup:  float64(base) / float64(opt),
			PoolHits: optStats.PoolHits, BuffersAlloc: optStats.BuffersAllocated,
			FusedReductions: optStats.FusedReductions,
			PlanHits:        optStats.PlanHits, PlanMisses: optStats.PlanMisses,
			XPlanFused: optStats.XPlanFused,
			Note:       note,
		}
		row.fillRoofline(optStats, opt)
		rows = append(rows, row)
	}
	return stamp(rows, s), nil
}

// All runs every experiment and returns the rows grouped in order.
func All(s Scale) ([]Row, error) {
	var rows []Row
	for _, fn := range []func(Scale) ([]Row, error){
		E1AddMerge, E2PowerChain, E3PowerSweep, E4Solve, E5Workloads, E6Ablations, E7DTypeFusion, E8PlanCache, E9Pipeline, E10MultiSession, E12XPlanFuse,
	} {
		r, err := fn(s)
		if err != nil {
			return rows, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
