// Package bench is the experiment substrate: workload generators for every
// listing/equation/claim in the paper plus the scientific kernels Bohrium's
// own evaluations use (heat diffusion, Black-Scholes, Leibniz π,
// Monte-Carlo π), and a harness that regenerates the experiment tables in
// EXPERIMENTS.md.
package bench

import (
	"math"

	"bohrium"
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
)

// AddMergeProgram builds the paper's Listing 2 generalized to k repeated
// "a += 1" byte-codes over an n-element vector of the given dtype
// (experiment E1).
func AddMergeProgram(k, n int, dt tensor.DType) *bytecode.Program {
	p := bytecode.NewProgram()
	a0 := p.NewReg(dt, n)
	v := tensor.NewView(tensor.MustShape(n))
	p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstOf(dt, 0)))
	for i := 0; i < k; i++ {
		p.EmitBinary(bytecode.OpAdd, bytecode.Reg(a0, v), bytecode.Reg(a0, v),
			bytecode.Const(bytecode.ConstOf(dt, 1)))
	}
	p.EmitSync(bytecode.Reg(a0, v))
	return p
}

// AddMergeNoisyProgram interleaves each "a += 1" with an unrelated
// byte-code on a second register — the stream shape real front-ends emit,
// used by the D1 gap-tolerance ablation (E6).
func AddMergeNoisyProgram(k, n int, dt tensor.DType) *bytecode.Program {
	p := bytecode.NewProgram()
	a0 := p.NewReg(dt, n)
	a1 := p.NewReg(dt, n)
	v := tensor.NewView(tensor.MustShape(n))
	p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstOf(dt, 0)))
	p.EmitIdentity(bytecode.Reg(a1, v), bytecode.Const(bytecode.ConstOf(dt, 5)))
	for i := 0; i < k; i++ {
		p.EmitBinary(bytecode.OpAdd, bytecode.Reg(a0, v), bytecode.Reg(a0, v),
			bytecode.Const(bytecode.ConstOf(dt, 1)))
		p.EmitBinary(bytecode.OpMultiply, bytecode.Reg(a1, v), bytecode.Reg(a1, v),
			bytecode.Reg(a1, v))
	}
	p.EmitSync(bytecode.Reg(a0, v))
	p.EmitSync(bytecode.Reg(a1, v))
	return p
}

// PowerProgram builds "a1 = a0 ^ exp; sync" over n elements (experiments
// E2/E3). The optimizer decides whether BH_POWER survives.
func PowerProgram(exp int64, n int) *bytecode.Program {
	p := bytecode.NewProgram()
	a0 := p.NewReg(tensor.Float64, n)
	a1 := p.NewReg(tensor.Float64, n)
	v := tensor.NewView(tensor.MustShape(n))
	p.EmitIdentity(bytecode.Reg(a0, v), bytecode.Const(bytecode.ConstFloat(1.0000001)))
	p.EmitBinary(bytecode.OpPower, bytecode.Reg(a1, v), bytecode.Reg(a0, v),
		bytecode.Const(bytecode.ConstInt(exp)))
	p.EmitSync(bytecode.Reg(a1, v))
	return p
}

// SolveProgram builds the equation (2) byte-code: x = A⁻¹·B for an m×m
// system (experiment E4). Registers a0 (A) and a2 (B) are inputs the
// harness binds to deterministic well-conditioned data.
func SolveProgram(m int) *bytecode.Program {
	p := bytecode.NewProgram()
	a := p.NewReg(tensor.Float64, m*m)
	inv := p.NewReg(tensor.Float64, m*m)
	b := p.NewReg(tensor.Float64, m)
	x := p.NewReg(tensor.Float64, m)
	vm2 := tensor.NewView(tensor.MustShape(m, m))
	vcol := tensor.NewView(tensor.MustShape(m, 1))
	vvec := tensor.NewView(tensor.MustShape(m))
	p.MarkInput(a)
	p.MarkInput(b)
	p.EmitUnary(bytecode.OpInverse, bytecode.Reg(inv, vm2), bytecode.Reg(a, vm2))
	p.EmitBinary(bytecode.OpMatmul, bytecode.Reg(x, vcol), bytecode.Reg(inv, vm2), bytecode.Reg(b, vcol))
	p.EmitSync(bytecode.Reg(x, vvec))
	return p
}

// BlackScholesProgram builds a byte-code-level Black-Scholes pricing
// kernel over n options of the given float dtype, ending in a mean-price
// reduction (experiment E7). Every register shares one dtype, so the
// whole elementwise chain fuses into a single sweep and the final
// BH_ADD_REDUCE rides along as a reduction epilogue; all temporaries are
// freed, so the fused run materializes nothing but the inputs and the
// scalar result. Prices use spot in [80, 120), strike 100, r=2%,
// sigma=30%, T=1, with the normal CDF via the tanh approximation
// Φ(x) ≈ ½(1 + tanh(√(2/π)(x + 0.044715x³))).
func BlackScholesProgram(dt tensor.DType, n int) *bytecode.Program {
	p := bytecode.NewProgram()
	v := tensor.NewView(tensor.MustShape(n))
	v1 := tensor.NewView(tensor.MustShape(1))
	s := p.NewReg(dt, n)   // spot, then s·Φ(d1), then the price
	d1 := p.NewReg(dt, n)  // d1, then Φ(d1)
	d2 := p.NewReg(dt, n)  // d2, then Φ(d2), then the discounted put leg
	tmp := p.NewReg(dt, n) // CDF scratch
	out := p.NewReg(dt, 1)
	reg := func(r bytecode.RegID) bytecode.Operand { return bytecode.Reg(r, v) }
	c := func(x float64) bytecode.Operand { return bytecode.Const(bytecode.ConstFloat(x)) }
	bin := p.EmitBinary
	un := p.EmitUnary

	const r0, sigma = 0.02, 0.3
	p.Emit(bytecode.Instruction{Op: bytecode.OpRandom, Out: reg(s),
		In1: bytecode.Const(bytecode.ConstInt(101)), In2: bytecode.Const(bytecode.ConstInt(0))})
	bin(bytecode.OpMultiply, reg(s), reg(s), c(40)) // spot in [80, 120)
	bin(bytecode.OpAdd, reg(s), reg(s), c(80))

	// d1 = (log(S/K) + r + sigma²/2) / sigma  (T = 1), d2 = d1 - sigma.
	bin(bytecode.OpDivide, reg(d1), reg(s), c(100))
	un(bytecode.OpLog, reg(d1), reg(d1))
	bin(bytecode.OpAdd, reg(d1), reg(d1), c(r0+sigma*sigma/2))
	bin(bytecode.OpDivide, reg(d1), reg(d1), c(sigma))
	bin(bytecode.OpSubtract, reg(d2), reg(d1), c(sigma))

	// cnd rewrites x in place to Φ(x) using tmp as scratch.
	cnd := func(x bytecode.RegID) {
		bin(bytecode.OpMultiply, reg(tmp), reg(x), reg(x))
		bin(bytecode.OpMultiply, reg(tmp), reg(tmp), reg(x))
		bin(bytecode.OpMultiply, reg(tmp), reg(tmp), c(0.044715))
		bin(bytecode.OpAdd, reg(tmp), reg(tmp), reg(x))
		bin(bytecode.OpMultiply, reg(tmp), reg(tmp), c(math.Sqrt(2/math.Pi)))
		un(bytecode.OpTanh, reg(x), reg(tmp))
		bin(bytecode.OpAdd, reg(x), reg(x), c(1))
		bin(bytecode.OpMultiply, reg(x), reg(x), c(0.5))
	}
	cnd(d1)
	cnd(d2)

	// price = S·Φ(d1) - K·e^{-r}·Φ(d2), then the mean over all options.
	bin(bytecode.OpMultiply, reg(s), reg(s), reg(d1))
	bin(bytecode.OpMultiply, reg(d2), reg(d2), c(100*math.Exp(-r0)))
	bin(bytecode.OpSubtract, reg(s), reg(s), reg(d2))
	p.EmitReduce(bytecode.OpAddReduce, bytecode.Reg(out, v1), reg(s), 0)
	bin(bytecode.OpDivide, bytecode.Reg(out, v1), bytecode.Reg(out, v1), c(float64(n)))
	for _, r := range []bytecode.RegID{s, d1, d2, tmp} {
		p.EmitFree(reg(r))
	}
	p.EmitSync(bytecode.Reg(out, v1))
	return p
}

// ChecksumProgram builds an integer hash-and-fold workload of the given
// integer dtype (experiment E7): t = ((x·31+7) mod m)·x wrapped in the
// dtype, folded with BH_ADD_REDUCE. Integer folds are associative, so the
// fused epilogue is bit-equal to interpreted execution at any worker
// count.
func ChecksumProgram(dt tensor.DType, n int) *bytecode.Program {
	p := bytecode.NewProgram()
	v := tensor.NewView(tensor.MustShape(n))
	v1 := tensor.NewView(tensor.MustShape(1))
	x := p.NewReg(dt, n)
	t := p.NewReg(dt, n)
	out := p.NewReg(dt, 1)
	reg := func(r bytecode.RegID) bytecode.Operand { return bytecode.Reg(r, v) }
	ci := func(k int64) bytecode.Operand { return bytecode.Const(bytecode.ConstInt(k)) }

	p.Emit(bytecode.Instruction{Op: bytecode.OpRandom, Out: reg(x), In1: ci(211), In2: ci(0)})
	p.EmitBinary(bytecode.OpMod, reg(x), reg(x), ci(1_000_003))
	p.EmitBinary(bytecode.OpMultiply, reg(t), reg(x), ci(31))
	p.EmitBinary(bytecode.OpAdd, reg(t), reg(t), ci(7))
	p.EmitBinary(bytecode.OpMod, reg(t), reg(t), ci(65_521))
	p.EmitBinary(bytecode.OpMultiply, reg(t), reg(t), reg(x))
	p.EmitReduce(bytecode.OpAddReduce, bytecode.Reg(out, v1), reg(t), 0)
	p.EmitFree(reg(t))
	p.EmitFree(reg(x))
	p.EmitSync(bytecode.Reg(out, v1))
	return p
}

// Front-end workloads (E5): the scientific kernels Bohrium's publications
// evaluate with, expressed against the public API so the whole pipeline
// (recording → optimization → fused VM) is measured.

// Heat2D runs iters Jacobi sweeps of the 2-D heat equation on an n×n grid
// and returns the temperature at a probe near the hot boundary (heat needs
// ~n² sweeps to reach the center). The stencil is pure view arithmetic —
// the workload the CINEMA imaging project motivates.
func Heat2D(ctx *bohrium.Context, n, iters int) (float64, error) {
	grid := ctx.Zeros(n, n)
	// Hot northern boundary.
	top := grid.MustSlice(0, 0, 1, 1)
	top.AddC(100)

	center := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 1, n-1, 1)
	north := grid.MustSlice(0, 0, n-2, 1).MustSlice(1, 1, n-1, 1)
	south := grid.MustSlice(0, 2, n, 1).MustSlice(1, 1, n-1, 1)
	west := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 0, n-2, 1)
	east := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 2, n, 1)

	for it := 0; it < iters; it++ {
		next := center.Plus(north)
		next.Add(south).Add(west).Add(east).MulC(0.2)
		center.Assign(next)
		// Each iteration's scratch grid dies here; freeing it lets the
		// VM's register pool recycle one buffer per sweep instead of
		// allocating iters of them.
		next.Free()
	}
	return grid.At(2, n/2)
}

// BlackScholes prices N call options with the classic Black-Scholes
// formula (normal CDF via the tanh approximation) and returns the mean
// price.
func BlackScholes(ctx *bohrium.Context, n int) (float64, error) {
	s := ctx.Random(101, n)
	s.MulC(40).AddC(80) // spot in [80, 120)
	k := ctx.Full(100, n)
	tte := ctx.Full(1.0, n) // one year
	const r, sigma = 0.02, 0.3

	sqrtT := tte.Copy().Sqrt()
	d1 := s.Over(k).Log()
	d1.AddC(r + sigma*sigma/2) // T = 1
	d1.Div(sqrtT.TimesC(sigma))
	d2 := d1.Copy().SubC(sigma) // d1 - sigma*sqrt(T)

	price := s.Times(cnd(d1))
	discount := math.Exp(-r)
	price.Sub(k.TimesC(discount).Mul(cnd(d2)))
	return price.Mean().Scalar()
}

// cnd approximates the standard normal CDF:
// Φ(x) ≈ ½(1 + tanh(√(2/π)(x + 0.044715x³))).
func cnd(x *bohrium.Array) *bohrium.Array {
	x3 := x.Power(3).MulC(0.044715)
	inner := x.Plus(x3).MulC(math.Sqrt(2 / math.Pi))
	return inner.Tanh().AddC(1).MulC(0.5)
}

// Streaming variants (E8/E9): the same iterative kernels flushing one
// batch per iteration — the stream shape an interactive or middleware
// client produces, where the runtime never sees the whole loop at once.
// Each iteration frees its temporaries, so the front-end recycles their
// registers and every steady-state iteration records a structurally
// identical batch: the first iterations compile, the rest hit the plan
// cache and skip the rewrite pipeline and fusion analysis entirely.
//
// Every stream takes the per-iteration synchronization as a step
// function so one workload body serves both flush disciplines: step =
// ctx.Flush executes each batch before the next records (E8), step =
// ctx.Submit hands the batch to the async executor and keeps recording
// (E9) — the final probe read is the only wait. Values must be
// bit-identical either way; the differential async tests pin that.

// Heat2DStreamStep runs iters Jacobi sweeps on an n×n grid, calling step
// after each iteration's batch, and returns the same probe as Heat2D.
func Heat2DStreamStep(ctx *bohrium.Context, n, iters int, step func() error) (float64, error) {
	grid := ctx.Zeros(n, n)
	top := grid.MustSlice(0, 0, 1, 1)
	top.AddC(100)

	center := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 1, n-1, 1)
	north := grid.MustSlice(0, 0, n-2, 1).MustSlice(1, 1, n-1, 1)
	south := grid.MustSlice(0, 2, n, 1).MustSlice(1, 1, n-1, 1)
	west := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 0, n-2, 1)
	east := grid.MustSlice(0, 1, n-1, 1).MustSlice(1, 2, n, 1)

	for it := 0; it < iters; it++ {
		next := center.Plus(north)
		next.Add(south).Add(west).Add(east).MulC(0.2)
		center.Assign(next)
		next.Free()
		if err := step(); err != nil {
			return 0, err
		}
	}
	return grid.At(2, n/2)
}

// Heat2DStream is Heat2DStreamStep with one synchronous flush per
// iteration (the E8 discipline).
func Heat2DStream(ctx *bohrium.Context, n, iters int) (float64, error) {
	return Heat2DStreamStep(ctx, n, iters, ctx.Flush)
}

// PowerChainStream raises a kept base to the 10th power into a fresh
// temporary and folds it to a scalar, once per iteration with a flush in
// between. The E2/E3 power-expansion rewrite runs on the first batch;
// identical later batches replay its compiled plan. Each iteration
// *reads* the scalar, so this stream cannot pipeline — PowerAccumStream
// is its deferred-read sibling.
func PowerChainStream(ctx *bohrium.Context, n, iters int) (float64, error) {
	x := ctx.Full(1.0000001, n)
	total := 0.0
	for it := 0; it < iters; it++ {
		p := x.Power(10)
		s := p.Sum()
		v, err := s.Scalar()
		if err != nil {
			return 0, err
		}
		total += v
		p.Free()
		s.Free()
	}
	return total / float64(iters), nil
}

// PowerAccumStreamStep is the pipelinable power chain: every iteration
// raises the kept base to the 10th power, folds it to a scalar, and adds
// it into a kept accumulator on the device side — no per-iteration read
// forces a wait, so with step = Submit the whole loop streams through
// the executor and only the final read synchronizes. Returns the mean of
// the per-iteration sums, exactly PowerChainStream's result.
func PowerAccumStreamStep(ctx *bohrium.Context, n, iters int, step func() error) (float64, error) {
	x := ctx.Full(1.0000001, n)
	acc := ctx.Zeros(1)
	for it := 0; it < iters; it++ {
		p := x.Power(10)
		s := p.Sum()
		acc.Add(s)
		p.Free()
		s.Free()
		if err := step(); err != nil {
			return 0, err
		}
	}
	v, err := acc.At(0)
	if err != nil {
		return 0, err
	}
	return v / float64(iters), nil
}

// Jacobi1DStreamStep solves the tridiagonal system of the 1-D Poisson
// equation -u” = 1 on n points by Jacobi iteration, one batch per
// sweep: u[i] ← (u[i-1] + u[i+1] + h²)/2. It returns the midpoint value.
func Jacobi1DStreamStep(ctx *bohrium.Context, n, iters int, step func() error) (float64, error) {
	u := ctx.Zeros(n)
	h := 1.0 / float64(n-1)
	f := ctx.Full(h*h, n)
	uc := u.MustSlice(0, 1, n-1, 1)
	ul := u.MustSlice(0, 0, n-2, 1)
	ur := u.MustSlice(0, 2, n, 1)
	fc := f.MustSlice(0, 1, n-1, 1)
	for it := 0; it < iters; it++ {
		t := ul.Plus(ur)
		t.Add(fc).MulC(0.5)
		uc.Assign(t)
		t.Free()
		if err := step(); err != nil {
			return 0, err
		}
	}
	return u.At(n / 2)
}

// Jacobi1DStream is Jacobi1DStreamStep with one synchronous flush per
// sweep (the E8 discipline).
func Jacobi1DStream(ctx *bohrium.Context, n, iters int) (float64, error) {
	return Jacobi1DStreamStep(ctx, n, iters, ctx.Flush)
}

// LeibnizPi sums n terms of the Leibniz series 4·Σ(-1)ⁱ/(2i+1).
func LeibnizPi(ctx *bohrium.Context, n int) (float64, error) {
	i := ctx.Arange(n)
	sign := i.Copy().ModC(2).MulC(-2).AddC(1) // +1, -1, +1, ...
	denom := i.MulC(2).AddC(1)                // in place: 2i+1
	return sign.Over(denom).Sum().MulC(4).Scalar()
}

// MonteCarloPi estimates π from n uniform points in the unit square.
func MonteCarloPi(ctx *bohrium.Context, n int) (float64, error) {
	x := ctx.Random(7, n)
	y := ctx.Random(8, n)
	r2 := x.Times(x).Add(y.Times(y))
	inside := r2.LessC(1).AsType(tensor.Float64)
	return inside.Sum().MulC(4).DivC(float64(n)).Scalar()
}
