package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"bohrium"
	"bohrium/internal/bytecode"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// tinyScale keeps unit-test runs fast; the experiment *shapes* (who wins)
// hold at any scale, which is itself part of what we assert.
func tinyScale() Scale {
	return Scale{VectorN: 1 << 12, SolveMax: 32, Repeats: 1}
}

func TestWorkloadProgramsValidate(t *testing.T) {
	progs := map[string]interface{ Validate() error }{
		"add-merge":       AddMergeProgram(8, 100, tensor.Float64),
		"add-merge-noisy": AddMergeNoisyProgram(8, 100, tensor.Int64),
		"power":           PowerProgram(10, 100),
		"solve":           SolveProgram(8),
	}
	for name, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHeat2DConverges(t *testing.T) {
	ctx := bohrium.NewContext(nil)
	defer ctx.Close()
	v, err := Heat2D(ctx, 24, 200)
	if err != nil {
		t.Fatal(err)
	}
	// With a single hot boundary at 100, interior settles strictly
	// between 0 and 100 and well above 0 after 200 sweeps.
	if v <= 0.1 || v >= 100 {
		t.Errorf("center temperature = %v, want in (0.1, 100)", v)
	}
}

func TestHeat2DOptimizerEquivalence(t *testing.T) {
	plain := bohrium.NewContext(&bohrium.Config{DisableFusion: true})
	defer plain.Close()
	vPlain, err := Heat2D(plain, 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	fused := bohrium.NewContext(nil)
	defer fused.Close()
	vFused, err := Heat2D(fused, 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vPlain-vFused) > 1e-9 {
		t.Errorf("heat results differ: %v vs %v", vPlain, vFused)
	}
}

func TestBlackScholesPlausible(t *testing.T) {
	ctx := bohrium.NewContext(nil)
	defer ctx.Close()
	v, err := BlackScholes(ctx, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// ATM-ish calls on spots 80-120, strike 100: mean price in a sane band.
	if v < 1 || v > 40 {
		t.Errorf("mean option price = %v, want in [1, 40]", v)
	}
}

func TestLeibnizPi(t *testing.T) {
	ctx := bohrium.NewContext(nil)
	defer ctx.Close()
	v, err := LeibnizPi(ctx, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Pi) > 1e-4 {
		t.Errorf("Leibniz pi = %v", v)
	}
}

func TestMonteCarloPi(t *testing.T) {
	ctx := bohrium.NewContext(nil)
	defer ctx.Close()
	v, err := MonteCarloPi(ctx, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Pi) > 0.05 {
		t.Errorf("Monte Carlo pi = %v", v)
	}
}

func TestE1Shape(t *testing.T) {
	rows, err := E1AddMerge(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		// k adds + identity + sync collapse to 3 byte-codes.
		if r.BytecodesAfter != 3 {
			t.Errorf("%s %s: after = %d, want 3", r.Workload, r.Params, r.BytecodesAfter)
		}
		if r.BytecodesBefore <= r.BytecodesAfter {
			t.Errorf("%s %s: no byte-code reduction", r.Workload, r.Params)
		}
	}
}

func TestE2Shape(t *testing.T) {
	rows, err := E2PowerChain(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	// Paper-exact chain lengths: 9 (Listing 4), 5 (Listing 5), 4 (binary);
	// programs carry IDENTITY + chain + SYNC.
	wantAfter := []int{11, 7, 6}
	for i, r := range rows {
		if r.BytecodesAfter != wantAfter[i] {
			t.Errorf("row %d (%s): after = %d, want %d", i, r.Note, r.BytecodesAfter, wantAfter[i])
		}
	}
}

func TestE4Shape(t *testing.T) {
	rows, err := E4Solve(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// INVERSE+MATMUL (plus SYNC) becomes SOLVE (plus SYNC).
		if r.BytecodesAfter >= r.BytecodesBefore {
			t.Errorf("%s: no shrink (%d -> %d)", r.Params, r.BytecodesBefore, r.BytecodesAfter)
		}
	}
}

func TestE6D1GapToleranceWins(t *testing.T) {
	rows, err := E6Ablations(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	var d1 *Row
	for i := range rows {
		if rows[i].Experiment == "E6/D1" {
			d1 = &rows[i]
		}
	}
	if d1 == nil {
		t.Fatal("no D1 row")
	}
	// Adjacent-only merges nothing on the noisy stream; gap tolerance
	// merges all 7 pairs.
	if !strings.Contains(d1.Note, "adjacent-only merged 0") {
		t.Errorf("D1 note = %q", d1.Note)
	}
	if !strings.Contains(d1.Note, "gap-tolerant merged 7") {
		t.Errorf("D1 note = %q", d1.Note)
	}
}

func TestE5ValuesAgree(t *testing.T) {
	rows, err := E5Workloads(Scale{VectorN: 1 << 14, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if strings.Contains(r.Note, "MISMATCH") {
			t.Errorf("%s: %s", r.Workload, r.Note)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	rows, err := E2PowerChain(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	out := Table(rows)
	if !strings.Contains(out, "E2") || !strings.Contains(out, "speedup") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestE7DTypeWorkloads(t *testing.T) {
	// The dtype workloads must validate, produce identical results fused
	// and unfused (bit-equal: the epilogue mirrors the interpreter's fold
	// strategy), and actually fire the reduction epilogue.
	progs := map[string]*bytecode.Program{
		"black-scholes-float64": BlackScholesProgram(tensor.Float64, 4096),
		"black-scholes-float32": BlackScholesProgram(tensor.Float32, 4096),
		"checksum-int64":        ChecksumProgram(tensor.Int64, 4096),
		"checksum-int32":        ChecksumProgram(tensor.Int32, 4096),
	}
	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			out := bytecode.RegID(len(p.Regs) - 1)
			view := tensor.NewView(tensor.MustShape(1))
			values := make([]float64, 2)
			for i, fusion := range []bool{false, true} {
				m := vm.New(vm.Config{Fusion: fusion})
				defer m.Close()
				if err := m.Run(p.Clone()); err != nil {
					t.Fatalf("fusion=%v: %v", fusion, err)
				}
				tt, ok := m.Tensor(out, view)
				if !ok {
					t.Fatalf("fusion=%v: result register missing", fusion)
				}
				values[i] = tt.Buf.Get(0)
				if fusion && m.Stats().FusedReductions != 1 {
					t.Errorf("FusedReductions = %d, want 1", m.Stats().FusedReductions)
				}
			}
			if values[0] != values[1] {
				t.Errorf("fused %v != unfused %v", values[1], values[0])
			}
			if strings.HasPrefix(name, "black-scholes") {
				// Mean call price for spots 80-120, strike 100: sane band.
				if values[0] < 1 || values[0] > 40 {
					t.Errorf("mean option price = %v, want in [1, 40]", values[0])
				}
			}
		})
	}
}

func TestE7Shape(t *testing.T) {
	rows, err := E7DTypeFusion(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.FusedReductions < 1 {
			t.Errorf("%s: FusedReductions = %d, want >= 1", r.Workload, r.FusedReductions)
		}
		if !strings.Contains(r.Note, "fused ") {
			t.Errorf("%s: note %q lacks per-dtype counts", r.Workload, r.Note)
		}
	}
}

// TestStreamWorkloadsCachedEqualsUncached is the plan-cache differential
// sweep: every E-series streaming workload must produce bit-for-bit the
// same result with the cache enabled and disabled. Run under -race in CI,
// it also exercises the cached execution paths for data races.
func TestStreamWorkloadsCachedEqualsUncached(t *testing.T) {
	workloads := []struct {
		name string
		run  func(*bohrium.Context) (float64, error)
	}{
		{"heat-2d-stream", func(c *bohrium.Context) (float64, error) { return Heat2DStream(c, 24, 30) }},
		{"power-stream", func(c *bohrium.Context) (float64, error) { return PowerChainStream(c, 512, 30) }},
		{"jacobi-1d-stream", func(c *bohrium.Context) (float64, error) { return Jacobi1DStream(c, 512, 30) }},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			off := bohrium.NewContext(&bohrium.Config{PlanCacheSize: -1})
			defer off.Close()
			want, err := w.run(off)
			if err != nil {
				t.Fatal(err)
			}
			on := bohrium.NewContext(nil)
			defer on.Close()
			got, err := w.run(on)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("cached %v != uncached %v", got, want)
			}
			st := on.MustStats()
			if st.PlanHits == 0 {
				t.Errorf("cached run never hit the plan cache (misses=%d)", st.PlanMisses)
			}
			if stOff := off.MustStats(); stOff.PlanHits != 0 || stOff.PlanMisses != 0 {
				t.Errorf("uncached run touched the plan cache: %+v", stOff)
			}
		})
	}
}

// TestE8Shape checks the plan-cache experiment reports hits on every
// workload and identical values across cached/uncached runs.
func TestE8Shape(t *testing.T) {
	rows, err := E8PlanCache(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("E8 rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.PlanHits == 0 {
			t.Errorf("%s: zero plan-cache hits (misses=%d)", r.Workload, r.PlanMisses)
		}
		if strings.Contains(r.Note, "MISMATCH") {
			t.Errorf("%s: %s", r.Workload, r.Note)
		}
	}
}

// TestStreamWorkloadsAsyncEqualsSync is the pipelining differential
// sweep: every step-parameterized stream must produce bit-for-bit the
// same result submitted through the async executor as flushed
// synchronously, and the async run must actually pipeline. Run under
// -race in CI this exercises the recorder/executor split on the bench
// workloads themselves.
func TestStreamWorkloadsAsyncEqualsSync(t *testing.T) {
	workloads := []struct {
		name string
		run  func(*bohrium.Context, func() error) (float64, error)
	}{
		{"heat-2d-stream", func(c *bohrium.Context, step func() error) (float64, error) {
			return Heat2DStreamStep(c, 24, 30, step)
		}},
		{"power-accum-stream", func(c *bohrium.Context, step func() error) (float64, error) {
			return PowerAccumStreamStep(c, 512, 30, step)
		}},
		{"jacobi-1d-stream", func(c *bohrium.Context, step func() error) (float64, error) {
			return Jacobi1DStreamStep(c, 512, 30, step)
		}},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			sync := bohrium.NewContext(nil)
			defer sync.Close()
			want, err := w.run(sync, sync.Flush)
			if err != nil {
				t.Fatal(err)
			}
			async := bohrium.NewContext(&bohrium.Config{Async: true})
			defer async.Close()
			got, err := w.run(async, async.Submit)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("async %v != sync %v", got, want)
			}
			st := async.MustStats()
			if st.Pipelined == 0 {
				t.Error("async run executed nothing on the background executor")
			}
			if sSt := sync.MustStats(); sSt.Pipelined != 0 {
				t.Errorf("sync run pipelined %d plans", sSt.Pipelined)
			}
		})
	}
}

// TestE9Shape checks the pipeline experiment pipelines on every workload
// and reports identical values across sync/async runs.
func TestE9Shape(t *testing.T) {
	rows, err := E9Pipeline(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("E9 rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Pipelined == 0 {
			t.Errorf("%s: zero pipelined plans", r.Workload)
		}
		if r.PlanHits == 0 {
			t.Errorf("%s: zero plan-cache hits (misses=%d)", r.Workload, r.PlanMisses)
		}
		if strings.Contains(r.Note, "MISMATCH") {
			t.Errorf("%s: %s", r.Workload, r.Note)
		}
	}
}

// TestE10Shape runs the multi-session experiment at a small scale and
// checks its acceptance properties: cross-session plan-cache hits, an
// allocation win on at least one workload, and bit-identical values
// across sessions and variants.
func TestE10Shape(t *testing.T) {
	s := tinyScale()
	s.Sessions = 3
	rows, err := E10MultiSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("E10 rows = %d, want 3", len(rows))
	}
	allocWin := false
	for _, r := range rows {
		if r.Sessions != 3 {
			t.Errorf("%s: sessions = %d, want 3", r.Workload, r.Sessions)
		}
		if r.CrossSessionHits == 0 {
			t.Errorf("%s: zero cross-session plan hits (hits=%d misses=%d)",
				r.Workload, r.PlanHits, r.PlanMisses)
		}
		if r.BuffersAlloc < r.BaselineAllocs {
			allocWin = true
		}
		if strings.Contains(r.Note, "MISMATCH") {
			t.Errorf("%s: %s", r.Workload, r.Note)
		}
	}
	if !allocWin {
		t.Error("no workload allocated fewer buffers on the shared runtime")
	}
}

// TestJSONSchema locks the BENCH_*.json document shape tools depend on.
func TestJSONSchema(t *testing.T) {
	rows := []Row{{
		Experiment: "E8", Workload: "w", Params: "p", Backend: "inprocess",
		Baseline: 2000, Optimized: 1000, Speedup: 2,
		PlanHits: 9, PlanMisses: 1, Pipelined: 4, XPlanFused: 7,
		GBs: 3.5, PctRoof: 42.5, Note: "n",
	}}
	data, err := JSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema": "bohrium-bench/v1"`, `"roofline_gbs"`, `"rows"`, `"experiment": "E8"`,
		`"baseline_ns": 2000`, `"optimized_ns": 1000`,
		`"plan_hits": 9`, `"plan_misses": 1`, `"pipelined": 4`,
		`"xplan_fused": 7`, `"gbs": 3.5`, `"pct_roof": 42.5`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	// The generated document must satisfy its own schema guard.
	if err := CheckSchema(data); err != nil {
		t.Errorf("fresh document fails CheckSchema: %v", err)
	}
}

// TestE12Shape checks the cross-plan fusion experiment defers on every
// stream workload and reports bit-identical values against the unfused
// baseline.
func TestE12Shape(t *testing.T) {
	rows, err := E12XPlanFuse(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("E12 rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.XPlanFused == 0 {
			t.Errorf("%s: zero combined cross-plan submissions", r.Workload)
		}
		if r.PlanHits == 0 {
			t.Errorf("%s: zero plan-cache hits (misses=%d)", r.Workload, r.PlanMisses)
		}
		if strings.Contains(r.Note, "MISMATCH") {
			t.Errorf("%s: %s", r.Workload, r.Note)
		}
		if r.GBs <= 0 || r.PctRoof <= 0 {
			t.Errorf("%s: roofline columns empty (gbs=%v pct=%v)", r.Workload, r.GBs, r.PctRoof)
		}
	}
}

// TestRoofline pins the ceiling measurement and the per-row bandwidth
// model: the ceiling is positive and cached, and a row over N elements
// in time T reports 16·N/T bytes against it.
func TestRoofline(t *testing.T) {
	ceil := RooflineGBs()
	if ceil <= 0 {
		t.Fatalf("RooflineGBs = %v, want > 0", ceil)
	}
	if again := RooflineGBs(); again != ceil {
		t.Errorf("RooflineGBs not cached: %v then %v", ceil, again)
	}
	var r Row
	st := vm.Stats{Elements: 1 << 20}
	r.fillRoofline(st, 10*time.Millisecond)
	wantGBs := float64(16*(1<<20)) / 0.010 / 1e9
	if math.Abs(r.GBs-wantGBs) > 1e-9 {
		t.Errorf("GBs = %v, want %v", r.GBs, wantGBs)
	}
	if want := 100 * wantGBs / ceil; math.Abs(r.PctRoof-want) > 1e-9 {
		t.Errorf("PctRoof = %v, want %v", r.PctRoof, want)
	}
	// Rows without sweep work keep the columns empty.
	var empty Row
	empty.fillRoofline(vm.Stats{}, 10*time.Millisecond)
	if empty.GBs != 0 || empty.PctRoof != 0 {
		t.Errorf("empty row got gbs=%v pct=%v", empty.GBs, empty.PctRoof)
	}
}
