package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"bohrium/internal/backend"
	"bohrium/internal/bytecode"
	"bohrium/internal/rewrite"
	"bohrium/internal/tensor"
	"bohrium/internal/vm"
)

// Row is one line of an experiment table.
type Row struct {
	Experiment string
	Workload   string
	Params     string
	// Backend names the execution backend the row was measured on
	// ("inprocess", "outofcore", ...). Values are backend-independent by
	// the differential contract; the timings are not.
	Backend string
	// BytecodesBefore/After count instructions entering/leaving the
	// optimizer (the paper's unit of work).
	BytecodesBefore, BytecodesAfter int
	// Baseline and Optimized are wall-clock times for the two variants.
	Baseline, Optimized time.Duration
	// Speedup = Baseline / Optimized.
	Speedup float64
	// PoolHits and BuffersAlloc are the VM's buffer-recycling counters for
	// one optimized run: how many register materializations reused a freed
	// buffer versus allocating fresh.
	PoolHits, BuffersAlloc int
	// FusedReductions counts reductions the optimized run folded into
	// their producer sweep (no separate reduction pass).
	FusedReductions int
	// PlanHits and PlanMisses are the plan-cache counters of the
	// optimized run: hits re-executed a cached compilation (no rewrite
	// passes, no cluster analysis), misses paid the full pipeline.
	PlanHits, PlanMisses int
	// Pipelined counts plans the optimized run executed on the async
	// background executor — batches whose execution overlapped the
	// recording of the next batch.
	Pipelined int
	// XPlanFused counts combined cross-plan submissions of the optimized
	// run: deferred batches executed together with their successor (E12;
	// zero for experiments that never defer).
	XPlanFused int
	// GBs is the optimized run's achieved memory bandwidth under the
	// 16-bytes-per-processed-element traffic model (see fillRoofline);
	// zero when the row has no sweep work to model.
	GBs float64
	// PctRoof is GBs as a percentage of this machine's memcpy ceiling
	// (RooflineGBs), the roofline the memory-bound rows are measured
	// against.
	PctRoof float64
	// Sessions is the concurrent-session count of a multi-session row
	// (E10); zero for single-session experiments.
	Sessions int
	// CrossSessionHits counts plan-cache hits the measured sessions of a
	// shared-runtime run scored on plans some OTHER session compiled —
	// the sharing the tentpole exists for. Zero for single-session rows.
	CrossSessionHits int
	// BaselineAllocs is the summed BuffersAllocated of the private-runtime
	// baseline sessions the shared run's BuffersAlloc is compared against
	// (E10 only).
	BaselineAllocs int
	// Note carries per-row context ("chain=5 muls", "rewrite blocked").
	Note string
}

// Table formats rows as an aligned text table, the output cmd/bhbench and
// EXPERIMENTS.md embed.
func Table(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-22s %-26s %-10s %9s %9s %12s %12s %8s %9s %6s %9s %5s %5s %6s %7s %6s  %s\n",
		"exp", "workload", "params", "backend", "bc-before", "bc-after", "baseline", "optimized", "speedup", "pool", "fredux", "plan", "pipe", "xplan", "xsess", "gbs", "%roof", "note")
	for _, r := range rows {
		// pool prints hits/materializations for the optimized run: 3/5
		// means five register buffers were needed and three were recycled.
		// fredux counts reductions folded into their producer sweep.
		// plan prints plan-cache hits/lookups: 58/60 means sixty flushes,
		// fifty-eight served from a cached compilation. pipe counts plans
		// executed on the async executor (0 for synchronous runs). xplan
		// counts combined cross-plan submissions (0 unless deferral ran).
		// xsess counts cross-session plan-cache hits of a shared-runtime
		// row ("-" for single-session experiments). gbs/%roof report the
		// optimized run's achieved bandwidth against the machine's memcpy
		// ceiling ("-" for rows without sweep work).
		xsess := "-"
		if r.Sessions > 0 {
			xsess = fmt.Sprintf("%d", r.CrossSessionHits)
		}
		gbs, roof := "-", "-"
		if r.GBs > 0 {
			gbs = fmt.Sprintf("%.1f", r.GBs)
			roof = fmt.Sprintf("%.0f%%", r.PctRoof)
		}
		fmt.Fprintf(&b, "%-4s %-22s %-26s %-10s %9d %9d %12s %12s %7.2fx %9s %6d %9s %5d %5d %6s %7s %6s  %s\n",
			r.Experiment, r.Workload, r.Params, r.Backend, r.BytecodesBefore, r.BytecodesAfter,
			round(r.Baseline), round(r.Optimized), r.Speedup,
			fmt.Sprintf("%d/%d", r.PoolHits, r.PoolHits+r.BuffersAlloc), r.FusedReductions,
			fmt.Sprintf("%d/%d", r.PlanHits, r.PlanHits+r.PlanMisses), r.Pipelined, r.XPlanFused,
			xsess, gbs, roof, r.Note)
	}
	return b.String()
}

// JSON renders rows as the machine-readable BENCH_*.json document: a
// top-level object {"schema": "bohrium-bench/v1", "rows": [...]} where
// each row mirrors the text table (durations in nanoseconds). The perf
// trajectory across PRs is tracked by diffing these files.
func JSON(rows []Row) ([]byte, error) {
	type jsonRow struct {
		Experiment      string  `json:"experiment"`
		Workload        string  `json:"workload"`
		Params          string  `json:"params"`
		Backend         string  `json:"backend"`
		BytecodesBefore int     `json:"bc_before"`
		BytecodesAfter  int     `json:"bc_after"`
		BaselineNs      int64   `json:"baseline_ns"`
		OptimizedNs     int64   `json:"optimized_ns"`
		Speedup         float64 `json:"speedup"`
		PoolHits        int     `json:"pool_hits"`
		BuffersAlloc    int     `json:"buffers_alloc"`
		FusedReductions int     `json:"fused_reductions"`
		PlanHits        int     `json:"plan_hits"`
		PlanMisses      int     `json:"plan_misses"`
		Pipelined       int     `json:"pipelined"`
		XPlanFused      int     `json:"xplan_fused"`
		GBs             float64 `json:"gbs"`
		PctRoof         float64 `json:"pct_roof"`
		// sessions keys multi-session rows (always > 0 for them); the two
		// measurement fields below are never omitted, so a measured zero —
		// the failure the guard looks for — stays distinguishable from
		// "not a multi-session row".
		Sessions         int    `json:"sessions,omitempty"`
		CrossSessionHits int    `json:"cross_session_hits"`
		BaselineAllocs   int    `json:"baseline_allocs"`
		Note             string `json:"note"`
	}
	doc := struct {
		Schema string `json:"schema"`
		// RooflineGBs is the machine's memcpy ceiling every row's
		// pct_roof is measured against, recorded so snapshots from
		// different machines stay interpretable.
		RooflineGBs float64   `json:"roofline_gbs"`
		Rows        []jsonRow `json:"rows"`
	}{Schema: "bohrium-bench/v1", RooflineGBs: RooflineGBs()}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, jsonRow{
			Experiment:       r.Experiment,
			Workload:         r.Workload,
			Params:           r.Params,
			Backend:          r.Backend,
			BytecodesBefore:  r.BytecodesBefore,
			BytecodesAfter:   r.BytecodesAfter,
			BaselineNs:       r.Baseline.Nanoseconds(),
			OptimizedNs:      r.Optimized.Nanoseconds(),
			Speedup:          r.Speedup,
			PoolHits:         r.PoolHits,
			BuffersAlloc:     r.BuffersAlloc,
			FusedReductions:  r.FusedReductions,
			PlanHits:         r.PlanHits,
			PlanMisses:       r.PlanMisses,
			Pipelined:        r.Pipelined,
			XPlanFused:       r.XPlanFused,
			GBs:              r.GBs,
			PctRoof:          r.PctRoof,
			Sessions:         r.Sessions,
			CrossSessionHits: r.CrossSessionHits,
			BaselineAllocs:   r.BaselineAllocs,
			Note:             r.Note,
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

func round(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// bestOf times fn repeats times and returns the minimum — the standard
// way to suppress scheduler noise on shared machines.
func bestOf(repeats int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// openBench opens the Scale's backend on a private engine, returning the
// backend and the paired teardown.
func openBench(s Scale, cfg vm.Config) (backend.Backend, func(), error) {
	eng := vm.NewEngine(vm.EngineConfig{Workers: cfg.Workers})
	b, err := backend.Open(s.Backend, eng, backend.Config{VM: cfg, ChunkBytes: s.ChunkBytes})
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	return b, func() { b.Close(); eng.Close() }, nil
}

// runProgram executes prog on a fresh backend of the Scale's kind,
// optionally binding the E4 linear-system inputs, and reports the
// execution counters.
func runProgram(prog *bytecode.Program, s Scale, bind func(backend.Backend)) (vm.Stats, error) {
	b, done, err := openBench(s, vm.Config{Fusion: true, SkipValidation: true})
	if err != nil {
		return vm.Stats{}, err
	}
	defer done()
	if bind != nil {
		bind(b)
	}
	pl, err := b.Compile(prog)
	if err != nil {
		return b.Stats(), err
	}
	err = b.Execute(pl)
	return b.Stats(), err
}

// runConfigured is runProgram with an explicit vm.Config — for the
// ablation rows that flip Fusion themselves.
func runConfigured(prog *bytecode.Program, s Scale, cfg vm.Config) (vm.Stats, error) {
	b, done, err := openBench(s, cfg)
	if err != nil {
		return vm.Stats{}, err
	}
	defer done()
	pl, err := b.Compile(prog)
	if err != nil {
		return b.Stats(), err
	}
	err = b.Execute(pl)
	return b.Stats(), err
}

// comparePrograms times the raw program against its optimized form and
// fills a Row. Both versions are validated once up front.
func comparePrograms(exp, workload, params string, prog *bytecode.Program,
	pl *rewrite.Pipeline, s Scale, bind func(backend.Backend)) (Row, error) {

	if err := prog.Validate(); err != nil {
		return Row{}, fmt.Errorf("bench: invalid workload: %w", err)
	}
	optimized, report, err := pl.Optimize(prog)
	if err != nil {
		return Row{}, fmt.Errorf("bench: optimize: %w", err)
	}
	base, err := bestOf(s.Repeats, func() error {
		_, err := runProgram(prog.Clone(), s, bind)
		return err
	})
	if err != nil {
		return Row{}, err
	}
	var optStats vm.Stats
	opt, err := bestOf(s.Repeats, func() error {
		st, err := runProgram(optimized.Clone(), s, bind)
		optStats = st
		return err
	})
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Experiment:      exp,
		Workload:        workload,
		Params:          params,
		Backend:         s.Backend,
		BytecodesBefore: report.Before.Instructions,
		BytecodesAfter:  report.After.Instructions,
		Baseline:        base,
		Optimized:       opt,
		Speedup:         float64(base) / float64(opt),
		PoolHits:        optStats.PoolHits,
		BuffersAlloc:    optStats.BuffersAllocated,
		FusedReductions: optStats.FusedReductions,
	}
	row.fillRoofline(optStats, opt)
	return row, nil
}

// bindSolveInputs binds deterministic diagonally dominant data to the E4
// solve program's input registers (a0 = A, a2 = B).
func bindSolveInputs(m int) func(backend.Backend) {
	return func(b backend.Backend) {
		a := tensor.MustNew(tensor.Float64, tensor.MustShape(m, m))
		a.FillRandom(42, -1, 1)
		for i := 0; i < m; i++ {
			a.SetAt(float64(m)+2, i, i) // dominant diagonal
		}
		rhs := tensor.MustNew(tensor.Float64, tensor.MustShape(m))
		rhs.FillRandom(43, -1, 1)
		b.Bind(0, a)
		b.Bind(2, rhs)
	}
}

// CheckSchema validates a BENCH_*.json document against the
// "bohrium-bench/v1" shape: the schema marker, a non-empty row list, and
// per-row required fields. It is the CI guard that keeps committed
// snapshots and freshly generated ones structurally interchangeable.
func CheckSchema(data []byte) error {
	var doc struct {
		Schema string                       `json:"schema"`
		Rows   []map[string]json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("bench: not a JSON document: %w", err)
	}
	if doc.Schema != "bohrium-bench/v1" {
		return fmt.Errorf("bench: schema %q, want \"bohrium-bench/v1\"", doc.Schema)
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("bench: document has no rows")
	}
	required := []string{
		"experiment", "workload", "params", "backend",
		"bc_before", "bc_after", "baseline_ns", "optimized_ns", "speedup",
		"pool_hits", "buffers_alloc", "fused_reductions",
		"plan_hits", "plan_misses", "pipelined", "xplan_fused",
		"gbs", "pct_roof",
		"cross_session_hits", "baseline_allocs", "note",
	}
	for i, row := range doc.Rows {
		for _, key := range required {
			if _, ok := row[key]; !ok {
				return fmt.Errorf("bench: row %d is missing %q", i, key)
			}
		}
		var name string
		if err := json.Unmarshal(row["backend"], &name); err != nil || name == "" {
			return fmt.Errorf("bench: row %d has no backend name", i)
		}
	}
	return nil
}
