package tensor

import (
	"fmt"
	"math"
)

// Tensor is a typed buffer addressed through a strided view. Tensors are
// cheap value types: copying a Tensor aliases the same buffer.
type Tensor struct {
	Buf  Buffer
	View View
}

// New allocates a zeroed tensor of the given dtype and shape with a
// contiguous row-major layout.
func New(dt DType, shape Shape) (Tensor, error) {
	buf, err := NewBuffer(dt, shape.Size())
	if err != nil {
		return Tensor{}, err
	}
	return Tensor{Buf: buf, View: NewView(shape)}, nil
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(dt DType, shape Shape) Tensor {
	t, err := New(dt, shape)
	if err != nil {
		panic(err)
	}
	return t
}

// FromFloat64s builds a float64 tensor of the given shape from values.
func FromFloat64s(values []float64, shape Shape) (Tensor, error) {
	if len(values) != shape.Size() {
		return Tensor{}, fmt.Errorf("tensor: %d values for shape %v (size %d)",
			len(values), shape, shape.Size())
	}
	t := MustNew(Float64, shape)
	raw, _ := Float64s(t.Buf)
	copy(raw, values)
	return t, nil
}

// DType returns the element type.
func (t Tensor) DType() DType { return t.Buf.DType() }

// Shape returns the logical shape of the tensor's view.
func (t Tensor) Shape() Shape { return t.View.Shape }

// Size returns the number of elements addressed by the view.
func (t Tensor) Size() int { return t.View.Size() }

// NDim returns the number of dimensions.
func (t Tensor) NDim() int { return t.View.NDim() }

// Validate checks that the view fits inside the buffer.
func (t Tensor) Validate() error {
	if t.Buf == nil {
		return fmt.Errorf("tensor: nil buffer")
	}
	return t.View.Validate(t.Buf.Len())
}

// At reads the element at the given coordinates, widened to float64.
func (t Tensor) At(coords ...int) float64 {
	return t.Buf.Get(t.View.Index(coords))
}

// SetAt writes the element at the given coordinates.
func (t Tensor) SetAt(v float64, coords ...int) {
	t.Buf.Set(t.View.Index(coords), v)
}

// Fill sets every element addressed by the view to v.
func (t Tensor) Fill(v float64) {
	it := NewIterator(t.View)
	for it.Next() {
		t.Buf.Set(it.Index(), v)
	}
}

// Slice returns a tensor restricted along dim to [start, stop) with step.
// The result aliases the same buffer.
func (t Tensor) Slice(dim, start, stop, step int) (Tensor, error) {
	v, err := t.View.Slice(dim, start, stop, step)
	if err != nil {
		return Tensor{}, err
	}
	return Tensor{Buf: t.Buf, View: v}, nil
}

// Transpose returns the dimension-reversed alias of t.
func (t Tensor) Transpose() Tensor {
	return Tensor{Buf: t.Buf, View: t.View.Transpose()}
}

// Reshape returns an alias of t with a new shape; t must be contiguous.
func (t Tensor) Reshape(shape Shape) (Tensor, error) {
	v, err := t.View.Reshape(shape)
	if err != nil {
		return Tensor{}, err
	}
	return Tensor{Buf: t.Buf, View: v}, nil
}

// Compact returns a freshly allocated contiguous tensor with the same
// logical contents as t (a deep copy in row-major order).
func (t Tensor) Compact() Tensor {
	out := MustNew(t.DType(), t.Shape())
	it := NewIterator(t.View)
	i := 0
	for it.Next() {
		out.Buf.Set(i, t.Buf.Get(it.Index()))
		i++
	}
	return out
}

// Float64Slice flattens the view into a new []float64 in row-major order.
func (t Tensor) Float64Slice() []float64 {
	out := make([]float64, t.Size())
	it := NewIterator(t.View)
	i := 0
	for it.Next() {
		out[i] = t.Buf.Get(it.Index())
		i++
	}
	return out
}

// Equal reports whether t and u have the same shape and bitwise-equal
// numeric values (NaN != NaN, as in floating-point comparison).
func (t Tensor) Equal(u Tensor) bool {
	if !t.Shape().Equal(u.Shape()) {
		return false
	}
	it, iu := NewIterator(t.View), NewIterator(u.View)
	for it.Next() && iu.Next() {
		if t.Buf.Get(it.Index()) != u.Buf.Get(iu.Index()) {
			return false
		}
	}
	return true
}

// AllClose reports whether t and u have the same shape and elementwise
// |a-b| <= atol + rtol*|b|, with NaNs considered equal to NaNs. It is the
// standard tolerance check for comparing optimized vs reference runs.
func (t Tensor) AllClose(u Tensor, rtol, atol float64) bool {
	if !t.Shape().Equal(u.Shape()) {
		return false
	}
	it, iu := NewIterator(t.View), NewIterator(u.View)
	for it.Next() && iu.Next() {
		a := t.Buf.Get(it.Index())
		b := u.Buf.Get(iu.Index())
		if math.IsNaN(a) && math.IsNaN(b) {
			continue
		}
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference between t
// and u, for diagnostics in tests and experiment reports.
func (t Tensor) MaxAbsDiff(u Tensor) float64 {
	worst := 0.0
	it, iu := NewIterator(t.View), NewIterator(u.View)
	for it.Next() && iu.Next() {
		d := math.Abs(t.Buf.Get(it.Index()) - u.Buf.Get(iu.Index()))
		if d > worst {
			worst = d
		}
	}
	return worst
}
