package tensor

import (
	"testing"
	"testing/quick"
)

func TestViewStringPaperSyntax(t *testing.T) {
	// Listing 2 in the paper prints a 10-element contiguous view as
	// "[0:10:1]"; the disassembler must reproduce that exactly.
	v := NewView(MustShape(10))
	if got := v.String(); got != "[0:10:1]" {
		t.Errorf("View.String() = %q, want [0:10:1]", got)
	}
}

func TestViewString2D(t *testing.T) {
	v := NewView(MustShape(3, 4))
	if got := v.String(); got != "[0:12:4][0:4:1]" {
		t.Errorf("View.String() = %q, want [0:12:4][0:4:1]", got)
	}
}

func TestViewContiguous(t *testing.T) {
	tests := []struct {
		name string
		view View
		want bool
	}{
		{name: "fresh 1d", view: NewView(MustShape(10)), want: true},
		{name: "fresh 2d", view: NewView(MustShape(3, 4)), want: true},
		{name: "strided", view: mustStrided(t, 0, MustShape(5), []int{2}), want: false},
		{name: "offset still contiguous", view: mustStrided(t, 3, MustShape(5), []int{1}), want: true},
		{name: "transposed", view: NewView(MustShape(3, 4)).Transpose(), want: false},
		{name: "singleton dims ignored", view: mustStrided(t, 0, MustShape(1, 4), []int{99, 1}), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.view.Contiguous(); got != tt.want {
				t.Errorf("Contiguous() = %v, want %v", got, tt.want)
			}
		})
	}
}

func mustStrided(t *testing.T, offset int, shape Shape, strides []int) View {
	t.Helper()
	v, err := NewStridedView(offset, shape, strides)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestViewIndex(t *testing.T) {
	v := mustStrided(t, 5, MustShape(3, 4), []int{8, 2})
	tests := []struct {
		coords []int
		want   int
	}{
		{[]int{0, 0}, 5},
		{[]int{0, 1}, 7},
		{[]int{1, 0}, 13},
		{[]int{2, 3}, 27},
	}
	for _, tt := range tests {
		if got := v.Index(tt.coords); got != tt.want {
			t.Errorf("Index(%v) = %d, want %d", tt.coords, got, tt.want)
		}
	}
}

func TestViewValidate(t *testing.T) {
	tests := []struct {
		name    string
		view    View
		bufLen  int
		wantErr bool
	}{
		{name: "fits exactly", view: NewView(MustShape(10)), bufLen: 10},
		{name: "too small", view: NewView(MustShape(10)), bufLen: 9, wantErr: true},
		{name: "offset pushes out", view: mustStridedRaw(1, MustShape(10), []int{1}), bufLen: 10, wantErr: true},
		{name: "strided fits", view: mustStridedRaw(0, MustShape(5), []int{2}), bufLen: 9},
		{name: "empty always fits", view: NewView(MustShape(0)), bufLen: 0},
		{name: "negative stride fits", view: mustStridedRaw(9, MustShape(10), []int{-1}), bufLen: 10},
		{name: "negative stride underflows", view: mustStridedRaw(5, MustShape(10), []int{-1}), bufLen: 10, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.view.Validate(tt.bufLen)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate(%d) error = %v, wantErr %v", tt.bufLen, err, tt.wantErr)
			}
		})
	}
}

func mustStridedRaw(offset int, shape Shape, strides []int) View {
	v, err := NewStridedView(offset, shape, strides)
	if err != nil {
		panic(err)
	}
	return v
}

func TestViewOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b View
		want bool
	}{
		{
			name: "identical",
			a:    NewView(MustShape(10)),
			b:    NewView(MustShape(10)),
			want: true,
		},
		{
			name: "disjoint halves",
			a:    mustStridedRaw(0, MustShape(5), []int{1}),
			b:    mustStridedRaw(5, MustShape(5), []int{1}),
			want: false,
		},
		{
			name: "interleaved even odd",
			a:    mustStridedRaw(0, MustShape(5), []int{2}),
			b:    mustStridedRaw(1, MustShape(5), []int{2}),
			want: false, // exact disjointness for same-stride 1-D
		},
		{
			name: "same parity strided",
			a:    mustStridedRaw(0, MustShape(5), []int{2}),
			b:    mustStridedRaw(2, MustShape(5), []int{2}),
			want: true,
		},
		{
			name: "empty never overlaps",
			a:    NewView(MustShape(0)),
			b:    NewView(MustShape(10)),
			want: false,
		},
		{
			name: "partial overlap",
			a:    mustStridedRaw(0, MustShape(6), []int{1}),
			b:    mustStridedRaw(4, MustShape(6), []int{1}),
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("Overlaps (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestViewOverlapsNeverFalseNegative(t *testing.T) {
	// Property: if two 1-D views share any concrete buffer index, Overlaps
	// must say true. (False positives are allowed; false negatives are not.)
	f := func(off1, off2, len1, len2, st1, st2 uint8) bool {
		v1 := View{Offset: int(off1 % 16), Shape: MustShape(int(len1%8) + 1), Strides: []int{int(st1%3) + 1}}
		v2 := View{Offset: int(off2 % 16), Shape: MustShape(int(len2%8) + 1), Strides: []int{int(st2%3) + 1}}
		touched := map[int]bool{}
		it := NewIterator(v1)
		for it.Next() {
			touched[it.Index()] = true
		}
		shared := false
		it2 := NewIterator(v2)
		for it2.Next() {
			if touched[it2.Index()] {
				shared = true
				break
			}
		}
		if shared && !v1.Overlaps(v2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestViewSlice(t *testing.T) {
	base := NewView(MustShape(10))
	tests := []struct {
		name              string
		start, stop, step int
		wantShape         Shape
		wantOffset        int
		wantStride        int
		wantErr           bool
	}{
		{name: "full", start: 0, stop: 10, step: 1, wantShape: MustShape(10), wantOffset: 0, wantStride: 1},
		{name: "tail", start: 4, stop: 10, step: 1, wantShape: MustShape(6), wantOffset: 4, wantStride: 1},
		{name: "every other", start: 0, stop: 10, step: 2, wantShape: MustShape(5), wantOffset: 0, wantStride: 2},
		{name: "odd range step 3", start: 1, stop: 8, step: 3, wantShape: MustShape(3), wantOffset: 1, wantStride: 3},
		{name: "empty", start: 5, stop: 5, step: 1, wantShape: MustShape(0), wantOffset: 5, wantStride: 1},
		{name: "out of range", start: 0, stop: 11, step: 1, wantErr: true},
		{name: "reversed", start: 6, stop: 2, step: 1, wantErr: true},
		{name: "bad step", start: 0, stop: 10, step: 0, wantErr: true},
		// Negative steps: NumPy reversed slices. start is the first index
		// taken, stop the exclusive lower bound (-1 reaches index 0).
		{name: "full reverse", start: 9, stop: -1, step: -1, wantShape: MustShape(10), wantOffset: 9, wantStride: -1},
		{name: "reverse window", start: 7, stop: 2, step: -1, wantShape: MustShape(5), wantOffset: 7, wantStride: -1},
		{name: "reverse step 2", start: 9, stop: -1, step: -2, wantShape: MustShape(5), wantOffset: 9, wantStride: -2},
		{name: "reverse step 3 ragged", start: 8, stop: 1, step: -3, wantShape: MustShape(3), wantOffset: 8, wantStride: -3},
		{name: "reverse empty", start: 4, stop: 4, step: -1, wantShape: MustShape(0), wantOffset: 4, wantStride: -1},
		{name: "reverse start at extent", start: 10, stop: -1, step: -1, wantErr: true},
		{name: "reverse stop below -1", start: 5, stop: -2, step: -1, wantErr: true},
		{name: "reverse stop above start", start: 2, stop: 5, step: -1, wantErr: true},
		{name: "reverse negative start", start: -1, stop: -1, step: -1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := base.Slice(0, tt.start, tt.stop, tt.step)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Slice error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if !got.Shape.Equal(tt.wantShape) || got.Offset != tt.wantOffset || got.Strides[0] != tt.wantStride {
				t.Errorf("Slice = %+v, want shape %v offset %d stride %d",
					got, tt.wantShape, tt.wantOffset, tt.wantStride)
			}
		})
	}
}

func TestViewTransposeInvolution(t *testing.T) {
	f := func(r1, r2, r3 uint8) bool {
		shape := MustShape(int(r1%4)+1, int(r2%4)+1, int(r3%4)+1)
		v := NewView(shape)
		return v.Transpose().Transpose().Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViewBroadcastTo(t *testing.T) {
	v := NewView(MustShape(1, 4))
	bv, err := v.BroadcastTo(MustShape(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !bv.Shape.Equal(MustShape(3, 4)) {
		t.Errorf("shape = %v, want (3, 4)", bv.Shape)
	}
	if bv.Strides[0] != 0 || bv.Strides[1] != 1 {
		t.Errorf("strides = %v, want [0 1]", bv.Strides)
	}
	// Broadcasting a scalar-ish view to anything incompatible fails.
	if _, err := NewView(MustShape(3)).BroadcastTo(MustShape(4)); err == nil {
		t.Error("broadcast (3)->(4) succeeded, want error")
	}
}

func TestViewReshape(t *testing.T) {
	v := NewView(MustShape(12))
	r, err := v.Reshape(MustShape(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Shape.Equal(MustShape(3, 4)) || r.Strides[0] != 4 || r.Strides[1] != 1 {
		t.Errorf("reshape = %+v", r)
	}
	if _, err := v.Reshape(MustShape(5)); err == nil {
		t.Error("size-changing reshape succeeded, want error")
	}
	if _, err := v.Transpose().Reshape(MustShape(12)); err != nil {
		t.Errorf("1-d transpose reshape should work: %v", err)
	}
	nc := NewView(MustShape(3, 4)).Transpose()
	if _, err := nc.Reshape(MustShape(12)); err == nil {
		t.Error("non-contiguous reshape succeeded, want error")
	}
}

// TestViewSliceReverseEmptyDim: the generic reverse recipe
// Slice(dim, n-1, -1, -1) must work for n == 0 too, yielding the empty
// view (matching the positive-step analogue and NumPy's a[::-1]).
func TestViewSliceReverseEmptyDim(t *testing.T) {
	empty := NewView(MustShape(0))
	got, err := empty.Slice(0, -1, -1, -1)
	if err != nil {
		t.Fatalf("reverse of empty dim errored: %v", err)
	}
	if got.Size() != 0 || got.Offset != 0 {
		t.Errorf("reverse of empty dim = %+v, want empty at offset 0", got)
	}
	// Anything else with a negative start stays rejected.
	if _, err := NewView(MustShape(3)).Slice(0, -1, -1, -1); err == nil {
		t.Error("negative start on non-empty dim did not error")
	}
}
