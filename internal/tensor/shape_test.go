package tensor

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	tests := []struct {
		name    string
		dims    []int
		wantErr bool
	}{
		{name: "scalar", dims: nil},
		{name: "vector", dims: []int{10}},
		{name: "matrix", dims: []int{3, 4}},
		{name: "zero extent ok", dims: []int{0, 5}},
		{name: "negative extent", dims: []int{3, -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := NewShape(tt.dims...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewShape(%v) error = %v, wantErr %v", tt.dims, err, tt.wantErr)
			}
			if err == nil && s.NDim() != len(tt.dims) {
				t.Errorf("NDim = %d, want %d", s.NDim(), len(tt.dims))
			}
		})
	}
}

func TestShapeSize(t *testing.T) {
	tests := []struct {
		shape Shape
		want  int
	}{
		{MustShape(), 1},
		{MustShape(10), 10},
		{MustShape(3, 4), 12},
		{MustShape(2, 3, 4), 24},
		{MustShape(5, 0, 7), 0},
	}
	for _, tt := range tests {
		if got := tt.shape.Size(); got != tt.want {
			t.Errorf("%v.Size() = %d, want %d", tt.shape, got, tt.want)
		}
	}
}

func TestShapeString(t *testing.T) {
	if got := MustShape(3, 4).String(); got != "(3, 4)" {
		t.Errorf("String = %q, want (3, 4)", got)
	}
	if got := MustShape().String(); got != "()" {
		t.Errorf("String = %q, want ()", got)
	}
}

func TestContiguousStrides(t *testing.T) {
	tests := []struct {
		shape Shape
		want  []int
	}{
		{MustShape(10), []int{1}},
		{MustShape(3, 4), []int{4, 1}},
		{MustShape(2, 3, 4), []int{12, 4, 1}},
		{MustShape(), []int{}},
	}
	for _, tt := range tests {
		got := ContiguousStrides(tt.shape)
		if len(got) != len(tt.want) {
			t.Fatalf("strides(%v) = %v, want %v", tt.shape, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("strides(%v) = %v, want %v", tt.shape, got, tt.want)
				break
			}
		}
	}
}

func TestBroadcastShapes(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Shape
		want    Shape
		wantErr bool
	}{
		{name: "equal", a: MustShape(3, 4), b: MustShape(3, 4), want: MustShape(3, 4)},
		{name: "scalar left", a: MustShape(), b: MustShape(5), want: MustShape(5)},
		{name: "scalar right", a: MustShape(5), b: MustShape(), want: MustShape(5)},
		{name: "ones expand", a: MustShape(3, 1), b: MustShape(1, 4), want: MustShape(3, 4)},
		{name: "rank extend", a: MustShape(4), b: MustShape(3, 4), want: MustShape(3, 4)},
		{name: "mismatch", a: MustShape(3), b: MustShape(4), wantErr: true},
		{name: "inner mismatch", a: MustShape(2, 3), b: MustShape(2, 4), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := BroadcastShapes(tt.a, tt.b)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("BroadcastShapes(%v, %v) succeeded, want error", tt.a, tt.b)
				}
				if !errors.Is(err, ErrShapeMismatch) {
					t.Errorf("error %v is not ErrShapeMismatch", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("BroadcastShapes(%v, %v) error: %v", tt.a, tt.b, err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("BroadcastShapes(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestBroadcastShapesCommutative(t *testing.T) {
	// Property: broadcasting is commutative in both success and shape.
	f := func(raw1, raw2 []uint8) bool {
		a := shapeFromBytes(raw1)
		b := shapeFromBytes(raw2)
		ab, err1 := BroadcastShapes(a, b)
		ba, err2 := BroadcastShapes(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastableToMatchesBroadcastShapes(t *testing.T) {
	// Property: if a broadcasts with b to r, then both are broadcastable to r.
	f := func(raw1, raw2 []uint8) bool {
		a := shapeFromBytes(raw1)
		b := shapeFromBytes(raw2)
		r, err := BroadcastShapes(a, b)
		if err != nil {
			return true
		}
		return a.BroadcastableTo(r) && b.BroadcastableTo(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// shapeFromBytes derives a small random shape (rank <= 3, extents 1..4)
// from fuzz bytes, keeping property-test inputs inside meaningful ranges.
func shapeFromBytes(raw []uint8) Shape {
	rank := len(raw) % 4
	s := make(Shape, 0, rank)
	for i := 0; i < rank && i < len(raw); i++ {
		s = append(s, int(raw[i])%4+1)
	}
	return s
}
