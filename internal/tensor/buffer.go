package tensor

import "fmt"

// Buffer is a linear, typed storage area. Views address into buffers; the
// VM's register file maps byte-code registers to buffers.
//
// The float64 Get/Set accessors define the *numeric* behaviour of every
// dtype (bool reads as 0/1, integer writes truncate toward zero, exactly as
// a C cast / NumPy astype would). Hot kernels bypass them through the typed
// slice accessors below.
type Buffer interface {
	// DType returns the element type stored in the buffer.
	DType() DType
	// Len returns the number of elements.
	Len() int
	// Get reads element i widened to float64.
	Get(i int) float64
	// Set writes element i, converting from float64 with C-cast semantics.
	Set(i int, v float64)
	// GetInt reads element i widened to int64 (floats truncate).
	GetInt(i int) int64
	// SetInt writes element i from an int64.
	SetInt(i int, v int64)
	// Clone returns an independent deep copy.
	Clone() Buffer
	// Zero resets every element to the dtype's zero value. The VM's
	// register pool calls it when recycling a buffer, so a reused register
	// starts from the same state a fresh allocation would.
	Zero()
}

// Elem is the set of Go types that back a Buffer. Bool buffers are stored
// as uint8 with values 0 or 1.
type Elem interface {
	~uint8 | ~int32 | ~int64 | ~float32 | ~float64
}

// Data is the concrete Buffer implementation for element type T.
type Data[T Elem] struct {
	dt DType
	s  []T
}

var (
	_ Buffer = (*Data[uint8])(nil)
	_ Buffer = (*Data[float64])(nil)
)

// NewBuffer allocates a zeroed buffer of n elements of the given dtype.
func NewBuffer(dt DType, n int) (Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("tensor: negative buffer length %d", n)
	}
	switch dt {
	case Bool, Uint8:
		return &Data[uint8]{dt: dt, s: make([]uint8, n)}, nil
	case Int32:
		return &Data[int32]{dt: dt, s: make([]int32, n)}, nil
	case Int64:
		return &Data[int64]{dt: dt, s: make([]int64, n)}, nil
	case Float32:
		return &Data[float32]{dt: dt, s: make([]float32, n)}, nil
	case Float64:
		return &Data[float64]{dt: dt, s: make([]float64, n)}, nil
	default:
		return nil, fmt.Errorf("tensor: cannot allocate buffer of invalid dtype %v", dt)
	}
}

// MustBuffer is NewBuffer for known-good arguments; it panics on error.
func MustBuffer(dt DType, n int) Buffer {
	b, err := NewBuffer(dt, n)
	if err != nil {
		panic(err)
	}
	return b
}

// DType implements Buffer.
func (d *Data[T]) DType() DType { return d.dt }

// Len implements Buffer.
func (d *Data[T]) Len() int { return len(d.s) }

// Get implements Buffer.
func (d *Data[T]) Get(i int) float64 { return float64(d.s[i]) }

// Set implements Buffer.
func (d *Data[T]) Set(i int, v float64) {
	if d.dt == Bool {
		if v != 0 {
			d.s[i] = 1
		} else {
			d.s[i] = 0
		}
		return
	}
	d.s[i] = T(v)
}

// GetInt implements Buffer.
func (d *Data[T]) GetInt(i int) int64 { return int64(d.s[i]) }

// SetInt implements Buffer.
func (d *Data[T]) SetInt(i int, v int64) {
	if d.dt == Bool {
		if v != 0 {
			d.s[i] = 1
		} else {
			d.s[i] = 0
		}
		return
	}
	d.s[i] = T(v)
}

// Clone implements Buffer.
func (d *Data[T]) Clone() Buffer {
	return &Data[T]{dt: d.dt, s: append([]T(nil), d.s...)}
}

// Zero implements Buffer.
func (d *Data[T]) Zero() { clear(d.s) }

// Raw exposes the underlying slice. Kernels use this for type-specialized
// fast paths; callers must not resize it.
func (d *Data[T]) Raw() []T { return d.s }

// CopyFlat copies n contiguous elements from src starting at srcOff into
// dst starting at dstOff. Both buffers must store the same dtype: the copy
// moves raw typed storage, never converting values — the out-of-core
// backend stages chunks of large arrays through scratch buffers with it,
// and a value conversion would break its bit-for-bit contract.
func CopyFlat(dst Buffer, dstOff int, src Buffer, srcOff, n int) error {
	if n == 0 {
		return nil
	}
	if dst.DType() != src.DType() {
		return fmt.Errorf("tensor: CopyFlat dtype mismatch: %v vs %v", dst.DType(), src.DType())
	}
	if dstOff < 0 || srcOff < 0 || n < 0 || dstOff+n > dst.Len() || srcOff+n > src.Len() {
		return fmt.Errorf("tensor: CopyFlat range out of bounds: dst[%d:%d) of %d, src[%d:%d) of %d",
			dstOff, dstOff+n, dst.Len(), srcOff, srcOff+n, src.Len())
	}
	switch d := dst.(type) {
	case *Data[uint8]:
		copy(d.s[dstOff:dstOff+n], src.(*Data[uint8]).s[srcOff:srcOff+n])
	case *Data[int32]:
		copy(d.s[dstOff:dstOff+n], src.(*Data[int32]).s[srcOff:srcOff+n])
	case *Data[int64]:
		copy(d.s[dstOff:dstOff+n], src.(*Data[int64]).s[srcOff:srcOff+n])
	case *Data[float32]:
		copy(d.s[dstOff:dstOff+n], src.(*Data[float32]).s[srcOff:srcOff+n])
	case *Data[float64]:
		copy(d.s[dstOff:dstOff+n], src.(*Data[float64]).s[srcOff:srcOff+n])
	default:
		return fmt.Errorf("tensor: CopyFlat unsupported buffer type %T", dst)
	}
	return nil
}

// RawSlice returns the raw []T backing b, if T is b's storage type. This
// is the generic form of the dtype-named accessors below: bool and uint8
// buffers surface as []uint8, every other dtype as its Go type.
func RawSlice[T Elem](b Buffer) ([]T, bool) {
	d, ok := b.(*Data[T])
	if !ok {
		return nil, false
	}
	return d.s, true
}

// Float64s returns the raw []float64 backing b, if it has dtype float64.
func Float64s(b Buffer) ([]float64, bool) {
	d, ok := b.(*Data[float64])
	if !ok {
		return nil, false
	}
	return d.s, true
}

// Float32s returns the raw []float32 backing b, if it has dtype float32.
func Float32s(b Buffer) ([]float32, bool) {
	d, ok := b.(*Data[float32])
	if !ok {
		return nil, false
	}
	return d.s, true
}

// Int64s returns the raw []int64 backing b, if it has dtype int64.
func Int64s(b Buffer) ([]int64, bool) {
	d, ok := b.(*Data[int64])
	if !ok {
		return nil, false
	}
	return d.s, true
}

// Int32s returns the raw []int32 backing b, if it has dtype int32.
func Int32s(b Buffer) ([]int32, bool) {
	d, ok := b.(*Data[int32])
	if !ok {
		return nil, false
	}
	return d.s, true
}

// Uint8s returns the raw []uint8 backing b, for dtype uint8 or bool.
func Uint8s(b Buffer) ([]uint8, bool) {
	d, ok := b.(*Data[uint8])
	if !ok {
		return nil, false
	}
	return d.s, true
}
