package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeBasics(t *testing.T) {
	tests := []struct {
		dt      DType
		name    string
		size    int
		isFloat bool
		isInt   bool
	}{
		{Bool, "bool", 1, false, false},
		{Uint8, "uint8", 1, false, true},
		{Int32, "int32", 4, false, true},
		{Int64, "int64", 8, false, true},
		{Float32, "float32", 4, true, false},
		{Float64, "float64", 8, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.dt.String(); got != tt.name {
				t.Errorf("String = %q, want %q", got, tt.name)
			}
			if got := tt.dt.Size(); got != tt.size {
				t.Errorf("Size = %d, want %d", got, tt.size)
			}
			if got := tt.dt.IsFloat(); got != tt.isFloat {
				t.Errorf("IsFloat = %v", got)
			}
			if got := tt.dt.IsInteger(); got != tt.isInt {
				t.Errorf("IsInteger = %v", got)
			}
			parsed, err := ParseDType(tt.name)
			if err != nil || parsed != tt.dt {
				t.Errorf("ParseDType(%q) = %v, %v", tt.name, parsed, err)
			}
		})
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("ParseDType accepted unknown dtype")
	}
	if DType(0).Valid() {
		t.Error("zero DType is valid")
	}
}

func TestPromote(t *testing.T) {
	tests := []struct {
		a, b, want DType
	}{
		{Bool, Float64, Float64},
		{Int32, Int64, Int64},
		{Int64, Float32, Float32},
		{Uint8, Bool, Uint8},
		{Float32, Float64, Float64},
		{Int64, Int64, Int64},
	}
	for _, tt := range tests {
		if got := Promote(tt.a, tt.b); got != tt.want {
			t.Errorf("Promote(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := Promote(tt.b, tt.a); got != tt.want {
			t.Errorf("Promote(%v, %v) = %v, want %v", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestBufferRoundTrip(t *testing.T) {
	for _, dt := range []DType{Bool, Uint8, Int32, Int64, Float32, Float64} {
		t.Run(dt.String(), func(t *testing.T) {
			b := MustBuffer(dt, 4)
			b.Set(0, 1)
			b.Set(1, 0)
			b.SetInt(2, 1)
			if got := b.Get(0); got != 1 {
				t.Errorf("Get(0) = %v, want 1", got)
			}
			if got := b.Get(1); got != 0 {
				t.Errorf("Get(1) = %v, want 0", got)
			}
			if got := b.GetInt(2); got != 1 {
				t.Errorf("GetInt(2) = %v, want 1", got)
			}
			clone := b.Clone()
			clone.Set(0, 0)
			if b.Get(0) != 1 {
				t.Error("Clone shares storage with original")
			}
		})
	}
}

func TestBufferTruncation(t *testing.T) {
	b := MustBuffer(Int64, 1)
	b.Set(0, 3.9)
	if got := b.GetInt(0); got != 3 {
		t.Errorf("int64 Set(3.9) = %d, want 3 (C-cast truncation)", got)
	}
	bb := MustBuffer(Bool, 1)
	bb.Set(0, 7)
	if got := bb.Get(0); got != 1 {
		t.Errorf("bool Set(7) = %v, want 1", got)
	}
	bb.SetInt(0, -3)
	if got := bb.GetInt(0); got != 1 {
		t.Errorf("bool SetInt(-3) = %v, want 1", got)
	}
}

func TestBufferErrors(t *testing.T) {
	if _, err := NewBuffer(Float64, -1); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := NewBuffer(DType(99), 4); err == nil {
		t.Error("invalid dtype accepted")
	}
}

func TestTypedSliceAccessors(t *testing.T) {
	f64 := MustBuffer(Float64, 3)
	if s, ok := Float64s(f64); !ok || len(s) != 3 {
		t.Error("Float64s failed on float64 buffer")
	}
	if _, ok := Float64s(MustBuffer(Int64, 3)); ok {
		t.Error("Float64s succeeded on int64 buffer")
	}
	if s, ok := Int64s(MustBuffer(Int64, 2)); !ok || len(s) != 2 {
		t.Error("Int64s failed")
	}
	if s, ok := Int32s(MustBuffer(Int32, 2)); !ok || len(s) != 2 {
		t.Error("Int32s failed")
	}
	if s, ok := Float32s(MustBuffer(Float32, 2)); !ok || len(s) != 2 {
		t.Error("Float32s failed")
	}
	if s, ok := Uint8s(MustBuffer(Bool, 2)); !ok || len(s) != 2 {
		t.Error("Uint8s failed on bool buffer")
	}
}

func TestTensorFillAndAt(t *testing.T) {
	a := MustNew(Float64, MustShape(3, 4))
	a.Fill(2.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if got := a.At(i, j); got != 2.5 {
				t.Fatalf("At(%d,%d) = %v, want 2.5", i, j, got)
			}
		}
	}
	a.SetAt(9, 1, 2)
	if got := a.At(1, 2); got != 9 {
		t.Errorf("SetAt/At = %v, want 9", got)
	}
}

func TestTensorSliceAliases(t *testing.T) {
	a := MustNew(Float64, MustShape(10))
	half, err := a.Slice(0, 5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	half.Fill(1)
	want := []float64{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	got := a.Float64Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after slice fill, a = %v, want %v", got, want)
		}
	}
}

func TestTensorTransposeAt(t *testing.T) {
	a := MustNew(Float64, MustShape(2, 3))
	v := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.SetAt(v, i, j)
			v++
		}
	}
	tr := a.Transpose()
	if !tr.Shape().Equal(MustShape(3, 2)) {
		t.Fatalf("transpose shape = %v", tr.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTensorCompactEqualsOriginal(t *testing.T) {
	a := MustNew(Float64, MustShape(4, 4))
	a.FillRandom(42, -1, 1)
	tr := a.Transpose()
	c := tr.Compact()
	if !c.Equal(tr) {
		t.Error("Compact() differs from source view")
	}
	if !c.View.Contiguous() {
		t.Error("Compact() is not contiguous")
	}
	// Mutating the compact copy must not touch the original.
	c.Fill(0)
	if a.At(1, 1) == 0 && a.At(2, 2) == 0 {
		t.Error("Compact() aliases original buffer")
	}
}

func TestAllClose(t *testing.T) {
	a, _ := FromFloat64s([]float64{1, 2, 3}, MustShape(3))
	b, _ := FromFloat64s([]float64{1, 2, 3.0000001}, MustShape(3))
	if !a.AllClose(b, 1e-5, 1e-8) {
		t.Error("AllClose too strict")
	}
	c, _ := FromFloat64s([]float64{1, 2, 4}, MustShape(3))
	if a.AllClose(c, 1e-5, 1e-8) {
		t.Error("AllClose too loose")
	}
	n1, _ := FromFloat64s([]float64{math.NaN()}, MustShape(1))
	n2, _ := FromFloat64s([]float64{math.NaN()}, MustShape(1))
	if !n1.AllClose(n2, 0, 0) {
		t.Error("NaN should compare close to NaN")
	}
	if n1.Equal(n2) {
		t.Error("NaN should not compare Equal")
	}
	d, _ := FromFloat64s([]float64{1, 2}, MustShape(2))
	if a.AllClose(d, 1, 1) {
		t.Error("shape mismatch should not be close")
	}
}

func TestIteratorOrder(t *testing.T) {
	v := NewView(MustShape(2, 3))
	it := NewIterator(v)
	var got []int
	for it.Next() {
		got = append(got, it.Index())
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("iterator yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterator yielded %v, want %v", got, want)
		}
	}
}

func TestIteratorStrided(t *testing.T) {
	v := mustStridedRaw(1, MustShape(3), []int{2})
	it := NewIterator(v)
	var got []int
	for it.Next() {
		got = append(got, it.Index())
	}
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strided iterator yielded %v, want %v", got, want)
		}
	}
}

func TestIteratorTransposedOrder(t *testing.T) {
	v := NewView(MustShape(2, 3)).Transpose() // shape (3,2), strides (1,3)
	it := NewIterator(v)
	var got []int
	for it.Next() {
		got = append(got, it.Index())
	}
	want := []int{0, 3, 1, 4, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transposed iterator yielded %v, want %v", got, want)
		}
	}
}

func TestIteratorScalarAndEmpty(t *testing.T) {
	scalar := NewIterator(NewView(MustShape()))
	count := 0
	for scalar.Next() {
		count++
	}
	if count != 1 {
		t.Errorf("scalar view yielded %d elements, want 1", count)
	}
	empty := NewIterator(NewView(MustShape(0, 5)))
	for empty.Next() {
		t.Fatal("empty view yielded an element")
	}
}

func TestIteratorCountMatchesSize(t *testing.T) {
	f := func(r1, r2, r3 uint8) bool {
		shape := MustShape(int(r1%5), int(r2%4)+1, int(r3%3)+1)
		it := NewIterator(NewView(shape))
		n := 0
		for it.Next() {
			n++
		}
		return n == shape.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZipIndices(t *testing.T) {
	a := NewView(MustShape(2, 2))
	b := NewView(MustShape(2, 2)).Transpose()
	var pairs [][2]int
	ZipIndices(a, b, func(ia, ib int) { pairs = append(pairs, [2]int{ia, ib}) })
	want := [][2]int{{0, 0}, {1, 2}, {2, 1}, {3, 3}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestSplitMixDeterministic(t *testing.T) {
	a := NewSplitMix64(7)
	b := NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewSplitMix64(1).Uint64() == NewSplitMix64(2).Uint64() {
		t.Error("different seeds collided on first draw")
	}
	// Counter-based access matches sequential access.
	seq := NewSplitMix64(99)
	for i := uint64(1); i <= 10; i++ {
		if got, want := At(99, i), seq.Uint64(); got != want {
			t.Fatalf("At(99, %d) = %d, want %d", i, got, want)
		}
	}
}

func TestFillRandomRange(t *testing.T) {
	a := MustNew(Float64, MustShape(1000))
	a.FillRandom(3, 2, 5)
	for i, v := range a.Float64Slice() {
		if v < 2 || v >= 5 {
			t.Fatalf("element %d = %v outside [2, 5)", i, v)
		}
	}
	b := MustNew(Float64, MustShape(1000))
	b.FillRandom(3, 2, 5)
	if !a.Equal(b) {
		t.Error("same seed produced different tensors")
	}
}

func TestFormat(t *testing.T) {
	a, _ := FromFloat64s([]float64{1, 2, 3, 4, 5, 6}, MustShape(2, 3))
	got := a.String()
	want := "[[1 2 3]\n [4 5 6]]"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	big := MustNew(Int64, MustShape(20))
	big.Fill(7)
	s := big.Format(FormatOptions{MaxPerDim: 3, Precision: 6})
	if s != "[7 7 7 ... (17 more)]" {
		t.Errorf("truncated format = %q", s)
	}
	bl := MustNew(Bool, MustShape(2))
	bl.SetAt(1, 0)
	if got := bl.String(); got != "[true false]" {
		t.Errorf("bool format = %q", got)
	}
}

func TestFromFloat64sSizeMismatch(t *testing.T) {
	if _, err := FromFloat64s([]float64{1, 2}, MustShape(3)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestTensorValidate(t *testing.T) {
	good := MustNew(Float64, MustShape(4))
	if err := good.Validate(); err != nil {
		t.Errorf("valid tensor rejected: %v", err)
	}
	bad := Tensor{Buf: MustBuffer(Float64, 2), View: NewView(MustShape(4))}
	if err := bad.Validate(); err == nil {
		t.Error("oversized view accepted")
	}
	if err := (Tensor{}).Validate(); err == nil {
		t.Error("nil buffer accepted")
	}
}
