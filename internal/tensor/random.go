package tensor

// Bohrium seeds its arrays with the counter-based Random123 generator so
// that parallel backends produce identical streams. We substitute
// SplitMix64, which is likewise counter-friendly (the i-th value is a pure
// function of seed+i) and deterministic across runs — the property the
// experiment harness needs for reproducible workloads.

// SplitMix64 is a tiny counter-based PRNG. The zero value is a valid
// generator with seed 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator with the given seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). n must be positive.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// At returns the i-th value of the stream for the given seed without
// advancing any state (counter-based access, as Random123 provides).
func At(seed uint64, i uint64) uint64 {
	g := SplitMix64{state: seed + i*0x9e3779b97f4a7c15}
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FillRandom fills t with uniform values in [lo, hi) drawn from a
// deterministic stream for the given seed.
func (t Tensor) FillRandom(seed uint64, lo, hi float64) {
	r := NewSplitMix64(seed)
	it := NewIterator(t.View)
	for it.Next() {
		t.Buf.Set(it.Index(), lo+(hi-lo)*r.Float64())
	}
}
