package tensor

import (
	"strconv"
	"strings"
)

// FormatOptions controls tensor pretty-printing.
type FormatOptions struct {
	// MaxPerDim truncates each dimension to this many leading elements,
	// printing "..." for the rest. Zero means no truncation.
	MaxPerDim int
	// Precision is the number of significant digits for floats.
	Precision int
}

// DefaultFormat mirrors NumPy's repr defaults closely enough for examples.
func DefaultFormat() FormatOptions {
	return FormatOptions{MaxPerDim: 8, Precision: 6}
}

// String renders the tensor with default options.
func (t Tensor) String() string { return t.Format(DefaultFormat()) }

// Format renders the tensor NumPy-style: nested brackets, row-major order.
func (t Tensor) Format(opts FormatOptions) string {
	var b strings.Builder
	t.formatDim(&b, opts, make([]int, 0, t.NDim()))
	return b.String()
}

func (t Tensor) formatDim(b *strings.Builder, opts FormatOptions, prefix []int) {
	dim := len(prefix)
	if dim == t.NDim() {
		b.WriteString(t.formatElem(opts, prefix))
		return
	}
	b.WriteByte('[')
	n := t.View.Shape[dim]
	shown := n
	if opts.MaxPerDim > 0 && n > opts.MaxPerDim {
		shown = opts.MaxPerDim
	}
	for i := 0; i < shown; i++ {
		if i > 0 {
			if dim == t.NDim()-1 {
				b.WriteString(" ")
			} else {
				b.WriteString("\n")
				b.WriteString(strings.Repeat(" ", dim+1))
			}
		}
		t.formatDim(b, opts, append(prefix, i))
	}
	if shown < n {
		b.WriteString(" ... (")
		b.WriteString(strconv.Itoa(n - shown))
		b.WriteString(" more)")
	}
	b.WriteByte(']')
}

func (t Tensor) formatElem(opts FormatOptions, coords []int) string {
	switch {
	case t.DType() == Bool:
		if t.At(coords...) != 0 {
			return "true"
		}
		return "false"
	case t.DType().IsInteger():
		return strconv.FormatInt(t.Buf.GetInt(t.View.Index(coords)), 10)
	default:
		prec := opts.Precision
		if prec <= 0 {
			prec = 6
		}
		return strconv.FormatFloat(t.At(coords...), 'g', prec, 64)
	}
}
