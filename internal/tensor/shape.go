package tensor

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrShapeMismatch is returned when two shapes cannot be combined under
// broadcasting rules.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// Shape describes the extent of a tensor along each dimension.
// A zero-length shape is a scalar.
type Shape []int

// NewShape copies dims into a fresh Shape, validating that every extent is
// non-negative.
func NewShape(dims ...int) (Shape, error) {
	s := make(Shape, len(dims))
	for i, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative extent %d in dimension %d", d, i)
		}
		s[i] = d
	}
	return s, nil
}

// MustShape is NewShape for known-good literals in tests and examples.
// It panics on negative extents.
func MustShape(dims ...int) Shape {
	s, err := NewShape(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Clone returns an independent copy of s.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// NDim returns the number of dimensions.
func (s Shape) NDim() int { return len(s) }

// Size returns the total number of elements, 1 for scalars.
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether s and t have identical extents.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String formats the shape as "(d0, d1, ...)".
func (s Shape) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(d))
	}
	b.WriteByte(')')
	return b.String()
}

// ContiguousStrides returns the row-major (C-order) strides, in elements,
// for a tensor of shape s. The last dimension has stride 1.
func ContiguousStrides(s Shape) []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// BroadcastShapes combines two shapes under NumPy broadcasting rules:
// dimensions are aligned from the trailing end; extents must be equal or one
// of them must be 1. The result has the maximum rank of the inputs.
func BroadcastShapes(a, b Shape) (Shape, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Shape, n)
	for i := 1; i <= n; i++ {
		da, db := 1, 1
		if i <= len(a) {
			da = a[len(a)-i]
		}
		if i <= len(b) {
			db = b[len(b)-i]
		}
		switch {
		case da == db:
			out[n-i] = da
		case da == 1:
			out[n-i] = db
		case db == 1:
			out[n-i] = da
		default:
			return nil, fmt.Errorf("%w: cannot broadcast %v with %v", ErrShapeMismatch, a, b)
		}
	}
	return out, nil
}

// BroadcastableTo reports whether a tensor of shape s can be broadcast to
// target without copying.
func (s Shape) BroadcastableTo(target Shape) bool {
	if len(s) > len(target) {
		return false
	}
	for i := 1; i <= len(s); i++ {
		d := s[len(s)-i]
		t := target[len(target)-i]
		if d != t && d != 1 {
			return false
		}
	}
	return true
}
